module hap

go 1.22
