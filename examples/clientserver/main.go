// Client-server traffic over a 3-hop path: HAP messages leave a client
// host, cross a shared router, and are served at a server — the paper's
// bursty arrival process pushed through a small queueing network instead
// of a single queue. The example attributes the end-to-end delay hop by
// hop, showing where HAP burstiness actually queues: the slowest stage
// absorbs nearly all of it, and a Poisson source at the same rate
// underestimates that congestion badly.
//
//	go run ./examples/clientserver
package main

import (
	"fmt"
	"log"

	"hap"
)

func main() {
	// client → router → server, each a single exponential server. The
	// client NIC is fast, the router has headroom, the server is the
	// bottleneck (λ̄ = 8.25 → ρ = 0.75 there).
	topo := &hap.NetTopology{
		Name: "client-server",
		Nodes: []hap.NetNode{
			{Name: "client", Mu: 200},
			{Name: "router", Mu: 40},
			{Name: "server", Mu: 11},
		},
		Links: []hap.NetLink{
			{From: 0, To: 1, Delay: 0.002}, // client → router, 2 ms wire
			{From: 1, To: 2, Delay: 0.005}, // router → server, 5 ms wire
		},
	}
	model := hap.PaperParams(11)
	fmt.Printf("topology %s: client(μ=200) → router(μ=40) → server(μ=11)\n", topo.Name)
	fmt.Printf("source: %s at the client (λ̄ = %.4g, server ρ = %.3g)\n\n",
		model, model.MeanRate(), model.MeanRate()/11)

	cfg := hap.NetConfig{
		Horizon: 2e4,
		Seed:    17,
		Measure: hap.SimMeasure{Warmup: 500},
	}
	res := hap.SimulateNetwork(topo, []hap.NetIngress{hap.NetHAPIngress(model, 0, 2)}, cfg)
	if res.Err != nil {
		log.Fatal(res.Err)
	}

	fmt.Printf("simulated %g s: %d messages delivered end to end\n\n", cfg.Horizon, res.E2E.Delivered)
	fmt.Printf("%-8s %12s %12s %10s\n", "node", "mean sojourn", "mean queue", "share")
	total := res.E2E.Sojourn.Mean()
	for j, c := range res.Node {
		hop := res.E2E.PerHop[j]
		fmt.Printf("%-8s %10.4g s %12.4g %9.1f%%\n",
			c.Name, hop.Mean(), res.PerNode[j].MeanQueue(), 100*hop.Mean()/total)
	}
	fmt.Printf("wires    %10.4g s %12s %9.1f%%\n", 0.007, "", 100*0.007/total)
	fmt.Printf("\nend-to-end sojourn %.4g s (std %.4g, max %.4g)\n",
		total, res.E2E.Sojourn.Std(), res.E2E.Sojourn.Max())

	// The same path fed by Poisson at the same rate: HAP's hierarchical
	// burstiness — not the average load — is what piles delay onto the
	// bottleneck hop.
	pois := hap.SimulateNetwork(topo,
		[]hap.NetIngress{hap.NetPoissonIngress(model.MeanRate(), 0, 2)}, cfg)
	if pois.Err != nil {
		log.Fatal(pois.Err)
	}
	fmt.Printf("\npoisson baseline at λ = %.4g: end-to-end %.4g s — HAP is %.1f× worse\n",
		model.MeanRate(), pois.E2E.Sojourn.Mean(), total/pois.E2E.Sojourn.Mean())
	fmt.Printf("  server hop: HAP %.4g s vs poisson %.4g s\n",
		res.E2E.PerHop[2].Mean(), pois.E2E.PerHop[2].Mean())
}
