// Client-server traffic (HAP-CS, the paper's Section 2.2): an rlogin-like
// command loop where each served request triggers a response and each
// served response may trigger the next command. The example compares the
// closed-form exchange algebra with simulation and shows the traffic
// amplification client-server coupling produces.
//
//	go run ./examples/clientserver
package main

import (
	"fmt"
	"log"

	"hap"
	"hap/internal/core"
)

func main() {
	cs := core.RloginCS()
	if err := cs.Validate(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("model %q: %d application types\n\n", cs.Name, len(cs.Apps))
	for _, a := range cs.Apps {
		for _, msg := range a.Messages {
			fmt.Printf("%-14s %-8s PResp=%.2f PNext=%.2f → %.2f requests + %.2f responses per exchange\n",
				a.Name, msg.Name, msg.PResp, msg.PNext,
				msg.RequestsPerExchange(), msg.ResponsesPerExchange())
		}
	}

	fmt.Printf("\nspontaneous (exchange-opening) rate: %.4g msgs/s\n", cs.MeanSpontaneousRate())
	fmt.Printf("effective rate incl. triggered traffic: %.4g msgs/s (%.2f× amplification)\n",
		cs.MeanRate(), cs.MeanRate()/cs.MeanSpontaneousRate())
	fmt.Printf("offered load at the queue: %.4g\n", cs.OfferedLoad())

	fmt.Println("\nsimulating 300,000 model seconds...")
	res := hap.SimulateCS(cs, hap.SimConfig{
		Horizon: 3e5, Seed: 11,
		Measure: hap.SimMeasure{Warmup: 3000},
	})
	fmt.Printf("observed rate %.4g msgs/s (closed form %.4g)\n",
		res.Meas.ObservedRate(), cs.MeanRate())
	fmt.Printf("mean delay %.4g s across %d messages\n", res.Meas.MeanDelay(), res.Meas.Delays.N())

	// Per-class view: even classes are requests, odd are responses.
	names := []string{}
	for _, a := range cs.Apps {
		for _, msg := range a.Messages {
			names = append(names, a.Name+"/"+msg.Name)
		}
	}
	fmt.Println("\nper-class delays:")
	for k, name := range names {
		req := res.Meas.ByClass[2*k]
		resp := res.Meas.ByClass[2*k+1]
		fmt.Printf("  %-22s requests: n=%-7d T=%.4gs   responses: n=%-7d T=%.4gs\n",
			name, req.N(), req.Mean(), resp.N(), resp.Mean())
	}

	// The plain-HAP projection for the analytic solvers.
	plain := cs.Plain()
	fmt.Printf("\nplain-HAP projection: λ̄=%.4g (matches), per-type service rates folded\n",
		plain.MeanRate())
}
