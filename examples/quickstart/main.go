// Quickstart: build the paper's HAP, look at its closed-form properties,
// solve the HAP/M/1 queue three ways and cross-check with a short
// simulation.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"hap"
)

func main() {
	// The Section 4 parameter set: users arrive every ~3 min and stay
	// ~17 min; each runs 5 application types; active applications emit 3
	// message types at 0.1/s each; the server drains 20 messages/s.
	m := hap.NewSymmetric(0.0055, 0.001, 0.01, 0.01, 0.1, 20, 5, 3)
	if err := m.Validate(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("model:", m)
	fmt.Printf("mean users        %.4g\n", m.MeanUsers())
	fmt.Printf("mean applications %.4g\n", m.MeanApps())
	fmt.Printf("mean message rate %.4g /s  (Equation 4)\n", m.MeanRate())
	fmt.Printf("utilisation       %.4g\n", m.Utilization())

	ia := m.Interarrival()
	fmt.Printf("\ninterarrival law (Solution 2 closed form):\n")
	fmt.Printf("  a(0) = %.4g  (Poisson at equal load: %.4g)\n", ia.PDFAtZero(), m.MeanRate())
	fmt.Printf("  SCV  = %.4g  (Poisson: 1)\n", ia.SCV())

	s2, err := hap.Solve2(m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nSolution 2 (closed form): delay %.4g s, σ %.4g\n", s2.Delay, s2.Sigma)

	exact, err := hap.SolveExact(m, &hap.SolveOptions{MaxUsers: 10, MaxApps: 60})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exact matrix-geometric:   delay %.4g s, σ %.4g\n", exact.Delay, exact.Sigma)

	pois, err := hap.SolvePoisson(m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Poisson baseline (M/M/1): delay %.4g s\n", pois.Delay)
	fmt.Printf("→ HAP suffers %.1f× the Poisson delay at the same load.\n", exact.Delay/pois.Delay)

	fmt.Println("\nsimulating 200,000 model seconds...")
	res := hap.Simulate(m, hap.SimConfig{
		Horizon: 2e5, Seed: 7,
		Measure: hap.SimMeasure{Warmup: 2000},
	})
	fmt.Printf("simulated: rate %.4g /s, delay %.4g s over %d messages (wall %v)\n",
		res.Meas.ObservedRate(), res.Meas.MeanDelay(), res.Meas.Delays.N(), res.Elapsed)
	fmt.Println("note: single HAP runs fluctuate strongly (the paper's Figure 13); " +
		"the exact solver above is the stationary truth.")
}
