// UDP traffic generation: replay a HAP schedule as real datagrams over
// the loopback and measure the arrival process on the other side — the
// index of dispersion of what actually hits the socket is the burstiness
// a real device under test would see. A Poisson schedule at the same mean
// rate is measured for contrast.
//
//	go run ./examples/udpgen
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"hap"
	"hap/internal/netgen"
)

func main() {
	m := hap.PaperParams(20)
	const (
		modelSeconds = 600
		compression  = 200 // 600 model s replayed in 3 wall s
	)

	hapSched, err := netgen.GenerateHAP(m, modelSeconds, 42)
	if err != nil {
		log.Fatal(err)
	}
	poisSched, err := netgen.GeneratePoisson(m.MeanRate(), modelSeconds, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("schedules over %d model seconds: HAP %d packets, Poisson %d packets\n\n",
		modelSeconds, len(hapSched.Arrivals), len(poisSched.Arrivals))

	for _, tc := range []struct {
		name  string
		sched *netgen.Schedule
	}{{"HAP", hapSched}, {"Poisson", poisSched}} {
		st, send := replay(tc.sched)
		fmt.Printf("%s over loopback UDP:\n", tc.name)
		fmt.Printf("  sent %d, received %d (lost %d), %v wall\n",
			send.Sent, st.Received, st.Lost, send.Elapsed.Round(time.Millisecond))
		fmt.Printf("  receiver interarrival mean %.4g ms, SCV %.3g\n",
			st.MeanIA*1000, st.SCV)
		fmt.Printf("  receiver IDC(%.3gs) = %.3g\n\n", st.IDCWindow, st.IDC)
	}
	fmt.Println("Poisson IDC ≈ 1 by definition; the HAP stream carries its hierarchy onto the wire.")
}

func replay(s *netgen.Schedule) (netgen.SinkStats, netgen.SendStats) {
	sink, err := netgen.NewSink("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer sink.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	done := make(chan netgen.SinkStats, 1)
	go func() {
		st, err := sink.Collect(ctx, len(s.Arrivals), 2*time.Second)
		if err != nil {
			log.Fatal(err)
		}
		done <- st
	}()
	sendStats, err := netgen.Send(ctx, sink.Addr(), s, netgen.SenderConfig{
		Compression: 200, PayloadPad: 64,
	})
	if err != nil {
		log.Fatal(err)
	}
	return <-done, sendStats
}
