// Admission control: use HAP as the computational base for broadband
// network control (the paper's Section 6), three ways:
//
//  1. admissible workload for a given bandwidth;
//  2. required bandwidth for a given workload;
//  3. user/application caps that keep delay within an SLO (Figure 20);
//
// plus the Section 7 two-class admissible call region with O(1) table
// lookups.
//
//	go run ./examples/admission
package main

import (
	"fmt"
	"log"

	"hap"
	"hap/internal/admission"
)

func main() {
	m := hap.PaperParams(20)
	target := 0.12 // seconds of mean delay

	fmt.Printf("model %s, delay target %.3gs\n\n", m, target)

	// 1. Admission control: how much more user load fits?
	factor, delay, err := hap.MaxWorkload(m, target)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("1) admissible workload: %.3g× current users (λ̄ → %.4g/s, delay %.4g s)\n",
		factor, factor*m.MeanRate(), delay)

	// 2. Bandwidth allocation: what service rate does the current load need?
	mu, err := hap.RequiredBandwidth(m, 0.1)
	if err != nil {
		log.Fatal(err)
	}
	poissonMu := m.MeanRate() + 1/0.1
	fmt.Printf("2) bandwidth for 0.1 s delay: %.4g msgs/s (Poisson engineering says %.4g — %.1f%% under-provisioned)\n",
		mu, poissonMu, 100*(mu-poissonMu)/mu)

	// 3. Population caps: bound users/applications (Figure 20's knob).
	s2, err := hap.Solve2(m)
	if err != nil {
		log.Fatal(err)
	}
	users, apps, err := admission.BoundsForDelay(m, s2.Delay*0.97, 0)
	if err != nil {
		log.Fatal(err)
	}
	capped, err := hap.SolveBounded(m, users, apps)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("3) capping at %d users / %d applications trims delay %.4g → %.4g s\n",
		users, apps, s2.Delay, capped.Delay)

	// 4. The ATM-style admissible call region (Section 7): voice and video
	// connections sharing the link, decided by table lookup.
	region, err := admission.NewRegion([]admission.CallClass{
		{Name: "voice", MsgRate: 0.5},
		{Name: "video", MsgRate: 2.0},
	}, 20, 0.1)
	if err != nil {
		log.Fatal(err)
	}
	table, err := region.BuildTable()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n4) admissible call region (λmax %.4g msgs/s):\n%s", region.LambdaMax(), table)
	for _, req := range [][2]int{{10, 2}, {10, 3}, {20, 0}} {
		fmt.Printf("   request (voice=%d, video=%d): admit=%v\n",
			req[0], req[1], table.Lookup(req[0], req[1]))
	}

	// 5. The burstiness penalty: how much of the Poisson-engineered region
	// is actually safe when the offered traffic is a HAP?
	headroom, err := admission.HAPHeadroom(
		func(scale float64) func(float64) float64 {
			return m.Scale(hap.LevelUser, scale).Interarrival().Laplace
		},
		func(scale float64) float64 { return scale * m.MeanRate() },
		20, 0.105)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n5) HAP headroom: only %.0f%% of the Poisson-admissible rate is safe at this SLO.\n",
		100*headroom)
}
