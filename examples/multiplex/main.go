// Multiplexing heterogeneous applications: the paper's Section 6 warns
// that multiplexing very different applications on one channel increases
// burstiness and "the less bursty applications will suffer a lot". This
// example quantifies that with two application populations — a smooth
// interactive one and a bursty image-transfer one — served together vs
// served on dedicated (proportionally sized) servers.
//
//	go run ./examples/multiplex
package main

import (
	"fmt"
	"log"

	"hap"
	"hap/internal/core"
	"hap/internal/sim"
)

func main() {
	// Interactive: many small messages, low per-app rate (smooth).
	smooth := core.AppType{
		Name: "interactive", Lambda: 0.02, Mu: 0.01,
		Messages: []core.MessageType{{Name: "keystroke-echo", Lambda: 0.05, Mu: 40}},
	}
	// Image transfer: rare but intense bursts (one active app fires 1.2/s).
	bursty := core.AppType{
		Name: "image", Lambda: 0.002, Mu: 0.01,
		Messages: []core.MessageType{{Name: "image-block", Lambda: 1.2, Mu: 40}},
	}
	lambdaU, muU := 0.005, 0.001 // ν = 5 users

	mixed := &core.Model{Name: "mixed", Lambda: lambdaU, Mu: muU,
		Apps: []core.AppType{smooth, bursty}}
	onlySmooth := &core.Model{Name: "smooth-only", Lambda: lambdaU, Mu: muU,
		Apps: []core.AppType{smooth}}
	onlyBursty := &core.Model{Name: "bursty-only", Lambda: lambdaU, Mu: muU,
		Apps: []core.AppType{bursty}}
	for _, m := range []*core.Model{mixed, onlySmooth, onlyBursty} {
		if err := m.Validate(); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("smooth stream: λ̄=%.4g SCV=%.3g   bursty stream: λ̄=%.4g SCV=%.3g\n",
		onlySmooth.MeanRate(), onlySmooth.Interarrival().SCV(),
		onlyBursty.MeanRate(), onlyBursty.Interarrival().SCV())
	fmt.Printf("mixed stream:  λ̄=%.4g SCV=%.3g — mixing imports the image bursts\n\n",
		mixed.MeanRate(), mixed.Interarrival().SCV())

	// Shared channel at ρ = 0.5 vs dedicated channels with the same total
	// capacity split in proportion to load.
	totalMu := mixed.MeanRate() / 0.5
	horizon := 4e5

	run := func(m *core.Model, mu float64, seed int64) *sim.RunResult {
		scaled := m.Clone()
		for i := range scaled.Apps {
			for j := range scaled.Apps[i].Messages {
				scaled.Apps[i].Messages[j].Mu = mu
			}
		}
		return hap.Simulate(scaled, hap.SimConfig{Horizon: horizon, Seed: seed,
			Measure: hap.SimMeasure{Warmup: horizon / 100, ClassCount: scaled.NumLeaves()}})
	}

	fmt.Printf("shared channel (μ=%.3g) vs dedicated channels, %g model seconds each:\n", totalMu, horizon)
	shared := run(mixed, totalMu, 1)
	smoothShare := onlySmooth.MeanRate() / mixed.MeanRate()
	dedSmooth := run(onlySmooth, totalMu*smoothShare, 2)
	dedBursty := run(onlyBursty, totalMu*(1-smoothShare), 3)

	// In the mixed model class 0 is the interactive message type.
	sharedSmoothDelay := shared.Meas.ByClass[0].Mean()
	fmt.Printf("  interactive delay, shared:    %.4g s\n", sharedSmoothDelay)
	fmt.Printf("  interactive delay, dedicated: %.4g s\n", dedSmooth.Meas.MeanDelay())
	fmt.Printf("  image delay, shared:          %.4g s\n", shared.Meas.ByClass[1].Mean())
	fmt.Printf("  image delay, dedicated:       %.4g s\n", dedBursty.Meas.MeanDelay())
	penalty := sharedSmoothDelay / dedSmooth.Meas.MeanDelay()
	fmt.Printf("\n→ multiplexing with the bursty application costs the interactive class %.1f× its dedicated delay\n", penalty)
	fmt.Println("  (the Section 6 implication: do not multiplex very heterogeneous applications on one channel).")
}
