// Fitting: the library's closed forms run in reverse. Simulate the
// paper's ON-OFF traffic, hand the raw arrival timestamps to FitTrace,
// and compare what the fitters recover against the generator's truth —
// the same generate→fit loop `hapgen -mode trace | hapfit` runs from the
// command line.
//
//	go run ./examples/fitting
package main

import (
	"context"
	"fmt"
	"log"

	"hap"
)

func main() {
	// Truth: ν = 5 expected active calls (λ/μ), each emitting 2 msgs/s.
	truth := hap.NewOnOff(0.05, 0.01, 2, 100)
	fmt.Printf("truth:  ON-OFF λ=%.3g μ=%.3g γ=%.3g  (rate %.4g/s, c² %.4g)\n",
		truth.Lambda, truth.Mu, truth.MsgLambda, truth.MeanRate(), truth.SCV())

	// A quarter-million arrivals, warmed up past the modulator transient.
	res := hap.SimulateOnOff(truth, hap.SimConfig{
		Horizon: 26000, Seed: 7,
		Measure: hap.SimMeasure{Warmup: 1000, KeepArrivalTimes: 300000},
	})
	times := res.Meas.Arrivals
	fmt.Printf("trace:  %d simulated arrivals\n\n", len(times))

	rep, err := hap.FitTrace(context.Background(), times, hap.FitOptions{
		ServiceRate: truth.MsgMu, // service is declared, never identifiable from arrivals
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-8s %10s %10s %14s\n", "model", "rate", "c²", "BIC")
	for _, c := range rep.Candidates {
		if c.Error != "" {
			fmt.Printf("%-8s failed: %s\n", c.Name, c.Error)
			continue
		}
		marker := "  "
		if c.Name == rep.Best {
			marker = " *"
		}
		fmt.Printf("%-8s %10.4g %10.4g %14.1f%s\n", c.Name, c.Rate, c.C2, c.BIC, marker)
	}

	// BIC often prefers mmpp2 here: it scores the interarrivals as a
	// hidden-Markov *sequence* while the closed forms score them as
	// independent renewal draws, so on correlated traffic the MMPP holds a
	// structural likelihood advantage (see internal/fit.Candidate.LogLik).
	// The parameter recovery story is in the ON-OFF candidate itself.
	fmt.Printf("\nselected: %s\n", rep.Best)
	for _, c := range rep.Candidates {
		if c.OnOff != nil {
			m := c.OnOff.Model
			fmt.Printf("fitted: ON-OFF λ=%.3g μ=%.3g γ=%.3g  (rate %.4g/s, c² %.4g)\n",
				m.Lambda, m.Mu, m.MsgLambda, m.MeanRate(), m.SCV())
		}
	}
}
