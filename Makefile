GO ?= go

.PHONY: all build test ci fmt vet race bench-smoke bench baseline

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# ci is the merge gate: formatting, vet, the race detector over the
# concurrency-bearing packages, and a one-iteration benchmark smoke test.
ci: fmt vet race bench-smoke

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./internal/par ./internal/sim

bench-smoke:
	$(GO) test -bench=SimulatorHAP -benchtime=1x -run '^$$' .

bench:
	$(GO) test -bench . -benchmem -run '^$$' .

# baseline regenerates BENCH_baseline.json (one iteration per benchmark —
# a reference shape, not a statistically stable measurement).
baseline:
	$(GO) test -bench . -benchtime=1x -run '^$$' -json . > BENCH_baseline.json
