GO ?= go

.PHONY: all build test ci fmt vet race race-all bench-smoke bench bench-pr5 bench-gate baseline metrics-smoke fit-smoke

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# ci is the merge gate: formatting, vet, the race detector over the
# concurrency-bearing packages, a one-iteration benchmark smoke test, and
# the generate→fit pipeline smoke.
ci: fmt vet race bench-smoke fit-smoke

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./internal/par ./internal/sim ./internal/obs

# race-all runs the whole module under the race detector (the CI race job);
# -short skips the wall-clock-sensitive netgen delivery assertions, and the
# raised -timeout absorbs the detector's ~15x slowdown on the solver suite
# (which busts go test's default 10 minute per-package budget).
race-all:
	$(GO) test -race -short -timeout 40m ./...

# metrics-smoke boots cmd/hapsim with -metrics on an ephemeral port,
# scrapes the exposition once, and asserts the required families are there.
metrics-smoke:
	$(GO) run ./scripts/metricsmoke

# fit-smoke runs the generate→fit pipeline end to end: hapgen exports a
# ~10k-arrival Poisson trace, hapfit fits it, and the gate asserts the
# selector names "poisson" at the generator's rate.
fit-smoke:
	$(GO) run ./scripts/fitsmoke

bench-smoke:
	$(GO) test -bench=SimulatorHAP -benchtime=1x -run '^$$' .

# bench captures a fresh full benchmark sweep as BENCH_pr5.json (same
# go-test-json schema as BENCH_baseline.json) and gates the event loop's
# allocs/op against the committed baseline.
bench: bench-pr5 bench-gate

bench-pr5:
	$(GO) test -bench . -benchtime=1x -run '^$$' -json . > BENCH_pr5.json

bench-gate:
	$(GO) run ./scripts/benchgate -baseline BENCH_baseline.json -current BENCH_pr5.json

# baseline regenerates BENCH_baseline.json (one iteration per benchmark —
# a reference shape, not a statistically stable measurement).
baseline:
	$(GO) test -bench . -benchtime=1x -run '^$$' -json . > BENCH_baseline.json
