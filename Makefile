GO ?= go

.PHONY: all build test ci fmt vet race race-all bench-smoke bench bench-pr10 bench-gate fit-bench net-bench baseline metrics-smoke fit-smoke shard-smoke ctrl-smoke net-smoke

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# ci is the merge gate: formatting, vet, the race detector over the
# concurrency-bearing packages, a one-iteration benchmark smoke test, the
# generate→fit pipeline smoke, the multi-shard determinism smoke, the
# control-plane smoke, the queueing-network smoke, and the benchmark
# trajectory gate (fresh capture vs the previous PR's).
ci: fmt vet race bench-smoke fit-smoke shard-smoke ctrl-smoke net-smoke bench

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./internal/par ./internal/sim ./internal/obs ./internal/ctrl ./internal/netgen ./internal/net

# race-all runs the whole module under the race detector (the CI race job);
# -short skips the wall-clock-sensitive netgen delivery assertions, and the
# raised -timeout absorbs the detector's ~15x slowdown on the solver suite
# (which busts go test's default 10 minute per-package budget).
race-all:
	$(GO) test -race -short -timeout 40m ./...

# metrics-smoke boots cmd/hapsim with -metrics on an ephemeral port,
# scrapes the exposition once, and asserts the required families are there.
metrics-smoke:
	$(GO) run ./scripts/metricsmoke

# shard-smoke builds cmd/hapsim and asserts the sharded engine's two CI
# properties: -shards 1 and -shards 4 print bit-identical statistics, and
# a sharded run under -metrics exposes the scheduler gauges.
shard-smoke:
	$(GO) run ./scripts/shardsmoke

# fit-smoke runs the generate→fit pipeline end to end: hapgen exports a
# ~10k-arrival Poisson trace, hapfit fits it, and the gate asserts the
# selector names "poisson" at the generator's rate.
fit-smoke:
	$(GO) run ./scripts/fitsmoke

# ctrl-smoke boots cmd/hapd with one ephemeral stream, feeds a UDP
# burst, waits for an admission decision on the API, checks the
# hap_ctrl_* metric families, and asserts SIGTERM drains to exit 0.
ctrl-smoke:
	$(GO) run ./scripts/ctrlsmoke

# net-smoke builds cmd/hapnet and asserts the queueing-network layer's CI
# properties: a Poisson tandem delivers end to end with packet
# conservation, a replicated fan-in prints bit-identical statistics at
# -parallel 1 and -parallel 4, and a run under -metrics exposes the
# hap_net_* families with nonzero forwarded/delivered counters.
net-smoke:
	$(GO) run ./scripts/netsmoke

bench-smoke:
	$(GO) test -bench=SimulatorHAP -benchtime=1x -run '^$$' .

# bench captures a fresh full benchmark sweep as BENCH_pr10.json (same
# go-test-json schema as BENCH_baseline.json) and runs the gate: allocs/op
# against the committed baseline, plus the per-PR trajectory (allocs/op,
# events/s and arrivals/s) against the previous capture, BENCH_pr7.json.
# The gate auto-discovers the newest BENCH_pr<N>.json as current and the
# one before it as previous; see scripts/benchgate for the tolerance
# calibration.
bench: bench-pr10 bench-gate

bench-pr10:
	$(GO) test -bench . -benchtime=1x -run '^$$' -json . > BENCH_pr10.json

# fit-bench re-measures just the fitter throughput benchmarks
# (BenchmarkFitEM, BenchmarkFitTraceStats) and appends them to the
# current capture, then re-runs the gate — the arrivals/s floor against
# the previous PR without paying for the full sweep. The gate keeps the
# last occurrence of each benchmark, so the append overrides the sweep's
# numbers.
fit-bench:
	$(GO) test -bench 'BenchmarkFit(EM|TraceStats)$$' -benchtime=1x -run '^$$' -json . >> BENCH_pr10.json
	$(GO) run ./scripts/benchgate

# net-bench re-measures just the queueing-network throughput benchmarks
# (BenchmarkNetworkEvents, BenchmarkNetworkTandemEvents) and appends them
# to the current capture, then re-runs the gate so network events/s joins
# the per-PR trajectory.
net-bench:
	$(GO) test -bench 'BenchmarkNetwork(Tandem)?Events$$' -benchtime=1x -run '^$$' -json . >> BENCH_pr10.json
	$(GO) run ./scripts/benchgate

bench-gate:
	$(GO) run ./scripts/benchgate

# baseline regenerates BENCH_baseline.json (one iteration per benchmark —
# a reference shape, not a statistically stable measurement).
baseline:
	$(GO) test -bench . -benchtime=1x -run '^$$' -json . > BENCH_baseline.json
