// Command ctrlsmoke is the `make ctrl-smoke` gate: it builds cmd/hapd,
// boots it with three streams on a 2-worker shared fit pool, bursts
// every stream over UDP, polls the decision API until per-stream and
// aggregate admission decisions are served, checks the decision history
// ring, asserts the hap_ctrl_* metric families (including the pool and
// aggregate ones) are live, then SIGTERMs the daemon and requires a
// clean drained exit.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"hap/internal/netgen"
)

// streams is how many UDP sinks the smoke daemon serves; workers is the
// (smaller) shared pool size — the point of the exercise.
const (
	streams = 3
	workers = 2
)

// required are the control-plane families the observability contract
// promises once at least one refit → solve → admit cycle and one
// aggregate recompute have run.
var required = []string{
	"hap_ctrl_streams",
	"hap_ctrl_arrivals_total",
	"hap_ctrl_refits_total",
	"hap_ctrl_solves_total",
	"hap_ctrl_pool_workers",
	"hap_ctrl_pool_jobs_total",
	"hap_ctrl_aggregate_streams",
	"hap_ctrl_aggregate_solves_total",
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ctrl-smoke:", err)
		os.Exit(1)
	}
	fmt.Println("ctrl-smoke: ok")
}

func run() error {
	dir, err := os.MkdirTemp("", "ctrlsmoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	bin := filepath.Join(dir, "hapd")

	build := exec.Command("go", "build", "-o", bin, "./cmd/hapd")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		return fmt.Errorf("build hapd: %w", err)
	}

	// Small refit/window thresholds so one short burst crosses a full
	// fit → solve → admit cycle on every stream.
	cmd := exec.Command(bin,
		"-listen", strings.TrimSuffix(strings.Repeat("127.0.0.1:0,", streams), ","),
		"-workers", fmt.Sprint(workers),
		"-mu3", "1e5",
		"-target", "0.01",
		"-refit", "200",
		"-min-window", "32",
		"-window", "600")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return err
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return err
	}
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()

	udpAddrs, apiAddr, rest, err := awaitAddrs(stdout, streams)
	if err != nil {
		return err
	}

	for _, addr := range udpAddrs {
		if err := feed(addr, 1200); err != nil {
			return err
		}
	}

	base := "http://" + apiAddr
	for i := range udpAddrs {
		if err := awaitDecision(fmt.Sprintf("%s/v1/streams/s%d/admit", base, i)); err != nil {
			return err
		}
	}
	// Every stream has decided, so the next aggregate recompute (tick
	// cadence, 1s) must serve a merged decision over all of them.
	if err := awaitAggregate(base+"/v1/aggregate/admit", streams); err != nil {
		return err
	}
	for i := range udpAddrs {
		if err := checkHistory(fmt.Sprintf("%s/v1/streams/s%d/history", base, i)); err != nil {
			return err
		}
	}

	page, err := scrape(base + "/metrics")
	if err != nil {
		return err
	}
	var missing []string
	for _, name := range required {
		if !strings.Contains(page, name) {
			missing = append(missing, name)
		}
	}
	if len(missing) > 0 {
		return fmt.Errorf("exposition missing %v\n--- page ---\n%s", missing, page)
	}

	// SIGTERM must drain: exit 0 and announce the drain on stdout. Read
	// the pipe to EOF before Wait — Wait closes it and would discard the
	// drain line.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	var out string
	select {
	case out = <-rest:
	case <-time.After(30 * time.Second):
		return fmt.Errorf("hapd did not exit within 30s of SIGTERM")
	}
	if err := cmd.Wait(); err != nil {
		return fmt.Errorf("hapd exited non-zero after SIGTERM: %w", err)
	}
	if !strings.Contains(out, "hapd: drained") {
		return fmt.Errorf("missing drain announcement; stdout tail: %.200s", out)
	}
	return nil
}

// awaitAddrs reads the child's stdout until all n stream announcements
// and the API address, then keeps draining the pipe in the background
// and delivers the remaining output on the returned channel.
func awaitAddrs(r io.Reader, n int) (udp []string, api string, rest <-chan string, err error) {
	sc := bufio.NewScanner(r)
	type addrs struct {
		udp map[string]string
		api string
	}
	got := make(chan addrs, 1)
	tail := make(chan string, 1)
	go func() {
		a := addrs{udp: make(map[string]string)}
		var buf bytes.Buffer
		sent := false
		for sc.Scan() {
			line := sc.Text()
			buf.WriteString(line)
			buf.WriteByte('\n')
			if rest, ok := strings.CutPrefix(line, "stream "); ok {
				if id, addr, ok := strings.Cut(rest, ": udp "); ok {
					a.udp[id] = addr
				}
			}
			if v, ok := strings.CutPrefix(line, "api: http://"); ok {
				a.api = v
			}
			if !sent && len(a.udp) == n && a.api != "" {
				got <- a
				sent = true
			}
		}
		if !sent {
			close(got)
		}
		tail <- buf.String()
	}()
	select {
	case a, ok := <-got:
		if !ok {
			return nil, "", nil, fmt.Errorf("hapd exited without announcing its addresses")
		}
		out := make([]string, 0, n)
		for i := 0; i < n; i++ {
			addr, ok := a.udp[fmt.Sprintf("s%d", i)]
			if !ok {
				return nil, "", nil, fmt.Errorf("hapd never announced stream s%d", i)
			}
			out = append(out, addr)
		}
		return out, a.api, tail, nil
	case <-time.After(30 * time.Second):
		return nil, "", nil, fmt.Errorf("timed out waiting for hapd address announcements")
	}
}

// feed sends n sequenced packets to the stream sink, paced so the
// fitted window spans a measurable interval.
func feed(addr string, n int) error {
	conn, err := net.Dial("udp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	var buf []byte
	for i := 1; i <= n; i++ {
		buf = netgen.Packet{Seq: uint64(i)}.Encode(buf[:0])
		if _, err := conn.Write(buf); err != nil {
			return err
		}
		time.Sleep(200 * time.Microsecond)
	}
	return nil
}

// awaitDecision polls the admit endpoint until it serves a decision
// (200 with an "admit" field — 503 means the stream is still warming).
func awaitDecision(url string) error {
	client := &http.Client{Timeout: 5 * time.Second}
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := client.Get(url)
		if err != nil {
			time.Sleep(100 * time.Millisecond)
			continue
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			var dec struct {
				Admit    *bool   `json:"admit"`
				Headroom float64 `json:"headroom"`
			}
			if err := json.Unmarshal(body, &dec); err != nil {
				return fmt.Errorf("admit response is not JSON: %.200s", body)
			}
			if dec.Admit == nil {
				return fmt.Errorf("admit response missing admit field: %.200s", body)
			}
			return nil
		}
		if resp.StatusCode != http.StatusServiceUnavailable {
			return fmt.Errorf("GET %s: %s: %.200s", url, resp.Status, body)
		}
		time.Sleep(100 * time.Millisecond)
	}
	return fmt.Errorf("no admission decision served within 30s")
}

// awaitAggregate polls the aggregate admit endpoint until the merged
// decision covers every stream (the recompute runs on a 1s tick, so the
// first answers may span fewer fits).
func awaitAggregate(url string, want int) error {
	client := &http.Client{Timeout: 5 * time.Second}
	deadline := time.Now().Add(30 * time.Second)
	var last string
	for time.Now().Before(deadline) {
		resp, err := client.Get(url)
		if err != nil {
			time.Sleep(100 * time.Millisecond)
			continue
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		last = string(body)
		if resp.StatusCode == http.StatusOK {
			var dec struct {
				Admit   *bool    `json:"admit"`
				Streams []string `json:"streams"`
				States  int      `json:"states"`
			}
			if err := json.Unmarshal(body, &dec); err != nil {
				return fmt.Errorf("aggregate admit response is not JSON: %.200s", body)
			}
			if dec.Admit == nil {
				return fmt.Errorf("aggregate admit response missing admit field: %.200s", body)
			}
			if len(dec.Streams) == want {
				if dec.States != 1<<want {
					return fmt.Errorf("aggregate states = %d over %d streams, want %d: %.200s",
						dec.States, want, 1<<want, body)
				}
				return nil
			}
		} else if resp.StatusCode != http.StatusServiceUnavailable {
			return fmt.Errorf("GET %s: %s: %.200s", url, resp.Status, body)
		}
		time.Sleep(100 * time.Millisecond)
	}
	return fmt.Errorf("aggregate decision never covered all %d streams within 30s; last: %.300s", want, last)
}

// checkHistory asserts the decision history ring serves at least one
// record with the fit → decision provenance.
func checkHistory(url string) error {
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s: %.200s", url, resp.Status, body)
	}
	var hist struct {
		Capacity int `json:"capacity"`
		Records  []struct {
			Fit      *json.RawMessage `json:"fit"`
			Decision *json.RawMessage `json:"decision"`
		} `json:"records"`
	}
	if err := json.Unmarshal(body, &hist); err != nil {
		return fmt.Errorf("history response is not JSON: %.200s", body)
	}
	if hist.Capacity <= 0 || len(hist.Records) == 0 {
		return fmt.Errorf("history empty after decisions: %.200s", body)
	}
	if hist.Records[0].Fit == nil || hist.Records[0].Decision == nil {
		return fmt.Errorf("history record missing fit/decision: %.200s", body)
	}
	return nil
}

func scrape(url string) (string, error) {
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	return string(body), err
}
