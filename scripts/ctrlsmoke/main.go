// Command ctrlsmoke is the `make ctrl-smoke` gate: it builds cmd/hapd,
// boots it with one stream on an ephemeral port, feeds a short UDP
// burst, polls the decision API until an admission decision is served,
// asserts the hap_ctrl_* metric families are live, then SIGTERMs the
// daemon and requires a clean drained exit.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"hap/internal/netgen"
)

// required are the control-plane families the observability contract
// promises once at least one refit → solve → admit cycle has run.
var required = []string{
	"hap_ctrl_streams",
	"hap_ctrl_arrivals_total",
	"hap_ctrl_refits_total",
	"hap_ctrl_solves_total",
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ctrl-smoke:", err)
		os.Exit(1)
	}
	fmt.Println("ctrl-smoke: ok")
}

func run() error {
	dir, err := os.MkdirTemp("", "ctrlsmoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	bin := filepath.Join(dir, "hapd")

	build := exec.Command("go", "build", "-o", bin, "./cmd/hapd")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		return fmt.Errorf("build hapd: %w", err)
	}

	// Small refit/window thresholds so one short burst crosses a full
	// fit → solve → admit cycle.
	cmd := exec.Command(bin,
		"-listen", "127.0.0.1:0",
		"-mu3", "1e5",
		"-target", "0.01",
		"-refit", "200",
		"-min-window", "32",
		"-window", "600")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return err
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return err
	}
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()

	udpAddr, apiAddr, rest, err := awaitAddrs(stdout)
	if err != nil {
		return err
	}

	if err := feed(udpAddr, 1200); err != nil {
		return err
	}

	if err := awaitDecision("http://" + apiAddr + "/v1/streams/s0/admit"); err != nil {
		return err
	}

	page, err := scrape("http://" + apiAddr + "/metrics")
	if err != nil {
		return err
	}
	var missing []string
	for _, name := range required {
		if !strings.Contains(page, name) {
			missing = append(missing, name)
		}
	}
	if len(missing) > 0 {
		return fmt.Errorf("exposition missing %v\n--- page ---\n%s", missing, page)
	}

	// SIGTERM must drain: exit 0 and announce the drain on stdout. Read
	// the pipe to EOF before Wait — Wait closes it and would discard the
	// drain line.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	var out string
	select {
	case out = <-rest:
	case <-time.After(30 * time.Second):
		return fmt.Errorf("hapd did not exit within 30s of SIGTERM")
	}
	if err := cmd.Wait(); err != nil {
		return fmt.Errorf("hapd exited non-zero after SIGTERM: %w", err)
	}
	if !strings.Contains(out, "hapd: drained") {
		return fmt.Errorf("missing drain announcement; stdout tail: %.200s", out)
	}
	return nil
}

// awaitAddrs reads the child's stdout until both the stream and API
// address announcements, then keeps draining the pipe in the background
// and delivers the remaining output on the returned channel.
func awaitAddrs(r io.Reader) (udp, api string, rest <-chan string, err error) {
	sc := bufio.NewScanner(r)
	type addrs struct{ udp, api string }
	got := make(chan addrs, 1)
	tail := make(chan string, 1)
	go func() {
		var a addrs
		var buf bytes.Buffer
		sent := false
		for sc.Scan() {
			line := sc.Text()
			buf.WriteString(line)
			buf.WriteByte('\n')
			if v, ok := strings.CutPrefix(line, "stream s0: udp "); ok {
				a.udp = v
			}
			if v, ok := strings.CutPrefix(line, "api: http://"); ok {
				a.api = v
			}
			if !sent && a.udp != "" && a.api != "" {
				got <- a
				sent = true
			}
		}
		if !sent {
			close(got)
		}
		tail <- buf.String()
	}()
	select {
	case a, ok := <-got:
		if !ok {
			return "", "", nil, fmt.Errorf("hapd exited without announcing its addresses")
		}
		return a.udp, a.api, tail, nil
	case <-time.After(30 * time.Second):
		return "", "", nil, fmt.Errorf("timed out waiting for hapd address announcements")
	}
}

// feed sends n sequenced packets to the stream sink, paced so the
// fitted window spans a measurable interval.
func feed(addr string, n int) error {
	conn, err := net.Dial("udp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	var buf []byte
	for i := 1; i <= n; i++ {
		buf = netgen.Packet{Seq: uint64(i)}.Encode(buf[:0])
		if _, err := conn.Write(buf); err != nil {
			return err
		}
		time.Sleep(200 * time.Microsecond)
	}
	return nil
}

// awaitDecision polls the admit endpoint until it serves a decision
// (200 with an "admit" field — 503 means the stream is still warming).
func awaitDecision(url string) error {
	client := &http.Client{Timeout: 5 * time.Second}
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := client.Get(url)
		if err != nil {
			time.Sleep(100 * time.Millisecond)
			continue
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			var dec struct {
				Admit    *bool   `json:"admit"`
				Headroom float64 `json:"headroom"`
			}
			if err := json.Unmarshal(body, &dec); err != nil {
				return fmt.Errorf("admit response is not JSON: %.200s", body)
			}
			if dec.Admit == nil {
				return fmt.Errorf("admit response missing admit field: %.200s", body)
			}
			return nil
		}
		if resp.StatusCode != http.StatusServiceUnavailable {
			return fmt.Errorf("GET %s: %s: %.200s", url, resp.Status, body)
		}
		time.Sleep(100 * time.Millisecond)
	}
	return fmt.Errorf("no admission decision served within 30s")
}

func scrape(url string) (string, error) {
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	return string(body), err
}
