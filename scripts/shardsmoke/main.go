// Command shardsmoke is the `make shard-smoke` gate for the sharded
// simulation engine. It builds cmd/hapsim and asserts the two properties
// CI cares about:
//
//  1. Determinism: the same aggregate run on -shards 1 and -shards 4
//     prints bit-identical statistics (event/arrival/departure counters,
//     delay and queue moments) — shard count changes wall-clock time,
//     never the numbers. Wall-clock fields (elapsed, events/s) are
//     stripped before comparing.
//  2. Liveness under -metrics: a sharded run with the metrics server
//     exposes the scheduler gauges (hap_sim_sched_pending,
//     hap_sim_sched_buckets, hap_sim_stations) alongside the event
//     counters, and exits 0.
package main

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"time"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "shard-smoke:", err)
		os.Exit(1)
	}
	fmt.Println("shard-smoke: ok")
}

func run() error {
	dir, err := os.MkdirTemp("", "shardsmoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	bin := filepath.Join(dir, "hapsim")

	build := exec.Command("go", "build", "-o", bin, "./cmd/hapsim")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		return fmt.Errorf("build hapsim: %w", err)
	}

	// Determinism: identical aggregate on 1 and 4 shards.
	one, err := statsLines(bin, "-shards", "1", "-sources", "16", "-horizon", "1500", "-seed", "11")
	if err != nil {
		return err
	}
	four, err := statsLines(bin, "-shards", "4", "-sources", "16", "-horizon", "1500", "-seed", "11")
	if err != nil {
		return err
	}
	if one != four {
		return fmt.Errorf("sharded stats depend on shard count:\n-- shards=1 --\n%s\n-- shards=4 --\n%s", one, four)
	}

	// Metrics: a sharded run serves the scheduler gauges.
	return metricsCheck(bin)
}

// wallClock matches the fields of the hapsim report that legitimately
// differ between runs: the wall-time suffix, the aggregate events/s rate,
// and the shard count itself.
var wallClock = regexp.MustCompile(`(, wall .*$| on \d+ shards|\(.*events/s aggregate\))`)

// statsLines runs hapsim and returns its deterministic statistics lines
// with wall-clock fields removed.
func statsLines(bin string, args ...string) (string, error) {
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err != nil {
		return "", fmt.Errorf("hapsim %s: %w\n%s", strings.Join(args, " "), err, out)
	}
	var keep []string
	for _, line := range strings.Split(string(out), "\n") {
		switch {
		case strings.HasPrefix(line, "sharded aggregate:"),
			strings.HasPrefix(line, "events "),
			strings.HasPrefix(line, "mean delay"),
			strings.HasPrefix(line, "mean queue length"):
			keep = append(keep, wallClock.ReplaceAllString(line, ""))
		}
	}
	if len(keep) < 4 {
		return "", fmt.Errorf("hapsim %s: expected 4 statistics lines, got %d:\n%s",
			strings.Join(args, " "), len(keep), out)
	}
	return strings.Join(keep, "\n"), nil
}

// required are the families the sharded engine promises on the exposition
// page; the sched_* gauges replaced hap_sim_event_heap_size when the
// scheduler became a heap/calendar hybrid.
var required = []string{
	"hap_sim_events_total",
	"hap_sim_sched_pending",
	"hap_sim_sched_buckets",
	"hap_sim_stations",
	"hap_sim_merges_total",
}

// metricsCheck runs a sharded workload long enough to outlive one scrape
// and asserts the scheduler gauges are on the exposition page.
func metricsCheck(bin string) error {
	cmd := exec.Command(bin,
		"-metrics", "127.0.0.1:0",
		"-shards", "4", "-sources", "32", "-horizon", "2e4", "-seed", "11")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return err
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return err
	}
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()

	addr, err := awaitAddr(stdout)
	if err != nil {
		return err
	}
	page, err := scrape("http://" + addr + "/metrics")
	if err != nil {
		return err
	}
	var missing []string
	for _, name := range required {
		if !strings.Contains(page, name) {
			missing = append(missing, name)
		}
	}
	if len(missing) > 0 {
		return fmt.Errorf("sharded exposition missing %v\n--- page ---\n%s", missing, page)
	}
	return nil
}

// awaitAddr reads the child's stdout until the "metrics: http://ADDR/metrics"
// announcement (and keeps draining the pipe so the child never blocks).
func awaitAddr(r io.Reader) (string, error) {
	sc := bufio.NewScanner(r)
	addrCh := make(chan string, 1)
	go func() {
		defer close(addrCh)
		for sc.Scan() {
			if rest, ok := strings.CutPrefix(sc.Text(), "metrics: http://"); ok {
				addrCh <- strings.TrimSuffix(rest, "/metrics")
			}
		}
	}()
	select {
	case addr, ok := <-addrCh:
		if !ok || addr == "" {
			return "", fmt.Errorf("hapsim exited without announcing a metrics address")
		}
		return addr, nil
	case <-time.After(30 * time.Second):
		return "", fmt.Errorf("timed out waiting for the metrics address announcement")
	}
}

func scrape(url string) (string, error) {
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	return string(body), err
}
