// Command netsmoke is the `make net-smoke` gate for the queueing-network
// layer. It builds cmd/hapnet and asserts the three properties CI cares
// about:
//
//  1. Tandem smoke: a Poisson-fed serial line delivers traffic end to end
//     (JSON report has nonzero delivered and forwarded counts, zero
//     unexplained loss).
//  2. Fan-in determinism: the same fan-in run with -parallel 1 and
//     -parallel 4 over replications prints bit-identical statistics.
//  3. Metrics: a network run under -metrics exposes the hap_net_*
//     families with nonzero forwarded/delivered counters.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"time"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "net-smoke:", err)
		os.Exit(1)
	}
	fmt.Println("net-smoke: ok")
}

func run() error {
	dir, err := os.MkdirTemp("", "netsmoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	bin := filepath.Join(dir, "hapnet")

	build := exec.Command("go", "build", "-o", bin, "./cmd/hapnet")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		return fmt.Errorf("build hapnet: %w", err)
	}

	if err := tandemCheck(bin, dir); err != nil {
		return err
	}
	if err := determinismCheck(bin); err != nil {
		return err
	}
	return metricsCheck(bin)
}

// report mirrors the fields of hapnet's -json document the gate asserts on.
type report struct {
	Topology string `json:"topology"`
	Nodes    []struct {
		Name        string `json:"name"`
		In          int64  `json:"in"`
		Forwarded   int64  `json:"forwarded"`
		Delivered   int64  `json:"delivered"`
		DroppedFull int64  `json:"dropped_full"`
	} `json:"nodes"`
	Offered     int64 `json:"offered"`
	Delivered   int64 `json:"delivered"`
	DroppedFull int64 `json:"dropped_full"`
	DroppedHops int64 `json:"dropped_hops"`
	InFlight    int64 `json:"in_flight"`
	Truncated   bool  `json:"truncated"`
}

// tandemCheck runs a Poisson-fed 3-stage tandem and asserts conservation
// and liveness from the JSON report.
func tandemCheck(bin, dir string) error {
	out := filepath.Join(dir, "tandem.json")
	cmd := exec.Command(bin,
		"-topo", "tandem", "-nodes", "3", "-mu", "12",
		"-source", "poisson", "-rate", "8",
		"-horizon", "800", "-seed", "7", "-json", out)
	if b, err := cmd.CombinedOutput(); err != nil {
		return fmt.Errorf("tandem run: %w\n%s", err, b)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		return err
	}
	var r report
	if err := json.Unmarshal(raw, &r); err != nil {
		return fmt.Errorf("tandem report: %w", err)
	}
	if r.Truncated {
		return fmt.Errorf("tandem run truncated before its horizon")
	}
	if r.Delivered == 0 {
		return fmt.Errorf("tandem delivered no packets:\n%s", raw)
	}
	for _, n := range r.Nodes[:len(r.Nodes)-1] {
		if n.Forwarded == 0 {
			return fmt.Errorf("tandem node %s forwarded nothing:\n%s", n.Name, raw)
		}
	}
	if got := r.Delivered + r.DroppedFull + r.DroppedHops + r.InFlight; got != r.Offered {
		return fmt.Errorf("tandem conservation violated: offered %d, accounted %d:\n%s", r.Offered, got, raw)
	}
	return nil
}

// wallClock matches report fields that legitimately differ between runs.
var wallClock = regexp.MustCompile(`, wall .*$`)

// statsLines runs hapnet and returns its deterministic statistics lines
// with wall-clock fields removed.
func statsLines(bin string, args ...string) (string, error) {
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err != nil {
		return "", fmt.Errorf("hapnet %s: %w\n%s", strings.Join(args, " "), err, out)
	}
	var keep []string
	for _, line := range strings.Split(string(out), "\n") {
		switch {
		case strings.HasPrefix(line, "topology "),
			strings.HasPrefix(line, "events "),
			strings.HasPrefix(line, "end-to-end sojourn"),
			strings.HasPrefix(line, "edge"),
			strings.HasPrefix(line, "bottleneck"):
			keep = append(keep, wallClock.ReplaceAllString(line, ""))
		}
	}
	if len(keep) < 5 {
		return "", fmt.Errorf("hapnet %s: expected >= 5 statistics lines, got %d:\n%s",
			strings.Join(args, " "), len(keep), out)
	}
	return strings.Join(keep, "\n"), nil
}

// determinismCheck asserts that the replicated fan-in aggregate is
// bit-identical across worker counts.
func determinismCheck(bin string) error {
	args := []string{"-topo", "fanin", "-k", "3", "-mu", "40",
		"-horizon", "400", "-seed", "11", "-reps", "4"}
	serial, err := statsLines(bin, append(args, "-parallel", "1")...)
	if err != nil {
		return err
	}
	parallel, err := statsLines(bin, append(args, "-parallel", "4")...)
	if err != nil {
		return err
	}
	if serial != parallel {
		return fmt.Errorf("network stats depend on worker count:\n-- parallel=1 --\n%s\n-- parallel=4 --\n%s", serial, parallel)
	}
	return nil
}

// required are the families the network layer promises on the exposition
// page; forwarded/delivered must be live (nonzero), the rest present.
var required = []string{
	"hap_net_packets_forwarded_total",
	"hap_net_packets_delivered_total",
	"hap_net_packets_dropped_total",
	"hap_net_runs_total",
	"hap_net_nodes",
	"hap_net_node_queue_depth",
	"hap_net_hops_total",
}

// metricsCheck runs a fan-in workload long enough to outlive one scrape
// and asserts the hap_net_* families are on the exposition page with
// nonzero forwarded counters.
func metricsCheck(bin string) error {
	cmd := exec.Command(bin,
		"-metrics", "127.0.0.1:0",
		"-topo", "fanin", "-k", "4", "-mu", "40", "-horizon", "3e4", "-seed", "11")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return err
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return err
	}
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()

	addr, err := awaitAddr(stdout)
	if err != nil {
		return err
	}
	// The forwarded counter flushes on a 4096-event watermark; poll until
	// it moves (the run above sustains ~10⁵ events/s, so this is quick).
	deadline := time.Now().Add(30 * time.Second)
	for {
		page, err := scrape("http://" + addr + "/metrics")
		if err != nil {
			return err
		}
		var missing []string
		for _, name := range required {
			if !strings.Contains(page, name) {
				missing = append(missing, name)
			}
		}
		if len(missing) > 0 {
			return fmt.Errorf("network exposition missing %v\n--- page ---\n%s", missing, page)
		}
		if counterPositive(page, "hap_net_packets_forwarded_total") &&
			counterPositive(page, "hap_net_packets_delivered_total") {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("forwarded/delivered counters never went nonzero\n--- page ---\n%s", page)
		}
		time.Sleep(200 * time.Millisecond)
	}
}

// counterPositive reports whether the named unlabelled sample is > 0.
func counterPositive(page, name string) bool {
	for _, line := range strings.Split(page, "\n") {
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[0] == name {
			return fields[1] != "0"
		}
	}
	return false
}

// awaitAddr reads the child's stdout until the "metrics: http://ADDR/metrics"
// announcement (and keeps draining the pipe so the child never blocks).
func awaitAddr(r io.Reader) (string, error) {
	sc := bufio.NewScanner(r)
	addrCh := make(chan string, 1)
	go func() {
		defer close(addrCh)
		for sc.Scan() {
			if rest, ok := strings.CutPrefix(sc.Text(), "metrics: http://"); ok {
				addrCh <- strings.TrimSuffix(rest, "/metrics")
			}
		}
	}()
	select {
	case addr, ok := <-addrCh:
		if !ok || addr == "" {
			return "", fmt.Errorf("hapnet exited without announcing a metrics address")
		}
		return addr, nil
	case <-time.After(30 * time.Second):
		return "", fmt.Errorf("timed out waiting for the metrics address announcement")
	}
}

func scrape(url string) (string, error) {
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	return string(body), err
}
