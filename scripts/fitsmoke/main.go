// Command fitsmoke is the `make fit-smoke` gate: it builds cmd/hapgen and
// cmd/hapfit, exports a ~10k-arrival Poisson trace with hapgen, fits it
// with hapfit -json, and asserts the model selector names "poisson" with
// a rate near the generator's 8.25/s — the deterministic end-to-end
// contract of the generate→fit pipeline.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"os/exec"
	"path/filepath"
)

const (
	wantRate    = 8.25 // PaperParams mean rate, hapgen's -source poisson default
	modelSecs   = "1250"
	seed        = "20260806"
	rateBand    = 0.10
	minArrivals = 8000
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "fit-smoke:", err)
		os.Exit(1)
	}
	fmt.Println("fit-smoke: ok")
}

func run() error {
	dir, err := os.MkdirTemp("", "fitsmoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	bins := map[string]string{}
	for _, name := range []string{"hapgen", "hapfit"} {
		bin := filepath.Join(dir, name)
		build := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
		build.Stderr = os.Stderr
		if err := build.Run(); err != nil {
			return fmt.Errorf("build %s: %w", name, err)
		}
		bins[name] = bin
	}

	csv := filepath.Join(dir, "trace.csv")
	gen := exec.Command(bins["hapgen"], "-mode", "trace", "-source", "poisson",
		"-model-seconds", modelSecs, "-seed", seed, "-out", csv)
	gen.Stdout, gen.Stderr = os.Stdout, os.Stderr
	if err := gen.Run(); err != nil {
		return fmt.Errorf("hapgen: %w", err)
	}

	var out bytes.Buffer
	fitCmd := exec.Command(bins["hapfit"], "-in", csv, "-json")
	fitCmd.Stdout, fitCmd.Stderr = &out, os.Stderr
	if err := fitCmd.Run(); err != nil {
		return fmt.Errorf("hapfit: %w", err)
	}

	var rep struct {
		Trace struct {
			N    int64   `json:"N"`
			Rate float64 `json:"Rate"`
		} `json:"trace"`
		Best       string `json:"best"`
		Candidates []struct {
			Name string  `json:"name"`
			Rate float64 `json:"rate"`
		} `json:"candidates"`
	}
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		return fmt.Errorf("parse report: %w\n%s", err, out.String())
	}
	if rep.Trace.N < minArrivals {
		return fmt.Errorf("trace holds %d arrivals, want at least %d", rep.Trace.N, minArrivals)
	}
	if rep.Best != "poisson" {
		return fmt.Errorf("selector picked %q on a Poisson trace, want poisson", rep.Best)
	}
	for _, c := range rep.Candidates {
		if c.Name != "poisson" {
			continue
		}
		if re := math.Abs(c.Rate-wantRate) / wantRate; re > rateBand {
			return fmt.Errorf("fitted rate %.4g, want %.4g within %.0f%%", c.Rate, wantRate, 100*rateBand)
		}
		fmt.Printf("fit-smoke: %d arrivals, best=%s, rate %.4g (truth %.4g)\n",
			rep.Trace.N, rep.Best, c.Rate, wantRate)
		return nil
	}
	return fmt.Errorf("no poisson candidate in report:\n%s", out.String())
}
