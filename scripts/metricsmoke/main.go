// Command metricsmoke is the `make metrics-smoke` gate: it builds
// cmd/hapsim, starts it with -metrics on an ephemeral port and a workload
// long enough to outlive one scrape, reads the announced address from
// stdout, scrapes /metrics and /debug/vars once, and asserts the required
// metric families are present in a non-empty exposition.
package main

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"
)

// required are the families the observability contract promises on the
// hapsim exposition page (sim counters live, solver/netgen registered via
// the binary's blank imports).
var required = []string{
	"hap_sim_events_total",
	"hap_sim_queue_depth",
	"hap_sim_sched_pending",
	"hap_sim_stations",
	"hap_solver_iterations_total",
	"hap_netgen_packets_sent_total",
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "metrics-smoke:", err)
		os.Exit(1)
	}
	fmt.Println("metrics-smoke: ok")
}

func run() error {
	dir, err := os.MkdirTemp("", "metricsmoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	bin := filepath.Join(dir, "hapsim")

	build := exec.Command("go", "build", "-o", bin, "./cmd/hapsim")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		return fmt.Errorf("build hapsim: %w", err)
	}

	// A multi-replication run on one worker keeps the process alive for
	// several wall-clock seconds — plenty for one scrape.
	cmd := exec.Command(bin,
		"-metrics", "127.0.0.1:0",
		"-horizon", "2e6", "-reps", "8", "-parallel", "1")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return err
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return err
	}
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()

	addr, err := awaitAddr(stdout)
	if err != nil {
		return err
	}

	page, err := scrape("http://" + addr + "/metrics")
	if err != nil {
		return err
	}
	if strings.TrimSpace(page) == "" {
		return fmt.Errorf("empty /metrics exposition")
	}
	var missing []string
	for _, name := range required {
		if !strings.Contains(page, name) {
			missing = append(missing, name)
		}
	}
	if len(missing) > 0 {
		return fmt.Errorf("exposition missing %v\n--- page ---\n%s", missing, page)
	}

	vars, err := scrape("http://" + addr + "/debug/vars")
	if err != nil {
		return err
	}
	if !strings.HasPrefix(strings.TrimSpace(vars), "{") {
		return fmt.Errorf("/debug/vars is not JSON: %.120s", vars)
	}
	return nil
}

// awaitAddr reads the child's stdout until the "metrics: http://ADDR/metrics"
// announcement (keeps draining the pipe afterwards so the child never
// blocks on a full pipe).
func awaitAddr(r io.Reader) (string, error) {
	sc := bufio.NewScanner(r)
	addrCh := make(chan string, 1)
	go func() {
		defer close(addrCh)
		for sc.Scan() {
			line := sc.Text()
			if rest, ok := strings.CutPrefix(line, "metrics: http://"); ok {
				addrCh <- strings.TrimSuffix(rest, "/metrics")
			}
		}
	}()
	select {
	case addr, ok := <-addrCh:
		if !ok || addr == "" {
			return "", fmt.Errorf("hapsim exited without announcing a metrics address")
		}
		return addr, nil
	case <-time.After(30 * time.Second):
		return "", fmt.Errorf("timed out waiting for the metrics address announcement")
	}
}

func scrape(url string) (string, error) {
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	return string(body), err
}
