// Command benchgate is the `make bench-gate` performance-regression check.
// It reads `go test -json` benchmark captures and enforces two gates:
//
//  1. Allocation anchor: allocs/op of the gated benchmark in the current
//     capture must stay within slack of the committed BENCH_baseline.json.
//     The event loop's zero-allocation steady state is a load-bearing
//     property — a slipped allocs/op means a hot-path allocation crept in,
//     which a timing benchmark alone would drown in noise.
//  2. Per-PR trajectory: every benchmark present in both the previous PR's
//     capture (BENCH_pr<N-1>.json) and the current one (BENCH_pr<N>.json)
//     is compared on allocs/op (same slack as the anchor) and on its
//     throughput metrics — events/s for the simulator benchmarks and
//     arrivals/s for the fitter benchmarks — neither of which may drop
//     below (1 - tolerance) of the previous capture.
//
// The current and previous captures are discovered by scanning the working
// directory for BENCH_pr<N>.json files: the highest N is "current", the
// second highest is "previous" (falling back to the baseline when only one
// exists). -current/-prev override the discovery.
//
// Tolerance calibration, allocs/op: the event loop allocates only per
// *run* (scheduler, measurement buffers), never per event, so a hot-path
// allocation shows up as millions of allocs/op (once per simulated event),
// not percent. The 1.5x slack absorbs one-shot (-benchtime=1x)
// cross-session noise, observed at up to ~1.3x on an identical tree,
// while a real per-event allocation overshoots it by four orders of
// magnitude.
//
// Tolerance calibration, events/s: the captures are one-shot measurements
// on shared, sometimes single-core runners, where identical trees have
// been observed up to ~1.5x apart between sessions (CPU contention,
// frequency scaling). The default tolerance of 0.5 therefore gates
// *collapse-scale* regressions — an accidentally quadratic scheduler, a
// per-event allocation, a serialization bug — not percent-level drift;
// percent-level claims need seconds-scale -benchtime runs on a quiet
// machine, which CI does not have.
//
//	go run ./scripts/benchgate                  # auto-discover captures
//	go run ./scripts/benchgate -current BENCH_pr6.json -prev BENCH_pr5.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
)

func main() {
	var (
		baseline  = flag.String("baseline", "BENCH_baseline.json", "committed go test -json capture anchoring the allocs/op gate")
		prev      = flag.String("prev", "", "previous PR's capture for the trajectory gate (default: second-newest BENCH_pr<N>.json, else the baseline)")
		current   = flag.String("current", "", "fresh capture under test (default: newest BENCH_pr<N>.json)")
		bench     = flag.String("bench", "BenchmarkSimulatorHAPEvents", "benchmark whose allocs/op is anchored against the baseline")
		slack     = flag.Float64("slack", 1.5, "multiplicative allocs/op tolerance")
		headroom  = flag.Int64("headroom", 32, "additive allocs/op tolerance (absorbs one-time setup drift)")
		tolerance = flag.Float64("tolerance", 0.5, "maximum fractional events/s drop versus the previous capture")
	)
	flag.Parse()
	if err := run(*baseline, *prev, *current, *bench, *slack, *headroom, *tolerance); err != nil {
		fmt.Fprintln(os.Stderr, "bench-gate:", err)
		os.Exit(1)
	}
}

func run(baseline, prev, current, bench string, slack float64, headroom int64, tolerance float64) error {
	if current == "" || prev == "" {
		discCur, discPrev, err := discover(baseline)
		if err != nil {
			return err
		}
		if current == "" {
			current = discCur
		}
		if prev == "" {
			prev = discPrev
		}
	}
	fmt.Printf("bench-gate: baseline %s, previous %s, current %s\n", baseline, prev, current)

	base, err := parseCapture(baseline)
	if err != nil {
		return err
	}
	prevRes, err := parseCapture(prev)
	if err != nil {
		return err
	}
	cur, err := parseCapture(current)
	if err != nil {
		return err
	}

	// Gate 1: allocs/op anchored against the committed baseline.
	b, ok := base[bench]
	if !ok || !b.hasAllocs {
		return fmt.Errorf("%s: no allocs/op for %s (was the capture taken with -benchmem or ReportAllocs?)", baseline, bench)
	}
	c, ok := cur[bench]
	if !ok || !c.hasAllocs {
		return fmt.Errorf("%s: no allocs/op for %s", current, bench)
	}
	limit := int64(float64(b.allocs)*slack) + headroom
	if c.allocs > limit {
		return fmt.Errorf("%s allocs/op regressed: %d > limit %d (baseline %d, slack %.2fx+%d)",
			bench, c.allocs, limit, b.allocs, slack, headroom)
	}
	fmt.Printf("bench-gate: ok — %s at %d allocs/op (baseline %d, limit %d)\n", bench, c.allocs, b.allocs, limit)

	// Gate 2: trajectory versus the previous PR's capture.
	names := make([]string, 0, len(cur))
	for name := range cur {
		names = append(names, name)
	}
	sort.Strings(names)
	checked := 0
	for _, name := range names {
		p, ok := prevRes[name]
		if !ok {
			continue // new benchmark this PR: no history to compare
		}
		c := cur[name]
		if p.hasAllocs && c.hasAllocs {
			limit := int64(float64(p.allocs)*slack) + headroom
			if c.allocs > limit {
				return fmt.Errorf("trajectory: %s allocs/op regressed vs %s: %d > limit %d (prev %d)",
					name, prev, c.allocs, limit, p.allocs)
			}
			checked++
		}
		if p.hasEvents && c.hasEvents && p.events > 0 {
			floor := p.events * (1 - tolerance)
			if c.events < floor {
				return fmt.Errorf("trajectory: %s events/s collapsed vs %s: %.4g < floor %.4g (prev %.4g, tolerance %.0f%%)",
					name, prev, c.events, floor, p.events, tolerance*100)
			}
			fmt.Printf("bench-gate: ok — %s at %.4g events/s (prev %.4g, floor %.4g)\n",
				name, c.events, p.events, floor)
			checked++
		}
		if p.hasArrivals && c.hasArrivals && p.arrivals > 0 {
			floor := p.arrivals * (1 - tolerance)
			if c.arrivals < floor {
				return fmt.Errorf("trajectory: %s arrivals/s collapsed vs %s: %.4g < floor %.4g (prev %.4g, tolerance %.0f%%)",
					name, prev, c.arrivals, floor, p.arrivals, tolerance*100)
			}
			fmt.Printf("bench-gate: ok — %s at %.4g arrivals/s (prev %.4g, floor %.4g)\n",
				name, c.arrivals, p.arrivals, floor)
			checked++
		}
	}
	if checked == 0 {
		return fmt.Errorf("trajectory: no benchmark common to %s and %s carries allocs/op or events/s", prev, current)
	}
	fmt.Printf("bench-gate: ok — %d trajectory checks against %s\n", checked, prev)
	return nil
}

var prFile = regexp.MustCompile(`^BENCH_pr(\d+)\.json$`)

// discover scans the working directory for BENCH_pr<N>.json captures and
// returns (newest, second-newest); with a single capture the previous
// falls back to the baseline.
func discover(baseline string) (current, prev string, err error) {
	entries, err := os.ReadDir(".")
	if err != nil {
		return "", "", err
	}
	type pr struct {
		n    int
		name string
	}
	var prs []pr
	for _, e := range entries {
		if m := prFile.FindStringSubmatch(e.Name()); m != nil {
			n, _ := strconv.Atoi(m[1])
			prs = append(prs, pr{n, e.Name()})
		}
	}
	if len(prs) == 0 {
		return "", "", fmt.Errorf("no BENCH_pr<N>.json capture found (run `make bench` first)")
	}
	sort.Slice(prs, func(i, j int) bool { return prs[i].n > prs[j].n })
	current = prs[0].name
	prev = baseline
	if len(prs) > 1 {
		prev = prs[1].name
	}
	return current, prev, nil
}

// result is one benchmark's extracted numbers.
type result struct {
	allocs      int64
	events      float64
	arrivals    float64
	hasAllocs   bool
	hasEvents   bool
	hasArrivals bool
}

var (
	allocsRe   = regexp.MustCompile(`(\d+) allocs/op`)
	eventsRe   = regexp.MustCompile(`([0-9.]+(?:e[+-]?[0-9]+)?) events/s`)
	arrivalsRe = regexp.MustCompile(`([0-9.]+(?:e[+-]?[0-9]+)?) arrivals/s`)
)

// parseCapture extracts every benchmark's allocs/op, events/s and
// arrivals/s from a go test -json stream ("...\t 60268217 ns/op\t
// 5332766 events/s\t ... 163 allocs/op"). Sub-benchmarks keep their full
// slash-joined names; when the same benchmark appears more than once in a
// capture (a targeted re-run appended to the file), the last occurrence
// of each metric wins.
func parseCapture(path string) (map[string]result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := map[string]result{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		var ev struct {
			Action string `json:"Action"`
			Test   string `json:"Test"`
			Output string `json:"Output"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			continue // tolerate non-JSON noise in the capture
		}
		if ev.Action != "output" || ev.Test == "" {
			continue
		}
		r := out[ev.Test]
		if m := allocsRe.FindStringSubmatch(ev.Output); m != nil {
			if n, err := strconv.ParseInt(m[1], 10, 64); err == nil {
				r.allocs, r.hasAllocs = n, true
			}
		}
		if m := eventsRe.FindStringSubmatch(ev.Output); m != nil {
			if v, err := strconv.ParseFloat(m[1], 64); err == nil {
				r.events, r.hasEvents = v, true
			}
		}
		if m := arrivalsRe.FindStringSubmatch(ev.Output); m != nil {
			if v, err := strconv.ParseFloat(m[1], 64); err == nil {
				r.arrivals, r.hasArrivals = v, true
			}
		}
		if r.hasAllocs || r.hasEvents || r.hasArrivals {
			out[ev.Test] = r
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no benchmark results found", path)
	}
	return out, nil
}
