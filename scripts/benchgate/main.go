// Command benchgate is the `make bench-gate` allocation-regression check:
// it extracts allocs/op for a benchmark from two `go test -json` capture
// files (the committed baseline and a fresh run) and fails when the fresh
// number regresses past the tolerance. The event loop's zero-allocation
// steady state is a load-bearing property — a slipped allocs/op means a
// hot-path allocation crept in, which a timing benchmark alone would
// drown in noise.
//
// Tolerance calibration: the event loop allocates only per *run* (heap,
// measurement buffers), never per event, so an allocs/op regression from
// a hot-path allocation shows up as millions (once per simulated event),
// not percent. The slack therefore only needs to absorb the one-shot
// (-benchtime=1x) measurement's cross-session runtime noise, observed at
// up to ~1.3x on an identical tree; 1.5x keeps the gate quiet on noise
// while any real per-event allocation still exceeds it by four orders of
// magnitude.
//
//	go run ./scripts/benchgate -baseline BENCH_baseline.json -current BENCH_pr5.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
)

func main() {
	var (
		baseline = flag.String("baseline", "BENCH_baseline.json", "committed go test -json capture")
		current  = flag.String("current", "BENCH_pr5.json", "fresh go test -json capture")
		bench    = flag.String("bench", "BenchmarkSimulatorHAPEvents", "benchmark whose allocs/op is gated")
		slack    = flag.Float64("slack", 1.5, "multiplicative tolerance on the baseline")
		headroom = flag.Int64("headroom", 32, "additive tolerance on the baseline (absorbs one-time setup drift)")
	)
	flag.Parse()
	if err := run(*baseline, *current, *bench, *slack, *headroom); err != nil {
		fmt.Fprintln(os.Stderr, "bench-gate:", err)
		os.Exit(1)
	}
}

func run(baseline, current, bench string, slack float64, headroom int64) error {
	base, err := allocsPerOp(baseline, bench)
	if err != nil {
		return err
	}
	cur, err := allocsPerOp(current, bench)
	if err != nil {
		return err
	}
	limit := int64(float64(base)*slack) + headroom
	if cur > limit {
		return fmt.Errorf("%s allocs/op regressed: %d > limit %d (baseline %d, slack %.2fx+%d)",
			bench, cur, limit, base, slack, headroom)
	}
	fmt.Printf("bench-gate: ok — %s at %d allocs/op (baseline %d, limit %d)\n", bench, cur, base, limit)
	return nil
}

// allocsPerOp scans a go test -json stream for the benchmark's result
// line ("...\t  60268217 ns/op\t ... \t     163 allocs/op").
func allocsPerOp(path, bench string) (int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	re := regexp.MustCompile(`(\d+) allocs/op`)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		var ev struct {
			Action string `json:"Action"`
			Test   string `json:"Test"`
			Output string `json:"Output"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			continue // tolerate non-JSON noise in the capture
		}
		if ev.Action != "output" || ev.Test != bench {
			continue
		}
		m := re.FindStringSubmatch(ev.Output)
		if m == nil {
			continue
		}
		n, err := strconv.ParseInt(m[1], 10, 64)
		if err != nil {
			return 0, fmt.Errorf("%s: bad allocs/op in %q: %w", path, ev.Output, err)
		}
		return n, nil
	}
	if err := sc.Err(); err != nil {
		return 0, fmt.Errorf("%s: %w", path, err)
	}
	return 0, fmt.Errorf("%s: no allocs/op line for %s (was the capture taken with -benchmem?)", path, bench)
}
