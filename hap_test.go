package hap_test

import (
	"context"
	"io"
	"math"
	"net/http"
	"strings"
	"testing"

	"hap"
)

// The facade tests exercise the public API end to end the way the README
// quick start does.

func TestFacadeQuickStart(t *testing.T) {
	m := hap.NewSymmetric(0.0055, 0.001, 0.01, 0.01, 0.1, 20, 5, 3)
	if math.Abs(m.MeanRate()-8.25) > 1e-9 {
		t.Fatalf("mean rate = %v", m.MeanRate())
	}
	res, err := hap.Solve2(m)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delay <= 0 || res.Sigma <= 0 || res.Sigma >= 1 {
		t.Fatalf("implausible solution %+v", res)
	}
	simRes := hap.Simulate(m, hap.SimConfig{Horizon: 20000, Seed: 1})
	if simRes.Meas.MeanDelay() <= 0 {
		t.Fatal("simulation produced no delays")
	}
}

func TestFacadeSolversConsistent(t *testing.T) {
	m := hap.PaperParams(20)
	s1, err := hap.Solve1(m)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := hap.Solve2(m)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s1.Delay-s2.Delay)/s2.Delay > 0.01 {
		t.Errorf("solutions disagree: %v vs %v", s1.Delay, s2.Delay)
	}
	pois, err := hap.SolvePoisson(m)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Delay <= pois.Delay {
		t.Error("HAP must exceed the Poisson baseline")
	}
}

func TestFacadeBounded(t *testing.T) {
	m := hap.PaperParams(20)
	free, err := hap.SolveBounded(m, 60, 300)
	if err != nil {
		t.Fatal(err)
	}
	tight, err := hap.SolveBounded(m, 12, 60)
	if err != nil {
		t.Fatal(err)
	}
	if tight.Delay >= free.Delay {
		t.Error("admission caps should reduce delay")
	}
}

func TestFacadeOnOffAndCS(t *testing.T) {
	tl := hap.NewOnOff(0.5, 0.1, 10, 100)
	r := hap.SimulateOnOff(tl, hap.SimConfig{Horizon: 5000, Seed: 2})
	if r.Arrivals == 0 {
		t.Error("on-off produced no traffic")
	}
	cs := &hap.CSModel{
		Name: "demo", Lambda: 0.01, Mu: 0.002,
		Apps: []hap.CSAppType{{
			Name: "shell", Lambda: 0.02, Mu: 0.02,
			Messages: []hap.CSMessageType{{
				Name: "cmd", Lambda: 0.1, MuReq: 50, MuResp: 30, PResp: 0.9, PNext: 0.5,
			}},
		}},
	}
	if err := cs.Validate(); err != nil {
		t.Fatal(err)
	}
	rc := hap.SimulateCS(cs, hap.SimConfig{Horizon: 50000, Seed: 3})
	if rc.Arrivals == 0 {
		t.Error("cs produced no traffic")
	}
}

func TestFacadeAdmission(t *testing.T) {
	m := hap.PaperParams(20)
	f, d, err := hap.MaxWorkload(m, 0.12)
	if err != nil {
		t.Fatal(err)
	}
	if f <= 0 || d > 0.12 {
		t.Errorf("workload search: f=%v d=%v", f, d)
	}
	mu, err := hap.RequiredBandwidth(m, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if mu <= m.MeanRate() {
		t.Errorf("bandwidth %v below stability", mu)
	}
}

func TestFacadeLevelScaling(t *testing.T) {
	m := hap.PaperParams(20)
	up := m.Scale(hap.LevelMessage, 1.2)
	if math.Abs(up.MeanRate()-8.25*1.2) > 1e-9 {
		t.Errorf("scaled rate = %v", up.MeanRate())
	}
}

func TestFacadeDelayQuantiles(t *testing.T) {
	m := hap.PaperParams(20)
	qs, err := hap.DelayQuantiles(m, &hap.SolveOptions{MaxUsers: 8, MaxApps: 48}, 0.5, 0.9, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if !(qs[0] < qs[1] && qs[1] < qs[2]) {
		t.Fatalf("quantiles not increasing: %v", qs)
	}
	// The p99 should dwarf the median under HAP burstiness.
	if qs[2] < 3*qs[0] {
		t.Errorf("p99 %v vs median %v — tail too thin for HAP", qs[2], qs[0])
	}
}

func TestFacadeMetrics(t *testing.T) {
	m := hap.PaperParams(20)
	if _, err := hap.Solve2(m); err != nil {
		t.Fatal(err)
	}
	hap.Simulate(m, hap.SimConfig{Horizon: 5000, Seed: 7})
	snap := hap.Metrics()
	for _, name := range []string{
		"hap_sim_events_total",
		"hap_sim_runs_total",
		"hap_solver_iterations_total",
	} {
		if snap[name] <= 0 {
			t.Errorf("%s = %v, want > 0 after a solve and a run", name, snap[name])
		}
	}

	srv, err := hap.ServeMetrics("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "hap_sim_events_total") {
		t.Errorf("/metrics page missing hap_sim_events_total:\n%.400s", body)
	}
}

func TestFacadeFitTrace(t *testing.T) {
	// Generate a Poisson trace through the facade simulator, fit it back,
	// and require the selector to recognise it — the README's
	// generate→fit round trip in miniature.
	res := hap.SimulatePoisson(8.25, 20, hap.SimConfig{
		Horizon: 4000, Seed: 21,
		Measure: hap.SimMeasure{KeepArrivalTimes: 40000},
	})
	times := res.Meas.Arrivals
	if len(times) < 10000 {
		t.Fatalf("only %d arrivals kept", len(times))
	}
	rep, err := hap.FitTrace(context.Background(), times, hap.FitOptions{
		Models: []string{"poisson", "onoff"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Best != "poisson" {
		t.Fatalf("Best = %q, want poisson; candidates %+v", rep.Best, rep.Candidates)
	}
	best := rep.BestCandidate()
	if best == nil || math.Abs(best.Rate-8.25)/8.25 > 0.05 {
		t.Fatalf("fitted rate %+v, want ≈ 8.25", best)
	}
	// The fit layer publishes its own metric family on the shared registry.
	snap := hap.Metrics()
	found := false
	for name, v := range snap {
		if strings.HasPrefix(name, "hap_fit_fits_total") && v > 0 {
			found = true
		}
	}
	if !found {
		t.Error("no hap_fit_fits_total series incremented after FitTrace")
	}
}
