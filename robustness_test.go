package hap_test

import (
	"context"
	"errors"
	"math"
	"testing"

	"hap"
)

// Every facade entry point must reject adversarial parameters with an error
// (solvers) or an Err-carrying result (simulations) — never a panic. This
// is the library-level face of the cmd binaries' no-panic guarantee.
func TestFacadeNoPanicOnAdversarialParams(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)
	models := map[string]*hap.Model{
		"negative-lambda": hap.NewSymmetric(-1, 0.001, 0.01, 0.01, 0.1, 20, 5, 3),
		"zero-mu":         hap.NewSymmetric(0.0055, 0, 0.01, 0.01, 0.1, 20, 5, 3),
		"nan-app-rate":    hap.NewSymmetric(0.0055, 0.001, nan, 0.01, 0.1, 20, 5, 3),
		"inf-msg-rate":    hap.NewSymmetric(0.0055, 0.001, 0.01, 0.01, inf, 20, 5, 3),
		"nan-service":     hap.NewSymmetric(0.0055, 0.001, 0.01, 0.01, 0.1, nan, 5, 3),
	}
	for name, m := range models {
		m := m
		noPanic(t, name+"/solve2", func() error { _, err := hap.Solve2(m); return err })
		noPanic(t, name+"/solve1", func() error { _, err := hap.Solve1(m); return err })
		noPanic(t, name+"/solve0", func() error { _, err := hap.Solve0(m, nil); return err })
		noPanic(t, name+"/exact", func() error { _, err := hap.SolveExact(m, nil); return err })
		noPanic(t, name+"/poisson", func() error { _, err := hap.SolvePoisson(m); return err })
		noPanic(t, name+"/bounded", func() error { _, err := hap.SolveBounded(m, 10, 10); return err })
		noPanic(t, name+"/quantiles", func() error { _, err := hap.DelayQuantiles(m, nil, 0.5); return err })
		noPanic(t, name+"/maxworkload", func() error { _, _, err := hap.MaxWorkload(m, 1); return err })
		if name != "nan-service" {
			// RequiredBandwidth searches over the service rate, replacing
			// the model's own, so a service-only defect is legitimately
			// repaired rather than rejected.
			noPanic(t, name+"/bandwidth", func() error { _, err := hap.RequiredBandwidth(m, 1); return err })
		}
		noPanic(t, name+"/simulate", func() error {
			return hap.Simulate(m, hap.SimConfig{Horizon: 100, Seed: 1}).Err
		})
	}
	noPanic(t, "simulate/neg-horizon", func() error {
		return hap.Simulate(hap.PaperParams(20), hap.SimConfig{Horizon: -5}).Err
	})
	noPanic(t, "simulate-poisson/nan-rate", func() error {
		return hap.SimulatePoisson(nan, 10, hap.SimConfig{Horizon: 100}).Err
	})
	noPanic(t, "simulate-onoff/zero-rates", func() error {
		return hap.SimulateOnOff(&hap.TwoLevel{}, hap.SimConfig{Horizon: 100}).Err
	})
	noPanic(t, "simulate-cs/empty", func() error {
		return hap.SimulateCS(&hap.CSModel{}, hap.SimConfig{Horizon: 100}).Err
	})
}

// noPanic runs f expecting a non-nil error and no panic.
func noPanic(t *testing.T, name string, f func() error) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Errorf("%s panicked: %v", name, r)
		}
	}()
	if err := f(); err == nil {
		t.Errorf("%s: expected an error for adversarial input", name)
	}
}

// Diagnostics ride along on every iterative facade result.
func TestFacadeResultsCarryDiagnostics(t *testing.T) {
	m := hap.PaperParams(20)
	for name, solve := range map[string]func() (hap.SolveResult, error){
		"solve1": func() (hap.SolveResult, error) { return hap.Solve1(m) },
		"solve2": func() (hap.SolveResult, error) { return hap.Solve2(m) },
	} {
		res, err := solve()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.Converged || res.Iterations <= 0 {
			t.Errorf("%s: result %+v, want converged with a positive iteration count", name, res.Diag())
		}
		if !(res.Residual >= 0) {
			t.Errorf("%s: residual %v, want non-negative", name, res.Residual)
		}
	}
}

// The facade replication wrapper must honour cancellation end to end.
func TestFacadeReplicationsCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	agg, err := hap.SimulateReplications(ctx, hap.PaperParams(20),
		hap.SimConfig{Horizon: 1e6, Seed: 1}, 8, 2)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if code := hap.ExitCode(err); code != 5 {
		t.Errorf("exit code %d, want 5 (cancelled)", code)
	}
	if agg == nil || !agg.Truncated {
		t.Error("aggregate must exist and be flagged Truncated")
	}
}

func TestFacadeUnstableTyped(t *testing.T) {
	m := hap.PaperParams(5) // λ̄ = 8.25 > μ'' = 5
	for name, solve := range map[string]func() (hap.SolveResult, error){
		"solve1":  func() (hap.SolveResult, error) { return hap.Solve1(m) },
		"solve2":  func() (hap.SolveResult, error) { return hap.Solve2(m) },
		"exact":   func() (hap.SolveResult, error) { return hap.SolveExact(m, nil) },
		"poisson": func() (hap.SolveResult, error) { return hap.SolvePoisson(m) },
	} {
		if _, err := solve(); !errors.Is(err, hap.ErrUnstable) {
			t.Errorf("%s: err = %v, want hap.ErrUnstable", name, err)
		}
	}
}
