// Command hapd is the live traffic control plane daemon: it ingests one
// or more UDP packet streams, continuously re-fits an MMPP2 over a
// sliding window of each on a shared fit-worker pool, re-solves the
// expected G/M/1 delay with warm starts, evaluates the admission bound
// per stream and over the superposed aggregate process, and serves
// decisions next to /metrics.
//
// Serve two streams on a 2-worker pool, a 50/s service rate and a
// 100 ms delay target, with a tighter 20 ms target on the first stream:
//
//	go run ./cmd/hapd -listen 127.0.0.1:0,127.0.0.1:0 -workers 2 \
//	    -mu3 50 -target 0.1 -targets 0.02,
//
// Point hapgen at a printed stream address, then:
//
//	curl http://<api>/v1/streams/s0/admit
//	curl http://<api>/v1/streams/s0/history
//	curl http://<api>/v1/aggregate/admit
//
// SIGTERM (or SIGINT) drains: every stream flushes a final fit before
// the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"hap/internal/ctrl"
	"hap/internal/fit"
	"hap/internal/gm1"
	"hap/internal/haperr"
)

func main() {
	var (
		listen  = flag.String("listen", "127.0.0.1:0", "comma-separated UDP addresses, one stream each (port 0 picks freely)")
		httpA   = flag.String("http", "127.0.0.1:0", "decision API + /metrics address")
		mu3     = flag.Float64("mu3", 0, "message service rate for delay solves and admission (required)")
		target  = flag.Float64("target", 0, "admission delay target in seconds (required)")
		fmax    = flag.Float64("fmax", 4, "admission headroom search ceiling")
		refitN  = flag.Int("refit", 2000, "re-fit each stream every N arrivals")
		window  = flag.Float64("window", 30, "sliding fit window in seconds")
		minWin  = flag.Int("min-window", 64, "fewest retained timestamps worth fitting")
		stale   = flag.Duration("stale", 30*time.Second, "flag decisions whose fit is older than this as degraded (0 disables)")
		method  = flag.String("method", "bisect", "G/M/1 sigma solver: bisect | paper")
		emIter  = flag.Int("em-max-iter", 0, "MMPP2 EM iteration budget per refit (0 = default)")
		timeout = flag.Duration("timeout", 0, "exit after this long (0 = run until signalled)")

		workers = flag.Int("workers", 0, "shared fit-worker pool size (0 = one per stream)")
		history = flag.Int("history", 0, "per-stream decision history ring capacity (0 = default 64, negative disables)")
		aggMax  = flag.Int("agg-states", 0, "superposed aggregate chain state cap (0 = default 256)")
		targets = flag.String("targets", "", "comma-separated per-stream delay targets aligned with -listen; empty entries inherit -target")
		rates   = flag.String("rates", "", "comma-separated per-stream service rates aligned with -listen; empty entries inherit -mu3")
	)
	flag.Parse()
	if !(*mu3 > 0) || !(*target > 0) {
		fmt.Fprintln(os.Stderr, "hapd: -mu3 and -target are required and must be positive")
		flag.Usage()
		os.Exit(haperr.ExitUsage)
	}
	var sigma gm1.Method
	switch *method {
	case "bisect":
		sigma = gm1.MethodBisect
	case "paper":
		sigma = gm1.MethodPaper
	default:
		fmt.Fprintf(os.Stderr, "hapd: unknown -method %q\n", *method)
		os.Exit(haperr.ExitUsage)
	}

	addrs := strings.Split(*listen, ",")
	overrides, err := parseOverrides(*targets, *rates, len(addrs))
	if err != nil {
		fmt.Fprintln(os.Stderr, "hapd:", err)
		os.Exit(haperr.ExitUsage)
	}

	d, err := ctrl.New(ctrl.Config{
		ListenAddrs:        addrs,
		Overrides:          overrides,
		HTTPAddr:           *httpA,
		ServiceRate:        *mu3,
		TargetDelay:        *target,
		FMax:               *fmax,
		RefitEvery:         *refitN,
		Window:             *window,
		MinWindow:          *minWin,
		StaleAfter:         *stale,
		Workers:            *workers,
		HistorySize:        *history,
		MaxAggregateStates: *aggMax,
		Method:             sigma,
		EM:                 fit.EMOptions{MaxIter: *emIter},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "hapd:", err)
		os.Exit(haperr.ExitCode(err))
	}
	// The smoke harness parses these lines to find the ephemeral ports.
	for _, s := range d.Streams() {
		fmt.Printf("stream %s: udp %s\n", s.ID, s.Addr())
	}
	fmt.Printf("api: http://%s\n", d.APIAddr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	if err := d.Run(ctx); err != nil && !errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "hapd:", err)
		os.Exit(haperr.ExitCode(err))
	}
	fmt.Println("hapd: drained")
}

// parseOverrides zips the -targets and -rates comma lists into
// per-stream overrides. Each list aligns with -listen; empty entries
// (and a missing tail) inherit the global -target / -mu3.
func parseOverrides(targets, rates string, n int) ([]ctrl.StreamOverride, error) {
	if targets == "" && rates == "" {
		return nil, nil
	}
	out := make([]ctrl.StreamOverride, n)
	set := func(list, flagName string, field func(i int, v float64)) error {
		if list == "" {
			return nil
		}
		parts := strings.Split(list, ",")
		if len(parts) > n {
			return fmt.Errorf("-%s lists %d entries for %d streams", flagName, len(parts), n)
		}
		for i, p := range parts {
			if p = strings.TrimSpace(p); p == "" {
				continue // inherit
			}
			v, err := strconv.ParseFloat(p, 64)
			if err != nil || !(v > 0) {
				return fmt.Errorf("-%s entry %d: want a positive number, got %q", flagName, i, p)
			}
			field(i, v)
		}
		return nil
	}
	if err := set(targets, "targets", func(i int, v float64) { out[i].TargetDelay = v }); err != nil {
		return nil, err
	}
	if err := set(rates, "rates", func(i int, v float64) { out[i].ServiceRate = v }); err != nil {
		return nil, err
	}
	return out, nil
}
