// Command hapd is the live traffic control plane daemon: it ingests one
// or more UDP packet streams, continuously re-fits an MMPP2 over a
// sliding window of each, re-solves the expected G/M/1 delay with warm
// starts, evaluates the admission bound, and serves decisions next to
// /metrics.
//
// Serve two streams, a 50/s service rate and a 100 ms delay target:
//
//	go run ./cmd/hapd -listen 127.0.0.1:0,127.0.0.1:0 -mu3 50 -target 0.1
//
// Point hapgen at a printed stream address, then:
//
//	curl http://<api>/v1/streams/s0/admit
//
// SIGTERM (or SIGINT) drains: every stream flushes a final fit before
// the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"hap/internal/ctrl"
	"hap/internal/fit"
	"hap/internal/gm1"
	"hap/internal/haperr"
)

func main() {
	var (
		listen  = flag.String("listen", "127.0.0.1:0", "comma-separated UDP addresses, one stream each (port 0 picks freely)")
		httpA   = flag.String("http", "127.0.0.1:0", "decision API + /metrics address")
		mu3     = flag.Float64("mu3", 0, "message service rate for delay solves and admission (required)")
		target  = flag.Float64("target", 0, "admission delay target in seconds (required)")
		fmax    = flag.Float64("fmax", 4, "admission headroom search ceiling")
		refitN  = flag.Int("refit", 2000, "re-fit each stream every N arrivals")
		window  = flag.Float64("window", 30, "sliding fit window in seconds")
		minWin  = flag.Int("min-window", 64, "fewest retained timestamps worth fitting")
		stale   = flag.Duration("stale", 30*time.Second, "flag decisions whose fit is older than this as degraded (0 disables)")
		method  = flag.String("method", "bisect", "G/M/1 sigma solver: bisect | paper")
		emIter  = flag.Int("em-max-iter", 0, "MMPP2 EM iteration budget per refit (0 = default)")
		timeout = flag.Duration("timeout", 0, "exit after this long (0 = run until signalled)")
	)
	flag.Parse()
	if !(*mu3 > 0) || !(*target > 0) {
		fmt.Fprintln(os.Stderr, "hapd: -mu3 and -target are required and must be positive")
		flag.Usage()
		os.Exit(haperr.ExitUsage)
	}
	var sigma gm1.Method
	switch *method {
	case "bisect":
		sigma = gm1.MethodBisect
	case "paper":
		sigma = gm1.MethodPaper
	default:
		fmt.Fprintf(os.Stderr, "hapd: unknown -method %q\n", *method)
		os.Exit(haperr.ExitUsage)
	}

	d, err := ctrl.New(ctrl.Config{
		ListenAddrs: strings.Split(*listen, ","),
		HTTPAddr:    *httpA,
		ServiceRate: *mu3,
		TargetDelay: *target,
		FMax:        *fmax,
		RefitEvery:  *refitN,
		Window:      *window,
		MinWindow:   *minWin,
		StaleAfter:  *stale,
		Method:      sigma,
		EM:          fit.EMOptions{MaxIter: *emIter},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "hapd:", err)
		os.Exit(haperr.ExitCode(err))
	}
	// The smoke harness parses these lines to find the ephemeral ports.
	for _, s := range d.Streams() {
		fmt.Printf("stream %s: udp %s\n", s.ID, s.Addr())
	}
	fmt.Printf("api: http://%s\n", d.APIAddr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	if err := d.Run(ctx); err != nil && !errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "hapd:", err)
		os.Exit(haperr.ExitCode(err))
	}
	fmt.Println("hapd: drained")
}
