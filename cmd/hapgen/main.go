// Command hapgen generates HAP-modulated UDP traffic or measures it.
//
// Sink (start first; prints the bound address):
//
//	go run ./cmd/hapgen -mode sink -listen 127.0.0.1:9999
//
// Sender (replays a HAP schedule, optionally time-compressed):
//
//	go run ./cmd/hapgen -mode send -to 127.0.0.1:9999 -model-seconds 600 -compress 100
//
// One-shot loopback demo (sender + sink in one process):
//
//	go run ./cmd/hapgen -mode loopback -model-seconds 300 -compress 100
//
// Trace export (no network; writes model-time arrival timestamps as CSV
// that hapfit -in reads back):
//
//	go run ./cmd/hapgen -mode trace -model-seconds 600 -out trace.csv
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"hap/internal/core"
	"hap/internal/haperr"
	"hap/internal/netgen"
	"hap/internal/obs"
	"hap/internal/trace"

	// Register the sim and solver metric families so one scrape shows the
	// full hap_* namespace, present-but-zero when unused.
	_ "hap/internal/sim"
	_ "hap/internal/solver"
)

func main() {
	var (
		mode     = flag.String("mode", "loopback", "send | sink | loopback | trace")
		out      = flag.String("out", "trace.csv", "output CSV path (trace mode)")
		to       = flag.String("to", "127.0.0.1:9999", "sink address (send mode)")
		listen   = flag.String("listen", "127.0.0.1:9999", "listen address (sink mode)")
		source   = flag.String("source", "hap", "hap | poisson | onoff")
		seconds  = flag.Float64("model-seconds", 300, "model time to generate")
		compress = flag.Float64("compress", 100, "time compression (model s per wall s)")
		pad      = flag.Int("pad", 64, "payload padding bytes")
		seed     = flag.Int64("seed", 1, "schedule seed")
		muMsg    = flag.Float64("mu3", 20, "message service rate (model metadata)")
		timeout  = flag.Duration("timeout", 0, "abort sending/collecting after this wall-clock budget (0 = none; ctrl-c also cancels)")
		metrics  = flag.String("metrics", "", "serve live metrics on this address (e.g. :9090 or 127.0.0.1:0)")
	)
	flag.Parse()
	if *metrics != "" {
		srv, err := obs.Serve(*metrics)
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		fmt.Printf("metrics: http://%s/metrics\n", srv.Addr())
	}

	// Ctrl-c (and an optional -timeout) cancel the context driving the
	// sender and the sink collector; a cancelled run exits with the
	// dedicated code.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stopSignals()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	switch *mode {
	case "sink":
		runSink(ctx, *listen)
	case "send":
		s := makeSchedule(*source, *seconds, *seed, *muMsg)
		sendTo(ctx, *to, s, *compress, *pad)
	case "trace":
		s := makeSchedule(*source, *seconds, *seed, *muMsg)
		times := make([]float64, len(s.Arrivals))
		for i, a := range s.Arrivals {
			times[i] = a.T
		}
		if err := trace.WriteCSV(*out, trace.Series{Name: "arrival_s", Values: times}); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d arrivals over %g model s (rate %.4g/s) to %s\n",
			len(times), s.Horizon, s.MeanRate(), *out)
	case "loopback":
		sink, err := netgen.NewSink("127.0.0.1:0")
		if err != nil {
			fatal(err)
		}
		defer sink.Close()
		s := makeSchedule(*source, *seconds, *seed, *muMsg)
		fmt.Printf("schedule: %d packets over %g model s (rate %.4g/s); replay at %gx\n",
			len(s.Arrivals), s.Horizon, s.MeanRate(), *compress)
		idle := netgen.AdaptiveIdle(s, *compress)
		done := make(chan netgen.SinkStats, 1)
		go func() {
			st, err := sink.Collect(ctx, len(s.Arrivals), idle)
			if err != nil {
				fatal(err)
			}
			done <- st
		}()
		stats, err := netgen.Send(ctx, sink.Addr(), s, netgen.SenderConfig{
			Compression: *compress, PayloadPad: *pad,
		})
		if err != nil {
			fatal(err)
		}
		st := <-done
		fmt.Printf("sent %d packets (%d bytes) in %v, worst pacing lateness %v\n",
			stats.Sent, stats.Bytes, stats.Elapsed.Round(time.Millisecond),
			time.Duration(stats.MaxLateNs))
		report(st)
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(haperr.ExitUsage)
	}
}

func makeSchedule(source string, seconds float64, seed int64, muMsg float64) *netgen.Schedule {
	var (
		s   *netgen.Schedule
		err error
	)
	switch source {
	case "hap":
		s, err = netgen.GenerateHAP(core.PaperParams(muMsg), seconds, seed)
	case "poisson":
		s, err = netgen.GeneratePoisson(core.PaperParams(muMsg).MeanRate(), seconds, seed)
	case "onoff":
		// Built literally (not via NewOnOff) so a bad -mu3 surfaces as an
		// error instead of the constructor's invariant panic.
		tl := &core.TwoLevel{Lambda: 0.05, Mu: 0.01, MsgLambda: 2, MsgMu: muMsg}
		if err = tl.Validate(); err == nil {
			s, err = netgen.GenerateOnOff(tl, seconds, seed)
		}
	default:
		err = fmt.Errorf("unknown source %q", source)
	}
	if err != nil {
		fatal(err)
	}
	return s
}

func sendTo(ctx context.Context, addr string, s *netgen.Schedule, compress float64, pad int) {
	fmt.Printf("sending %d packets to %s at %gx compression...\n", len(s.Arrivals), addr, compress)
	stats, err := netgen.Send(ctx, addr, s, netgen.SenderConfig{
		Compression: compress, PayloadPad: pad,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("sent %d packets (%d bytes) in %v\n", stats.Sent, stats.Bytes, stats.Elapsed.Round(time.Millisecond))
}

func runSink(ctx context.Context, listen string) {
	sink, err := netgen.NewSink(listen)
	if err != nil {
		fatal(err)
	}
	defer sink.Close()
	fmt.Printf("listening on %s (ctrl-c to stop; reports after 5 s idle)\n", sink.Addr())
	st, err := sink.Collect(ctx, 0, 5*time.Second)
	if err != nil {
		fatal(err)
	}
	report(st)
}

func report(st netgen.SinkStats) {
	fmt.Printf("received %d packets (%d bytes) in %v\n", st.Received, st.BytesTotal, st.Elapsed.Round(time.Millisecond))
	fmt.Printf("  lost %d, reordered %d (seq %d..%d)\n", st.Lost, st.Reordered, st.FirstSeq, st.LastSeq)
	fmt.Printf("  interarrival mean %.6gs, SCV %.4g\n", st.MeanIA, st.SCV)
	if st.IDCWindow > 0 {
		fmt.Printf("  IDC(%.3gs window) %.4g  (Poisson ≈ 1; HAP ≫ 1)\n", st.IDCWindow, st.IDC)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(haperr.ExitCode(err))
}
