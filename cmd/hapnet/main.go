// Command hapnet simulates HAP (or Poisson / ON-OFF) traffic over a
// multi-hop queueing network and prints per-node and end-to-end
// statistics: where the queueing happens, hop by hop.
//
//	go run ./cmd/hapnet -topo fanin -k 4 -mu 50 -horizon 2e4
//	go run ./cmd/hapnet -topo tandem -nodes 3 -mu 12 -source poisson -rate 8
//	go run ./cmd/hapnet -topo grid -gw 3 -gh 3 -mu 30 -reps 8 -parallel 0
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"hap/internal/core"
	"hap/internal/haperr"
	"hap/internal/net"
	"hap/internal/obs"
	"hap/internal/sim"

	// Register the solver and netgen metric families so one scrape of any
	// binary shows the full hap_* namespace, present-but-zero when unused.
	_ "hap/internal/netgen"
	_ "hap/internal/solver"
)

func main() {
	var (
		topoKind = flag.String("topo", "fanin", "topology: tandem | fanin | grid")
		nodes    = flag.Int("nodes", 3, "tandem: number of stages")
		k        = flag.Int("k", 4, "fanin: number of edge nodes (one source each)")
		gw       = flag.Int("gw", 3, "grid: width")
		gh       = flag.Int("gh", 3, "grid: height")
		mu       = flag.Float64("mu", 50, "node service rate (fanin: the bottleneck)")
		edgeMu   = flag.Float64("edge-mu", 1e5, "fanin: edge-node service rate")
		buffer   = flag.Int("buffer", 0, "per-node buffer (queue + server, 0 = unbounded)")
		source   = flag.String("source", "hap", "traffic source per ingress: hap | poisson | onoff")
		lambda   = flag.Float64("lambda", 0.0055, "HAP user arrival rate λ")
		muUser   = flag.Float64("mu-user", 0.001, "HAP user departure rate μ")
		lambda2  = flag.Float64("lambda2", 0.01, "HAP application invocation rate λ'")
		mu2      = flag.Float64("mu2", 0.01, "HAP application completion rate μ'")
		lambda3  = flag.Float64("lambda3", 0.1, "HAP message generation rate λ''")
		l        = flag.Int("l", 5, "HAP application types")
		mm       = flag.Int("m", 3, "HAP message types per application")
		rate     = flag.Float64("rate", 8.25, "poisson/onoff: mean packet rate per ingress")
		horizon  = flag.Float64("horizon", 1e4, "simulated seconds")
		warmup   = flag.Float64("warmup", 0, "warmup seconds to discard (default horizon/100)")
		seed     = flag.Int64("seed", 1, "random seed")
		reps     = flag.Int("reps", 1, "independent replications to run and merge")
		workers  = flag.Int("parallel", 1, "workers for replications: 0 = all cores, 1 = serial")
		maxHops  = flag.Int("max-hops", 0, "drop packets after this many node visits (0 = default limit)")
		paths    = flag.Int("paths", 0, "print the visited-node paths of up to this many delivered packets")
		jsonOut  = flag.String("json", "", "write the full result as JSON to this file ('-' = stdout)")
		timeout  = flag.Duration("timeout", 0, "abort after this wall-clock budget (0 = none; ctrl-c also cancels)")
		metrics  = flag.String("metrics", "", "serve live metrics on this address (e.g. :9090 or 127.0.0.1:0)")
	)
	flag.Parse()
	if *warmup == 0 {
		*warmup = *horizon / 100
	}
	if *metrics != "" {
		srv, err := obs.Serve(*metrics)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Printf("metrics: http://%s/metrics\n", srv.Addr())
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	// Topology and the ingress nodes it implies: tandem and grid take one
	// source at the entrance, fan-in takes one per edge node.
	var (
		topo    *net.Topology
		entries []int
		dst     int
	)
	switch *topoKind {
	case "tandem":
		mus := make([]float64, *nodes)
		for i := range mus {
			mus[i] = *mu
		}
		topo = net.Tandem("tandem", mus, *buffer)
		entries, dst = []int{0}, *nodes-1
	case "fanin":
		topo = net.FanIn("fanin", *k, *edgeMu, *mu, *buffer, *buffer)
		for i := 0; i < *k; i++ {
			entries = append(entries, i)
		}
		dst = *k
	case "grid":
		topo = net.Grid("grid", *gw, *gh, *mu, *buffer)
		entries, dst = []int{0}, *gw**gh-1
	default:
		fmt.Fprintf(os.Stderr, "unknown topology %q\n", *topoKind)
		os.Exit(haperr.ExitUsage)
	}
	if err := topo.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(haperr.ExitUsage)
	}

	var ings []net.Ingress
	switch *source {
	case "hap":
		// The message service rate only parameterizes the source's own law,
		// which every node overrides with its exponential server — pass the
		// node rate so the model prints with the effective service speed.
		m := core.NewSymmetric(*lambda, *muUser, *lambda2, *mu2, *lambda3, *mu, *l, *mm)
		if err := m.Validate(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(haperr.ExitUsage)
		}
		fmt.Printf("source: %s per ingress (λ̄ = %.4g)\n", m, m.MeanRate())
		for _, e := range entries {
			ings = append(ings, net.HAPIngress(m, e, dst))
		}
	case "poisson":
		fmt.Printf("source: poisson(rate=%.4g) per ingress\n", *rate)
		for _, e := range entries {
			ings = append(ings, net.PoissonIngress(*rate, e, dst))
		}
	case "onoff":
		tl := &core.TwoLevel{Lambda: *lambda, Mu: *muUser, MsgLambda: *rate, MsgMu: *mu}
		if err := tl.Validate(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(haperr.ExitUsage)
		}
		fmt.Printf("source: onoff(ν=%.4g, γ=%.4g) per ingress\n", tl.Nu(), tl.MsgLambda)
		for _, e := range entries {
			ings = append(ings, net.OnOffIngress(tl, e, dst))
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown source %q\n", *source)
		os.Exit(haperr.ExitUsage)
	}

	cfg := net.Config{
		Horizon:   *horizon,
		Seed:      *seed,
		MaxHops:   *maxHops,
		KeepPaths: *paths,
		Measure:   sim.MeasureConfig{Warmup: *warmup},
		Ctx:       ctx,
	}
	var res *net.Result
	if *reps > 1 {
		res = net.RunReplicated(topo, ings, cfg, *reps, *workers)
	} else {
		res = net.Run(topo, ings, cfg)
	}

	fmt.Printf("\ntopology %s: %d nodes, %d links, horizon %g s", topo.Name, len(topo.Nodes), len(topo.Links), *horizon)
	if *reps > 1 {
		fmt.Printf(" × %d reps", *reps)
	}
	fmt.Printf(", wall %v\n", res.Elapsed)
	fmt.Printf("events %d, offered %d, delivered %d, dropped %d (full) + %d (hop limit), in flight %d\n",
		res.Events, res.E2E.Offered, res.E2E.Delivered, res.E2E.DroppedFull, res.E2E.DroppedHops, res.InFlight)
	if res.Truncated {
		fmt.Println("warning: at least one run stopped before its horizon")
	}

	fmt.Printf("\n%-12s %10s %10s %10s %8s %12s %12s\n",
		"node", "in", "forwarded", "delivered", "dropped", "mean sojourn", "mean queue")
	for j, c := range res.Node {
		fmt.Printf("%-12s %10d %10d %10d %8d %12.5g %12.5g\n",
			c.Name, c.In, c.Forwarded, c.Delivered, c.DroppedFull,
			res.PerNode[j].MeanDelay(), res.PerNode[j].MeanQueue())
	}

	fmt.Printf("\nend-to-end sojourn  %.5g s (std %.4g, max %.4g, n=%d)\n",
		res.E2E.Sojourn.Mean(), res.E2E.Sojourn.Std(), res.E2E.Sojourn.Max(), res.E2E.Sojourn.N())
	if *reps > 1 && res.HalfWidth > 0 {
		fmt.Printf("rep-level 95%% CI    ± %.3g\n", res.HalfWidth)
	}
	for h, w := range res.E2E.PerHop {
		if w.N() > 0 {
			fmt.Printf("  hop %-2d sojourn    %.5g s (n=%d)\n", h+1, w.Mean(), w.N())
		}
	}
	for h, n := range res.E2E.Hops {
		if n > 0 {
			fmt.Printf("  %d delivered after %d node visits\n", n, h)
		}
	}
	for _, p := range res.Paths {
		names := make([]string, len(p))
		for i, n := range p {
			names[i] = topo.NodeName(int(n))
		}
		fmt.Printf("  path: %v\n", names)
	}

	if *jsonOut != "" {
		if err := writeJSON(*jsonOut, res, topo); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if res.Err != nil {
		fmt.Fprintln(os.Stderr, res.Err)
		os.Exit(haperr.ExitCode(res.Err))
	}
}

// nodeJSON and resultJSON flatten the result for scripted consumers
// (scripts/netsmoke asserts on these fields).
type nodeJSON struct {
	Name        string  `json:"name"`
	In          int64   `json:"in"`
	Forwarded   int64   `json:"forwarded"`
	Delivered   int64   `json:"delivered"`
	DroppedFull int64   `json:"dropped_full"`
	MeanSojourn float64 `json:"mean_sojourn"`
	MeanQueue   float64 `json:"mean_queue"`
}

type resultJSON struct {
	Topology    string     `json:"topology"`
	Nodes       []nodeJSON `json:"nodes"`
	MeanSojourn float64    `json:"mean_sojourn"`
	SojournN    int64      `json:"sojourn_n"`
	Hops        []int64    `json:"hops"`
	Offered     int64      `json:"offered"`
	Delivered   int64      `json:"delivered"`
	DroppedFull int64      `json:"dropped_full"`
	DroppedHops int64      `json:"dropped_hops"`
	InFlight    int64      `json:"in_flight"`
	Events      int64      `json:"events"`
	Truncated   bool       `json:"truncated"`
}

func writeJSON(path string, res *net.Result, topo *net.Topology) error {
	doc := resultJSON{
		Topology:    res.Topology,
		MeanSojourn: res.E2E.Sojourn.Mean(),
		SojournN:    res.E2E.Sojourn.N(),
		Hops:        res.E2E.Hops,
		Offered:     res.E2E.Offered,
		Delivered:   res.E2E.Delivered,
		DroppedFull: res.E2E.DroppedFull,
		DroppedHops: res.E2E.DroppedHops,
		InFlight:    res.InFlight,
		Events:      res.Events,
		Truncated:   res.Truncated,
	}
	for j, c := range res.Node {
		doc.Nodes = append(doc.Nodes, nodeJSON{
			Name: c.Name, In: c.In, Forwarded: c.Forwarded, Delivered: c.Delivered,
			DroppedFull: c.DroppedFull,
			MeanSojourn: res.PerNode[j].MeanDelay(), MeanQueue: res.PerNode[j].MeanQueue(),
		})
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(out)
		return err
	}
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return err
	}
	fmt.Printf("result written to %s\n", path)
	return nil
}
