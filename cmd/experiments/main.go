// Command experiments regenerates the paper's tables and figures.
//
//	go run ./cmd/experiments                 # everything at a moderate scale
//	go run ./cmd/experiments -scale 1        # paper scale (minutes of CPU)
//	go run ./cmd/experiments -experiment E4  # one artefact
//	go run ./cmd/experiments -list
//
// CSV series land under -results (default ./results); ASCII charts and
// paper-vs-measured tables print to stdout.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"

	"hap/internal/experiments"
	"hap/internal/haperr"
	"hap/internal/obs"

	// Register the netgen metric families too, so one scrape shows the full
	// hap_* namespace (experiments already pull in sim and solver).
	_ "hap/internal/netgen"
)

func main() {
	var (
		scale   = flag.Float64("scale", 0.25, "experiment scale: 1 = paper scale, smaller = faster")
		expID   = flag.String("experiment", "", "run a single experiment (E1..E16)")
		results = flag.String("results", "results", "directory for CSV series ('' disables)")
		seed    = flag.Int64("seed", 1993, "master random seed")
		list    = flag.Bool("list", false, "list experiments and exit")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf = flag.String("memprofile", "", "write a heap profile to this file on exit")
		timeout = flag.Duration("timeout", 0, "stop dispatching experiments after this wall-clock budget (0 = none; ctrl-c also cancels)")
		metrics = flag.String("metrics", "", "serve live metrics on this address (e.g. :9090 or 127.0.0.1:0)")
	)
	flag.Parse()
	if *metrics != "" {
		srv, err := obs.Serve(*metrics)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Printf("metrics: http://%s/metrics\n", srv.Addr())
	}

	// Ctrl-c (and an optional -timeout) stop the batch between experiments;
	// a cancelled run exits with the dedicated code.
	runCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		runCtx, cancel = context.WithTimeout(runCtx, *timeout)
		defer cancel()
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	defer func() {
		if *memProf == "" {
			return
		}
		f, err := os.Create(*memProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}
	ctx := &experiments.Context{
		Scale:      *scale,
		Out:        os.Stdout,
		ResultsDir: *results,
		Seed:       *seed,
		Ctx:        runCtx,
	}
	if *expID != "" {
		e, ok := experiments.Get(*expID)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *expID)
			os.Exit(haperr.ExitUsage)
		}
		res, err := e.Run(ctx)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.ID, err)
			os.Exit(haperr.ExitCode(err))
		}
		res.Render(os.Stdout)
		return
	}
	if _, err := experiments.RunAll(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "some experiments failed: %v\n", err)
		os.Exit(haperr.ExitCode(err))
	}
}
