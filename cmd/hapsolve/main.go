// Command hapsolve computes the analytic HAP/M/1 solutions for a
// symmetric parameter set.
//
//	go run ./cmd/hapsolve -lambda 0.0055 -mu 0.001 -lambda2 0.01 -mu2 0.01 \
//	    -lambda3 0.1 -mu3 20 -l 5 -m 3 -solutions 1,2,exact,poisson
//
// Rates follow the paper's convention: each parameter is the reciprocal of
// the mean of the corresponding exponential distribution.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"hap/internal/core"
	"hap/internal/haperr"
	"hap/internal/obs"
	"hap/internal/solver"
	"hap/internal/trace"

	// Register the sim and netgen metric families so one scrape shows the
	// full hap_* namespace, present-but-zero when unused.
	_ "hap/internal/netgen"
	_ "hap/internal/sim"
)

func main() {
	var (
		lambda  = flag.Float64("lambda", 0.0055, "user arrival rate λ")
		mu      = flag.Float64("mu", 0.001, "user departure rate μ")
		lambda2 = flag.Float64("lambda2", 0.01, "application invocation rate λ'")
		mu2     = flag.Float64("mu2", 0.01, "application completion rate μ'")
		lambda3 = flag.Float64("lambda3", 0.1, "message generation rate λ''")
		mu3     = flag.Float64("mu3", 20, "message service rate μ''")
		l       = flag.Int("l", 5, "number of application types")
		mm      = flag.Int("m", 3, "message types per application")
		sols    = flag.String("solutions", "1,2,exact,poisson", "comma list: 0,1,2,exact,poisson")
		maxU    = flag.Int("maxusers", 0, "modulator truncation: users (0 = auto)")
		maxA    = flag.Int("maxapps", 0, "modulator truncation: applications (0 = auto)")
		maxZ    = flag.Int("maxqueue", 0, "queue truncation for Solution 0 (0 = auto)")
		config  = flag.String("config", "", "JSON model file (overrides the symmetric flags; supports asymmetric models)")
		timeout = flag.Duration("timeout", 0, "abort the solves after this wall-clock budget (0 = none; ctrl-c also cancels)")
		metrics = flag.String("metrics", "", "serve live metrics on this address (e.g. :9090 or 127.0.0.1:0)")
	)
	flag.Parse()
	if *metrics != "" {
		srv, err := obs.Serve(*metrics)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Printf("metrics: http://%s/metrics\n", srv.Addr())
	}

	// Ctrl-c (and an optional -timeout) cancel the context threaded into
	// every solve; a cancelled run exits with the dedicated code.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var m *core.Model
	if *config != "" {
		var err error
		m, err = core.LoadModel(*config)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(haperr.ExitUsage)
		}
	} else {
		m = core.NewSymmetric(*lambda, *mu, *lambda2, *mu2, *lambda3, *mu3, *l, *mm)
	}
	if err := m.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(haperr.ExitUsage)
	}
	fmt.Printf("model: %s\n", m)
	if _, uniform := m.UniformServiceRate(); uniform {
		fmt.Printf("mean users %.4g, mean applications %.4g, utilisation %.4g\n\n",
			m.MeanUsers(), m.MeanApps(), m.Utilization())
	} else {
		fmt.Printf("mean users %.4g, mean applications %.4g (heterogeneous service rates)\n\n",
			m.MeanUsers(), m.MeanApps())
	}

	opts := &solver.Options{MaxUsers: *maxU, MaxApps: *maxA, MaxQueue: *maxZ, Ctx: ctx}
	var rows [][]string
	var firstErr error
	appendRow := func(r solver.Result, err error) {
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			rows = append(rows, []string{r.Method, "-", "-", "-", "-", err.Error()})
			return
		}
		method := r.Method
		if r.Degraded {
			method += " (degraded)"
		}
		rows = append(rows, []string{
			method,
			fmt.Sprintf("%.5g", r.MeanRate),
			fmt.Sprintf("%.5g", r.Sigma),
			fmt.Sprintf("%.5g", r.Delay),
			fmt.Sprintf("%.5g", r.QueueLen),
			r.Elapsed.String(),
		})
	}
	for _, s := range strings.Split(*sols, ",") {
		switch strings.TrimSpace(s) {
		case "0":
			appendRow(solver.Solution0(m, opts))
		case "1":
			appendRow(solver.Solution1(m, opts))
		case "2":
			appendRow(solver.Solution2(m, opts))
		case "exact", "mg":
			appendRow(solver.Solution0MG(m, opts))
		case "poisson":
			appendRow(solver.Poisson(m))
		case "":
		default:
			fmt.Fprintf(os.Stderr, "unknown solution %q\n", s)
			os.Exit(haperr.ExitUsage)
		}
	}
	fmt.Print(trace.Table([]string{"method", "λ̄", "σ", "delay", "queue", "elapsed"}, rows))
	if firstErr != nil {
		fmt.Fprintln(os.Stderr, firstErr)
		os.Exit(haperr.ExitCode(firstErr))
	}
}
