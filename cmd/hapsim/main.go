// Command hapsim runs the discrete-event simulation of a symmetric HAP
// (or the equal-rate Poisson baseline) feeding an exponential server, and
// prints the measured statistics.
//
//	go run ./cmd/hapsim -horizon 1e6 -mu3 17 -busy
//	go run ./cmd/hapsim -source poisson -horizon 1e6
package main

import (
	"flag"
	"fmt"
	"os"

	"hap/internal/core"
	"hap/internal/sim"
	"hap/internal/trace"
)

func main() {
	var (
		source  = flag.String("source", "hap", "traffic source: hap | poisson | onoff")
		lambda  = flag.Float64("lambda", 0.0055, "user arrival rate λ")
		mu      = flag.Float64("mu", 0.001, "user departure rate μ")
		lambda2 = flag.Float64("lambda2", 0.01, "application invocation rate λ'")
		mu2     = flag.Float64("mu2", 0.01, "application completion rate μ'")
		lambda3 = flag.Float64("lambda3", 0.1, "message generation rate λ''")
		mu3     = flag.Float64("mu3", 17, "message service rate μ''")
		l       = flag.Int("l", 5, "number of application types")
		mm      = flag.Int("m", 3, "message types per application")
		horizon = flag.Float64("horizon", 1e6, "simulated seconds")
		warmup  = flag.Float64("warmup", 0, "warmup seconds to discard (default horizon/100)")
		seed    = flag.Int64("seed", 1, "random seed")
		busy    = flag.Bool("busy", false, "track busy periods (mountains)")
		queue   = flag.Float64("queuetrace", 0, "queue trace sample interval in seconds (0 = off)")
		csvOut  = flag.String("csv", "", "write the queue trace to this CSV file")
		config  = flag.String("config", "", "JSON model file (hap source only; overrides the symmetric flags)")
	)
	flag.Parse()
	if *warmup == 0 {
		*warmup = *horizon / 100
	}
	mcfg := sim.MeasureConfig{
		Warmup:             *warmup,
		TrackBusy:          *busy,
		KeepBusyPeriods:    *busy,
		MaxBusyRetained:    1 << 20,
		QueueTraceInterval: *queue,
	}
	cfg := sim.Config{Horizon: *horizon, Seed: *seed, Measure: mcfg}

	var res *sim.RunResult
	switch *source {
	case "hap":
		var m *core.Model
		if *config != "" {
			var err error
			m, err = core.LoadModel(*config)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
		} else {
			m = core.NewSymmetric(*lambda, *mu, *lambda2, *mu2, *lambda3, *mu3, *l, *mm)
		}
		if err := m.Validate(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Printf("source: %s\n", m)
		res = sim.RunHAP(m, cfg)
	case "poisson":
		rate := core.NewSymmetric(*lambda, *mu, *lambda2, *mu2, *lambda3, *mu3, *l, *mm).MeanRate()
		fmt.Printf("source: poisson(rate=%.4g)\n", rate)
		res = sim.RunPoisson(rate, *mu3, cfg)
	case "onoff":
		tl := core.NewOnOff(*lambda, *mu, *lambda3, *mu3)
		fmt.Printf("source: onoff(ν=%.4g, γ=%.4g)\n", tl.Nu(), tl.MsgLambda)
		res = sim.RunOnOff(tl, cfg)
	default:
		fmt.Fprintf(os.Stderr, "unknown source %q\n", *source)
		os.Exit(2)
	}

	meas := res.Meas
	fmt.Printf("\nevents %d, arrivals %d, departures %d, wall %v\n",
		res.Events, res.Arrivals, res.Departures, res.Elapsed)
	fmt.Printf("observed rate      %.5g msgs/s\n", meas.ObservedRate())
	fmt.Printf("mean delay         %.5g s (std %.4g, max %.4g)\n",
		meas.MeanDelay(), meas.Delays.Std(), meas.Delays.Max())
	fmt.Printf("mean queue length  %.5g (max %g)\n", meas.MeanQueue(), meas.Queue.Max())
	if *busy {
		bt := &meas.Busy
		fmt.Printf("busy periods       %d (busy fraction %.3g)\n", bt.Mountains(), bt.BusyFraction())
		fmt.Printf("  busy   mean %.4g var %.4g\n", bt.Busy.Mean(), bt.Busy.Var())
		fmt.Printf("  idle   mean %.4g var %.4g\n", bt.Idle.Mean(), bt.Idle.Var())
		fmt.Printf("  height mean %.4g var %.4g max %g\n", bt.Height.Mean(), bt.Height.Var(), bt.Height.Max())
		longest, tallest := bt.Peak()
		fmt.Printf("  longest mountain %.4g s, tallest %d messages\n", longest.Length(), tallest.Height)
	}
	if *queue > 0 && len(meas.QueueTrace) > 0 {
		xs := make([]float64, len(meas.QueueTrace))
		ys := make([]float64, len(meas.QueueTrace))
		for i, p := range meas.QueueTrace {
			xs[i], ys[i] = p.T, p.V
		}
		dx, dy := trace.Downsample(xs, ys, 600)
		fmt.Print(trace.Chart(trace.ChartOptions{
			Title: "queue length", XLabel: "time (s)", YLabel: "messages",
		}, trace.Line{Name: "queue", Xs: dx, Ys: dy}))
		if *csvOut != "" {
			if err := trace.WriteCSV(*csvOut,
				trace.Series{Name: "t", Values: xs},
				trace.Series{Name: "queue", Values: ys}); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("queue trace written to %s\n", *csvOut)
		}
	}
}
