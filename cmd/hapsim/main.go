// Command hapsim runs the discrete-event simulation of a symmetric HAP
// (or the equal-rate Poisson baseline) feeding an exponential server, and
// prints the measured statistics.
//
//	go run ./cmd/hapsim -horizon 1e6 -mu3 17 -busy
//	go run ./cmd/hapsim -source poisson -horizon 1e6
//	go run ./cmd/hapsim -horizon 1e5 -reps 8 -parallel 0   # replicated, all cores
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"

	"hap/internal/core"
	"hap/internal/haperr"
	"hap/internal/obs"
	"hap/internal/par"
	"hap/internal/sim"
	"hap/internal/trace"

	// Register the solver and netgen metric families so one scrape of any
	// binary shows the full hap_* namespace, present-but-zero when unused.
	_ "hap/internal/netgen"
	_ "hap/internal/solver"
)

func main() {
	var (
		source  = flag.String("source", "hap", "traffic source: hap | poisson | onoff")
		lambda  = flag.Float64("lambda", 0.0055, "user arrival rate λ")
		mu      = flag.Float64("mu", 0.001, "user departure rate μ")
		lambda2 = flag.Float64("lambda2", 0.01, "application invocation rate λ'")
		mu2     = flag.Float64("mu2", 0.01, "application completion rate μ'")
		lambda3 = flag.Float64("lambda3", 0.1, "message generation rate λ''")
		mu3     = flag.Float64("mu3", 17, "message service rate μ''")
		l       = flag.Int("l", 5, "number of application types")
		mm      = flag.Int("m", 3, "message types per application")
		horizon = flag.Float64("horizon", 1e6, "simulated seconds")
		warmup  = flag.Float64("warmup", 0, "warmup seconds to discard (default horizon/100)")
		seed    = flag.Int64("seed", 1, "random seed (replication i derives its own seed from this)")
		reps    = flag.Int("reps", 1, "independent replications to run and merge")
		workers = flag.Int("parallel", 1, "workers for replications: 0 = all cores, 1 = serial")
		shards  = flag.Int("shards", 0, "sharded aggregate: engines to spread the sources over (0 = off unless -sources is set, in which case all cores)")
		sources = flag.Int("sources", 0, "sharded aggregate: independent sources to simulate (0 = off unless -shards is set, in which case 8 per shard)")
		busy    = flag.Bool("busy", false, "track busy periods (mountains)")
		queue   = flag.Float64("queuetrace", 0, "queue trace sample interval in seconds (0 = off)")
		csvOut  = flag.String("csv", "", "write the queue trace to this CSV file")
		config  = flag.String("config", "", "JSON model file (hap source only; overrides the symmetric flags)")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf = flag.String("memprofile", "", "write a heap profile to this file on exit")
		timeout = flag.Duration("timeout", 0, "abort the simulation after this wall-clock budget (0 = none; ctrl-c also cancels)")
		metrics = flag.String("metrics", "", "serve live metrics on this address (e.g. :9090 or 127.0.0.1:0)")
		perStat = flag.String("per-station", "", "write the per-source measurement breakdown of a sharded aggregate as JSON to this file ('-' = stdout; requires -shards/-sources)")
	)
	flag.Parse()
	if *warmup == 0 {
		*warmup = *horizon / 100
	}
	if *metrics != "" {
		srv, err := obs.Serve(*metrics)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Printf("metrics: http://%s/metrics\n", srv.Addr())
	}

	// Ctrl-c (and an optional -timeout) cancel the context polled by every
	// replication's event loop; a cancelled run exits with the dedicated
	// code after reporting whatever span it covered.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	mcfg := sim.MeasureConfig{
		Warmup:             *warmup,
		TrackBusy:          *busy,
		KeepBusyPeriods:    *busy,
		MaxBusyRetained:    1 << 20,
		QueueTraceInterval: *queue,
	}
	cfg := sim.Config{Horizon: *horizon, Seed: *seed, Measure: mcfg, Ctx: ctx}
	if err := cfg.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(haperr.ExitUsage)
	}

	if *shards > 0 || *sources > 0 {
		if *reps > 1 {
			fmt.Fprintln(os.Stderr, "-shards/-sources runs one sharded aggregate; it cannot be combined with -reps")
			os.Exit(haperr.ExitUsage)
		}
		runSharded(ctx, *source, *shards, *sources, mcfg, *horizon, *seed,
			*lambda, *mu, *lambda2, *mu2, *lambda3, *mu3, *l, *mm, *config, *memProf, *perStat)
		return
	}
	if *perStat != "" {
		fmt.Fprintln(os.Stderr, "-per-station reports a sharded aggregate's per-source breakdown; it requires -shards or -sources")
		os.Exit(haperr.ExitUsage)
	}

	// Build a per-seed runner once; a single run and a replicated run then
	// share the exact same code path.
	var run func(seed int64) *sim.RunResult
	switch *source {
	case "hap":
		var m *core.Model
		if *config != "" {
			var err error
			m, err = core.LoadModel(*config)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
		} else {
			m = core.NewSymmetric(*lambda, *mu, *lambda2, *mu2, *lambda3, *mu3, *l, *mm)
		}
		if err := m.Validate(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(haperr.ExitUsage)
		}
		fmt.Printf("source: %s\n", m)
		run = func(seed int64) *sim.RunResult {
			c := cfg
			c.Seed = seed
			return sim.RunHAP(m, c)
		}
	case "poisson":
		rate := core.NewSymmetric(*lambda, *mu, *lambda2, *mu2, *lambda3, *mu3, *l, *mm).MeanRate()
		fmt.Printf("source: poisson(rate=%.4g)\n", rate)
		run = func(seed int64) *sim.RunResult {
			c := cfg
			c.Seed = seed
			return sim.RunPoisson(rate, *mu3, c)
		}
	case "onoff":
		// Built literally (not via NewOnOff) so bad flag values surface as
		// a usage error instead of the constructor's invariant panic.
		tl := &core.TwoLevel{Lambda: *lambda, Mu: *mu, MsgLambda: *lambda3, MsgMu: *mu3}
		if err := tl.Validate(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(haperr.ExitUsage)
		}
		fmt.Printf("source: onoff(ν=%.4g, γ=%.4g)\n", tl.Nu(), tl.MsgLambda)
		run = func(seed int64) *sim.RunResult {
			c := cfg
			c.Seed = seed
			return sim.RunOnOff(tl, c)
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown source %q\n", *source)
		os.Exit(haperr.ExitUsage)
	}

	var res *sim.RunResult
	if *reps > 1 {
		agg, aggErr := sim.ReplicateRunsContext(ctx, *reps, *seed, *workers,
			func(rep int, seed int64) *sim.RunResult { return run(seed) })
		fmt.Printf("\n%d replications on %d workers, wall %v\n",
			*reps, par.Workers(*workers, *reps), agg.Elapsed)
		fmt.Printf("events %d, arrivals %d, departures %d\n",
			agg.Events, agg.Arrivals, agg.Departures)
		if agg.Skipped > 0 {
			fmt.Printf("warning: %d replications never started (cancelled)\n", agg.Skipped)
		}
		if agg.Truncated {
			fmt.Println("warning: at least one replication stopped before its horizon")
		}
		if agg.Merged != nil {
			fmt.Printf("mean delay         %.5g s ± %.3g (95%% CI over %d reps)\n",
				agg.Delay.Mean(), agg.HalfWidth, agg.Delay.N())
			fmt.Printf("pooled delay       %.5g s (std %.4g, max %.4g, n=%d)\n",
				agg.Merged.MeanDelay(), agg.Merged.Delays.Std(), agg.Merged.Delays.Max(),
				agg.Merged.Delays.N())
			fmt.Printf("mean queue length  %.5g (max %g)\n",
				agg.Merged.MeanQueue(), agg.Merged.Queue.Max())
		}
		writeMemProfile(*memProf)
		if aggErr != nil {
			fmt.Fprintln(os.Stderr, aggErr)
			os.Exit(haperr.ExitCode(aggErr))
		}
		return
	}
	res = run(*seed)

	meas := res.Meas
	fmt.Printf("\nevents %d, arrivals %d, departures %d, wall %v\n",
		res.Events, res.Arrivals, res.Departures, res.Elapsed)
	if res.Truncated {
		fmt.Println("warning: run stopped before the horizon (event budget or cancellation)")
	}
	fmt.Printf("observed rate      %.5g msgs/s\n", meas.ObservedRate())
	fmt.Printf("mean delay         %.5g s (std %.4g, max %.4g)\n",
		meas.MeanDelay(), meas.Delays.Std(), meas.Delays.Max())
	fmt.Printf("mean queue length  %.5g (max %g)\n", meas.MeanQueue(), meas.Queue.Max())
	if *busy {
		bt := &meas.Busy
		fmt.Printf("busy periods       %d (busy fraction %.3g)\n", bt.Mountains(), bt.BusyFraction())
		fmt.Printf("  busy   mean %.4g var %.4g\n", bt.Busy.Mean(), bt.Busy.Var())
		fmt.Printf("  idle   mean %.4g var %.4g\n", bt.Idle.Mean(), bt.Idle.Var())
		fmt.Printf("  height mean %.4g var %.4g max %g\n", bt.Height.Mean(), bt.Height.Var(), bt.Height.Max())
		longest, tallest := bt.Peak()
		fmt.Printf("  longest mountain %.4g s, tallest %d messages\n", longest.Length(), tallest.Height)
	}
	if *queue > 0 && len(meas.QueueTrace) > 0 {
		xs := make([]float64, len(meas.QueueTrace))
		ys := make([]float64, len(meas.QueueTrace))
		for i, p := range meas.QueueTrace {
			xs[i], ys[i] = p.T, p.V
		}
		dx, dy := trace.Downsample(xs, ys, 600)
		fmt.Print(trace.Chart(trace.ChartOptions{
			Title: "queue length", XLabel: "time (s)", YLabel: "messages",
		}, trace.Line{Name: "queue", Xs: dx, Ys: dy}))
		if *csvOut != "" {
			if err := trace.WriteCSV(*csvOut,
				trace.Series{Name: "t", Values: xs},
				trace.Series{Name: "queue", Values: ys}); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("queue trace written to %s\n", *csvOut)
		}
	}
	writeMemProfile(*memProf)
	if res.Err != nil {
		fmt.Fprintln(os.Stderr, res.Err)
		os.Exit(haperr.ExitCode(res.Err))
	}
}

// runSharded simulates an aggregate of independent sources partitioned
// across per-core engines (see sim.RunSharded) and prints the merged
// statistics. Results are bit-identical for any -shards value.
func runSharded(ctx context.Context, source string, shards, sources int, mcfg sim.MeasureConfig,
	horizon float64, seed int64,
	lambda, mu, lambda2, mu2, lambda3, mu3 float64, l, mm int, config, memProf, perStat string) {
	if sources == 0 {
		per := shards
		if per <= 0 {
			per = runtime.GOMAXPROCS(0)
		}
		sources = 8 * per
	}
	scfg := sim.ShardedConfig{Horizon: horizon, Seed: seed, Shards: shards, Measure: mcfg, Ctx: ctx}
	if err := scfg.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(haperr.ExitUsage)
	}

	var res *sim.ShardedResult
	switch source {
	case "hap":
		var m *core.Model
		if config != "" {
			var err error
			m, err = core.LoadModel(config)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
		} else {
			m = core.NewSymmetric(lambda, mu, lambda2, mu2, lambda3, mu3, l, mm)
		}
		if err := m.Validate(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(haperr.ExitUsage)
		}
		fmt.Printf("source: %d × %s\n", sources, m)
		res = sim.RunShardedHAP(m, sources, scfg)
	case "onoff":
		tl := &core.TwoLevel{Lambda: lambda, Mu: mu, MsgLambda: lambda3, MsgMu: mu3}
		if err := tl.Validate(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(haperr.ExitUsage)
		}
		fmt.Printf("source: %d × onoff(ν=%.4g, γ=%.4g)\n", sources, tl.Nu(), tl.MsgLambda)
		res = sim.RunShardedOnOff(tl, sources, scfg)
	default:
		fmt.Fprintf(os.Stderr, "source %q does not support sharded aggregates (use hap or onoff)\n", source)
		os.Exit(haperr.ExitUsage)
	}

	fmt.Printf("\nsharded aggregate: %d sources on %d shards, wall %v\n",
		res.Sources, res.Shards, res.Elapsed)
	fmt.Printf("events %d, arrivals %d, departures %d (%.4g events/s aggregate)\n",
		res.Events, res.Arrivals, res.Departures, res.EventsPerSec())
	if res.Truncated {
		fmt.Println("warning: at least one shard stopped before the horizon")
	}
	fmt.Printf("mean delay         %.5g s (std %.4g, max %.4g, n=%d)\n",
		res.Merged.MeanDelay(), res.Merged.Delays.Std(), res.Merged.Delays.Max(), res.Merged.Delays.N())
	fmt.Printf("mean queue length  %.5g (max %g, per source)\n",
		res.Merged.MeanQueue(), res.Merged.Queue.Max())
	if perStat != "" {
		if err := writePerStation(perStat, res); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	writeMemProfile(memProf)
	if res.Err != nil {
		fmt.Fprintln(os.Stderr, res.Err)
		os.Exit(haperr.ExitCode(res.Err))
	}
}

// stationJSON is one source's slice of a sharded aggregate in the
// -per-station report.
type stationJSON struct {
	Source       int     `json:"source"`
	MeanDelay    float64 `json:"mean_delay"`
	StdDelay     float64 `json:"std_delay"`
	MaxDelay     float64 `json:"max_delay"`
	Departures   int64   `json:"departures"`
	MeanQueue    float64 `json:"mean_queue"`
	MaxQueue     float64 `json:"max_queue"`
	ObservedRate float64 `json:"observed_rate"`
	Truncated    bool    `json:"truncated"`
}

// writePerStation emits the per-source breakdown the sharded engine
// already tracks (ShardedResult.PerSource) as a JSON array; '-' writes to
// stdout.
func writePerStation(path string, res *sim.ShardedResult) error {
	rows := make([]stationJSON, len(res.PerSource))
	for i, m := range res.PerSource {
		rows[i] = stationJSON{
			Source:       i,
			MeanDelay:    m.MeanDelay(),
			StdDelay:     m.Delays.Std(),
			MaxDelay:     m.Delays.Max(),
			Departures:   m.Delays.N(),
			MeanQueue:    m.MeanQueue(),
			MaxQueue:     m.Queue.Max(),
			ObservedRate: m.ObservedRate(),
			Truncated:    m.Truncated,
		}
	}
	out, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(out)
		return err
	}
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return err
	}
	fmt.Printf("per-station breakdown written to %s\n", path)
	return nil
}

func writeMemProfile(path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	runtime.GC() // flush recently freed objects for an accurate heap picture
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
