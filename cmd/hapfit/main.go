// Command hapfit estimates arrival-process models from a packet trace and
// reports which model class the trace supports.
//
// Fit a CSV trace (first column = arrival timestamps in seconds; hapgen
// -mode trace writes this format):
//
//	go run ./cmd/hapfit -in trace.csv
//
// Fit live traffic (pairs with a hapgen sender):
//
//	go run ./cmd/hapfit -listen 127.0.0.1:9999 -expect 10000
//
// Continuously re-fit live traffic every 5000 arrivals over a 30 s
// sliding window (warm-started, allocation-free at steady state):
//
//	go run ./cmd/hapfit -listen 127.0.0.1:9999 -refit 5000 -window 30
//
// Restrict the candidate set, declare the HAP tree shape, emit JSON:
//
//	go run ./cmd/hapfit -in trace.csv -model hap -l 5 -m 3 -json
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"hap/internal/fit"
	"hap/internal/haperr"
	"hap/internal/netgen"
	"hap/internal/obs"
	"hap/internal/trace"
)

func main() {
	var (
		in       = flag.String("in", "", "CSV trace to fit (first column = arrival seconds)")
		listen   = flag.String("listen", "", "fit live traffic arriving on this UDP address instead of a file")
		expect   = flag.Int("expect", 0, "stop collecting after this many packets (listen mode; 0 = idle timeout only)")
		idle     = flag.Duration("idle", 5*time.Second, "stop collecting after this long with no packets (listen mode)")
		model    = flag.String("model", "auto", "auto | poisson | onoff | hap | mmpp2 (comma-separate for a subset)")
		appTypes = flag.Int("l", 1, "application types per user in the fitted HAP tree")
		fanout   = flag.Int("m", 1, "message-generator fanout per application in the fitted HAP tree")
		muMsg    = flag.Float64("mu3", 0, "declared message service rate for fitted queueing models (0 = 2x the trace rate)")
		emIter   = flag.Int("em-max-iter", 0, "MMPP2 EM iteration budget (0 = default)")
		emTol    = flag.Float64("em-tol", 0, "MMPP2 EM convergence tolerance on the per-sample log-likelihood delta (0 = default)")
		emMax    = flag.Int("em-max-samples", 0, "cap on interarrivals the EM pass consumes (0 = default, negative = unlimited)")
		emStarts = flag.Int("em-starts", 0, "EM multi-start count (seed-perturbed restarts; <= 1 = single deterministic start)")
		emSeed   = flag.Int64("em-seed", 1, "seed for the perturbed EM restarts")
		workers  = flag.Int("workers", 0, "goroutines for model candidates and EM restarts (0 = GOMAXPROCS, 1 = serial)")
		refitN   = flag.Int("refit", 0, "listen mode: re-fit the MMPP2 over the sliding window every N arrivals (0 = off)")
		window   = flag.Float64("window", 0, "sliding re-fit window in seconds (required with -refit)")
		asJSON   = flag.Bool("json", false, "emit the full report as JSON")
		timeout  = flag.Duration("timeout", 0, "abort collecting/fitting after this wall-clock budget (0 = none; ctrl-c also cancels)")
		metrics  = flag.String("metrics", "", "serve live metrics on this address (e.g. :9090 or 127.0.0.1:0)")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()
	if (*in == "") == (*listen == "") {
		fmt.Fprintln(os.Stderr, "hapfit: exactly one of -in or -listen is required")
		flag.Usage()
		os.Exit(haperr.ExitUsage)
	}
	if *refitN > 0 && (*listen == "" || !(*window > 0)) {
		fmt.Fprintln(os.Stderr, "hapfit: -refit needs -listen and a positive -window")
		flag.Usage()
		os.Exit(haperr.ExitUsage)
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *metrics != "" {
		srv, err := obs.Serve(*metrics)
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "metrics: http://%s/metrics\n", srv.Addr())
	}

	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stopSignals()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	emOpt := fit.EMOptions{
		MaxIter:    *emIter,
		Tol:        *emTol,
		MaxSamples: *emMax,
		Starts:     *emStarts,
		Seed:       *emSeed,
		Workers:    *workers,
	}

	var (
		times []float64
		err   error
	)
	if *in != "" {
		times, err = trace.ReadTimestamps(*in)
		if err != nil {
			fatal(err)
		}
	} else {
		times, err = collect(ctx, *listen, *expect, *idle, *refitN, *window, *asJSON, emOpt)
		if err != nil {
			fatal(err)
		}
	}

	opt := fit.Options{
		ServiceRate: *muMsg,
		AppTypes:    *appTypes,
		Fanout:      *fanout,
		Workers:     *workers,
		EM:          emOpt,
	}
	if *model != "auto" && *model != "" {
		opt.Models = strings.Split(*model, ",")
	}
	rep, err := fit.Fit(ctx, times, opt)
	if err != nil {
		fatal(err)
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fatal(err)
		}
	} else {
		printReport(rep)
	}
	writeMemProfile(*memProf)
	if rep.Best == "" {
		// Every candidate failed; surface the most informative failure as
		// the exit code (not-converged beats a generic error).
		code := haperr.ExitError
		for _, c := range rep.Candidates {
			if c.Diag.Iterations > 0 && !c.Diag.Converged {
				code = haperr.ExitNotConverged
			}
		}
		pprof.StopCPUProfile() // os.Exit skips the deferred stop
		os.Exit(code)
	}
}

// collect gathers arrival timestamps live, streaming each packet into the
// slice the fitters consume via the sink's OnArrival hook. With refitN > 0
// it also maintains a sliding-window TraceStats (window seconds of
// retained timestamps) and re-fits the MMPP2 every refitN arrivals via a
// warm-started Refitter, reporting each fit on stderr — the continuous
// estimation loop, allocation-free at steady state.
func collect(ctx context.Context, listen string, expect int, idle time.Duration, refitN int, window float64, asJSON bool, emOpt fit.EMOptions) ([]float64, error) {
	sink, err := netgen.NewSink(listen)
	if err != nil {
		return nil, err
	}
	defer sink.Close()
	var times []float64
	var (
		ts *fit.TraceStats
		rf *fit.Refitter
	)
	if refitN > 0 {
		ts, err = fit.NewTraceStats(fit.TraceConfig{SlideWindow: window})
		if err != nil {
			return nil, err
		}
		rf = &fit.Refitter{Opt: emOpt}
	}
	sink.OnArrival = func(sec float64) {
		times = append(times, sec)
		if ts == nil {
			return
		}
		if err := ts.Add(sec); err != nil {
			return // out-of-order live packet; the final fit still sees it
		}
		ts.Slide(sec)
		if len(times)%refitN != 0 || ts.WindowN() < 8 {
			return
		}
		if _, err := rf.Refit(ctx, ts); err != nil && !errors.Is(err, haperr.ErrNotConverged) {
			fmt.Fprintf(os.Stderr, "refit @%d: %v\n", len(times), err)
			return
		}
		rep := rf.Report(ts)
		if asJSON {
			b, _ := json.Marshal(rep)
			fmt.Fprintf(os.Stderr, "%s\n", b)
			return
		}
		// Window moments first: they describe the data this fit saw. The
		// cumulative stream moments follow, labelled as such.
		fmt.Fprintf(os.Stderr, "refit @%d (%d in window, rate %.4g/s c² %.4g; stream rate %.4g/s c² %.4g): MMPP2 rates %.4g/%.4g /s, Q01 %.4g, Q10 %.4g (%d iter)\n",
			rep.Arrivals, rep.WindowN, rep.WindowRate, rep.WindowC2, rep.CumRate, rep.CumC2,
			rep.R0, rep.R1, rep.Q01, rep.Q10, rep.Iterations)
	}
	fmt.Fprintf(os.Stderr, "listening on %s (ctrl-c to stop and fit what arrived)\n", sink.Addr())
	st, err := sink.Collect(ctx, expect, idle)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "collected %d packets in %v (lost %d, reordered %d)\n",
		st.Received, st.Elapsed.Round(time.Millisecond), st.Lost, st.Reordered)
	return times, nil
}

func writeMemProfile(path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	runtime.GC() // flush recently freed objects for an accurate heap picture
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func printReport(rep *fit.Report) {
	tr := rep.Trace
	fmt.Printf("trace: %d arrivals over %.4g s — rate %.4g/s, mean interarrival %.4g s, c² %.4g\n",
		tr.N, tr.Horizon, tr.Rate, tr.MeanIA, tr.C2)
	if tr.Bursts.Bursts > 0 {
		fmt.Printf("bursts: %d (mean size %.3g msgs, length %.3g s, gap %.3g s)\n",
			tr.Bursts.Bursts, tr.Bursts.MeanSize, tr.Bursts.MeanBurst, tr.Bursts.MeanGap)
	}
	if n := len(tr.IDC); n > 0 {
		ws := make([]float64, 0, n)
		for _, p := range tr.IDC {
			ws = append(ws, p.Window)
		}
		sort.Float64s(ws)
		last := tr.IDC[len(tr.IDC)-1]
		fmt.Printf("dispersion: IDC(%.3g s) = %.4g over %d windows in [%.3g s, %.3g s]\n",
			last.Window, last.IDC, n, ws[0], ws[n-1])
	}
	fmt.Println()
	fmt.Printf("%-8s %2s %10s %10s %14s  %s\n", "model", "k", "rate", "c²", "BIC", "status")
	for _, c := range rep.Candidates {
		if c.Error != "" {
			fmt.Printf("%-8s %2s %10s %10s %14s  failed: %s\n", c.Name, "-", "-", "-", "-", c.Error)
			continue
		}
		status := "converged"
		if !c.Diag.Converged {
			status = "NOT converged"
		}
		if c.Diag.Iterations > 0 {
			status += fmt.Sprintf(" (%d iter)", c.Diag.Iterations)
		}
		marker := " "
		if c.Name == rep.Best {
			marker = "*"
		}
		fmt.Printf("%-8s %2d %10.4g %10.4g %14.1f  %s%s\n", c.Name, c.K, c.Rate, c.C2, c.BIC, marker, status)
	}
	fmt.Println()
	if rep.Best == "" {
		fmt.Println("best: none — every candidate failed")
		return
	}
	fmt.Printf("best: %s\n", rep.Best)
	printBest(rep.BestCandidate())
}

func printBest(c *fit.Candidate) {
	switch {
	case c == nil:
	case c.Poisson != nil:
		fmt.Printf("  Poisson arrivals, λ = %.6g/s\n", c.Poisson.Rate)
	case c.OnOff != nil:
		m := c.OnOff.Model
		fmt.Printf("  ON-OFF: ν = %.4g active calls (λ = %.4g/s, μ = %.4g/s), γ = %.4g msgs/s per call, μ” = %.4g/s declared\n",
			c.OnOff.Nu, m.Lambda, m.Mu, m.MsgLambda, m.MsgMu)
	case c.HAP != nil:
		m := c.HAP.Model
		if ok, lambdaApp, muApp, lambdaMsg, fo := m.Symmetric(); ok {
			fmt.Printf("  HAP: users λ = %.4g/s, μ = %.4g/s; %d app types λ' = %.4g/s, μ' = %.4g/s; fanout %d, λ” = %.4g/s\n",
				m.Lambda, m.Mu, m.NumAppTypes(), lambdaApp, muApp, fo, lambdaMsg)
		} else {
			fmt.Printf("  HAP: %v\n", m)
		}
	case c.MMPP2 != nil:
		f := c.MMPP2
		fmt.Printf("  MMPP2: rates %.4g/s ↔ %.4g/s, switching Q01 = %.4g/s, Q10 = %.4g/s (%d interarrivals, loglik %.6g)\n",
			f.Model.R0, f.Model.R1, f.Model.Q01, f.Model.Q10, f.Samples, f.LogLik)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(haperr.ExitCode(err))
}
