// Package hap is a Go implementation of the HAP (Hierarchical Arrival
// Process) traffic model from Lin, Tsai, Huang and Gerla, "HAP: A New
// Model for Packet Arrivals" (SIGCOMM '93), together with the paper's
// complete analysis and simulation apparatus.
//
// A HAP models a network node's message arrivals as the product of three
// modulating levels — users arrive and depart, present users invoke
// applications, and active applications emit messages — which makes the
// process an infinite-state MMPP with both short- and long-term
// correlation. The package exposes:
//
//   - the model types and closed forms (Model, TwoLevel/ON-OFF, HAP-CS);
//   - the paper's three HAP/M/1 solutions plus an exact matrix-geometric
//     solver (Solve* functions);
//   - a discrete-event simulator (Simulate* functions);
//   - admission-control helpers built on the closed forms;
//   - parameter estimation from observed packet traces (FitTrace) — the
//     closed forms run in reverse.
//
// Quick start:
//
//	m := hap.NewSymmetric(0.0055, 0.001, 0.01, 0.01, 0.1, 20, 5, 3)
//	fmt.Println(m.MeanRate())           // 8.25 messages/s (Equation 4)
//	res, _ := hap.Solve2(m)             // closed-form G/M/1 solution
//	simRes := hap.Simulate(m, hap.SimConfig{Horizon: 1e5, Seed: 1})
//
// The deeper machinery (per-package solvers, MMPP construction, the
// experiment harness) lives under internal/; the cmd/ binaries and
// examples/ programs exercise it end to end.
package hap

import (
	"context"

	"hap/internal/admission"
	"hap/internal/core"
	"hap/internal/fit"
	"hap/internal/haperr"
	"hap/internal/net"
	"hap/internal/obs"
	"hap/internal/sim"
	"hap/internal/solver"
)

// Sentinel errors shared across the library; test with errors.Is. Every
// solver and simulation entry point classifies its failures with these (or
// a wrapped context error for cancellation) instead of panicking.
var (
	// ErrBadParameter classifies invalid user-supplied parameters.
	ErrBadParameter = haperr.ErrBadParameter
	// ErrUnstable reports a queue with ρ >= 1 — no steady state exists.
	ErrUnstable = haperr.ErrUnstable
	// ErrNotConverged reports an exhausted iteration budget.
	ErrNotConverged = haperr.ErrNotConverged
	// ErrTrivialRoot reports a σ iteration that collapsed onto the trivial
	// fixed point σ = 1 despite a stable load.
	ErrTrivialRoot = haperr.ErrTrivialRoot
)

// Diag is the convergence-diagnostics record every iterative result
// carries (see SolveResult.Diag).
type Diag = haperr.Diag

// ExitCode maps an error to the cmd/ binaries' shared exit-code
// convention: 0 OK, 1 error, 2 usage, 3 unstable, 4 not converged,
// 5 cancelled.
func ExitCode(err error) int { return haperr.ExitCode(err) }

// Model is a 3-level HAP (see internal/core for the full API).
type Model = core.Model

// AppType is one application class of a Model.
type AppType = core.AppType

// MessageType is one message class of an application type.
type MessageType = core.MessageType

// TwoLevel is the 2-level HAP, equivalently the classical ON-OFF model.
type TwoLevel = core.TwoLevel

// CSModel is the client-server extension (HAP-CS).
type CSModel = core.CSModel

// CSAppType is one application class of a CSModel.
type CSAppType = core.CSAppType

// CSMessageType is one request/response message class.
type CSMessageType = core.CSMessageType

// Level selects a modulating level for Scale/ScaleHolding.
type Level = core.Level

// The three modulating levels.
const (
	LevelUser    = core.LevelUser
	LevelApp     = core.LevelApp
	LevelMessage = core.LevelMessage
)

// NewSymmetric builds the paper's simplified HAP with l identical
// application types of fanout identical message types:
// user (λ, μ), application (λ', μ'), message (λ”, μ”).
func NewSymmetric(lambda, mu, lambdaApp, muApp, lambdaMsg, muMsg float64, l, fanout int) *Model {
	return core.NewSymmetric(lambda, mu, lambdaApp, muApp, lambdaMsg, muMsg, l, fanout)
}

// NewOnOff builds a 2-level HAP / ON-OFF superposition model.
func NewOnOff(lambda, mu, msgLambda, msgMu float64) *TwoLevel {
	return core.NewOnOff(lambda, mu, msgLambda, msgMu)
}

// PaperParams returns the Section 4 parameter set with the given message
// service rate (λ̄ = 8.25).
func PaperParams(muMsg float64) *Model { return core.PaperParams(muMsg) }

// SolveResult is a solved HAP/M/1 queue.
type SolveResult = solver.Result

// SolveOptions tunes the solvers; the zero value picks defaults.
type SolveOptions = solver.Options

// Solve2 runs the paper's Solution 2 (closed-form interarrival law +
// G/M/1 σ fixed point) — fast enough for on-line admission control.
func Solve2(m *Model) (SolveResult, error) { return solver.Solution2(m, nil) }

// Solve1 runs Solution 1 (truncated modulator steady state + exact
// exponential-mixture transform).
func Solve1(m *Model) (SolveResult, error) { return solver.Solution1(m, nil) }

// Solve0 runs the brute-force Solution 0 (truncated joint chain swept by
// Gauss–Seidel) with the given options.
func Solve0(m *Model, opts *SolveOptions) (SolveResult, error) { return solver.Solution0(m, opts) }

// SolveExact runs the matrix-geometric (Neuts) solution: exact in the
// queue dimension, truncated only in the modulator.
func SolveExact(m *Model, opts *SolveOptions) (SolveResult, error) {
	return solver.Solution0MG(m, opts)
}

// SolvePoisson returns the equal-rate M/M/1 baseline.
func SolvePoisson(m *Model) (SolveResult, error) { return solver.Poisson(m) }

// SolveBounded runs Solution 2 with the user and application populations
// admission-capped (Figure 20).
func SolveBounded(m *Model, maxUsers, maxApps int) (SolveResult, error) {
	return solver.Solution2Bounded(m, maxUsers, maxApps, nil)
}

// SimConfig drives a simulation run.
type SimConfig = sim.Config

// SimMeasure selects the statistics a run collects.
type SimMeasure = sim.MeasureConfig

// SimResult is a completed simulation.
type SimResult = sim.RunResult

// Simulate runs the discrete-event simulation of the full hierarchy
// feeding a single exponential server.
func Simulate(m *Model, cfg SimConfig) *SimResult { return sim.RunHAP(m, cfg) }

// SimulatePoisson runs the Poisson baseline at the given rate and service
// rate.
func SimulatePoisson(rate, muMsg float64, cfg SimConfig) *SimResult {
	return sim.RunPoisson(rate, muMsg, cfg)
}

// SimulateOnOff runs the 2-level / ON-OFF model.
func SimulateOnOff(tl *TwoLevel, cfg SimConfig) *SimResult { return sim.RunOnOff(tl, cfg) }

// SimulateCS runs the client-server model.
func SimulateCS(m *CSModel, cfg SimConfig) *SimResult { return sim.RunCS(m, cfg) }

// SimReplicated aggregates independent replications of one scenario.
type SimReplicated = sim.ReplicatedResult

// SimulateReplications runs n independent replications of the model across
// workers (0 = all cores) and merges their measurements; replication i is
// seeded from (cfg.Seed, i) so the aggregate is bit-identical for every
// worker count. A non-nil ctx cancels the fan-out and the runs promptly;
// the aggregate then covers whatever completed, with the context error
// returned.
func SimulateReplications(ctx context.Context, m *Model, cfg SimConfig, n, workers int) (*SimReplicated, error) {
	return sim.ReplicateRunsContext(ctx, n, cfg.Seed, workers, func(rep int, seed int64) *SimResult {
		c := cfg
		c.Seed = seed
		if c.Ctx == nil {
			c.Ctx = ctx
		}
		return sim.RunHAP(m, c)
	})
}

// SimShardedConfig drives a sharded aggregate simulation.
type SimShardedConfig = sim.ShardedConfig

// SimSharded is a completed sharded aggregate simulation.
type SimSharded = sim.ShardedResult

// SimulateSharded simulates n independent HAP sources (each feeding its
// own exponential server) partitioned across per-core engines. Source i
// is seeded from (cfg.Seed, i) only, so the merged result is bit-identical
// for every cfg.Shards value — shard count changes wall-clock time, never
// the statistics. This is the multi-core path for the paper's aggregate
// experiments; see SimulateReplications for replicating one scenario.
func SimulateSharded(m *Model, n int, cfg SimShardedConfig) *SimSharded {
	return sim.RunShardedHAP(m, n, cfg)
}

// SimulateShardedOnOff is SimulateSharded for the 2-level / ON-OFF model.
func SimulateShardedOnOff(tl *TwoLevel, n int, cfg SimShardedConfig) *SimSharded {
	return sim.RunShardedOnOff(tl, n, cfg)
}

// NetTopology is a queueing network: nodes (single-server queues) joined
// by directed links, built literally or with NetTandem/NetFanIn/NetGrid.
type NetTopology = net.Topology

// NetNode is one store-and-forward node of a NetTopology.
type NetNode = net.Node

// NetLink is a directed edge of a NetTopology.
type NetLink = net.Link

// NetIngress binds one external traffic source to an entry node.
type NetIngress = net.Ingress

// NetConfig drives a network simulation run.
type NetConfig = net.Config

// NetResult is a completed network run (per-node measurements, packet
// accounting, end-to-end sojourn/hop statistics).
type NetResult = net.Result

// NetTandem builds a serial line of nodes ending in a sink.
func NetTandem(name string, mus []float64, buffer int) *NetTopology {
	return net.Tandem(name, mus, buffer)
}

// NetFanIn builds k edge nodes all feeding one bottleneck — the paper's
// superposition scenario made spatial.
func NetFanIn(name string, k int, edgeMu, bottleneckMu float64, edgeBuffer, bottleneckBuffer int) *NetTopology {
	return net.FanIn(name, k, edgeMu, bottleneckMu, edgeBuffer, bottleneckBuffer)
}

// NetGrid builds a w×h mesh with bidirectional 4-neighbour links and
// shortest-path routing.
func NetGrid(name string, w, h int, mu float64, buffer int) *NetTopology {
	return net.Grid(name, w, h, mu, buffer)
}

// NetHAPIngress attaches a 3-level HAP source at a node; dst >= 0 routes
// along shortest paths, dst < 0 walks link weights to a sink.
func NetHAPIngress(m *Model, node, dst int) NetIngress { return net.HAPIngress(m, node, dst) }

// NetPoissonIngress attaches a Poisson source at a node.
func NetPoissonIngress(rate float64, node, dst int) NetIngress {
	return net.PoissonIngress(rate, node, dst)
}

// NetOnOffIngress attaches a 2-level / ON-OFF source at a node.
func NetOnOffIngress(tl *TwoLevel, node, dst int) NetIngress { return net.OnOffIngress(tl, node, dst) }

// SimulateNetwork routes the ingress traffic over the topology on a single
// engine: every node is a station with its own measurements, packets carry
// entry time, hop count and path, and the result reports per-node and
// end-to-end statistics. Results are a pure function of (topology,
// ingresses, cfg.Seed) — bit-identical on every machine and worker count.
func SimulateNetwork(t *NetTopology, ings []NetIngress, cfg NetConfig) *NetResult {
	return net.Run(t, ings, cfg)
}

// SimulateNetworkReplicated runs n independent replications of the network
// across workers (0 = all cores) and merges them in replication order;
// replication i is seeded from (cfg.Seed, i), so the merge is
// bit-identical for every worker count.
func SimulateNetworkReplicated(t *NetTopology, ings []NetIngress, cfg NetConfig, n, workers int) *NetResult {
	return net.RunReplicated(t, ings, cfg, n, workers)
}

// MaxWorkload finds the largest user arrival-rate multiplier whose
// Solution-2 delay meets the target (admission control).
func MaxWorkload(m *Model, targetDelay float64) (factor, delay float64, err error) {
	return admission.MaxWorkload(m, targetDelay, 0, 0)
}

// RequiredBandwidth finds the smallest service rate whose Solution-2 delay
// meets the target (bandwidth allocation).
func RequiredBandwidth(m *Model, targetDelay float64) (float64, error) {
	return admission.RequiredBandwidth(m, targetDelay, 0)
}

// DelayQuantiles computes exact sojourn-time quantiles (e.g. the p99) of
// HAP/M/1 from the matrix-geometric solution — what an SLO needs beyond
// the mean.
func DelayQuantiles(m *Model, opts *SolveOptions, ps ...float64) ([]float64, error) {
	return solver.DelayQuantiles(m, opts, ps...)
}

// FitOptions tunes FitTrace: the declared service rate and HAP tree
// shape, the EM budget, and the candidate model set.
type FitOptions = fit.Options

// FitEMOptions tunes the Baum-Welch MMPP2 fitter inside FitTrace.
type FitEMOptions = fit.EMOptions

// FitReport is a full model-selection run over one trace: the trace's
// observational summary, every attempted candidate ranked by BIC, and the
// name of the winner.
type FitReport = fit.Report

// FitCandidate is one attempted model class inside a FitReport.
type FitCandidate = fit.Candidate

// TraceSummary is the observational statistics a fit consumed: rate,
// interarrival c², the IDC-versus-window curve, and burst structure.
type TraceSummary = fit.Summary

// FitTrace estimates arrival-process models from raw arrival timestamps
// (seconds, need not be sorted) and reports which model class the trace
// supports: Poisson, ON-OFF (2-level HAP), symmetric 3-level HAP, and a
// 2-state MMPP fitted by EM. It is the reverse direction of the package's
// closed forms — Simulate generates arrivals from parameters, FitTrace
// recovers parameters from arrivals. Cancellation via ctx interrupts the
// EM pass; failed candidates are reported in place, never panicked.
//
//	rep, err := hap.FitTrace(ctx, times, hap.FitOptions{AppTypes: 5, Fanout: 3})
//	fmt.Println(rep.Best, rep.BestCandidate().Rate)
func FitTrace(ctx context.Context, times []float64, opt FitOptions) (*FitReport, error) {
	return fit.Fit(ctx, times, opt)
}

// Metrics returns a point-in-time snapshot of every runtime metric the
// library publishes — event-loop throughput, solver iteration and outcome
// counters, generator send/receive totals — as a flat map keyed by the
// Prometheus series name (labelled series append their rendered label set).
// The same data is served live by the cmd/ binaries' -metrics flag; this
// accessor is for embedding callers that want to poll in-process instead.
func Metrics() map[string]float64 { return obs.Default.Snapshot() }

// MetricsServer is a live metrics HTTP server (see ServeMetrics).
type MetricsServer = obs.Server

// ServeMetrics serves the library's runtime metrics over HTTP on addr
// (":0" picks a free port): Prometheus text on /metrics, JSON on
// /debug/vars. Close the returned server when done.
func ServeMetrics(addr string) (*MetricsServer, error) { return obs.Serve(addr) }
