package dist

import "math/rand"

// PoissonSample draws a Poisson(mean) variate. Used to initialise the
// simulator's user and application populations at their stationary law so
// runs start warm. Knuth's product method handles small means; larger
// means are split to avoid exp underflow.
func PoissonSample(r *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	n := 0
	// Split large means: Poisson(a+b) = Poisson(a) + Poisson(b).
	for mean > 20 {
		n += knuthPoisson(r, 20)
		mean -= 20
	}
	return n + knuthPoisson(r, mean)
}

func knuthPoisson(r *rand.Rand, mean float64) int {
	// Product method with the threshold in log space via accumulated sums
	// of exponentials: N = #{k : Σᵢ≤k Eᵢ < mean} for iid Exp(1) Eᵢ.
	var sum float64
	k := 0
	for {
		sum += r.ExpFloat64()
		if sum >= mean {
			return k
		}
		k++
	}
}
