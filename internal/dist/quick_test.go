package dist

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// clampRate maps an arbitrary float to a sane positive rate.
func clampRate(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 1
	}
	r := math.Abs(x)
	if r < 1e-3 {
		r += 1e-3
	}
	if r > 1e3 {
		r = math.Mod(r, 1e3) + 1e-3
	}
	return r
}

func clampProb(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0.5
	}
	p := math.Abs(math.Mod(x, 1))
	if p == 0 {
		p = 0.5
	}
	return p
}

// Property: Laplace transforms are completely monotone on s >= 0 —
// in particular bounded in (0,1], equal to 1 at s=0 and non-increasing.
func TestQuickLaplaceProperties(t *testing.T) {
	f := func(rate, s1, s2 float64) bool {
		lam := clampRate(rate)
		a, b := math.Abs(clampRate(s1)), math.Abs(clampRate(s2))
		if a > b {
			a, b = b, a
		}
		for _, d := range []Laplacer{
			NewExponential(lam),
			NewErlang(3, lam),
			NewHyperExponential([]float64{0.4, 0.6}, []float64{lam, 2 * lam}),
			NewDeterministic(1 / lam),
		} {
			l0, la, lb := d.Laplace(0), d.Laplace(a), d.Laplace(b)
			if math.Abs(l0-1) > 1e-9 {
				return false
			}
			if la < lb-1e-12 || la > 1+1e-12 || lb < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: CDFs are monotone non-decreasing, within [0,1], and the
// quantile function is a right inverse.
func TestQuickCDFMonotone(t *testing.T) {
	f := func(rate, x1, x2, p float64) bool {
		lam := clampRate(rate)
		a, b := math.Abs(clampRate(x1)), math.Abs(clampRate(x2))
		if a > b {
			a, b = b, a
		}
		pp := clampProb(p)
		for _, d := range []Densitier{
			NewExponential(lam),
			NewErlang(2, lam),
			NewHyperExponential([]float64{0.5, 0.5}, []float64{lam, 3 * lam}),
			NewPareto(1/lam, 2.5),
			NewWeibull(1/lam, 0.8),
		} {
			ca, cb := d.CDF(a), d.CDF(b)
			if ca < 0 || cb > 1+1e-12 || ca > cb+1e-12 {
				return false
			}
			if q, ok := d.(Quantiler); ok {
				if math.Abs(d.CDF(q.Quantile(pp))-pp) > 1e-8 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: samples are non-negative and finite for every distribution.
func TestQuickSamplesNonNegative(t *testing.T) {
	f := func(rate float64, seed int64) bool {
		lam := clampRate(rate)
		r := rand.New(rand.NewSource(seed))
		ds := []Distribution{
			NewExponential(lam),
			NewErlang(2, lam),
			NewHyperExponential([]float64{0.2, 0.8}, []float64{lam, 5 * lam}),
			NewPareto(1/lam, 1.5),
			NewWeibull(1/lam, 2),
			NewLognormal(0, 1),
			NewGeometric(clampProb(rate)),
			NewUniform(0.1/lam, 1/lam+0.2),
			NewDeterministic(1 / lam),
		}
		for _, d := range ds {
			for i := 0; i < 20; i++ {
				v := d.Sample(r)
				if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: hyperexponential mean/second moment match the mixture formulas
// regardless of how the weights are scaled.
func TestQuickHyperExpScaleInvariance(t *testing.T) {
	f := func(w1, w2, w3, scale float64) bool {
		ws := []float64{clampRate(w1), clampRate(w2), clampRate(w3)}
		rates := []float64{0.5, 2, 7}
		k := clampRate(scale)
		h1 := NewHyperExponential(ws, rates)
		scaled := []float64{ws[0] * k, ws[1] * k, ws[2] * k}
		h2 := NewHyperExponential(scaled, rates)
		return math.Abs(h1.Mean()-h2.Mean()) < 1e-12 &&
			math.Abs(h1.SecondMoment()-h2.SecondMoment()) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestStreamsIndependentAndReproducible(t *testing.T) {
	s1 := NewStreams(7)
	s2 := NewStreams(7)
	a, b := s1.Next(), s1.Next()
	c := s2.Next()
	va, vb, vc := a.Float64(), b.Float64(), c.Float64()
	if va == vb {
		t.Error("distinct streams produced identical first values")
	}
	if va != vc {
		t.Error("same-seed streams are not reproducible")
	}
	// Nth is independent of Next history.
	x := NewStreams(7).Nth(3).Float64()
	s3 := NewStreams(7)
	s3.Next()
	if got := s3.Nth(3).Float64(); got != x {
		t.Error("Nth stream depends on Next() history")
	}
}
