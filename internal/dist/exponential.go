package dist

import (
	"fmt"
	"math"
	"math/rand"
)

// Exponential is the exponential distribution with rate Lambda (mean
// 1/Lambda). It is the law assumed for every HAP parameter in the paper's
// analysis sections.
type Exponential struct {
	Lambda float64
}

// NewExponential returns an exponential distribution with the given rate.
func NewExponential(rate float64) Exponential {
	checkPositive("rate", rate)
	return Exponential{Lambda: rate}
}

// Sample draws an exponential variate.
func (e Exponential) Sample(r *rand.Rand) float64 { return r.ExpFloat64() / e.Lambda }

// Mean returns 1/rate.
func (e Exponential) Mean() float64 { return 1 / e.Lambda }

// Var returns 1/rate².
func (e Exponential) Var() float64 { return 1 / (e.Lambda * e.Lambda) }

// PDF returns the density λe^{-λt}.
func (e Exponential) PDF(t float64) float64 {
	if t < 0 {
		return 0
	}
	return e.Lambda * math.Exp(-e.Lambda*t)
}

// CDF returns 1 - e^{-λt}.
func (e Exponential) CDF(t float64) float64 {
	if t < 0 {
		return 0
	}
	return -math.Expm1(-e.Lambda * t)
}

// Laplace returns λ/(λ+s).
func (e Exponential) Laplace(s float64) float64 { return e.Lambda / (e.Lambda + s) }

// Quantile returns -ln(1-p)/λ.
func (e Exponential) Quantile(p float64) float64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return math.Inf(1)
	}
	return -math.Log1p(-p) / e.Lambda
}

func (e Exponential) String() string { return fmt.Sprintf("Exp(rate=%g)", e.Lambda) }

// Deterministic is the degenerate distribution concentrated at Value.
type Deterministic struct {
	Value float64
}

// NewDeterministic returns a point mass at v (v >= 0).
func NewDeterministic(v float64) Deterministic {
	if v < 0 {
		panic("dist: deterministic value must be non-negative")
	}
	return Deterministic{Value: v}
}

// Sample returns the constant value.
func (d Deterministic) Sample(*rand.Rand) float64 { return d.Value }

// Mean returns the constant value.
func (d Deterministic) Mean() float64 { return d.Value }

// Var returns 0.
func (d Deterministic) Var() float64 { return 0 }

// Laplace returns e^{-s·v}.
func (d Deterministic) Laplace(s float64) float64 { return math.Exp(-s * d.Value) }

// Quantile returns the constant value.
func (d Deterministic) Quantile(float64) float64 { return d.Value }

func (d Deterministic) String() string { return fmt.Sprintf("Det(%g)", d.Value) }

// Uniform is the continuous uniform distribution on [A, B].
type Uniform struct {
	A, B float64
}

// NewUniform returns a uniform distribution on [a, b], 0 <= a < b.
func NewUniform(a, b float64) Uniform {
	if a < 0 || b <= a {
		panic(fmt.Sprintf("dist: invalid uniform bounds [%v,%v]", a, b))
	}
	return Uniform{A: a, B: b}
}

// Sample draws a uniform variate on [A, B].
func (u Uniform) Sample(r *rand.Rand) float64 { return u.A + (u.B-u.A)*r.Float64() }

// Mean returns (A+B)/2.
func (u Uniform) Mean() float64 { return (u.A + u.B) / 2 }

// Var returns (B-A)²/12.
func (u Uniform) Var() float64 { d := u.B - u.A; return d * d / 12 }

// Laplace returns (e^{-sA} - e^{-sB}) / (s(B-A)).
func (u Uniform) Laplace(s float64) float64 {
	if s == 0 {
		return 1
	}
	return (math.Exp(-s*u.A) - math.Exp(-s*u.B)) / (s * (u.B - u.A))
}

// Quantile returns A + p(B-A).
func (u Uniform) Quantile(p float64) float64 { return u.A + p*(u.B-u.A) }

func (u Uniform) String() string { return fmt.Sprintf("U[%g,%g]", u.A, u.B) }
