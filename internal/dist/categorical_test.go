package dist

import (
	"math"
	"math/rand"
	"testing"
)

func TestCategoricalValidation(t *testing.T) {
	if _, err := NewCategorical(nil); err == nil {
		t.Fatalf("empty weights accepted")
	}
	for _, bad := range [][]float64{{0}, {-1, 2}, {1, math.NaN()}, {1, math.Inf(-1)}} {
		if _, err := NewCategorical(bad); err == nil {
			t.Fatalf("weights %v accepted", bad)
		}
	}
}

func TestCategoricalFrequencies(t *testing.T) {
	c, err := NewCategorical([]float64{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Prob(0); math.Abs(got-0.25) > 1e-15 {
		t.Fatalf("Prob(0) = %v, want 0.25", got)
	}
	r := rand.New(rand.NewSource(7))
	const n = 200000
	counts := make([]int, c.N())
	for i := 0; i < n; i++ {
		counts[c.Sample(r)]++
	}
	// Binomial std ≈ sqrt(n·p·q) ≈ 194; allow 5 sigma on a fixed seed.
	want := 0.75 * n
	if d := math.Abs(float64(counts[1]) - want); d > 5*math.Sqrt(n*0.25*0.75) {
		t.Fatalf("category 1 drawn %d times, want ≈ %g", counts[1], want)
	}
}

// TestCategoricalOneDrawPerSample pins the stream-consumption contract the
// routing determinism relies on: each Sample consumes exactly one uniform.
func TestCategoricalOneDrawPerSample(t *testing.T) {
	c, _ := NewCategorical([]float64{2, 1, 1})
	a := rand.New(rand.NewSource(42))
	b := rand.New(rand.NewSource(42))
	for i := 0; i < 1000; i++ {
		c.Sample(a)
		b.Float64()
	}
	if a.Float64() != b.Float64() {
		t.Fatalf("Sample consumed more or fewer than one uniform per call")
	}
}
