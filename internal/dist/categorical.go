package dist

import (
	"fmt"
	"math"
	"math/rand"
)

// Categorical is a discrete sampler over indices 0..n-1 with fixed
// relative weights, built once and immutable afterwards — safe to share
// across goroutines as long as each caller supplies its own *rand.Rand.
// The network layer uses one per routing node to pick among weighted
// out-links; a single uniform draw per sample keeps the stream consumption
// predictable, which the bit-identical determinism contract relies on.
type Categorical struct {
	cum []float64 // strictly increasing cumulative weights; cum[n-1] = total
}

// NewCategorical builds a sampler over the given positive weights. Weights
// need not sum to one — they are relative probabilities.
func NewCategorical(weights []float64) (*Categorical, error) {
	if len(weights) == 0 {
		return nil, fmt.Errorf("dist: categorical needs at least one weight")
	}
	cum := make([]float64, len(weights))
	total := 0.0
	for i, w := range weights {
		if !(w > 0) || math.IsInf(w, 1) {
			return nil, fmt.Errorf("dist: categorical weight %d must be positive and finite (got %v)", i, w)
		}
		total += w
		cum[i] = total
	}
	return &Categorical{cum: cum}, nil
}

// N returns the number of categories.
func (c *Categorical) N() int { return len(c.cum) }

// Sample draws one category index using a single uniform variate from r.
// The scan is linear; routing fan-outs are small (2–4 links), where a
// branchy alias table would cost more than it saves.
func (c *Categorical) Sample(r *rand.Rand) int {
	u := r.Float64() * c.cum[len(c.cum)-1]
	for i, cw := range c.cum {
		if u < cw {
			return i
		}
	}
	return len(c.cum) - 1 // u == total (possible at the closed right edge)
}

// Prob returns the normalized probability of category i.
func (c *Categorical) Prob(i int) float64 {
	lo := 0.0
	if i > 0 {
		lo = c.cum[i-1]
	}
	return (c.cum[i] - lo) / c.cum[len(c.cum)-1]
}
