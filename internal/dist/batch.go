package dist

import "math/rand"

// expBatchSize is the refill block: big enough to amortize the per-call
// overhead of going through the rand.Source interface (and to keep the
// ziggurat tables hot across the refill loop), small enough that a batch
// is a few cache lines of float64s.
const expBatchSize = 256

// ExpBatch refills a block of unit-exponential draws at a time from an
// underlying stream. The draws come out in exactly the order the stream
// would produce them one by one, so switching a consumer from
// rng.ExpFloat64() to a batch changes nothing about its sample path —
// provided every draw the consumer takes from that stream is exponential
// (a uniform drawn between two batched exponentials would see a stream
// position up to expBatchSize draws ahead).
//
// The simulation sources satisfy that proviso by construction: after
// Install, the HAP / ON-OFF / Poisson clocks and the exponential service
// laws draw nothing but ExpFloat64 from their streams.
//
// Not safe for concurrent use, like the *rand.Rand it wraps.
type ExpBatch struct {
	rng *rand.Rand
	i   int
	buf [expBatchSize]float64
}

// NewExpBatch wraps rng in a batched unit-exponential reader. The first
// refill happens on the first draw, so any non-exponential draws taken
// from rng before that keep their unbatched stream positions.
func NewExpBatch(rng *rand.Rand) *ExpBatch {
	return &ExpBatch{rng: rng, i: expBatchSize}
}

// Exp returns the next unit-exponential variate of the underlying stream.
func (b *ExpBatch) Exp() float64 {
	if b.i == expBatchSize {
		b.refill()
	}
	v := b.buf[b.i]
	b.i++
	return v
}

func (b *ExpBatch) refill() {
	for k := range b.buf {
		b.buf[k] = b.rng.ExpFloat64()
	}
	b.i = 0
}
