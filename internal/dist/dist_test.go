package dist

import (
	"math"
	"math/rand"
	"testing"
)

// sampleMoments draws n variates and returns the sample mean and variance.
func sampleMoments(t *testing.T, d Distribution, n int) (mean, variance float64) {
	t.Helper()
	r := rand.New(rand.NewSource(42))
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := d.Sample(r)
		if v < 0 {
			t.Fatalf("%v produced negative sample %v", d, v)
		}
		sum += v
		sumsq += v * v
	}
	mean = sum / float64(n)
	variance = sumsq/float64(n) - mean*mean
	return mean, variance
}

func wantClose(t *testing.T, name string, got, want, relTol float64) {
	t.Helper()
	if want == 0 {
		if math.Abs(got) > relTol {
			t.Errorf("%s = %v, want ~0", name, got)
		}
		return
	}
	if math.Abs(got-want)/math.Abs(want) > relTol {
		t.Errorf("%s = %v, want %v (rel tol %v)", name, got, want, relTol)
	}
}

func TestExponentialMoments(t *testing.T) {
	e := NewExponential(4)
	wantClose(t, "mean", e.Mean(), 0.25, 1e-12)
	wantClose(t, "var", e.Var(), 0.0625, 1e-12)
	m, v := sampleMoments(t, e, 200000)
	wantClose(t, "sample mean", m, 0.25, 0.02)
	wantClose(t, "sample var", v, 0.0625, 0.05)
}

func TestExponentialPDFCDFConsistency(t *testing.T) {
	e := NewExponential(2.5)
	// Numeric derivative of the CDF should match the PDF.
	for _, x := range []float64{0.01, 0.3, 1, 2.7} {
		h := 1e-6
		d := (e.CDF(x+h) - e.CDF(x-h)) / (2 * h)
		wantClose(t, "dCDF/dt", d, e.PDF(x), 1e-4)
	}
	if e.CDF(-1) != 0 || e.PDF(-1) != 0 {
		t.Error("negative support should have zero mass")
	}
}

func TestExponentialQuantileInvertsCDF(t *testing.T) {
	e := NewExponential(0.7)
	for _, p := range []float64{0.01, 0.25, 0.5, 0.9, 0.999} {
		wantClose(t, "CDF(Quantile(p))", e.CDF(e.Quantile(p)), p, 1e-10)
	}
}

func TestDeterministic(t *testing.T) {
	d := NewDeterministic(3)
	m, v := sampleMoments(t, d, 100)
	wantClose(t, "mean", m, 3, 1e-12)
	wantClose(t, "var", v, 0, 1e-9)
	wantClose(t, "laplace", d.Laplace(2), math.Exp(-6), 1e-12)
}

func TestUniformMoments(t *testing.T) {
	u := NewUniform(1, 3)
	wantClose(t, "mean", u.Mean(), 2, 1e-12)
	wantClose(t, "var", u.Var(), 4.0/12, 1e-12)
	m, v := sampleMoments(t, u, 100000)
	wantClose(t, "sample mean", m, 2, 0.01)
	wantClose(t, "sample var", v, 1.0/3, 0.05)
}

func TestErlangMoments(t *testing.T) {
	e := NewErlang(4, 8) // mean 0.5, var 4/64
	wantClose(t, "mean", e.Mean(), 0.5, 1e-12)
	wantClose(t, "var", e.Var(), 4.0/64, 1e-12)
	m, v := sampleMoments(t, e, 100000)
	wantClose(t, "sample mean", m, 0.5, 0.01)
	wantClose(t, "sample var", v, 0.0625, 0.05)
	wantClose(t, "SCV", SCV(e), 0.25, 1e-12)
}

func TestErlangK1MatchesExponential(t *testing.T) {
	e1 := NewErlang(1, 3)
	ex := NewExponential(3)
	for _, x := range []float64{0.1, 0.5, 1, 2} {
		wantClose(t, "pdf", e1.PDF(x), ex.PDF(x), 1e-10)
		wantClose(t, "cdf", e1.CDF(x), ex.CDF(x), 1e-10)
		wantClose(t, "laplace", e1.Laplace(x), ex.Laplace(x), 1e-12)
	}
}

func TestErlangCDFMatchesPDFIntegral(t *testing.T) {
	e := NewErlang(3, 2)
	// Trapezoid integral of the PDF up to x should match the CDF.
	const n = 20000
	x := 2.0
	h := x / n
	var integral float64
	for i := 0; i <= n; i++ {
		w := 1.0
		if i == 0 || i == n {
			w = 0.5
		}
		integral += w * e.PDF(float64(i)*h)
	}
	integral *= h
	wantClose(t, "∫pdf", integral, e.CDF(x), 1e-5)
}

func TestHyperExponential(t *testing.T) {
	h := NewHyperExponential([]float64{0.3, 0.7}, []float64{1, 10})
	wantMean := 0.3/1 + 0.7/10
	wantClose(t, "mean", h.Mean(), wantMean, 1e-12)
	m, v := sampleMoments(t, h, 300000)
	wantClose(t, "sample mean", m, wantMean, 0.02)
	wantClose(t, "sample var", v, h.Var(), 0.05)
	if SCV(h) <= 1 {
		t.Errorf("hyperexponential SCV = %v, want > 1", SCV(h))
	}
}

func TestHyperExponentialNormalises(t *testing.T) {
	h := NewHyperExponential([]float64{3, 7}, []float64{1, 10})
	wantClose(t, "p0", h.P[0], 0.3, 1e-12)
	wantClose(t, "p1", h.P[1], 0.7, 1e-12)
	wantClose(t, "laplace(0)", h.Laplace(0), 1, 1e-12)
}

func TestHyperExponentialManyBranches(t *testing.T) {
	// Binary-search sampling path with a larger mixture.
	n := 100
	p := make([]float64, n)
	rates := make([]float64, n)
	for i := range p {
		p[i] = float64(i + 1)
		rates[i] = float64(i+1) * 0.5
	}
	h := NewHyperExponential(p, rates)
	m, _ := sampleMoments(t, h, 200000)
	wantClose(t, "sample mean", m, h.Mean(), 0.03)
}

func TestParetoMoments(t *testing.T) {
	p := NewPareto(1, 3)
	wantClose(t, "mean", p.Mean(), 1.5, 1e-12)
	wantClose(t, "var", p.Var(), 0.75, 1e-12)
	m, _ := sampleMoments(t, p, 400000)
	wantClose(t, "sample mean", m, 1.5, 0.03)
}

func TestParetoInfiniteMoments(t *testing.T) {
	if !math.IsInf(NewPareto(1, 0.9).Mean(), 1) {
		t.Error("alpha<1 should have infinite mean")
	}
	if !math.IsInf(NewPareto(1, 1.5).Var(), 1) {
		t.Error("alpha<2 should have infinite variance")
	}
}

func TestWeibullShape1IsExponential(t *testing.T) {
	w := NewWeibull(2, 1) // mean 2
	e := NewExponential(0.5)
	wantClose(t, "mean", w.Mean(), e.Mean(), 1e-12)
	for _, x := range []float64{0.2, 1, 3} {
		wantClose(t, "cdf", w.CDF(x), e.CDF(x), 1e-12)
	}
}

func TestLognormalMoments(t *testing.T) {
	l := NewLognormal(0, 0.5)
	m, v := sampleMoments(t, l, 400000)
	wantClose(t, "sample mean", m, l.Mean(), 0.02)
	wantClose(t, "sample var", v, l.Var(), 0.1)
}

func TestGeometricMoments(t *testing.T) {
	g := NewGeometric(0.25)
	wantClose(t, "mean", g.Mean(), 4, 1e-12)
	m, v := sampleMoments(t, g, 300000)
	wantClose(t, "sample mean", m, 4, 0.02)
	wantClose(t, "sample var", v, 12, 0.05)
	one := NewGeometric(1)
	r := rand.New(rand.NewSource(1))
	if one.Sample(r) != 1 {
		t.Error("p=1 geometric must always return 1")
	}
}

func TestRateAndSCVHelpers(t *testing.T) {
	e := NewExponential(5)
	wantClose(t, "rate", Rate(e), 5, 1e-12)
	wantClose(t, "scv", SCV(e), 1, 1e-12)
}

func TestInvalidParamsPanic(t *testing.T) {
	cases := []func(){
		func() { NewExponential(0) },
		func() { NewExponential(-1) },
		func() { NewErlang(0, 1) },
		func() { NewUniform(2, 1) },
		func() { NewHyperExponential([]float64{1}, []float64{1, 2}) },
		func() { NewHyperExponential([]float64{0, 0}, []float64{1, 2}) },
		func() { NewHyperExponential([]float64{-1, 2}, []float64{1, 2}) },
		func() { NewPareto(0, 1) },
		func() { NewWeibull(1, 0) },
		func() { NewGeometric(0) },
		func() { NewDeterministic(-1) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}
