package dist

import (
	"fmt"
	"math"
	"math/rand"
)

// Pareto is the Pareto (power-law) distribution with scale Xm and shape
// Alpha: P(T > t) = (Xm/t)^Alpha for t >= Xm. It is included as the
// heavy-tailed alternative motivated by the trace study the paper cites
// (Fowler & Leland): later self-similar traffic work showed message sizes
// and ON periods are better fit by power laws.
type Pareto struct {
	Xm    float64
	Alpha float64
}

// NewPareto returns a Pareto distribution with scale xm and shape alpha.
func NewPareto(xm, alpha float64) Pareto {
	checkPositive("xm", xm)
	checkPositive("alpha", alpha)
	return Pareto{Xm: xm, Alpha: alpha}
}

// Sample draws a Pareto variate by inversion.
func (p Pareto) Sample(r *rand.Rand) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return p.Xm / math.Pow(u, 1/p.Alpha)
}

// Mean returns α·xm/(α-1), or +Inf when α <= 1.
func (p Pareto) Mean() float64 {
	if p.Alpha <= 1 {
		return math.Inf(1)
	}
	return p.Alpha * p.Xm / (p.Alpha - 1)
}

// Var returns the variance, or +Inf when α <= 2.
func (p Pareto) Var() float64 {
	if p.Alpha <= 2 {
		return math.Inf(1)
	}
	a := p.Alpha
	return p.Xm * p.Xm * a / ((a - 1) * (a - 1) * (a - 2))
}

// PDF returns α xm^α / t^{α+1} for t >= xm.
func (p Pareto) PDF(t float64) float64 {
	if t < p.Xm {
		return 0
	}
	return p.Alpha * math.Pow(p.Xm, p.Alpha) / math.Pow(t, p.Alpha+1)
}

// CDF returns 1 - (xm/t)^α.
func (p Pareto) CDF(t float64) float64 {
	if t < p.Xm {
		return 0
	}
	return 1 - math.Pow(p.Xm/t, p.Alpha)
}

// Quantile inverts the CDF.
func (p Pareto) Quantile(q float64) float64 {
	if q <= 0 {
		return p.Xm
	}
	if q >= 1 {
		return math.Inf(1)
	}
	return p.Xm / math.Pow(1-q, 1/p.Alpha)
}

func (p Pareto) String() string { return fmt.Sprintf("Pareto(xm=%g,alpha=%g)", p.Xm, p.Alpha) }

// Weibull is the Weibull distribution with scale Scale and shape Shape.
// Shape < 1 yields a heavy(ish) tail and bursty interarrivals; Shape = 1
// reduces to the exponential.
type Weibull struct {
	Scale, Shape float64
}

// NewWeibull returns a Weibull distribution.
func NewWeibull(scale, shape float64) Weibull {
	checkPositive("scale", scale)
	checkPositive("shape", shape)
	return Weibull{Scale: scale, Shape: shape}
}

// Sample draws a Weibull variate by inversion.
func (w Weibull) Sample(r *rand.Rand) float64 {
	return w.Scale * math.Pow(r.ExpFloat64(), 1/w.Shape)
}

// Mean returns scale·Γ(1+1/shape).
func (w Weibull) Mean() float64 { return w.Scale * math.Gamma(1+1/w.Shape) }

// Var returns scale²(Γ(1+2/k) - Γ(1+1/k)²).
func (w Weibull) Var() float64 {
	g1 := math.Gamma(1 + 1/w.Shape)
	g2 := math.Gamma(1 + 2/w.Shape)
	return w.Scale * w.Scale * (g2 - g1*g1)
}

// PDF returns the Weibull density.
func (w Weibull) PDF(t float64) float64 {
	if t < 0 {
		return 0
	}
	k, c := w.Shape, w.Scale
	return k / c * math.Pow(t/c, k-1) * math.Exp(-math.Pow(t/c, k))
}

// CDF returns 1 - e^{-(t/scale)^shape}.
func (w Weibull) CDF(t float64) float64 {
	if t < 0 {
		return 0
	}
	return -math.Expm1(-math.Pow(t/w.Scale, w.Shape))
}

// Quantile inverts the CDF.
func (w Weibull) Quantile(p float64) float64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return math.Inf(1)
	}
	return w.Scale * math.Pow(-math.Log1p(-p), 1/w.Shape)
}

func (w Weibull) String() string { return fmt.Sprintf("Weibull(scale=%g,shape=%g)", w.Scale, w.Shape) }

// Lognormal is the log-normal distribution: ln T ~ N(Mu, Sigma²).
type Lognormal struct {
	Mu, Sigma float64
}

// NewLognormal returns a log-normal distribution with the given parameters
// of the underlying normal.
func NewLognormal(mu, sigma float64) Lognormal {
	checkPositive("sigma", sigma)
	return Lognormal{Mu: mu, Sigma: sigma}
}

// Sample draws a log-normal variate.
func (l Lognormal) Sample(r *rand.Rand) float64 {
	return math.Exp(l.Mu + l.Sigma*r.NormFloat64())
}

// Mean returns e^{μ+σ²/2}.
func (l Lognormal) Mean() float64 { return math.Exp(l.Mu + l.Sigma*l.Sigma/2) }

// Var returns (e^{σ²}-1)e^{2μ+σ²}.
func (l Lognormal) Var() float64 {
	s2 := l.Sigma * l.Sigma
	return math.Expm1(s2) * math.Exp(2*l.Mu+s2)
}

func (l Lognormal) String() string { return fmt.Sprintf("Lognormal(mu=%g,sigma=%g)", l.Mu, l.Sigma) }

// Geometric is the discrete geometric distribution on {1, 2, ...} with
// success probability P: the number of request/response rounds an HAP-CS
// exchange lasts when each round continues with probability 1-P.
type Geometric struct {
	P float64
}

// NewGeometric returns a geometric distribution with stop probability p in
// (0, 1].
func NewGeometric(p float64) Geometric {
	if !(p > 0) || p > 1 {
		panic(fmt.Sprintf("dist: geometric p must be in (0,1], got %v", p))
	}
	return Geometric{P: p}
}

// Sample draws the number of trials up to and including the first success.
func (g Geometric) Sample(r *rand.Rand) float64 {
	if g.P == 1 {
		return 1
	}
	// Inversion: ceil(ln U / ln(1-p)).
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return math.Ceil(math.Log(u) / math.Log1p(-g.P))
}

// Mean returns 1/p.
func (g Geometric) Mean() float64 { return 1 / g.P }

// Var returns (1-p)/p².
func (g Geometric) Var() float64 { return (1 - g.P) / (g.P * g.P) }

func (g Geometric) String() string { return fmt.Sprintf("Geom(p=%g)", g.P) }
