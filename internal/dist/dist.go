// Package dist provides the probability distributions used throughout the
// HAP library: the holding-time and interarrival-time laws of the model
// (exponential in the paper's analysis, with several alternatives for
// simulation studies) and seedable random-number streams for independent
// replications.
//
// All distributions are immutable value types; the zero value is not useful,
// construct them with the New* functions, which validate parameters.
package dist

import (
	"fmt"
	"math/rand"
)

// Distribution is a univariate, non-negative probability distribution.
//
// Sample draws a variate using the supplied source so that callers control
// stream assignment and reproducibility. Mean and Var report the first two
// central moments; Var returns +Inf for distributions with infinite
// variance (e.g. Pareto with shape <= 2).
type Distribution interface {
	Sample(r *rand.Rand) float64
	Mean() float64
	Var() float64
	fmt.Stringer
}

// Laplacer is implemented by distributions with a closed-form
// Laplace–Stieltjes transform E[e^{-sT}], defined for s >= 0.
type Laplacer interface {
	Laplace(s float64) float64
}

// Quantiler is implemented by distributions with an invertible CDF.
type Quantiler interface {
	// Quantile returns the p-quantile for p in (0, 1).
	Quantile(p float64) float64
}

// Densitier is implemented by distributions with a known density and CDF.
type Densitier interface {
	PDF(t float64) float64
	CDF(t float64) float64
}

// SCV returns the squared coefficient of variation Var/Mean² of d.
// A Poisson process's exponential interarrival has SCV 1; SCV > 1 indicates
// burstier-than-Poisson variability.
func SCV(d Distribution) float64 {
	m := d.Mean()
	if m == 0 {
		return 0
	}
	return d.Var() / (m * m)
}

// Rate returns the reciprocal of the mean of d. The paper specifies every
// HAP parameter as a rate whose reciprocal is the mean of the corresponding
// distribution.
func Rate(d Distribution) float64 {
	return 1 / d.Mean()
}

func checkPositive(name string, v float64) {
	if !(v > 0) {
		panic(fmt.Sprintf("dist: %s must be positive, got %v", name, v))
	}
}

func checkProb(name string, v float64) {
	if v < 0 || v > 1 {
		panic(fmt.Sprintf("dist: %s must be in [0,1], got %v", name, v))
	}
}
