package dist

import "math/rand"

// splitmix64 advances and hashes a seed; it is used to derive well-separated
// sub-stream seeds from a single master seed so that replications and model
// components (user process, application processes, service times, ...) use
// statistically independent randomness.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Streams deterministically derives independent random streams from one
// master seed. It is safe to create; each returned *rand.Rand is NOT safe
// for concurrent use, as with math/rand generally.
type Streams struct {
	seed uint64
	next uint64
}

// NewStreams returns a stream factory rooted at seed.
func NewStreams(seed int64) *Streams {
	return &Streams{seed: uint64(seed)}
}

// Next returns a fresh independent stream. Successive calls return streams
// seeded by successive splitmix64 outputs of the master seed.
func (s *Streams) Next() *rand.Rand {
	s.next++
	return rand.New(rand.NewSource(int64(splitmix64(s.seed + s.next*0x9e3779b97f4a7c15))))
}

// Nth returns the stream with index n (deterministic, independent of calls
// to Next). Use it to give replication n its own reproducible randomness.
func (s *Streams) Nth(n int) *rand.Rand {
	return rand.New(rand.NewSource(SubSeed(int64(s.seed), n)))
}

// SubSeed derives the nth well-separated replication seed from a base seed.
// It is the seed-level counterpart of Streams.Nth: SubSeed(base, n) depends
// only on (base, n), so parallel replications seeded this way reproduce the
// serial run bit for bit in any execution order.
func SubSeed(base int64, n int) int64 {
	return int64(splitmix64(uint64(base) ^ uint64(n)*0xd1342543de82ef95))
}
