package dist

import "testing"

// TestExpBatchPreservesStreamOrder pins the contract the simulation relies
// on: a batched reader yields exactly the sequence the raw stream would,
// so wiring batching into a source changes no sample path.
func TestExpBatchPreservesStreamOrder(t *testing.T) {
	a := NewStreams(99).Next()
	b := NewStreams(99).Next()
	batch := NewExpBatch(b)
	for i := 0; i < 4*expBatchSize+7; i++ {
		want := a.ExpFloat64()
		if got := batch.Exp(); got != want {
			t.Fatalf("draw %d: batched %v != direct %v", i, got, want)
		}
	}
}

// TestExpBatchLazyFirstRefill checks that construction alone consumes no
// draws, so install-time (non-exponential) sampling that precedes the
// first batched draw sees an untouched stream.
func TestExpBatchLazyFirstRefill(t *testing.T) {
	a := NewStreams(7).Next()
	b := NewStreams(7).Next()
	_ = NewExpBatch(b) // must not advance b
	if got, want := b.Float64(), a.Float64(); got != want {
		t.Fatalf("construction advanced the stream: %v != %v", got, want)
	}
}

func BenchmarkExpDirect(b *testing.B) {
	rng := NewStreams(1).Next()
	var acc float64
	for i := 0; i < b.N; i++ {
		acc += rng.ExpFloat64()
	}
	_ = acc
}

func BenchmarkExpBatched(b *testing.B) {
	batch := NewExpBatch(NewStreams(1).Next())
	var acc float64
	for i := 0; i < b.N; i++ {
		acc += batch.Exp()
	}
	_ = acc
}
