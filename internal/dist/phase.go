package dist

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
)

// Erlang is the Erlang-k distribution: the sum of K independent exponentials
// of rate Rate each (mean K/Rate, SCV 1/K). It models smoother-than-Poisson
// holding times.
type Erlang struct {
	K    int
	Rate float64
}

// NewErlang returns an Erlang-k distribution with k phases of the given
// per-phase rate.
func NewErlang(k int, rate float64) Erlang {
	if k < 1 {
		panic("dist: Erlang needs k >= 1")
	}
	checkPositive("rate", rate)
	return Erlang{K: k, Rate: rate}
}

// Sample draws an Erlang variate as a sum of K exponentials.
func (e Erlang) Sample(r *rand.Rand) float64 {
	var sum float64
	for i := 0; i < e.K; i++ {
		sum += r.ExpFloat64()
	}
	return sum / e.Rate
}

// Mean returns K/Rate.
func (e Erlang) Mean() float64 { return float64(e.K) / e.Rate }

// Var returns K/Rate².
func (e Erlang) Var() float64 { return float64(e.K) / (e.Rate * e.Rate) }

// Laplace returns (Rate/(Rate+s))^K.
func (e Erlang) Laplace(s float64) float64 {
	return math.Pow(e.Rate/(e.Rate+s), float64(e.K))
}

// PDF returns the Erlang density.
func (e Erlang) PDF(t float64) float64 {
	if t < 0 {
		return 0
	}
	k := float64(e.K)
	lg, _ := math.Lgamma(k)
	return math.Exp(k*math.Log(e.Rate) + (k-1)*math.Log(t) - e.Rate*t - lg) // λ^k t^{k-1} e^{-λt}/(k-1)!
}

// CDF returns the Erlang CDF via the regularised lower incomplete gamma,
// computed from the Poisson tail identity P(T <= t) = P(Pois(λt) >= k).
func (e Erlang) CDF(t float64) float64 {
	if t <= 0 {
		return 0
	}
	x := e.Rate * t
	// 1 - sum_{n=0}^{k-1} e^{-x} x^n / n!
	term := math.Exp(-x)
	sum := term
	for n := 1; n < e.K; n++ {
		term *= x / float64(n)
		sum += term
	}
	return 1 - sum
}

func (e Erlang) String() string { return fmt.Sprintf("Erlang(k=%d,rate=%g)", e.K, e.Rate) }

// HyperExponential is a probabilistic mixture of exponentials: with
// probability P[i] the variate is Exp(Rates[i]). It is the exact law of the
// HAP message interarrival approximation in Solution 1, where each branch
// corresponds to one state of the modulating Markov chain.
type HyperExponential struct {
	P     []float64
	Rates []float64
	cum   []float64
}

// NewHyperExponential builds a mixture of exponentials. Probabilities must
// be non-negative; they are normalised to sum to 1. Branches with zero
// probability are retained (they do not affect sampling).
func NewHyperExponential(p, rates []float64) *HyperExponential {
	if len(p) != len(rates) || len(p) == 0 {
		panic("dist: hyperexponential needs matching non-empty p and rates")
	}
	var total float64
	for i, pi := range p {
		if pi < 0 {
			panic("dist: hyperexponential probabilities must be >= 0")
		}
		checkPositive("rate", rates[i])
		total += pi
	}
	if total <= 0 {
		panic("dist: hyperexponential probabilities sum to zero")
	}
	h := &HyperExponential{
		P:     make([]float64, len(p)),
		Rates: append([]float64(nil), rates...),
		cum:   make([]float64, len(p)),
	}
	var c float64
	for i, pi := range p {
		h.P[i] = pi / total
		c += h.P[i]
		h.cum[i] = c
	}
	h.cum[len(h.cum)-1] = 1
	return h
}

// Sample draws a branch, then an exponential from it.
func (h *HyperExponential) Sample(r *rand.Rand) float64 {
	u := r.Float64()
	// Branch count can be large (one per Markov state); binary search.
	lo, hi := 0, len(h.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if h.cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return r.ExpFloat64() / h.Rates[lo]
}

// Mean returns Σ pᵢ/λᵢ.
func (h *HyperExponential) Mean() float64 {
	var m float64
	for i, p := range h.P {
		m += p / h.Rates[i]
	}
	return m
}

// SecondMoment returns E[T²] = Σ 2pᵢ/λᵢ².
func (h *HyperExponential) SecondMoment() float64 {
	var m2 float64
	for i, p := range h.P {
		m2 += 2 * p / (h.Rates[i] * h.Rates[i])
	}
	return m2
}

// Var returns the variance.
func (h *HyperExponential) Var() float64 {
	m := h.Mean()
	return h.SecondMoment() - m*m
}

// PDF returns Σ pᵢ λᵢ e^{-λᵢ t}.
func (h *HyperExponential) PDF(t float64) float64 {
	if t < 0 {
		return 0
	}
	var f float64
	for i, p := range h.P {
		f += p * h.Rates[i] * math.Exp(-h.Rates[i]*t)
	}
	return f
}

// CDF returns 1 - Σ pᵢ e^{-λᵢ t}.
func (h *HyperExponential) CDF(t float64) float64 {
	if t < 0 {
		return 0
	}
	var s float64
	for i, p := range h.P {
		s += p * math.Exp(-h.Rates[i]*t)
	}
	return 1 - s
}

// Laplace returns Σ pᵢ λᵢ/(λᵢ+s). This exactness is what makes Solution 1's
// σ fixed point cheap: no numerical quadrature is required.
func (h *HyperExponential) Laplace(s float64) float64 {
	var v float64
	for i, p := range h.P {
		v += p * h.Rates[i] / (h.Rates[i] + s)
	}
	return v
}

func (h *HyperExponential) String() string {
	if len(h.P) <= 4 {
		parts := make([]string, len(h.P))
		for i := range h.P {
			parts[i] = fmt.Sprintf("%.3g:Exp(%.3g)", h.P[i], h.Rates[i])
		}
		return "Hyper{" + strings.Join(parts, ",") + "}"
	}
	return fmt.Sprintf("Hyper{%d branches, mean=%.4g}", len(h.P), h.Mean())
}
