package markov

import "fmt"

// Lattice maps multi-dimensional bounded coordinates to dense state indices
// and back. Dimension d takes values 0..Dims[d]-1. HAP's modulating chain
// lives on such a lattice: (x, y₁, ..., y_l) with per-dimension bounds, and
// Solution 0 adds the queue-length dimension z.
type Lattice struct {
	Dims    []int
	strides []int
	n       int
}

// NewLattice builds a lattice with the given per-dimension sizes.
func NewLattice(dims ...int) *Lattice {
	if len(dims) == 0 {
		panic("markov: lattice needs at least one dimension")
	}
	l := &Lattice{Dims: append([]int(nil), dims...), strides: make([]int, len(dims))}
	n := 1
	for d := len(dims) - 1; d >= 0; d-- {
		if dims[d] <= 0 {
			panic(fmt.Sprintf("markov: lattice dimension %d has size %d", d, dims[d]))
		}
		l.strides[d] = n
		n *= dims[d]
	}
	l.n = n
	return l
}

// N returns the total number of lattice points.
func (l *Lattice) N() int { return l.n }

// Index returns the dense index of coords. It panics if coords are out of
// range (programming error, not data error).
func (l *Lattice) Index(coords ...int) int {
	if len(coords) != len(l.Dims) {
		panic("markov: wrong coordinate arity")
	}
	idx := 0
	for d, c := range coords {
		if c < 0 || c >= l.Dims[d] {
			panic(fmt.Sprintf("markov: coordinate %d = %d out of [0,%d)", d, c, l.Dims[d]))
		}
		idx += c * l.strides[d]
	}
	return idx
}

// Coords decodes a dense index into the supplied slice (allocating if nil)
// and returns it.
func (l *Lattice) Coords(idx int, into []int) []int {
	if into == nil {
		into = make([]int, len(l.Dims))
	}
	for d := range l.Dims {
		into[d] = idx / l.strides[d] % l.Dims[d]
	}
	return into
}

// At returns coordinate d of dense index idx without decoding the rest.
func (l *Lattice) At(idx, d int) int {
	return idx / l.strides[d] % l.Dims[d]
}

// Shift returns the dense index displaced by delta along dimension d and
// true, or 0 and false if the move leaves the lattice.
func (l *Lattice) Shift(idx, d, delta int) (int, bool) {
	c := l.At(idx, d)
	nc := c + delta
	if nc < 0 || nc >= l.Dims[d] {
		return 0, false
	}
	return idx + delta*l.strides[d], true
}

// ShellOrder returns all indices sorted by coordinate sum (the k-shells the
// paper sweeps in Solution 0), with ties broken by index order.
func (l *Lattice) ShellOrder() []int {
	order := make([]int, l.n)
	sums := make([]int, l.n)
	coords := make([]int, len(l.Dims))
	for i := 0; i < l.n; i++ {
		order[i] = i
		l.Coords(i, coords)
		s := 0
		for _, c := range coords {
			s += c
		}
		sums[i] = s
	}
	// Counting sort by shell (sums are small).
	maxS := 0
	for _, s := range sums {
		if s > maxS {
			maxS = s
		}
	}
	buckets := make([][]int, maxS+1)
	for i, s := range sums {
		buckets[s] = append(buckets[s], i)
	}
	out := order[:0]
	for _, b := range buckets {
		out = append(out, b...)
	}
	return out
}
