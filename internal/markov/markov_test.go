package markov

import (
	"math"
	"testing"
	"testing/quick"
)

func wantClose(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %v, want %v (tol %v)", name, got, want, tol)
	}
}

// buildMM1K constructs the M/M/1/K chain for the iterative solvers.
func buildMM1K(lambda, mu float64, K int) *Chain {
	c := NewChain(K + 1)
	for i := 0; i < K; i++ {
		c.Add(i, i+1, lambda)
		c.Add(i+1, i, mu)
	}
	return c
}

func TestSteadyStateMatchesMM1K(t *testing.T) {
	lambda, mu, K := 3.0, 5.0, 30
	c := buildMM1K(lambda, mu, K)
	want := MM1KDistribution(lambda, mu, K)
	for _, solver := range []string{"power", "gs"} {
		var pi []float64
		var err error
		switch solver {
		case "power":
			pi, _, err = c.SteadyState(nil)
		case "gs":
			pi, _, err = c.GaussSeidel(nil)
		}
		if err != nil {
			t.Fatalf("%s: %v", solver, err)
		}
		for i := range pi {
			wantClose(t, solver+" pi", pi[i], want[i], 1e-7)
		}
	}
}

func TestSteadyStateTwoState(t *testing.T) {
	// 0→1 at rate a, 1→0 at rate b: π = (b, a)/(a+b).
	a, b := 0.3, 1.7
	c := NewChain(2)
	c.Add(0, 1, a)
	c.Add(1, 0, b)
	pi, _, err := c.SteadyState(nil)
	if err != nil {
		t.Fatal(err)
	}
	wantClose(t, "pi0", pi[0], b/(a+b), 1e-9)
	wantClose(t, "pi1", pi[1], a/(a+b), 1e-9)
}

func TestGaussSeidelMatchesPowerOnRandomChain(t *testing.T) {
	// A small dense-ish random-rate irreducible chain.
	n := 12
	c := NewChain(n)
	seed := uint64(12345)
	next := func() float64 {
		seed = seed*6364136223846793005 + 1442695040888963407
		return float64(seed>>33)/float64(1<<31) + 0.01
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && (i+j)%3 != 0 {
				c.Add(i, j, next())
			}
		}
	}
	// Ensure irreducibility with a ring.
	for i := 0; i < n; i++ {
		c.Add(i, (i+1)%n, 0.5)
	}
	p1, _, err1 := c.SteadyState(&SteadyOptions{Tol: 1e-12})
	p2, _, err2 := c.GaussSeidel(&SteadyOptions{Tol: 1e-12})
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	for i := range p1 {
		wantClose(t, "pi", p1[i], p2[i], 1e-8)
	}
}

func TestSteadyStateBalanceResidual(t *testing.T) {
	// The stationary law must satisfy global balance: inflow == outflow.
	c := buildMM1K(2, 3, 10)
	pi, _, err := c.SteadyState(&SteadyOptions{Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	inflow := make([]float64, c.N())
	for i := 0; i < c.N(); i++ {
		for _, tr := range c.Transitions(i) {
			inflow[tr.To] += pi[i] * tr.Rate
		}
	}
	for i := range inflow {
		wantClose(t, "balance", inflow[i], pi[i]*c.OutRate(i), 1e-8)
	}
}

func TestSteadyStateNoTransitions(t *testing.T) {
	c := NewChain(4)
	pi, _, err := c.SteadyState(nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pi {
		wantClose(t, "uniform", p, 0.25, 1e-12)
	}
}

func TestNotConverged(t *testing.T) {
	c := buildMM1K(3, 5, 50)
	_, _, err := c.SteadyState(&SteadyOptions{Tol: 1e-15, MaxIter: 3})
	if err == nil {
		t.Error("expected ErrNotConverged with tiny budget")
	}
}

func TestChainValidation(t *testing.T) {
	c := NewChain(2)
	c.Add(0, 1, 0) // ignored
	if len(c.Transitions(0)) != 0 {
		t.Error("zero rate should be ignored")
	}
	for _, f := range []func(){
		func() { c.Add(0, 0, 1) },
		func() { c.Add(0, 1, -1) },
		func() { NewChain(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestBirthDeathMatchesMM1K(t *testing.T) {
	lambda, mu, K := 4.0, 5.0, 20
	got := BirthDeath(K+1, func(int) float64 { return lambda }, func(int) float64 { return mu })
	want := MM1KDistribution(lambda, mu, K)
	for i := range want {
		wantClose(t, "bd", got[i], want[i], 1e-12)
	}
}

func TestBirthDeathMatchesMMInf(t *testing.T) {
	lambda, mu := 5.5, 1.0
	n := 60
	got := BirthDeath(n, func(int) float64 { return lambda },
		func(i int) float64 { return float64(i) * mu })
	want := MMInfDistribution(lambda, mu, n)
	for i := 0; i < 40; i++ {
		wantClose(t, "bd-mminf", got[i], want[i], 1e-9)
	}
}

func TestMM1Closed(t *testing.T) {
	wantClose(t, "delay", MM1Delay(8.25, 20), 1/11.75, 1e-12)
	wantClose(t, "N", MM1QueueLength(8.25, 20), 0.4125/0.5875, 1e-12)
	pi := MM1Distribution(0.5, 1, 50)
	var sum float64
	for _, p := range pi {
		sum += p
	}
	wantClose(t, "mass", sum, 1-math.Pow(0.5, 50), 1e-12)
}

func TestMM1RhoOneUniform(t *testing.T) {
	pi := MM1KDistribution(2, 2, 4)
	for _, p := range pi {
		wantClose(t, "uniform", p, 0.2, 1e-12)
	}
}

func TestTruncatedPoisson(t *testing.T) {
	pi := TruncatedPoisson(5.5, 60)
	var sum, mean float64
	for k, p := range pi {
		sum += p
		mean += float64(k) * p
	}
	wantClose(t, "mass", sum, 1, 1e-12)
	wantClose(t, "mean", mean, 5.5, 1e-6) // 60 >> 5.5, near-untruncated
	// Tight truncation must lower the mean.
	tight := TruncatedPoisson(5.5, 4)
	var tm float64
	for k, p := range tight {
		tm += float64(k) * p
	}
	if tm >= 4.5 {
		t.Errorf("truncated mean = %v, want < 4.5", tm)
	}
}

func TestErlangB(t *testing.T) {
	// Classic value: a=10 erlangs, c=10 servers → B ≈ 0.2146.
	wantClose(t, "B(10,10)", ErlangB(10, 10), 0.2146, 5e-4)
	wantClose(t, "B(a,0)", ErlangB(3, 0), 1, 0)
}

func TestLatticeRoundTrip(t *testing.T) {
	l := NewLattice(3, 4, 5)
	if l.N() != 60 {
		t.Fatalf("N = %d", l.N())
	}
	coords := make([]int, 3)
	for i := 0; i < l.N(); i++ {
		l.Coords(i, coords)
		if got := l.Index(coords...); got != i {
			t.Fatalf("roundtrip %d → %v → %d", i, coords, got)
		}
		for d := 0; d < 3; d++ {
			if l.At(i, d) != coords[d] {
				t.Fatalf("At(%d,%d) = %d want %d", i, d, l.At(i, d), coords[d])
			}
		}
	}
}

func TestLatticeShift(t *testing.T) {
	l := NewLattice(3, 3)
	i := l.Index(1, 2)
	if j, ok := l.Shift(i, 0, 1); !ok || l.At(j, 0) != 2 || l.At(j, 1) != 2 {
		t.Error("shift up dim0 failed")
	}
	if _, ok := l.Shift(i, 1, 1); ok {
		t.Error("shift out of bounds should fail")
	}
	if _, ok := l.Shift(l.Index(0, 0), 0, -1); ok {
		t.Error("negative shift out of bounds should fail")
	}
}

func TestLatticeShellOrder(t *testing.T) {
	l := NewLattice(3, 3)
	order := l.ShellOrder()
	if len(order) != 9 {
		t.Fatal("wrong order length")
	}
	coords := make([]int, 2)
	prevSum := -1
	for _, idx := range order {
		l.Coords(idx, coords)
		s := coords[0] + coords[1]
		if s < prevSum {
			t.Fatalf("shell order violated at %v", coords)
		}
		prevSum = s
	}
}

func TestExpectedValue(t *testing.T) {
	pi := []float64{0.2, 0.3, 0.5}
	got := ExpectedValue(pi, func(i int) float64 { return float64(i) })
	wantClose(t, "E", got, 1.3, 1e-12)
}

// Property: birth–death product form always sums to 1 and is non-negative.
func TestQuickBirthDeathNormalised(t *testing.T) {
	f := func(b, d float64, nRaw uint8) bool {
		n := int(nRaw%50) + 2
		bb := math.Abs(math.Mod(b, 10)) + 0.1
		dd := math.Abs(math.Mod(d, 10)) + 0.1
		pi := BirthDeath(n, func(int) float64 { return bb },
			func(i int) float64 { return dd * float64(i) })
		var sum float64
		for _, p := range pi {
			if p < 0 || math.IsNaN(p) {
				return false
			}
			sum += p
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: lattice Index/Coords are inverse bijections for random shapes.
func TestQuickLatticeBijection(t *testing.T) {
	f := func(a, b, c uint8, pick uint16) bool {
		da, db, dc := int(a%5)+1, int(b%5)+1, int(c%5)+1
		l := NewLattice(da, db, dc)
		i := int(pick) % l.N()
		coords := l.Coords(i, nil)
		return l.Index(coords...) == i
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
