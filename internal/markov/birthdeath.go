package markov

import "math"

// BirthDeath computes the stationary distribution of a birth–death chain on
// states 0..n-1 with birth rates birth(i) (i→i+1) and death rates death(i)
// (i→i-1), via the product-form solution. It underlies the closed-form
// validators below and the truncated-population variants of Solution 2.
func BirthDeath(n int, birth, death func(i int) float64) []float64 {
	if n <= 0 {
		return nil
	}
	pi := make([]float64, n)
	// Work in log space to survive large state spaces.
	logw := 0.0
	maxLog := 0.0
	logs := make([]float64, n)
	for i := 1; i < n; i++ {
		b, d := birth(i-1), death(i)
		if b <= 0 || d <= 0 {
			// Unreachable tail: truncate.
			logs = logs[:i]
			pi = pi[:i]
			break
		}
		logw += math.Log(b) - math.Log(d)
		logs[i] = logw
		if logw > maxLog {
			maxLog = logw
		}
	}
	var sum float64
	for i := range logs {
		pi[i] = math.Exp(logs[i] - maxLog)
		sum += pi[i]
	}
	for i := range pi {
		pi[i] /= sum
	}
	return pi
}

// MM1Distribution returns the first n probabilities of the M/M/1 queue
// length (geometric with ratio ρ = λ/μ < 1).
func MM1Distribution(lambda, mu float64, n int) []float64 {
	rho := lambda / mu
	pi := make([]float64, n)
	p := 1 - rho
	for i := range pi {
		pi[i] = p
		p *= rho
	}
	return pi
}

// MM1Delay returns the mean sojourn time (waiting + service) of an M/M/1
// queue: 1/(μ-λ). This is the paper's Poisson baseline.
func MM1Delay(lambda, mu float64) float64 { return 1 / (mu - lambda) }

// MM1QueueLength returns the mean number in system ρ/(1-ρ).
func MM1QueueLength(lambda, mu float64) float64 {
	rho := lambda / mu
	return rho / (1 - rho)
}

// MMInfDistribution returns the first n probabilities of the M/M/∞
// occupancy: Poisson(λ/μ). HAP's user and application populations are
// M/M/∞ in Solution 2's conditioning.
func MMInfDistribution(lambda, mu float64, n int) []float64 {
	m := lambda / mu
	pi := make([]float64, n)
	for k := range pi {
		pi[k] = math.Exp(float64(k)*math.Log(m) - m - lgamma(k+1))
	}
	return pi
}

// TruncatedPoisson returns the Poisson(m) distribution truncated to
// {0..kmax} and renormalised — the stationary law of an M/M/∞ population
// admission-capped at kmax (Erlang-loss insensitivity).
func TruncatedPoisson(m float64, kmax int) []float64 {
	pi := make([]float64, kmax+1)
	var sum float64
	for k := 0; k <= kmax; k++ {
		pi[k] = math.Exp(float64(k)*math.Log(m) - m - lgamma(k+1))
		sum += pi[k]
	}
	for k := range pi {
		pi[k] /= sum
	}
	return pi
}

// MM1KDistribution returns the stationary law of the M/M/1/K queue
// (capacity K including the one in service).
func MM1KDistribution(lambda, mu float64, K int) []float64 {
	rho := lambda / mu
	pi := make([]float64, K+1)
	if rho == 1 {
		for i := range pi {
			pi[i] = 1 / float64(K+1)
		}
		return pi
	}
	c := (1 - rho) / (1 - math.Pow(rho, float64(K+1)))
	p := c
	for i := range pi {
		pi[i] = p
		p *= rho
	}
	return pi
}

// ErlangB returns the Erlang-B blocking probability for offered load a
// erlangs on c servers, computed with the stable recurrence.
func ErlangB(a float64, c int) float64 {
	b := 1.0
	for k := 1; k <= c; k++ {
		b = a * b / (float64(k) + a*b)
	}
	return b
}

func lgamma(k int) float64 {
	lg, _ := math.Lgamma(float64(k))
	return lg
}
