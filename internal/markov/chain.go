// Package markov implements the continuous-time Markov chain machinery the
// HAP solvers stand on: a sparse rate-matrix representation, iterative
// steady-state solvers (the paper's brute-force approach is exactly a sweep
// iteration on the balance equations), closed-form birth–death results used
// as validators, and a lattice indexer for multi-dimensional state spaces
// such as HAP's (x, y₁..y_l, z).
//
// Go has no strong linear-algebra standard library; these chains are sparse
// and structured, so hand-rolled Gauss–Seidel and uniformised power
// iteration are both simpler and faster than a dense solve.
package markov

import (
	"context"
	"fmt"
	"math"

	"hap/internal/haperr"
	"hap/internal/obs"
)

// Runtime metrics: a sweep over a multi-million-state chain is the unit of
// work the brute-force Solution 0 spends minutes in, so sweeps are counted
// per convergence check (CheckEvery batches), not per state — the inner
// loops stay untouched.
var (
	obsSweeps = obs.NewCounter("hap_markov_sweeps_total",
		"Steady-state iteration sweeps (Gauss-Seidel and uniformised power iteration).")
	obsSweepResidual = obs.NewFloatGauge("hap_markov_last_residual",
		"Total-variation residual at the most recent convergence check.")
)

// Transition is one outgoing rate entry of a CTMC generator row.
type Transition struct {
	To   int
	Rate float64
}

// Chain is a finite-state CTMC described by its transition rates. Diagonal
// entries are implicit (negative row sums). States are dense integers
// 0..N()-1.
type Chain struct {
	rows    [][]Transition
	outRate []float64
}

// NewChain creates a chain with n states and no transitions.
func NewChain(n int) *Chain {
	if n <= 0 {
		panic("markov: chain needs at least one state")
	}
	return &Chain{rows: make([][]Transition, n), outRate: make([]float64, n)}
}

// N returns the number of states.
func (c *Chain) N() int { return len(c.rows) }

// Add records a transition from→to with the given rate. Zero rates are
// ignored; negative rates and self loops are rejected.
func (c *Chain) Add(from, to int, rate float64) {
	if rate == 0 {
		return
	}
	if rate < 0 || math.IsNaN(rate) {
		panic(fmt.Sprintf("markov: negative or NaN rate %v", rate))
	}
	if from == to {
		panic("markov: self loops are meaningless in a CTMC")
	}
	c.rows[from] = append(c.rows[from], Transition{To: to, Rate: rate})
	c.outRate[from] += rate
}

// OutRate returns the total departure rate of state i.
func (c *Chain) OutRate(i int) float64 { return c.outRate[i] }

// Transitions returns the outgoing transitions of state i. The slice is
// owned by the chain; callers must not modify it.
func (c *Chain) Transitions(i int) []Transition { return c.rows[i] }

// MaxOutRate returns the uniformisation constant max_i OutRate(i).
func (c *Chain) MaxOutRate() float64 {
	var m float64
	for _, r := range c.outRate {
		if r > m {
			m = r
		}
	}
	return m
}

// SteadyOptions controls the iterative solvers.
type SteadyOptions struct {
	// Tol is the total-variation change per sweep (Σ|Δπ|/2) below which the
	// iteration is declared converged (default 1e-10).
	Tol     float64
	MaxIter int // iteration budget (default 200000)
	// Pi0 optionally warm-starts the iteration; it is normalised first.
	Pi0        []float64
	CheckEvery int // convergence/cancellation test period in sweeps (default 10)
	// Ctx, when non-nil, is polled every CheckEvery sweeps; a cancelled
	// context stops the iteration and returns the context error with the
	// current (normalised) iterate.
	Ctx context.Context
}

func (o *SteadyOptions) defaults(n int) SteadyOptions {
	out := SteadyOptions{Tol: 1e-10, MaxIter: 200000, CheckEvery: 10}
	if o != nil {
		if o.Tol > 0 {
			out.Tol = o.Tol
		}
		if o.MaxIter > 0 {
			out.MaxIter = o.MaxIter
		}
		if o.CheckEvery > 0 {
			out.CheckEvery = o.CheckEvery
		}
		out.Pi0 = o.Pi0
		out.Ctx = o.Ctx
	}
	return out
}

// cancelled reports the context error, if any.
func (o *SteadyOptions) cancelled() error {
	if o.Ctx == nil {
		return nil
	}
	return o.Ctx.Err()
}

// ErrNotConverged reports that the iteration budget ran out; the best
// iterate is still returned alongside it. It aliases haperr.ErrNotConverged
// so either spelling matches under errors.Is.
var ErrNotConverged = haperr.ErrNotConverged

// Stats reports how a steady-state iteration went: sweeps used, the final
// total-variation change between convergence checks, and whether the
// tolerance was met. It is returned even on error, so budget-bound callers
// can see how far the sweep got.
type Stats struct {
	Iterations int
	Residual   float64
	Converged  bool
}

// SteadyState computes the stationary distribution by uniformised power
// iteration: π ← πP with P = I + Q/Λ, which preserves non-negativity and
// total mass at every step. It is the robust default for the large HAP
// chains. It returns the distribution and the iteration diagnostics; the
// iterate is returned (normalised) even when the budget runs out or the
// context is cancelled.
func (c *Chain) SteadyState(opts *SteadyOptions) ([]float64, Stats, error) {
	o := opts.defaults(c.N())
	n := c.N()
	lam := c.MaxOutRate() * 1.02 // strictly above the max rate keeps P aperiodic
	if lam == 0 {
		// No transitions at all: any distribution is stationary; use uniform.
		pi := make([]float64, n)
		for i := range pi {
			pi[i] = 1 / float64(n)
		}
		return pi, Stats{Converged: true}, nil
	}
	pi := make([]float64, n)
	if o.Pi0 != nil && len(o.Pi0) == n {
		copy(pi, o.Pi0)
		normalise(pi)
	} else {
		for i := range pi {
			pi[i] = 1 / float64(n)
		}
	}
	next := make([]float64, n)
	prevCheck := make([]float64, n)
	copy(prevCheck, pi)
	residual := math.Inf(1)
	marked := 0
	for it := 1; it <= o.MaxIter; it++ {
		// next = pi * (I + Q/lam)
		for i := range next {
			next[i] = pi[i] * (1 - c.outRate[i]/lam)
		}
		for i, row := range c.rows {
			pin := pi[i]
			if pin == 0 {
				continue
			}
			for _, tr := range row {
				next[tr.To] += pin * tr.Rate / lam
			}
		}
		pi, next = next, pi
		if it%o.CheckEvery == 0 {
			normalise(pi)
			residual = maxRelDiff(pi, prevCheck)
			obsSweeps.Add(int64(it - marked))
			marked = it
			obsSweepResidual.Set(residual)
			if residual < o.Tol {
				return pi, Stats{Iterations: it, Residual: residual, Converged: true}, nil
			}
			copy(prevCheck, pi)
		}
		// Poll every sweep: ctx.Err is an atomic load, invisible next to a
		// sweep over the whole chain, and large chains make even a few
		// sweeps between polls feel unresponsive.
		if err := o.cancelled(); err != nil {
			normalise(pi)
			obsSweeps.Add(int64(it - marked))
			return pi, Stats{Iterations: it, Residual: residual}, fmt.Errorf("markov: steady state: %w", err)
		}
	}
	normalise(pi)
	obsSweeps.Add(int64(o.MaxIter - marked))
	return pi, Stats{Iterations: o.MaxIter, Residual: residual}, fmt.Errorf("markov: steady state: %w", ErrNotConverged)
}

// GaussSeidel computes the stationary distribution by sweeping the global
// balance equations in place:
//
//	π(i) = Σ_{j≠i} π(j) q(j,i) / outRate(i)
//
// with normalisation after every sweep — the scheme the paper's Solution 0
// describes ("recompute probabilities for the states with x+y+...+z = k,
// starting from k = 0"). The visit order is the state index order, so build
// chains with a k-shell-ordered lattice if that sweep order is wanted.
// Requires every state to have positive out rate (irreducible chains do).
// The iterate is returned even when the budget runs out or the context is
// cancelled; Stats says how far it got.
func (c *Chain) GaussSeidel(opts *SteadyOptions) ([]float64, Stats, error) {
	o := opts.defaults(c.N())
	n := c.N()
	if err := o.cancelled(); err != nil {
		return nil, Stats{}, fmt.Errorf("markov: gauss-seidel: %w", err)
	}
	// Build the reverse adjacency once: in(i) lists (j, rate j→i).
	in := make([][]Transition, n)
	for j, row := range c.rows {
		for _, tr := range row {
			in[tr.To] = append(in[tr.To], Transition{To: j, Rate: tr.Rate})
		}
	}
	pi := make([]float64, n)
	if o.Pi0 != nil && len(o.Pi0) == n {
		copy(pi, o.Pi0)
		normalise(pi)
	} else {
		for i := range pi {
			pi[i] = 1 / float64(n)
		}
	}
	prev := make([]float64, n)
	residual := math.Inf(1)
	for it := 1; it <= o.MaxIter; it++ {
		copy(prev, pi)
		for i := 0; i < n; i++ {
			if c.outRate[i] == 0 {
				continue // absorbing; mass accumulates via normalisation
			}
			var inflow float64
			for _, tr := range in[i] {
				inflow += pi[tr.To] * tr.Rate
			}
			pi[i] = inflow / c.outRate[i]
		}
		normalise(pi)
		residual = maxRelDiff(pi, prev)
		obsSweeps.Inc()
		obsSweepResidual.Set(residual)
		if residual < o.Tol {
			return pi, Stats{Iterations: it, Residual: residual, Converged: true}, nil
		}
		// Poll every sweep — a sweep over a large chain dwarfs the check.
		if err := o.cancelled(); err != nil {
			return pi, Stats{Iterations: it, Residual: residual}, fmt.Errorf("markov: gauss-seidel: %w", err)
		}
	}
	return pi, Stats{Iterations: o.MaxIter, Residual: residual}, fmt.Errorf("markov: gauss-seidel: %w", ErrNotConverged)
}

func normalise(pi []float64) {
	var s float64
	for _, p := range pi {
		s += p
	}
	if s <= 0 {
		return
	}
	for i := range pi {
		pi[i] /= s
	}
}

// maxRelDiff returns the total-variation distance Σ|a-b|/2.
func maxRelDiff(a, b []float64) float64 {
	var m float64
	for i := range a {
		m += math.Abs(a[i] - b[i])
	}
	return m / 2
}

// ExpectedValue returns Σ πᵢ f(i).
func ExpectedValue(pi []float64, f func(i int) float64) float64 {
	var s float64
	for i, p := range pi {
		if p != 0 {
			s += p * f(i)
		}
	}
	return s
}
