package admission

import (
	"errors"
	"math"
	"testing"

	"hap/internal/core"
	"hap/internal/gm1"
	"hap/internal/solver"
)

func TestMaxWorkloadMeetsTarget(t *testing.T) {
	m := core.PaperParams(20)
	target := 0.12
	f, delay, err := MaxWorkload(m, target, 4, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	if delay > target {
		t.Errorf("returned delay %v exceeds target %v", delay, target)
	}
	// The boundary must be tight: a slightly higher load misses the target.
	over, err := solver.Solution2(m.Scale(core.LevelUser, f*1.05), nil)
	if err == nil && over.Delay <= target {
		t.Errorf("f=%v is not maximal (f·1.05 → %v)", f, over.Delay)
	}
	// Base model has delay ≈ 0.094 < 0.12, so f must exceed 1.
	if f <= 1 {
		t.Errorf("f = %v, want > 1", f)
	}
}

func TestMaxWorkloadInfeasible(t *testing.T) {
	m := core.PaperParams(20)
	// Below the bare service time 1/20, no load level works.
	if _, _, err := MaxWorkload(m, 0.01, 4, 1e-4); !errors.Is(err, ErrInfeasible) {
		t.Errorf("expected ErrInfeasible, got %v", err)
	}
	if _, _, err := MaxWorkload(m, -1, 4, 0); err == nil {
		t.Error("negative target must error")
	}
}

func TestRequiredBandwidth(t *testing.T) {
	m := core.PaperParams(20)
	target := 0.1
	mu, err := RequiredBandwidth(m, target, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	// Check the returned bandwidth indeed meets the target, tightly.
	scaled := m.Clone()
	for i := range scaled.Apps {
		for j := range scaled.Apps[i].Messages {
			scaled.Apps[i].Messages[j].Mu = mu
		}
	}
	res, err := solver.Solution2(scaled, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delay > target*(1+1e-3) {
		t.Errorf("delay %v at returned bandwidth exceeds target %v", res.Delay, target)
	}
	// HAP needs more than the M/M/1 bandwidth λ + 1/T.
	mm1 := m.MeanRate() + 1/target
	if mu <= mm1 {
		t.Errorf("HAP bandwidth %v should exceed the Poisson requirement %v", mu, mm1)
	}
}

func TestBoundsForDelay(t *testing.T) {
	m := core.PaperParams(20)
	s2, err := solver.Solution2(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	// A target below the unbounded delay forces finite caps.
	target := s2.Delay * 0.97
	users, apps, err := BoundsForDelay(m, target, 0)
	if err != nil {
		t.Fatal(err)
	}
	if users <= 0 || users >= 400 {
		t.Fatalf("caps %d/%d not finite and positive", users, apps)
	}
	res, err := solver.Solution2Bounded(m, users, apps, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delay > target {
		t.Errorf("bounded delay %v exceeds target %v", res.Delay, target)
	}
	// A generous target needs no caps.
	u2, _, err := BoundsForDelay(m, s2.Delay*2, 0)
	if err != nil || u2 != 400 {
		t.Errorf("generous target should be uncapped: %d, %v", u2, err)
	}
}

func TestRegionAndTable(t *testing.T) {
	classes := []CallClass{
		{Name: "voice", MsgRate: 0.5},
		{Name: "video", MsgRate: 2.0},
	}
	r, err := NewRegion(classes, 20, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	// λmax = 20 − 10 = 10 → 20 voice alone, 5 video alone.
	if r.MaxCalls[0] != 20 || r.MaxCalls[1] != 5 {
		t.Fatalf("extreme points = %v", r.MaxCalls)
	}
	if !r.Admissible([]int{10, 2}) { // λ = 9 < 10
		t.Error("(10,2) should be admissible")
	}
	if r.Admissible([]int{10, 3}) { // λ = 11 > 10
		t.Error("(10,3) should be rejected")
	}
	if r.Admissible([]int{-1, 0}) {
		t.Error("negative counts must be rejected")
	}
	// Linear approximation coincides with the exact M/M/1 boundary.
	for n0 := 0; n0 <= 22; n0++ {
		for n1 := 0; n1 <= 6; n1++ {
			if r.Admissible([]int{n0, n1}) != r.AdmissibleLinear([]int{n0, n1}) {
				t.Errorf("linear mismatch at (%d,%d)", n0, n1)
			}
		}
	}
	tab, err := r.BuildTable()
	if err != nil {
		t.Fatal(err)
	}
	if !tab.Lookup(10, 2) || tab.Lookup(10, 3) || tab.Lookup(21, 0) || tab.Lookup(-1, 0) {
		t.Error("table lookups disagree with region")
	}
	if tab.String() == "" {
		t.Error("empty table rendering")
	}
	// Effective bandwidths: rᵢ/λmax.
	eb := r.EffectiveBandwidth()
	if math.Abs(eb[0]-0.05) > 1e-12 || math.Abs(eb[1]-0.2) > 1e-12 {
		t.Errorf("effective bandwidths = %v", eb)
	}
}

func TestRegionValidation(t *testing.T) {
	if _, err := NewRegion(nil, 20, 0.1); err == nil {
		t.Error("empty classes must fail")
	}
	if _, err := NewRegion([]CallClass{{Name: "x", MsgRate: 1}}, 20, 0.01); !errors.Is(err, ErrInfeasible) {
		t.Error("target below service time must be infeasible")
	}
	if _, err := NewRegion([]CallClass{{Name: "x", MsgRate: 0}}, 20, 0.1); err == nil {
		t.Error("zero-rate class must fail")
	}
	r, _ := NewRegion([]CallClass{{Name: "x", MsgRate: 1}}, 20, 0.1)
	if _, err := r.BuildTable(); err == nil {
		t.Error("one-class table must fail")
	}
}

func TestHAPHeadroomBelowOne(t *testing.T) {
	// The HAP correction must admit less than the Poisson region: factor
	// strictly inside (0, 1) for a tight target.
	m := core.PaperParams(20)
	mu := 20.0
	target := 0.105 // a bit above Poisson-feasible at λmax
	laplaceAt := func(scale float64) func(float64) float64 {
		return m.Scale(core.LevelUser, scale).Interarrival().Laplace
	}
	rateAt := func(scale float64) float64 { return scale * m.MeanRate() }
	factor, err := HAPHeadroom(laplaceAt, rateAt, mu, target)
	if err != nil {
		t.Fatal(err)
	}
	if factor <= 0 || factor >= 1 {
		t.Errorf("headroom factor = %v, want in (0,1)", factor)
	}
	// Infeasible target.
	if _, err := HAPHeadroom(laplaceAt, rateAt, mu, 0.01); !errors.Is(err, ErrInfeasible) {
		t.Error("expected ErrInfeasible")
	}
}

func TestMaxWorkloadOptWarmMatchesCold(t *testing.T) {
	// Warm-σ chaining is a pure speed knob: the multiplier and delay must
	// match the cold search to within the bisection tolerance.
	m := core.PaperParams(20)
	target := 0.12
	fCold, dCold, err := MaxWorkload(m, target, 4, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	fWarm, dWarm, err := MaxWorkloadOpt(m, target, 4, 1e-4, &solver.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fWarm-fCold) > 1e-9 || math.Abs(dWarm-dCold) > 1e-9 {
		t.Errorf("warm search diverged: f=%v vs %v, delay=%v vs %v", fWarm, fCold, dWarm, dCold)
	}
	// The caller's options must not be mutated by the internal warm chain.
	var sopt solver.Options
	if _, _, err := MaxWorkloadOpt(m, target, 4, 1e-4, &sopt); err != nil {
		t.Fatal(err)
	}
	if sopt.WarmSigma != 0 {
		t.Errorf("caller options mutated: WarmSigma = %v", sopt.WarmSigma)
	}
}

func TestMaxScaleOnTransform(t *testing.T) {
	// Poisson transform: λ/(λ+s). G/M/1 collapses to M/M/1 with
	// T = 1/(μ−λ), so the scale meeting target T* solves f·λ = μ − 1/T*.
	const lam, mu = 5.0, 20.0
	laplaceAt := func(f float64) gm1.Laplace {
		l := f * lam
		return func(s float64) float64 { return l / (l + s) }
	}
	rateAt := func(f float64) float64 { return f * lam }
	target := 0.2 // admits up to λf = 15 → f = 3
	f, delay, err := MaxScale(laplaceAt, rateAt, mu, target, 8, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f-3) > 1e-3 {
		t.Errorf("scale = %v, want 3 (M/M/1 closed form)", f)
	}
	if delay > target {
		t.Errorf("delay at returned scale %v exceeds target %v", delay, target)
	}
	// A target below the empty-system service time is infeasible.
	if _, _, err := MaxScale(laplaceAt, rateAt, mu, 0.01, 8, 0); !errors.Is(err, ErrInfeasible) {
		t.Errorf("expected ErrInfeasible, got %v", err)
	}
	// Headroom saturates at fMax when even fMax meets the target.
	f, _, err = MaxScale(laplaceAt, rateAt, mu, 10, 2, 0)
	if err != nil || f != 2 {
		t.Errorf("saturated search = %v, %v; want fMax=2, nil", f, err)
	}
}

// TestMaxScaleAllMidsFail pins the unstable-band bugfix: when the
// tiny-load probe is feasible but every interior bisection evaluation
// fails (solver unstable across the whole band), the search must return
// the just-proven feasible point, not ErrInfeasible with delay 0.
func TestMaxScaleAllMidsFail(t *testing.T) {
	const mu = 20.0
	cases := []struct {
		name string
		// feasibleBelow is the scale above which every evaluation fails
		// (rate driven to ρ ≥ 1).
		feasibleBelow float64
	}{
		{"all interior evals unstable", 5e-6},
		{"band collapses just above the probe", 1.1e-6},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// Below the threshold: a gentle Poisson stream. Above: a rate
			// at ρ ≥ 1, which eval rejects before solving.
			rateAt := func(f float64) float64 {
				if f <= tc.feasibleBelow {
					return 5 * f / tc.feasibleBelow // well under mu
				}
				return 2 * mu
			}
			laplaceAt := func(f float64) gm1.Laplace {
				l := rateAt(f)
				return func(s float64) float64 { return l / (l + s) }
			}
			f, delay, err := MaxScale(laplaceAt, rateAt, mu, 1.0, 4, 1e-4)
			if err != nil {
				t.Fatalf("feasible probe point lost: %v", err)
			}
			if f != 1e-6 {
				t.Errorf("scale = %v, want the probe point 1e-6", f)
			}
			if !(delay > 0) || delay > 1.0 {
				t.Errorf("delay = %v, want the probe's feasible delay in (0, target]", delay)
			}
		})
	}
	// A genuinely infeasible probe still reports ErrInfeasible.
	badRate := func(f float64) float64 { return 2 * mu }
	badLap := func(f float64) gm1.Laplace {
		return func(s float64) float64 { return 1 }
	}
	if _, _, err := MaxScale(badLap, badRate, mu, 1.0, 4, 0); !errors.Is(err, ErrInfeasible) {
		t.Errorf("expected ErrInfeasible, got %v", err)
	}
}

// TestMaxWorkloadOptAllMidsFail is the model-level twin: a model whose
// tiny-load scaling is solvable but whose interior band is unstable must
// return the probe point.
func TestMaxWorkloadOptAllMidsFail(t *testing.T) {
	m := core.PaperParams(20)
	// Find a target the near-zero-load system meets but f=tol-scale loads
	// do not: the bare service time plus a hair.
	probe, err := solver.Solution2(m.Scale(core.LevelUser, 1e-6), nil)
	if err != nil {
		t.Fatal(err)
	}
	target := probe.Delay * 1.0001
	f, delay, err := MaxWorkloadOpt(m, target, 4, 1e-4, nil)
	if err != nil {
		t.Fatalf("feasible probe point lost: %v", err)
	}
	if f < 1e-6 {
		t.Errorf("f = %v, want >= the probe point 1e-6", f)
	}
	if delay > target {
		t.Errorf("delay %v exceeds target %v", delay, target)
	}
}
