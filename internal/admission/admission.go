// Package admission turns the paper's Section 6–7 discussion into usable
// control machinery: HAP "can serve as the computational base to estimate
// the admissible workload for a given bandwidth (admission control), or
// the required bandwidth for a given workload (bandwidth allocation)".
//
// All searches run on Solution 2 (closed form) because that is the paper's
// fast-enough-for-control computation; its accuracy conditions (utilisation
// under ~30%) are the regime the paper recommends operating in anyway.
package admission

import (
	"errors"
	"fmt"

	"hap/internal/core"
	"hap/internal/gm1"
	"hap/internal/solver"
)

// ErrInfeasible reports that no setting meets the target.
var ErrInfeasible = errors.New("admission: target delay infeasible")

// MaxWorkload finds the largest user arrival-rate multiplier f such that
// the scaled model's Solution-2 mean delay stays within targetDelay, by
// bisection on f ∈ (0, fMax]. It returns the multiplier and the delay at
// that setting. The returned model rate is f·λ.
func MaxWorkload(m *core.Model, targetDelay, fMax float64, tol float64) (f float64, delay float64, err error) {
	return MaxWorkloadOpt(m, targetDelay, fMax, tol, nil)
}

// MaxWorkloadOpt is MaxWorkload with solver options. The bisection
// carries the σ of each successful Solution-2 evaluation into the next
// one as a warm start (the workload multiplier moves σ smoothly), so the
// search does a fraction of the transform evaluations a cold sweep would.
// sopt may be nil; it is copied, never mutated.
func MaxWorkloadOpt(m *core.Model, targetDelay, fMax float64, tol float64, sopt *solver.Options) (f float64, delay float64, err error) {
	if targetDelay <= 0 {
		return 0, 0, fmt.Errorf("admission: target delay must be positive")
	}
	if fMax <= 0 {
		fMax = 4
	}
	if tol <= 0 {
		tol = 1e-4
	}
	var opts solver.Options
	if sopt != nil {
		opts = *sopt
	}
	eval := func(f float64) (float64, bool) {
		scaled := m.Scale(core.LevelUser, f)
		res, err := solver.Solution2(scaled, &opts)
		if err != nil {
			return 0, false // unstable or invalid → over target
		}
		opts.WarmSigma = res.Sigma
		return res.Delay, true
	}
	// The delay is increasing in f; make sure even a tiny load meets the
	// target. The probe point itself becomes the bisection's feasible
	// lower bound: if every interior evaluation fails (the solver can be
	// unstable across the whole band), the search must still return this
	// just-proven operating point, not ErrInfeasible.
	const probe = 1e-6
	lo, hi := 0.0, fMax
	d0, ok := eval(probe)
	if !ok || d0 > targetDelay {
		return 0, 0, ErrInfeasible
	}
	lo, delay = probe, d0
	if d, ok := eval(fMax); ok && d <= targetDelay {
		return fMax, d, nil
	}
	for hi-lo > tol {
		mid := (lo + hi) / 2
		if d, ok := eval(mid); ok && d <= targetDelay {
			lo = mid
			delay = d
		} else {
			hi = mid
		}
	}
	return lo, delay, nil
}

// MaxScale is the transform-level twin of MaxWorkload for fitted arrival
// processes: given the interarrival Laplace transform and mean rate of
// the process at every arrival-scale multiplier f (e.g. an MMPP2 fitted
// to a live stream with both state rates scaled by f), it bisects for
// the largest f ∈ (0, fMax] whose G/M/1 delay at service rate mu stays
// within targetDelay. Headroom f ≥ 1 means the observed traffic itself
// meets the target — the control plane's admit condition. Successive
// evaluations chain the σ warm start, so a full search costs little more
// than one cold solve.
func MaxScale(laplaceAt func(scale float64) gm1.Laplace, rateAt func(scale float64) float64,
	mu, targetDelay, fMax, tol float64) (f float64, delay float64, err error) {
	if targetDelay <= 0 {
		return 0, 0, fmt.Errorf("admission: target delay must be positive")
	}
	if !(mu > 0) {
		return 0, 0, fmt.Errorf("admission: service rate must be positive")
	}
	if fMax <= 0 {
		fMax = 4
	}
	if tol <= 0 {
		tol = 1e-4
	}
	var opts gm1.Options
	eval := func(f float64) (float64, bool) {
		lam := rateAt(f)
		if !(lam > 0) || lam >= mu {
			return 0, false
		}
		res, err := gm1.Solve(laplaceAt(f), lam, mu, &opts)
		if err != nil {
			return 0, false
		}
		opts.WarmSigma = res.Sigma
		return res.Delay, true
	}
	// As in MaxWorkloadOpt, the successful tiny-load probe seeds the
	// feasible bound so an all-failing interior band still returns the
	// proven point instead of ErrInfeasible.
	const probe = 1e-6
	lo, hi := 0.0, fMax
	d0, ok := eval(probe)
	if !ok || d0 > targetDelay {
		return 0, 0, ErrInfeasible
	}
	lo, delay = probe, d0
	if d, ok := eval(fMax); ok && d <= targetDelay {
		return fMax, d, nil
	}
	for hi-lo > tol {
		mid := (lo + hi) / 2
		if d, ok := eval(mid); ok && d <= targetDelay {
			lo = mid
			delay = d
		} else {
			hi = mid
		}
	}
	return lo, delay, nil
}

// RequiredBandwidth finds the smallest message service rate μ” whose
// Solution-2 delay meets targetDelay, by bisection — the paper's
// bandwidth-allocation direction. The model's own μ” is ignored.
func RequiredBandwidth(m *core.Model, targetDelay float64, tol float64) (mu float64, err error) {
	if targetDelay <= 0 {
		return 0, fmt.Errorf("admission: target delay must be positive")
	}
	if tol <= 0 {
		tol = 1e-6
	}
	lam := m.MeanRate()
	lo := lam * (1 + 1e-9) // stability floor
	hi := lam + 4/targetDelay + 10*lam
	withMu := func(mu float64) (float64, bool) {
		scaled := m.Clone()
		for i := range scaled.Apps {
			for j := range scaled.Apps[i].Messages {
				scaled.Apps[i].Messages[j].Mu = mu
			}
		}
		res, err := solver.Solution2(scaled, nil)
		if err != nil {
			return 0, false
		}
		return res.Delay, true
	}
	if d, ok := withMu(hi); !ok || d > targetDelay {
		return 0, ErrInfeasible
	}
	for hi-lo > tol*hi {
		mid := (lo + hi) / 2
		if d, ok := withMu(mid); ok && d <= targetDelay {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, nil
}

// BoundsForDelay searches the smallest symmetric user/application caps
// (scanning the user cap, with the app cap tied to capUsers·appsPerUser)
// whose bounded Solution 2 meets the target — Figure 20's admission knob.
// appsPerUser defaults to the model's mean per-user application load.
func BoundsForDelay(m *core.Model, targetDelay float64, appsPerUser float64) (maxUsers, maxApps int, err error) {
	if appsPerUser <= 0 {
		appsPerUser = m.MeanApps() / m.MeanUsers()
	}
	for cap := 1; cap <= 400; cap++ {
		apps := int(float64(cap)*appsPerUser + 0.5)
		if apps < 1 {
			apps = 1
		}
		res, err := solver.Solution2Bounded(m, cap, apps, nil)
		if err != nil {
			continue
		}
		if res.Delay > targetDelay {
			if cap == 1 {
				return 0, 0, ErrInfeasible
			}
			prevApps := int(float64(cap-1)*appsPerUser + 0.5)
			if prevApps < 1 {
				prevApps = 1
			}
			return cap - 1, prevApps, nil
		}
	}
	// Even unbounded meets the target.
	return 400, int(400*appsPerUser + 0.5), nil
}
