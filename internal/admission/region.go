package admission

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"hap/internal/gm1"
)

// This file implements the Section 7 direction: "If we store this
// admissible call region in an admission decision table of each ATM
// network interface, the admission decision for an incoming VC or VP
// request can be made by a table lookup", with the linear-approximation
// technique the paper cites from Hui.

// CallClass describes one connection-oriented application type competing
// for the link: each admitted call contributes an independent message
// stream of MsgRate with the class's effective bandwidth weight.
type CallClass struct {
	Name    string
	MsgRate float64 // messages per second per admitted call
}

// Region is the admissible call region for a link of service rate Mu and a
// mean-delay target: the set of admission vectors n with delay(n) <= target.
type Region struct {
	Classes []CallClass
	Mu      float64
	Target  float64
	// MaxCalls[i] is the per-class maximum with no other traffic.
	MaxCalls []int
}

// NewRegion computes the per-class extreme points of the admissible region
// under the M/M/1 delay model (admitted calls superpose to a Poisson
// stream at the message level when each call's stream is Poisson, which is
// the CO-service view of Section 7).
func NewRegion(classes []CallClass, mu, targetDelay float64) (*Region, error) {
	if len(classes) == 0 {
		return nil, fmt.Errorf("admission: no classes")
	}
	if mu <= 0 || targetDelay <= 0 {
		return nil, fmt.Errorf("admission: mu and target must be positive")
	}
	if targetDelay < 1/mu {
		return nil, ErrInfeasible // even an empty link misses the target
	}
	r := &Region{Classes: classes, Mu: mu, Target: targetDelay}
	// Delay 1/(μ − λ) <= T  ⇔  λ <= μ − 1/T.
	lambdaMax := mu - 1/targetDelay
	for _, c := range classes {
		if c.MsgRate <= 0 {
			return nil, fmt.Errorf("admission: class %q rate must be positive", c.Name)
		}
		r.MaxCalls = append(r.MaxCalls, int(lambdaMax/c.MsgRate))
	}
	return r, nil
}

// LambdaMax returns the admissible aggregate message rate μ − 1/T.
func (r *Region) LambdaMax() float64 { return r.Mu - 1/r.Target }

// Admissible reports whether the call vector n (one count per class) meets
// the delay target exactly (not via the linear approximation).
func (r *Region) Admissible(n []int) bool {
	if len(n) != len(r.Classes) {
		panic("admission: call vector arity mismatch")
	}
	var lam float64
	for i, k := range n {
		if k < 0 {
			return false
		}
		lam += float64(k) * r.Classes[i].MsgRate
	}
	if lam >= r.Mu {
		return false
	}
	res, err := gm1.MM1(lam, r.Mu)
	if err != nil {
		return false
	}
	return res.Delay <= r.Target
}

// AdmissibleLinear is the paper's table-friendly linear approximation:
// Σ nᵢ·rᵢ <= λmax. For the M/M/1 delay constraint the boundary is exactly
// linear, so this agrees with Admissible; it is retained separately
// because the lookup-table deployment stores only the weights.
func (r *Region) AdmissibleLinear(n []int) bool {
	var lam float64
	for i, k := range n {
		if k < 0 {
			return false
		}
		lam += float64(k) * r.Classes[i].MsgRate
	}
	return lam <= r.LambdaMax()
}

// Table is a precomputed admission decision table over two classes, the
// deployable artefact Section 7 sketches for ATM interfaces.
type Table struct {
	Region *Region
	// limit[k] is the largest admissible count of class 1 given k calls of
	// class 0.
	limit []int
}

// BuildTable precomputes the two-class decision table.
func (r *Region) BuildTable() (*Table, error) {
	if len(r.Classes) != 2 {
		return nil, fmt.Errorf("admission: decision table wants exactly 2 classes, got %d", len(r.Classes))
	}
	t := &Table{Region: r}
	for k := 0; ; k++ {
		if !r.Admissible([]int{k, 0}) {
			break
		}
		// Binary search the class-1 boundary at this class-0 count.
		hi := sort.Search(r.MaxCalls[1]+2, func(j int) bool {
			return !r.Admissible([]int{k, j})
		})
		t.limit = append(t.limit, hi-1)
	}
	return t, nil
}

// Lookup decides an admission request with n0 existing + requested calls
// of class 0 and n1 of class 1 in O(1).
func (t *Table) Lookup(n0, n1 int) bool {
	if n0 < 0 || n1 < 0 {
		return false
	}
	if n0 >= len(t.limit) {
		return false
	}
	return n1 <= t.limit[n0]
}

// String renders the staircase boundary.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "admissible region (%s x %s), λmax=%.4g:\n",
		t.Region.Classes[0].Name, t.Region.Classes[1].Name, t.Region.LambdaMax())
	for k, lim := range t.limit {
		fmt.Fprintf(&b, "  n0=%3d → n1 ≤ %d\n", k, lim)
	}
	return b.String()
}

// EffectiveBandwidth returns the per-call bandwidth share each class
// consumes at the boundary, rᵢ/λmax — the linear weights an interface
// would store.
func (r *Region) EffectiveBandwidth() []float64 {
	out := make([]float64, len(r.Classes))
	for i, c := range r.Classes {
		out[i] = c.MsgRate / r.LambdaMax()
	}
	return out
}

// HAPHeadroom compares the Poisson-based λmax with a HAP-corrected one: at
// the same target delay a HAP stream is admitted only up to the rate where
// the Solution-2 G/M/1 delay meets the target. The returned factor (<= 1)
// is the admission-capacity penalty for hierarchical burstiness — the
// quantitative form of Section 6's warning against engineering with
// Poisson models.
func HAPHeadroom(laplaceAt func(scale float64) func(float64) float64, rateAt func(scale float64) float64, mu, target float64) (float64, error) {
	lamMaxPoisson := mu - 1/target
	if lamMaxPoisson <= 0 {
		return 0, ErrInfeasible
	}
	ok := func(scale float64) bool {
		lam := rateAt(scale)
		if lam >= mu {
			return false
		}
		res, err := gm1.Solve(laplaceAt(scale), lam, mu, nil)
		return err == nil && res.Delay <= target
	}
	if !ok(1e-6) {
		return 0, ErrInfeasible
	}
	// Grow the bracket up to the stability limit, then bisect the scale
	// where the HAP delay crosses the target.
	lo, hi := 1e-6, 1.0
	for ok(hi) && rateAt(hi*2) < mu {
		lo = hi
		hi *= 2
	}
	for i := 0; i < 60 && hi-lo > 1e-7*hi; i++ {
		mid := (lo + hi) / 2
		if ok(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	lamHAP := rateAt(lo)
	return math.Min(1, lamHAP/lamMaxPoisson), nil
}
