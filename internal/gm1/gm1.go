// Package gm1 solves the G/M/1 queue that Solutions 1 and 2 reduce HAP/M/1
// to: given the Laplace transform A*(s) of the interarrival time and the
// exponential service rate μ, the root σ of
//
//	σ = A*(μ − μσ),  0 < σ < 1
//
// determines everything: mean delay T = 1/(μ(1−σ)), waiting-time CDF
// W(y) = 1 − σe^{−μ(1−σ)y}, and mean queue length λ̄T by Little.
//
// Two σ solvers are provided: the paper's averaging iteration
// ("σ-Algorithm": replace σ with the average of A*(μ−μσ) and σ until they
// agree) and a safeguarded bisection on the fixed-point residual, used as
// the robust default and as the ablation baseline.
package gm1

import (
	"context"
	"errors"
	"fmt"
	"math"

	"hap/internal/haperr"
	"hap/internal/obs"
	"hap/internal/quad"
)

// Runtime metrics: every σ solve records its iteration spend and outcome,
// so a sweep's fixed-point cost is visible live (Solutions 1 and 2 funnel
// through Solve).
var (
	obsSigmaIterations = obs.NewCounter("hap_gm1_sigma_iterations_total",
		"Transform evaluations spent by the sigma solvers (probes, bisection and fixed-point steps).")
	obsSolves = obs.NewCounterVec("hap_gm1_solves_total",
		"G/M/1 sigma solves by method and outcome.", "method", "outcome")
)

// recordSolve classifies one finished σ solve for the labelled counter.
func recordSolve(r Result, err error) {
	outcome := "converged"
	switch {
	case err == nil:
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		outcome = "cancelled"
	case errors.Is(err, ErrTrivialRoot):
		outcome = "trivial_root"
	case errors.Is(err, ErrUnstable):
		outcome = "unstable"
	case errors.Is(err, haperr.ErrNotConverged):
		outcome = "not_converged"
	case errors.Is(err, haperr.ErrBadParameter):
		outcome = "bad_parameter"
	default:
		outcome = "error"
	}
	obsSolves.With(r.Method.String(), outcome).Inc()
	obsSigmaIterations.Add(int64(r.Iterations))
}

// Laplace is the Laplace–Stieltjes transform A*(s) of an interarrival
// distribution, defined for s >= 0 with A*(0) = 1.
type Laplace func(s float64) float64

// Result summarises a solved G/M/1 queue.
type Result struct {
	Sigma      float64 // probability an arrival finds the server busy
	Delay      float64 // mean sojourn time T = 1/(μ(1−σ))
	Wait       float64 // mean waiting time σ/(μ(1−σ))
	QueueLen   float64 // mean number in system λ̄·T (Little)
	Rho        float64 // utilisation λ̄/μ
	Lambda     float64 // arrival rate used for Little's result
	Mu         float64 // service rate
	Method     Method  // σ solver that produced the result
	Iterations int     // σ-solver iterations (probe scan + bisection / fixed-point steps)
	Residual   float64 // final fixed-point residual |A*(μ−μσ)−σ|
	Converged  bool    // tolerance met within the budget
	// Bracket records the bisection bracket probe history as flattened
	// (probe, h(probe)) pairs; nil for the fixed-point method.
	Bracket []float64
}

// Diag returns the solve diagnostics in the shared form.
func (r Result) Diag() haperr.Diag {
	return haperr.Diag{
		Iterations: r.Iterations,
		Residual:   r.Residual,
		Converged:  r.Converged,
		Bracket:    r.Bracket,
	}
}

// WaitingCDF returns P(wait <= y) = 1 − σe^{−μ(1−σ)y}.
func (r Result) WaitingCDF(y float64) float64 {
	if y < 0 {
		return 0
	}
	return 1 - r.Sigma*math.Exp(-r.Mu*(1-r.Sigma)*y)
}

// WaitingQuantile returns the p-quantile of the waiting time (0 when the
// p-mass is covered by the zero-wait atom 1−σ).
func (r Result) WaitingQuantile(p float64) float64 {
	if p <= 1-r.Sigma {
		return 0
	}
	if p >= 1 {
		return math.Inf(1)
	}
	return -math.Log((1-p)/r.Sigma) / (r.Mu * (1 - r.Sigma))
}

// ErrUnstable reports λ̄ >= μ. It aliases haperr.ErrUnstable so either
// spelling matches under errors.Is.
var ErrUnstable = haperr.ErrUnstable

// ErrTrivialRoot reports that the paper's averaging iteration collapsed
// onto the trivial fixed point σ = 1 (every valid transform satisfies
// A*(0) = 1) even though the queue is stable. The result would be
// meaningless, so the error is returned instead; MethodBisect excludes the
// trivial root by construction.
var ErrTrivialRoot = haperr.ErrTrivialRoot

// Options tunes the σ solvers.
type Options struct {
	Tol     float64 // |A*(μ−μσ) − σ| tolerance (default 1e-10)
	MaxIter int     // iteration budget (default 10000)
	Method  Method  // solver choice (default MethodBisect)
	// WarmSigma, when inside (0, 1), seeds MethodBisect with the σ of a
	// previous solve of a nearby queue (a re-fitted model, a slightly
	// scaled load): the bracket is grown geometrically around it instead
	// of scanned down from 1, and the bisection runs over the resulting
	// narrow interval. A warm value far from the true root only costs the
	// expansion probes — correctness never depends on it. Ignored by
	// MethodPaper.
	WarmSigma float64
	// Ctx, when non-nil, is polled during the fixed-point iteration; a
	// cancelled context aborts the solve with the context error.
	Ctx context.Context
}

// Method selects a σ solver.
type Method int

// Available σ solvers.
const (
	// MethodBisect brackets the fixed point and bisects g(σ)−σ; it is
	// guaranteed to converge for any valid Laplace transform.
	MethodBisect Method = iota
	// MethodPaper is the averaging iteration from Section 3.2.2:
	// σ ← (A*(μ−μσ) + σ)/2 starting from 0.5.
	MethodPaper
)

func (m Method) String() string {
	switch m {
	case MethodBisect:
		return "bisect"
	case MethodPaper:
		return "paper-averaging"
	}
	return "unknown"
}

// Solve computes the G/M/1 queue for interarrival transform a, arrival
// rate lambda (for Little's result) and service rate mu.
func Solve(a Laplace, lambda, mu float64, opts *Options) (Result, error) {
	r, err := solve(a, lambda, mu, opts)
	recordSolve(r, err)
	return r, err
}

func solve(a Laplace, lambda, mu float64, opts *Options) (Result, error) {
	// !(x > 0) instead of x <= 0 so NaN inputs are rejected too.
	if !(lambda > 0) || !(mu > 0) || math.IsInf(lambda, 1) || math.IsInf(mu, 1) {
		return Result{}, haperr.Badf("gm1: rates must be positive and finite (λ=%v, μ=%v)", lambda, mu)
	}
	rho := lambda / mu
	if rho >= 1 {
		return Result{Rho: rho, Lambda: lambda, Mu: mu}, fmt.Errorf("gm1: λ=%v >= μ=%v: %w", lambda, mu, ErrUnstable)
	}
	o := Options{Tol: 1e-10, MaxIter: 10000}
	if opts != nil {
		if opts.Tol > 0 {
			o.Tol = opts.Tol
		}
		if opts.MaxIter > 0 {
			o.MaxIter = opts.MaxIter
		}
		o.Method = opts.Method
		o.WarmSigma = opts.WarmSigma
		o.Ctx = opts.Ctx
	}
	if o.Ctx != nil {
		if err := o.Ctx.Err(); err != nil {
			return Result{}, fmt.Errorf("gm1: %w", err)
		}
	}
	g := func(sig float64) float64 { return a(mu - mu*sig) }
	res := Result{Rho: rho, Lambda: lambda, Mu: mu, Method: o.Method}
	var sigma float64
	var err error
	switch o.Method {
	case MethodPaper:
		sigma, res.Iterations, err = quad.FixedPointCtx(o.Ctx, g, 0.5, 0.5, o.Tol, o.MaxIter)
		if err != nil {
			res.Sigma = sigma
			res.Residual = math.Abs(g(sigma) - sigma)
			if o.Ctx != nil && o.Ctx.Err() != nil {
				return res, fmt.Errorf("gm1: paper σ-algorithm: %w", o.Ctx.Err())
			}
			return res, fmt.Errorf("gm1: paper σ-algorithm (after %d iters, residual %.3g): %w",
				res.Iterations, res.Residual, haperr.ErrNotConverged)
		}
		// The averaging iteration can converge onto the trivial root σ = 1
		// (A*(0) = 1 for every transform). Near-critical queues have a real
		// σ close to — but numerically distinguishable from — 1, so only a
		// σ within the solve tolerance of the trivial root is rejected.
		if sigma >= 1 || 1-sigma <= 2*o.Tol {
			res.Sigma = sigma
			return res, fmt.Errorf("gm1: paper σ-algorithm found σ=%v with ρ=%v (use MethodBisect): %w",
				sigma, rho, ErrTrivialRoot)
		}
	default:
		sigma, res.Iterations, res.Bracket, err = bisectSigma(g, o.Tol, o.MaxIter, o.WarmSigma)
		if err != nil {
			return res, err
		}
	}
	if sigma < 0 {
		// Impossible for a valid transform; treat as a caller bug, not data.
		return res, haperr.Badf("gm1: σ solver produced %v (transform is not a Laplace transform)", sigma)
	}
	res.Sigma = sigma
	res.Residual = math.Abs(g(sigma) - sigma)
	res.Converged = true
	res.Delay = 1 / (mu * (1 - sigma))
	res.Wait = sigma / (mu * (1 - sigma))
	res.QueueLen = lambda * res.Delay
	return res, nil
}

// bisectSigma finds the non-trivial root of h(σ) = A*(μ−μσ) − σ in (0,1).
// h(1) = 0 always (A*(0) = 1); stability guarantees a root below 1, with
// h(0) = A*(μ) > 0, so h goes positive→negative→0; we bisect on a bracket
// found by scanning down from 1, stopping at the first negative probe (any
// point with h < 0 lies between the root and 1, so one is enough).
// It returns the root, the total transform evaluations spent (probes plus
// bisection steps) and the probe history as flattened (probe, h) pairs.
//
// A warm σ in (0, 1) replaces the descending probe scan with a geometric
// bracket expansion around the previous root: the continuous re-solve loop
// (ctrl's refit cycle, admission's workload bisection) moves σ a little per
// call, so the sign change is usually found within a few probes and the
// bisection runs over an interval far narrower than (0, 1). If the
// expansion fails to bracket — the warm value was stale — the cold scan
// runs as before, so a bad hint costs probes, never the answer.
func bisectSigma(g func(float64) float64, tol float64, maxIter int, warm float64) (float64, int, []float64, error) {
	h := func(s float64) float64 { return g(s) - s }
	var hi float64 = -1
	lo := 0.0
	probes := 0
	bracket := make([]float64, 0, 8)
	if warm > 0 && warm < 1 {
		// h is positive below the root and negative above it, so one
		// evaluation at the warm point picks the march direction; geometric
		// steps then walk toward the root, keeping the trailing probe as
		// the other bracket end. Both ends stay within a factor of the
		// actual drift, so the bisection interval is ~3·|σ − warm| instead
		// of (0, 1).
		probes++
		hw := h(warm)
		bracket = append(bracket, warm, hw)
		switch {
		case hw == 0:
			return warm, probes, bracket, nil
		case hw > 0:
			lo = warm
			for delta := math.Max(4*tol, 1e-4); delta < 1; delta *= 4 {
				p := warm + delta
				if p >= 1 {
					break
				}
				probes++
				hp := h(p)
				bracket = append(bracket, p, hp)
				if hp < 0 {
					hi = p
					break
				}
				lo = p
			}
			if hi < 0 {
				lo = 0 // stale hint: the cold scan below may bracket anywhere
			}
		default:
			hi = warm
			for delta := math.Max(4*tol, 1e-4); delta < 1; delta *= 4 {
				p := warm - delta
				if p <= 0 {
					break // lo stays 0; h(0) = A*(μ) > 0 always
				}
				probes++
				hp := h(p)
				bracket = append(bracket, p, hp)
				if hp > 0 {
					lo = p
					break
				}
				hi = p
			}
		}
	}
	for _, probe := range []float64{0.999, 0.99, 0.9, 0.7, 0.5, 0.3, 0.1, 0.01} {
		if hi >= 0 {
			break
		}
		probes++
		hp := h(probe)
		bracket = append(bracket, probe, hp)
		if hp < 0 {
			hi = probe
		}
	}
	if hi < 0 {
		// No strictly negative point found yet: very bursty near-critical
		// traffic puts σ within 1e-4 of 1, so walk a geometric ladder of
		// probes toward 1 until h turns negative.
		for eps := 1e-4; eps >= 1e-13; eps /= 10 {
			probe := 1 - eps
			probes++
			hp := h(probe)
			bracket = append(bracket, probe, hp)
			if hp < 0 {
				hi = probe
				break
			}
		}
		if hi < 0 {
			// σ is numerically indistinguishable from the trivial root 1:
			// the queue is critical at floating-point precision.
			return 0, probes, bracket, fmt.Errorf("gm1: σ indistinguishable from 1 (h >= 0 down to 1-1e-13): %w", haperr.ErrUnstable)
		}
	}
	root, steps, err := quad.Bisect(h, lo, hi, tol)
	if err != nil {
		return 0, probes + steps, bracket, fmt.Errorf("gm1: bisect: %w", err)
	}
	return root, probes + steps, bracket, nil
}

// MM1 returns the closed-form M/M/1 result (the Poisson baseline). λ = 0
// is allowed — an empty link with delay 1/μ — so admission regions can
// query the zero-call vector.
func MM1(lambda, mu float64) (Result, error) {
	if !(lambda >= 0) || !(mu > 0) || math.IsInf(lambda, 1) || math.IsInf(mu, 1) {
		return Result{}, haperr.Badf("gm1: MM1 rates must be non-negative and finite (λ=%v, μ=%v)", lambda, mu)
	}
	if lambda >= mu {
		return Result{Rho: lambda / mu, Lambda: lambda, Mu: mu}, fmt.Errorf("gm1: λ=%v >= μ=%v: %w", lambda, mu, ErrUnstable)
	}
	rho := lambda / mu
	return Result{
		Sigma:     rho, // PASTA: arrivals see time averages
		Delay:     1 / (mu - lambda),
		Wait:      rho / (mu - lambda),
		QueueLen:  rho / (1 - rho),
		Rho:       rho,
		Lambda:    lambda,
		Mu:        mu,
		Converged: true,
	}, nil
}

// MD1Delay returns the mean sojourn time of the M/D/1 queue by
// Pollaczek–Khinchine with deterministic service (SCV 0), an extra
// baseline for the discussion sections. Unstable inputs (ρ >= 1) yield
// +Inf — the PK formula's pole would otherwise return a negative "delay" —
// and invalid rates yield NaN.
func MD1Delay(lambda, mu float64) float64 {
	return MG1Delay(lambda, mu, 0)
}

// MG1Delay returns the Pollaczek–Khinchine mean sojourn time for general
// service with the given squared coefficient of variation. ρ >= 1 yields
// +Inf; invalid rates or scv yield NaN.
func MG1Delay(lambda, mu, scv float64) float64 {
	if !(lambda > 0) || !(mu > 0) || !(scv >= 0) {
		return math.NaN()
	}
	rho := lambda / mu
	if rho >= 1 {
		return math.Inf(1)
	}
	return 1/mu + rho*(1+scv)/(2*mu*(1-rho))
}
