// Package gm1 solves the G/M/1 queue that Solutions 1 and 2 reduce HAP/M/1
// to: given the Laplace transform A*(s) of the interarrival time and the
// exponential service rate μ, the root σ of
//
//	σ = A*(μ − μσ),  0 < σ < 1
//
// determines everything: mean delay T = 1/(μ(1−σ)), waiting-time CDF
// W(y) = 1 − σe^{−μ(1−σ)y}, and mean queue length λ̄T by Little.
//
// Two σ solvers are provided: the paper's averaging iteration
// ("σ-Algorithm": replace σ with the average of A*(μ−μσ) and σ until they
// agree) and a safeguarded bisection on the fixed-point residual, used as
// the robust default and as the ablation baseline.
package gm1

import (
	"errors"
	"fmt"
	"math"

	"hap/internal/quad"
)

// Laplace is the Laplace–Stieltjes transform A*(s) of an interarrival
// distribution, defined for s >= 0 with A*(0) = 1.
type Laplace func(s float64) float64

// Result summarises a solved G/M/1 queue.
type Result struct {
	Sigma      float64 // probability an arrival finds the server busy
	Delay      float64 // mean sojourn time T = 1/(μ(1−σ))
	Wait       float64 // mean waiting time σ/(μ(1−σ))
	QueueLen   float64 // mean number in system λ̄·T (Little)
	Rho        float64 // utilisation λ̄/μ
	Lambda     float64 // arrival rate used for Little's result
	Mu         float64 // service rate
	Iterations int     // σ-solver iterations
}

// WaitingCDF returns P(wait <= y) = 1 − σe^{−μ(1−σ)y}.
func (r Result) WaitingCDF(y float64) float64 {
	if y < 0 {
		return 0
	}
	return 1 - r.Sigma*math.Exp(-r.Mu*(1-r.Sigma)*y)
}

// WaitingQuantile returns the p-quantile of the waiting time (0 when the
// p-mass is covered by the zero-wait atom 1−σ).
func (r Result) WaitingQuantile(p float64) float64 {
	if p <= 1-r.Sigma {
		return 0
	}
	if p >= 1 {
		return math.Inf(1)
	}
	return -math.Log((1-p)/r.Sigma) / (r.Mu * (1 - r.Sigma))
}

// ErrUnstable reports λ̄ >= μ.
var ErrUnstable = errors.New("gm1: queue is unstable (rho >= 1)")

// Options tunes the σ solvers.
type Options struct {
	Tol     float64 // |A*(μ−μσ) − σ| tolerance (default 1e-10)
	MaxIter int     // iteration budget (default 10000)
	Method  Method  // solver choice (default MethodBisect)
}

// Method selects a σ solver.
type Method int

// Available σ solvers.
const (
	// MethodBisect brackets the fixed point and bisects g(σ)−σ; it is
	// guaranteed to converge for any valid Laplace transform.
	MethodBisect Method = iota
	// MethodPaper is the averaging iteration from Section 3.2.2:
	// σ ← (A*(μ−μσ) + σ)/2 starting from 0.5.
	MethodPaper
)

func (m Method) String() string {
	switch m {
	case MethodBisect:
		return "bisect"
	case MethodPaper:
		return "paper-averaging"
	}
	return "unknown"
}

// Solve computes the G/M/1 queue for interarrival transform a, arrival
// rate lambda (for Little's result) and service rate mu.
func Solve(a Laplace, lambda, mu float64, opts *Options) (Result, error) {
	if lambda <= 0 || mu <= 0 {
		return Result{}, fmt.Errorf("gm1: rates must be positive (λ=%v, μ=%v)", lambda, mu)
	}
	rho := lambda / mu
	if rho >= 1 {
		return Result{Rho: rho, Lambda: lambda, Mu: mu}, ErrUnstable
	}
	o := Options{Tol: 1e-10, MaxIter: 10000}
	if opts != nil {
		if opts.Tol > 0 {
			o.Tol = opts.Tol
		}
		if opts.MaxIter > 0 {
			o.MaxIter = opts.MaxIter
		}
		o.Method = opts.Method
	}
	g := func(sig float64) float64 { return a(mu - mu*sig) }
	var sigma float64
	var iters int
	var err error
	switch o.Method {
	case MethodPaper:
		sigma, iters, err = quad.FixedPoint(g, 0.5, 0.5, o.Tol, o.MaxIter)
		if err != nil {
			return Result{}, fmt.Errorf("gm1: paper σ-algorithm: %w", err)
		}
	default:
		sigma, iters, err = bisectSigma(g, o.Tol, o.MaxIter)
		if err != nil {
			return Result{}, err
		}
	}
	if sigma >= 1 {
		sigma = 1 - 1e-12
	}
	if sigma < 0 {
		sigma = 0
	}
	res := Result{
		Sigma:      sigma,
		Delay:      1 / (mu * (1 - sigma)),
		Wait:       sigma / (mu * (1 - sigma)),
		Rho:        rho,
		Lambda:     lambda,
		Mu:         mu,
		Iterations: iters,
	}
	res.QueueLen = lambda * res.Delay
	return res, nil
}

// bisectSigma finds the non-trivial root of h(σ) = A*(μ−μσ) − σ in (0,1).
// h(1) = 0 always (A*(0) = 1); stability guarantees a root below 1, with
// h(0) = A*(μ) > 0, so h goes positive→negative→0; we bisect on a bracket
// found by scanning down from 1.
func bisectSigma(g func(float64) float64, tol float64, maxIter int) (float64, int, error) {
	h := func(s float64) float64 { return g(s) - s }
	// Scan for a point where h < 0 (between the root and 1).
	var hi float64 = -1
	for _, probe := range []float64{0.999, 0.99, 0.9, 0.7, 0.5, 0.3, 0.1, 0.01} {
		if h(probe) < 0 {
			hi = probe
		}
	}
	if hi < 0 {
		// No strictly negative point found: σ is extremely close to 1 or
		// the transform is degenerate; refine near 1.
		hi = 1 - 1e-9
		if h(hi) >= 0 {
			return 0, 0, errors.New("gm1: could not bracket sigma")
		}
	}
	root, err := quad.Bisect(h, 0, hi, tol)
	if err != nil {
		return 0, 0, fmt.Errorf("gm1: bisect: %w", err)
	}
	return root, 0, nil
}

// MM1 returns the closed-form M/M/1 result (the Poisson baseline).
func MM1(lambda, mu float64) (Result, error) {
	if lambda >= mu {
		return Result{Rho: lambda / mu, Lambda: lambda, Mu: mu}, ErrUnstable
	}
	rho := lambda / mu
	return Result{
		Sigma:    rho, // PASTA: arrivals see time averages
		Delay:    1 / (mu - lambda),
		Wait:     rho / (mu - lambda),
		QueueLen: rho / (1 - rho),
		Rho:      rho,
		Lambda:   lambda,
		Mu:       mu,
	}, nil
}

// MD1Delay returns the mean sojourn time of the M/D/1 queue by
// Pollaczek–Khinchine with deterministic service (SCV 0), an extra
// baseline for the discussion sections.
func MD1Delay(lambda, mu float64) float64 {
	rho := lambda / mu
	return 1/mu + rho/(2*mu*(1-rho))
}

// MG1Delay returns the Pollaczek–Khinchine mean sojourn time for general
// service with the given squared coefficient of variation.
func MG1Delay(lambda, mu, scv float64) float64 {
	rho := lambda / mu
	return 1/mu + rho*(1+scv)/(2*mu*(1-rho))
}
