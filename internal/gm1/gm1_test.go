package gm1

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"hap/internal/dist"
)

func wantClose(t *testing.T, name string, got, want, relTol float64) {
	t.Helper()
	if math.Abs(got-want) > relTol*math.Max(1e-12, math.Abs(want)) {
		t.Errorf("%s = %v, want %v (rel tol %v)", name, got, want, relTol)
	}
}

func TestSolveRecoversMM1(t *testing.T) {
	// Exponential interarrivals: σ must equal ρ and T = 1/(μ−λ).
	lambda, mu := 8.25, 20.0
	e := dist.NewExponential(lambda)
	for _, method := range []Method{MethodBisect, MethodPaper} {
		res, err := Solve(e.Laplace, lambda, mu, &Options{Method: method})
		if err != nil {
			t.Fatalf("%v: %v", method, err)
		}
		wantClose(t, method.String()+" sigma", res.Sigma, lambda/mu, 1e-7)
		wantClose(t, method.String()+" delay", res.Delay, 1/(mu-lambda), 1e-6)
		wantClose(t, method.String()+" queue", res.QueueLen, lambda/(mu-lambda), 1e-6)
	}
}

func TestSolveED1KnownBehaviour(t *testing.T) {
	// Erlang (smoother than Poisson) interarrivals must wait LESS than
	// M/M/1 at equal rates; hyperexponential must wait MORE.
	lambda, mu := 5.0, 10.0
	mm1, _ := MM1(lambda, mu)
	erl := dist.NewErlang(4, 4*lambda) // mean 1/λ, SCV 1/4
	hyper := dist.NewHyperExponential([]float64{0.9, 0.1}, []float64{0.9 * lambda / 0.5, 0.1 * lambda / 0.5})
	resE, err := Solve(erl.Laplace, lambda, mu, nil)
	if err != nil {
		t.Fatal(err)
	}
	if resE.Delay >= mm1.Delay {
		t.Errorf("E4/M/1 delay %v should undercut M/M/1 %v", resE.Delay, mm1.Delay)
	}
	resH, err := Solve(hyper.Laplace, 1/hyper.Mean(), mu, nil)
	if err != nil {
		t.Fatal(err)
	}
	if resH.Delay <= mm1.Delay {
		t.Errorf("H2/M/1 delay %v should exceed M/M/1 %v", resH.Delay, mm1.Delay)
	}
}

func TestPaperAndBisectAgree(t *testing.T) {
	lambda, mu := 5.0, 10.0
	h := dist.NewHyperExponential([]float64{0.6, 0.4}, []float64{3, 20})
	lam := 1 / h.Mean()
	_ = lambda
	a, err := Solve(h.Laplace, lam, mu, &Options{Method: MethodBisect})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Solve(h.Laplace, lam, mu, &Options{Method: MethodPaper})
	if err != nil {
		t.Fatal(err)
	}
	wantClose(t, "sigma agreement", a.Sigma, b.Sigma, 1e-6)
}

func TestWaitingCDF(t *testing.T) {
	lambda, mu := 4.0, 10.0
	e := dist.NewExponential(lambda)
	res, err := Solve(e.Laplace, lambda, mu, nil)
	if err != nil {
		t.Fatal(err)
	}
	// W(0) = 1 − σ (zero-wait atom), W(∞) = 1, monotone.
	wantClose(t, "W(0)", res.WaitingCDF(0), 1-res.Sigma, 1e-9)
	wantClose(t, "W(inf)", res.WaitingCDF(1e9), 1, 1e-12)
	if res.WaitingCDF(-1) != 0 {
		t.Error("negative wait must have zero probability")
	}
	prev := 0.0
	for _, y := range []float64{0, 0.05, 0.2, 1, 5} {
		v := res.WaitingCDF(y)
		if v < prev {
			t.Errorf("W not monotone at %v", y)
		}
		prev = v
	}
	// Quantile inverts the CDF beyond the atom.
	for _, p := range []float64{0.8, 0.95, 0.99} {
		y := res.WaitingQuantile(p)
		wantClose(t, "W(Q(p))", res.WaitingCDF(y), p, 1e-9)
	}
	if res.WaitingQuantile(0.1) != 0 {
		t.Error("quantile below the atom must be 0")
	}
	if !math.IsInf(res.WaitingQuantile(1), 1) {
		t.Error("p=1 quantile must be +Inf")
	}
}

func TestMeanWaitConsistentWithCDF(t *testing.T) {
	lambda, mu := 6.0, 10.0
	e := dist.NewExponential(lambda)
	res, _ := Solve(e.Laplace, lambda, mu, nil)
	// E[W] from the CDF: σ/(μ(1−σ)).
	wantClose(t, "wait", res.Wait, res.Sigma/(res.Mu*(1-res.Sigma)), 1e-12)
	wantClose(t, "delay = wait + service", res.Delay, res.Wait+1/mu, 1e-12)
}

func TestUnstableQueue(t *testing.T) {
	e := dist.NewExponential(10)
	_, err := Solve(e.Laplace, 10, 10, nil)
	if !errors.Is(err, ErrUnstable) {
		t.Errorf("expected ErrUnstable, got %v", err)
	}
	if _, err := MM1(11, 10); !errors.Is(err, ErrUnstable) {
		t.Error("MM1 must reject rho >= 1")
	}
	if _, err := Solve(e.Laplace, -1, 10, nil); err == nil {
		t.Error("negative lambda must error")
	}
}

func TestMM1MatchesSolve(t *testing.T) {
	lambda, mu := 8.25, 20.0
	closed, _ := MM1(lambda, mu)
	e := dist.NewExponential(lambda)
	solved, _ := Solve(e.Laplace, lambda, mu, nil)
	wantClose(t, "delay", closed.Delay, solved.Delay, 1e-6)
	wantClose(t, "delay value", closed.Delay, 0.0851, 2e-3) // paper: 0.085
}

func TestMD1BelowMM1(t *testing.T) {
	lambda, mu := 5.0, 10.0
	if MD1Delay(lambda, mu) >= MM1Delay(lambda, mu) {
		t.Error("M/D/1 must beat M/M/1")
	}
	wantClose(t, "MG1 scv=1 is MM1", MG1Delay(lambda, mu, 1), MM1Delay(lambda, mu), 1e-12)
	wantClose(t, "MG1 scv=0 is MD1", MG1Delay(lambda, mu, 0), MD1Delay(lambda, mu), 1e-12)
}

func MM1Delay(lambda, mu float64) float64 { r, _ := MM1(lambda, mu); return r.Delay }

// Property: for hyperexponential interarrivals with random mixtures, σ is
// in (0,1), the fixed point is satisfied, and delay exceeds the service
// time.
func TestQuickSigmaFixedPoint(t *testing.T) {
	f := func(w1, w2, r1, r2, load float64) bool {
		p1 := math.Abs(math.Mod(w1, 1)) + 0.05
		p2 := math.Abs(math.Mod(w2, 1)) + 0.05
		rt1 := math.Abs(math.Mod(r1, 20)) + 0.5
		rt2 := math.Abs(math.Mod(r2, 20)) + 0.5
		h := dist.NewHyperExponential([]float64{p1, p2}, []float64{rt1, rt2})
		lambda := 1 / h.Mean()
		rho := math.Abs(math.Mod(load, 0.85)) + 0.05
		mu := lambda / rho
		res, err := Solve(h.Laplace, lambda, mu, nil)
		if err != nil {
			return false
		}
		if res.Sigma <= 0 || res.Sigma >= 1 {
			return false
		}
		if math.Abs(h.Laplace(mu-mu*res.Sigma)-res.Sigma) > 1e-6 {
			return false
		}
		return res.Delay >= 1/mu-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestWarmSigmaBracket asserts the warm-start contract of the bisection:
// seeding a solve with a nearby previous σ lands on the same root in
// strictly fewer transform evaluations, and a wildly wrong hint still
// converges to the correct root (correctness never depends on the hint).
func TestWarmSigmaBracket(t *testing.T) {
	lambda, mu := 8.25, 20.0
	e := dist.NewExponential(lambda)
	cold, err := Solve(e.Laplace, lambda, mu, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Nudge the load slightly — the continuous re-solve scenario — and
	// warm-start from the previous σ.
	lambda2 := lambda * 1.02
	e2 := dist.NewExponential(lambda2)
	cold2, err := Solve(e2.Laplace, lambda2, mu, nil)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := Solve(e2.Laplace, lambda2, mu, &Options{WarmSigma: cold.Sigma})
	if err != nil {
		t.Fatal(err)
	}
	wantClose(t, "warm sigma", warm.Sigma, cold2.Sigma, 1e-7)
	if warm.Iterations >= cold2.Iterations {
		t.Errorf("warm solve spent %d evaluations, cold spent %d — warm should be cheaper",
			warm.Iterations, cold2.Iterations)
	}
	// A stale hint far from the root must still converge.
	for _, hint := range []float64{1e-9, 0.999999} {
		res, err := Solve(e2.Laplace, lambda2, mu, &Options{WarmSigma: hint})
		if err != nil {
			t.Fatalf("hint %g: %v", hint, err)
		}
		wantClose(t, "stale-hint sigma", res.Sigma, cold2.Sigma, 1e-7)
	}
}
