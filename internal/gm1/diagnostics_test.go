package gm1

import (
	"context"
	"errors"
	"math"
	"testing"

	"hap/internal/dist"
	"hap/internal/haperr"
)

// The bisection solver must report the iterations it actually spent (the
// old code always said 0) along with a residual and the bracket history.
func TestBisectReportsIterations(t *testing.T) {
	lambda, mu := 8.25, 20.0
	e := dist.NewExponential(lambda)
	res, err := Solve(e.Laplace, lambda, mu, &Options{Method: MethodBisect})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations <= 0 {
		t.Errorf("Iterations = %d, want > 0", res.Iterations)
	}
	if !res.Converged {
		t.Error("Converged must be true on success")
	}
	if !(res.Residual >= 0) || res.Residual > 1e-8 {
		t.Errorf("Residual = %v, want small and non-negative", res.Residual)
	}
	if len(res.Bracket) == 0 || len(res.Bracket)%2 != 0 {
		t.Errorf("Bracket = %v, want non-empty (probe, h) pairs", res.Bracket)
	}
	d := res.Diag()
	if d.Iterations != res.Iterations || !d.Converged {
		t.Errorf("Diag() = %+v disagrees with result", d)
	}
}

// The probe scan must stop at the first negative probe: any point with
// h < 0 already lies between the root and 1, so scanning further only
// wastes transform evaluations.
func TestProbeScanStopsAtFirstNegative(t *testing.T) {
	lambda, mu := 5.0, 10.0
	evals := 0
	e := dist.NewExponential(lambda)
	counted := func(s float64) float64 { evals++; return e.Laplace(s) }
	res, err := Solve(counted, lambda, mu, &Options{Method: MethodBisect})
	if err != nil {
		t.Fatal(err)
	}
	// σ = 0.5 here, so h(0.999) < 0 already: exactly one probe recorded.
	if len(res.Bracket) != 2 {
		t.Errorf("bracket history %v, want a single (probe, h) pair", res.Bracket)
	}
	if res.Bracket[0] != 0.999 || res.Bracket[1] >= 0 {
		t.Errorf("first probe (%v, %v), want (0.999, <0)", res.Bracket[0], res.Bracket[1])
	}
	// Evaluations: 1 probe + ~log2(1/tol) bisection steps + 1 residual.
	if evals > 60 {
		t.Errorf("%d transform evaluations, want the scan to stop at the first negative probe", evals)
	}
}

func TestMD1MG1UnstableAndInvalid(t *testing.T) {
	if d := MD1Delay(10, 10); !math.IsInf(d, 1) {
		t.Errorf("MD1Delay at rho=1 = %v, want +Inf", d)
	}
	if d := MD1Delay(12, 10); !math.IsInf(d, 1) {
		t.Errorf("MD1Delay at rho>1 = %v, want +Inf", d)
	}
	if d := MG1Delay(12, 10, 1); !math.IsInf(d, 1) {
		t.Errorf("MG1Delay at rho>1 = %v, want +Inf", d)
	}
	for _, bad := range [][3]float64{
		{-1, 10, 0}, {0, 10, 0}, {5, -1, 0}, {5, 0, 0}, {5, 10, -1},
		{math.NaN(), 10, 0}, {5, math.NaN(), 0}, {5, 10, math.NaN()},
	} {
		if d := MG1Delay(bad[0], bad[1], bad[2]); !math.IsNaN(d) {
			t.Errorf("MG1Delay(%v) = %v, want NaN", bad, d)
		}
	}
}

// A degenerate transform A*(s) = 1 drives the paper's averaging iteration
// onto the trivial fixed point σ = 1. The old code silently clamped σ to
// 1−1e-12 and reported a near-infinite delay; it must now refuse with
// ErrTrivialRoot.
func TestTrivialRootDetected(t *testing.T) {
	degenerate := func(float64) float64 { return 1 }
	_, err := Solve(degenerate, 5, 10, &Options{Method: MethodPaper, MaxIter: 100000})
	if !errors.Is(err, ErrTrivialRoot) {
		t.Fatalf("err = %v, want ErrTrivialRoot", err)
	}
	if code := haperr.ExitCode(err); code != haperr.ExitNotConverged {
		t.Errorf("exit code %d, want %d", code, haperr.ExitNotConverged)
	}
}

// Near-critical sweep (the PR's G/M/1 correctness sweep): both σ methods
// must agree tightly for every stable load and fail with ErrUnstable —
// never a negative delay or a silent clamp — at and beyond ρ = 1.
func TestNearCriticalSweep(t *testing.T) {
	const mu = 10.0
	for _, rho := range []float64{0.95, 0.99, 0.999, 1.0, 1.1} {
		lambda := rho * mu
		e := dist.NewExponential(lambda)
		if rho >= 1 {
			for _, method := range []Method{MethodBisect, MethodPaper} {
				if _, err := Solve(e.Laplace, lambda, mu, &Options{Method: method}); !errors.Is(err, ErrUnstable) {
					t.Errorf("rho=%v %v: err = %v, want ErrUnstable", rho, method, err)
				}
			}
			if _, err := MM1(lambda, mu); !errors.Is(err, ErrUnstable) {
				t.Errorf("rho=%v MM1: want ErrUnstable", rho)
			}
			continue
		}
		// The averaging iteration contracts at rate (1+ρ)/2 near the root,
		// so ρ = 0.999 legitimately needs a far bigger budget than the
		// default; the point of the sweep is that with the budget it still
		// finds the same non-trivial root as the bisection.
		bis, err := Solve(e.Laplace, lambda, mu, &Options{Method: MethodBisect})
		if err != nil {
			t.Fatalf("rho=%v bisect: %v", rho, err)
		}
		pap, err := Solve(e.Laplace, lambda, mu, &Options{Method: MethodPaper, MaxIter: 300000})
		if err != nil {
			t.Fatalf("rho=%v paper: %v", rho, err)
		}
		if math.Abs(bis.Sigma-pap.Sigma) > 1e-6 {
			t.Errorf("rho=%v: sigma bisect %v vs paper %v", rho, bis.Sigma, pap.Sigma)
		}
		wantClose(t, "sigma vs rho", bis.Sigma, rho, 1e-6) // M/M/1: σ = ρ
		mm1, err := MM1(lambda, mu)
		if err != nil {
			t.Fatalf("rho=%v MM1: %v", rho, err)
		}
		wantClose(t, "delay vs MM1", bis.Delay, mm1.Delay, 1e-5)
		if bis.Delay <= 0 || pap.Delay <= 0 {
			t.Errorf("rho=%v: non-positive delay (bisect %v, paper %v)", rho, bis.Delay, pap.Delay)
		}
	}
}

func TestMM1ZeroLambdaEmptyLink(t *testing.T) {
	res, err := MM1(0, 10)
	if err != nil {
		t.Fatalf("MM1(0, mu): %v", err)
	}
	if res.Delay != 0.1 || res.QueueLen != 0 || res.Sigma != 0 {
		t.Errorf("empty link = %+v, want delay 1/mu and empty queue", res)
	}
}

func TestSolveRejectsBadInputs(t *testing.T) {
	e := dist.NewExponential(5)
	for _, bad := range [][2]float64{
		{math.NaN(), 10}, {5, math.NaN()}, {math.Inf(1), 10}, {5, math.Inf(1)}, {0, 10}, {5, 0},
	} {
		_, err := Solve(e.Laplace, bad[0], bad[1], nil)
		if !errors.Is(err, haperr.ErrBadParameter) {
			t.Errorf("Solve(λ=%v, μ=%v): err = %v, want ErrBadParameter", bad[0], bad[1], err)
		}
	}
}

func TestSolveCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	e := dist.NewExponential(5)
	_, err := Solve(e.Laplace, 5, 10, &Options{Method: MethodPaper, Ctx: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if code := haperr.ExitCode(err); code != haperr.ExitCancelled {
		t.Errorf("exit code %d, want %d", code, haperr.ExitCancelled)
	}
}
