// Package mmpp represents Markov-modulated Poisson processes and the
// paper's Section 3.1 mapping of a HAP onto one: the modulating chain is
// the (l+1)-dimensional lattice of user and per-type application counts
// (Figure 6), or the 2-dimensional (x, y) chain for symmetric parameters
// (Figure 7). The infinite state space is truncated at caller-chosen
// bounds, as the paper's numerics do.
//
// A 2-state MMPP — the prior-art approximation of Heffes–Lucantoni-style
// modelling that the paper positions HAP against — is also provided, with
// a moment fit from any modulated process's rate statistics.
package mmpp

import (
	"context"
	"fmt"
	"math"

	"hap/internal/markov"
)

// MMPP is a finite Markov-modulated Poisson process: a modulating CTMC and
// one Poisson arrival rate per state.
type MMPP struct {
	// Chain is the modulating CTMC.
	Chain *markov.Chain
	// Rates[i] is the Poisson arrival rate while the chain is in state i.
	Rates []float64

	pi []float64 // cached stationary law
}

// New builds an MMPP; the rate vector length must match the chain size.
func New(chain *markov.Chain, rates []float64) *MMPP {
	if chain.N() != len(rates) {
		panic(fmt.Sprintf("mmpp: %d states but %d rates", chain.N(), len(rates)))
	}
	for _, r := range rates {
		if r < 0 || math.IsNaN(r) {
			panic("mmpp: rates must be non-negative")
		}
	}
	return &MMPP{Chain: chain, Rates: rates}
}

// Stationary returns (and caches) the stationary law of the modulator.
func (m *MMPP) Stationary() ([]float64, error) {
	return m.StationaryCtx(nil)
}

// StationaryCtx is Stationary with cooperative cancellation: the power
// iteration polls ctx (nil means "never cancelled") and aborts with the
// context error. Cancelled solves are not cached.
func (m *MMPP) StationaryCtx(ctx context.Context) ([]float64, error) {
	if m.pi != nil {
		return m.pi, nil
	}
	pi, _, err := m.Chain.SteadyState(&markov.SteadyOptions{Tol: 1e-11, Ctx: ctx})
	if err != nil {
		return nil, err
	}
	m.pi = pi
	return pi, nil
}

// MeanRate returns λ̄ = Σ πᵢ rᵢ.
func (m *MMPP) MeanRate() (float64, error) {
	pi, err := m.Stationary()
	if err != nil {
		return 0, err
	}
	return markov.ExpectedValue(pi, func(i int) float64 { return m.Rates[i] }), nil
}

// RateVariance returns Var(R) of the stationary modulated rate, the
// second-order burstiness driver.
func (m *MMPP) RateVariance() (float64, error) {
	pi, err := m.Stationary()
	if err != nil {
		return 0, err
	}
	mean := markov.ExpectedValue(pi, func(i int) float64 { return m.Rates[i] })
	second := markov.ExpectedValue(pi, func(i int) float64 { return m.Rates[i] * m.Rates[i] })
	return second - mean*mean, nil
}

// AsymptoticIDC returns the t→∞ limit of the index of dispersion for
// counts estimated from the rate process: 1 + 2·Var(R)·τ/λ̄, where τ is
// the supplied correlation time of the rate process. For a 2-state MMPP τ
// is 1/(q01+q10) exactly; for HAP chains a characteristic modulation time
// must be chosen by the caller (e.g. 1/μ' for application-dominated
// burstiness).
func (m *MMPP) AsymptoticIDC(tau float64) (float64, error) {
	rate, err := m.MeanRate()
	if err != nil {
		return 0, err
	}
	if rate == 0 {
		return 0, nil
	}
	v, err := m.RateVariance()
	if err != nil {
		return 0, err
	}
	return 1 + 2*v*tau/rate, nil
}

// InterarrivalMixture returns the rate-weighted exponential mixture that
// Solution 1 uses as the interarrival law: branch k has rate Rates[k] and
// weight π(k)·Rates[k]/λ̄ (zero-rate states carry no weight). The second
// return is λ̄.
func (m *MMPP) InterarrivalMixture() (weights, rates []float64, meanRate float64, err error) {
	return m.InterarrivalMixtureCtx(nil)
}

// InterarrivalMixtureCtx is InterarrivalMixture with cooperative
// cancellation of the underlying stationary solve.
func (m *MMPP) InterarrivalMixtureCtx(ctx context.Context) (weights, rates []float64, meanRate float64, err error) {
	pi, err := m.StationaryCtx(ctx)
	if err != nil {
		return nil, nil, 0, err
	}
	for i, p := range pi {
		r := m.Rates[i]
		if r <= 0 || p <= 0 {
			continue
		}
		meanRate += p * r
		weights = append(weights, p*r)
		rates = append(rates, r)
	}
	if meanRate == 0 {
		return nil, nil, 0, fmt.Errorf("mmpp: process has zero mean rate")
	}
	for i := range weights {
		weights[i] /= meanRate
	}
	return weights, rates, meanRate, nil
}

// MMPP2 is the classical 2-state MMPP with arrival rates R0, R1 and
// switching rates Q01 (state 0 → 1) and Q10.
type MMPP2 struct {
	R0, R1   float64
	Q01, Q10 float64
}

// Validate checks parameters.
func (m MMPP2) Validate() error {
	if m.R0 < 0 || m.R1 < 0 || m.Q01 <= 0 || m.Q10 <= 0 {
		return fmt.Errorf("mmpp: invalid MMPP2 %+v", m)
	}
	return nil
}

// StationaryP0 returns the stationary probability of state 0.
func (m MMPP2) StationaryP0() float64 { return m.Q10 / (m.Q01 + m.Q10) }

// MeanRate returns π₀R₀ + π₁R₁.
func (m MMPP2) MeanRate() float64 {
	p0 := m.StationaryP0()
	return p0*m.R0 + (1-p0)*m.R1
}

// RateVariance returns the stationary variance of the modulated rate.
func (m MMPP2) RateVariance() float64 {
	p0 := m.StationaryP0()
	d := m.R1 - m.R0
	return p0 * (1 - p0) * d * d
}

// CorrelationTime returns 1/(Q01+Q10), the exponential decay time of rate
// autocorrelation.
func (m MMPP2) CorrelationTime() float64 { return 1 / (m.Q01 + m.Q10) }

// AsymptoticIDC returns the closed-form t→∞ IDC limit
// 1 + 2·Var(R)/(λ̄·(Q01+Q10)).
func (m MMPP2) AsymptoticIDC() float64 {
	rate := m.MeanRate()
	if rate == 0 {
		return 0
	}
	return 1 + 2*m.RateVariance()*m.CorrelationTime()/rate
}

// InterarrivalLaplace returns the exact Laplace–Stieltjes transform of
// the arrival-stationary interarrival time,
//
//	A*(s) = φ·(sI − D₀)⁻¹·r,  D₀ = Q − diag(r),  φₖ = πₖrₖ/λ̄,
//
// expanded in closed form for the 2×2 case (Δ is the determinant of
// sI − D₀):
//
//	Δ(s) = (s+q01+r0)(s+q10+r1) − q01·q10
//	u0   = [(s+q10+r1)·r0 + q01·r1]/Δ
//	u1   = [q10·r0 + (s+q01+r0)·r1]/Δ
//	A*(s) = φ0·u0 + φ1·u1
//
// This is what a G/M/1 reduction over a *fitted* MMPP2 consumes (the
// control plane's delay path): gm1.Solve takes the transform directly,
// no chain solve. Degenerates to λ/(λ+s) when R0 = R1 = λ.
func (m MMPP2) InterarrivalLaplace() (func(s float64) float64, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	lam := m.MeanRate()
	if lam <= 0 {
		return nil, fmt.Errorf("mmpp: MMPP2 %+v has zero arrival rate", m)
	}
	p0 := m.StationaryP0()
	phi0 := p0 * m.R0 / lam
	phi1 := (1 - p0) * m.R1 / lam
	r0, r1, q01, q10 := m.R0, m.R1, m.Q01, m.Q10
	return func(s float64) float64 {
		den := (s+q01+r0)*(s+q10+r1) - q01*q10
		u0 := ((s+q10+r1)*r0 + q01*r1) / den
		u1 := (q10*r0 + (s+q01+r0)*r1) / den
		return phi0*u0 + phi1*u1
	}, nil
}

// General converts the 2-state process into the general representation.
func (m MMPP2) General() *MMPP {
	c := markov.NewChain(2)
	c.Add(0, 1, m.Q01)
	c.Add(1, 0, m.Q10)
	return New(c, []float64{m.R0, m.R1})
}

// FitMMPP2 moment-matches a 2-state MMPP to a modulated process with mean
// rate, rate variance and rate-correlation time tau, splitting states
// symmetrically (π₀ = π₁ = 1/2): R0,1 = mean ∓ std, Q01 = Q10 = 1/(2τ).
// This is the kind of reduction the 2-state-MMPP literature applies to
// superposed traffic, and what HAP's hierarchy renders insufficient.
func FitMMPP2(meanRate, rateVar, tau float64) (MMPP2, error) {
	if meanRate <= 0 || rateVar < 0 || tau <= 0 {
		return MMPP2{}, fmt.Errorf("mmpp: bad fit inputs mean=%v var=%v tau=%v", meanRate, rateVar, tau)
	}
	std := math.Sqrt(rateVar)
	r0 := meanRate - std
	if r0 < 0 {
		r0 = 0 // an interrupted Poisson process
	}
	return MMPP2{
		R0:  r0,
		R1:  meanRate + std,
		Q01: 1 / (2 * tau),
		Q10: 1 / (2 * tau),
	}, nil
}
