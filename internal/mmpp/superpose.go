package mmpp

import (
	"fmt"

	"hap/internal/linalg"
	"hap/internal/markov"
)

// maxSuperposeStates bounds the product state space Superpose will build.
// A merged chain's LST evaluation is an O(n³) LU solve per Laplace
// argument, so past a few thousand states the "exact" path stops being
// the cheap one — callers wanting more streams should fit the merged
// trace instead.
const maxSuperposeStates = 1 << 20

// InterarrivalLaplace returns the exact Laplace–Stieltjes transform of
// the arrival-stationary interarrival time of a general k-state MMPP,
//
//	A*(s) = φ·(sI − D₀)⁻¹·r,  D₀ = Q − diag(r),  φᵢ = πᵢrᵢ/λ̄,
//
// evaluated through an LU solve of the k×k resolvent per argument
// (internal/linalg). This is the k-state generalisation of
// MMPP2.InterarrivalLaplace: a 2-state chain delegates to that closed
// form, so the two paths are bit-identical where they overlap. The
// returned closure is safe for concurrent use; each evaluation factors
// its own resolvent copy.
func (m *MMPP) InterarrivalLaplace() (func(s float64) float64, error) {
	n := m.Chain.N()
	pi, err := m.Stationary()
	if err != nil {
		return nil, err
	}
	var lam float64
	for i, p := range pi {
		lam += p * m.Rates[i]
	}
	if lam <= 0 {
		return nil, fmt.Errorf("mmpp: process has zero mean rate")
	}
	if n == 2 {
		m2 := MMPP2{R0: m.Rates[0], R1: m.Rates[1],
			Q01: m.Chain.OutRate(0), Q10: m.Chain.OutRate(1)}
		if m2.Validate() == nil {
			return m2.InterarrivalLaplace()
		}
	}
	// negD0 = diag(r) − Q, so the resolvent sI − D₀ is negD0 plus s on
	// the diagonal.
	negD0 := linalg.NewDense(n, n)
	r := make([]float64, n)
	phi := make([]float64, n)
	for i := 0; i < n; i++ {
		r[i] = m.Rates[i]
		phi[i] = pi[i] * m.Rates[i] / lam
		for _, tr := range m.Chain.Transitions(i) {
			negD0.A[i*n+tr.To] -= tr.Rate
		}
		negD0.A[i*n+i] = m.Chain.OutRate(i) + m.Rates[i]
	}
	return func(s float64) float64 {
		res := negD0.Clone()
		res.AddToDiag(s)
		lu, err := linalg.Factor(res)
		if err != nil {
			// sI − D₀ is an M-matrix for s ≥ 0 with at least one
			// strictly positive rate, so a singular factorisation only
			// happens for out-of-domain arguments.
			return 0
		}
		return linalg.Dot(phi, lu.SolveVec(r))
	}, nil
}

// ScaleRates returns a view of m with every arrival rate multiplied by
// f, sharing the modulating chain and its cached stationary law (the
// modulator is untouched, so the stationary vector is unchanged). This
// is the admission search's evaluation step: the headroom bisection
// scales the fitted aggregate without rebuilding the product chain.
func (m *MMPP) ScaleRates(f float64) *MMPP {
	if f < 0 {
		panic("mmpp: negative rate scale")
	}
	scaled := make([]float64, len(m.Rates))
	for i, r := range m.Rates {
		scaled[i] = f * r
	}
	return &MMPP{Chain: m.Chain, Rates: scaled, pi: m.pi}
}

// Superpose builds the exact merge of independent MMPPs: the modulating
// chain is the Kronecker sum of the component chains (every component
// transitions independently on the product state space) and the arrival
// rate in a product state is the sum of the component rates. The
// stationary law is seeded with the product form Π πᵢ — exact for
// independent modulators — so the merged process never needs an
// iterative solve over the product space. A single component is
// returned as-is.
//
// This is the MAP-superposition construction (Kronecker sums of the D₀
// and D₁ blocks) specialised to MMPPs, where diag(r) makes both blocks
// diagonal-compatible and the whole merge reduces to chains and rate
// vectors.
func Superpose(components ...*MMPP) (*MMPP, error) {
	if len(components) == 0 {
		return nil, fmt.Errorf("mmpp: superpose needs at least one component")
	}
	if len(components) == 1 {
		return components[0], nil
	}
	total := 1
	for _, c := range components {
		n := c.Chain.N()
		if total > maxSuperposeStates/n {
			return nil, fmt.Errorf("mmpp: superposed state space exceeds %d states", maxSuperposeStates)
		}
		total *= n
	}
	// Strides: the last component varies fastest (mixed-radix index).
	strides := make([]int, len(components))
	stride := 1
	for i := len(components) - 1; i >= 0; i-- {
		strides[i] = stride
		stride *= components[i].Chain.N()
	}
	pis := make([][]float64, len(components))
	for i, c := range components {
		pi, err := c.Stationary()
		if err != nil {
			return nil, fmt.Errorf("mmpp: superpose component %d: %w", i, err)
		}
		pis[i] = pi
	}
	chain := markov.NewChain(total)
	rates := make([]float64, total)
	pi := make([]float64, total)
	states := make([]int, len(components))
	for idx := 0; idx < total; idx++ {
		// Decode idx into per-component states.
		rem := idx
		for i := range components {
			states[i] = rem / strides[i]
			rem %= strides[i]
		}
		var rate float64
		p := 1.0
		for i, c := range components {
			si := states[i]
			rate += c.Rates[si]
			p *= pis[i][si]
			for _, tr := range c.Chain.Transitions(si) {
				chain.Add(idx, idx+(tr.To-si)*strides[i], tr.Rate)
			}
		}
		rates[idx] = rate
		pi[idx] = p
	}
	merged := New(chain, rates)
	merged.pi = pi
	return merged, nil
}

// SuperposeMMPP2 merges fitted 2-state MMPPs — the control plane's
// aggregate path, where each live stream contributes its latest fitted
// MMPP2. Component stationary laws come from the 2-state closed form,
// so the product-form law of the merge is exact, and a single model
// degenerates to a process whose InterarrivalLaplace is bit-identical
// to MMPP2.InterarrivalLaplace.
func SuperposeMMPP2(models ...MMPP2) (*MMPP, error) {
	if len(models) == 0 {
		return nil, fmt.Errorf("mmpp: superpose needs at least one component")
	}
	comps := make([]*MMPP, len(models))
	for i, m2 := range models {
		if err := m2.Validate(); err != nil {
			return nil, fmt.Errorf("mmpp: superpose component %d: %w", i, err)
		}
		g := m2.General()
		p0 := m2.StationaryP0()
		g.pi = []float64{p0, 1 - p0}
		comps[i] = g
	}
	return Superpose(comps...)
}
