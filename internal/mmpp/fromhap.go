package mmpp

import (
	"fmt"
	"math"

	"hap/internal/core"
	"hap/internal/markov"
)

// FromHAP builds the full (l+1)-dimensional modulating chain of Figure 6,
// truncated at maxUsers user instances and maxAppsPerType[i] instances of
// application type i. Transitions connect neighbouring states only:
//
//	x → x+1 at λ          x → x−1 at x·μ
//	yᵢ → yᵢ+1 at x·λᵢ     yᵢ → yᵢ−1 at yᵢ·μᵢ
//
// and the state's Poisson rate is Σᵢ yᵢ·Λᵢ. The state space is
// (maxUsers+1)·Πᵢ(maxAppsPerType[i]+1); keep the bounds small for models
// with many types (the paper's own Solution 0 needed two weeks on the
// symmetric reduction).
func FromHAP(m *core.Model, maxUsers int, maxAppsPerType []int) (*MMPP, *markov.Lattice, error) {
	if err := m.Validate(); err != nil {
		return nil, nil, err
	}
	l := len(m.Apps)
	if len(maxAppsPerType) != l {
		return nil, nil, fmt.Errorf("mmpp: need %d app bounds, got %d", l, len(maxAppsPerType))
	}
	dims := make([]int, l+1)
	dims[0] = maxUsers + 1
	for i, b := range maxAppsPerType {
		if b < 1 || maxUsers < 1 {
			return nil, nil, fmt.Errorf("mmpp: bounds must be >= 1")
		}
		dims[i+1] = b + 1
	}
	lat := markov.NewLattice(dims...)
	chain := markov.NewChain(lat.N())
	rates := make([]float64, lat.N())
	bigLambda := make([]float64, l)
	for i, a := range m.Apps {
		bigLambda[i] = a.TotalMessageRate()
	}
	coords := make([]int, l+1)
	for s := 0; s < lat.N(); s++ {
		lat.Coords(s, coords)
		x := coords[0]
		// User arrivals and departures.
		if to, ok := lat.Shift(s, 0, +1); ok {
			chain.Add(s, to, m.Lambda)
		}
		if to, ok := lat.Shift(s, 0, -1); ok {
			chain.Add(s, to, float64(x)*m.Mu)
		}
		var rate float64
		for i := 0; i < l; i++ {
			yi := coords[i+1]
			if to, ok := lat.Shift(s, i+1, +1); ok && x > 0 {
				chain.Add(s, to, float64(x)*m.Apps[i].Lambda)
			}
			if to, ok := lat.Shift(s, i+1, -1); ok {
				chain.Add(s, to, float64(yi)*m.Apps[i].Mu)
			}
			rate += float64(yi) * bigLambda[i]
		}
		rates[s] = rate
	}
	return New(chain, rates), lat, nil
}

// FromHAPSimplified builds the 2-dimensional (x, y) chain of Figure 7 for
// a symmetric model: y is the total application count, applications arrive
// at x·l·λ' and depart at y·μ', and the state rate is y·m·λ”.
func FromHAPSimplified(m *core.Model, maxUsers, maxApps int) (*MMPP, *markov.Lattice, error) {
	if err := m.Validate(); err != nil {
		return nil, nil, err
	}
	ok, lambdaApp, muApp, lambdaMsg, fanout := m.Symmetric()
	if !ok {
		return nil, nil, fmt.Errorf("mmpp: simplified chain requires a symmetric model")
	}
	if maxUsers < 1 || maxApps < 1 {
		return nil, nil, fmt.Errorf("mmpp: bounds must be >= 1")
	}
	l := float64(len(m.Apps))
	perApp := float64(fanout) * lambdaMsg
	lat := markov.NewLattice(maxUsers+1, maxApps+1)
	chain := markov.NewChain(lat.N())
	rates := make([]float64, lat.N())
	for s := 0; s < lat.N(); s++ {
		x, y := lat.At(s, 0), lat.At(s, 1)
		if to, ok := lat.Shift(s, 0, +1); ok {
			chain.Add(s, to, m.Lambda)
		}
		if to, ok := lat.Shift(s, 0, -1); ok {
			chain.Add(s, to, float64(x)*m.Mu)
		}
		if to, ok := lat.Shift(s, 1, +1); ok && x > 0 {
			chain.Add(s, to, float64(x)*l*lambdaApp)
		}
		if to, ok := lat.Shift(s, 1, -1); ok {
			chain.Add(s, to, float64(y)*muApp)
		}
		rates[s] = float64(y) * perApp
	}
	return New(chain, rates), lat, nil
}

// DefaultBounds suggests truncation bounds for a symmetric model: mean +
// k standard deviations at each level, floored at 8. k = 8 keeps the
// truncated stationary mass loss well below the solver tolerances for the
// paper's parameters.
func DefaultBounds(m *core.Model, k float64) (maxUsers, maxApps int) {
	if k <= 0 {
		k = 8
	}
	nu := m.Nu()
	maxUsers = boundFor(nu, math.Sqrt(nu), k)
	if ok, _, _, _, _ := m.Symmetric(); ok {
		// Exact marginal moments of the total application count.
		var la float64
		for i := range m.Apps {
			la += m.AppLoad(i)
		}
		maxApps = boundFor(nu*la, math.Sqrt(StationaryAppVariance(m)), k)
		return maxUsers, maxApps
	}
	// Asymmetric fallback: app population conditional on a high user count.
	var totApps float64
	for i := range m.Apps {
		totApps += m.AppLoad(i)
	}
	yTop := float64(maxUsers) * totApps
	maxApps = boundFor(yTop, math.Sqrt(math.Max(yTop, 1)), k)
	return maxUsers, maxApps
}

func boundFor(mean, std float64, k float64) int {
	b := int(math.Ceil(mean + k*math.Max(std, 1)))
	if b < 8 {
		b = 8
	}
	return b
}

// FitFromHAP moment-matches the 2-state comparator to a symmetric HAP:
// mean rate and rate variance come from the stationary populations and the
// correlation time is the application lifetime 1/μ', the dominant
// modulation scale. The exact stationary application-count variance of the
// two-level cascade is
//
//	Var(y) = ν·l·a' + (l·a')²·ν·μ'/(μ+μ')
//
// (the second term is the user-modulation contribution, low-pass filtered
// by the application time constant; as μ' ≫ μ it approaches the
// conditional-equilibrium value ν·l·a'(1+l·a')).
func FitFromHAP(m *core.Model) (MMPP2, error) {
	ok, lambdaApp, muApp, lambdaMsg, fanout := m.Symmetric()
	if !ok {
		return MMPP2{}, fmt.Errorf("mmpp: fit requires a symmetric model")
	}
	nu := m.Nu()
	la := float64(len(m.Apps)) * lambdaApp / muApp // l·a'
	perApp := float64(fanout) * lambdaMsg
	meanY := nu * la
	varY := StationaryAppVariance(m)
	_ = meanY
	return FitMMPP2(perApp*meanY, perApp*perApp*varY, 1/muApp)
}

// StationaryAppVariance returns the exact stationary variance of the total
// application count of a symmetric model,
// ν·l·a' + (l·a')²·ν·μ'/(μ+μ'). It panics on asymmetric models.
func StationaryAppVariance(m *core.Model) float64 {
	ok, lambdaApp, muApp, _, _ := m.Symmetric()
	if !ok {
		panic("mmpp: StationaryAppVariance requires a symmetric model")
	}
	nu := m.Nu()
	la := float64(len(m.Apps)) * lambdaApp / muApp
	return nu*la + la*la*nu*muApp/(m.Mu+muApp)
}
