package mmpp

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// lstMoments extracts the first two interarrival moments from a
// Laplace–Stieltjes transform by second-order forward differences at 0
// (A*(s) = 1 − m₁s + m₂s²/2 − …).
func lstMoments(a func(float64) float64, h float64) (m1, m2 float64) {
	f0, f1, f2, f3 := a(0), a(h), a(2*h), a(3*h)
	m1 = -(-3*f0 + 4*f1 - f2) / (2 * h)
	m2 = (2*f0 - 5*f1 + 4*f2 - f3) / (h * h)
	return m1, m2
}

// sampleMMPP2 simulates n arrival epochs of an MMPP2 started from its
// stationary modulator state, by competing exponentials.
func sampleMMPP2(m MMPP2, n int, rng *rand.Rand) []float64 {
	state := 0
	if rng.Float64() > m.StationaryP0() {
		state = 1
	}
	t := 0.0
	out := make([]float64, 0, n)
	for len(out) < n {
		r, q := m.R0, m.Q01
		if state == 1 {
			r, q = m.R1, m.Q10
		}
		total := r + q
		t += rng.ExpFloat64() / total
		if rng.Float64()*total < r {
			out = append(out, t)
		} else {
			state = 1 - state
		}
	}
	return out
}

func TestSuperposeMeanRateIsSum(t *testing.T) {
	models := []MMPP2{
		{R0: 1, R1: 12, Q01: 0.4, Q10: 1.1},
		{R0: 3, R1: 3, Q01: 1, Q10: 1}, // a Poisson in MMPP2 clothing
		{R0: 0, R1: 25, Q01: 0.2, Q10: 0.6},
	}
	sup, err := SuperposeMMPP2(models...)
	if err != nil {
		t.Fatal(err)
	}
	if got := sup.Chain.N(); got != 8 {
		t.Fatalf("3 superposed MMPP2s have %d states, want 8", got)
	}
	var want float64
	for _, m := range models {
		want += m.MeanRate()
	}
	got, err := sup.MeanRate()
	if err != nil {
		t.Fatal(err)
	}
	wantClose(t, "superposed mean rate", got, want, 1e-12)
}

// TestSuperposeLSTMeanExact pins the acceptance contract: the exact LST
// of the superposed fitted process has mean interarrival 1/λ̄.
func TestSuperposeLSTMeanExact(t *testing.T) {
	models := []MMPP2{
		{R0: 2, R1: 40, Q01: 0.7, Q10: 2.3},
		{R0: 5, R1: 9, Q01: 1.5, Q10: 0.8},
		{R0: 1, R1: 70, Q01: 0.3, Q10: 3},
	}
	sup, err := SuperposeMMPP2(models...)
	if err != nil {
		t.Fatal(err)
	}
	lap, err := sup.InterarrivalLaplace()
	if err != nil {
		t.Fatal(err)
	}
	lam, err := sup.MeanRate()
	if err != nil {
		t.Fatal(err)
	}
	if got := lap(0); math.Abs(got-1) > 1e-9 {
		t.Errorf("A*(0) = %v, want 1", got)
	}
	m1, _ := lstMoments(lap, 1e-4*lam)
	wantClose(t, "LST mean vs 1/mean-rate", m1, 1/lam, 1e-6)
}

// TestSuperposeMatchesSimulatedMerge checks the superposed LST against
// a brute-force merge: simulate each component, merge and sort the
// arrival epochs, and compare the empirical interarrival mean and
// second moment with the transform's derivatives at 0.
func TestSuperposeMatchesSimulatedMerge(t *testing.T) {
	models := []MMPP2{
		{R0: 4, R1: 28, Q01: 2, Q10: 5},
		{R0: 10, R1: 10, Q01: 1, Q10: 1},
		{R0: 2, R1: 16, Q01: 3, Q10: 4},
	}
	sup, err := SuperposeMMPP2(models...)
	if err != nil {
		t.Fatal(err)
	}
	lap, err := sup.InterarrivalLaplace()
	if err != nil {
		t.Fatal(err)
	}
	lam, err := sup.MeanRate()
	if err != nil {
		t.Fatal(err)
	}
	wantM1, wantM2 := lstMoments(lap, 1e-3*lam)

	rng := rand.New(rand.NewSource(17))
	const perStream = 120000
	var merged []float64
	for _, m := range models {
		merged = append(merged, sampleMMPP2(m, perStream, rng)...)
	}
	sort.Float64s(merged)
	// Trim to the interval every component covered so no stream "runs
	// dry" inside the measured window.
	var minLast float64 = math.Inf(1)
	// The per-stream horizon is roughly perStream/rate; conservatively
	// cut at 90% of the shortest stream's span.
	for _, m := range models {
		if span := float64(perStream) / m.MeanRate(); span < minLast {
			minLast = span
		}
	}
	cut := sort.SearchFloat64s(merged, 0.9*minLast)
	merged = merged[:cut]

	var sum, sum2 float64
	n := 0
	for i := 1; i < len(merged); i++ {
		d := merged[i] - merged[i-1]
		sum += d
		sum2 += d * d
		n++
	}
	gotM1 := sum / float64(n)
	gotM2 := sum2 / float64(n)
	wantClose(t, "merged interarrival mean", gotM1, wantM1, 0.02)
	wantClose(t, "merged interarrival second moment", gotM2, wantM2, 0.05)
}

// TestSuperposeSingleBitIdentical pins the degenerate path: one
// component superposes to itself, and the 2-state general LST is
// bit-for-bit the MMPP2 closed form.
func TestSuperposeSingleBitIdentical(t *testing.T) {
	m2 := MMPP2{R0: 1.75, R1: 23.5, Q01: 0.37, Q10: 1.29}
	sup, err := SuperposeMMPP2(m2)
	if err != nil {
		t.Fatal(err)
	}
	if got := sup.Chain.N(); got != 2 {
		t.Fatalf("single superposed MMPP2 has %d states, want 2", got)
	}
	general, err := sup.InterarrivalLaplace()
	if err != nil {
		t.Fatal(err)
	}
	closed, err := m2.InterarrivalLaplace()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []float64{0, 1e-6, 0.01, 0.5, 1, 7.3, 42, 1e4} {
		g, c := general(s), closed(s)
		if g != c {
			t.Errorf("A*(%g): general %v != closed form %v", s, g, c)
		}
	}
}

// TestSuperposePoissonMerge: merging Poissons (R0 == R1) is a Poisson
// with the summed rate, so the superposed LST must equal λ/(λ+s).
func TestSuperposePoissonMerge(t *testing.T) {
	sup, err := SuperposeMMPP2(
		MMPP2{R0: 3, R1: 3, Q01: 1, Q10: 2},
		MMPP2{R0: 5, R1: 5, Q01: 4, Q10: 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	lap, err := sup.InterarrivalLaplace()
	if err != nil {
		t.Fatal(err)
	}
	const lam = 8.0
	for _, s := range []float64{0, 0.1, 1, 5, 20} {
		wantClose(t, "poisson merge LST", lap(s), lam/(lam+s), 1e-10)
	}
}

func TestSuperposeScaleRates(t *testing.T) {
	sup, err := SuperposeMMPP2(
		MMPP2{R0: 2, R1: 11, Q01: 0.5, Q10: 1.5},
		MMPP2{R0: 1, R1: 6, Q01: 2, Q10: 3},
	)
	if err != nil {
		t.Fatal(err)
	}
	lam, err := sup.MeanRate()
	if err != nil {
		t.Fatal(err)
	}
	scaled := sup.ScaleRates(0.25)
	slam, err := scaled.MeanRate()
	if err != nil {
		t.Fatal(err)
	}
	wantClose(t, "scaled mean rate", slam, 0.25*lam, 1e-12)
	lap, err := scaled.InterarrivalLaplace()
	if err != nil {
		t.Fatal(err)
	}
	m1, _ := lstMoments(lap, 1e-4*slam)
	wantClose(t, "scaled LST mean", m1, 1/slam, 1e-6)
	if scaled.Chain != sup.Chain {
		t.Error("ScaleRates rebuilt the modulating chain")
	}
}

func TestSuperposeValidation(t *testing.T) {
	if _, err := Superpose(); err == nil {
		t.Error("empty superposition accepted")
	}
	if _, err := SuperposeMMPP2(); err == nil {
		t.Error("empty MMPP2 superposition accepted")
	}
	if _, err := SuperposeMMPP2(MMPP2{R0: -1, R1: 1, Q01: 1, Q10: 1}); err == nil {
		t.Error("invalid component accepted")
	}
	// The product-space cap: 21 two-state components need 2^21 > 2^20
	// states, so Superpose must refuse rather than allocate.
	comps := make([]*MMPP, 21)
	for i := range comps {
		comps[i] = MMPP2{R0: 1, R1: 2, Q01: 1, Q10: 1}.General()
		comps[i].pi = []float64{0.5, 0.5}
	}
	if _, err := Superpose(comps...); err == nil {
		t.Error("oversized product state space accepted")
	}
}
