package mmpp

import (
	"math"
	"testing"

	"hap/internal/core"
	"hap/internal/markov"
)

func wantClose(t *testing.T, name string, got, want, relTol float64) {
	t.Helper()
	ref := math.Max(1e-12, math.Abs(want))
	if math.Abs(got-want)/ref > relTol {
		t.Errorf("%s = %v, want %v (rel tol %v)", name, got, want, relTol)
	}
}

func TestMMPP2Stationary(t *testing.T) {
	m2 := MMPP2{R0: 1, R1: 10, Q01: 0.2, Q10: 0.8}
	if err := m2.Validate(); err != nil {
		t.Fatal(err)
	}
	wantClose(t, "p0", m2.StationaryP0(), 0.8, 1e-12)
	wantClose(t, "mean", m2.MeanRate(), 0.8*1+0.2*10, 1e-12)
	wantClose(t, "var", m2.RateVariance(), 0.8*0.2*81, 1e-12)
	wantClose(t, "tau", m2.CorrelationTime(), 1.0, 1e-12)
	if m2.AsymptoticIDC() <= 1 {
		t.Error("modulated process must have IDC > 1")
	}
}

func TestMMPP2GeneralAgrees(t *testing.T) {
	m2 := MMPP2{R0: 2, R1: 7, Q01: 0.3, Q10: 0.5}
	g := m2.General()
	rate, err := g.MeanRate()
	if err != nil {
		t.Fatal(err)
	}
	wantClose(t, "mean", rate, m2.MeanRate(), 1e-8)
	v, err := g.RateVariance()
	if err != nil {
		t.Fatal(err)
	}
	wantClose(t, "var", v, m2.RateVariance(), 1e-7)
	idc, err := g.AsymptoticIDC(m2.CorrelationTime())
	if err != nil {
		t.Fatal(err)
	}
	wantClose(t, "idc", idc, m2.AsymptoticIDC(), 1e-7)
}

func TestFromHAPSimplifiedMeanRate(t *testing.T) {
	// The truncated simplified chain's stationary mean rate must recover
	// Equation 4's λ̄ = 8.25 once the bounds are wide enough.
	m := core.PaperParams(20)
	maxU, maxA := DefaultBounds(m, 8)
	proc, lat, err := FromHAPSimplified(m, maxU, maxA)
	if err != nil {
		t.Fatal(err)
	}
	if lat.N() != (maxU+1)*(maxA+1) {
		t.Fatalf("lattice size %d", lat.N())
	}
	rate, err := proc.MeanRate()
	if err != nil {
		t.Fatal(err)
	}
	wantClose(t, "mean rate", rate, 8.25, 2e-3)
}

func TestFromHAPSimplifiedMarginals(t *testing.T) {
	// Users must be Poisson(ν) and total applications Poisson(ν·l·a')
	// marginally.
	m := core.PaperParams(20)
	proc, lat, err := FromHAPSimplified(m, 40, 120)
	if err != nil {
		t.Fatal(err)
	}
	pi, err := proc.Stationary()
	if err != nil {
		t.Fatal(err)
	}
	meanX := markov.ExpectedValue(pi, func(s int) float64 { return float64(lat.At(s, 0)) })
	meanY := markov.ExpectedValue(pi, func(s int) float64 { return float64(lat.At(s, 1)) })
	wantClose(t, "mean users", meanX, 5.5, 5e-3)
	wantClose(t, "mean apps", meanY, 27.5, 5e-3)
	// Variance of y: the exact cascade formula
	// ν·l·a' + (l·a')²·ν·μ'/(μ+μ') = 27.5 + 137.5·(0.01/0.011) = 152.5,
	// below the conditional-equilibrium 165 because the application
	// population low-pass filters the user fluctuations.
	varY := markov.ExpectedValue(pi, func(s int) float64 {
		d := float64(lat.At(s, 1)) - meanY
		return d * d
	})
	wantClose(t, "var apps", varY, StationaryAppVariance(m), 0.01)
	wantClose(t, "var apps closed form", StationaryAppVariance(m), 152.5, 1e-9)
	if varY <= 27.5 || varY >= 165 {
		t.Errorf("var(y) = %v must lie between the Poisson floor and the equilibrium ceiling", varY)
	}
}

func TestFromHAPFullMatchesSimplifiedOnSymmetric(t *testing.T) {
	// Small symmetric model: the full per-type chain and the aggregated
	// (x, y) chain must give identical mean rates and rate variances.
	m := core.NewSymmetric(0.5, 0.25, 0.4, 0.5, 2, 50, 2, 2)
	full, _, err := FromHAP(m, 10, []int{12, 12})
	if err != nil {
		t.Fatal(err)
	}
	simp, _, err := FromHAPSimplified(m, 10, 24)
	if err != nil {
		t.Fatal(err)
	}
	rf, err := full.MeanRate()
	if err != nil {
		t.Fatal(err)
	}
	rs, err := simp.MeanRate()
	if err != nil {
		t.Fatal(err)
	}
	wantClose(t, "rates agree", rf, rs, 1e-3)
	wantClose(t, "analytic", rf, m.MeanRate(), 5e-3)
	vf, _ := full.RateVariance()
	vs, _ := simp.RateVariance()
	wantClose(t, "variances agree", vf, vs, 5e-3)
}

func TestFromHAPGeneralAsymmetric(t *testing.T) {
	// A small asymmetric model exercises the general constructor; its mean
	// rate must match Equation 4.
	m := &core.Model{
		Name: "tiny", Lambda: 0.6, Mu: 0.3,
		Apps: []core.AppType{
			{Name: "a", Lambda: 0.5, Mu: 1, Messages: []core.MessageType{{Name: "m1", Lambda: 3, Mu: 100}}},
			{Name: "b", Lambda: 0.2, Mu: 0.5, Messages: []core.MessageType{
				{Name: "m2", Lambda: 1, Mu: 100}, {Name: "m3", Lambda: 2, Mu: 100},
			}},
		},
	}
	proc, _, err := FromHAP(m, 14, []int{10, 10})
	if err != nil {
		t.Fatal(err)
	}
	rate, err := proc.MeanRate()
	if err != nil {
		t.Fatal(err)
	}
	wantClose(t, "eq4", rate, m.MeanRate(), 0.01)
}

func TestInterarrivalMixture(t *testing.T) {
	m := core.PaperParams(20)
	proc, _, err := FromHAPSimplified(m, 40, 120)
	if err != nil {
		t.Fatal(err)
	}
	w, r, rate, err := proc.InterarrivalMixture()
	if err != nil {
		t.Fatal(err)
	}
	if len(w) != len(r) || len(w) == 0 {
		t.Fatal("empty mixture")
	}
	var sum float64
	for _, x := range w {
		sum += x
	}
	wantClose(t, "weights sum", sum, 1, 1e-9)
	wantClose(t, "rate", rate, 8.25, 5e-3)
	for _, rr := range r {
		if rr <= 0 {
			t.Fatal("zero-rate branch leaked into mixture")
		}
	}
}

func TestFitFromHAP(t *testing.T) {
	m := core.PaperParams(20)
	fit, err := FitFromHAP(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := fit.Validate(); err != nil {
		t.Fatal(err)
	}
	wantClose(t, "fit mean", fit.MeanRate(), 8.25, 1e-9)
	// Var(R) = (0.3)²·152.5 = 13.725.
	wantClose(t, "fit var", fit.RateVariance(), 13.725, 1e-9)
	wantClose(t, "fit tau", fit.CorrelationTime(), 100, 1e-9) // 1/μ'
	if _, err := FitFromHAP(core.Figure5Example()); err == nil {
		t.Error("asymmetric fit must be rejected")
	}
}

func TestFitMMPP2Clamps(t *testing.T) {
	// Huge variance forces R0 to clamp at 0 (an IPP).
	f, err := FitMMPP2(1, 100, 2)
	if err != nil {
		t.Fatal(err)
	}
	if f.R0 != 0 {
		t.Errorf("R0 = %v, want clamp to 0", f.R0)
	}
	if _, err := FitMMPP2(0, 1, 1); err == nil {
		t.Error("zero mean must be rejected")
	}
}

func TestConstructorValidation(t *testing.T) {
	m := core.PaperParams(20)
	if _, _, err := FromHAPSimplified(core.Figure5Example(), 10, 10); err == nil {
		t.Error("asymmetric simplified must fail")
	}
	if _, _, err := FromHAPSimplified(m, 0, 10); err == nil {
		t.Error("zero bound must fail")
	}
	if _, _, err := FromHAP(m, 10, []int{1, 2}); err == nil {
		t.Error("wrong bound arity must fail")
	}
	defer func() {
		if recover() == nil {
			t.Error("mismatched rates must panic")
		}
	}()
	New(markov.NewChain(3), []float64{1, 2})
}

func TestInterarrivalLaplace(t *testing.T) {
	// Poisson degeneracy: R0 = R1 = λ must give exactly λ/(λ+s).
	const lam = 7.0
	pois := MMPP2{R0: lam, R1: lam, Q01: 3, Q10: 5}
	A, err := pois.InterarrivalLaplace()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []float64{0, 0.1, 1, 10, 100} {
		want := lam / (lam + s)
		if got := A(s); math.Abs(got-want) > 1e-12 {
			t.Errorf("Poisson degeneracy: A*(%g) = %v, want %v", s, got, want)
		}
	}

	// A genuinely bursty process: A*(0) = 1, transform decreasing in s,
	// and the numerical mean −A*'(0) must equal 1/λ̄ (arrival-stationary
	// interarrival mean).
	m := MMPP2{R0: 2, R1: 40, Q01: 0.5, Q10: 1.5}
	A, err = m.InterarrivalLaplace()
	if err != nil {
		t.Fatal(err)
	}
	if got := A(0); math.Abs(got-1) > 1e-12 {
		t.Errorf("A*(0) = %v, want 1", got)
	}
	if !(A(1) > A(2) && A(2) > A(10)) {
		t.Error("A* is not decreasing in s")
	}
	const h = 1e-6
	mean := -(A(h) - A(-h)) / (2 * h)
	want := 1 / m.MeanRate()
	if math.Abs(mean-want) > 1e-6*want {
		t.Errorf("numerical mean −A*'(0) = %v, want 1/λ̄ = %v", mean, want)
	}

	// The transform feeds gm1 directly: a fitted-MMPP2 delay must exceed
	// the Poisson (M/M/1) delay at equal load, since c² > 1.
	if idc := m.AsymptoticIDC(); !(idc > 1) {
		t.Fatalf("test process not bursty (IDC %v)", idc)
	}

	// Invalid parameters are rejected.
	if _, err := (MMPP2{R0: -1, R1: 1, Q01: 1, Q10: 1}).InterarrivalLaplace(); err == nil {
		t.Error("negative rate accepted")
	}
	if _, err := (MMPP2{R0: 0, R1: 0, Q01: 1, Q10: 1}).InterarrivalLaplace(); err == nil {
		t.Error("zero-rate process accepted")
	}
}
