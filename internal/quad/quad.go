// Package quad provides the small numerical toolkit the HAP solvers need:
// adaptive quadrature on finite and semi-infinite intervals (for Laplace
// transforms of the closed-form interarrival density in Solution 2),
// root finding and damped fixed-point iteration (for the G/M/1 σ equation),
// and tolerance-controlled series summation (for the Poisson-mixture sums of
// the truncated-population variants).
//
// Everything is dependency-free and deterministic; tolerances are absolute
// unless noted.
package quad

import (
	"errors"
	"math"
)

// ErrNoConvergence is returned when an iteration exhausts its budget
// without meeting its tolerance.
var ErrNoConvergence = errors.New("quad: no convergence")

// Func is a real function of one real variable.
type Func func(x float64) float64

// Simpson integrates f over [a, b] with adaptive Simpson quadrature to the
// requested absolute tolerance. It panics if a > b.
func Simpson(f Func, a, b, tol float64) float64 {
	if a > b {
		panic("quad: Simpson needs a <= b")
	}
	if a == b {
		return 0
	}
	if tol <= 0 {
		tol = 1e-10
	}
	fa, fb := f(a), f(b)
	m := (a + b) / 2
	fm := f(m)
	whole := simpsonRule(a, b, fa, fm, fb)
	return adaptiveSimpson(f, a, b, fa, fm, fb, whole, tol, 50)
}

func simpsonRule(a, b, fa, fm, fb float64) float64 {
	return (b - a) / 6 * (fa + 4*fm + fb)
}

func adaptiveSimpson(f Func, a, b, fa, fm, fb, whole, tol float64, depth int) float64 {
	m := (a + b) / 2
	lm, rm := (a+m)/2, (m+b)/2
	flm, frm := f(lm), f(rm)
	left := simpsonRule(a, m, fa, flm, fm)
	right := simpsonRule(m, b, fm, frm, fb)
	if depth <= 0 {
		return left + right
	}
	if math.Abs(left+right-whole) <= 15*tol {
		return left + right + (left+right-whole)/15
	}
	return adaptiveSimpson(f, a, m, fa, flm, fm, left, tol/2, depth-1) +
		adaptiveSimpson(f, m, b, fm, frm, fb, right, tol/2, depth-1)
}

// ToInf integrates f over [a, ∞) by summing adaptive-Simpson integrals over
// geometrically growing windows until a window's contribution falls below
// tol. The integrand must decay to zero; scale sets the width of the first
// window (pass a characteristic time of the integrand, e.g. 1/rate).
func ToInf(f Func, a, scale, tol float64) float64 {
	if scale <= 0 {
		scale = 1
	}
	if tol <= 0 {
		tol = 1e-10
	}
	total := 0.0
	lo := a
	w := scale
	for i := 0; i < 200; i++ {
		hi := lo + w
		part := Simpson(f, lo, hi, tol/4)
		total += part
		if math.Abs(part) < tol && i > 2 {
			return total
		}
		lo = hi
		w *= 2
	}
	return total
}

// Trapezoid integrates f over [a, b] with n uniform panels. It is used in
// tests as an independent check on Simpson.
func Trapezoid(f Func, a, b float64, n int) float64 {
	if n < 1 {
		n = 1
	}
	h := (b - a) / float64(n)
	sum := (f(a) + f(b)) / 2
	for i := 1; i < n; i++ {
		sum += f(a + float64(i)*h)
	}
	return sum * h
}
