package quad

import (
	"context"
	"math"
)

// Bisect finds a root of f in [a, b] to absolute tolerance tol on x, and
// reports the number of bisection steps used. f(a) and f(b) must bracket a
// sign change; Bisect returns ErrNoConvergence otherwise.
func Bisect(f Func, a, b, tol float64) (float64, int, error) {
	fa, fb := f(a), f(b)
	if fa == 0 {
		return a, 0, nil
	}
	if fb == 0 {
		return b, 0, nil
	}
	if fa*fb > 0 {
		return 0, 0, ErrNoConvergence
	}
	iters := 0
	for iters < 200 && b-a > tol {
		iters++
		m := (a + b) / 2
		fm := f(m)
		if fm == 0 {
			return m, iters, nil
		}
		if fa*fm < 0 {
			b, fb = m, fm
		} else {
			a, fa = m, fm
		}
	}
	_ = fb
	return (a + b) / 2, iters, nil
}

// FixedPoint iterates x ← (1-damp)·x + damp·g(x) until |g(x)-x| < tol or
// maxIter is exhausted. damp = 0.5 reproduces the paper's σ-algorithm, which
// averages the previous iterate with the map value at every step.
// It returns the final iterate, the number of iterations used, and
// ErrNoConvergence when the budget runs out.
func FixedPoint(g Func, x0, damp, tol float64, maxIter int) (float64, int, error) {
	return FixedPointCtx(nil, g, x0, damp, tol, maxIter)
}

// FixedPointCtx is FixedPoint with cooperative cancellation: ctx (nil means
// "never cancelled") is polled every few iterations, and the context error
// is returned with the current iterate when it fires. The map g may be
// expensive (Laplace transforms of large mixtures), so long budgets want a
// cancel path.
func FixedPointCtx(ctx context.Context, g Func, x0, damp, tol float64, maxIter int) (float64, int, error) {
	if damp <= 0 || damp > 1 {
		damp = 0.5
	}
	if maxIter <= 0 {
		maxIter = 1000
	}
	x := x0
	for i := 1; i <= maxIter; i++ {
		if ctx != nil && i%32 == 0 {
			if err := ctx.Err(); err != nil {
				return x, i, err
			}
		}
		gx := g(x)
		if math.Abs(gx-x) < tol {
			return gx, i, nil
		}
		x = (1-damp)*x + damp*gx
	}
	return x, maxIter, ErrNoConvergence
}

// SumToTol sums term(0) + term(1) + ... stopping when |term(k)| stays below
// tol for a few consecutive terms (series with non-monotone leading terms,
// such as Poisson-weighted sums, need the grace window). maxTerms bounds the
// work; the partial sum is returned in all cases.
func SumToTol(term func(k int) float64, tol float64, maxTerms int) float64 {
	if maxTerms <= 0 {
		maxTerms = 1 << 20
	}
	if tol <= 0 {
		tol = 1e-14
	}
	var sum float64
	below := 0
	for k := 0; k < maxTerms; k++ {
		t := term(k)
		sum += t
		if math.Abs(t) < tol {
			below++
			if below >= 3 && k >= 3 {
				break
			}
		} else {
			below = 0
		}
	}
	return sum
}

// LogFactorial returns ln(k!) for k >= 0, used to evaluate Poisson weights
// without overflow.
func LogFactorial(k int) float64 {
	lg, _ := math.Lgamma(float64(k) + 1)
	return lg
}

// PoissonPMF returns e^{-m} m^k / k! computed in log space, safely for
// large m and k.
func PoissonPMF(k int, m float64) float64 {
	if m == 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	return math.Exp(float64(k)*math.Log(m) - m - LogFactorial(k))
}
