package quad

import (
	"math"
	"testing"
	"testing/quick"
)

func wantClose(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %v, want %v (tol %v)", name, got, want, tol)
	}
}

func TestSimpsonPolynomialExact(t *testing.T) {
	// Simpson is exact for cubics.
	f := func(x float64) float64 { return 3*x*x*x - 2*x + 1 }
	got := Simpson(f, 0, 2, 1e-12)
	wantClose(t, "∫cubic", got, 12-4+2, 1e-9)
}

func TestSimpsonExponential(t *testing.T) {
	f := func(x float64) float64 { return math.Exp(-x) }
	got := Simpson(f, 0, 10, 1e-12)
	wantClose(t, "∫e^-x", got, 1-math.Exp(-10), 1e-9)
}

func TestSimpsonEmptyAndInvalid(t *testing.T) {
	if Simpson(math.Sin, 1, 1, 1e-8) != 0 {
		t.Error("zero-width integral should be 0")
	}
	defer func() {
		if recover() == nil {
			t.Error("a > b should panic")
		}
	}()
	Simpson(math.Sin, 2, 1, 1e-8)
}

func TestToInfExponentialDensity(t *testing.T) {
	for _, rate := range []float64{0.1, 1, 8.25, 100} {
		r := rate
		f := func(x float64) float64 { return r * math.Exp(-r*x) }
		got := ToInf(f, 0, 1/r, 1e-11)
		wantClose(t, "∫λe^-λt", got, 1, 1e-7)
		mean := ToInf(func(x float64) float64 { return x * f(x) }, 0, 1/r, 1e-12)
		wantClose(t, "mean", mean, 1/r, 1e-6/r)
	}
}

func TestToInfGaussianTail(t *testing.T) {
	f := func(x float64) float64 { return math.Exp(-x * x / 2) }
	got := ToInf(f, 0, 1, 1e-11)
	wantClose(t, "half gaussian", got, math.Sqrt(math.Pi/2), 1e-7)
}

func TestTrapezoidAgreesWithSimpson(t *testing.T) {
	f := func(x float64) float64 { return math.Sin(x) * math.Exp(-x/3) }
	s := Simpson(f, 0, 5, 1e-12)
	tr := Trapezoid(f, 0, 5, 200000)
	wantClose(t, "trapezoid vs simpson", tr, s, 1e-6)
}

func TestBisect(t *testing.T) {
	root, _, err := Bisect(func(x float64) float64 { return x*x - 2 }, 0, 2, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	wantClose(t, "sqrt2", root, math.Sqrt2, 1e-10)

	if _, _, err := Bisect(func(x float64) float64 { return x*x + 1 }, -1, 1, 1e-10); err == nil {
		t.Error("expected ErrNoConvergence for non-bracketing interval")
	}
	// Roots at endpoints.
	r, _, err := Bisect(func(x float64) float64 { return x }, 0, 1, 1e-10)
	if err != nil || r != 0 {
		t.Errorf("endpoint root: got %v, %v", r, err)
	}
}

func TestFixedPointConverges(t *testing.T) {
	// x = cos(x) has the Dottie number fixed point ~0.739085.
	x, n, err := FixedPoint(math.Cos, 0.5, 0.5, 1e-12, 500)
	if err != nil {
		t.Fatal(err)
	}
	wantClose(t, "dottie", x, 0.7390851332151607, 1e-9)
	if n <= 0 {
		t.Error("iteration count not reported")
	}
}

func TestFixedPointPaperSigmaAnalogue(t *testing.T) {
	// For M/M/1 the σ equation A*(μ-μσ)=σ with A* = λ/(λ+s) has the root
	// σ = ρ. Check the paper's damp=0.5 averaging iteration finds it.
	lambda, mu := 8.25, 20.0
	g := func(sig float64) float64 { return lambda / (lambda + mu - mu*sig) }
	x, _, err := FixedPoint(g, 0.5, 0.5, 1e-13, 2000)
	if err != nil {
		t.Fatal(err)
	}
	wantClose(t, "sigma", x, lambda/mu, 1e-9)
}

func TestFixedPointBudgetExhausted(t *testing.T) {
	_, _, err := FixedPoint(func(x float64) float64 { return x + 1 }, 0, 0.5, 1e-12, 10)
	if err == nil {
		t.Error("diverging map should report ErrNoConvergence")
	}
}

func TestSumToTolGeometric(t *testing.T) {
	got := SumToTol(func(k int) float64 { return math.Pow(0.5, float64(k)) }, 1e-15, 0)
	wantClose(t, "Σ2^-k", got, 2, 1e-12)
}

func TestSumToTolPoissonMass(t *testing.T) {
	for _, m := range []float64{0.3, 5.5, 40} {
		mm := m
		got := SumToTol(func(k int) float64 { return PoissonPMF(k, mm) }, 1e-16, 0)
		wantClose(t, "Σ poisson pmf", got, 1, 1e-10)
		mean := SumToTol(func(k int) float64 { return float64(k) * PoissonPMF(k, mm) }, 1e-16, 0)
		wantClose(t, "poisson mean", mean, mm, 1e-8)
	}
}

func TestPoissonPMFEdge(t *testing.T) {
	if PoissonPMF(0, 0) != 1 || PoissonPMF(3, 0) != 0 {
		t.Error("m=0 PMF wrong")
	}
	wantClose(t, "pmf(2,2)", PoissonPMF(2, 2), 2*math.Exp(-2), 1e-12)
}

func TestLogFactorial(t *testing.T) {
	want := 0.0
	for k := 1; k <= 20; k++ {
		want += math.Log(float64(k))
		wantClose(t, "lnfact", LogFactorial(k), want, 1e-9)
	}
}

// Property: Simpson over [0,b] of any exponential-family density stays
// within [0,1] and increases with b.
func TestQuickSimpsonCDFMonotone(t *testing.T) {
	f := func(rate, b1, b2 float64) bool {
		lam := math.Abs(rate)
		if lam < 0.01 || lam > 100 || math.IsNaN(lam) {
			lam = 1
		}
		x1, x2 := math.Abs(b1), math.Abs(b2)
		if x1 > 20 {
			x1 = math.Mod(x1, 20)
		}
		if x2 > 20 {
			x2 = math.Mod(x2, 20)
		}
		if x1 > x2 {
			x1, x2 = x2, x1
		}
		den := func(x float64) float64 { return lam * math.Exp(-lam*x) }
		i1 := Simpson(den, 0, x1, 1e-10)
		i2 := Simpson(den, 0, x2, 1e-10)
		return i1 >= -1e-9 && i2 <= 1+1e-9 && i1 <= i2+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: bisection root of x - c = 0 recovers c for any c in range.
func TestQuickBisectLinear(t *testing.T) {
	f := func(c float64) bool {
		cc := math.Mod(math.Abs(c), 10)
		root, _, err := Bisect(func(x float64) float64 { return x - cc }, -1, 11, 1e-10)
		return err == nil && math.Abs(root-cc) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
