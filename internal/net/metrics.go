package net

import "hap/internal/obs"

// Network-layer observability. Counters aggregate across every run in the
// process (replications included — they are atomic); the queue-depth
// gauges show the most recent flush of whichever run last touched each
// node name. The driver batches deltas locally and flushes on a watermark
// so the per-packet hot path never touches an atomic.
var (
	obsForwarded = obs.NewCounter("hap_net_packets_forwarded_total",
		"Packets forwarded node-to-node inside simulated networks.")
	obsDelivered = obs.NewCounter("hap_net_packets_delivered_total",
		"Packets that completed their journey in simulated networks.")
	obsDropped = obs.NewCounter("hap_net_packets_dropped_total",
		"Packets lost in simulated networks (full buffers and hop-limit).")
	obsRuns = obs.NewCounter("hap_net_runs_total",
		"Completed network simulation runs.")
	obsNodes = obs.NewGauge("hap_net_nodes",
		"Node count of the most recently started network run.")
	obsQueueDepth = obs.NewGaugeVec("hap_net_node_queue_depth",
		"Per-node number in system at the last flush of the most recent run touching the node.", "node")
	obsHops = obs.NewCounterVec("hap_net_hops_total",
		"Delivered packets by hop count.", "hops")
)

// obsFlushMask sets the flush cadence: every 4096 packet events, matching
// the engine's context-poll period — frequent enough for a live scrape to
// see motion, rare enough to vanish from the profile.
const obsFlushMask = 1<<12 - 1

// netObsBatch accumulates metric deltas between flushes. One per driver,
// so parallel replications batch independently and only meet at the
// atomic counters.
type netObsBatch struct {
	forwarded, delivered, dropped int64
	ticks                         int
	depth                         []*obs.Gauge // child gauges cached per node at start
}

func (b *netObsBatch) start(d *driver) {
	obsNodes.Set(int64(len(d.topo.Nodes)))
	b.depth = make([]*obs.Gauge, len(d.topo.Nodes))
	for j := range b.depth {
		b.depth[j] = obsQueueDepth.With(d.topo.NodeName(j))
	}
}

func (b *netObsBatch) tick(d *driver) {
	b.ticks++
	if b.ticks&obsFlushMask == 0 {
		b.flush(d)
	}
}

func (b *netObsBatch) flush(d *driver) {
	if b.forwarded != 0 {
		obsForwarded.Add(b.forwarded)
		b.forwarded = 0
	}
	if b.delivered != 0 {
		obsDelivered.Add(b.delivered)
		b.delivered = 0
	}
	if b.dropped != 0 {
		obsDropped.Add(b.dropped)
		b.dropped = 0
	}
	for j, g := range b.depth {
		g.Set(int64(d.eng.StationQueueLen(d.nodeSt[j])))
	}
}

func (b *netObsBatch) finish(d *driver) {
	b.flush(d)
	for h, n := range d.e2e.Hops {
		if n > 0 {
			obsHops.With(itoa(h)).Add(n)
		}
	}
	obsRuns.Inc()
}
