package net

import (
	"context"
	"math"
	"math/rand"
	"time"

	"hap/internal/core"
	"hap/internal/dist"
	"hap/internal/haperr"
	"hap/internal/mmpp"
	"hap/internal/par"
	"hap/internal/sim"
	"hap/internal/stats"
)

// Config drives one network run.
type Config struct {
	// Horizon is the simulated time to cover.
	Horizon float64
	// Seed makes the run reproducible: all node and source streams derive
	// from it by index alone (see Run), so a (topology, ingresses, seed)
	// triple pins the sample path bit for bit.
	Seed int64
	// MaxEvents caps the engine event count (0 = unlimited).
	MaxEvents int64
	// MaxHops drops a packet that has been served at this many nodes
	// without reaching a destination (0 = 1024). It bounds destination-less
	// random walks on cyclic topologies; shortest-path traffic never gets
	// near it.
	MaxHops int
	// KeepPaths retains the visited-node paths of up to this many delivered
	// packets in Result.Paths (0 = none).
	KeepPaths int
	// Measure configures every node's per-station collector.
	Measure sim.MeasureConfig
	// Ctx, when non-nil, is polled by the event loop; cancellation stops
	// the run early, marked truncated with Err set.
	Ctx context.Context
}

func (cfg Config) validate() error {
	if !(cfg.Horizon > 0) || math.IsInf(cfg.Horizon, 1) {
		return haperr.Badf("net: horizon must be positive and finite (got %v)", cfg.Horizon)
	}
	if cfg.MaxEvents < 0 || cfg.MaxHops < 0 || cfg.KeepPaths < 0 {
		return haperr.Badf("net: max events, max hops and keep paths must be non-negative")
	}
	return nil
}

// Ingress binds one external traffic source to an entry node.
type Ingress struct {
	// Node is the entry node index.
	Node int
	// Dst is the destination node: >= 0 routes every packet along the
	// precomputed shortest-path table; < 0 lets packets walk link weights
	// until they reach a sink (a node with no out-links).
	Dst int
	// Make builds the source from its dedicated arrival stream. The
	// source's own service law is ignored — each node's exponential server
	// governs service at that node.
	Make func(arrival *rand.Rand) sim.Source
}

// HAPIngress attaches a 3-level HAP source.
func HAPIngress(m *core.Model, node, dst int) Ingress {
	return Ingress{Node: node, Dst: dst, Make: func(r *rand.Rand) sim.Source {
		return sim.NewHAPSource(m, r)
	}}
}

// PoissonIngress attaches a Poisson source with the given packet rate.
func PoissonIngress(rate float64, node, dst int) Ingress {
	return Ingress{Node: node, Dst: dst, Make: func(r *rand.Rand) sim.Source {
		return sim.NewPoissonSource(rate, dist.NewExponential(1), r)
	}}
}

// OnOffIngress attaches the paper's two-level ON-OFF reduction.
func OnOffIngress(tl *core.TwoLevel, node, dst int) Ingress {
	return Ingress{Node: node, Dst: dst, Make: func(r *rand.Rand) sim.Source {
		return sim.NewOnOffSource(tl, r)
	}}
}

// MMPPIngress attaches an MMPP source.
func MMPPIngress(proc *mmpp.MMPP, node, dst int) Ingress {
	return Ingress{Node: node, Dst: dst, Make: func(r *rand.Rand) sim.Source {
		return sim.NewMMPPSource(proc, dist.NewExponential(1), r)
	}}
}

// NodeCounts is one node's packet accounting.
type NodeCounts struct {
	Name string
	// In counts packets admitted to the node's queue (external + forwarded).
	In int64
	// Forwarded counts packets sent onward after service here.
	Forwarded int64
	// Delivered counts packets that ended their journey here.
	Delivered int64
	// DroppedFull counts packets refused because the buffer was full.
	DroppedFull int64
}

// EndToEnd accumulates whole-journey statistics across all delivered
// packets of a run (or, after Merge, of many runs).
type EndToEnd struct {
	// Sojourn is the network time of delivered packets: entry to final
	// service completion, all queueing, service and link delays included.
	Sojourn stats.Welford
	// PerHop[h] collects the node sojourn (wait + service) of every
	// packet's (h+1)-th hop — the per-hop delay breakdown.
	PerHop []stats.Welford
	// Hops[h] counts delivered packets served at exactly h nodes (the
	// entry node included, so a direct single-node delivery is h = 1).
	Hops []int64
	// Offered counts external packets presented to ingress nodes.
	Offered int64
	// Delivered counts packets that reached a destination or sink.
	Delivered int64
	// DroppedFull counts packets lost to full buffers (any node).
	DroppedFull int64
	// DroppedHops counts packets dropped at the MaxHops safety limit.
	DroppedHops int64
}

// Merge folds another accumulator into this one.
func (a *EndToEnd) Merge(b *EndToEnd) {
	a.Sojourn.Merge(&b.Sojourn)
	for len(a.PerHop) < len(b.PerHop) {
		a.PerHop = append(a.PerHop, stats.Welford{})
	}
	for h := range b.PerHop {
		a.PerHop[h].Merge(&b.PerHop[h])
	}
	for len(a.Hops) < len(b.Hops) {
		a.Hops = append(a.Hops, 0)
	}
	for h, n := range b.Hops {
		a.Hops[h] += n
	}
	a.Offered += b.Offered
	a.Delivered += b.Delivered
	a.DroppedFull += b.DroppedFull
	a.DroppedHops += b.DroppedHops
}

// Result is a completed network run (or, from RunReplicated, the merge of
// several).
type Result struct {
	Topology string
	// PerNode[j] is node j's station collector: waiting-time and
	// queue-length statistics local to that node.
	PerNode []*sim.Measurements
	// Node[j] is node j's packet accounting.
	Node []NodeCounts
	// E2E is the whole-journey accumulator.
	E2E EndToEnd
	// InFlight counts packets still queued, in service or on a link when
	// the run stopped.
	InFlight int64
	// Paths holds the visited-node paths of the first Config.KeepPaths
	// delivered packets.
	Paths [][]int32
	// Events is the engine event count.
	Events int64
	// Truncated reports an event-budget or cancellation stop before the
	// horizon.
	Truncated bool
	Err       error
	Elapsed   time.Duration

	// Reps holds the per-replication results when this result came from
	// RunReplicated (nil for a single run).
	Reps []*Result
	// HalfWidth is the 95% confidence half-width of the mean end-to-end
	// sojourn across replications (RunReplicated with >= 2 reps).
	HalfWidth float64
	repMeans  stats.Welford
}

// errResult reports an invalid input without running anything.
func errResult(t *Topology, err error) *Result {
	return &Result{Topology: t.Name, Err: err}
}

const defaultMaxHops = 1024

// packet is one in-flight network packet. The driver owns a free-listed
// table of these; the engine carries only the int32 handle.
type packet struct {
	entry float64 // network entry time
	dst   int32   // destination node, -1 for sink-routed
	class int32   // message class from the source, preserved end to end
	hops  int32   // nodes served so far
	path  []int32 // visited nodes, in order
}

// driver wires a compiled topology into one engine and owns all mutable
// per-run state. Everything is local to a single Run call; nothing is
// shared across replications except the immutable topology.
type driver struct {
	topo   *Topology
	eng    *sim.Engine
	cfg    Config
	nodeSt []int32 // node j's engine station
	// node j's service law, boxed once so the per-packet ArrivePacketAt
	// call does not heap-allocate an interface value.
	svcLaw  []dist.Distribution
	routeRn []*rand.Rand // node j's routing stream
	counts  []NodeCounts
	e2e     EndToEnd
	paths   [][]int32
	maxHops int32

	pkts []packet
	free []int32

	obs netObsBatch
}

func (d *driver) alloc(entry float64, node, dst, class int32) int32 {
	var h int32
	if n := len(d.free); n > 0 {
		h = d.free[n-1]
		d.free = d.free[:n-1]
	} else {
		d.pkts = append(d.pkts, packet{})
		h = int32(len(d.pkts) - 1)
	}
	p := &d.pkts[h]
	p.entry, p.dst, p.class, p.hops = entry, dst, class, 0
	p.path = append(p.path[:0], node)
	return h
}

func (d *driver) release(h int32) { d.free = append(d.free, h) }

// admit reports whether node j can accept one more packet right now.
func (d *driver) admit(j int32) bool {
	b := d.topo.Nodes[j].Buffer
	return b == 0 || d.eng.StationQueueLen(d.nodeSt[j]) < b
}

// ingressArrive is the per-source entry point: source class is preserved,
// the source's service law is discarded in favour of the entry node's.
func (d *driver) ingressArrive(node int32, dst int32, class int) {
	d.e2e.Offered++
	d.obs.tick(d)
	if !d.admit(node) {
		d.counts[node].DroppedFull++
		d.e2e.DroppedFull++
		d.obs.dropped++
		return
	}
	pkt := d.alloc(d.eng.Now(), node, dst, int32(class))
	d.counts[node].In++
	d.eng.ArrivePacketAt(d.nodeSt[node], d.svcLaw[node], class, pkt)
}

// packetDone fires when a packet finishes service at a node: record the
// hop, then deliver, forward or drop.
func (d *driver) packetDone(sti, pkt int32, class int, sojourn float64) {
	node := sti - 1 // station 0 is the engine's built-in default; nodes follow
	p := &d.pkts[pkt]
	h := p.hops
	p.hops++
	for int(h) >= len(d.e2e.PerHop) {
		d.e2e.PerHop = append(d.e2e.PerHop, stats.Welford{})
	}
	d.e2e.PerHop[h].Add(sojourn)
	d.obs.tick(d)

	t := d.topo
	if node == p.dst || len(t.out[node]) == 0 {
		d.deliverFinal(node, p, pkt)
		return
	}
	if p.hops >= d.maxHops {
		d.e2e.DroppedHops++
		d.obs.dropped++
		d.release(pkt)
		return
	}
	var li int32
	switch {
	case p.dst >= 0:
		li = t.nextHop[node][p.dst]
	case len(t.out[node]) == 1:
		li = t.out[node][0]
	default:
		li = t.out[node][t.choose[node].Sample(d.routeRn[node])]
	}
	l := &t.Links[li]
	d.counts[node].Forwarded++
	d.obs.forwarded++
	d.eng.ScheduleDeliver(d.eng.Now()+l.Delay, d.nodeSt[l.To], pkt)
}

func (d *driver) deliverFinal(node int32, p *packet, pkt int32) {
	d.e2e.Sojourn.Add(d.eng.Now() - p.entry)
	hops := int(p.hops)
	for hops >= len(d.e2e.Hops) {
		d.e2e.Hops = append(d.e2e.Hops, 0)
	}
	d.e2e.Hops[hops]++
	d.e2e.Delivered++
	d.counts[node].Delivered++
	d.obs.delivered++
	if len(d.paths) < d.cfg.KeepPaths {
		d.paths = append(d.paths, append([]int32(nil), p.path...))
	}
	d.release(pkt)
}

// deliver fires when a forwarded packet reaches its next node after the
// link delay; the buffer is re-checked at arrival time, not send time.
func (d *driver) deliver(sti, pkt int32) {
	node := sti - 1
	p := &d.pkts[pkt]
	d.obs.tick(d)
	if !d.admit(node) {
		d.counts[node].DroppedFull++
		d.e2e.DroppedFull++
		d.obs.dropped++
		d.release(pkt)
		return
	}
	p.path = append(p.path, node)
	d.counts[node].In++
	d.eng.ArrivePacketAt(d.nodeSt[node], d.svcLaw[node], int(p.class), pkt)
}

// Run simulates the ingress traffic over the topology.
//
// Stream derivation is by index only, mirroring the sharded engine's
// determinism contract: source i draws arrivals from
// dist.SubSeed(cfg.Seed, i); node j draws service and routing from
// dist.SubSeed(cfg.Seed, -1-j) (negative indices so node and source
// streams can never collide). Nothing depends on scheduling or worker
// counts, so the same (topology, ingresses, seed) reproduces every
// statistic bit for bit — RunReplicated relies on this.
func Run(t *Topology, ings []Ingress, cfg Config) *Result {
	start := time.Now()
	if err := t.Validate(); err != nil {
		return errResult(t, err)
	}
	if err := cfg.validate(); err != nil {
		return errResult(t, err)
	}
	if len(ings) == 0 {
		return errResult(t, haperr.Badf("net: at least one ingress is required"))
	}
	n := len(t.Nodes)
	for i, ing := range ings {
		if ing.Node < 0 || ing.Node >= n {
			return errResult(t, haperr.Badf("net: ingress %d node %d out of range [0,%d)", i, ing.Node, n))
		}
		if ing.Dst >= n {
			return errResult(t, haperr.Badf("net: ingress %d destination %d out of range", i, ing.Dst))
		}
		if ing.Dst >= 0 && !t.Reaches(ing.Node, ing.Dst) {
			return errResult(t, haperr.Badf("net: ingress %d cannot reach destination %d from node %d", i, ing.Dst, ing.Node))
		}
		if ing.Make == nil {
			return errResult(t, haperr.Badf("net: ingress %d has no source constructor", i))
		}
	}

	d := &driver{
		topo:    t,
		cfg:     cfg,
		nodeSt:  make([]int32, n),
		svcLaw:  make([]dist.Distribution, n),
		routeRn: make([]*rand.Rand, n),
		counts:  make([]NodeCounts, n),
		maxHops: int32(cfg.MaxHops),
	}
	if d.maxHops == 0 {
		d.maxHops = defaultMaxHops
	}

	eng := sim.NewEngine(cfg.Horizon, dist.NewStreams(cfg.Seed).Next(), nil)
	d.eng = eng
	if cfg.MaxEvents > 0 {
		eng.SetMaxEvents(cfg.MaxEvents)
	}
	if cfg.Ctx != nil {
		eng.SetContext(cfg.Ctx)
	}

	perNode := make([]*sim.Measurements, n)
	for j := 0; j < n; j++ {
		streams := dist.NewStreams(dist.SubSeed(cfg.Seed, -1-j))
		perNode[j] = sim.NewMeasurements(cfg.Measure)
		d.nodeSt[j] = eng.AddStation(streams.Next(), perNode[j], true)
		d.routeRn[j] = streams.Next()
		d.svcLaw[j] = dist.NewExponential(t.Nodes[j].Mu)
		d.counts[j].Name = t.NodeName(j)
	}
	for i, ing := range ings {
		alias := eng.AddStation(nil, nil, false)
		node, dst := int32(ing.Node), int32(ing.Dst)
		if ing.Dst < 0 {
			dst = -1
		}
		eng.SetIngressHook(alias, func(svc dist.Distribution, class int) {
			d.ingressArrive(node, dst, class)
		})
		src := ing.Make(dist.NewStreams(dist.SubSeed(cfg.Seed, i)).Next())
		eng.InstallAt(src, alias)
	}
	eng.SetPacketDoneHook(d.packetDone)
	eng.SetDeliverHook(d.deliver)

	d.obs.start(d)
	eng.Run()
	d.obs.finish(d)

	return &Result{
		Topology:  t.Name,
		PerNode:   perNode,
		Node:      d.counts,
		E2E:       d.e2e,
		InFlight:  int64(len(d.pkts) - len(d.free)),
		Paths:     d.paths,
		Events:    eng.Processed(),
		Truncated: eng.Truncated(),
		Err:       eng.Err(),
		Elapsed:   time.Since(start),
	}
}

// RunReplicated executes reps independent replications across workers
// (<= 0 selects GOMAXPROCS) and merges them in replication order.
// Replication r runs with seed dist.SubSeed(cfg.Seed, r), so the merged
// result is a pure function of (topology, ingresses, cfg, reps) — worker
// count changes nothing, bit for bit.
func RunReplicated(t *Topology, ings []Ingress, cfg Config, reps, workers int) *Result {
	start := time.Now()
	if reps <= 0 {
		return errResult(t, haperr.Badf("net: reps must be positive (got %d)", reps))
	}
	runs := par.MapNCtx(cfg.Ctx, reps, workers, func(r int) *Result {
		c := cfg
		c.Seed = dist.SubSeed(cfg.Seed, r)
		return Run(t, ings, c)
	})
	agg := &Result{Topology: t.Name, Reps: runs}
	for _, r := range runs {
		if r == nil { // cancelled before this replication started
			agg.Truncated = true
			continue
		}
		if r.Err != nil && agg.Err == nil {
			agg.Err = r.Err
		}
		if agg.PerNode == nil {
			agg.PerNode = make([]*sim.Measurements, len(r.PerNode))
			agg.Node = make([]NodeCounts, len(r.Node))
			for j := range agg.PerNode {
				agg.PerNode[j] = sim.NewMeasurements(cfg.Measure)
			}
		}
		for j := range r.PerNode {
			agg.PerNode[j].Merge(r.PerNode[j])
			agg.Node[j].Name = r.Node[j].Name
			agg.Node[j].In += r.Node[j].In
			agg.Node[j].Forwarded += r.Node[j].Forwarded
			agg.Node[j].Delivered += r.Node[j].Delivered
			agg.Node[j].DroppedFull += r.Node[j].DroppedFull
		}
		agg.E2E.Merge(&r.E2E)
		agg.InFlight += r.InFlight
		agg.Events += r.Events
		agg.Truncated = agg.Truncated || r.Truncated
		agg.Paths = append(agg.Paths, r.Paths...)
		agg.repMeans.Add(r.E2E.Sojourn.Mean())
	}
	if nr := agg.repMeans.N(); nr >= 2 {
		agg.HalfWidth = 1.96 * agg.repMeans.Std() / math.Sqrt(float64(nr))
	}
	if cfg.Ctx != nil && cfg.Ctx.Err() != nil {
		agg.Truncated = true
		if agg.Err == nil {
			agg.Err = cfg.Ctx.Err()
		}
	}
	agg.Elapsed = time.Since(start)
	return agg
}
