package net

import (
	"math"
	"testing"

	"hap/internal/core"
	"hap/internal/dist"
	"hap/internal/sim"
)

// TestFanInMatchesSuperposedQueue is the acceptance check for the fan-in
// multiplexer: k HAP sources forwarded through near-instant edge nodes
// into one bottleneck must reproduce the same k sources superposed
// directly onto a single HAP/M/1 queue — the paper's multiplexing scenario
// — within 2% on mean delay at equal load.
//
// The comparison is run at matched randomness, not just matched
// distributions: the reference queue derives its k arrival streams and its
// service stream exactly as Run derives source i's (SubSeed(seed, i)) and
// bottleneck node k's (SubSeed(seed, -1-k)) streams, so the two sample
// paths differ only by the ~1/edgeMu forwarding delay and the test is not
// hostage to HAP's slow long-memory convergence.
func TestFanInMatchesSuperposedQueue(t *testing.T) {
	if testing.Short() {
		t.Skip("long validation run")
	}
	const (
		k       = 4
		edgeMu  = 1e5
		bottMu  = 50.0
		horizon = 20000.0
		warmup  = 1000.0
		seed    = 8250
	)
	model := core.PaperParams(bottMu) // λ̄ = 8.25 per source → ρ = 4·8.25/50 = 0.66

	topo := FanIn("mux", k, edgeMu, bottMu, 0, 0)
	ings := make([]Ingress, k)
	for i := range ings {
		ings[i] = HAPIngress(model, i, k)
	}
	netRes := Run(topo, ings, Config{
		Horizon: horizon,
		Seed:    seed,
		Measure: sim.MeasureConfig{Warmup: warmup},
	})
	if netRes.Err != nil {
		t.Fatal(netRes.Err)
	}
	netDelay := netRes.PerNode[k].MeanDelay()

	// Reference: the same k sources superposed onto one station, streams
	// derived identically.
	meas := sim.NewMeasurements(sim.MeasureConfig{Warmup: warmup})
	eng := sim.NewEngine(horizon, dist.NewStreams(seed).Next(), nil)
	st := eng.AddStation(dist.NewStreams(dist.SubSeed(seed, -1-k)).Next(), meas, true)
	for i := 0; i < k; i++ {
		src := sim.NewHAPSource(model, dist.NewStreams(dist.SubSeed(seed, i)).Next())
		eng.InstallAt(src, st)
	}
	eng.Run()
	refDelay := meas.MeanDelay()

	if refDelay <= 0 || netDelay <= 0 {
		t.Fatalf("degenerate delays: net %v, ref %v", netDelay, refDelay)
	}
	if rel := math.Abs(netDelay-refDelay) / refDelay; rel > 0.02 {
		t.Errorf("fan-in bottleneck mean delay %.5f vs superposed reference %.5f: %.2f%% apart, want <= 2%%",
			netDelay, refDelay, 100*rel)
	}

	// The edge nodes must be transparent at equal load: everything offered
	// is forwarded downstream.
	for i := 0; i < k; i++ {
		if netRes.Node[i].Forwarded != netRes.Node[i].In {
			t.Errorf("edge %d forwarded %d of %d admitted", i, netRes.Node[i].Forwarded, netRes.Node[i].In)
		}
	}
	if netRes.E2E.DroppedFull != 0 || netRes.E2E.DroppedHops != 0 {
		t.Errorf("unbounded fan-in dropped packets: full=%d hops=%d", netRes.E2E.DroppedFull, netRes.E2E.DroppedHops)
	}
}
