package net

import (
	"math"
	"runtime"
	"testing"

	"hap/internal/core"
	"hap/internal/sim"
)

func TestTopologyValidate(t *testing.T) {
	cases := []struct {
		name string
		topo *Topology
	}{
		{"empty", &Topology{}},
		{"zero mu", &Topology{Nodes: []Node{{Mu: 0}}}},
		{"negative buffer", &Topology{Nodes: []Node{{Mu: 1, Buffer: -1}}}},
		{"dangling link", &Topology{Nodes: []Node{{Mu: 1}}, Links: []Link{{From: 0, To: 3}}}},
		{"self loop", &Topology{Nodes: []Node{{Mu: 1}, {Mu: 1}}, Links: []Link{{From: 0, To: 0}}}},
		{"negative weight", &Topology{Nodes: []Node{{Mu: 1}, {Mu: 1}}, Links: []Link{{From: 0, To: 1, Weight: -2}}}},
		{"negative delay", &Topology{Nodes: []Node{{Mu: 1}, {Mu: 1}}, Links: []Link{{From: 0, To: 1, Delay: -1}}}},
	}
	for _, c := range cases {
		if err := c.topo.Validate(); err == nil {
			t.Errorf("%s: invalid topology accepted", c.name)
		}
	}
	if err := Tandem("ok", []float64{2, 3}, 0).Validate(); err != nil {
		t.Errorf("valid tandem rejected: %v", err)
	}
}

func TestRunRejectsBadIngress(t *testing.T) {
	topo := Tandem("t", []float64{2, 3}, 0)
	cfg := Config{Horizon: 10, Seed: 1}
	for name, ings := range map[string][]Ingress{
		"none":        {},
		"node range":  {PoissonIngress(1, 9, -1)},
		"dst range":   {PoissonIngress(1, 0, 9)},
		"unreachable": {PoissonIngress(1, 1, 0)}, // tandem links only run forward
	} {
		if r := Run(topo, ings, cfg); r.Err == nil {
			t.Errorf("%s: bad ingress accepted", name)
		}
	}
}

// TestBurkeJacksonTandem validates the network layer against product form:
// a tandem of M/M/1 nodes fed by Poisson(λ) has per-node sojourn
// 1/(μⱼ−λ) (Burke's theorem makes every internal flow Poisson(λ), Jackson
// gives the product form). Each node's mean must land within the 95%
// confidence half-width across replications (plus a small floor for the
// finite-horizon bias at a fixed seed).
func TestBurkeJacksonTandem(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-replication validation run")
	}
	const lambda = 1.0
	mus := []float64{2, 2.5, 3}
	topo := Tandem("burke", mus, 0)
	cfg := Config{
		Horizon: 5000,
		Seed:    20260808,
		Measure: sim.MeasureConfig{Warmup: 400},
	}
	agg := RunReplicated(topo, []Ingress{PoissonIngress(lambda, 0, len(mus)-1)}, cfg, 8, 0)
	if agg.Err != nil {
		t.Fatal(agg.Err)
	}
	for j, mu := range mus {
		want := 1 / (mu - lambda)
		// Rep-level half-width for this node's mean.
		var w welford
		for _, r := range agg.Reps {
			w.add(r.PerNode[j].MeanDelay())
		}
		hw := 1.96 * w.std() / math.Sqrt(float64(len(agg.Reps)))
		tol := hw + 0.02*want
		got := agg.PerNode[j].MeanDelay()
		if math.Abs(got-want) > tol {
			t.Errorf("node %d mean sojourn = %.4f, want %.4f ± %.4f", j, got, want, tol)
		}
	}
	// Sanity: end-to-end sojourn is the sum of per-node sojourns plus zero
	// link delay.
	var sum float64
	for j := range mus {
		sum += agg.PerNode[j].MeanDelay()
	}
	if e2e := agg.E2E.Sojourn.Mean(); math.Abs(e2e-sum) > 0.05*sum {
		t.Errorf("mean e2e sojourn %.4f should track per-node sum %.4f", e2e, sum)
	}
}

// welford is a tiny local mean/std accumulator for rep-level tolerances.
type welford struct {
	n    int
	mean float64
	m2   float64
}

func (w *welford) add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

func (w *welford) std() float64 {
	if w.n < 2 {
		return 0
	}
	return math.Sqrt(w.m2 / float64(w.n-1))
}

// netFingerprint flattens everything the determinism contract covers into
// exactly comparable values.
type netFingerprint struct {
	perNodeMean  []float64
	perNodeN     []int64
	perNodeQ     []float64
	counts       []NodeCounts
	sojournMean  float64
	sojournN     int64
	hops         []int64
	offered      int64
	delivered    int64
	droppedFull  int64
	events       int64
	truncatedBy0 int
}

func fingerprint(r *Result) netFingerprint {
	fp := netFingerprint{
		counts:       r.Node,
		sojournMean:  r.E2E.Sojourn.Mean(),
		sojournN:     r.E2E.Sojourn.N(),
		hops:         r.E2E.Hops,
		offered:      r.E2E.Offered,
		delivered:    r.E2E.Delivered,
		droppedFull:  r.E2E.DroppedFull,
		events:       r.Events,
		truncatedBy0: len(r.PerNode[0].TruncatedBy),
	}
	for _, m := range r.PerNode {
		fp.perNodeMean = append(fp.perNodeMean, m.MeanDelay())
		fp.perNodeN = append(fp.perNodeN, m.Delays.N())
		fp.perNodeQ = append(fp.perNodeQ, m.MeanQueue())
	}
	return fp
}

func equalFP(a, b netFingerprint) bool {
	if a.sojournMean != b.sojournMean || a.sojournN != b.sojournN ||
		a.offered != b.offered || a.delivered != b.delivered ||
		a.droppedFull != b.droppedFull || a.events != b.events ||
		a.truncatedBy0 != b.truncatedBy0 {
		return false
	}
	if len(a.hops) != len(b.hops) || len(a.counts) != len(b.counts) || len(a.perNodeMean) != len(b.perNodeMean) {
		return false
	}
	for i := range a.hops {
		if a.hops[i] != b.hops[i] {
			return false
		}
	}
	for i := range a.counts {
		if a.counts[i] != b.counts[i] {
			return false
		}
	}
	for i := range a.perNodeMean {
		if a.perNodeMean[i] != b.perNodeMean[i] || a.perNodeN[i] != b.perNodeN[i] || a.perNodeQ[i] != b.perNodeQ[i] {
			return false
		}
	}
	return true
}

// TestNetworkBitIdentical pins the determinism contract: the merged result
// of replicated network runs is bit-identical at every worker count.
func TestNetworkBitIdentical(t *testing.T) {
	topo := FanIn("det", 3, 200, 25, 0, 0)
	model := core.PaperParams(25)
	ings := []Ingress{
		HAPIngress(model, 0, 3),
		HAPIngress(model, 1, 3),
		PoissonIngress(2, 2, 3),
	}
	cfg := Config{Horizon: 300, Seed: 42, Measure: sim.MeasureConfig{Warmup: 10}}
	var base netFingerprint
	for i, workers := range []int{1, 2, 4, runtime.NumCPU()} {
		agg := RunReplicated(topo, ings, cfg, 6, workers)
		if agg.Err != nil {
			t.Fatalf("workers=%d: %v", workers, agg.Err)
		}
		fp := fingerprint(agg)
		if i == 0 {
			base = fp
			if fp.delivered == 0 {
				t.Fatal("no packets delivered; test is vacuous")
			}
			continue
		}
		if !equalFP(base, fp) {
			t.Errorf("workers=%d: merged result differs from workers=1", workers)
		}
	}
	if base.truncatedBy0 != 6 {
		t.Errorf("merged per-node TruncatedBy has %d entries, want one per replication (6)", base.truncatedBy0)
	}
}

// TestGridShortestPath routes corner-to-corner traffic over a 3×3 mesh:
// every delivered packet must be served at exactly 5 nodes (the Manhattan
// distance of 4 links, plus the entry node) and record a 5-node path from
// source to destination.
func TestGridShortestPath(t *testing.T) {
	topo := Grid("mesh", 3, 3, 50, 0)
	cfg := Config{Horizon: 200, Seed: 7, KeepPaths: 10}
	r := Run(topo, []Ingress{PoissonIngress(2, 0, 8)}, cfg)
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if r.E2E.Delivered == 0 {
		t.Fatal("no packets delivered")
	}
	for h, n := range r.E2E.Hops {
		if n > 0 && h != 5 {
			t.Errorf("%d packets delivered after %d node visits, want all 5", n, h)
		}
	}
	if len(r.Paths) == 0 {
		t.Fatal("KeepPaths recorded nothing")
	}
	for _, p := range r.Paths {
		if len(p) != 5 || p[0] != 0 || p[4] != 8 {
			t.Errorf("path %v, want 5 nodes from 0 to 8", p)
		}
		for i := 1; i < len(p); i++ {
			dx := int(p[i]%3) - int(p[i-1]%3)
			dy := int(p[i]/3) - int(p[i-1]/3)
			if dx*dx+dy*dy != 1 {
				t.Errorf("path %v hops between non-neighbours", p)
			}
		}
	}
}

// TestProbabilisticSplit checks weighted sink routing: a fork with weights
// 1:3 should deliver ≈25% / 75%.
func TestProbabilisticSplit(t *testing.T) {
	topo := &Topology{
		Name:  "fork",
		Nodes: []Node{{Mu: 100}, {Mu: 100}, {Mu: 100}},
		Links: []Link{{From: 0, To: 1, Weight: 1}, {From: 0, To: 2, Weight: 3}},
	}
	r := Run(topo, []Ingress{PoissonIngress(5, 0, -1)}, Config{Horizon: 4000, Seed: 11})
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	n1, n2 := float64(r.Node[1].Delivered), float64(r.Node[2].Delivered)
	total := n1 + n2
	if total < 1000 {
		t.Fatalf("only %v packets delivered", total)
	}
	if frac := n1 / total; math.Abs(frac-0.25) > 5*math.Sqrt(0.25*0.75/total) {
		t.Errorf("branch 1 took %.3f of traffic, want ≈0.25", frac)
	}
}

// TestFiniteBufferConservation drives a tiny-buffered bottleneck hard and
// checks packet conservation: every offered packet is delivered, dropped,
// or still in flight.
func TestFiniteBufferConservation(t *testing.T) {
	topo := Tandem("lossy", []float64{50, 3}, 0)
	topo.Nodes[1].Buffer = 4
	r := Run(topo, []Ingress{PoissonIngress(6, 0, 1)}, Config{Horizon: 500, Seed: 3})
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if r.E2E.DroppedFull == 0 {
		t.Fatal("overloaded 4-slot buffer dropped nothing")
	}
	if r.Node[1].DroppedFull != r.E2E.DroppedFull {
		t.Errorf("drops not attributed to the bottleneck: node=%d e2e=%d", r.Node[1].DroppedFull, r.E2E.DroppedFull)
	}
	sum := r.E2E.Delivered + r.E2E.DroppedFull + r.E2E.DroppedHops + r.InFlight
	if r.E2E.Offered != sum {
		t.Errorf("conservation violated: offered %d != delivered %d + dropped %d+%d + in flight %d",
			r.E2E.Offered, r.E2E.Delivered, r.E2E.DroppedFull, r.E2E.DroppedHops, r.InFlight)
	}
}

// TestMaxHops bounds destination-less walks on a cycle with no sink: every
// packet must die at the hop limit, never loop forever.
func TestMaxHops(t *testing.T) {
	topo := &Topology{
		Name:  "cycle",
		Nodes: []Node{{Mu: 100}, {Mu: 100}},
		Links: []Link{{From: 0, To: 1}, {From: 1, To: 0}},
	}
	r := Run(topo, []Ingress{PoissonIngress(1, 0, -1)}, Config{Horizon: 50, Seed: 5, MaxHops: 8})
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if r.E2E.Delivered != 0 {
		t.Errorf("sink-less cycle delivered %d packets", r.E2E.Delivered)
	}
	if r.E2E.DroppedHops == 0 {
		t.Error("hop limit never fired on an endless cycle")
	}
	if got := r.E2E.Offered - r.E2E.DroppedHops - r.InFlight; got != 0 {
		t.Errorf("conservation violated on cycle: %d packets unaccounted", got)
	}
}
