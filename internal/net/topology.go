// Package net is the queueing-network layer on top of the multi-station
// simulation engine: a Topology of single-server nodes joined by directed
// links, external traffic sources (HAP, ON-OFF, MMPP, Poisson — anything
// implementing sim.Source) injecting packets at ingress nodes, and a
// driver that routes each packet hop by hop until it reaches its
// destination or a sink.
//
// The paper characterizes one HAP/M/1 queue; its headline phenomenon —
// congestion "mountains" when bursty users superpose — is a network
// effect. This package makes it spatial: every node is an engine station
// with its own exponential server, finite or infinite buffer, and its own
// sim.Measurements, so the mountains can be located hop by hop. Packets
// carry their network entry time, hop count, and visited-node path; an
// EndToEnd accumulator collects sojourn times, per-hop delay breakdowns,
// a hop-count histogram, and drops at full buffers.
//
// Routing is deterministic where possible and index-seeded where not:
// a node with one out-link forwards blindly; a packet with a destination
// follows a precomputed shortest-path next-hop table (ties broken by link
// order); a destination-less packet at a fan-out node draws the out-link
// from the node's own routing stream, seeded by the node index only. A
// network's sample path is therefore a function of (topology, ingresses,
// seed) alone — never of worker counts or scheduling — which is what lets
// replicated runs merge bit-identically at any parallelism (see Run and
// RunReplicated in run.go).
package net

import (
	"math"
	"sync"

	"hap/internal/dist"
	"hap/internal/haperr"
)

// Node is one store-and-forward element: a FIFO queue drained by a single
// exponential server.
type Node struct {
	// Name labels the node in reports and metrics (defaults to "nodeN").
	Name string
	// Mu is the exponential service rate (packets per second).
	Mu float64
	// Buffer caps the number in system (queue + in service); a packet
	// arriving at a full node is dropped. 0 means unbounded.
	Buffer int
}

// Link is a directed edge between nodes.
type Link struct {
	From, To int
	// Weight is the relative routing probability among From's out-links
	// when a destination-less packet must choose (0 means 1). Ignored for
	// destination-routed packets, which follow the shortest-path table.
	Weight float64
	// Delay is the propagation latency added to every traversal (>= 0).
	Delay float64
}

// Topology is an immutable network description. Build one with the
// constructors (Tandem, FanIn, Grid) or literally, then hand it to Run;
// the routing tables are compiled once on first use and shared safely
// across replications.
type Topology struct {
	Name  string
	Nodes []Node
	Links []Link

	compileOnce sync.Once
	compileErr  error
	out         [][]int32           // out-link indices per node, in Links order
	choose      []*dist.Categorical // per-node weighted out-link sampler (nil when < 2 out-links)
	nextHop     [][]int32           // [node][dst] → link index on a shortest path, -1 unreachable
}

// Validate compiles the topology (idempotent, goroutine-safe) and reports
// whether it is runnable: at least one node, positive finite service
// rates, non-negative buffers, links between existing distinct nodes with
// valid weights and delays.
func (t *Topology) Validate() error {
	t.compileOnce.Do(t.compile)
	return t.compileErr
}

func (t *Topology) compile() {
	if len(t.Nodes) == 0 {
		t.compileErr = haperr.Badf("net: topology %q has no nodes", t.Name)
		return
	}
	for i, n := range t.Nodes {
		if !(n.Mu > 0) || math.IsInf(n.Mu, 1) {
			t.compileErr = haperr.Badf("net: node %d service rate must be positive and finite (got %v)", i, n.Mu)
			return
		}
		if n.Buffer < 0 {
			t.compileErr = haperr.Badf("net: node %d buffer must be non-negative (got %d)", i, n.Buffer)
			return
		}
	}
	t.out = make([][]int32, len(t.Nodes))
	for li, l := range t.Links {
		if l.From < 0 || l.From >= len(t.Nodes) || l.To < 0 || l.To >= len(t.Nodes) {
			t.compileErr = haperr.Badf("net: link %d endpoints (%d→%d) out of range [0,%d)", li, l.From, l.To, len(t.Nodes))
			return
		}
		if l.From == l.To {
			t.compileErr = haperr.Badf("net: link %d is a self-loop at node %d", li, l.From)
			return
		}
		if l.Weight < 0 || math.IsInf(l.Weight, 1) || math.IsNaN(l.Weight) {
			t.compileErr = haperr.Badf("net: link %d weight must be finite and non-negative (got %v)", li, l.Weight)
			return
		}
		if l.Delay < 0 || math.IsInf(l.Delay, 1) || math.IsNaN(l.Delay) {
			t.compileErr = haperr.Badf("net: link %d delay must be finite and non-negative (got %v)", li, l.Delay)
			return
		}
		t.out[l.From] = append(t.out[l.From], int32(li))
	}
	// Weighted out-link samplers for probabilistic (destination-less)
	// routing at fan-out nodes.
	t.choose = make([]*dist.Categorical, len(t.Nodes))
	for n, out := range t.out {
		if len(out) < 2 {
			continue
		}
		ws := make([]float64, len(out))
		for k, li := range out {
			w := t.Links[li].Weight
			if w == 0 {
				w = 1
			}
			ws[k] = w
		}
		c, err := dist.NewCategorical(ws)
		if err != nil {
			t.compileErr = haperr.Badf("net: node %d routing weights: %v", n, err)
			return
		}
		t.choose[n] = c
	}
	t.compileNextHop()
}

// compileNextHop fills nextHop[n][d] with the out-link of n on a
// fewest-hops path to d (ties broken by link declaration order, so the
// table — and with it every destination-routed sample path — is fully
// deterministic). Built by one reverse BFS per destination.
func (t *Topology) compileNextHop() {
	n := len(t.Nodes)
	// Reverse adjacency: in[v] lists links arriving at v.
	in := make([][]int32, n)
	for li, l := range t.Links {
		in[l.To] = append(in[l.To], int32(li))
	}
	t.nextHop = make([][]int32, n)
	for v := range t.nextHop {
		t.nextHop[v] = make([]int32, n)
		for d := range t.nextHop[v] {
			t.nextHop[v][d] = -1
		}
	}
	distTo := make([]int32, n)
	queue := make([]int32, 0, n)
	for d := 0; d < n; d++ {
		for v := range distTo {
			distTo[v] = -1
		}
		distTo[d] = 0
		queue = append(queue[:0], int32(d))
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, li := range in[v] {
				u := int32(t.Links[li].From)
				if distTo[u] == -1 {
					distTo[u] = distTo[v] + 1
					queue = append(queue, u)
				}
			}
		}
		// Choose, per node, the first declared out-link that descends the
		// BFS distance field.
		for v := 0; v < n; v++ {
			if v == d || distTo[v] == -1 {
				continue
			}
			for _, li := range t.out[v] {
				to := t.Links[li].To
				if distTo[to] == distTo[v]-1 {
					t.nextHop[v][d] = li
					break
				}
			}
		}
	}
}

// NodeName returns the node's label, defaulting to "nodeN".
func (t *Topology) NodeName(i int) string {
	if t.Nodes[i].Name != "" {
		return t.Nodes[i].Name
	}
	return "node" + itoa(i)
}

// Reaches reports whether a destination-routed packet at node from can
// reach dst. Valid only after Validate.
func (t *Topology) Reaches(from, dst int) bool {
	return from == dst || t.nextHop[from][dst] >= 0
}

// itoa is strconv.Itoa without the import weight in the hot file; node
// counts are small.
func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [12]byte
	p := len(buf)
	neg := i < 0
	if neg {
		i = -i
	}
	for i > 0 {
		p--
		buf[p] = byte('0' + i%10)
		i /= 10
	}
	if neg {
		p--
		buf[p] = '-'
	}
	return string(buf[p:])
}

// Tandem builds a serial line of nodes: node i links to node i+1, and the
// last node is the sink. One service rate per node.
func Tandem(name string, mus []float64, buffer int) *Topology {
	t := &Topology{Name: name}
	for i, mu := range mus {
		t.Nodes = append(t.Nodes, Node{Name: "stage" + itoa(i), Mu: mu, Buffer: buffer})
		if i > 0 {
			t.Links = append(t.Links, Link{From: i - 1, To: i})
		}
	}
	return t
}

// FanIn builds the paper's superposition scenario made spatial: k edge
// nodes (service rate edgeMu each) all feed one bottleneck node (service
// rate bottleneckMu), which is the sink. Edge node i is node i; the
// bottleneck is node k.
func FanIn(name string, k int, edgeMu, bottleneckMu float64, edgeBuffer, bottleneckBuffer int) *Topology {
	t := &Topology{Name: name}
	for i := 0; i < k; i++ {
		t.Nodes = append(t.Nodes, Node{Name: "edge" + itoa(i), Mu: edgeMu, Buffer: edgeBuffer})
	}
	t.Nodes = append(t.Nodes, Node{Name: "bottleneck", Mu: bottleneckMu, Buffer: bottleneckBuffer})
	for i := 0; i < k; i++ {
		t.Links = append(t.Links, Link{From: i, To: k})
	}
	return t
}

// Grid builds a w×h mesh with bidirectional links between 4-neighbours;
// node (x, y) is index y*w+x. Destination-routed packets follow shortest
// paths (ties broken deterministically by link order: +x before +y).
func Grid(name string, w, h int, mu float64, buffer int) *Topology {
	t := &Topology{Name: name}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			t.Nodes = append(t.Nodes, Node{Name: "g" + itoa(x) + "_" + itoa(y), Mu: mu, Buffer: buffer})
		}
	}
	id := func(x, y int) int { return y*w + x }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				t.Links = append(t.Links,
					Link{From: id(x, y), To: id(x+1, y)},
					Link{From: id(x+1, y), To: id(x, y)})
			}
			if y+1 < h {
				t.Links = append(t.Links,
					Link{From: id(x, y), To: id(x, y+1)},
					Link{From: id(x, y+1), To: id(x, y)})
			}
		}
	}
	return t
}
