package experiments

import (
	"fmt"
	"time"

	"hap/internal/core"
	"hap/internal/par"
	"hap/internal/sim"
	"hap/internal/solver"
	"hap/internal/trace"
)

func init() {
	register(Experiment{ID: "E4", Title: "Figure 11: average delay vs server capacity μ''", Run: runE4})
	register(Experiment{ID: "E5", Title: "Figure 12: average delay vs message arrival rate", Run: runE5})
}

// sweepPoint solves one (model, μ”) cell with the exact QBD plus the
// approximations; the simulation is run only at full-ish scales (it is the
// costliest column and the QBD already carries the exact value).
type sweepPoint struct {
	x       float64
	exact   float64
	sol2    float64
	poisson float64
	simT    float64
	rho     float64
}

// sweepBounds trades a little truncation (λ̄ within ~1%) for per-point
// speed: the sweeps solve the QBD at every grid cell.
func sweepBounds(c *Context) (int, int) {
	if c.scale() >= 0.9 {
		return 12, 80
	}
	if c.scale() >= 0.3 {
		return 10, 64
	}
	return 8, 48
}

func solveSweepPoint(c *Context, m *core.Model, x float64, withSim bool) (sweepPoint, error) {
	p := sweepPoint{x: x, simT: -1}
	bu, ba := sweepBounds(c)
	exact, err := solver.Solution0MG(m, &solver.Options{MaxUsers: bu, MaxApps: ba})
	if err != nil {
		return p, err
	}
	s2, err := solver.Solution2(m, nil)
	if err != nil {
		return p, err
	}
	pois, err := solver.Poisson(m)
	if err != nil {
		return p, err
	}
	p.exact, p.sol2, p.poisson, p.rho = exact.Delay, s2.Delay, pois.Delay, exact.Rho
	if withSim {
		horizon := c.horizon(2e6, 1e5)
		r := sim.RunHAP(m, sim.Config{Horizon: horizon, Seed: c.Seed + int64(x*1000),
			Measure: sim.MeasureConfig{Warmup: horizon / 100}})
		p.simT = r.Meas.MeanDelay()
	}
	return p, nil
}

func runE4(c *Context) (*Result, error) {
	start := time.Now()
	res := &Result{ID: "E4", Title: "Figure 11: delay vs server capacity"}
	// The paper sweeps the server capacity with λ̄ = 8.25 fixed; at
	// μ'' = 30 the HAP delay is "only 15.22% higher than Poisson's", and
	// at 64% utilisation (μ'' ≈ 13) it is enormously higher.
	caps := []float64{13, 15, 17, 20, 24, 30}
	if c.scale() < 0.3 {
		caps = []float64{13, 17, 24, 30}
	}
	withSim := c.scale() >= 0.3
	// Every grid cell (QBD solve + optional simulation) is independent, so
	// the sweep fans out across the worker pool; the per-point seeds depend
	// only on the abscissa, keeping results identical at any worker count.
	c.printf("E4: solving %d sweep points on %d workers...\n",
		len(caps), par.Workers(0, len(caps)))
	pts, err := par.MapErr(len(caps), 0, func(i int) (sweepPoint, error) {
		return solveSweepPoint(c, core.PaperParams(caps[i]), caps[i], withSim)
	})
	if err != nil {
		return nil, err
	}
	for _, p := range pts {
		c.printf("E4: μ''=%g (ρ=%.3g) → exact %.4g, Poisson %.4g\n", p.x, p.rho, p.exact, p.poisson)
	}
	xs := make([]float64, len(pts))
	exact := make([]float64, len(pts))
	sol2 := make([]float64, len(pts))
	pois := make([]float64, len(pts))
	simc := make([]float64, 0, len(pts))
	for i, p := range pts {
		xs[i], exact[i], sol2[i], pois[i] = p.x, p.exact, p.sol2, p.poisson
		if p.simT >= 0 {
			simc = append(simc, p.simT)
		}
	}
	cols := []trace.Series{
		{Name: "mu_msg", Values: xs},
		{Name: "hap_exact", Values: exact},
		{Name: "hap_sol2", Values: sol2},
		{Name: "poisson", Values: pois},
	}
	if withSim {
		cols = append(cols, trace.Series{Name: "hap_sim", Values: simc})
	}
	if err := c.writeCSV("fig11_delay_vs_capacity", cols...); err != nil {
		return nil, err
	}
	lines := []trace.Line{
		{Name: "HAP exact", Xs: xs, Ys: exact},
		{Name: "Poisson", Xs: xs, Ys: pois},
		{Name: "HAP Sol2", Xs: xs, Ys: sol2},
	}
	c.printf("%s", trace.Chart(trace.ChartOptions{
		Title:  "Figure 11 — mean delay vs server capacity (λ̄ = 8.25)",
		XLabel: "μ'' (messages/s)", YLabel: "delay", LogY: true,
	}, lines...))

	// Shape checks: monotone gap growth as capacity shrinks.
	lowRatio := pts[0].exact / pts[0].poisson                    // ρ ≈ 0.64
	highRatio := pts[len(pts)-1].exact / pts[len(pts)-1].poisson // μ''=30
	res.addRow("ratio at μ''=30", "1.15×", fmt.Sprintf("%.3f×", highRatio),
		boolVerdict(highRatio < 2.0 && highRatio > 1.0, "near-Poisson at low load"))
	res.addRow("ratio at ρ≈0.64", "≈200×", fmt.Sprintf("%.1f×", lowRatio),
		boolVerdict(lowRatio > 5*highRatio, "ratio explodes with load"))
	mono := true
	for i := 1; i < len(pts); i++ {
		if pts[i].exact/pts[i].poisson > pts[i-1].exact/pts[i-1].poisson {
			mono = false
		}
	}
	res.addRow("HAP/Poisson gap grows as capacity shrinks", "yes", fmt.Sprintf("%v", mono),
		boolVerdict(mono, "shape"))
	res.setValue("ratioLow", lowRatio)
	res.setValue("ratioHigh", highRatio)
	res.Elapsed = time.Since(start)
	return res, nil
}

func runE5(c *Context) (*Result, error) {
	start := time.Now()
	res := &Result{ID: "E5", Title: "Figure 12: delay vs arrival rate (μ''=17)"}
	// The paper varies the load by changing λ with the capacity fixed.
	factors := []float64{0.7, 0.85, 1.0, 1.1, 1.2, 1.3}
	if c.scale() < 0.3 {
		factors = []float64{0.7, 1.0, 1.3}
	}
	base := core.PaperParams(17)
	c.printf("E5: solving %d sweep points on %d workers...\n",
		len(factors), par.Workers(0, len(factors)))
	pts, err := par.MapErr(len(factors), 0, func(i int) (sweepPoint, error) {
		m := base.Scale(core.LevelUser, factors[i])
		return solveSweepPoint(c, m, m.MeanRate(), false)
	})
	if err != nil {
		return nil, err
	}
	var xs, exact, sol2, pois []float64
	for _, p := range pts {
		c.printf("E5: λ̄=%.3g (ρ=%.3g) → exact %.4g\n", p.x, p.x/17, p.exact)
		xs = append(xs, p.x)
		exact = append(exact, p.exact)
		sol2 = append(sol2, p.sol2)
		pois = append(pois, p.poisson)
	}
	if err := c.writeCSV("fig12_delay_vs_rate",
		trace.Series{Name: "lambda_bar", Values: xs},
		trace.Series{Name: "hap_exact", Values: exact},
		trace.Series{Name: "hap_sol2", Values: sol2},
		trace.Series{Name: "poisson", Values: pois}); err != nil {
		return nil, err
	}
	c.printf("%s", trace.Chart(trace.ChartOptions{
		Title:  "Figure 12 — mean delay vs message arrival rate (μ'' = 17)",
		XLabel: "λ̄ (messages/s)", YLabel: "delay", LogY: true,
	},
		trace.Line{Name: "HAP exact", Xs: xs, Ys: exact},
		trace.Line{Name: "Poisson", Xs: xs, Ys: pois}))

	first := exact[0] / pois[0]
	last := exact[len(exact)-1] / pois[len(pois)-1]
	res.addRow("HAP/Poisson ratio grows with λ̄", "yes", fmt.Sprintf("%.2f× → %.2f×", first, last),
		boolVerdict(last > first, "shape"))
	res.addRow("HAP delay convex in λ̄", "yes (explodes near saturation)",
		fmt.Sprintf("T(max λ̄)=%.3g", exact[len(exact)-1]),
		boolVerdict(exact[len(exact)-1] > 2.5*exact[0], "shape"))
	res.setValue("ratioFirst", first)
	res.setValue("ratioLast", last)
	res.Elapsed = time.Since(start)
	return res, nil
}
