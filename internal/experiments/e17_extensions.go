package experiments

import (
	"fmt"
	"time"

	"hap/internal/core"
	"hap/internal/dist"
	"hap/internal/mmpp"
	"hap/internal/par"
	"hap/internal/sim"
	"hap/internal/solver"
	"hap/internal/trace"
)

// E17 and E18 implement the paper's stated future-work directions
// (Section 7): multiplexing HAP with non-HAP (real-time) traffic, and the
// claim from the introduction that a general (2-state) MMPP is not an
// appropriate model for computer-network traffic.

func init() {
	register(Experiment{ID: "E17", Title: "Section 6/7: multiplexing HAP with real-time (CBR) traffic", Run: runE17})
	register(Experiment{ID: "E18", Title: "Intro claim: a fitted 2-state MMPP understates HAP delay", Run: runE18})
}

func runE17(c *Context) (*Result, error) {
	start := time.Now()
	res := &Result{ID: "E17", Title: "Multiplexing HAP with CBR voice"}
	// A voice-like CBR stream (one message every 50 ms) shares the server
	// with background traffic of rate 8.25. The controlled comparison
	// holds the capacity and every load constant and swaps only the
	// background's *burstiness*: HAP versus Poisson at the same rate. Any
	// CBR-delay difference is then purely the hierarchy's doing — the
	// clean form of Section 6's "the less bursty applications will suffer".
	const (
		cbrRate = 20.0
		bgRate  = 8.25
	)
	totalMu := (cbrRate + bgRate) / 0.70 // load where bursts bite
	horizon := c.horizon(2e6, 2e5)
	m := core.PaperParams(totalMu) // service rate overridden below
	svc := dist.NewExponential(totalMu)

	// The two shared-queue simulations are independent (separate seeds and
	// stream sets), so they run concurrently.
	var withHAP, withPoisson *sim.RunResult
	var cbrClass int
	c.printf("E17: CBR + HAP and CBR + Poisson over %g s each, in parallel...\n", horizon)
	if err := par.All(
		func() error {
			// Shared queue A: CBR + HAP background.
			streams := dist.NewStreams(c.Seed + 17)
			hapSrc := sim.NewHAPSource(m, streams.Next())
			hapSrc.ServiceOverride = svc
			cbrClass = hapSrc.ClassCount()
			cbrA := sim.NewCBRSource(1/cbrRate, svc, cbrClass, streams.Next())
			withHAP = sim.Run(sim.NewMulti(hapSrc, cbrA), sim.Config{
				Horizon: horizon, Seed: c.Seed + 17,
				Measure: sim.MeasureConfig{Warmup: horizon / 100, ClassCount: cbrClass + 1},
			})
			return nil
		},
		func() error {
			// Shared queue B: CBR + Poisson background at the identical rate.
			streams2 := dist.NewStreams(c.Seed + 18)
			poisBg := sim.NewPoissonSource(bgRate, svc, streams2.Next())
			cbrB := sim.NewCBRSource(1/cbrRate, svc, 1, streams2.Next())
			withPoisson = sim.Run(sim.NewMulti(poisBg, cbrB), sim.Config{
				Horizon: horizon, Seed: c.Seed + 18,
				Measure: sim.MeasureConfig{Warmup: horizon / 100, ClassCount: 2},
			})
			return nil
		},
	); err != nil {
		return nil, err
	}

	cbrWithHAP := withHAP.Meas.ByClass[cbrClass].Mean()
	cbrWithPoisson := withPoisson.Meas.ByClass[1].Mean()
	penalty := cbrWithHAP / cbrWithPoisson
	if err := c.writeCSV("sec6_multiplexing",
		trace.Series{Name: "cbr_with_hap_delay", Values: []float64{cbrWithHAP}},
		trace.Series{Name: "cbr_with_poisson_delay", Values: []float64{cbrWithPoisson}},
		trace.Series{Name: "penalty", Values: []float64{penalty}}); err != nil {
		return nil, err
	}
	res.addRow("CBR delay beside Poisson background", "(baseline)", fnum(cbrWithPoisson), "")
	res.addRow("CBR delay beside HAP background", "suffers a lot", fnum(cbrWithHAP),
		boolVerdict(penalty > 1.3, "real-time class penalised"))
	res.addRow("burstiness penalty (same rate, same capacity)", "avoid mixing with HAP",
		fmt.Sprintf("%.2f×", penalty), boolVerdict(penalty > 1.3, "Section 6 implication"))
	res.setValue("penalty", penalty)
	res.Elapsed = time.Since(start)
	return res, nil
}

func runE18(c *Context) (*Result, error) {
	start := time.Now()
	res := &Result{ID: "E18", Title: "2-state MMPP comparator"}
	m := core.PaperParams(17) // ρ = 0.485, where correlation bites
	fit, err := mmpp.FitFromHAP(m)
	if err != nil {
		return nil, err
	}
	// Exact queueing for both processes by the same matrix-geometric
	// machinery: like for like. The HAP side needs a floor on the
	// truncation — starving its tail would understate the very delay the
	// comparison is about.
	bu, ba := sweepBounds(c)
	if bu < 10 {
		bu = 10
	}
	if ba < 64 {
		ba = 64
	}
	c.printf("E18: exact HAP solve at bounds (%d,%d), MMPP2 and Poisson in parallel...\n", bu, ba)
	var hapExact, m2Exact, pois solver.Result
	if err := par.All(
		func() (err error) {
			hapExact, err = solver.Solution0MG(m, &solver.Options{MaxUsers: bu, MaxApps: ba})
			return err
		},
		func() (err error) {
			m2Exact, err = solver.SolveMMPPQueue(fit.General(), 17, nil)
			return err
		},
		func() (err error) {
			pois, err = solver.Poisson(m)
			return err
		},
	); err != nil {
		return nil, err
	}

	if err := c.writeCSV("intro_mmpp2_comparator",
		trace.Series{Name: "hap_exact_delay", Values: []float64{hapExact.Delay}},
		trace.Series{Name: "mmpp2_delay", Values: []float64{m2Exact.Delay}},
		trace.Series{Name: "poisson_delay", Values: []float64{pois.Delay}}); err != nil {
		return nil, err
	}
	res.addRow("fitted MMPP2 mean rate", "8.25 (matched)", fnum(m2Exact.MeanRate),
		verdictClose(m2Exact.MeanRate, 8.25, 0.01))
	res.addRow("delay: Poisson < MMPP2 < HAP", "hierarchy matters beyond 2nd moments",
		fmt.Sprintf("%.3g < %.3g < %.3g", pois.Delay, m2Exact.Delay, hapExact.Delay),
		boolVerdict(pois.Delay < m2Exact.Delay && m2Exact.Delay < hapExact.Delay, "shape"))
	res.addRow("MMPP2 shortfall vs HAP", "2-state MMPP insufficient",
		fmt.Sprintf("captures %.0f%% of the HAP delay", 100*m2Exact.Delay/hapExact.Delay),
		boolVerdict(m2Exact.Delay < 0.9*hapExact.Delay, "understates"))
	res.setValue("hapDelay", hapExact.Delay)
	res.setValue("mmpp2Delay", m2Exact.Delay)
	res.setValue("poissonDelay", pois.Delay)
	res.Elapsed = time.Since(start)
	return res, nil
}
