package experiments

import (
	"fmt"
	"math"
	"time"

	"hap/internal/core"
	"hap/internal/sim"
	"hap/internal/solver"
	"hap/internal/trace"
)

func init() {
	register(Experiment{ID: "E1", Title: "Section 4 headline numbers (λ̄, σ, ρ, delays)", Run: runE1})
	register(Experiment{ID: "E2", Title: "Figure 9: message interarrival density, HAP vs Poisson", Run: runE2})
	register(Experiment{ID: "E3", Title: "Figure 10: interarrival density tail", Run: runE3})
}

// e1Bounds picks modulator truncation for the exact solver by scale: the
// full (14, 110) setting was verified converged (further widening moves
// the delay by < 0.1%).
func e1Bounds(c *Context) (int, int) {
	if c.scale() >= 0.5 {
		return 14, 110 // verified converged (delay moves < 0.1% beyond this)
	}
	if c.scale() >= 0.3 {
		return 12, 80
	}
	return 8, 48
}

func runE1(c *Context) (*Result, error) {
	start := time.Now()
	m := core.PaperParams(20)
	res := &Result{ID: "E1", Title: "Section 4 headline numbers"}

	s2, err := solver.Solution2(m, nil)
	if err != nil {
		return nil, err
	}
	s1, err := solver.Solution1(m, nil)
	if err != nil {
		return nil, err
	}
	pois, err := solver.Poisson(m)
	if err != nil {
		return nil, err
	}
	bu, ba := e1Bounds(c)
	c.printf("E1: matrix-geometric exact solve at bounds (%d,%d)...\n", bu, ba)
	exact, err := solver.Solution0MG(m, &solver.Options{MaxUsers: bu, MaxApps: ba})
	if err != nil {
		return nil, err
	}
	horizon := c.horizon(4e6, 2e5)
	c.printf("E1: simulating %g model seconds...\n", horizon)
	simRes := sim.RunHAP(m, sim.Config{
		Horizon: horizon, Seed: c.Seed + 1,
		Measure: sim.MeasureConfig{Warmup: horizon / 100},
	})

	res.addRow("mean rate λ̄", "8.25", fnum(s2.MeanRate), verdictClose(s2.MeanRate, 8.25, 0.001))
	res.addRow("utilisation ρ", "0.42", fnum(s2.Rho), verdictClose(s2.Rho, 0.42, 0.03))
	res.addRow("σ (Solutions 1/2)", "0.50", fnum(s2.Sigma), verdictClose(s2.Sigma, 0.50, 0.08))
	res.addRow("σ (exact QBD)", "0.50", fnum(exact.Sigma), verdictClose(exact.Sigma, 0.50, 0.05))
	res.addRow("delay T, Solution 2", "0.1", fnum(s2.Delay), verdictClose(s2.Delay, 0.1, 0.1))
	res.addRow("delay T, Solution 1", "0.1 (±1% of Sol 2)", fnum(s1.Delay), verdictClose(s1.Delay, s2.Delay, 0.01))
	res.addRow("delay T, exact (paper: Sol 0)", "0.55", fnum(exact.Delay),
		"same order; see EXPERIMENTS.md E1 on the paper's non-converged simulation")
	res.addRow("delay T, simulation", "0.55", fnum(simRes.Meas.MeanDelay()),
		verdictClose(simRes.Meas.MeanDelay(), exact.Delay, 0.35)+" vs exact")
	res.addRow("delay T, M/M/1", "0.085", fnum(pois.Delay), verdictClose(pois.Delay, 0.085, 0.01))
	ratioExact := exact.Delay / pois.Delay
	res.addRow("HAP/Poisson delay ratio (exact)", "6.47×", fmt.Sprintf("%.2f×", ratioExact),
		boolVerdict(ratioExact > 1.5, "bursty ≫ Poisson"))
	ratio12 := s2.Delay / pois.Delay
	res.addRow("HAP/Poisson ratio (Sol 1/2)", "1.18×", fmt.Sprintf("%.2f×", ratio12),
		boolVerdict(ratio12 > 1 && ratio12 < 1.5, "correlation loss underestimates"))

	res.setValue("meanRate", s2.MeanRate)
	res.setValue("sigma2", s2.Sigma)
	res.setValue("delayExact", exact.Delay)
	res.setValue("delaySol2", s2.Delay)
	res.setValue("delaySim", simRes.Meas.MeanDelay())
	res.setValue("delayMM1", pois.Delay)
	res.Elapsed = time.Since(start)
	return res, nil
}

func runE2(c *Context) (*Result, error) {
	start := time.Now()
	m := core.Figure9Params(20)
	ia := m.Interarrival()
	rate := ia.MeanRate()
	res := &Result{ID: "E2", Title: "Figure 9: interarrival density"}

	n := c.intScale(400, 80)
	ts := make([]float64, 0, n)
	hapD := make([]float64, 0, n)
	poisD := make([]float64, 0, n)
	for i := 0; i <= n; i++ {
		t := 0.7 * float64(i) / float64(n)
		ts = append(ts, t)
		hapD = append(hapD, ia.PDF(t))
		poisD = append(poisD, rate*expNeg(rate*t))
	}
	if err := c.writeCSV("fig09_interarrival",
		trace.Series{Name: "t", Values: ts},
		trace.Series{Name: "hap_a(t)", Values: hapD},
		trace.Series{Name: "poisson", Values: poisD}); err != nil {
		return nil, err
	}
	c.printf("%s", trace.Chart(trace.ChartOptions{
		Title:  "Figure 9 — message interarrival density a(t), λ̄ = 7.5",
		XLabel: "interarrival time t (s)", YLabel: "a(t)",
	},
		trace.Line{Name: "HAP", Xs: ts, Ys: hapD},
		trace.Line{Name: "Poisson", Xs: ts, Ys: poisD}))

	crossings := ia.CrossingsWithPoisson(1.0, n)
	res.addRow("λ̄", "7.5", fnum(rate), verdictClose(rate, 7.5, 1e-9))
	res.addRow("a(0) HAP", "9.28", fnum(ia.PDFAtZero()), verdictClose(ia.PDFAtZero(), 9.28, 0.01))
	res.addRow("a(0) Poisson", "7.5", fnum(rate), "exact")
	if len(crossings) >= 2 {
		first, last := crossings[0], crossings[len(crossings)-1]
		res.addRow("first crossing", "0.077", fnum(first), verdictClose(first, 0.077, 0.08))
		res.addRow("second crossing", "0.53", fnum(last), verdictClose(last, 0.53, 0.08))
		res.setValue("crossing1", first)
		res.setValue("crossing2", last)
	} else {
		res.addRow("crossings", "2 (0.077, 0.53)", fmt.Sprintf("%d found", len(crossings)), "MISSING")
	}
	res.addRow("mean interarrival ∫t·a(t)", "0.133 (=1/7.5)", fnum(ia.Mean()),
		verdictClose(ia.Mean(), 1/7.5, 0.01))
	res.setValue("a0", ia.PDFAtZero())
	res.Elapsed = time.Since(start)
	return res, nil
}

func runE3(c *Context) (*Result, error) {
	start := time.Now()
	m := core.Figure9Params(20)
	ia := m.Interarrival()
	rate := ia.MeanRate()
	res := &Result{ID: "E3", Title: "Figure 10: interarrival tail"}

	n := c.intScale(300, 60)
	ts := make([]float64, 0, n)
	hapD := make([]float64, 0, n)
	poisD := make([]float64, 0, n)
	for i := 0; i <= n; i++ {
		t := 0.45 + (0.70-0.45)*float64(i)/float64(n)
		ts = append(ts, t)
		hapD = append(hapD, ia.PDF(t))
		poisD = append(poisD, rate*expNeg(rate*t))
	}
	if err := c.writeCSV("fig10_interarrival_tail",
		trace.Series{Name: "t", Values: ts},
		trace.Series{Name: "hap_a(t)", Values: hapD},
		trace.Series{Name: "poisson", Values: poisD}); err != nil {
		return nil, err
	}
	c.printf("%s", trace.Chart(trace.ChartOptions{
		Title:  "Figure 10 — tail of a(t) around the second crossing",
		XLabel: "interarrival time t (s)", YLabel: "a(t)",
	},
		trace.Line{Name: "HAP", Xs: ts, Ys: hapD},
		trace.Line{Name: "Poisson", Xs: ts, Ys: poisD}))

	// Before the second crossing Poisson is above; after it HAP is above.
	below := ia.PDF(0.47) < rate*expNeg(rate*0.47)
	above := ia.PDF(0.65) > rate*expNeg(rate*0.65)
	res.addRow("HAP below Poisson at t=0.47", "yes", fmt.Sprintf("%v", below), boolVerdict(below, "shape"))
	res.addRow("HAP above Poisson at t=0.65", "yes (longer tail)", fmt.Sprintf("%v", above), boolVerdict(above, "shape"))
	// Tail mass past the crossing compensates the front (paper's point on
	// equal means).
	res.addRow("tail CCDF(0.53) HAP vs Poisson", "HAP higher",
		fmt.Sprintf("%.3g vs %.3g", ia.CCDF(0.53), expNeg(rate*0.53)),
		boolVerdict(ia.CCDF(0.53) > expNeg(rate*0.53), "shape"))
	res.setValue("tailAbove", b2f(above))
	res.Elapsed = time.Since(start)
	return res, nil
}

func expNeg(x float64) float64 { return math.Exp(-x) }

func abs(x float64) float64 { return math.Abs(x) }

func verdictClose(got, want, tol float64) string {
	if want == 0 {
		return "n/a"
	}
	rel := abs(got-want) / abs(want)
	switch {
	case rel <= tol:
		return fmt.Sprintf("match (%.2g%% off)", rel*100)
	case rel <= 3*tol:
		return fmt.Sprintf("close (%.2g%% off)", rel*100)
	default:
		return fmt.Sprintf("DIFFERS (%.3g%% off)", rel*100)
	}
}

func boolVerdict(ok bool, label string) string {
	if ok {
		return label + " ✓"
	}
	return label + " ✗"
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
