package experiments

import (
	"fmt"
	"sync"
	"time"

	"hap/internal/core"
	"hap/internal/sim"
	"hap/internal/stats"
	"hap/internal/trace"
)

func init() {
	register(Experiment{ID: "E6", Title: "Figure 13: fluctuation of the running mean delay", Run: runE6})
	register(Experiment{ID: "E7", Title: "Figure 14: queue length over a one-hour interval", Run: runE7})
	register(Experiment{ID: "E8", Title: "Figure 15: the peak busy period", Run: runE8})
	register(Experiment{ID: "E9", Title: "Figures 16–17: users/applications in the peak busy period", Run: runE9})
	register(Experiment{ID: "E10", Title: "Figure 18: busy/idle periods, HAP vs Poisson", Run: runE10})
}

func runE6(c *Context) (*Result, error) {
	start := time.Now()
	res := &Result{ID: "E6", Title: "Figure 13: running mean fluctuation"}
	horizon := c.horizon(8e6, 4e5)
	every := int64(horizon * 8.25 / 400) // ~400 checkpoints
	if every < 100 {
		every = 100
	}
	m := core.PaperParams(17)
	c.printf("E6: HAP run over %g s...\n", horizon)
	hap := sim.RunHAP(m, sim.Config{Horizon: horizon, Seed: c.Seed + 6,
		Measure: sim.MeasureConfig{RunningMeanEvery: every}})
	c.printf("E6: Poisson run over %g s...\n", horizon)
	pois := sim.RunPoisson(8.25, 17, sim.Config{Horizon: horizon, Seed: c.Seed + 6,
		Measure: sim.MeasureConfig{RunningMeanEvery: every}})

	if err := c.writeCSV("fig13_running_mean",
		trace.Series{Name: "hap_n", Values: hap.Meas.Running.Xs},
		trace.Series{Name: "hap_mean_delay", Values: hap.Meas.Running.Ys},
		trace.Series{Name: "poisson_n", Values: pois.Meas.Running.Xs},
		trace.Series{Name: "poisson_mean_delay", Values: pois.Meas.Running.Ys}); err != nil {
		return nil, err
	}
	c.printf("%s", trace.Chart(trace.ChartOptions{
		Title:  "Figure 13 — running mean delay (HAP keeps fluctuating)",
		XLabel: "messages completed", YLabel: "running mean delay",
	},
		trace.Line{Name: "HAP", Xs: hap.Meas.Running.Xs, Ys: hap.Meas.Running.Ys},
		trace.Line{Name: "Poisson", Xs: pois.Meas.Running.Xs, Ys: pois.Meas.Running.Ys}))

	skip := len(hap.Meas.Running.Ys) / 10
	hapSpan := hap.Meas.Running.FluctuationSpan(skip)
	poisSpan := pois.Meas.Running.FluctuationSpan(skip)
	res.addRow("running-mean span (HAP)", "large, hard to converge", fnum(hapSpan), "")
	res.addRow("running-mean span (Poisson)", "settles quickly", fnum(poisSpan), "")
	res.addRow("HAP span / Poisson span", "≫ 1", fmt.Sprintf("%.1f×", hapSpan/poisSpan),
		boolVerdict(hapSpan > 3*poisSpan, "HAP converges far slower"))
	res.setValue("hapSpan", hapSpan)
	res.setValue("poisSpan", poisSpan)
	res.Elapsed = time.Since(start)
	return res, nil
}

// mountainRun is the shared long simulation behind Figures 14–17: queue
// trace, population trace and retained busy periods from one run.
type mountainRun struct {
	res     *sim.RunResult
	horizon float64
}

var (
	mountainMu    sync.Mutex
	mountainCache map[string]*mountainRun
)

func sharedMountainRun(c *Context) *mountainRun {
	mountainMu.Lock()
	defer mountainMu.Unlock()
	key := fmt.Sprintf("%v/%d", c.scale(), c.Seed)
	if mountainCache == nil {
		mountainCache = map[string]*mountainRun{}
	}
	if r, ok := mountainCache[key]; ok {
		return r
	}
	horizon := c.horizon(3e6, 3e5)
	c.printf("E7–E9: shared HAP run over %g s (μ''=17), tracing queue and populations...\n", horizon)
	m := core.PaperParams(17)
	r := sim.RunHAP(m, sim.Config{Horizon: horizon, Seed: c.Seed + 7,
		Measure: sim.MeasureConfig{
			TrackBusy: true, KeepBusyPeriods: true, MaxBusyRetained: 1 << 21,
			QueueTraceInterval: 5, PopTraceInterval: 20,
		}})
	run := &mountainRun{res: r, horizon: horizon}
	mountainCache[key] = run
	return run
}

// window extracts the [lo, hi] time slice of a queue trace.
func window(tr []sim.TracePoint, lo, hi float64) (xs, ys []float64) {
	for _, p := range tr {
		if p.T >= lo && p.T <= hi {
			xs = append(xs, p.T)
			ys = append(ys, p.V)
		}
	}
	return xs, ys
}

func runE7(c *Context) (*Result, error) {
	start := time.Now()
	res := &Result{ID: "E7", Title: "Figure 14: one-hour queue trace"}
	run := sharedMountainRun(c)
	// Pick the hour around the tallest point of the whole trace.
	var peakT, peakV float64
	for _, p := range run.res.Meas.QueueTrace {
		if p.V > peakV {
			peakV, peakT = p.V, p.T
		}
	}
	lo, hi := peakT-1800, peakT+1800
	if lo < 0 {
		lo, hi = 0, 3600
	}
	xs, ys := window(run.res.Meas.QueueTrace, lo, hi)
	dx, dy := trace.Downsample(xs, ys, 600)
	if err := c.writeCSV("fig14_hour_queue_trace",
		trace.Series{Name: "t", Values: dx},
		trace.Series{Name: "queue_len", Values: dy}); err != nil {
		return nil, err
	}
	c.printf("%s", trace.Chart(trace.ChartOptions{
		Title:  "Figure 14 — messages in queue over the busiest hour",
		XLabel: "time (s)", YLabel: "queue length",
	}, trace.Line{Name: "queue", Xs: dx, Ys: dy}))

	res.addRow("mountains visible in one hour", "several", fmt.Sprintf("peak %g in window", peakV),
		boolVerdict(peakV > 20, "congestion episodes present"))
	res.addRow("mean queue (whole run)", "(low between mountains)", fnum(run.res.Meas.MeanQueue()), "")
	res.setValue("hourPeak", peakV)
	res.Elapsed = time.Since(start)
	return res, nil
}

func runE8(c *Context) (*Result, error) {
	start := time.Now()
	res := &Result{ID: "E8", Title: "Figure 15: peak busy period"}
	run := sharedMountainRun(c)
	bt := &run.res.Meas.Busy
	longest, tallest := bt.Peak()
	// Trace the queue across the longest mountain.
	pad := longest.Length() * 0.15
	xs, ys := window(run.res.Meas.QueueTrace, longest.Start-pad, longest.End+pad)
	dx, dy := trace.Downsample(xs, ys, 600)
	if err := c.writeCSV("fig15_peak_busy_period",
		trace.Series{Name: "t", Values: dx},
		trace.Series{Name: "queue_len", Values: dy}); err != nil {
		return nil, err
	}
	c.printf("%s", trace.Chart(trace.ChartOptions{
		Title:  "Figure 15 — the peak busy period",
		XLabel: "time (s)", YLabel: "queue length",
	}, trace.Line{Name: "queue", Xs: dx, Ys: dy}))

	// Paper (much longer run): peak > 17,000 messages lasting ~80 min;
	// Poisson peak only 29. Shapes, scaled to our horizon: order thousands
	// at full scale.
	res.addRow("tallest mountain height", ">17000 (their horizon)",
		fmt.Sprintf("%d", tallest.Height),
		boolVerdict(float64(tallest.Height) > 100*c.scale(), "extreme congestion"))
	res.addRow("longest mountain duration", "≈80 min", fmt.Sprintf("%.1f min", longest.Length()/60),
		boolVerdict(longest.Length() > 60, "persists for minutes"))
	res.addRow("mountains recorded", "many", fmt.Sprintf("%d", bt.Mountains()), "")
	res.setValue("peakHeight", float64(tallest.Height))
	res.setValue("peakMinutes", longest.Length()/60)
	res.Elapsed = time.Since(start)
	return res, nil
}

func runE9(c *Context) (*Result, error) {
	start := time.Now()
	res := &Result{ID: "E9", Title: "Figures 16–17: populations at the peak"}
	run := sharedMountainRun(c)
	longest, _ := run.res.Meas.Busy.Peak()
	pad := longest.Length() * 0.15
	var xs, users, apps []float64
	for _, p := range run.res.Meas.PopTrace {
		if p.T >= longest.Start-pad && p.T <= longest.End+pad {
			xs = append(xs, p.T)
			users = append(users, float64(p.Users))
			apps = append(apps, float64(p.Apps))
		}
	}
	if err := c.writeCSV("fig16_17_populations_at_peak",
		trace.Series{Name: "t", Values: xs},
		trace.Series{Name: "users", Values: users},
		trace.Series{Name: "apps", Values: apps}); err != nil {
		return nil, err
	}
	c.printf("%s", trace.Chart(trace.ChartOptions{
		Title:  "Figures 16–17 — users and applications through the peak busy period",
		XLabel: "time (s)", YLabel: "population",
	},
		trace.Line{Name: "users", Xs: xs, Ys: users},
		trace.Line{Name: "apps", Xs: xs, Ys: apps}))

	// Populations at the onset of the mountain versus the long-run means
	// (5.5 users / 27.5 applications): the paper saw 13 and 49.
	var onsetUsers, onsetApps float64
	for _, p := range run.res.Meas.PopTrace {
		if p.T >= longest.Start {
			onsetUsers, onsetApps = float64(p.Users), float64(p.Apps)
			break
		}
	}
	// Mean over the mountain.
	var mu, ma stats.Welford
	for i := range xs {
		mu.Add(users[i])
		ma.Add(apps[i])
	}
	res.addRow("users at mountain onset", "13 (mean 5.5)", fnum(onsetUsers),
		boolVerdict(onsetUsers > 5.5, "elevated"))
	res.addRow("applications at mountain onset", "49 (mean 27.5)", fnum(onsetApps),
		boolVerdict(onsetApps > 27.5, "elevated"))
	res.addRow("mean users during mountain", "> 5.5", fnum(mu.Mean()),
		boolVerdict(mu.Mean() > 5.5, "elevated"))
	res.addRow("mean apps during mountain", "> 27.5", fnum(ma.Mean()),
		boolVerdict(ma.Mean() > 27.5, "elevated"))
	res.setValue("onsetUsers", onsetUsers)
	res.setValue("onsetApps", onsetApps)
	res.setValue("meanUsersPeak", mu.Mean())
	res.setValue("meanAppsPeak", ma.Mean())
	res.Elapsed = time.Since(start)
	return res, nil
}

func runE10(c *Context) (*Result, error) {
	start := time.Now()
	res := &Result{ID: "E10", Title: "Figure 18: busy/idle statistics"}
	// The Figure 18 table uses μ(message) = 15, i.e. ρ = 0.55.
	horizon := c.horizon(3e6, 3e5)
	m := core.PaperParams(15)
	c.printf("E10: HAP run over %g s (μ''=15)...\n", horizon)
	hap := sim.RunHAP(m, sim.Config{Horizon: horizon, Seed: c.Seed + 10,
		Measure: sim.MeasureConfig{TrackBusy: true}})
	c.printf("E10: Poisson run over %g s...\n", horizon)
	pois := sim.RunPoisson(8.25, 15, sim.Config{Horizon: horizon, Seed: c.Seed + 10,
		Measure: sim.MeasureConfig{TrackBusy: true}})

	hb, pb := &hap.Meas.Busy, &pois.Meas.Busy
	busyVarRatio := hb.Busy.Var() / pb.Busy.Var()
	idleVarRatio := hb.Idle.Var() / pb.Idle.Var()
	heightVarRatio := hb.Height.Var() / pb.Height.Var()
	mountainDeficit := 1 - float64(hb.Mountains())/float64(pb.Mountains())

	if err := c.writeCSV("fig18_busy_idle_table",
		trace.Series{Name: "hap_busy_mean_var", Values: []float64{hb.Busy.Mean(), hb.Busy.Var()}},
		trace.Series{Name: "hap_idle_mean_var", Values: []float64{hb.Idle.Mean(), hb.Idle.Var()}},
		trace.Series{Name: "hap_height_mean_var", Values: []float64{hb.Height.Mean(), hb.Height.Var()}},
		trace.Series{Name: "poisson_busy_mean_var", Values: []float64{pb.Busy.Mean(), pb.Busy.Var()}},
		trace.Series{Name: "poisson_idle_mean_var", Values: []float64{pb.Idle.Mean(), pb.Idle.Var()}},
		trace.Series{Name: "poisson_height_mean_var", Values: []float64{pb.Height.Mean(), pb.Height.Var()}}); err != nil {
		return nil, err
	}

	res.addRow("busy fraction HAP", "≈55%", fmt.Sprintf("%.1f%%", 100*hb.BusyFraction()),
		verdictClose(hb.BusyFraction(), 0.55, 0.06))
	res.addRow("busy fraction Poisson", "≈55%", fmt.Sprintf("%.1f%%", 100*pb.BusyFraction()),
		verdictClose(pb.BusyFraction(), 0.55, 0.06))
	res.addRow("busy-period variance ratio", "618×", fmt.Sprintf("%.0f×", busyVarRatio),
		boolVerdict(busyVarRatio > 20, "orders of magnitude"))
	res.addRow("idle-period variance ratio", "15×", fmt.Sprintf("%.1f×", idleVarRatio),
		boolVerdict(idleVarRatio > 2, "HAP idles burstier"))
	res.addRow("height variance ratio", "66×", fmt.Sprintf("%.0f×", heightVarRatio),
		boolVerdict(heightVarRatio > 10, "HAP mountains taller"))
	res.addRow("HAP has fewer mountains", "19% fewer", fmt.Sprintf("%.1f%% fewer", 100*mountainDeficit),
		boolVerdict(mountainDeficit > 0.02, "fewer, longer periods"))
	res.addRow("HAP busy mean vs Poisson", "slightly higher",
		fmt.Sprintf("%.3g vs %.3g", hb.Busy.Mean(), pb.Busy.Mean()),
		boolVerdict(hb.Busy.Mean() > pb.Busy.Mean(), "shape"))
	res.setValue("busyVarRatio", busyVarRatio)
	res.setValue("idleVarRatio", idleVarRatio)
	res.setValue("heightVarRatio", heightVarRatio)
	res.setValue("mountainDeficit", mountainDeficit)
	res.Elapsed = time.Since(start)
	return res, nil
}
