package experiments

import (
	"io"
	"os"
	"strings"
	"testing"

	"hap/internal/trace"
)

// runExp executes one experiment at the test scale with a fixed seed.
func runExp(t *testing.T, id string, scale float64) *Result {
	t.Helper()
	e, ok := Get(id)
	if !ok {
		t.Fatalf("unknown experiment %s", id)
	}
	res, err := e.Run(&Context{Scale: scale, Out: io.Discard, Seed: 42})
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if len(res.Rows) == 0 {
		t.Fatalf("%s produced no rows", id)
	}
	return res
}

func value(t *testing.T, res *Result, key string) float64 {
	t.Helper()
	v, ok := res.Values[key]
	if !ok {
		t.Fatalf("%s missing value %q", res.ID, key)
	}
	return v
}

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) != 18 {
		t.Fatalf("registered %d experiments, want 18 (E1..E18)", len(all))
	}
	prev := 0
	for _, e := range all {
		n := idOrder(e.ID)
		if n <= prev {
			t.Errorf("registry not in ID order at %s", e.ID)
		}
		prev = n
	}
	if _, ok := Get("e4"); !ok {
		t.Error("Get must be case-insensitive")
	}
	if _, ok := Get("E99"); ok {
		t.Error("unknown ID resolved")
	}
}

func TestE1Headline(t *testing.T) {
	res := runExp(t, "E1", 0.05)
	if v := value(t, res, "meanRate"); v < 8.24 || v > 8.26 {
		t.Errorf("mean rate %v", v)
	}
	exact := value(t, res, "delayExact")
	sol2 := value(t, res, "delaySol2")
	mm1 := value(t, res, "delayMM1")
	// At the 0.05-scale truncation (8,48) the exact solver loses ~10% of
	// λ̄ to the bound, so only the HAP-above-Poisson ordering is asserted
	// here; exact > sol2 is covered at real bounds by the solver tests.
	if !(exact > mm1 && sol2 > mm1) {
		t.Errorf("delay ordering violated: exact=%v sol2=%v mm1=%v", exact, sol2, mm1)
	}
	if sig := value(t, res, "sigma2"); sig < 0.4 || sig > 0.55 {
		t.Errorf("sigma %v", sig)
	}
}

func TestE2Crossings(t *testing.T) {
	res := runExp(t, "E2", 0.1)
	if v := value(t, res, "a0"); v < 9.2 || v > 9.4 {
		t.Errorf("a(0) = %v, want ≈ 9.3", v)
	}
	c1 := value(t, res, "crossing1")
	c2 := value(t, res, "crossing2")
	if c1 < 0.06 || c1 > 0.09 || c2 < 0.48 || c2 > 0.58 {
		t.Errorf("crossings %v, %v (paper: 0.077, 0.53)", c1, c2)
	}
}

func TestE3Tail(t *testing.T) {
	res := runExp(t, "E3", 0.1)
	if value(t, res, "tailAbove") != 1 {
		t.Error("HAP tail must dominate past the second crossing")
	}
}

func TestE4CapacitySweep(t *testing.T) {
	res := runExp(t, "E4", 0.05)
	low := value(t, res, "ratioLow")
	high := value(t, res, "ratioHigh")
	if !(low > high && high > 1) {
		t.Errorf("ratio shape broken: low-load %v, high-capacity %v", low, high)
	}
}

func TestE11LevelOrdering(t *testing.T) {
	res := runExp(t, "E11", 0.1)
	tU := value(t, res, "tUser")
	tA := value(t, res, "tApp")
	tM := value(t, res, "tMsg")
	if !(tM >= tA && tA > tU) {
		t.Errorf("ordering: user=%v app=%v msg=%v", tU, tA, tM)
	}
}

func TestE12BoundingGap(t *testing.T) {
	res := runExp(t, "E12", 0.1)
	if value(t, res, "gapLast") <= value(t, res, "gapFirst") {
		t.Error("bounding benefit should grow with load")
	}
	if value(t, res, "gapLast") <= 0 {
		t.Error("bounding must help")
	}
}

func TestE13ShapeOrdering(t *testing.T) {
	res := runExp(t, "E13", 0.05)
	if !(value(t, res, "scvC") > value(t, res, "scvA")) {
		t.Error("SCV ordering broken")
	}
	if !(value(t, res, "delayC") > value(t, res, "delayA")) {
		t.Error("delay ordering broken")
	}
}

func TestE14Accuracy(t *testing.T) {
	res := runExp(t, "E14", 0.05)
	if v := value(t, res, "errAtLow"); v > 0.06 {
		t.Errorf("low-load error %v too large", v)
	}
	if value(t, res, "errAtHigh") <= value(t, res, "errAtLow") {
		t.Error("error must grow with load")
	}
}

func TestE16Equivalence(t *testing.T) {
	res := runExp(t, "E16", 0.1)
	if v := value(t, res, "ccdfIdentity"); v > 1e-12 {
		t.Errorf("identity violated: %v", v)
	}
}

func TestE18Comparator(t *testing.T) {
	res := runExp(t, "E18", 0.05)
	hap := value(t, res, "hapDelay")
	m2 := value(t, res, "mmpp2Delay")
	pois := value(t, res, "poissonDelay")
	if !(pois < m2 && m2 < hap) {
		t.Errorf("ordering: poisson=%v mmpp2=%v hap=%v", pois, m2, hap)
	}
}

func TestResultsCSVWritten(t *testing.T) {
	dir := t.TempDir()
	e, _ := Get("E2")
	if _, err := e.Run(&Context{Scale: 0.1, Out: io.Discard, Seed: 1, ResultsDir: dir}); err != nil {
		t.Fatal(err)
	}
	cols, err := trace.ReadCSV(dir + "/fig09_interarrival.csv")
	if err != nil {
		t.Fatal(err)
	}
	if len(cols) != 3 || len(cols[0].Values) < 50 {
		t.Fatalf("csv malformed: %d cols", len(cols))
	}
}

func TestRenderAndRunAllLight(t *testing.T) {
	// Render a cheap experiment's table into a buffer.
	res := runExp(t, "E3", 0.1)
	var sb strings.Builder
	res.Render(&sb)
	for _, frag := range []string{"E3", "paper", "measured"} {
		if !strings.Contains(sb.String(), frag) {
			t.Errorf("render missing %q", frag)
		}
	}
	_ = os.Stdout
}
