// Package experiments regenerates every table and figure of the paper's
// evaluation. Each experiment is a named, scale-aware unit: scale 1
// reproduces paper-scale runs (minutes of CPU for the brute-force pieces,
// exactly as the paper warns), smaller scales shrink horizons and
// truncation bounds for benchmarks and CI.
//
// Results come back as paper-vs-measured rows plus rendered ASCII charts;
// when a results directory is set, the underlying series are written as
// CSV files named after the experiment.
package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"hap/internal/trace"
)

// Context carries run-wide knobs into an experiment.
type Context struct {
	// Scale shrinks horizons, truncation bounds and sweep sizes; 1 is
	// paper scale. Values below ~0.05 are clamped per-experiment to keep
	// the statistics meaningful.
	Scale float64
	// Out receives human-readable progress and results (io.Discard for
	// benchmarks).
	Out io.Writer
	// ResultsDir, when non-empty, receives CSV series files.
	ResultsDir string
	// Seed roots every stochastic component.
	Seed int64
	// Ctx, when non-nil, bounds the whole batch: RunAll stops dispatching
	// new experiments once it is done. Nil means context.Background().
	Ctx context.Context
}

func (c *Context) context() context.Context {
	if c.Ctx != nil {
		return c.Ctx
	}
	return context.Background()
}

func (c *Context) scale() float64 {
	if c.Scale <= 0 {
		return 1
	}
	return c.Scale
}

func (c *Context) out() io.Writer {
	if c.Out == nil {
		return io.Discard
	}
	return c.Out
}

// horizon scales a paper-scale simulated horizon, flooring at min.
func (c *Context) horizon(full, min float64) float64 {
	h := full * c.scale()
	if h < min {
		h = min
	}
	return h
}

// intScale scales an integer knob, flooring at min.
func (c *Context) intScale(full, min int) int {
	v := int(float64(full) * c.scale())
	if v < min {
		v = min
	}
	return v
}

func (c *Context) printf(format string, args ...interface{}) {
	fmt.Fprintf(c.out(), format, args...)
}

// writeCSV stores a figure's series when a results directory is set.
func (c *Context) writeCSV(name string, cols ...trace.Series) error {
	if c.ResultsDir == "" {
		return nil
	}
	return trace.WriteCSV(c.ResultsDir+"/"+name+".csv", cols...)
}

// Row is one paper-vs-measured comparison line.
type Row struct {
	Name     string
	Paper    string // what the paper reports (verbatim-ish)
	Measured string
	Match    string // "shape", "value", "direction", ... or a short verdict
}

// Result is a completed experiment.
type Result struct {
	ID      string
	Title   string
	Rows    []Row
	Elapsed time.Duration
	// Values carries machine-readable headline numbers keyed by name,
	// consumed by benchmarks and tests.
	Values map[string]float64
}

func (r *Result) addRow(name, paper, measured, match string) {
	r.Rows = append(r.Rows, Row{Name: name, Paper: paper, Measured: measured, Match: match})
}

func (r *Result) setValue(k string, v float64) {
	if r.Values == nil {
		r.Values = map[string]float64{}
	}
	r.Values[k] = v
}

// Render prints the paper-vs-measured table.
func (r *Result) Render(w io.Writer) {
	fmt.Fprintf(w, "\n== %s — %s (%v)\n", r.ID, r.Title, r.Elapsed.Round(time.Millisecond))
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{row.Name, row.Paper, row.Measured, row.Match})
	}
	io.WriteString(w, trace.Table([]string{"quantity", "paper", "measured", "verdict"}, rows))
}

// Experiment is one reproducible artefact.
type Experiment struct {
	ID    string
	Title string
	Run   func(*Context) (*Result, error)
}

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// All returns the experiments in ID order.
func All() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return idOrder(out[i].ID) < idOrder(out[j].ID) })
	return out
}

func idOrder(id string) int {
	var n int
	fmt.Sscanf(strings.TrimPrefix(id, "E"), "%d", &n)
	return n
}

// Get returns the experiment with the given ID (case-insensitive).
func Get(id string) (Experiment, bool) {
	for _, e := range registry {
		if strings.EqualFold(e.ID, id) {
			return e, true
		}
	}
	return Experiment{}, false
}

// RunAll executes every experiment in order, rendering each, and returns
// the first error (continuing past failures). A cancelled Context.Ctx
// stops the batch before the next experiment starts; the context error is
// returned (unless an earlier failure already claimed the slot).
func RunAll(ctx *Context) ([]*Result, error) {
	var results []*Result
	var firstErr error
	for _, e := range All() {
		if err := ctx.context().Err(); err != nil {
			ctx.printf("\n──── stopping before %s: %v\n", e.ID, err)
			if firstErr == nil {
				firstErr = err
			}
			break
		}
		ctx.printf("\n──── running %s: %s (scale %.3g)\n", e.ID, e.Title, ctx.scale())
		res, err := e.Run(ctx)
		if err != nil {
			ctx.printf("%s FAILED: %v\n", e.ID, err)
			if firstErr == nil {
				firstErr = fmt.Errorf("%s: %w", e.ID, err)
			}
			continue
		}
		res.Render(ctx.out())
		results = append(results, res)
	}
	return results, firstErr
}

func fnum(v float64) string { return fmt.Sprintf("%.4g", v) }

func timed(run func() error) (time.Duration, error) {
	start := time.Now()
	err := run()
	return time.Since(start), err
}
