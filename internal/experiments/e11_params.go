package experiments

import (
	"fmt"
	"math"
	"time"

	"hap/internal/core"
	"hap/internal/par"
	"hap/internal/sim"
	"hap/internal/solver"
	"hap/internal/trace"
)

func init() {
	register(Experiment{ID: "E11", Title: "Figure 19: levels of modulating processes", Run: runE11})
	register(Experiment{ID: "E12", Title: "Figure 20: effect of bounding users and applications", Run: runE12})
	register(Experiment{ID: "E13", Title: "Figure 8 / Eq 5: equivalent-rate HAP shapes", Run: runE13})
	register(Experiment{ID: "E14", Title: "Section 4.1: accuracy of Solutions 1 and 2", Run: runE14})
	register(Experiment{ID: "E15", Title: "Section 5: arrival vs departure scaling", Run: runE15})
	register(Experiment{ID: "E16", Title: "ON-OFF ≡ 2-level HAP equivalence", Run: runE16})
}

func runE11(c *Context) (*Result, error) {
	start := time.Now()
	res := &Result{ID: "E11", Title: "Figure 19: level sweeps (Solution 2)"}
	base := core.PaperParams(20)
	factors := []float64{0.90, 0.95, 1.00, 1.05, 1.10, 1.15, 1.20}
	levels := []core.Level{core.LevelUser, core.LevelApp, core.LevelMessage}
	// The whole level × factor grid is independent cells — flatten it onto
	// the worker pool and regroup by level afterwards.
	type cell struct{ x, y float64 }
	grid, err := par.MapErr(len(levels)*len(factors), 0, func(idx int) (cell, error) {
		lvl, f := levels[idx/len(factors)], factors[idx%len(factors)]
		r, err := solver.Solution2(base.Scale(lvl, f), nil)
		if err != nil {
			return cell{}, err
		}
		return cell{x: r.MeanRate, y: r.Delay}, nil
	})
	if err != nil {
		return nil, err
	}
	series := make(map[core.Level][2][]float64) // λ̄, delay per level
	for li, lvl := range levels {
		var xs, ys []float64
		for fi := range factors {
			g := grid[li*len(factors)+fi]
			xs = append(xs, g.x)
			ys = append(ys, g.y)
		}
		series[lvl] = [2][]float64{xs, ys}
	}
	if err := c.writeCSV("fig19_level_sweeps",
		trace.Series{Name: "lambda_user", Values: series[core.LevelUser][0]},
		trace.Series{Name: "delay_user", Values: series[core.LevelUser][1]},
		trace.Series{Name: "lambda_app", Values: series[core.LevelApp][0]},
		trace.Series{Name: "delay_app", Values: series[core.LevelApp][1]},
		trace.Series{Name: "lambda_msg", Values: series[core.LevelMessage][0]},
		trace.Series{Name: "delay_msg", Values: series[core.LevelMessage][1]}); err != nil {
		return nil, err
	}
	c.printf("%s", trace.Chart(trace.ChartOptions{
		Title:  "Figure 19 — Solution-2 delay vs λ̄ when scaling each level",
		XLabel: "λ̄", YLabel: "delay",
	},
		trace.Line{Name: "scale λ (user)", Xs: series[core.LevelUser][0], Ys: series[core.LevelUser][1]},
		trace.Line{Name: "scale λ' (app)", Xs: series[core.LevelApp][0], Ys: series[core.LevelApp][1]},
		trace.Line{Name: "scale λ'' (msg)", Xs: series[core.LevelMessage][0], Ys: series[core.LevelMessage][1]}))

	// At the top factor, compare delays at (numerically equal) λ̄.
	last := len(factors) - 1
	tU := series[core.LevelUser][1][last]
	tA := series[core.LevelApp][1][last]
	tM := series[core.LevelMessage][1][last]
	res.addRow("λ' and λ'' have the same burstiness effect", "curves coincide",
		fmt.Sprintf("T_app=%.5g T_msg=%.5g", tA, tM), verdictClose(tA, tM, 0.01))
	res.addRow("lower levels burstier than user level", "λ',λ'' above λ",
		fmt.Sprintf("T_user=%.5g", tU), boolVerdict(tA > tU && tM > tU, "shape"))
	res.addRow("upper level moves λ̄ most per unit burstiness", "yes",
		"λ-curve flattest in delay", boolVerdict(tM-tU > 0, "shape"))
	res.setValue("tUser", tU)
	res.setValue("tApp", tA)
	res.setValue("tMsg", tM)
	res.Elapsed = time.Since(start)
	return res, nil
}

func runE12(c *Context) (*Result, error) {
	start := time.Now()
	res := &Result{ID: "E12", Title: "Figure 20: bounding users/applications"}
	base := core.PaperParams(20)
	factors := []float64{0.80, 0.90, 1.00, 1.10, 1.20, 1.27}
	type e12pt struct{ x, free, bounded float64 }
	pts, err := par.MapErr(len(factors), 0, func(i int) (e12pt, error) {
		m := base.Scale(core.LevelUser, factors[i])
		rf, err := solver.Solution2Bounded(m, 60, 300, nil)
		if err != nil {
			return e12pt{}, err
		}
		rb, err := solver.Solution2Bounded(m, 12, 60, nil)
		if err != nil {
			return e12pt{}, err
		}
		return e12pt{x: m.MeanRate(), free: rf.Delay, bounded: rb.Delay}, nil
	})
	if err != nil {
		return nil, err
	}
	var xs, free, bounded []float64
	for _, p := range pts {
		xs = append(xs, p.x)
		free = append(free, p.free)
		bounded = append(bounded, p.bounded)
	}
	if err := c.writeCSV("fig20_bounding",
		trace.Series{Name: "lambda_bar", Values: xs},
		trace.Series{Name: "delay_unbounded_60_300", Values: free},
		trace.Series{Name: "delay_bounded_12_60", Values: bounded}); err != nil {
		return nil, err
	}
	c.printf("%s", trace.Chart(trace.ChartOptions{
		Title:  "Figure 20 — delay with users/apps bounded at (12, 60) vs (60, 300)",
		XLabel: "λ̄", YLabel: "delay",
	},
		trace.Line{Name: "unbounded", Xs: xs, Ys: free},
		trace.Line{Name: "bounded", Xs: xs, Ys: bounded}))

	gapFirst := free[0] - bounded[0]
	gapLast := free[len(free)-1] - bounded[len(bounded)-1]
	res.addRow("bounding reduces delay", "yes", fmt.Sprintf("Δ=%.4g at λ̄=%.3g", gapLast, xs[len(xs)-1]),
		boolVerdict(gapLast > 0, "shape"))
	res.addRow("reduction grows with λ̄", "yes", fmt.Sprintf("Δ %.4g → %.4g", gapFirst, gapLast),
		boolVerdict(gapLast > gapFirst, "shape"))
	res.setValue("gapFirst", gapFirst)
	res.setValue("gapLast", gapLast)
	res.Elapsed = time.Since(start)
	return res, nil
}

func runE13(c *Context) (*Result, error) {
	start := time.Now()
	res := &Result{ID: "E13", Title: "Figure 8: equivalent-rate shapes"}
	shapes := []*core.Model{core.Figure8A(), core.Figure8B(), core.Figure8C()}
	// All three share λ̄ = 2.2 (Equation 5); serve at μ'' = 5 for a loaded
	// queue (ρ = 0.44).
	for _, m := range shapes {
		for i := range m.Apps {
			for j := range m.Apps[i].Messages {
				m.Apps[i].Messages[j].Mu = 5
			}
		}
	}
	// Delay ordering by the exact solver (simulation at these loads needs
	// very long horizons to rank stably; the exact ranking is the claim).
	// Identical bounds across shapes cancel the truncation bias.
	e13Opts := &solver.Options{MaxUsers: 14, MaxApps: 90}
	if c.scale() < 0.5 {
		e13Opts = &solver.Options{MaxUsers: 8, MaxApps: 44}
	}
	var scvs, delays []float64
	for _, m := range shapes {
		scv := m.Interarrival().SCV()
		c.printf("E13: exact solve for %s...\n", m.Name)
		r, err := solver.Solution0MG(m, e13Opts)
		if err != nil {
			return nil, err
		}
		scvs = append(scvs, scv)
		delays = append(delays, r.Delay)
		res.addRow(m.Name+" λ̄ (Eq 5)", "2.2", fnum(m.MeanRate()), verdictClose(m.MeanRate(), 2.2, 1e-9))
	}
	if err := c.writeCSV("fig08_equivalent_shapes",
		trace.Series{Name: "scv_a_b_c", Values: scvs},
		trace.Series{Name: "exact_delay_a_b_c", Values: delays}); err != nil {
		return nil, err
	}
	res.addRow("interarrival SCV ordering", "(c) > (b) > (a)",
		fmt.Sprintf("%.3g / %.3g / %.3g", scvs[0], scvs[1], scvs[2]),
		boolVerdict(scvs[2] > scvs[1] && scvs[1] > scvs[0], "shape"))
	res.addRow("exact delay ordering", "(c) > (b) > (a)",
		fmt.Sprintf("%.3g / %.3g / %.3g", delays[0], delays[1], delays[2]),
		boolVerdict(delays[2] > delays[1] && delays[1] > delays[0], "shape"))
	res.setValue("scvA", scvs[0])
	res.setValue("scvC", scvs[2])
	res.setValue("delayA", delays[0])
	res.setValue("delayC", delays[2])
	res.Elapsed = time.Since(start)
	return res, nil
}

// e14Model satisfies the paper's Section 4.1 accuracy conditions: every
// lower level at least 5× faster than the one above (λ'/λ = λ”/λ' = 5,
// μ'/μ = 20) and neighbouring-state rate jumps of only 5% of the mean
// rate (ν = 4 users, l = 5 types, a' = 1, so ~20 active applications).
func e14Model(muMsg float64) *core.Model {
	return core.NewSymmetric(0.0005, 0.000125, 0.0025, 0.0025, 0.0125, muMsg, 5, 2)
}

func runE14(c *Context) (*Result, error) {
	start := time.Now()
	res := &Result{ID: "E14", Title: "Section 4.1: approximation accuracy"}
	// λ̄ = 4·5·1·2·0.0125 = 0.5; sweep utilisation via μ''.
	lam := e14Model(1).MeanRate()
	rhos := []float64{0.15, 0.30, 0.45}
	e14Opts := &solver.Options{MaxUsers: 14, MaxApps: 74}
	if c.scale() < 0.5 {
		rhos = []float64{0.15, 0.30}
		e14Opts = &solver.Options{MaxUsers: 10, MaxApps: 48}
	}
	// Each utilisation point needs three independent solves (exact QBD,
	// Solution 1, Solution 2); fan the points across the pool.
	type e14pt struct{ exact, s1, s2, e1, e2 float64 }
	pts, err := par.MapErr(len(rhos), 0, func(i int) (e14pt, error) {
		m := e14Model(lam / rhos[i])
		exact, err := solver.Solution0MG(m, e14Opts)
		if err != nil {
			return e14pt{}, err
		}
		s1, err := solver.Solution1(m, e14Opts)
		if err != nil {
			return e14pt{}, err
		}
		s2, err := solver.Solution2(m, nil)
		if err != nil {
			return e14pt{}, err
		}
		return e14pt{exact: exact.Delay, s1: s1.Delay, s2: s2.Delay,
			e1: math.Abs(s1.Delay-exact.Delay) / exact.Delay,
			e2: math.Abs(s2.Delay-exact.Delay) / exact.Delay}, nil
	})
	if err != nil {
		return nil, err
	}
	var xs, errs1, errs2 []float64
	for i, p := range pts {
		c.printf("E14: ρ=%.2f exact=%.5g sol1=%.5g sol2=%.5g (err %.2f%% / %.2f%%)\n",
			rhos[i], p.exact, p.s1, p.s2, 100*p.e1, 100*p.e2)
		xs = append(xs, rhos[i])
		errs1 = append(errs1, p.e1)
		errs2 = append(errs2, p.e2)
	}
	if err := c.writeCSV("sec41_accuracy",
		trace.Series{Name: "rho", Values: xs},
		trace.Series{Name: "sol1_rel_err", Values: errs1},
		trace.Series{Name: "sol2_rel_err", Values: errs2}); err != nil {
		return nil, err
	}
	res.addRow("Sol 1/2 error at low load (ρ=0.15)", "< 5%",
		fmt.Sprintf("%.2f%% / %.2f%%", 100*errs1[0], 100*errs2[0]),
		boolVerdict(errs1[0] < 0.05 && errs2[0] < 0.05, "accuracy conditions hold"))
	res.addRow("error at ρ = 0.30", "approximations start to drift",
		fmt.Sprintf("%.1f%%", 100*errs2[1]),
		boolVerdict(errs2[1] > errs2[0], "shape"))
	last := len(errs2) - 1
	res.addRow("error past 30% utilisation", "drifts far away",
		fmt.Sprintf("%.1f%% at ρ=%.2f", 100*errs2[last], xs[last]),
		boolVerdict(errs2[last] > 2*errs2[0], "shape"))
	res.addRow("Sol 1 vs Sol 2 agreement", "< 1%",
		fmt.Sprintf("max gap %.2f%%", 100*maxGap(errs1, errs2)),
		boolVerdict(maxGap(errs1, errs2) < 0.01, "match"))
	res.setValue("errAtLow", errs2[0])
	res.setValue("errAtHigh", errs2[last])
	res.Elapsed = time.Since(start)
	return res, nil
}

func maxGap(a, b []float64) float64 {
	var m float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func runE15(c *Context) (*Result, error) {
	start := time.Now()
	res := &Result{ID: "E15", Title: "Section 5: arrival vs departure scaling"}
	// Exact solver on the paper parameters at reduced bounds (the effect
	// is a few percent; identical truncation on both sides cancels the
	// truncation bias).
	bu, ba := sweepBounds(c)
	base := core.PaperParams(20)
	up := base.Scale(core.LevelApp, 1.1).ScaleHolding(core.LevelApp, 1.1)
	e0, err := solver.Solution0MG(base, &solver.Options{MaxUsers: bu, MaxApps: ba})
	if err != nil {
		return nil, err
	}
	e1, err := solver.Solution0MG(up, &solver.Options{MaxUsers: bu, MaxApps: ba})
	if err != nil {
		return nil, err
	}
	s2a, err := solver.Solution2(base, nil)
	if err != nil {
		return nil, err
	}
	s2b, err := solver.Solution2(up, nil)
	if err != nil {
		return nil, err
	}
	change := (e1.Delay - e0.Delay) / e0.Delay
	res.addRow("λ̄ preserved by joint ±10% scaling", "yes", fnum(up.MeanRate()),
		verdictClose(up.MeanRate(), 8.25, 1e-9))
	res.addRow("exact delay change", "≈ −1%", fmt.Sprintf("%+.2f%%", 100*change),
		boolVerdict(math.Abs(change) < 0.05 && change != 0, "small, order matches"))
	res.addRow("Solution 2 sees no change", "(paper used Sol 2 here)",
		fmt.Sprintf("%+.2g%%", 100*(s2b.Delay-s2a.Delay)/s2a.Delay),
		"closed form depends only on ν, aᵢ, Λᵢ — see EXPERIMENTS.md")
	res.setValue("exactChange", change)
	res.Elapsed = time.Since(start)
	return res, nil
}

func runE16(c *Context) (*Result, error) {
	start := time.Now()
	res := &Result{ID: "E16", Title: "ON-OFF ≡ 2-level HAP"}
	tl := core.NewOnOff(0.25, 0.01, 2, 100) // ν = 25, λ̄ = 50, ρ = 0.5
	// Identity: the 2-level law equals the 3-level closed form conditioned
	// on one user.
	ia := tl.Model().Interarrival()
	var worst float64
	for _, x := range []float64{0, 0.01, 0.05, 0.2, 1} {
		d := math.Abs(ia.CCDFGivenUsers(1, x) - tl.CCDF(x))
		if d > worst {
			worst = d
		}
	}
	res.addRow("2-level CCDF ≡ conditioned 3-level CCDF", "identical", fnum(worst),
		boolVerdict(worst < 1e-12, "exact identity"))

	horizon := c.horizon(4e5, 6e4)
	c.printf("E16: simulating ON-OFF over %g s...\n", horizon)
	r := sim.RunOnOff(tl, sim.Config{Horizon: horizon, Seed: c.Seed + 16,
		Measure: sim.MeasureConfig{Warmup: horizon / 100, KeepArrivalTimes: 1 << 23}})
	iaSim := r.Meas.Interarrivals()
	var sum, sumsq float64
	for _, x := range iaSim {
		sum += x
		sumsq += x * x
	}
	n := float64(len(iaSim))
	mean := sum / n
	scv := (sumsq/n - mean*mean) / (mean * mean)
	res.addRow("interarrival mean, closed form vs sim", fnum(tl.Mean()), fnum(mean),
		verdictClose(mean, tl.Mean(), 0.03))
	res.addRow("interarrival SCV, closed form vs sim", fnum(tl.SCV()), fnum(scv),
		verdictClose(scv, tl.SCV(), 0.12))
	res.addRow("simulated rate", "50", fnum(r.Meas.ObservedRate()),
		verdictClose(r.Meas.ObservedRate(), 50, 0.05))
	res.setValue("ccdfIdentity", worst)
	res.setValue("scvSim", scv)
	res.setValue("scvClosed", tl.SCV())
	res.Elapsed = time.Since(start)
	return res, nil
}
