package obs

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenRegistry builds a registry with one instrument of every kind and a
// deterministic clock: each nowNs call advances exactly one second.
func goldenRegistry() *Registry {
	r := NewRegistry()
	var tick int64
	r.nowNs = func() int64 { tick += 1e9; return tick }

	r.Counter("test_events_total", "Events seen.").Add(42)
	r.Gauge("test_queue_depth", "Messages in system.").Set(7)
	r.FloatGauge("test_residual", "Last residual.").Set(0.5)
	t := r.Timer("test_solve", "Solve wall time.")
	t.Observe(1500 * time.Millisecond)
	t.Observe(500 * time.Millisecond)
	v := r.CounterVec("test_solves_total", "Solves by method.", "method", "outcome")
	v.With("solution2", "converged").Inc()
	v.With("solution0", "fallback").Add(2)
	r.Rate("test_packets", "Packets.").Mark(10)
	return r
}

func TestPrometheusGolden(t *testing.T) {
	var b strings.Builder
	if err := goldenRegistry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "prometheus.golden")
	if *update {
		if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if b.String() != string(want) {
		t.Errorf("exposition mismatch\n--- got ---\n%s\n--- want ---\n%s", b.String(), want)
	}
}

func TestJSONExposition(t *testing.T) {
	var b strings.Builder
	if err := goldenRegistry().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal([]byte(b.String()), &m); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, b.String())
	}
	if m["test_events_total"] != 42.0 {
		t.Errorf("test_events_total = %v", m["test_events_total"])
	}
	if m[`test_solves_total{method="solution0",outcome="fallback"}`] != 2.0 {
		t.Errorf("labelled series missing: %v", m)
	}
}

func TestSnapshot(t *testing.T) {
	s := goldenRegistry().Snapshot()
	if s["test_queue_depth"] != 7 {
		t.Errorf("queue depth = %v", s["test_queue_depth"])
	}
	if s["test_solve_seconds_sum"] != 2 {
		t.Errorf("timer sum = %v", s["test_solve_seconds_sum"])
	}
}

// TestHotPathAllocs asserts the zero-allocation contract of every hot-path
// operation; the event loop's 0 allocs/op depends on it.
func TestHotPathAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	fg := r.FloatGauge("fg", "")
	tm := r.Timer("t", "")
	rt := r.Rate("r", "")
	child := r.CounterVec("v_total", "", "k").With("x")
	cases := []struct {
		name string
		f    func()
	}{
		{"Counter.Inc", func() { c.Inc() }},
		{"Counter.Add", func() { c.Add(3) }},
		{"Gauge.Set", func() { g.Set(9) }},
		{"FloatGauge.Set", func() { fg.Set(1.25) }},
		{"Timer.Observe", func() { tm.Observe(time.Microsecond) }},
		{"Rate.Mark", func() { rt.Mark(5) }},
		{"VecChild.Inc", func() { child.Inc() }},
	}
	for _, tc := range cases {
		if n := testing.AllocsPerRun(1000, tc.f); n != 0 {
			t.Errorf("%s allocates %.1f per op, want 0", tc.name, n)
		}
	}
}

// TestConcurrency hammers every instrument from many goroutines while a
// scraper renders the registry; run under -race this validates the
// lock-free hot paths.
func TestConcurrency(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("conc_total", "")
	g := r.Gauge("conc_gauge", "")
	tm := r.Timer("conc_timer", "")
	rt := r.Rate("conc_rate", "")
	v := r.CounterVec("conc_vec_total", "", "worker")

	const workers, perWorker = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			mine := v.With(fmt.Sprint(w % 3))
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Set(int64(i))
				tm.Observe(time.Duration(i))
				rt.Mark(1)
				mine.Inc()
				if i%100 == 0 {
					// Vec lookup path under contention.
					v.With(fmt.Sprint(w % 3)).Add(0)
				}
			}
		}(w)
	}
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				_ = r.WritePrometheus(io.Discard)
				_ = r.Snapshot()
			}
		}
	}()
	wg.Wait()
	close(stop)

	if got := c.Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := tm.Count(); got != workers*perWorker {
		t.Errorf("timer count = %d, want %d", got, workers*perWorker)
	}
	if got := rt.Value(); got != workers*perWorker {
		t.Errorf("rate count = %d, want %d", got, workers*perWorker)
	}
	var vecTotal int64
	for k, val := range r.Snapshot() {
		if strings.HasPrefix(k, "conc_vec_total{") {
			vecTotal += int64(val)
		}
	}
	if vecTotal != workers*perWorker {
		t.Errorf("vec total = %d, want %d", vecTotal, workers*perWorker)
	}
}

func TestServeEndpoints(t *testing.T) {
	r := goldenRegistry()
	srv, err := r.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}
	if body := get("/metrics"); !strings.Contains(body, "test_events_total 42") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}
	var m map[string]any
	if err := json.Unmarshal([]byte(get("/debug/vars")), &m); err != nil {
		t.Errorf("/debug/vars is not JSON: %v", err)
	}
}

func TestRateWindow(t *testing.T) {
	var tick int64
	rt := newRate(func() int64 { tick += 2e9; return tick })
	rt.Mark(100)
	if got := rt.PerSecond(); got != 50 {
		t.Errorf("rate = %v, want 50 (100 events over a 2 s window)", got)
	}
	// Second window with no events is quiet.
	if got := rt.PerSecond(); got != 0 {
		t.Errorf("idle rate = %v, want 0", got)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_total", "")
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	r.Counter("dup_total", "")
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("esc_total", "", "k")
	v.With(`a"b\c` + "\n").Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `esc_total{k="a\"b\\c\n"} 1`) {
		t.Errorf("escaping wrong:\n%s", b.String())
	}
}

func TestGaugeVec(t *testing.T) {
	r := NewRegistry()
	v := r.GaugeVec("net_queue_depth", "Per-node depth.", "node")
	v.With("edge0").Set(3)
	v.With("bottleneck").Set(11)
	v.With("edge0").Set(5) // same child, last write wins
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	page := b.String()
	if !strings.Contains(page, `net_queue_depth{node="edge0"} 5`) {
		t.Errorf("edge0 series wrong:\n%s", page)
	}
	if !strings.Contains(page, `net_queue_depth{node="bottleneck"} 11`) {
		t.Errorf("bottleneck series wrong:\n%s", page)
	}
	if strings.Index(page, `node="bottleneck"`) > strings.Index(page, `node="edge0"`) {
		t.Errorf("series not emitted in sorted label order:\n%s", page)
	}
	if v.With("edge0").Value() != 5 {
		t.Errorf("child lookup returned a different gauge")
	}
}
