package obs

import (
	"fmt"
	"net"
	"net/http"
	"time"
)

// Server is a live metrics endpoint. Close releases the listener.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts an HTTP endpoint for the Default registry on addr
// (":0" picks a free port) serving /metrics (Prometheus text) and
// /debug/vars (flat JSON). The server runs until Close.
func Serve(addr string) (*Server, error) {
	return Default.Serve(addr)
}

// Serve starts an HTTP endpoint exposing this registry; see Serve.
func (r *Registry) Serve(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = r.WriteJSON(w)
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		fmt.Fprint(w, "hap metrics endpoint\n\n  /metrics     Prometheus text exposition\n  /debug/vars  JSON snapshot\n")
	})
	s := &Server{ln: ln, srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound address (with the concrete port).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the endpoint down.
func (s *Server) Close() error { return s.srv.Close() }
