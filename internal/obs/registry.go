package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Registry holds metric families and renders them. Registration normally
// happens once, from package-level var initialisers; exposition runs at
// scrape time. Both take the registry lock — neither belongs on a hot path.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
	nowNs    func() int64
}

// family is one exposition unit: a metric name with HELP/TYPE metadata and
// one or more (labels, value) series.
type family struct {
	name, help, typ string
	collect         func(emit func(labels string, value float64))
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		families: make(map[string]*family),
		nowNs:    func() int64 { return time.Now().UnixNano() },
	}
}

// Default is the process-wide registry every package-level instrument
// registers into; the HTTP endpoint and the facade snapshot read it.
var Default = NewRegistry()

// register adds a family or panics on programmer error (empty or duplicate
// name). Registration is init-time wiring, not user input, so the panic
// policy mirrors other construct-time invariants in this codebase.
func (r *Registry) register(name, help, typ string, collect func(emit func(string, float64))) {
	if name == "" {
		panic("obs: empty metric name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.families[name]; dup {
		panic("obs: duplicate metric " + name)
	}
	r.families[name] = &family{name: name, help: help, typ: typ, collect: collect}
}

// Counter registers and returns a new counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(name, help, "counter", func(emit func(string, float64)) {
		emit("", float64(c.Value()))
	})
	return c
}

// Gauge registers and returns a new integer gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(name, help, "gauge", func(emit func(string, float64)) {
		emit("", float64(g.Value()))
	})
	return g
}

// FloatGauge registers and returns a new float gauge.
func (r *Registry) FloatGauge(name, help string) *FloatGauge {
	g := &FloatGauge{}
	r.register(name, help, "gauge", func(emit func(string, float64)) {
		emit("", g.Value())
	})
	return g
}

// Timer registers and returns a new duration tracker, exposed as
// <name>_count, <name>_seconds_sum and <name>_seconds_max.
func (r *Registry) Timer(name, help string) *Timer {
	t := &Timer{}
	r.register(name+"_count", help+" (observation count)", "counter", func(emit func(string, float64)) {
		emit("", float64(t.Count()))
	})
	r.register(name+"_seconds_sum", help+" (total seconds)", "counter", func(emit func(string, float64)) {
		emit("", t.SumSeconds())
	})
	r.register(name+"_seconds_max", help+" (largest single observation, seconds)", "gauge", func(emit func(string, float64)) {
		emit("", t.MaxSeconds())
	})
	return t
}

// Rate registers and returns a new rate tracker, exposed as <name>_total
// (cumulative count) and <name>_per_second (rate over the interval since
// the previous scrape). Pass the stem without a suffix.
func (r *Registry) Rate(name, help string) *Rate {
	rt := newRate(r.nowNs)
	r.register(name+"_total", help, "counter", func(emit func(string, float64)) {
		emit("", float64(rt.Value()))
	})
	r.register(name+"_per_second", help+" (scrape-to-scrape rate)", "gauge", func(emit func(string, float64)) {
		emit("", rt.PerSecond())
	})
	return rt
}

// CounterVec is a family of counters distinguished by label values
// (e.g. solver outcomes by method). Looking a child up takes a read lock
// and builds the label key, so grab children once where rates matter; the
// returned *Counter itself is hot-path safe.
type CounterVec struct {
	labelNames []string
	mu         sync.RWMutex
	children   map[string]*Counter
}

// CounterVec registers and returns a new labelled counter family.
func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec {
	if len(labelNames) == 0 {
		panic("obs: CounterVec needs at least one label")
	}
	v := &CounterVec{labelNames: labelNames, children: make(map[string]*Counter)}
	r.register(name, help, "counter", func(emit func(string, float64)) {
		v.mu.RLock()
		keys := make([]string, 0, len(v.children))
		for k := range v.children {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			emit(k, float64(v.children[k].Value()))
		}
		v.mu.RUnlock()
	})
	return v
}

// With returns the child counter for the given label values (one per label
// name, in order), creating it on first use.
func (v *CounterVec) With(values ...string) *Counter {
	if len(values) != len(v.labelNames) {
		panic(fmt.Sprintf("obs: CounterVec got %d label values, want %d", len(values), len(v.labelNames)))
	}
	key := renderLabels(v.labelNames, values)
	v.mu.RLock()
	c, ok := v.children[key]
	v.mu.RUnlock()
	if ok {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok := v.children[key]; ok {
		return c
	}
	c = &Counter{}
	v.children[key] = c
	return c
}

// GaugeVec is a family of gauges distinguished by label values (e.g.
// per-node queue depths of a simulated network). As with CounterVec,
// looking a child up takes a read lock and builds the label key — grab
// children once at setup where rates matter; the returned *Gauge itself is
// hot-path safe.
type GaugeVec struct {
	labelNames []string
	mu         sync.RWMutex
	children   map[string]*Gauge
}

// GaugeVec registers and returns a new labelled gauge family.
func (r *Registry) GaugeVec(name, help string, labelNames ...string) *GaugeVec {
	if len(labelNames) == 0 {
		panic("obs: GaugeVec needs at least one label")
	}
	v := &GaugeVec{labelNames: labelNames, children: make(map[string]*Gauge)}
	r.register(name, help, "gauge", func(emit func(string, float64)) {
		v.mu.RLock()
		keys := make([]string, 0, len(v.children))
		for k := range v.children {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			emit(k, float64(v.children[k].Value()))
		}
		v.mu.RUnlock()
	})
	return v
}

// With returns the child gauge for the given label values (one per label
// name, in order), creating it on first use.
func (v *GaugeVec) With(values ...string) *Gauge {
	if len(values) != len(v.labelNames) {
		panic(fmt.Sprintf("obs: GaugeVec got %d label values, want %d", len(values), len(v.labelNames)))
	}
	key := renderLabels(v.labelNames, values)
	v.mu.RLock()
	g, ok := v.children[key]
	v.mu.RUnlock()
	if ok {
		return g
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if g, ok := v.children[key]; ok {
		return g
	}
	g = &Gauge{}
	v.children[key] = g
	return g
}

// renderLabels builds the Prometheus label body `a="x",b="y"` with value
// escaping per the text exposition format.
func renderLabels(names, values []string) string {
	var b strings.Builder
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for _, c := range s {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// sortedFamilies snapshots the family list in name order.
func (r *Registry) sortedFamilies() []*family {
	r.mu.RLock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

// formatValue renders a sample value in Prometheus text conventions.
func formatValue(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every registered family in the Prometheus text
// exposition format, sorted by metric name.
func (r *Registry) WritePrometheus(w io.Writer) error {
	var b strings.Builder
	for _, f := range r.sortedFamilies() {
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, strings.ReplaceAll(f.help, "\n", " "))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		f.collect(func(labels string, v float64) {
			if labels == "" {
				fmt.Fprintf(&b, "%s %s\n", f.name, formatValue(v))
			} else {
				fmt.Fprintf(&b, "%s{%s} %s\n", f.name, labels, formatValue(v))
			}
		})
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteJSON renders a flat JSON object mapping "name" or "name{labels}" to
// the sample value, sorted by key — the /debug/vars document.
func (r *Registry) WriteJSON(w io.Writer) error {
	var b strings.Builder
	b.WriteString("{")
	first := true
	for _, f := range r.sortedFamilies() {
		f.collect(func(labels string, v float64) {
			if !first {
				b.WriteString(",\n ")
			} else {
				b.WriteString("\n ")
			}
			first = false
			key := f.name
			if labels != "" {
				key += "{" + labels + "}"
			}
			b.WriteString(strconv.Quote(key))
			b.WriteString(": ")
			// JSON has no NaN/Inf; encode them as strings.
			if math.IsNaN(v) || math.IsInf(v, 0) {
				b.WriteString(strconv.Quote(formatValue(v)))
			} else {
				b.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
			}
		})
	}
	b.WriteString("\n}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// Snapshot returns a point-in-time copy of every sample, keyed like
// WriteJSON ("name" or "name{labels}").
func (r *Registry) Snapshot() map[string]float64 {
	out := make(map[string]float64)
	for _, f := range r.sortedFamilies() {
		f.collect(func(labels string, v float64) {
			key := f.name
			if labels != "" {
				key += "{" + labels + "}"
			}
			out[key] = v
		})
	}
	return out
}

// Package-level constructors against the Default registry — what domain
// packages use for their package-level instruments.

// NewCounter registers a counter with the Default registry.
func NewCounter(name, help string) *Counter { return Default.Counter(name, help) }

// NewGauge registers an integer gauge with the Default registry.
func NewGauge(name, help string) *Gauge { return Default.Gauge(name, help) }

// NewFloatGauge registers a float gauge with the Default registry.
func NewFloatGauge(name, help string) *FloatGauge { return Default.FloatGauge(name, help) }

// NewTimer registers a duration tracker with the Default registry.
func NewTimer(name, help string) *Timer { return Default.Timer(name, help) }

// NewRate registers a rate tracker with the Default registry.
func NewRate(name, help string) *Rate { return Default.Rate(name, help) }

// NewCounterVec registers a labelled counter family with the Default
// registry.
func NewCounterVec(name, help string, labelNames ...string) *CounterVec {
	return Default.CounterVec(name, help, labelNames...)
}

// NewGaugeVec registers a labelled gauge family with the Default registry.
func NewGaugeVec(name, help string, labelNames ...string) *GaugeVec {
	return Default.GaugeVec(name, help, labelNames...)
}
