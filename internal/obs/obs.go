// Package obs is the runtime observability layer: allocation-free atomic
// instruments (counters, gauges, timers, rate trackers), a Registry with
// Prometheus-text and JSON exposition, and an optional HTTP endpoint
// serving /metrics and /debug/vars.
//
// The package is dependency-free (standard library only) so every layer of
// the system — the simulation event loop, the iterative solvers, the UDP
// generator — can instrument itself without import cycles or link-time
// weight. Hot-path operations (Counter.Inc, Gauge.Set, Timer.Observe,
// Rate.Mark) are single atomic instructions: zero allocations, no locks,
// safe from any goroutine. Registration and exposition take locks and may
// allocate; they run at init and scrape time, never per event.
//
// Metrics follow the Prometheus naming convention: a `hap_` prefix, an
// `_total` suffix on counters, and base units (seconds, bytes) in gauge
// names. Domain packages declare their instruments as package-level vars
// against the Default registry, so linking a package is what registers its
// metric families — a binary's /metrics page shows exactly the subsystems
// it contains.
package obs

import (
	"math"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. The zero value is not
// usable directly — obtain counters from a Registry (or NewCounter) so they
// appear in the exposition.
type Counter struct {
	v atomic.Int64
}

// Inc adds one. Allocation-free and safe for concurrent use.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 to keep the counter monotone; this is not
// checked on the hot path).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an integer instantaneous value (queue depth, heap size).
type Gauge struct {
	v atomic.Int64
}

// Set stores the current value. Allocation-free.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add shifts the gauge by n (useful for live population tracking).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// FloatGauge is a float64 instantaneous value (a residual, a measured
// mean), stored as raw bits so Set/Value stay lock- and allocation-free.
type FloatGauge struct {
	bits atomic.Uint64
}

// Set stores the current value. Allocation-free.
func (g *FloatGauge) Set(x float64) { g.bits.Store(math.Float64bits(x)) }

// Value returns the current value.
func (g *FloatGauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Timer accumulates observed durations: count, sum and max, each an atomic
// word. It is exposed as three series (<name>_count, <name>_seconds_sum,
// <name>_seconds_max), mirroring a Prometheus summary without quantiles.
type Timer struct {
	count atomic.Int64
	sumNs atomic.Int64
	maxNs atomic.Int64
}

// Observe records one duration. Allocation-free; the max update uses a CAS
// loop that almost always settles on the first try.
func (t *Timer) Observe(d time.Duration) {
	ns := int64(d)
	t.count.Add(1)
	t.sumNs.Add(ns)
	for {
		old := t.maxNs.Load()
		if ns <= old || t.maxNs.CompareAndSwap(old, ns) {
			return
		}
	}
}

// Count returns the number of observations.
func (t *Timer) Count() int64 { return t.count.Load() }

// SumSeconds returns the total observed time in seconds.
func (t *Timer) SumSeconds() float64 { return float64(t.sumNs.Load()) / 1e9 }

// MaxSeconds returns the largest single observation in seconds.
func (t *Timer) MaxSeconds() float64 { return float64(t.maxNs.Load()) / 1e9 }

// Rate is a lock-free event-rate tracker: Mark counts events on the hot
// path (one atomic add), and each exposition derives a scrape-to-scrape
// rate from the count delta and wall-clock delta. It is exposed as two
// series: <name>_total (the cumulative count) and <name>_per_second (the
// rate over the interval since the previous scrape).
type Rate struct {
	count atomic.Int64
	lastN atomic.Int64
	lastT atomic.Int64
	nowNs func() int64 // injectable for deterministic tests
}

// newRate builds a tracker whose rate window starts now.
func newRate(nowNs func() int64) *Rate {
	r := &Rate{nowNs: nowNs}
	r.lastT.Store(nowNs())
	return r
}

// Mark records n events. Allocation-free and safe for concurrent use.
func (r *Rate) Mark(n int64) { r.count.Add(n) }

// Value returns the cumulative event count.
func (r *Rate) Value() int64 { return r.count.Load() }

// PerSecond returns the event rate since the previous PerSecond call (or
// since creation) and starts a new window. Concurrent scrapes race benignly
// — each sees a consistent-enough delta; the hot path is untouched.
func (r *Rate) PerSecond() float64 {
	now := r.nowNs()
	n := r.count.Load()
	prevT := r.lastT.Swap(now)
	prevN := r.lastN.Swap(n)
	dt := float64(now-prevT) / 1e9
	if dt <= 0 {
		return 0
	}
	return float64(n-prevN) / dt
}
