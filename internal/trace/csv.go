// Package trace turns experiment output into artefacts: CSV series files
// under results/ and ASCII charts for the terminal, the two forms in which
// this reproduction publishes the paper's figures.
package trace

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
)

// Series is one named column of float64 values.
type Series struct {
	Name   string
	Values []float64
}

// WriteCSV writes aligned columns to path, creating parent directories.
// Shorter columns are padded with empty cells.
func WriteCSV(path string, cols ...Series) error {
	if len(cols) == 0 {
		return fmt.Errorf("trace: no columns")
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	header := make([]string, len(cols))
	rows := 0
	for i, c := range cols {
		header[i] = c.Name
		if len(c.Values) > rows {
			rows = len(c.Values)
		}
	}
	if err := w.Write(header); err != nil {
		return err
	}
	rec := make([]string, len(cols))
	for r := 0; r < rows; r++ {
		for i, c := range cols {
			if r < len(c.Values) {
				rec[i] = strconv.FormatFloat(c.Values[r], 'g', 10, 64)
			} else {
				rec[i] = ""
			}
		}
		if err := w.Write(rec); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}

// ReadCSV reads a file written by WriteCSV back into series (used by
// tests; empty cells terminate the column).
func ReadCSV(path string) ([]Series, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := csv.NewReader(f)
	recs, err := r.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("trace: empty csv %s", path)
	}
	out := make([]Series, len(recs[0]))
	for i, name := range recs[0] {
		out[i].Name = name
	}
	for _, rec := range recs[1:] {
		for i, cell := range rec {
			if cell == "" {
				continue
			}
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				return nil, err
			}
			out[i].Values = append(out[i].Values, v)
		}
	}
	return out, nil
}

// Downsample reduces xs/ys to at most n points by taking the maximum y in
// each bucket (max-preserving, so queue-length mountains survive; means
// would flatten them).
func Downsample(xs, ys []float64, n int) (ox, oy []float64) {
	if len(xs) != len(ys) {
		panic("trace: downsample length mismatch")
	}
	if len(xs) <= n || n < 1 {
		return xs, ys
	}
	bucket := (len(xs) + n - 1) / n
	for i := 0; i < len(xs); i += bucket {
		end := i + bucket
		if end > len(xs) {
			end = len(xs)
		}
		maxJ := i
		for j := i + 1; j < end; j++ {
			if ys[j] > ys[maxJ] {
				maxJ = j
			}
		}
		ox = append(ox, xs[maxJ])
		oy = append(oy, ys[maxJ])
	}
	return ox, oy
}
