package trace

import (
	"errors"
	"path/filepath"
	"strings"
	"testing"

	"hap/internal/haperr"
)

func TestReadCSVFromHeaderAndCRLF(t *testing.T) {
	in := "t,idc\r\n\r\n0.5,1.0\r\n1.5,1.1\r\n"
	cols, err := ReadCSVFrom(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(cols) != 2 || cols[0].Name != "t" || cols[1].Name != "idc" {
		t.Fatalf("columns = %+v", cols)
	}
	if len(cols[0].Values) != 2 || cols[0].Values[1] != 1.5 {
		t.Errorf("t column = %v", cols[0].Values)
	}
}

func TestReadCSVFromHeaderless(t *testing.T) {
	cols, err := ReadCSVFrom(strings.NewReader("1\n2\n3\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(cols) != 1 || cols[0].Name != "col0" || len(cols[0].Values) != 3 {
		t.Fatalf("columns = %+v", cols)
	}
}

func TestReadCSVFromRaggedAndBlankRows(t *testing.T) {
	in := "a,b\n1,2\n3\n ,\n5,6\n"
	cols, err := ReadCSVFrom(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if got := cols[0].Values; len(got) != 3 || got[1] != 3 {
		t.Errorf("a column = %v", got)
	}
	if got := cols[1].Values; len(got) != 2 || got[1] != 6 {
		t.Errorf("b column = %v", got)
	}
}

func TestReadCSVFromRejectsGarbage(t *testing.T) {
	for _, in := range []string{
		"",
		"\n\n",
		"t\n1\nbogus\n",
		"1,2\n3,oops\n",
	} {
		if _, err := ReadCSVFrom(strings.NewReader(in)); !errors.Is(err, haperr.ErrBadParameter) {
			t.Errorf("input %q: want ErrBadParameter, got %v", in, err)
		}
	}
}

func TestReadTimestampsRoundTripsWriter(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.csv")
	want := []float64{0.25, 1.5, 2.75, 4}
	if err := WriteCSV(path, Series{Name: "arrival_s", Values: want}); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTimestamps(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestReadTimestampsMissingFile(t *testing.T) {
	if _, err := ReadTimestamps(filepath.Join(t.TempDir(), "nope.csv")); err == nil {
		t.Fatal("want error for missing file")
	}
}

// FuzzReadCSV asserts the reader's only failure mode on arbitrary bytes is
// a clean ErrBadParameter — never a panic — and that anything it does
// accept parses into finite-length columns consistent with the input size.
func FuzzReadCSV(f *testing.F) {
	f.Add("t,idc\n0.5,1.0\n")
	f.Add("1\n2\n3\n")
	f.Add("a,b\r\n1,2\r\n")
	f.Add("1,2\n3\n,\n")
	f.Add(`"quoted",2` + "\n")
	f.Add("\xff\xfe0,1\n")
	f.Fuzz(func(t *testing.T, in string) {
		cols, err := ReadCSVFrom(strings.NewReader(in))
		if err != nil {
			if !errors.Is(err, haperr.ErrBadParameter) {
				t.Fatalf("non-parameter error %v on input %q", err, in)
			}
			return
		}
		if len(cols) == 0 {
			t.Fatalf("nil error but no columns on input %q", in)
		}
		for _, c := range cols {
			if len(c.Values) > len(in) {
				t.Fatalf("column %q has %d values from %d input bytes", c.Name, len(c.Values), len(in))
			}
		}
	})
}

// TestReadTimestampsFromDialects pins the streaming reader against the
// same dialect zoo ReadCSVFrom tolerates, including long lines that spill
// past the read buffer.
func TestReadTimestampsFromDialects(t *testing.T) {
	pad := strings.Repeat(" ", 70<<10) // force the ErrBufferFull spill path
	cases := []struct {
		name string
		in   string
		want []float64
	}{
		{"header crlf", "t,idc\r\n\r\n0.5,1.0\r\n1.5,1.1\r\n", []float64{0.5, 1.5}},
		{"headerless", "1\n2\n3\n", []float64{1, 2, 3}},
		{"no trailing newline", "1\n2", []float64{1, 2}},
		{"blank and ragged rows", "a,b\n1,2\n3\n ,\n5,6\n", []float64{1, 3, 5}},
		{"quoted cells", "\"0.5\",1\n\"1.5\"\n", []float64{0.5, 1.5}},
		{"quoted header", "\"t\",x\n0.5\n", []float64{0.5}},
		{"empty first cell kept row", ",7\n2,8\n", []float64{2}},
		{"long line", "0.5\n1," + pad + "x\n2\n", []float64{0.5, 1, 2}},
		{"long header", "t," + pad + "name\n3\n", []float64{3}},
	}
	for _, tc := range cases {
		got, err := ReadTimestampsFrom(strings.NewReader(tc.in))
		if err != nil {
			t.Errorf("%s: %v", tc.name, err)
			continue
		}
		if len(got) != len(tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, got, tc.want)
			continue
		}
		for i := range tc.want {
			if got[i] != tc.want[i] {
				t.Errorf("%s: got %v, want %v", tc.name, got, tc.want)
				break
			}
		}
	}
	for _, in := range []string{"", "\n\n", "t\nbogus\n1\n", "1\noops\n"} {
		if _, err := ReadTimestampsFrom(strings.NewReader(in)); !errors.Is(err, haperr.ErrBadParameter) {
			t.Errorf("input %q: want ErrBadParameter, got %v", in, err)
		}
	}
}

// FuzzReadTimestamps holds the streaming reader to the ReadCSVFrom
// contract: never panic, fail only with ErrBadParameter, and — when both
// readers accept a quote-free input — produce exactly ReadCSVFrom's first
// column. (Quoted inputs are excluded from the comparison because the csv
// package's quote dialect is deliberately not replicated.)
func FuzzReadTimestamps(f *testing.F) {
	f.Add("t,idc\n0.5,1.0\n")
	f.Add("1\n2\n3\n")
	f.Add("a,b\r\n1,2\r\n")
	f.Add("1,2\n3\n,\n")
	f.Add("\xff\xfe0,1\n")
	f.Fuzz(func(t *testing.T, in string) {
		got, err := ReadTimestampsFrom(strings.NewReader(in))
		if err != nil {
			if !errors.Is(err, haperr.ErrBadParameter) {
				t.Fatalf("non-parameter error %v on input %q", err, in)
			}
			return
		}
		if len(got) == 0 {
			t.Fatalf("nil error but no timestamps on input %q", in)
		}
		if strings.ContainsAny(in, `"`) {
			return
		}
		cols, cerr := ReadCSVFrom(strings.NewReader(in))
		if cerr != nil || len(cols) == 0 {
			return
		}
		want := cols[0].Values
		if len(got) != len(want) {
			t.Fatalf("first column differs on %q: stream %v, csv %v", in, got, want)
		}
		for i := range want {
			if got[i] != want[i] && !(got[i] != got[i] && want[i] != want[i]) {
				t.Fatalf("first column differs on %q: stream %v, csv %v", in, got, want)
			}
		}
	})
}
