package trace

import (
	"bufio"
	"bytes"
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"hap/internal/haperr"
)

// This file is the reading half of the package: hapfit ingests packet
// traces users hand it, so unlike ReadCSV (which round-trips this
// package's own writer output for tests) the readers here are tolerant of
// the dialect zoo real trace files arrive in — CRLF line endings, blank
// lines, ragged rows, optional header rows, stray spaces — and return
// ErrBadParameter errors instead of panicking on anything malformed.

// ReadCSVFrom parses CSV from r into column series. Tolerated dialect:
// CRLF or LF endings, blank lines anywhere, rows with differing field
// counts (short rows leave later columns unpadded), leading whitespace,
// lazy quotes, and an optional header row — the first row is a header
// when any of its cells does not parse as a number, otherwise it is data
// and columns are named col0, col1, … Empty cells are skipped. A non-
// numeric cell in a data row is an error wrapping ErrBadParameter.
func ReadCSVFrom(r io.Reader) ([]Series, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	cr.LazyQuotes = true
	cr.TrimLeadingSpace = true
	recs, err := cr.ReadAll()
	if err != nil {
		return nil, haperr.Badf("trace: malformed csv (%v)", err)
	}
	// Drop rows whose every cell is blank (csv already skips fully empty
	// lines; this also catches ",," and whitespace-only rows).
	rows := recs[:0]
	for _, rec := range recs {
		blank := true
		for _, cell := range rec {
			if strings.TrimSpace(cell) != "" {
				blank = false
				break
			}
		}
		if !blank {
			rows = append(rows, rec)
		}
	}
	if len(rows) == 0 {
		return nil, haperr.Badf("trace: csv holds no data rows")
	}
	width := 0
	for _, rec := range rows {
		if len(rec) > width {
			width = len(rec)
		}
	}
	out := make([]Series, width)
	header := false
	for _, cell := range rows[0] {
		cell = strings.TrimSpace(cell)
		if cell == "" {
			continue
		}
		if _, err := strconv.ParseFloat(cell, 64); err != nil {
			header = true
			break
		}
	}
	if header {
		for i := range out {
			if i < len(rows[0]) {
				out[i].Name = strings.TrimSpace(rows[0][i])
			}
			if out[i].Name == "" {
				out[i].Name = fmt.Sprintf("col%d", i)
			}
		}
		rows = rows[1:]
	} else {
		for i := range out {
			out[i].Name = fmt.Sprintf("col%d", i)
		}
	}
	for nr, rec := range rows {
		for i, cell := range rec {
			cell = strings.TrimSpace(cell)
			if cell == "" {
				continue
			}
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				return nil, haperr.Badf("trace: row %d column %d: %q is not a number", nr+1, i, cell)
			}
			out[i].Values = append(out[i].Values, v)
		}
	}
	return out, nil
}

// ReadTimestampsFrom parses the first column of CSV data from r — the
// arrival-timestamp convention hapgen writes and hapfit reads.
//
// Unlike ReadCSVFrom it streams: lines are scanned in place out of one
// reused read buffer, and only the first cell of each data row is parsed,
// so a multi-million-line trace costs one float64 slice instead of the
// csv package's per-row string tables. The tolerated dialect is the same
// (CRLF, blank lines, ragged and whitespace rows, matched surrounding
// quotes, optional header — the first non-blank row is a header when any
// of its cells does not parse as a number); cells beyond the first are
// not validated, which is the point of reading a single column.
func ReadTimestampsFrom(r io.Reader) ([]float64, error) {
	br := bufio.NewReaderSize(r, 64<<10)
	var out []float64
	var long []byte // spill buffer for lines longer than the reader's
	sawRow := false
	row := 0
	for {
		line, err := br.ReadSlice('\n')
		if err == bufio.ErrBufferFull {
			long = append(long[:0], line...)
			for err == bufio.ErrBufferFull {
				line, err = br.ReadSlice('\n')
				long = append(long, line...)
			}
			line = long
		}
		if err != nil && err != io.EOF {
			return nil, haperr.Badf("trace: read failed (%v)", err)
		}
		done := err == io.EOF
		if cell, blank := firstCell(line); !blank {
			row++
			if !sawRow {
				sawRow = true
				if rowIsHeader(line) {
					if done {
						break
					}
					continue
				}
			}
			if len(cell) > 0 {
				v, perr := strconv.ParseFloat(string(cell), 64)
				if perr != nil {
					return nil, haperr.Badf("trace: row %d column 0: %q is not a number", row, cell)
				}
				out = append(out, v)
			}
		}
		if done {
			break
		}
	}
	if len(out) == 0 {
		return nil, haperr.Badf("trace: csv holds no timestamps in its first column")
	}
	return out, nil
}

// firstCell returns the first comma-separated cell of line (trimmed, with
// matched surrounding quotes stripped) and whether the whole row is blank.
func firstCell(line []byte) (cell []byte, blank bool) {
	line = trimEOL(line)
	rest := line
	if i := bytes.IndexByte(line, ','); i >= 0 {
		cell, rest = trimCell(line[:i]), line[i+1:]
	} else {
		cell, rest = trimCell(line), nil
	}
	if len(cell) > 0 {
		return cell, false
	}
	// First cell is empty: the row is blank only if every other cell is.
	for len(rest) > 0 {
		var c []byte
		if i := bytes.IndexByte(rest, ','); i >= 0 {
			c, rest = trimCell(rest[:i]), rest[i+1:]
		} else {
			c, rest = trimCell(rest), nil
		}
		if len(c) > 0 {
			return nil, false
		}
	}
	return nil, true
}

// rowIsHeader reports whether any non-empty cell of the row fails to
// parse as a number — the same first-row header heuristic ReadCSVFrom
// applies.
func rowIsHeader(line []byte) bool {
	rest := trimEOL(line)
	for {
		var c []byte
		if i := bytes.IndexByte(rest, ','); i >= 0 {
			c, rest = trimCell(rest[:i]), rest[i+1:]
		} else {
			c, rest = trimCell(rest), nil
		}
		if len(c) > 0 {
			if _, err := strconv.ParseFloat(string(c), 64); err != nil {
				return true
			}
		}
		if rest == nil {
			return false
		}
	}
}

// trimEOL strips a trailing LF or CRLF.
func trimEOL(line []byte) []byte {
	if n := len(line); n > 0 && line[n-1] == '\n' {
		line = line[:n-1]
	}
	if n := len(line); n > 0 && line[n-1] == '\r' {
		line = line[:n-1]
	}
	return line
}

// trimCell trims surrounding spaces and one layer of matched quotes —
// "0.5" parses like 0.5, but a lone or mismatched quote stays literal
// (so a row like "1,2",3 cannot masquerade as the numeric row 1,2,3).
func trimCell(c []byte) []byte {
	c = bytes.TrimSpace(c)
	if len(c) >= 2 && c[0] == '"' && c[len(c)-1] == '"' {
		c = bytes.TrimSpace(c[1 : len(c)-1])
	}
	return c
}

// ReadTimestamps reads the first column of the CSV file at path.
func ReadTimestamps(path string) ([]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	ts, err := ReadTimestampsFrom(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return ts, nil
}
