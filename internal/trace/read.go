package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"hap/internal/haperr"
)

// This file is the reading half of the package: hapfit ingests packet
// traces users hand it, so unlike ReadCSV (which round-trips this
// package's own writer output for tests) the readers here are tolerant of
// the dialect zoo real trace files arrive in — CRLF line endings, blank
// lines, ragged rows, optional header rows, stray spaces — and return
// ErrBadParameter errors instead of panicking on anything malformed.

// ReadCSVFrom parses CSV from r into column series. Tolerated dialect:
// CRLF or LF endings, blank lines anywhere, rows with differing field
// counts (short rows leave later columns unpadded), leading whitespace,
// lazy quotes, and an optional header row — the first row is a header
// when any of its cells does not parse as a number, otherwise it is data
// and columns are named col0, col1, … Empty cells are skipped. A non-
// numeric cell in a data row is an error wrapping ErrBadParameter.
func ReadCSVFrom(r io.Reader) ([]Series, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	cr.LazyQuotes = true
	cr.TrimLeadingSpace = true
	recs, err := cr.ReadAll()
	if err != nil {
		return nil, haperr.Badf("trace: malformed csv (%v)", err)
	}
	// Drop rows whose every cell is blank (csv already skips fully empty
	// lines; this also catches ",," and whitespace-only rows).
	rows := recs[:0]
	for _, rec := range recs {
		blank := true
		for _, cell := range rec {
			if strings.TrimSpace(cell) != "" {
				blank = false
				break
			}
		}
		if !blank {
			rows = append(rows, rec)
		}
	}
	if len(rows) == 0 {
		return nil, haperr.Badf("trace: csv holds no data rows")
	}
	width := 0
	for _, rec := range rows {
		if len(rec) > width {
			width = len(rec)
		}
	}
	out := make([]Series, width)
	header := false
	for _, cell := range rows[0] {
		cell = strings.TrimSpace(cell)
		if cell == "" {
			continue
		}
		if _, err := strconv.ParseFloat(cell, 64); err != nil {
			header = true
			break
		}
	}
	if header {
		for i := range out {
			if i < len(rows[0]) {
				out[i].Name = strings.TrimSpace(rows[0][i])
			}
			if out[i].Name == "" {
				out[i].Name = fmt.Sprintf("col%d", i)
			}
		}
		rows = rows[1:]
	} else {
		for i := range out {
			out[i].Name = fmt.Sprintf("col%d", i)
		}
	}
	for nr, rec := range rows {
		for i, cell := range rec {
			cell = strings.TrimSpace(cell)
			if cell == "" {
				continue
			}
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				return nil, haperr.Badf("trace: row %d column %d: %q is not a number", nr+1, i, cell)
			}
			out[i].Values = append(out[i].Values, v)
		}
	}
	return out, nil
}

// ReadTimestampsFrom parses the first column of CSV data from r — the
// arrival-timestamp convention hapgen writes and hapfit reads.
func ReadTimestampsFrom(r io.Reader) ([]float64, error) {
	cols, err := ReadCSVFrom(r)
	if err != nil {
		return nil, err
	}
	if len(cols) == 0 || len(cols[0].Values) == 0 {
		return nil, haperr.Badf("trace: csv holds no timestamps in its first column")
	}
	return cols[0].Values, nil
}

// ReadTimestamps reads the first column of the CSV file at path.
func ReadTimestamps(path string) ([]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	ts, err := ReadTimestampsFrom(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return ts, nil
}
