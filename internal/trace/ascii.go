package trace

import (
	"fmt"
	"math"
	"strings"
)

// ChartOptions tunes ASCII rendering.
type ChartOptions struct {
	Width  int // plot columns (default 72)
	Height int // plot rows (default 18)
	Title  string
	XLabel string
	YLabel string
	LogY   bool // plot log10(y); non-positive values are dropped
}

// Line is one named (x, y) series; up to four series share a chart with
// distinct markers.
type Line struct {
	Name string
	Xs   []float64
	Ys   []float64
}

var markers = []byte{'*', 'o', '+', 'x'}

// Chart renders one or more series as an ASCII scatter/line chart with
// axis scales — how cmd/experiments shows the paper's figures in the
// terminal (the CSVs carry the precise data).
func Chart(opts ChartOptions, lines ...Line) string {
	w, h := opts.Width, opts.Height
	if w <= 0 {
		w = 72
	}
	if h <= 0 {
		h = 18
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	type pt struct{ x, y float64 }
	pts := make([][]pt, len(lines))
	for li, l := range lines {
		for i := range l.Xs {
			y := l.Ys[i]
			if opts.LogY {
				if y <= 0 {
					continue
				}
				y = math.Log10(y)
			}
			x := l.Xs[i]
			if math.IsNaN(x) || math.IsNaN(y) || math.IsInf(x, 0) || math.IsInf(y, 0) {
				continue
			}
			pts[li] = append(pts[li], pt{x, y})
			minX, maxX = math.Min(minX, x), math.Max(maxX, x)
			minY, maxY = math.Min(minY, y), math.Max(maxY, y)
		}
	}
	if math.IsInf(minX, 1) {
		return "(no data)\n"
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, h)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", w))
	}
	for li := range pts {
		mk := markers[li%len(markers)]
		for _, p := range pts[li] {
			c := int((p.x - minX) / (maxX - minX) * float64(w-1))
			r := h - 1 - int((p.y-minY)/(maxY-minY)*float64(h-1))
			grid[r][c] = mk
		}
	}
	var b strings.Builder
	if opts.Title != "" {
		fmt.Fprintf(&b, "%s\n", opts.Title)
	}
	yname := opts.YLabel
	if opts.LogY {
		yname = "log10(" + yname + ")"
	}
	top, bot := maxY, minY
	fmt.Fprintf(&b, "%10.4g ┤%s\n", top, string(grid[0]))
	for r := 1; r < h-1; r++ {
		label := "          "
		if r == h/2 && yname != "" {
			label = fmt.Sprintf("%10.10s", yname)
		}
		fmt.Fprintf(&b, "%s │%s\n", label, string(grid[r]))
	}
	fmt.Fprintf(&b, "%10.4g ┤%s\n", bot, string(grid[h-1]))
	fmt.Fprintf(&b, "%10s └%s\n", "", strings.Repeat("─", w))
	fmt.Fprintf(&b, "%10s  %-12.6g%s%12.6g\n", "", minX,
		centerPad(opts.XLabel, w-24), maxX)
	if len(lines) > 1 {
		var leg []string
		for i, l := range lines {
			leg = append(leg, fmt.Sprintf("%c %s", markers[i%len(markers)], l.Name))
		}
		fmt.Fprintf(&b, "%10s  legend: %s\n", "", strings.Join(leg, "   "))
	}
	return b.String()
}

func centerPad(s string, width int) string {
	if width < len(s) {
		return s
	}
	left := (width - len(s)) / 2
	return strings.Repeat(" ", left) + s + strings.Repeat(" ", width-len(s)-left)
}

// Sparkline renders values as a compact one-line bar chart.
func Sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	ramp := []rune("▁▂▃▄▅▆▇█")
	min, max := values[0], values[0]
	for _, v := range values {
		min = math.Min(min, v)
		max = math.Max(max, v)
	}
	var b strings.Builder
	for _, v := range values {
		i := 0
		if max > min {
			i = int((v - min) / (max - min) * float64(len(ramp)-1))
		}
		b.WriteRune(ramp[i])
	}
	return b.String()
}

// Table renders rows with a header in aligned columns.
func Table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, hcol := range header {
		widths[i] = len(hcol)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}
