package trace

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteReadCSVRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sub", "x.csv")
	err := WriteCSV(path,
		Series{Name: "t", Values: []float64{1, 2, 3}},
		Series{Name: "v", Values: []float64{0.5, math.Pi}},
	)
	if err != nil {
		t.Fatal(err)
	}
	cols, err := ReadCSV(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(cols) != 2 || cols[0].Name != "t" || cols[1].Name != "v" {
		t.Fatalf("bad columns: %+v", cols)
	}
	if len(cols[0].Values) != 3 || len(cols[1].Values) != 2 {
		t.Fatalf("bad lengths: %d %d", len(cols[0].Values), len(cols[1].Values))
	}
	if math.Abs(cols[1].Values[1]-math.Pi) > 1e-9 {
		t.Errorf("pi roundtrip: %v", cols[1].Values[1])
	}
}

func TestWriteCSVEmptyFails(t *testing.T) {
	if err := WriteCSV(filepath.Join(t.TempDir(), "x.csv")); err == nil {
		t.Error("expected error for no columns")
	}
}

func TestReadCSVMissing(t *testing.T) {
	if _, err := ReadCSV(filepath.Join(t.TempDir(), "nope.csv")); !os.IsNotExist(err) {
		t.Errorf("expected not-exist, got %v", err)
	}
}

func TestDownsampleMaxPreserving(t *testing.T) {
	xs := make([]float64, 1000)
	ys := make([]float64, 1000)
	for i := range xs {
		xs[i] = float64(i)
		ys[i] = 1
	}
	ys[777] = 99 // the mountain must survive
	ox, oy := Downsample(xs, ys, 50)
	if len(ox) > 51 {
		t.Fatalf("downsample kept %d points", len(ox))
	}
	var found bool
	for _, v := range oy {
		if v == 99 {
			found = true
		}
	}
	if !found {
		t.Error("max-preserving downsample lost the peak")
	}
	// Short input passes through.
	ox2, _ := Downsample(xs[:10], ys[:10], 50)
	if len(ox2) != 10 {
		t.Error("short input should pass through")
	}
}

func TestChartRendersSeries(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4}
	out := Chart(ChartOptions{Title: "demo", XLabel: "x", YLabel: "y", Width: 40, Height: 10},
		Line{Name: "a", Xs: xs, Ys: []float64{0, 1, 4, 9, 16}},
		Line{Name: "b", Xs: xs, Ys: []float64{16, 9, 4, 1, 0}},
	)
	for _, frag := range []string{"demo", "*", "o", "legend", "16"} {
		if !strings.Contains(out, frag) {
			t.Errorf("chart missing %q:\n%s", frag, out)
		}
	}
}

func TestChartLogYDropsNonPositive(t *testing.T) {
	out := Chart(ChartOptions{LogY: true, YLabel: "v"},
		Line{Name: "a", Xs: []float64{1, 2, 3}, Ys: []float64{0, 10, 100}})
	if !strings.Contains(out, "log10") {
		t.Error("log scale not labelled")
	}
	if Chart(ChartOptions{LogY: true}, Line{Name: "x", Xs: []float64{1}, Ys: []float64{-1}}) != "(no data)\n" {
		t.Error("all-dropped chart should say no data")
	}
}

func TestChartEmpty(t *testing.T) {
	if Chart(ChartOptions{}) != "(no data)\n" {
		t.Error("empty chart should say no data")
	}
}

func TestChartConstantSeries(t *testing.T) {
	out := Chart(ChartOptions{}, Line{Name: "c", Xs: []float64{1, 2}, Ys: []float64{5, 5}})
	if strings.Contains(out, "no data") {
		t.Error("constant series should still render")
	}
}

func TestSparkline(t *testing.T) {
	s := Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7})
	if len([]rune(s)) != 8 {
		t.Fatalf("sparkline length %d", len([]rune(s)))
	}
	if []rune(s)[0] != '▁' || []rune(s)[7] != '█' {
		t.Errorf("ramp endpoints wrong: %s", s)
	}
	if Sparkline(nil) != "" {
		t.Error("empty sparkline")
	}
	flat := Sparkline([]float64{2, 2})
	if []rune(flat)[0] != '▁' {
		t.Error("flat series should render at the floor")
	}
}

func TestTable(t *testing.T) {
	out := Table([]string{"name", "value"}, [][]string{{"x", "1"}, {"longer", "2.5"}})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "name") || !strings.Contains(lines[3], "longer") {
		t.Errorf("table layout wrong:\n%s", out)
	}
}
