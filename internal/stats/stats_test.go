package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func wantClose(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %v, want %v (tol %v)", name, got, want, tol)
	}
}

func TestWelfordBasics(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	wantClose(t, "mean", w.Mean(), 5, 1e-12)
	wantClose(t, "var", w.Var(), 32.0/7, 1e-12)
	wantClose(t, "min", w.Min(), 2, 0)
	wantClose(t, "max", w.Max(), 9, 0)
	if w.N() != 8 {
		t.Errorf("N = %d", w.N())
	}
}

func TestWelfordMergeEqualsSequential(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	var all, a, b Welford
	for i := 0; i < 1000; i++ {
		x := r.NormFloat64()*3 + 1
		all.Add(x)
		if i < 400 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(&b)
	wantClose(t, "merged mean", a.Mean(), all.Mean(), 1e-10)
	wantClose(t, "merged var", a.Var(), all.Var(), 1e-8)
	if a.N() != all.N() {
		t.Error("merged count mismatch")
	}
}

func TestWelfordMergeEmpty(t *testing.T) {
	var a, b Welford
	a.Add(1)
	a.Merge(&b) // no-op
	if a.N() != 1 {
		t.Error("merge with empty changed count")
	}
	b.Merge(&a)
	if b.N() != 1 || b.Mean() != 1 {
		t.Error("merge into empty failed")
	}
}

func TestTimeWeightedQueueExample(t *testing.T) {
	// Queue holds 0 on [0,1), 2 on [1,3), 1 on [3,4): mean = (0+4+1)/4.
	var tw TimeWeighted
	tw.Start(0, 0)
	tw.Update(1, 2)
	tw.Update(3, 1)
	tw.Update(4, 0)
	wantClose(t, "time mean", tw.Mean(), 1.25, 1e-12)
	wantClose(t, "max", tw.Max(), 2, 0)
	wantClose(t, "elapsed", tw.Elapsed(), 4, 0)
	// Var: E[X²] = (0+ 4*2 + 1)/4 = 2.25; Var = 2.25 - 1.5625
	wantClose(t, "time var", tw.Var(), 2.25-1.5625, 1e-12)
}

func TestTimeWeightedBackwardsPanics(t *testing.T) {
	var tw TimeWeighted
	tw.Start(5, 1)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	tw.Update(4, 2)
}

func TestHistogramDensityIntegratesToOne(t *testing.T) {
	h := NewHistogram(0, 5, 50)
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 200000; i++ {
		h.Add(r.ExpFloat64()) // rate 1; mass beyond 5 is ~e^-5
	}
	var integral float64
	for i := 0; i < h.Bins(); i++ {
		integral += h.Density(i) * h.BinWidth()
	}
	wantClose(t, "∫density", integral, 1-math.Exp(-5), 0.01)
	// Density in the first bin should match the bin-averaged exp density.
	bw := h.BinWidth()
	wantClose(t, "density(0)", h.Density(0), (1-math.Exp(-bw))/bw, 0.02)
	wantClose(t, "mean", h.Mean(), 1, 0.02)
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(0, 10, 100)
	for i := 0; i < 1000; i++ {
		h.Add(float64(i%10) + 0.5)
	}
	q := h.Quantile(0.5)
	if q < 4 || q > 6 {
		t.Errorf("median = %v, want ~5", q)
	}
	if h.Quantile(0) != 0 {
		t.Errorf("0-quantile = %v", h.Quantile(0))
	}
}

func TestHistogramOutOfRange(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	h.Add(-5)
	h.Add(2)
	h.Add(0.5)
	if h.N() != 3 {
		t.Error("N must count out-of-range")
	}
	if h.CDFAt(3) != 2.0/3 { // under + in-range over N
		t.Errorf("CDFAt(last) = %v", h.CDFAt(3))
	}
}

func TestQuantilesExact(t *testing.T) {
	qs := Quantiles([]float64{5, 1, 3, 2, 4}, 0, 0.5, 1)
	wantClose(t, "min", qs[0], 1, 0)
	wantClose(t, "median", qs[1], 3, 0)
	wantClose(t, "max", qs[2], 5, 0)
}

func TestAutocorrelationWhiteNoise(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = r.NormFloat64()
	}
	ac := Autocorrelation(xs, 5)
	wantClose(t, "lag0", ac[0], 1, 1e-12)
	for k := 1; k <= 5; k++ {
		if math.Abs(ac[k]) > 0.03 {
			t.Errorf("lag%d = %v, want ~0", k, ac[k])
		}
	}
}

func TestAutocorrelationAR1(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	const phi = 0.8
	xs := make([]float64, 50000)
	for i := 1; i < len(xs); i++ {
		xs[i] = phi*xs[i-1] + r.NormFloat64()
	}
	ac := Autocorrelation(xs, 3)
	wantClose(t, "lag1", ac[1], phi, 0.03)
	wantClose(t, "lag2", ac[2], phi*phi, 0.04)
}

func TestAutocorrelationDegenerate(t *testing.T) {
	ac := Autocorrelation([]float64{2, 2, 2}, 2)
	if ac[0] != 1 {
		t.Error("constant series lag0 must be 1 by convention")
	}
	if Autocorrelation(nil, 3) != nil {
		t.Error("empty series should return nil")
	}
}

func TestIDCPoissonIsOne(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	var ts []float64
	t0 := 0.0
	for i := 0; i < 200000; i++ {
		t0 += r.ExpFloat64() / 5
		ts = append(ts, t0)
	}
	for _, win := range []float64{0.5, 2, 10} {
		idc := IDC(ts, win)
		if idc < 0.9 || idc > 1.1 {
			t.Errorf("Poisson IDC(win=%v) = %v, want ~1", win, idc)
		}
	}
}

func TestIDCModulatedExceedsOne(t *testing.T) {
	// ON/OFF modulated Poisson: rate 10 for 50 time units, 0 for 50, repeat.
	r := rand.New(rand.NewSource(5))
	var ts []float64
	for cycle := 0; cycle < 200; cycle++ {
		base := float64(cycle) * 100
		t0 := base
		for {
			t0 += r.ExpFloat64() / 10
			if t0 >= base+50 {
				break
			}
			ts = append(ts, t0)
		}
	}
	idc := IDC(ts, 20)
	if idc < 5 {
		t.Errorf("modulated IDC = %v, want >> 1", idc)
	}
}

func TestIDCEdgeCases(t *testing.T) {
	if IDC(nil, 1) != 0 || IDC([]float64{1}, 0) != 0 || IDC([]float64{1, 2}, 100) != 0 {
		t.Error("degenerate IDC should be 0")
	}
}

func TestBatchMeansCoversTrueMean(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	xs := make([]float64, 40000)
	for i := range xs {
		xs[i] = 3 + r.NormFloat64()
	}
	mean, hw := BatchMeans(xs, 40)
	if math.Abs(mean-3) > hw {
		t.Errorf("true mean outside CI: %v ± %v", mean, hw)
	}
	if hw <= 0 || hw > 0.1 {
		t.Errorf("suspicious half width %v", hw)
	}
	_, hw2 := BatchMeans(xs[:3], 40)
	if !math.IsInf(hw2, 1) {
		t.Error("too-few samples should report infinite half width")
	}
}

func TestRunningMeanTrace(t *testing.T) {
	rm := NewRunningMean(10)
	for i := 1; i <= 100; i++ {
		rm.Add(float64(i))
	}
	wantClose(t, "final mean", rm.Mean(), 50.5, 1e-12)
	if len(rm.Ys) != 10 {
		t.Fatalf("checkpoints = %d, want 10", len(rm.Ys))
	}
	wantClose(t, "first checkpoint", rm.Ys[0], 5.5, 1e-12)
	if rm.FluctuationSpan(0) <= 0 {
		t.Error("monotone running mean should have positive span")
	}
}

func TestBusyTrackerBasic(t *testing.T) {
	var bt BusyTracker
	bt.Keep = true
	// idle [0,1), busy [1,4) peaking at 3, idle [4,6), busy [6,7) peak 1.
	bt.Observe(0, 0)
	bt.Observe(1, 1)
	bt.Observe(2, 3)
	bt.Observe(3, 2)
	bt.Observe(4, 0)
	bt.Observe(6, 1)
	bt.Observe(7, 0)
	if bt.Mountains() != 2 {
		t.Fatalf("mountains = %d", bt.Mountains())
	}
	wantClose(t, "busy mean", bt.Busy.Mean(), 2, 1e-12)
	wantClose(t, "idle mean", bt.Idle.Mean(), 1.5, 1e-12)
	wantClose(t, "height mean", bt.Height.Mean(), 2, 1e-12)
	wantClose(t, "busy fraction", bt.BusyFraction(), 2.0/3.5, 1e-12)
	longest, tallest := bt.Peak()
	wantClose(t, "longest", longest.Length(), 3, 1e-12)
	if tallest.Height != 3 {
		t.Errorf("tallest height = %d", tallest.Height)
	}
}

func TestBusyTrackerStartsBusy(t *testing.T) {
	var bt BusyTracker
	bt.Observe(0, 2)
	bt.Observe(5, 0)
	if bt.Mountains() != 1 {
		t.Fatal("should complete one busy period")
	}
	wantClose(t, "busy", bt.Busy.Mean(), 5, 1e-12)
}

func TestBusyTrackerRetentionCap(t *testing.T) {
	var bt BusyTracker
	bt.Keep = true
	bt.MaxRetained = 2
	tt := 0.0
	for i := 0; i < 5; i++ {
		bt.Observe(tt, 1)
		bt.Observe(tt+1, 0)
		tt += 2
	}
	if len(bt.Periods) != 2 {
		t.Errorf("retained %d periods, want cap 2", len(bt.Periods))
	}
	if bt.Mountains() != 5 {
		t.Errorf("mountains = %d, want 5 (stats uncapped)", bt.Mountains())
	}
}

func TestPeakToMean(t *testing.T) {
	wantClose(t, "ptm", PeakToMean([]float64{1, 1, 4}), 2, 1e-12)
	if PeakToMean(nil) != 0 {
		t.Error("empty should be 0")
	}
}

// Property: Welford matches the naive two-pass computation.
func TestQuickWelfordMatchesNaive(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e6 {
				clean = append(clean, x)
			}
		}
		if len(clean) < 2 {
			return true
		}
		var w Welford
		var sum float64
		for _, x := range clean {
			w.Add(x)
			sum += x
		}
		mean := sum / float64(len(clean))
		var ss float64
		for _, x := range clean {
			ss += (x - mean) * (x - mean)
		}
		naiveVar := ss / float64(len(clean)-1)
		scale := math.Max(1, math.Abs(mean))
		return math.Abs(w.Mean()-mean) < 1e-9*scale &&
			math.Abs(w.Var()-naiveVar) < 1e-6*math.Max(1, naiveVar)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: busy fraction is always within [0,1] and mountains never exceed
// the number of busy→idle transitions.
func TestQuickBusyTrackerInvariants(t *testing.T) {
	f := func(deltas []int8) bool {
		var bt BusyTracker
		tt, n := 0.0, 0
		transitions := 0
		prev := 0
		bt.Observe(0, 0)
		for _, d := range deltas {
			tt += 1
			n += int(d % 3)
			if n < 0 {
				n = 0
			}
			if prev > 0 && n == 0 {
				transitions++
			}
			prev = n
			bt.Observe(tt, n)
		}
		bf := bt.BusyFraction()
		return bf >= 0 && bf <= 1 && int(bt.Mountains()) <= transitions+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
