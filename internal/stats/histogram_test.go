package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

// Regression: Add(NaN) used to panic with index out of range
// [-9223372036854775808] — NaN fails both range guards and int(NaN)
// converts to MinInt. It must land in the dedicated NaN bucket instead.
func TestHistogramAddNaN(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	h.Add(math.NaN()) // must not panic
	h.Add(5)
	h.Add(math.NaN())
	if got := h.NaN(); got != 2 {
		t.Errorf("NaN() = %d, want 2", got)
	}
	if got := h.N(); got != 3 {
		t.Errorf("N() = %d, want 3 (NaN observations are counted)", got)
	}
	if got := h.Mean(); got != 5 {
		t.Errorf("Mean() = %v, want 5 (NaN excluded from the sum)", got)
	}
	if got := h.Quantile(0.5); got < 5 || got > 6 {
		t.Errorf("Quantile(0.5) = %v, want within the occupied bin", got)
	}
	if s := h.String(); !strings.Contains(s, "nan=2") {
		t.Errorf("String() does not report the NaN count:\n%s", s)
	}
}

func TestHistogramAddInf(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	h.Add(math.Inf(-1))
	h.Add(math.Inf(1))
	h.Add(0.5)
	if h.under != 1 || h.over != 1 {
		t.Errorf("under=%d over=%d, want 1 and 1", h.under, h.over)
	}
	if !math.IsNaN(h.Mean()) {
		// -Inf + Inf + 0.5 is NaN; the point is no panic and honest output.
		t.Logf("Mean with mixed infinities = %v", h.Mean())
	}
}

func TestHistogramMergeNaN(t *testing.T) {
	a := NewHistogram(0, 1, 4)
	b := NewHistogram(0, 1, 4)
	a.Add(math.NaN())
	b.Add(math.NaN())
	b.Add(0.5)
	a.Merge(b)
	if a.NaN() != 2 || a.N() != 3 {
		t.Errorf("after merge NaN=%d N=%d, want 2 and 3", a.NaN(), a.N())
	}
}

func TestHistogramQuantileClamp(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 100; i++ {
		h.Add(float64(i % 10))
	}
	lo, hi := h.Quantile(0), h.Quantile(1)
	if got := h.Quantile(-3); got != lo {
		t.Errorf("Quantile(-3) = %v, want clamp to Quantile(0) = %v", got, lo)
	}
	if got := h.Quantile(7); got != hi {
		t.Errorf("Quantile(7) = %v, want clamp to Quantile(1) = %v", got, hi)
	}
	if got := h.Quantile(math.NaN()); got != lo {
		t.Errorf("Quantile(NaN) = %v, want clamp to Quantile(0) = %v", got, lo)
	}
}

func TestHistogramQuantileBoundaries(t *testing.T) {
	// All mass in `under`: every quantile maps to Lo.
	h := NewHistogram(0, 1, 4)
	for i := 0; i < 5; i++ {
		h.Add(-1)
	}
	for _, p := range []float64{0, 0.5, 1} {
		if got := h.Quantile(p); got != 0 {
			t.Errorf("all-under Quantile(%v) = %v, want Lo=0", p, got)
		}
	}

	// Exact cumulative boundary with trailing empty bins: [5,0,0,5] over
	// [0,4). p=0.5 lands exactly on bin 0's boundary — the earlier bin wins
	// and its right edge is returned, not a point inside the empty run.
	h2 := NewHistogram(0, 4, 4)
	for i := 0; i < 5; i++ {
		h2.Add(0.5)
		h2.Add(3.5)
	}
	if got := h2.Quantile(0.5); got != 1 {
		t.Errorf("boundary Quantile(0.5) = %v, want right edge 1 of bin 0", got)
	}
	if got := h2.Quantile(1); got != 4 {
		t.Errorf("Quantile(1) = %v, want right edge 4 of the last occupied bin", got)
	}

	// p=0 with no under-mass still returns Lo.
	if got := h2.Quantile(0); got != 0 {
		t.Errorf("Quantile(0) = %v, want Lo=0", got)
	}

	// Over-mass pushes p=1 to Hi.
	h2.Add(99)
	if got := h2.Quantile(1); got != 4 {
		t.Errorf("Quantile(1) with over-mass = %v, want Hi=4", got)
	}
}

// TestQuickHistogramNoPanic drives Add and Quantile with arbitrary float64
// bit patterns — NaN payloads, ±Inf, subnormals, boundary values — and
// asserts the no-panic contract plus the count and range invariants.
func TestQuickHistogramNoPanic(t *testing.T) {
	f := func(bits []uint64, pBits uint64) bool {
		h := NewHistogram(0, 10, 8)
		var want int64
		for _, b := range bits {
			h.Add(math.Float64frombits(b))
			want++
		}
		// Deterministic adversarial suffix on top of the random prefix.
		for _, x := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), 0, 10, math.Nextafter(10, 0), -math.SmallestNonzeroFloat64} {
			h.Add(x)
			want++
		}
		if h.N() != want {
			return false
		}
		q := h.Quantile(math.Float64frombits(pBits))
		return q >= h.Lo && q <= h.Hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// FuzzHistogramAdd is the fuzz-shaped version of the same contract; the
// seed corpus pins the historical panic input (NaN) and the edges.
func FuzzHistogramAdd(f *testing.F) {
	f.Add(math.Float64bits(math.NaN()), math.Float64bits(0.5))
	f.Add(math.Float64bits(math.Inf(1)), math.Float64bits(1.0))
	f.Add(math.Float64bits(math.Inf(-1)), math.Float64bits(-1.0))
	f.Add(math.Float64bits(10.0), math.Float64bits(2.0))
	f.Add(math.Float64bits(0.0), math.Float64bits(math.NaN()))
	f.Fuzz(func(t *testing.T, xBits, pBits uint64) {
		h := NewHistogram(0, 10, 8)
		x := math.Float64frombits(xBits)
		h.Add(x) // must never panic
		if h.N() != 1 {
			t.Errorf("N() = %d after one Add(%v)", h.N(), x)
		}
		q := h.Quantile(math.Float64frombits(pBits))
		if h.NaN() == 0 && (q < h.Lo || q > h.Hi) {
			t.Errorf("Quantile out of range: %v", q)
		}
	})
}

// The NaN contract extends across internal/stats: Welford ingestion of
// special values must not panic either (it degrades to NaN moments).
func TestWelfordSpecialsNoPanic(t *testing.T) {
	var w Welford
	for _, x := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), 0} {
		w.Add(x)
	}
	if w.N() != 4 {
		t.Errorf("N = %d, want 4", w.N())
	}
	_ = w.Mean()
	_ = w.Std()
}
