// Package stats provides the streaming estimators used by the simulator and
// the experiment harness: running mean/variance, time-weighted averages of
// piecewise-constant processes (queue length, populations), histograms,
// autocorrelation, the index of dispersion for counts, batch-means
// confidence intervals, and the busy-period ("mountain") tracker behind the
// paper's Figure 18.
package stats

import (
	"fmt"
	"math"
)

// Welford accumulates mean and variance of a sample stream in one pass with
// Welford's numerically stable recurrence. The zero value is ready to use.
type Welford struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add records one observation.
func (w *Welford) Add(x float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int64 { return w.n }

// Mean returns the sample mean (0 if empty).
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the unbiased sample variance (0 for fewer than 2 samples).
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Std returns the sample standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Var()) }

// Min returns the smallest observation (0 if empty).
func (w *Welford) Min() float64 { return w.min }

// Max returns the largest observation (0 if empty).
func (w *Welford) Max() float64 { return w.max }

// SCV returns the squared coefficient of variation.
func (w *Welford) SCV() float64 {
	if w.mean == 0 {
		return 0
	}
	return w.Var() / (w.mean * w.mean)
}

// Merge folds other into w (parallel Welford combination).
func (w *Welford) Merge(other *Welford) {
	if other.n == 0 {
		return
	}
	if w.n == 0 {
		*w = *other
		return
	}
	n1, n2 := float64(w.n), float64(other.n)
	d := other.mean - w.mean
	tot := n1 + n2
	w.m2 += other.m2 + d*d*n1*n2/tot
	w.mean += d * n2 / tot
	w.n += other.n
	if other.min < w.min {
		w.min = other.min
	}
	if other.max > w.max {
		w.max = other.max
	}
}

// Reset clears the accumulator.
func (w *Welford) Reset() { *w = Welford{} }

func (w *Welford) String() string {
	return fmt.Sprintf("n=%d mean=%.6g std=%.6g min=%.6g max=%.6g", w.n, w.Mean(), w.Std(), w.min, w.max)
}

// TimeEps is the relative tolerance for non-monotone observation times.
// Merging truncated parallel replications (and any arithmetic that rebuilds
// a clock from sums, as TimeWeighted.Merge does) introduces last-ulp float
// jitter; a clock that steps back by no more than TimeEps·max(1, |t|) is
// clamped forward instead of treated as a caller bug. Gross regressions
// still panic — event order is an engine invariant, not input data.
const TimeEps = 1e-9

// grossRegression reports whether t precedes last by more than the float
// jitter TimeEps tolerates.
func grossRegression(t, last float64) bool {
	scale := math.Max(1, math.Max(math.Abs(t), math.Abs(last)))
	return last-t > TimeEps*scale
}

// TimeWeighted accumulates the time average and time-weighted variance of a
// piecewise-constant process such as queue length. Call Update with the new
// value at each change instant; the process is assumed to hold the previous
// value since the prior update.
type TimeWeighted struct {
	start   float64
	last    float64
	lastVal float64
	area    float64
	area2   float64
	max     float64
	started bool
}

// Start initialises the process at time t with value v.
func (tw *TimeWeighted) Start(t, v float64) {
	tw.start, tw.last, tw.lastVal = t, t, v
	tw.area, tw.area2 = 0, 0
	tw.max = v
	tw.started = true
}

// Update records that the process changes to value v at time t.
func (tw *TimeWeighted) Update(t, v float64) {
	if !tw.started {
		tw.Start(t, v)
		return
	}
	dt := t - tw.last
	if dt < 0 {
		if grossRegression(t, tw.last) {
			panic(fmt.Sprintf("stats: TimeWeighted time went backwards (%v -> %v)", tw.last, t))
		}
		// Float jitter from merged/truncated windows: clamp to monotone.
		t, dt = tw.last, 0
	}
	tw.area += tw.lastVal * dt
	tw.area2 += tw.lastVal * tw.lastVal * dt
	tw.last, tw.lastVal = t, v
	if v > tw.max {
		tw.max = v
	}
}

// Mean returns the time average over [start, lastUpdate].
func (tw *TimeWeighted) Mean() float64 {
	d := tw.last - tw.start
	if d <= 0 {
		return tw.lastVal
	}
	return tw.area / d
}

// Var returns the time-weighted variance.
func (tw *TimeWeighted) Var() float64 {
	d := tw.last - tw.start
	if d <= 0 {
		return 0
	}
	m := tw.area / d
	return tw.area2/d - m*m
}

// Max returns the largest value seen.
func (tw *TimeWeighted) Max() float64 { return tw.max }

// Merge folds another accumulator's observation window into tw, as if the
// two disjoint windows had been observed back to back: integrals and
// elapsed time add, so Mean and Var become the combined time averages.
// Merge a finished window only (after its closing Update); calling Update
// on the merged result afterwards is not meaningful.
func (tw *TimeWeighted) Merge(o *TimeWeighted) {
	if !o.started {
		return
	}
	if !tw.started {
		*tw = *o
		return
	}
	elapsed := tw.Elapsed() + o.Elapsed()
	tw.area += o.area
	tw.area2 += o.area2
	tw.last = tw.start + elapsed
	tw.lastVal = o.lastVal
	if o.max > tw.max {
		tw.max = o.max
	}
}

// Elapsed returns the observed horizon.
func (tw *TimeWeighted) Elapsed() float64 { return tw.last - tw.start }

// Current returns the value most recently set.
func (tw *TimeWeighted) Current() float64 { return tw.lastVal }
