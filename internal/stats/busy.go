package stats

import "fmt"

// BusyPeriod describes one busy period of the queue — a "mountain" in the
// paper's terminology.
type BusyPeriod struct {
	Start  float64
	End    float64
	Height int // maximum number in system during the period
}

// Length returns End-Start.
func (b BusyPeriod) Length() float64 { return b.End - b.Start }

// BusyTracker observes the number-in-system process and records busy and
// idle periods with their heights, the raw material for the paper's
// Figure 18 table (mean/variance of busy period, idle period and height,
// and the number of mountains).
//
// Feed it every change of the number in system via Observe. The tracker
// assumes the system starts empty at the first observation time.
type BusyTracker struct {
	inited    bool
	inBusy    bool
	busyStart float64
	idleStart float64
	curHeight int
	lastT     float64

	Busy   Welford // busy period lengths
	Idle   Welford // idle period lengths
	Height Welford // per-busy-period peak number in system

	Periods     []BusyPeriod // retained only when Keep is true
	Keep        bool
	MaxRetained int
}

// Observe records that the number in system becomes n at time t.
func (bt *BusyTracker) Observe(t float64, n int) {
	if !bt.inited {
		bt.inited = true
		bt.lastT = t
		if n > 0 {
			bt.inBusy = true
			bt.busyStart = t
			bt.curHeight = n
		} else {
			bt.idleStart = t
		}
		return
	}
	if t < bt.lastT {
		if grossRegression(t, bt.lastT) {
			panic(fmt.Sprintf("stats: BusyTracker time went backwards (%v -> %v)", bt.lastT, t))
		}
		// Float jitter from merged/truncated windows: clamp to monotone.
		t = bt.lastT
	}
	bt.lastT = t
	switch {
	case !bt.inBusy && n > 0:
		// idle → busy
		bt.Idle.Add(t - bt.idleStart)
		bt.inBusy = true
		bt.busyStart = t
		bt.curHeight = n
	case bt.inBusy && n == 0:
		// busy → idle
		bt.Busy.Add(t - bt.busyStart)
		bt.Height.Add(float64(bt.curHeight))
		if bt.Keep && (bt.MaxRetained == 0 || len(bt.Periods) < bt.MaxRetained) {
			bt.Periods = append(bt.Periods, BusyPeriod{Start: bt.busyStart, End: t, Height: bt.curHeight})
		}
		bt.inBusy = false
		bt.idleStart = t
	case bt.inBusy && n > bt.curHeight:
		bt.curHeight = n
	}
}

// Merge folds another tracker's completed periods into bt: the busy/idle/
// height statistics combine exactly, and retained periods append up to
// bt.MaxRetained. Each tracker's possibly-incomplete final period is
// dropped, exactly as it is within a single run. Period timestamps keep
// their original (per-replication) clocks.
func (bt *BusyTracker) Merge(o *BusyTracker) {
	bt.Busy.Merge(&o.Busy)
	bt.Idle.Merge(&o.Idle)
	bt.Height.Merge(&o.Height)
	if bt.Keep {
		for _, p := range o.Periods {
			if bt.MaxRetained > 0 && len(bt.Periods) >= bt.MaxRetained {
				break
			}
			bt.Periods = append(bt.Periods, p)
		}
	}
}

// Mountains returns the number of completed busy periods.
func (bt *BusyTracker) Mountains() int64 { return bt.Busy.N() }

// BusyFraction returns mean busy / (mean busy + mean idle), the paper's
// utilisation-like summary (≈55% for both HAP and Poisson in Figure 18).
func (bt *BusyTracker) BusyFraction() float64 {
	b, i := bt.Busy.Mean(), bt.Idle.Mean()
	if b+i == 0 {
		return 0
	}
	return b / (b + i)
}

// Peak returns the longest and tallest completed busy periods (zero values
// when Keep is false or no periods completed).
func (bt *BusyTracker) Peak() (longest, tallest BusyPeriod) {
	for _, p := range bt.Periods {
		if p.Length() > longest.Length() {
			longest = p
		}
		if p.Height > tallest.Height {
			tallest = p
		}
	}
	return longest, tallest
}

func (bt *BusyTracker) String() string {
	return fmt.Sprintf("busy{n=%d mean=%.4g var=%.4g} idle{mean=%.4g var=%.4g} height{mean=%.4g var=%.4g max=%g}",
		bt.Busy.N(), bt.Busy.Mean(), bt.Busy.Var(), bt.Idle.Mean(), bt.Idle.Var(),
		bt.Height.Mean(), bt.Height.Var(), bt.Height.Max())
}
