package stats

import (
	"strings"
	"testing"
)

// Merging truncated parallel replications rebuilds clocks from float sums,
// so last-ulp backwards steps are data, not bugs: the accumulators must
// clamp them instead of panicking (the old code panicked on any dt < 0).
func TestTimeWeightedToleratesClockJitter(t *testing.T) {
	var tw TimeWeighted
	tw.Start(0, 1)
	tw.Update(1000, 2)
	tw.Update(1000-1e-7, 3) // within TimeEps·scale: clamp, no panic
	tw.Update(2000, 0)
	if got := tw.Elapsed(); got != 2000 {
		t.Errorf("Elapsed = %v, want 2000 (jitter step clamped)", got)
	}
	// Value 2 held [1000, 1000] (zero width), 3 held [1000, 2000]:
	// mean = (1·1000 + 3·1000)/2000 = 2.
	if got := tw.Mean(); got != 2 {
		t.Errorf("Mean = %v, want 2", got)
	}
}

func TestTimeWeightedGrossRegressionStillPanics(t *testing.T) {
	var tw TimeWeighted
	tw.Start(0, 1)
	tw.Update(1000, 2)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic on a gross time regression")
		}
		if !strings.Contains(r.(string), "time went backwards") {
			t.Errorf("panic = %v, want the time-went-backwards invariant", r)
		}
	}()
	tw.Update(999, 3) // far beyond TimeEps·scale
}

func TestBusyTrackerToleratesClockJitter(t *testing.T) {
	var bt BusyTracker
	bt.Observe(0, 0)
	bt.Observe(10, 1)
	bt.Observe(10-1e-9, 2) // jitter while busy: clamped
	bt.Observe(20, 0)
	if bt.Mountains() != 1 {
		t.Fatalf("Mountains = %d, want 1", bt.Mountains())
	}
	if got := bt.Busy.Mean(); got != 10 {
		t.Errorf("busy period = %v, want 10", got)
	}
	if got := bt.Height.Mean(); got != 2 {
		t.Errorf("height = %v, want 2 (jittered observation still counted)", got)
	}
}

func TestBusyTrackerGrossRegressionStillPanics(t *testing.T) {
	var bt BusyTracker
	bt.Observe(0, 0)
	bt.Observe(10, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on a gross time regression")
		}
	}()
	bt.Observe(5, 2)
}

// The regression that motivated TimeEps: merge truncated windows whose
// rebuilt clock lands an ulp short of the next update time.
func TestMergeTruncatedWindowsNoPanic(t *testing.T) {
	var a, b TimeWeighted
	a.Start(0, 1)
	a.Update(0.1+0.2, 2) // 0.30000000000000004
	b.Start(0.3, 2)
	b.Update(0.6, 1)
	a.Merge(&b)
	// Post-merge clock is start + ΣElapsed = 0.6000000000000001; an update
	// at the exact 0.6 steps back one ulp and must be clamped, not fatal.
	a.Update(0.6, 0)
	if a.Elapsed() <= 0 {
		t.Errorf("Elapsed = %v after merge, want positive", a.Elapsed())
	}
}
