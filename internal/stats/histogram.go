package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Histogram is a fixed-bin histogram on [Lo, Hi) with overflow/underflow
// counters. It supports approximate quantiles and density estimates; use it
// to reproduce the interarrival-time density comparisons (Figures 9–10) from
// simulation output.
type Histogram struct {
	Lo, Hi float64
	bins   []int64
	under  int64
	over   int64
	nan    int64
	n      int64 // non-NaN observations (±Inf count as under/over)
	sum    float64
}

// NewHistogram creates a histogram with nbins uniform bins over [lo, hi).
func NewHistogram(lo, hi float64, nbins int) *Histogram {
	if hi <= lo || nbins < 1 {
		panic(fmt.Sprintf("stats: invalid histogram [%v,%v) x%d", lo, hi, nbins))
	}
	return &Histogram{Lo: lo, Hi: hi, bins: make([]int64, nbins)}
}

// Add records one observation. NaN inputs fail both range guards and
// int(NaN) converts to MinInt, so they are counted into a dedicated NaN
// bucket instead of ever reaching the bin index — the simulator's deltas
// feed histograms directly, and the no-panic contract covers them. ±Inf
// land in the under/over counters like any other out-of-range value; they
// do poison the running sum, so Mean reports ±Inf honestly after one.
func (h *Histogram) Add(x float64) {
	if math.IsNaN(x) {
		h.nan++
		return
	}
	h.n++
	h.sum += x
	switch {
	case x < h.Lo:
		h.under++
	case x >= h.Hi:
		h.over++
	default:
		i := int(float64(len(h.bins)) * (x - h.Lo) / (h.Hi - h.Lo))
		if i == len(h.bins) { // guard FP edge
			i--
		}
		h.bins[i]++
	}
}

// N returns the total observation count, including out-of-range and NaN
// observations. NaNs carry no position, so density, CDF and quantile
// estimates are taken over the non-NaN mass only.
func (h *Histogram) N() int64 { return h.n + h.nan }

// NaN returns the number of NaN observations recorded.
func (h *Histogram) NaN() int64 { return h.nan }

// Merge folds another histogram with identical bounds and bin count into h
// (bin-wise count addition). It panics on mismatched geometry.
func (h *Histogram) Merge(o *Histogram) {
	if h.Lo != o.Lo || h.Hi != o.Hi || len(h.bins) != len(o.bins) {
		panic(fmt.Sprintf("stats: merging mismatched histograms [%v,%v)x%d vs [%v,%v)x%d",
			h.Lo, h.Hi, len(h.bins), o.Lo, o.Hi, len(o.bins)))
	}
	for i, c := range o.bins {
		h.bins[i] += c
	}
	h.under += o.under
	h.over += o.over
	h.nan += o.nan
	h.n += o.n
	h.sum += o.sum
}

// Mean returns the exact sample mean of all non-NaN observations.
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// BinWidth returns the width of each bin.
func (h *Histogram) BinWidth() float64 { return (h.Hi - h.Lo) / float64(len(h.bins)) }

// Count returns the count in bin i.
func (h *Histogram) Count(i int) int64 { return h.bins[i] }

// Bins returns the number of bins.
func (h *Histogram) Bins() int { return len(h.bins) }

// Center returns the midpoint of bin i.
func (h *Histogram) Center(i int) float64 {
	return h.Lo + (float64(i)+0.5)*h.BinWidth()
}

// Density returns the estimated probability density at the centre of bin i:
// count / (N · binWidth).
func (h *Histogram) Density(i int) float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.bins[i]) / (float64(h.n) * h.BinWidth())
}

// CDFAt returns the empirical CDF at the right edge of bin i.
func (h *Histogram) CDFAt(i int) float64 {
	if h.n == 0 {
		return 0
	}
	c := h.under
	for j := 0; j <= i; j++ {
		c += h.bins[j]
	}
	return float64(c) / float64(h.n)
}

// Quantile returns an approximate p-quantile by linear interpolation within
// the containing bin. p is clamped to [0, 1] (NaN clamps to 0), so callers
// feeding computed probabilities always get a value inside [Lo, Hi] and
// never a silent extrapolation.
//
// Convention: the result is the leftmost point whose cumulative mass
// reaches p·n, over the non-NaN observations. Under-range mass maps to Lo
// (so p = 0, or any p covered by the `under` counter — e.g. all mass below
// Lo — returns Lo); when p·n lands exactly on a bin boundary the earlier
// bin wins and its right edge is returned, so runs of empty bins after the
// boundary are not skipped into. p = 1 returns the right edge of the last
// occupied bin, or Hi when over-range mass exists. An empty histogram
// returns 0.
func (h *Histogram) Quantile(p float64) float64 {
	if h.n == 0 {
		return 0
	}
	if !(p > 0) { // also catches NaN
		p = 0
	}
	if p > 1 {
		p = 1
	}
	target := p * float64(h.n)
	c := float64(h.under)
	if target <= c {
		return h.Lo
	}
	for i, b := range h.bins {
		nb := c + float64(b)
		if target <= nb && b > 0 {
			frac := (target - c) / float64(b)
			return h.Lo + (float64(i)+frac)*h.BinWidth()
		}
		c = nb
	}
	return h.Hi
}

// String renders a compact ASCII bar summary.
func (h *Histogram) String() string {
	var b strings.Builder
	maxC := int64(1)
	for _, c := range h.bins {
		if c > maxC {
			maxC = c
		}
	}
	fmt.Fprintf(&b, "hist n=%d under=%d over=%d nan=%d\n", h.N(), h.under, h.over, h.nan)
	for i, c := range h.bins {
		bar := strings.Repeat("#", int(40*c/maxC))
		fmt.Fprintf(&b, "%10.4g %8d %s\n", h.Center(i), c, bar)
	}
	return b.String()
}

// Quantiles computes exact sample quantiles of data (which it sorts in
// place) for each probability in ps.
func Quantiles(data []float64, ps ...float64) []float64 {
	sort.Float64s(data)
	out := make([]float64, len(ps))
	for k, p := range ps {
		if len(data) == 0 {
			continue
		}
		pos := p * float64(len(data)-1)
		i := int(math.Floor(pos))
		frac := pos - float64(i)
		if i+1 < len(data) {
			out[k] = data[i]*(1-frac) + data[i+1]*frac
		} else {
			out[k] = data[len(data)-1]
		}
	}
	return out
}
