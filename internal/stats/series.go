package stats

import "math"

// Autocorrelation returns the lag-k autocorrelation estimates of xs for
// k = 0..maxLag. Correlated interarrival sequences are the mechanism behind
// HAP's burstiness; the paper notes Solutions 1 and 2 destroy exactly this
// correlation.
func Autocorrelation(xs []float64, maxLag int) []float64 {
	n := len(xs)
	if maxLag >= n {
		maxLag = n - 1
	}
	if maxLag < 0 {
		return nil
	}
	var mean float64
	for _, x := range xs {
		mean += x
	}
	mean /= float64(n)
	var c0 float64
	for _, x := range xs {
		d := x - mean
		c0 += d * d
	}
	out := make([]float64, maxLag+1)
	if c0 == 0 {
		out[0] = 1
		return out
	}
	for k := 0; k <= maxLag; k++ {
		var ck float64
		for i := 0; i+k < n; i++ {
			ck += (xs[i] - mean) * (xs[i+k] - mean)
		}
		out[k] = ck / c0
	}
	return out
}

// IDC estimates the index of dispersion for counts of a point process whose
// event times are ts (sorted), at window length win: Var(N(win))/E[N(win)].
// A Poisson process has IDC 1 at every window; HAP's IDC grows with the
// window, reflecting long-range rate modulation.
func IDC(ts []float64, win float64) float64 {
	if len(ts) == 0 || win <= 0 {
		return 0
	}
	horizon := ts[len(ts)-1]
	n := int(horizon / win)
	if n < 2 {
		return 0
	}
	counts := make([]float64, n)
	j := 0
	for i := 0; i < n; i++ {
		hi := float64(i+1) * win
		for j < len(ts) && ts[j] < hi {
			counts[i]++
			j++
		}
	}
	var w Welford
	for _, c := range counts {
		w.Add(c)
	}
	if w.Mean() == 0 {
		return 0
	}
	return w.Var() / w.Mean()
}

// IDCCurve evaluates IDC at each window in wins.
func IDCCurve(ts []float64, wins []float64) []float64 {
	out := make([]float64, len(wins))
	for i, w := range wins {
		out[i] = IDC(ts, w)
	}
	return out
}

// PeakToMean returns max/mean of a series, a crude burstiness indicator.
func PeakToMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, max float64
	for _, x := range xs {
		sum += x
		if x > max {
			max = x
		}
	}
	mean := sum / float64(len(xs))
	if mean == 0 {
		return 0
	}
	return max / mean
}

// BatchMeans estimates a confidence half-width for the mean of a correlated
// stationary series by the method of batch means with nbatch batches. It
// returns the grand mean and the half-width at ~95% confidence (normal
// approximation; appropriate for nbatch >= 20).
func BatchMeans(xs []float64, nbatch int) (mean, halfWidth float64) {
	if nbatch < 2 || len(xs) < nbatch {
		var w Welford
		for _, x := range xs {
			w.Add(x)
		}
		return w.Mean(), math.Inf(1)
	}
	size := len(xs) / nbatch
	var bw Welford
	for b := 0; b < nbatch; b++ {
		var s float64
		for i := b * size; i < (b+1)*size; i++ {
			s += xs[i]
		}
		bw.Add(s / float64(size))
	}
	return bw.Mean(), 1.96 * bw.Std() / math.Sqrt(float64(nbatch))
}

// RunningMean records the cumulative running mean of a stream at a bounded
// number of checkpoints, reproducing the convergence traces of Figure 13.
type RunningMean struct {
	every int64
	n     int64
	sum   float64
	Xs    []float64 // observation index at each checkpoint
	Ys    []float64 // running mean at each checkpoint
}

// NewRunningMean records a checkpoint every `every` observations.
func NewRunningMean(every int64) *RunningMean {
	if every < 1 {
		every = 1
	}
	return &RunningMean{every: every}
}

// Add records one observation.
func (rm *RunningMean) Add(x float64) {
	rm.n++
	rm.sum += x
	if rm.n%rm.every == 0 {
		rm.Xs = append(rm.Xs, float64(rm.n))
		rm.Ys = append(rm.Ys, rm.sum/float64(rm.n))
	}
}

// Mean returns the final running mean.
func (rm *RunningMean) Mean() float64 {
	if rm.n == 0 {
		return 0
	}
	return rm.sum / float64(rm.n)
}

// FluctuationSpan returns (max-min)/final of the running-mean trace after
// discarding the first skip checkpoints — a scalar summary of how unsettled
// the simulation remains (HAP ≫ Poisson in Figure 13).
func (rm *RunningMean) FluctuationSpan(skip int) float64 {
	if len(rm.Ys) <= skip+1 || rm.Mean() == 0 {
		return 0
	}
	min, max := math.Inf(1), math.Inf(-1)
	for _, y := range rm.Ys[skip:] {
		if y < min {
			min = y
		}
		if y > max {
			max = y
		}
	}
	return (max - min) / rm.Mean()
}
