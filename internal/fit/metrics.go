package fit

import (
	"context"
	"errors"
	"time"

	"hap/internal/haperr"
	"hap/internal/obs"
)

// Runtime metrics for the estimation layer. Fits are coarse-grained (a
// grid search or an EM run over up to ~10⁶ interarrivals), so per-fit
// recording is free relative to the work it measures.
var (
	obsFits = obs.NewCounterVec("hap_fit_fits_total",
		"Fits by model (poisson, onoff, hap, mmpp2) and outcome (converged, not_converged, bad_parameter, cancelled, error).",
		"model", "outcome")
	obsEMIterations = obs.NewCounter("hap_fit_em_iterations_total",
		"Baum-Welch iterations accumulated across MMPP2 fits.")
	obsSamples = obs.NewCounter("hap_fit_samples_total",
		"Arrival timestamps ingested by fitted traces.")
	obsLogLik = obs.NewFloatGauge("hap_fit_last_loglik",
		"Final log-likelihood of the most recent MMPP2 EM fit.")
	obsC2 = obs.NewFloatGauge("hap_fit_last_c2",
		"Empirical interarrival c² of the most recently fitted trace.")
	obsFitTime = obs.NewTimer("hap_fit_fit",
		"Single-model fit wall time.")
	obsFitRate = obs.NewFloatGauge("hap_fit_arrivals_per_sec",
		"Arrivals/s throughput of the most recent MMPP2 EM fit (samples used / fit wall time).")
	obsScratchReuses = obs.NewCounter("hap_fit_scratch_reuses_total",
		"Fit working buffers served from existing scratch capacity.")
	obsScratchGrows = obs.NewCounter("hap_fit_scratch_grows_total",
		"Fit working buffers that had to grow (allocate). A refit loop at steady state stops incrementing this.")
)

// fitCounters pre-resolves every (model, outcome) child of obsFits:
// CounterVec.With renders a label key per call, which allocates — too
// expensive for the zero-allocation warm re-fit path TestFitHotPathAllocs
// pins. Array-keyed map lookups allocate nothing.
var fitCounters = func() map[[2]string]*obs.Counter {
	m := make(map[[2]string]*obs.Counter)
	for _, model := range []string{"poisson", "onoff", "hap", "mmpp2"} {
		for _, outcome := range []string{"converged", "not_converged", "bad_parameter", "cancelled", "error"} {
			m[[2]string{model, outcome}] = obsFits.With(model, outcome)
		}
	}
	return m
}()

// fitCounter returns the cached child, falling back to With for label
// values outside the precomputed set.
func fitCounter(model, outcome string) *obs.Counter {
	if c, ok := fitCounters[[2]string{model, outcome}]; ok {
		return c
	}
	return obsFits.With(model, outcome)
}

// fitOutcome classifies a finished fit for the labelled counter.
func fitOutcome(err error, diag haperr.Diag) string {
	switch {
	case err == nil && diag.Converged:
		return "converged"
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		return "cancelled"
	case errors.Is(err, haperr.ErrNotConverged):
		return "not_converged"
	case errors.Is(err, haperr.ErrBadParameter):
		return "bad_parameter"
	case err == nil:
		return "not_converged"
	default:
		return "error"
	}
}

// recordFit publishes one successful fit.
func recordFit(model string, start time.Time, diag haperr.Diag) {
	fitCounter(model, fitOutcome(nil, diag)).Inc()
	if model == "mmpp2" {
		obsEMIterations.Add(int64(diag.Iterations))
	}
	obsFitTime.Observe(time.Since(start))
}

// recordFitErr publishes one failed fit.
func recordFitErr(model string, start time.Time, err error) {
	fitCounter(model, fitOutcome(err, haperr.Diag{})).Inc()
	obsFitTime.Observe(time.Since(start))
}

// recordFitRate publishes the most recent EM fit's sample throughput.
func recordFitRate(samples int, start time.Time) {
	if d := time.Since(start); d > 0 && samples > 0 {
		obsFitRate.Set(float64(samples) / d.Seconds())
	}
}

// recordTrace publishes the observational side of a fit request.
func recordTrace(ts *TraceStats) {
	obsSamples.Add(ts.N())
	obsC2.Set(ts.C2())
}
