package fit

import (
	"context"
	"errors"
	"time"

	"hap/internal/haperr"
	"hap/internal/obs"
)

// Runtime metrics for the estimation layer. Fits are coarse-grained (a
// grid search or an EM run over up to ~10⁶ interarrivals), so per-fit
// recording is free relative to the work it measures.
var (
	obsFits = obs.NewCounterVec("hap_fit_fits_total",
		"Fits by model (poisson, onoff, hap, mmpp2) and outcome (converged, not_converged, bad_parameter, cancelled, error).",
		"model", "outcome")
	obsEMIterations = obs.NewCounter("hap_fit_em_iterations_total",
		"Baum-Welch iterations accumulated across MMPP2 fits.")
	obsSamples = obs.NewCounter("hap_fit_samples_total",
		"Arrival timestamps ingested by fitted traces.")
	obsLogLik = obs.NewFloatGauge("hap_fit_last_loglik",
		"Final log-likelihood of the most recent MMPP2 EM fit.")
	obsC2 = obs.NewFloatGauge("hap_fit_last_c2",
		"Empirical interarrival c² of the most recently fitted trace.")
	obsFitTime = obs.NewTimer("hap_fit_fit",
		"Single-model fit wall time.")
)

// fitOutcome classifies a finished fit for the labelled counter.
func fitOutcome(err error, diag haperr.Diag) string {
	switch {
	case err == nil && diag.Converged:
		return "converged"
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		return "cancelled"
	case errors.Is(err, haperr.ErrNotConverged):
		return "not_converged"
	case errors.Is(err, haperr.ErrBadParameter):
		return "bad_parameter"
	case err == nil:
		return "not_converged"
	default:
		return "error"
	}
}

// recordFit publishes one successful fit.
func recordFit(model string, start time.Time, diag haperr.Diag) {
	obsFits.With(model, fitOutcome(nil, diag)).Inc()
	if model == "mmpp2" {
		obsEMIterations.Add(int64(diag.Iterations))
	}
	obsFitTime.Observe(time.Since(start))
}

// recordFitErr publishes one failed fit.
func recordFitErr(model string, start time.Time, err error) {
	obsFits.With(model, fitOutcome(err, haperr.Diag{})).Inc()
	obsFitTime.Observe(time.Since(start))
}

// recordTrace publishes the observational side of a fit request.
func recordTrace(ts *TraceStats) {
	obsSamples.Add(ts.N())
	obsC2.Set(ts.C2())
}
