package fit

import (
	"math"

	"hap/internal/core"
	"hap/internal/haperr"
	"hap/internal/par"
	"hap/internal/sim"
)

// This file is the round-trip validation harness: simulate a model with
// known parameters, fit the simulated arrivals, and compare. It is what
// the estimation layer's own tests run, and what gives a user any reason
// to trust a fit of a real trace — if the fitters cannot recover the
// generator they were derived from, they recover nothing.

// Simulator produces one replication's post-warmup arrival timestamps.
type Simulator func(seed int64, cfg sim.Config) []float64

// SimHAP adapts a (symmetric or not) HAP model to the harness.
func SimHAP(m *core.Model) Simulator {
	return func(seed int64, cfg sim.Config) []float64 {
		cfg.Seed = seed
		return sim.RunHAP(m, cfg).Meas.Arrivals
	}
}

// SimOnOff adapts a 2-level HAP / ON-OFF model to the harness.
func SimOnOff(tl *core.TwoLevel) Simulator {
	return func(seed int64, cfg sim.Config) []float64 {
		cfg.Seed = seed
		return sim.RunOnOff(tl, cfg).Meas.Arrivals
	}
}

// SimPoisson adapts a Poisson source to the harness.
func SimPoisson(rate, muMsg float64) Simulator {
	return func(seed int64, cfg sim.Config) []float64 {
		cfg.Seed = seed
		return sim.RunPoisson(rate, muMsg, cfg).Meas.Arrivals
	}
}

// RoundTripConfig sizes a simulate→fit round trip.
type RoundTripConfig struct {
	// MeanRate is the ground truth's λ̄, used to size the horizon.
	MeanRate float64
	// Arrivals is the target total arrival count across replications.
	Arrivals int64
	// Reps splits the trace into independent replications whose window
	// statistics merge (0 defaults to 4). More replications parallelise
	// but shorten each trace's longest observable window.
	Reps int
	// Workers bounds simulation parallelism (0 = GOMAXPROCS).
	Workers int
	// Seed makes the whole round trip deterministic: replication seeds
	// are derived from it, and the fit itself has no randomness.
	Seed int64
	// Warmup discards this much simulated time per replication (0
	// defaults to 3 user lifetimes worth of the slowest relaxation only
	// when the caller sets it; the harness cannot guess 1/μ).
	Warmup float64
}

// RoundTrip holds the observational output of a simulate→fit round trip.
type RoundTrip struct {
	// Stats merges every replication's accumulator under one shared
	// window ladder — the moment fitters' input.
	Stats *TraceStats
	// Times is the first replication's raw timestamp sequence — the EM
	// fitter's input (EM needs the ordered sequence, which a merge of
	// disjoint clocks cannot provide).
	Times []float64
}

// Simulate runs the generation half of a round trip: Reps seeded
// replications in parallel (deterministic for a fixed RoundTripConfig, in
// any worker count), each analysed under the window ladder derived from
// the first replication, then merged.
func Simulate(simulate Simulator, cfg RoundTripConfig) (*RoundTrip, error) {
	if !(cfg.MeanRate > 0) || math.IsInf(cfg.MeanRate, 1) {
		return nil, haperr.Badf("fit: round trip needs a positive finite mean rate (got %v)", cfg.MeanRate)
	}
	if cfg.Arrivals < 16 {
		return nil, haperr.Badf("fit: round trip needs at least 16 arrivals (got %d)", cfg.Arrivals)
	}
	reps := cfg.Reps
	if reps <= 0 {
		reps = 4
	}
	perRep := float64(cfg.Arrivals) / float64(reps)
	scfg := sim.Config{
		Horizon: cfg.Warmup + perRep/cfg.MeanRate,
		Measure: sim.MeasureConfig{
			Warmup: cfg.Warmup,
			// Headroom above the expected count so a lucky replication
			// is not truncated mid-trace.
			KeepArrivalTimes: int(perRep*1.25) + 64,
		},
	}
	traces := par.ReplicateN(reps, cfg.Seed, cfg.Workers, func(rep int, seed int64) []float64 {
		return simulate(seed, scfg)
	})
	first, err := Analyze(traces[0], TraceConfig{})
	if err != nil {
		return nil, err
	}
	for _, tr := range traces[1:] {
		ts, err := NewTraceStats(first.Config())
		if err != nil {
			return nil, err
		}
		for _, t := range tr {
			if err := ts.Add(t); err != nil {
				return nil, err
			}
		}
		if err := first.Merge(ts); err != nil {
			return nil, err
		}
	}
	return &RoundTrip{Stats: first, Times: traces[0]}, nil
}

// RelErr returns |got − want| / |want| (Inf for want = 0, got ≠ 0) — the
// tolerance metric every round-trip assertion uses.
func RelErr(got, want float64) float64 {
	if want == 0 {
		if got == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(got-want) / math.Abs(want)
}
