package fit

import (
	"math"
	"testing"
)

// TestExpNegAccuracy pins expNeg against math.Exp across the argument
// range the EM emission batch produces: relative error below 1e-12 for
// every representable result, exact at 0, and hard zero past the normal
// range (the EM core floors emissions at 1e-300 anyway).
func TestExpNegAccuracy(t *testing.T) {
	if got := expNeg(0); got != 1 {
		t.Errorf("expNeg(0) = %g, want exactly 1", got)
	}
	if got := expNeg(708); got != 0 {
		t.Errorf("expNeg(708) = %g, want 0", got)
	}
	if got := expNeg(1e9); got != 0 {
		t.Errorf("expNeg(1e9) = %g, want 0", got)
	}
	worst := 0.0
	// Geometric sweep plus dense linear coverage around the ln2/2
	// reduction boundaries.
	for d := 1e-12; d < 707; d *= 1.000037 {
		want := math.Exp(-d)
		got := expNeg(d)
		if want == 0 {
			continue
		}
		rel := math.Abs(got-want) / want
		if rel > worst {
			worst = rel
		}
		if rel > 1e-12 {
			t.Fatalf("expNeg(%g) = %g, want %g (rel err %.3g)", d, got, want, rel)
		}
	}
	t.Logf("worst relative error %.3g", worst)
}

func BenchmarkExpNeg(b *testing.B) {
	xs := make([]float64, 4096)
	for i := range xs {
		xs[i] = float64(i) * 0.17
	}
	var sink float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink += expNeg(xs[i&4095])
	}
	_ = sink
}
