package fit

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	"hap/internal/haperr"
	"hap/internal/par"
)

// Candidate is one fitted model inside a selection report.
type Candidate struct {
	// Name is the model class: "poisson", "onoff", "hap", "mmpp2".
	Name string `json:"name"`
	// K is the number of free parameters the fit estimated (declared
	// parameters such as the service rate are excluded).
	K int `json:"k"`
	// Rate and C2 are the fitted model's implied arrival rate and
	// interarrival squared coefficient of variation — compare against the
	// trace Summary's empirical values.
	Rate float64 `json:"rate"`
	C2   float64 `json:"c2"`
	// LogLik, AIC and BIC score the fit on a shared interarrival
	// subsample; smaller AIC/BIC is better. The renewal models score the
	// interarrivals as independent draws from their stationary law, the
	// MMPP2 as a hidden-Markov sequence — so on strongly correlated
	// traces mmpp2 holds a structural likelihood advantage the closed
	// forms cannot, a known asymmetry of this comparison.
	LogLik float64 `json:"loglik"`
	AIC    float64 `json:"aic"`
	BIC    float64 `json:"bic"`

	Diag haperr.Diag `json:"diag"`
	// Error is non-empty when this candidate failed to fit; the numeric
	// scores are then meaningless.
	Error string `json:"error,omitempty"`

	// Exactly one of the following is non-nil for a successful fit.
	Poisson *PoissonFit `json:"poisson,omitempty"`
	OnOff   *OnOffFit   `json:"onoff,omitempty"`
	HAP     *HAPFit     `json:"hap,omitempty"`
	MMPP2   *MMPP2Fit   `json:"mmpp2,omitempty"`
}

// Report is a full model-selection run over one trace.
type Report struct {
	// Trace is the observational summary the fits consumed.
	Trace Summary `json:"trace"`
	// Candidates holds every attempted model, ranked by BIC (failed fits
	// last, in attempt order).
	Candidates []Candidate `json:"candidates"`
	// Best names the BIC-minimal successful candidate ("" if every model
	// failed).
	Best string `json:"best"`
}

// BestCandidate returns the winning candidate (nil if every model failed).
func (r *Report) BestCandidate() *Candidate {
	for i := range r.Candidates {
		if r.Candidates[i].Name == r.Best && r.Candidates[i].Error == "" {
			return &r.Candidates[i]
		}
	}
	return nil
}

// AllModels is the default candidate set of Fit, in attempt order.
var AllModels = []string{"poisson", "onoff", "hap", "mmpp2"}

// Fit runs the full estimation pipeline on arrival timestamps: build
// TraceStats, fit every requested model class, score each on a shared
// interarrival subsample (log-likelihood, AIC, BIC), and rank by BIC.
// BIC's stiffer parameter penalty is what keeps a 4-parameter MMPP2 from
// beating plain Poisson on genuinely Poisson traffic, which makes the
// selection deterministic enough to gate in CI.
//
// Individual model failures (for example "no burstiness to invert" on a
// Poisson trace) are reported per candidate, not returned: the Report is
// the deliverable. Fit itself errors only when the trace is unusable or
// the context is done.
func Fit(ctx context.Context, times []float64, opt Options) (*Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	ts, err := Analyze(times, TraceConfig{})
	if err != nil {
		return nil, err
	}
	recordTrace(ts)

	models := opt.Models
	if len(models) == 0 {
		models = AllModels
	}
	// Shared scoring subsample: every candidate is scored on the same
	// interarrival sequence (strided like the EM input) so the AIC/BIC
	// columns are comparable.
	sorted := append([]float64(nil), times...)
	sort.Float64s(sorted)
	sample, err := interarrivals(sorted, opt.EM.maxSamples())
	if err != nil {
		return nil, err
	}

	rep := &Report{Trace: ts.Summary()}
	// Candidates are independent, so they fan out over par with the usual
	// determinism contract: candidate i depends only on (trace, models[i],
	// options), so the report is bit-identical at any Workers count. Warm
	// scratch state is deliberately not forwarded — cross-fit warm starts
	// belong to the single-model refit loop (Refitter), not to a selection
	// sweep whose candidates may run concurrently.
	cands := par.MapNCtx(ctx, len(models), opt.Workers, func(i int) Candidate {
		copt := opt
		copt.Scratch = nil
		copt.EM.Scratch = nil
		return fitCandidate(ctx, models[i], ts, sorted, sample, copt)
	})
	for i, cand := range cands {
		if cand.Name == "" {
			// MapNCtx skipped this slot: the context was cancelled before
			// the candidate started.
			return rep, fmt.Errorf("fit: model selection interrupted before %q: %w", models[i], ctx.Err())
		}
		rep.Candidates = append(rep.Candidates, cand)
	}

	// Rank: successful fits by BIC, failures last in attempt order.
	sort.SliceStable(rep.Candidates, func(i, j int) bool {
		ci, cj := rep.Candidates[i], rep.Candidates[j]
		if (ci.Error == "") != (cj.Error == "") {
			return ci.Error == ""
		}
		if ci.Error != "" {
			return false
		}
		return ci.BIC < cj.BIC
	})
	if len(rep.Candidates) > 0 && rep.Candidates[0].Error == "" {
		rep.Best = rep.Candidates[0].Name
	}
	return rep, nil
}

// fitCandidate fits and scores one model class.
func fitCandidate(ctx context.Context, name string, ts *TraceStats, sorted, sample []float64, opt Options) Candidate {
	cand := Candidate{Name: name}
	switch name {
	case "poisson":
		cand.K = 1
		f, err := FitPoisson(ts)
		if err != nil {
			cand.Error = err.Error()
			return cand
		}
		cand.Poisson = &f
		cand.Diag = f.Diag
		cand.Rate = f.Rate
		cand.C2 = 1
		cand.LogLik = poissonLogLik(f.Rate, sample)
	case "onoff":
		cand.K = 3 // λ, μ, γ — MsgMu is declared via Options, not estimated
		f, err := FitOnOff(ts, opt)
		if err != nil {
			cand.Error = err.Error()
			return cand
		}
		cand.OnOff = &f
		cand.Diag = f.Diag
		cand.Rate = f.Model.MeanRate()
		cand.C2 = f.Model.SCV()
		cand.LogLik = renewalLogLik(f.Model.PDF, sample)
	case "hap":
		cand.K = 5 // λ, μ, λ', μ', λ'' — shape and μ'' are declared
		f, err := FitSymmetricHAP(ts, opt)
		if err != nil {
			cand.Error = err.Error()
			return cand
		}
		cand.HAP = &f
		cand.Diag = f.Diag
		cand.Rate = f.Model.MeanRate()
		ia := f.Model.Interarrival()
		cand.C2 = ia.SCV()
		cand.LogLik = renewalLogLik(ia.PDF, sample)
	case "mmpp2":
		cand.K = 4 // R0, R1, Q01, Q10
		f, err := FitMMPP2EM(ctx, sorted, opt.EM)
		cand.Diag = f.Diag
		if err != nil && !errors.Is(err, haperr.ErrNotConverged) {
			cand.Error = err.Error()
			return cand
		}
		// A budget-exhausted EM still yields the best iterate; keep it as
		// a scored candidate with Diag.Converged=false on display.
		cand.MMPP2 = &f
		cand.Rate = f.Model.MeanRate()
		cand.C2 = mmpp2SCV(f)
		cand.LogLik = f.LogLik
	default:
		cand.Error = fmt.Sprintf("fit: unknown model class %q (want one of %s)", name, strings.Join(AllModels, ", "))
		return cand
	}
	n := float64(len(sample))
	cand.AIC = 2*float64(cand.K) - 2*cand.LogLik
	cand.BIC = float64(cand.K)*math.Log(n) - 2*cand.LogLik
	return cand
}

// poissonLogLik is the exact iid-exponential log-likelihood.
func poissonLogLik(rate float64, x []float64) float64 {
	sum := 0.0
	for _, v := range x {
		sum += v
	}
	return float64(len(x))*math.Log(rate) - rate*sum
}

// renewalLogLik scores interarrivals as independent draws from a
// stationary interarrival density — the closed forms' likelihood, blind
// to serial correlation by construction.
func renewalLogLik(pdf func(float64) float64, x []float64) float64 {
	ll := 0.0
	for _, v := range x {
		d := pdf(v)
		if !(d > 1e-300) || math.IsNaN(d) {
			d = 1e-300
		}
		ll += math.Log(d)
	}
	return ll
}

// mmpp2SCV approximates the fitted MMPP2's interarrival SCV from the
// state-frozen hyperexponential mixture at arrival epochs (exact in the
// slow-switching regime the embedded-HMM fit assumes).
func mmpp2SCV(f MMPP2Fit) float64 {
	p0 := f.Model.StationaryP0()
	// Arrival epochs see state k with probability ∝ π_k·R_k.
	w0 := p0 * f.Model.R0
	w1 := (1 - p0) * f.Model.R1
	tot := w0 + w1
	if !(tot > 0) {
		return 0
	}
	w0, w1 = w0/tot, w1/tot
	m1 := safeDiv(w0, f.Model.R0) + safeDiv(w1, f.Model.R1)
	m2 := 2 * (safeDiv(w0, f.Model.R0*f.Model.R0) + safeDiv(w1, f.Model.R1*f.Model.R1))
	if m1 <= 0 {
		return 0
	}
	return m2/(m1*m1) - 1
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
