// Package fit closes the generate→observe→fit loop: given an observed
// packet-arrival trace (timestamps from a CSV file, a live UDP sink, or a
// simulation), it recovers the parameters of the traffic models this
// library can generate and solve — Poisson, the 2-level HAP / ON-OFF
// model, the paper's symmetric 3-level HAP, and a 2-state MMPP fallback.
//
// The estimators are the paper's own closed forms run backwards:
//
//   - the mean-rate equation λ̄ = ν·(l·a')·(m·λ”) (Equations 4/5) pins the
//     product of the level loads to the observed rate;
//   - the index-of-dispersion-for-counts curve of a doubly stochastic
//     Poisson process, IDC(w) = 1 + (2/λ̄w)·Σⱼ cⱼ·K(aⱼ,w) with
//     K = core.IDCKernel, identifies the per-level modulation amplitudes
//     cⱼ and relaxation rates aⱼ (one exponential for ON-OFF, the paper's
//     two-exponential cascade — core.Model.NewIDC — for the 3-level HAP);
//   - inverting core's exact covariance coefficients (IDC.Components)
//     turns (λ̄, c₁, a₁ = μ', c₂, a₂ = μ) back into (λ, μ, λ', μ', λ”).
//
// What a stationary arrival trace cannot identify is documented rather
// than guessed at: the message service rate μ” (no departures are
// observed; Options.ServiceRate supplies it), and the (l, fanout) tree
// shape, which by Equation 5 affects the law only through the leaf count
// (Options.AppTypes/Fanout distribute the recovered products).
//
// A Baum–Welch EM fitter for the 2-state MMPP (FitMMPP2EM) is the
// general-purpose fallback when no hierarchical structure fits, and a
// BIC/AIC model-selection report (Fit) ranks all candidates against one
// trace — the comparison the 2-state-MMPP literature (Heffes–Lucantoni)
// loses to HAP on hierarchical traffic.
package fit

import (
	"math"
	"time"

	"hap/internal/core"
	"hap/internal/haperr"
)

// Options tunes the fitters. The zero value is usable.
type Options struct {
	// ServiceRate is the message service rate μ” assigned to fitted
	// queueing models. A stationary arrival trace carries no information
	// about service, so this is declared, not estimated; 0 defaults to
	// 2·λ̄ (utilisation 0.5).
	ServiceRate float64
	// AppTypes (l) and Fanout (m) fix the symmetric HAP tree shape over
	// which the recovered level products are distributed. 0 defaults to 1.
	// Equation 5: any split with the same leaf count yields the same law.
	AppTypes, Fanout int
	// MinBins is the minimum completed bins behind an IDC point for it to
	// enter the curve fit (< 2 defaults to 8).
	MinBins int64
	// EM tunes the Baum-Welch MMPP2 fitter.
	EM EMOptions
	// Models restricts the candidate set of Fit ("poisson", "onoff",
	// "hap", "mmpp2"); empty fits all four.
	Models []string
	// Workers bounds the goroutines Fit spreads its model candidates over
	// (<= 0 selects GOMAXPROCS, 1 runs inline). Candidate results depend
	// only on the trace and per-model options, so the report is identical
	// at any worker count.
	Workers int
	// Scratch, when non-nil, carries warm-start state across successive
	// fits: the moment-matching ON-OFF/HAP fitters reuse their decay-rate
	// grid-search bracket (searching locally around the previous winner
	// before falling back to the full grid), and the EM fitter reuses its
	// working arrays. Not safe for concurrent use.
	Scratch *Scratch
}

func (o Options) serviceRate(rate float64) float64 {
	if o.ServiceRate > 0 {
		return o.ServiceRate
	}
	return 2 * rate
}

func (o Options) shape() (l, fanout int) {
	l, fanout = o.AppTypes, o.Fanout
	if l < 1 {
		l = 1
	}
	if fanout < 1 {
		fanout = 1
	}
	return l, fanout
}

func (o Options) minBins() int64 {
	if o.MinBins < 2 {
		return 8
	}
	return o.MinBins
}

// PoissonFit is a fitted Poisson process.
type PoissonFit struct {
	Rate float64
	Diag haperr.Diag
}

// FitPoisson moment-matches a Poisson process: λ̂ is the empirical rate.
func FitPoisson(ts *TraceStats) (PoissonFit, error) {
	start := time.Now()
	r := ts.Rate()
	if !(r > 0) {
		err := haperr.Badf("fit: trace has no measurable rate")
		recordFitErr("poisson", start, err)
		return PoissonFit{}, err
	}
	f := PoissonFit{Rate: r, Diag: haperr.Diag{Converged: true}}
	recordFit("poisson", start, f.Diag)
	return f, nil
}

// OnOffFit is a fitted 2-level HAP / ON-OFF model.
type OnOffFit struct {
	Model *core.TwoLevel
	// Nu is the recovered mean number of active calls λ/μ.
	Nu   float64
	Diag haperr.Diag
}

// FitOnOff moment-matches the 2-level HAP: the modulated rate is R = γ·X
// with X an M/M/∞(λ, μ) call population, so Cov_R(u) = γ²ν·e^{−μu} and
//
//	IDC(w) = 1 + (2γ²ν/λ̄)·K(μ,w)/w,  λ̄ = νγ.
//
// A one-exponential least-squares fit of the empirical IDC curve yields
// the amplitude c = γ²ν and the knee μ; then γ = c/λ̄, ν = λ̄/γ, λ = νμ.
// The message service rate is Options.ServiceRate (not identifiable).
func FitOnOff(ts *TraceStats, opt Options) (OnOffFit, error) {
	start := time.Now()
	rate := ts.Rate()
	pts := ts.IDCPoints(opt.minBins())
	c, a, diag, err := fitExpCovariance(pts, rate, 1, opt.Scratch)
	if err != nil {
		recordFitErr("onoff", start, err)
		return OnOffFit{}, err
	}
	gamma := c[0] / rate
	nu := rate / gamma
	mu := a[0]
	tl := &core.TwoLevel{
		Lambda:    nu * mu,
		Mu:        mu,
		MsgLambda: gamma,
		MsgMu:     opt.serviceRate(rate),
	}
	if err := tl.Validate(); err != nil {
		err = haperr.Badf("fit: ON-OFF inversion produced an invalid model (%v)", err)
		recordFitErr("onoff", start, err)
		return OnOffFit{}, err
	}
	f := OnOffFit{Model: tl, Nu: nu, Diag: diag}
	recordFit("onoff", start, diag)
	return f, nil
}

// HAPFit is a fitted symmetric 3-level HAP.
type HAPFit struct {
	Model *core.Model
	Diag  haperr.Diag
}

// FitSymmetricHAP moment-matches the paper's symmetric HAP by inverting
// the exact two-exponential rate covariance behind core.Model.NewIDC:
//
//	Cov_R(u) = c₁·e^{−μ'u} + c₂·e^{−μu}
//	c₂/λ̄ = P·L·μ'²/((μ+μ')(μ'−μ))        (user-driven term)
//	c₁/λ̄ = P − (P·L)·μ'μ/((μ+μ')(μ'−μ))  (application-driven term)
//	λ̄    = ν·L·P                          (Equation 5)
//
// with L = l·λ'/μ' the application load per user and P = m·λ” the message
// rate per active application. A two-exponential least-squares fit of the
// empirical IDC curve gives (c₁, μ', c₂, μ); the three equations above
// then recover (ν, L, P) in closed form, and Options.AppTypes/Fanout
// distribute L and P over the tree (Equation 5 makes every split with the
// same leaf count equivalent).
func FitSymmetricHAP(ts *TraceStats, opt Options) (HAPFit, error) {
	return FitSymmetricHAPPoints(ts.Rate(), ts.IDCPoints(opt.minBins()), opt)
}

// FitSymmetricHAPPoints is FitSymmetricHAP from an already-snapshotted
// rate and IDC curve — the form the continuous control loop uses, where
// the TraceStats lives on the ingest goroutine and only a cheap snapshot
// (rate + points) crosses to the fit worker.
func FitSymmetricHAPPoints(rate float64, pts []IDCPoint, opt Options) (HAPFit, error) {
	start := time.Now()
	c, a, diag, err := fitExpCovariance(pts, rate, 2, opt.Scratch)
	if err != nil {
		recordFitErr("hap", start, err)
		return HAPFit{}, err
	}
	// Faster relaxation is the application level (condition 1a/1b of the
	// paper's Section 4.1 requires μ' ≫ μ).
	muApp, mu := a[0], a[1]
	c1, c2 := c[0], c[1]
	if muApp < mu {
		muApp, mu = mu, muApp
		c1, c2 = c2, c1
	}
	denom := (mu + muApp) * (muApp - mu)
	if denom <= 0 {
		err := haperr.Badf("fit: degenerate relaxation rates μ'=%g μ=%g", muApp, mu)
		recordFitErr("hap", start, err)
		return HAPFit{}, err
	}
	lp := (c2 / rate) * denom / (muApp * muApp) // L·P
	p := c1/rate + lp*muApp*mu/denom            // P = m·λ”
	if !(lp > 0) || !(p > 0) || lp <= 0 {
		err := haperr.Badf("fit: IDC inversion left non-positive level products (LP=%g P=%g)", lp, p)
		recordFitErr("hap", start, err)
		return HAPFit{}, err
	}
	l, fanout := opt.shape()
	load := lp / p    // L = l·λ'/μ'
	nu := rate / lp   // ν = λ̄/(L·P)
	lambda := nu * mu // user arrival rate
	lambdaApp := load * muApp / float64(l)
	lambdaMsg := p / float64(fanout)
	m := core.NewSymmetric(lambda, mu, lambdaApp, muApp, lambdaMsg, opt.serviceRate(rate), l, fanout)
	m.Name = "fitted-HAP"
	if err := m.Validate(); err != nil {
		err = haperr.Badf("fit: HAP inversion produced an invalid model (%v)", err)
		recordFitErr("hap", start, err)
		return HAPFit{}, err
	}
	f := HAPFit{Model: m, Diag: diag}
	recordFit("hap", start, diag)
	return f, nil
}

// fitExpCovariance least-squares fits the empirical IDC curve with a
// k-exponential (k = 1 or 2) covariance model
//
//	IDC(w) − 1 = Σⱼ cⱼ·bⱼ(w),  bⱼ(w) = 2·K(aⱼ,w)/(λ̄·w)
//
// by geometric grid search over the relaxation rates aⱼ (the model is
// linear in the amplitudes cⱼ, solved in closed form per grid point),
// followed by golden-section refinement. Points are weighted by their
// completed-bin count. Returns amplitudes, rates and a Diag with the
// weighted RMS residual.
//
// When scr carries a warm bracket (a previous fit's accepted rates), the
// grid search is replaced by a local sweep of ±warmSpan grid steps around
// the previous winner — the sliding-window refit case, where the knee
// moves slowly between calls. An inadmissible warm sweep falls back to
// the full grid, so warm starts change cost, never feasibility.
func fitExpCovariance(pts []IDCPoint, rate float64, k int, scr *Scratch) (c, a []float64, diag haperr.Diag, err error) {
	if !(rate > 0) {
		return nil, nil, diag, haperr.Badf("fit: trace has no measurable rate")
	}
	need := 3 * k
	if len(pts) < need {
		return nil, nil, diag, haperr.Badf("fit: %d IDC points but a %d-exponential fit needs at least %d (trace too short)", len(pts), k, need)
	}
	// Require an actual dispersion signal; a flat IDC≈1 curve is Poisson.
	maxD := 0.0
	for _, p := range pts {
		if p.IDC > maxD {
			maxD = p.IDC
		}
	}
	if maxD < 1.05 {
		return nil, nil, diag, haperr.Badf("fit: IDC stays at %.3g (no burstiness above Poisson to invert)", maxD)
	}
	wMin, wMax := pts[0].Window, pts[len(pts)-1].Window
	// Grid of candidate relaxation rates spanning well past the window
	// ladder on both sides.
	const gridN = 48
	lo, hi := 0.05/wMax, 4/wMin
	grid := make([]float64, gridN)
	for i := range grid {
		grid[i] = lo * math.Pow(hi/lo, float64(i)/float64(gridN-1))
	}
	evals := 0
	best := math.Inf(1)
	bestA := make([]float64, k)
	bestC := make([]float64, k)
	tryRates := func(as []float64) {
		evals++
		cs, sse, ok := solveAmplitudes(pts, rate, as)
		if ok && sse < best {
			best = sse
			copy(bestA, as)
			copy(bestC, cs)
		}
	}
	gridStep := math.Pow(hi/lo, 1/float64(gridN-1))
	warm := false
	if scr != nil {
		if prev := scr.warmRates(k); len(prev) == k {
			// Local sweep: every combination of prev[j]·step^i,
			// i ∈ [−warmSpan, warmSpan], clamped to the grid's range.
			const warmSpan = 2
			local := func(base float64, i int) float64 {
				v := base * math.Pow(gridStep, float64(i))
				return math.Min(math.Max(v, lo), hi)
			}
			if k == 1 {
				for i := -warmSpan; i <= warmSpan; i++ {
					tryRates([]float64{local(prev[0], i)})
				}
			} else {
				for i := -warmSpan; i <= warmSpan; i++ {
					for j := -warmSpan; j <= warmSpan; j++ {
						tryRates([]float64{local(prev[0], i), local(prev[1], j)})
					}
				}
			}
			warm = !math.IsInf(best, 1)
		}
	}
	if !warm {
		if k == 1 {
			for _, a0 := range grid {
				tryRates([]float64{a0})
			}
		} else {
			for i, a0 := range grid {
				for _, a1 := range grid[i+1:] {
					tryRates([]float64{a1, a0}) // a1 > a0: fast rate first
				}
			}
		}
	}
	if math.IsInf(best, 1) {
		return nil, nil, diag, haperr.Badf("fit: no admissible %d-exponential covariance fit", k)
	}
	// Coordinate-wise golden-section refinement around the grid winner.
	step := gridStep
	for round := 0; round < 3; round++ {
		for j := 0; j < k; j++ {
			lo, hi := bestA[j]/step, bestA[j]*step
			for it := 0; it < 24; it++ {
				m1 := lo * math.Pow(hi/lo, 1.0/3)
				m2 := lo * math.Pow(hi/lo, 2.0/3)
				trial := append([]float64(nil), bestA...)
				trial[j] = m1
				_, s1, ok1 := solveAmplitudes(pts, rate, trial)
				trial[j] = m2
				_, s2, ok2 := solveAmplitudes(pts, rate, trial)
				evals += 2
				if !ok1 {
					s1 = math.Inf(1)
				}
				if !ok2 {
					s2 = math.Inf(1)
				}
				if s1 < s2 {
					hi = m2
				} else {
					lo = m1
				}
			}
			trial := append([]float64(nil), bestA...)
			trial[j] = math.Sqrt(lo * hi)
			if cs, sse, ok := solveAmplitudes(pts, rate, trial); ok && sse < best {
				best = sse
				bestA[j] = trial[j]
				copy(bestC, cs)
			}
		}
	}
	var wsum float64
	binsEff := effectiveBins(pts)
	for i, p := range pts {
		wsum += binsEff[i] / math.Max(p.IDC*p.IDC, 1)
	}
	diag = haperr.Diag{
		Iterations: evals,
		Residual:   math.Sqrt(best / wsum),
		Converged:  true,
	}
	if scr != nil {
		scr.setWarmRates(k, bestA)
	}
	return bestC, bestA, diag, nil
}

// solveAmplitudes solves the weighted linear least squares for the
// amplitudes given fixed relaxation rates, rejecting non-positive
// solutions (a covariance amplitude is a variance share).
func solveAmplitudes(pts []IDCPoint, rate float64, as []float64) (cs []float64, sse float64, ok bool) {
	k := len(as)
	// Normal equations over the k basis functions, weighted by the inverse
	// variance of each IDC estimate, var(Î)/IDC² ≈ 2/B_eff. B_eff is NOT
	// the raw bin count: for long-memory traffic adjacent bins stay
	// correlated over the slowest relaxation time, so every window shares
	// roughly the same number of independent stretches as the largest one.
	// Capping at a small multiple of the largest window's count keeps the
	// short windows (millions of raw bins, but the same handful of slow
	// epochs) from drowning the knee region in their estimator bias.
	binsEff := effectiveBins(pts)
	var ata [4]float64 // row-major k×k, k <= 2
	var aty [2]float64
	b := make([]float64, k)
	for i, p := range pts {
		y := p.IDC - 1
		wgt := binsEff[i] / math.Max(p.IDC*p.IDC, 1)
		for j := 0; j < k; j++ {
			b[j] = 2 * core.IDCKernel(as[j], p.Window) / (rate * p.Window)
		}
		for j := 0; j < k; j++ {
			aty[j] += wgt * b[j] * y
			for i := 0; i < k; i++ {
				ata[j*k+i] += wgt * b[j] * b[i]
			}
		}
	}
	cs = make([]float64, k)
	if k == 1 {
		if ata[0] <= 0 {
			return nil, 0, false
		}
		cs[0] = aty[0] / ata[0]
	} else {
		det := ata[0]*ata[3] - ata[1]*ata[2]
		if math.Abs(det) < 1e-300 {
			return nil, 0, false
		}
		cs[0] = (aty[0]*ata[3] - aty[1]*ata[1]) / det
		cs[1] = (ata[0]*aty[1] - ata[2]*aty[0]) / det
	}
	for _, cv := range cs {
		if !(cv > 0) || math.IsInf(cv, 0) {
			return nil, 0, false
		}
	}
	for i, p := range pts {
		pred := 0.0
		for j := 0; j < k; j++ {
			pred += cs[j] * 2 * core.IDCKernel(as[j], p.Window) / (rate * p.Window)
		}
		d := (p.IDC - 1) - pred
		sse += binsEff[i] / math.Max(p.IDC*p.IDC, 1) * d * d
	}
	return cs, sse, true
}

// effectiveBins caps each IDC point's bin count at a small multiple of
// the largest window's, the shared independent-epoch budget.
func effectiveBins(pts []IDCPoint) []float64 {
	cap := math.Inf(1)
	if n := len(pts); n > 0 {
		cap = 32 * float64(pts[n-1].Bins)
	}
	out := make([]float64, len(pts))
	for i, p := range pts {
		out[i] = math.Min(float64(p.Bins), cap)
	}
	return out
}
