package fit

import (
	"math"
	"sort"

	"hap/internal/haperr"
	"hap/internal/stats"
)

// TraceConfig parameterises a TraceStats accumulator. Two TraceStats can
// only be merged when their configurations are identical, so replicated
// analyses must share one config (Analyze derives it from the first trace
// and reuses it for the rest).
type TraceConfig struct {
	// Windows is the ladder of IDC window lengths (seconds, ascending).
	// Empty disables count-dispersion tracking.
	Windows []float64
	// GapThreshold separates bursts: an interarrival exceeding it closes
	// the current busy run and records an idle period. <= 0 disables
	// busy/idle tracking.
	GapThreshold float64
	// SlideWindow, when positive, keeps the last SlideWindow seconds of
	// raw timestamps in a ring buffer: Slide(t) evicts older arrivals in
	// O(1) amortised time and WindowTimes hands the retained span to a
	// Refitter — the hapfit -listen re-fit loop. The cumulative moments
	// (Welford, IDC ladder, bursts) remain whole-trace; only the refit
	// feed slides. <= 0 disables retention.
	SlideWindow float64
}

// TraceStats is a single-pass accumulator over arrival timestamps: Welford
// interarrival moments (mean, variance, c²), index-of-dispersion counts
// over the configured window ladder, and busy/idle run-length statistics.
// It is the observational half of the estimation layer — everything the
// moment-matching fitters consume comes out of one of its accessors.
//
// Feed timestamps in nondecreasing order via Add; Analyze sorts for you.
// The zero value is not usable — construct with NewTraceStats.
type TraceStats struct {
	cfg TraceConfig

	n           int64
	first, last float64
	started     bool

	ia stats.Welford // interarrival times

	win []windowAcc

	// Busy/idle runs under cfg.GapThreshold.
	inBurst    bool
	burstStart float64
	burstN     int64
	bursts     stats.Welford // burst durations
	burstSizes stats.Welford // arrivals per burst
	gaps       stats.Welford // idle gap durations

	// Sliding-window retention ring under cfg.SlideWindow (see Slide).
	ring  []float64
	head  int // index of the oldest retained timestamp
	count int // retained timestamps
}

// windowAcc counts arrivals in consecutive bins of width w; completed bins
// feed a Welford whose Var/Mean ratio is the IDC estimate at that window.
type windowAcc struct {
	w      float64
	next   float64 // end of the current bin
	count  float64
	counts stats.Welford
}

// NewTraceStats builds an accumulator. Windows must be positive and
// ascending; a bad ladder returns an ErrBadParameter error because trace
// configurations are frequently user input (hapfit flags).
func NewTraceStats(cfg TraceConfig) (*TraceStats, error) {
	prev := 0.0
	for _, w := range cfg.Windows {
		if !(w > prev) || math.IsInf(w, 1) {
			return nil, haperr.Badf("fit: IDC windows must be positive, finite and ascending (got %v)", cfg.Windows)
		}
		prev = w
	}
	if math.IsNaN(cfg.SlideWindow) || math.IsInf(cfg.SlideWindow, 0) || cfg.SlideWindow < 0 {
		return nil, haperr.Badf("fit: slide window must be a non-negative finite duration (got %v)", cfg.SlideWindow)
	}
	ts := &TraceStats{cfg: cfg, win: make([]windowAcc, len(cfg.Windows))}
	for i, w := range cfg.Windows {
		ts.win[i].w = w
	}
	return ts, nil
}

// Config returns the accumulator's configuration.
func (ts *TraceStats) Config() TraceConfig { return ts.cfg }

// Add ingests one arrival timestamp. Timestamps must be nondecreasing up
// to the same float jitter the rest of the stats layer tolerates
// (stats.TimeEps); a gross regression returns an ErrBadParameter error —
// trace files are untrusted input, so this never panics.
func (ts *TraceStats) Add(t float64) error {
	if math.IsNaN(t) || math.IsInf(t, 0) {
		return haperr.Badf("fit: non-finite timestamp %v", t)
	}
	if !ts.started {
		ts.started = true
		ts.first, ts.last = t, t
		ts.n = 1
		for i := range ts.win {
			ts.win[i].next = t + ts.win[i].w
			ts.win[i].count = 1
		}
		if ts.cfg.GapThreshold > 0 {
			ts.inBurst = true
			ts.burstStart = t
			ts.burstN = 1
		}
		if ts.cfg.SlideWindow > 0 {
			ts.ringPush(t)
		}
		return nil
	}
	if t < ts.last {
		scale := math.Max(1, math.Max(math.Abs(t), math.Abs(ts.last)))
		if ts.last-t > stats.TimeEps*scale {
			return haperr.Badf("fit: timestamps went backwards (%v -> %v)", ts.last, t)
		}
		t = ts.last // clamp float jitter to monotone
	}
	ia := t - ts.last
	ts.ia.Add(ia)
	ts.n++
	for i := range ts.win {
		wa := &ts.win[i]
		for t >= wa.next {
			wa.counts.Add(wa.count)
			wa.count = 0
			wa.next += wa.w
		}
		wa.count++
	}
	if ts.cfg.GapThreshold > 0 {
		if ia > ts.cfg.GapThreshold {
			ts.bursts.Add(ts.last - ts.burstStart)
			ts.burstSizes.Add(float64(ts.burstN))
			ts.gaps.Add(ia)
			ts.burstStart = t
			ts.burstN = 1
		} else {
			ts.burstN++
		}
	}
	if ts.cfg.SlideWindow > 0 {
		ts.ringPush(t)
	}
	ts.last = t
	return nil
}

// ringPush appends a timestamp to the retention ring, doubling capacity
// when full. Once the ring has grown to the window's peak occupancy the
// push is allocation-free — the TestFitHotPathAllocs contract for Add.
func (ts *TraceStats) ringPush(t float64) {
	if ts.count == len(ts.ring) {
		grown := make([]float64, max(64, 2*len(ts.ring)))
		n := ts.WindowTimes(grown[:0])
		ts.ring, ts.head, ts.count = grown, 0, len(n)
	}
	i := ts.head + ts.count
	if i >= len(ts.ring) {
		i -= len(ts.ring)
	}
	ts.ring[i] = t
	ts.count++
}

// Slide evicts retained timestamps older than t − SlideWindow from the
// ring. Each eviction is O(1) and every arrival is evicted at most once,
// so a slide-per-arrival loop stays O(1) amortised regardless of how
// often it runs. Returns the number of evictions. No-op (0) when
// retention is disabled.
func (ts *TraceStats) Slide(t float64) int {
	if ts.cfg.SlideWindow <= 0 {
		return 0
	}
	cut := t - ts.cfg.SlideWindow
	evicted := 0
	for ts.count > 0 && ts.ring[ts.head] < cut {
		ts.head++
		if ts.head == len(ts.ring) {
			ts.head = 0
		}
		ts.count--
		evicted++
	}
	return evicted
}

// WindowN returns the number of timestamps currently retained.
func (ts *TraceStats) WindowN() int { return ts.count }

// WindowMoments returns the empirical mean arrival rate and interarrival
// c² of the timestamps currently retained by the sliding window — the
// same data a Refit sees, unlike Rate/C2 which describe the whole trace
// since start. Allocation-free: one pass over the ring. Both are 0 when
// fewer than 2 (rate) / 3 (c²) timestamps are retained.
func (ts *TraceStats) WindowMoments() (rate, c2 float64) {
	if ts.count < 2 {
		return 0, 0
	}
	// Welford over the n−1 interarrivals, walking the ring in place.
	i := ts.head
	prev := ts.ring[i]
	var mean, m2 float64
	n := 0.0
	for k := 1; k < ts.count; k++ {
		i++
		if i == len(ts.ring) {
			i = 0
		}
		t := ts.ring[i]
		ia := t - prev
		prev = t
		n++
		d := ia - mean
		mean += d / n
		m2 += d * (ia - mean)
	}
	span := prev - ts.ring[ts.head]
	if span > 0 {
		rate = n / span
	}
	if n >= 2 && mean > 0 {
		c2 = (m2 / (n - 1)) / (mean * mean)
	}
	return rate, c2
}

// WindowTimes appends the retained timestamps (oldest first) to dst and
// returns it — at most two copies, allocation-free when dst has capacity.
func (ts *TraceStats) WindowTimes(dst []float64) []float64 {
	if ts.count == 0 {
		return dst
	}
	end := ts.head + ts.count
	if end <= len(ts.ring) {
		return append(dst, ts.ring[ts.head:end]...)
	}
	dst = append(dst, ts.ring[ts.head:]...)
	return append(dst, ts.ring[:end-len(ts.ring)]...)
}

// Merge folds another accumulator's completed statistics into ts: the
// interarrival Welford, per-window completed-bin counts and busy/idle runs
// combine exactly; each trace's possibly-incomplete final bin and burst are
// dropped, as within a single trace. Configurations must match (same
// window ladder and gap threshold) or an ErrBadParameter error is
// returned. Horizons add; timestamps keep their original clocks. The
// sliding-window retention ring is per-stream (its timestamps live on the
// source's clock) and is not merged.
func (ts *TraceStats) Merge(o *TraceStats) error {
	if len(ts.win) != len(o.win) || ts.cfg.GapThreshold != o.cfg.GapThreshold {
		return haperr.Badf("fit: merging TraceStats with different configurations")
	}
	for i := range ts.win {
		if ts.win[i].w != o.win[i].w {
			return haperr.Badf("fit: merging TraceStats with different IDC windows")
		}
	}
	if !o.started {
		return nil
	}
	ts.ia.Merge(&o.ia)
	ts.n += o.n
	for i := range ts.win {
		ts.win[i].counts.Merge(&o.win[i].counts)
	}
	ts.bursts.Merge(&o.bursts)
	ts.burstSizes.Merge(&o.burstSizes)
	ts.gaps.Merge(&o.gaps)
	if !ts.started {
		ts.started = true
		ts.first, ts.last = o.first, o.last
	} else {
		// Disjoint observation windows observed back to back.
		ts.last += o.last - o.first
	}
	return nil
}

// N returns the number of arrivals ingested.
func (ts *TraceStats) N() int64 { return ts.n }

// Horizon returns the observed span last − first.
func (ts *TraceStats) Horizon() float64 { return ts.last - ts.first }

// Rate returns the empirical mean arrival rate (n−1)/(last−first) — the
// renewal-exact estimator of λ̄ (Equation 4's observable).
func (ts *TraceStats) Rate() float64 {
	if ts.n < 2 || ts.Horizon() <= 0 {
		return 0
	}
	return float64(ts.n-1) / ts.Horizon()
}

// MeanIA returns the mean interarrival time.
func (ts *TraceStats) MeanIA() float64 { return ts.ia.Mean() }

// C2 returns the empirical squared coefficient of variation of the
// interarrival times (Poisson: 1; HAP: > 1).
func (ts *TraceStats) C2() float64 { return ts.ia.SCV() }

// IA returns a copy of the interarrival Welford accumulator.
func (ts *TraceStats) IA() stats.Welford { return ts.ia }

// IDCPoint is one empirical index-of-dispersion estimate.
type IDCPoint struct {
	Window float64 // bin width, seconds
	IDC    float64 // Var/Mean of completed-bin counts
	Bins   int64   // completed bins behind the estimate
}

// IDCPoints returns the per-window dispersion estimates with at least
// minBins completed bins (minBins < 2 defaults to 2; the variance of a
// 1-bin estimate is undefined).
func (ts *TraceStats) IDCPoints(minBins int64) []IDCPoint {
	return ts.AppendIDCPoints(nil, minBins)
}

// AppendIDCPoints is IDCPoints appending into dst — allocation-free when
// dst has capacity, for snapshot loops that run per refit cycle.
func (ts *TraceStats) AppendIDCPoints(dst []IDCPoint, minBins int64) []IDCPoint {
	if minBins < 2 {
		minBins = 2
	}
	for i := range ts.win {
		wa := &ts.win[i]
		if wa.counts.N() < minBins || wa.counts.Mean() <= 0 {
			continue
		}
		dst = append(dst, IDCPoint{
			Window: wa.w,
			IDC:    wa.counts.Var() / wa.counts.Mean(),
			Bins:   wa.counts.N(),
		})
	}
	return dst
}

// BurstStats summarises the busy/idle run-length structure under the
// configured gap threshold.
type BurstStats struct {
	Threshold   float64
	Bursts      int64   // completed busy runs
	MeanBurst   float64 // mean busy-run duration
	MeanSize    float64 // mean arrivals per busy run
	MeanGap     float64 // mean idle gap
	GapFraction float64 // Σgaps / horizon — crude OFF fraction
}

// Bursts returns the busy/idle summary (zero value when disabled).
func (ts *TraceStats) Bursts() BurstStats {
	bs := BurstStats{
		Threshold: ts.cfg.GapThreshold,
		Bursts:    ts.bursts.N(),
		MeanBurst: ts.bursts.Mean(),
		MeanSize:  ts.burstSizes.Mean(),
		MeanGap:   ts.gaps.Mean(),
	}
	if h := ts.Horizon(); h > 0 {
		bs.GapFraction = ts.gaps.Mean() * float64(ts.gaps.N()) / h
	}
	return bs
}

// Summary is the exportable snapshot of a TraceStats, the observational
// input every fit report carries.
type Summary struct {
	N       int64
	Horizon float64
	Rate    float64
	MeanIA  float64
	C2      float64
	IDC     []IDCPoint
	Bursts  BurstStats
}

// Summary snapshots the accumulator.
func (ts *TraceStats) Summary() Summary {
	return Summary{
		N:       ts.n,
		Horizon: ts.Horizon(),
		Rate:    ts.Rate(),
		MeanIA:  ts.MeanIA(),
		C2:      ts.C2(),
		IDC:     ts.IDCPoints(0),
		Bursts:  ts.Bursts(),
	}
}

// DefaultWindows builds a geometric IDC window ladder for a trace of the
// given mean interarrival and horizon: from a few interarrivals up to an
// eighth of the horizon (so every window completes at least 8 bins),
// factor-of-√2 spaced, at most 40 windows. Returns nil when the trace is
// too short to support dispersion estimates.
func DefaultWindows(meanIA, horizon float64) []float64 {
	if !(meanIA > 0) || !(horizon > 0) {
		return nil
	}
	lo := 4 * meanIA
	hi := horizon / 8
	if hi <= lo {
		return nil
	}
	var out []float64
	for w := lo; w <= hi && len(out) < 40; w *= math.Sqrt2 {
		out = append(out, w)
	}
	return out
}

// Analyze runs the full single-trace pipeline: sort a copy of the
// timestamps, derive a default configuration (window ladder from
// DefaultWindows, gap threshold at 10 mean interarrivals) for any field
// the caller left zero, and ingest. It needs at least 8 arrivals.
func Analyze(times []float64, cfg TraceConfig) (*TraceStats, error) {
	if len(times) < 8 {
		return nil, haperr.Badf("fit: need at least 8 arrivals, got %d", len(times))
	}
	sorted := append([]float64(nil), times...)
	sort.Float64s(sorted)
	horizon := sorted[len(sorted)-1] - sorted[0]
	if !(horizon > 0) {
		return nil, haperr.Badf("fit: trace spans zero time")
	}
	meanIA := horizon / float64(len(sorted)-1)
	if cfg.Windows == nil {
		cfg.Windows = DefaultWindows(meanIA, horizon)
	}
	if cfg.GapThreshold == 0 {
		cfg.GapThreshold = 10 * meanIA
	}
	ts, err := NewTraceStats(cfg)
	if err != nil {
		return nil, err
	}
	for _, t := range sorted {
		if err := ts.Add(t); err != nil {
			return nil, err
		}
	}
	return ts, nil
}
