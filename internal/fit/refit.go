package fit

import (
	"context"
	"errors"

	"hap/internal/haperr"
)

// Refitter runs the continuous estimation loop the hapfit -listen path
// needs: each Refit call takes the timestamps currently retained by a
// sliding-window TraceStats (TraceConfig.SlideWindow) and re-runs the
// MMPP2 EM fit, warm-started from the previous window's result and inside
// a private scratch arena. Because consecutive windows overlap heavily,
// the warm start typically converges in a handful of iterations, and at
// steady state (buffers grown, fit converging) a Refit performs zero
// allocations — the loop can run every N arrivals indefinitely without
// feeding the garbage collector.
//
// A Refitter is not safe for concurrent use. The zero value is ready;
// set Opt to tune the underlying fitter (Warm and Scratch are managed by
// the Refitter and overwritten on every call).
type Refitter struct {
	// Opt is the EM option template for every re-fit.
	Opt EMOptions

	scratch Scratch
	prev    MMPP2Fit
	warm    bool
	times   []float64
}

// Refit re-fits the retained window of ts. Windows shorter than the EM
// minimum (8 arrivals) return an ErrBadParameter error and leave the
// warm state untouched; a budget-exhausted fit (ErrNotConverged) still
// advances the warm state, since its best iterate is the closest
// available starting point for the next window.
func (rf *Refitter) Refit(ctx context.Context, ts *TraceStats) (MMPP2Fit, error) {
	rf.times = ts.WindowTimes(rf.times[:0])
	return rf.RefitTimes(ctx, rf.times)
}

// RefitTimes re-fits an explicit timestamp slice — the control-loop form,
// where the window snapshot was taken on another goroutine and handed
// over. Same warm-state semantics as Refit; times is not retained.
func (rf *Refitter) RefitTimes(ctx context.Context, times []float64) (MMPP2Fit, error) {
	opt := rf.Opt
	opt.Scratch = &rf.scratch
	opt.Warm = nil
	if rf.warm {
		opt.Warm = &rf.prev
	}
	f, err := FitMMPP2EM(ctx, times, opt)
	if err == nil || errors.Is(err, haperr.ErrNotConverged) {
		rf.prev, rf.warm = f, true
	}
	return f, err
}

// Last returns the most recent usable fit and whether one exists. The
// fit may be an ErrNotConverged best iterate — consult Converged (or the
// fit's own Diag.Converged) before treating it as authoritative; a
// budget-exhausted window still advances the warm state because its best
// iterate is the closest starting point for the next window.
func (rf *Refitter) Last() (MMPP2Fit, bool) { return rf.prev, rf.warm }

// Converged reports whether the warm state holds a fit that met the EM
// tolerance. False both before the first fit and after a window whose
// budget ran out (ErrNotConverged) — the signal a control plane uses to
// mark decisions derived from the current fit as degraded.
func (rf *Refitter) Converged() bool { return rf.warm && rf.prev.Diag.Converged }

// RefitReport is the exportable snapshot of one refit cycle. The window
// moments describe exactly the data the fit saw; the cumulative moments
// describe the whole stream since start. (Reporting only the cumulative
// rate/c² next to a window-local fit conflated the two — after a level
// shift they can disagree arbitrarily.)
type RefitReport struct {
	Arrivals   int64   `json:"arrivals"`    // stream arrivals ingested since start
	WindowN    int     `json:"window_n"`    // timestamps in the fitted window
	WindowRate float64 `json:"window_rate"` // arrival rate over the window
	WindowC2   float64 `json:"window_c2"`   // interarrival c² over the window
	CumRate    float64 `json:"cum_rate"`    // whole-stream rate since start
	CumC2      float64 `json:"cum_c2"`      // whole-stream c² since start
	R0         float64 `json:"r0"`          // fitted MMPP2 slow-state rate
	R1         float64 `json:"r1"`          // fitted MMPP2 fast-state rate
	Q01        float64 `json:"q01"`
	Q10        float64 `json:"q10"`
	Iterations int     `json:"iterations"`
	Converged  bool    `json:"converged"`
}

// Report snapshots the current warm state against the accumulator that
// feeds it. The fit fields are zero before the first successful Refit.
func (rf *Refitter) Report(ts *TraceStats) RefitReport {
	wr, wc2 := ts.WindowMoments()
	r := RefitReport{
		Arrivals:   ts.N(),
		WindowN:    ts.WindowN(),
		WindowRate: wr,
		WindowC2:   wc2,
		CumRate:    ts.Rate(),
		CumC2:      ts.C2(),
	}
	if f, ok := rf.Last(); ok {
		r.R0, r.R1 = f.Model.R0, f.Model.R1
		r.Q01, r.Q10 = f.Model.Q01, f.Model.Q10
		r.Iterations = f.Diag.Iterations
		r.Converged = f.Diag.Converged
	}
	return r
}
