package fit

import (
	"context"
	"errors"

	"hap/internal/haperr"
)

// Refitter runs the continuous estimation loop the hapfit -listen path
// needs: each Refit call takes the timestamps currently retained by a
// sliding-window TraceStats (TraceConfig.SlideWindow) and re-runs the
// MMPP2 EM fit, warm-started from the previous window's result and inside
// a private scratch arena. Because consecutive windows overlap heavily,
// the warm start typically converges in a handful of iterations, and at
// steady state (buffers grown, fit converging) a Refit performs zero
// allocations — the loop can run every N arrivals indefinitely without
// feeding the garbage collector.
//
// A Refitter is not safe for concurrent use. The zero value is ready;
// set Opt to tune the underlying fitter (Warm and Scratch are managed by
// the Refitter and overwritten on every call).
type Refitter struct {
	// Opt is the EM option template for every re-fit.
	Opt EMOptions

	scratch Scratch
	prev    MMPP2Fit
	warm    bool
	times   []float64
}

// Refit re-fits the retained window of ts. Windows shorter than the EM
// minimum (8 arrivals) return an ErrBadParameter error and leave the
// warm state untouched; a budget-exhausted fit (ErrNotConverged) still
// advances the warm state, since its best iterate is the closest
// available starting point for the next window.
func (rf *Refitter) Refit(ctx context.Context, ts *TraceStats) (MMPP2Fit, error) {
	rf.times = ts.WindowTimes(rf.times[:0])
	opt := rf.Opt
	opt.Scratch = &rf.scratch
	opt.Warm = nil
	if rf.warm {
		opt.Warm = &rf.prev
	}
	f, err := FitMMPP2EM(ctx, rf.times, opt)
	if err == nil || errors.Is(err, haperr.ErrNotConverged) {
		rf.prev, rf.warm = f, true
	}
	return f, err
}

// Last returns the most recent usable fit and whether one exists.
func (rf *Refitter) Last() (MMPP2Fit, bool) { return rf.prev, rf.warm }
