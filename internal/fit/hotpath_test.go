package fit

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"hap/internal/haperr"
)

// synthTimes generates an MMPP2-like arrival sequence (rates 2/20 with
// sticky per-arrival switching) for fitter tests and benchmarks.
func synthTimes(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	r := [2]float64{2, 20}
	p := [2]float64{0.98, 0.95}
	state, t := 0, 0.0
	times := make([]float64, n)
	for i := range times {
		t += rng.ExpFloat64() / r[state]
		times[i] = t
		if rng.Float64() > p[state] {
			state = 1 - state
		}
	}
	return times
}

// TestFitHotPathAllocs pins the zero-allocation contract of the continuous
// estimation loop (same style as internal/obs.TestHotPathAllocs): at
// steady state — ring grown, scratch arena grown, warm start converging —
// TraceStats.Add, Slide and a warm-started FitMMPP2EM re-fit must not
// allocate, or a long-running hapfit -listen loop would feed the GC on
// every arrival.
func TestFitHotPathAllocs(t *testing.T) {
	cfg := TraceConfig{
		Windows:      []float64{0.1, 0.2},
		GapThreshold: 0.05,
		SlideWindow:  1.0,
	}
	ts, err := NewTraceStats(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Reach steady state: enough arrivals that the ring has grown to the
	// window's occupancy and every eviction path has run.
	now, dt := 0.0, 0.002
	for i := 0; i < 2000; i++ {
		if err := ts.Add(now); err != nil {
			t.Fatal(err)
		}
		ts.Slide(now)
		now += dt
	}

	if got := testing.AllocsPerRun(1000, func() {
		if err := ts.Add(now); err != nil {
			t.Fatal(err)
		}
		ts.Slide(now)
		now += dt
	}); got != 0 {
		t.Errorf("TraceStats.Add+Slide allocates %.1f/op at steady state, want 0", got)
	}

	// Warm-started re-fit: feed the Refitter a couple of windows first so
	// its scratch arena and times buffer have grown and the warm start
	// converges, then require the re-fit itself to be allocation-free.
	times := synthTimes(4000, 3)
	wts, err := NewTraceStats(TraceConfig{SlideWindow: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	for _, tm := range times {
		if err := wts.Add(tm); err != nil {
			t.Fatal(err)
		}
	}
	rf := &Refitter{Opt: EMOptions{MaxSamples: -1}}
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := rf.Refit(ctx, wts); err != nil {
			t.Fatalf("warm-up refit %d: %v", i, err)
		}
	}
	if got := testing.AllocsPerRun(100, func() {
		f, err := rf.Refit(ctx, wts)
		if err != nil {
			t.Fatal(err)
		}
		if !f.Diag.Converged {
			t.Fatal("steady-state warm re-fit did not converge")
		}
	}); got != 0 {
		t.Errorf("warm-start FitMMPP2EM re-fit allocates %.1f/op at steady state, want 0", got)
	}
}

// TestEMMultiStartDeterminism asserts the par contract for multi-start EM:
// the selected fit is bit-identical at any worker count, and depends only
// on (Starts, Seed).
func TestEMMultiStartDeterminism(t *testing.T) {
	times := synthTimes(5000, 11)
	base := EMOptions{Starts: 6, Seed: 42, MaxIter: 60}
	var ref MMPP2Fit
	for i, workers := range []int{1, 2, 3, 8} {
		opt := base
		opt.Workers = workers
		f, err := FitMMPP2EM(context.Background(), times, opt)
		if err != nil && !haperrIs(err, haperr.ErrNotConverged) {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if i == 0 {
			ref = f
			continue
		}
		if !reflect.DeepEqual(f, ref) {
			t.Errorf("workers=%d fit differs from workers=1:\n  got  %+v\n  want %+v", workers, f, ref)
		}
	}

	// A different seed must be allowed to land elsewhere; same seed again
	// must reproduce exactly.
	opt := base
	opt.Workers = 4
	again, err := FitMMPP2EM(context.Background(), times, opt)
	if err != nil && !haperrIs(err, haperr.ErrNotConverged) {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again, ref) {
		t.Errorf("same (Starts, Seed) reproduced a different fit")
	}
}

// TestEMWarmStartConverges asserts a warm re-fit of (nearly) the same data
// settles in far fewer iterations than the cold fit it was seeded from.
func TestEMWarmStartConverges(t *testing.T) {
	times := synthTimes(20000, 5)
	cold, err := FitMMPP2EM(context.Background(), times, EMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := FitMMPP2EM(context.Background(), times, EMOptions{Warm: &cold})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Diag.Iterations >= cold.Diag.Iterations {
		t.Errorf("warm start took %d iterations, cold took %d — warm should be cheaper",
			warm.Diag.Iterations, cold.Diag.Iterations)
	}
	if rel := math.Abs(warm.Model.R1-cold.Model.R1) / cold.Model.R1; rel > 0.05 {
		t.Errorf("warm R1 %g drifted %.1f%% from cold %g", warm.Model.R1, 100*rel, cold.Model.R1)
	}
}

// TestTraceStatsSlideWindow exercises the retention ring: eviction
// boundaries, wraparound, and WindowTimes ordering.
func TestTraceStatsSlideWindow(t *testing.T) {
	ts, err := NewTraceStats(TraceConfig{SlideWindow: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		if err := ts.Add(float64(i) * 0.01); err != nil {
			t.Fatal(err)
		}
	}
	// Arrivals span [0, 2.99]; sliding at 2.99 must retain (1.99, 2.99].
	if got := ts.Slide(2.99); got == 0 {
		t.Fatal("Slide evicted nothing")
	}
	times := ts.WindowTimes(nil)
	if len(times) != ts.WindowN() {
		t.Fatalf("WindowTimes returned %d, WindowN says %d", len(times), ts.WindowN())
	}
	for i, tm := range times {
		if tm < 2.99-1.0 {
			t.Errorf("retained stale timestamp %g", tm)
		}
		if i > 0 && tm < times[i-1] {
			t.Errorf("WindowTimes out of order at %d: %g < %g", i, tm, times[i-1])
		}
	}
	// Sliding past everything empties the ring; the cumulative stats stay.
	ts.Slide(100)
	if ts.WindowN() != 0 {
		t.Errorf("WindowN = %d after sliding past the trace, want 0", ts.WindowN())
	}
	if ts.N() != 300 {
		t.Errorf("cumulative N = %d after slide, want 300 (slide must not touch moments)", ts.N())
	}
	// Disabled retention: Slide is a no-op and WindowTimes stays empty.
	off, _ := NewTraceStats(TraceConfig{})
	_ = off.Add(1)
	if off.Slide(10) != 0 || off.WindowN() != 0 {
		t.Error("retention disabled but ring is live")
	}
	// A negative or non-finite window is rejected as user input.
	if _, err := NewTraceStats(TraceConfig{SlideWindow: -1}); err == nil {
		t.Error("negative SlideWindow accepted")
	}
	if _, err := NewTraceStats(TraceConfig{SlideWindow: math.Inf(1)}); err == nil {
		t.Error("infinite SlideWindow accepted")
	}
}

// TestRefitterTracksDrift drives a Refitter across a window whose traffic
// switches regime and asserts the warm-started fits follow.
func TestRefitterTracksDrift(t *testing.T) {
	ts, err := NewTraceStats(TraceConfig{SlideWindow: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	rf := &Refitter{Opt: EMOptions{}}
	rng := rand.New(rand.NewSource(9))
	now := 0.0
	feed := func(rate float64, n int) {
		for i := 0; i < n; i++ {
			now += rng.ExpFloat64() / rate
			if err := ts.Add(now); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Regime A: MMPP-ish mixture around rates 2 and 20.
	feed(2, 2000)
	feed(20, 2000)
	f1, err := rf.Refit(context.Background(), ts)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := rf.Last(); !ok {
		t.Fatal("Refitter.Last empty after a successful fit")
	}
	// Slide the old regime out and feed a faster one.
	ts.Slide(now + 1e9)
	feed(10, 2000)
	feed(100, 2000)
	f2, err := rf.Refit(context.Background(), ts)
	if err != nil {
		t.Fatal(err)
	}
	if !(f2.Model.R1 > f1.Model.R1) {
		t.Errorf("refit did not follow the regime shift: R1 %g -> %g", f1.Model.R1, f2.Model.R1)
	}
}

// TestInterarrivalsCappedAllocation pins the satellite fix: the buffer is
// sized to the capped count, not len(times)-1.
func TestInterarrivalsCappedAllocation(t *testing.T) {
	times := synthTimes(100000, 1)
	var s Scratch
	x, err := s.interarrivals(times, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(x) != 100 {
		t.Fatalf("len = %d, want 100", len(x))
	}
	if cap(x) != 100 {
		t.Errorf("cap = %d, want 100 (allocation must be sized to the cap, not the trace)", cap(x))
	}
	// Package-level interarrivals (the selection path) gets the same fix.
	y, err := interarrivals(times, 250)
	if err != nil {
		t.Fatal(err)
	}
	if len(y) != 250 || cap(y) != 250 {
		t.Errorf("package interarrivals len/cap = %d/%d, want 250/250", len(y), cap(y))
	}
}

// TestMomentFitWarmBracket asserts the decay-rate grid search reuses its
// bracket through Options.Scratch: the second fit runs far fewer
// objective evaluations and lands on the same knee.
func TestMomentFitWarmBracket(t *testing.T) {
	times := synthTimes(60000, 17)
	ts, err := Analyze(times, TraceConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var scr Scratch
	opt := Options{Scratch: &scr}
	cold, err := FitOnOff(ts, opt)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := FitOnOff(ts, opt)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Diag.Iterations >= cold.Diag.Iterations {
		t.Errorf("warm bracket fit used %d evaluations, cold used %d — warm should be cheaper",
			warm.Diag.Iterations, cold.Diag.Iterations)
	}
	if rel := math.Abs(warm.Model.Mu-cold.Model.Mu) / cold.Model.Mu; rel > 0.10 {
		t.Errorf("warm knee μ=%g drifted %.1f%% from cold μ=%g", warm.Model.Mu, 100*rel, cold.Model.Mu)
	}
	// Without a scratch, every fit pays the full grid.
	coldAgain, err := FitOnOff(ts, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if coldAgain.Diag.Iterations != cold.Diag.Iterations {
		t.Errorf("scratch-free fit used %d evaluations, first cold fit %d — cold cost regressed",
			coldAgain.Diag.Iterations, cold.Diag.Iterations)
	}
}

// TestFitParallelCandidatesDeterminism asserts Fit's report is identical
// at any worker count.
func TestFitParallelCandidatesDeterminism(t *testing.T) {
	times := synthTimes(20000, 23)
	var ref *Report
	for i, workers := range []int{1, 4} {
		rep, err := Fit(context.Background(), times, Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if i == 0 {
			ref = rep
			continue
		}
		if rep.Best != ref.Best {
			t.Errorf("workers=%d best %q, workers=1 best %q", workers, rep.Best, ref.Best)
		}
		if len(rep.Candidates) != len(ref.Candidates) {
			t.Fatalf("candidate counts differ: %d vs %d", len(rep.Candidates), len(ref.Candidates))
		}
		for j := range rep.Candidates {
			a, b := rep.Candidates[j], ref.Candidates[j]
			if a.Name != b.Name || a.BIC != b.BIC || a.LogLik != b.LogLik || a.Error != b.Error {
				t.Errorf("candidate %d differs: %+v vs %+v", j, a, b)
			}
		}
	}
}

func haperrIs(err, target error) bool { return errors.Is(err, target) }
