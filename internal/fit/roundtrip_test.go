package fit

import (
	"context"
	"testing"

	"hap/internal/core"
)

// Round-trip recovery tests: simulate a known generator, fit the arrivals,
// assert recovery. All runs are seeded and the fitters are deterministic,
// so these are exact regression tests, not flaky statistical ones.
//
// Tolerance design. The arrival rate is recovered from the trace span and
// the model c² follows from the fitted load ratios, so both hold to 5% at
// 10⁶ arrivals. Individual level rates are only identified to the
// precision the trace's slow-epoch count supports: a trace of T seconds
// holds ~T·μ independent user lifetimes, so μ itself cannot beat
// 1/√(T·μ) relative error no matter the estimator. The HAP table
// therefore runs the paper's parameter *structure* time-compressed
// (user lifetime 100 s instead of 1000 s — every load ratio, and hence
// the law's shape, preserved) so that 10⁶ arrivals span enough epochs,
// and still allows the slowest rates a looser band than the headline 5%.

// arrivalsBudget scales the trace length down under -short (the race
// detector runs the suite ~15x slower).
func arrivalsBudget(t *testing.T) (arrivals int64, slack float64) {
	if testing.Short() {
		return 250_000, 5
	}
	return 1_000_000, 1
}

func checkRel(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if re := RelErr(got, want); re > tol {
		t.Errorf("%s = %g, want %g (rel err %.3f > %.3f)", name, got, want, re, tol)
	}
}

func TestRoundTripPoisson(t *testing.T) {
	arrivals, slack := arrivalsBudget(t)
	rt, err := Simulate(SimPoisson(8.25, 20), RoundTripConfig{
		MeanRate: 8.25, Arrivals: arrivals, Reps: 4, Seed: 101,
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := FitPoisson(rt.Stats)
	if err != nil {
		t.Fatal(err)
	}
	checkRel(t, "rate", f.Rate, 8.25, 0.02*slack)
	if !f.Diag.Converged {
		t.Error("Poisson fit should report Converged")
	}
	checkRel(t, "c2", rt.Stats.C2(), 1, 0.05*slack)
}

func TestRoundTripOnOff(t *testing.T) {
	arrivals, slack := arrivalsBudget(t)
	// The Section 5/E16-style ON-OFF: ν = 5 active calls, 2 msgs/s each.
	truth := core.NewOnOff(0.05, 0.01, 2, 100)
	rt, err := Simulate(SimOnOff(truth), RoundTripConfig{
		MeanRate: truth.MeanRate(), Arrivals: arrivals, Reps: 4, Seed: 42, Warmup: 300,
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := FitOnOff(rt.Stats, Options{ServiceRate: truth.MsgMu})
	if err != nil {
		t.Fatal(err)
	}
	checkRel(t, "rate", f.Model.MeanRate(), truth.MeanRate(), 0.05*slack)
	checkRel(t, "c2", f.Model.SCV(), truth.SCV(), 0.05*slack)
	checkRel(t, "lambda", f.Model.Lambda, truth.Lambda, 0.05*slack)
	checkRel(t, "mu", f.Model.Mu, truth.Mu, 0.05*slack)
	checkRel(t, "gamma", f.Model.MsgLambda, truth.MsgLambda, 0.05*slack)
	if !f.Diag.Converged || f.Diag.Iterations == 0 {
		t.Errorf("missing convergence diagnostics: %v", f.Diag)
	}
}

// compress returns the symmetric model with user and application dynamics
// sped up 10x (lifetimes 100 s and 10 s) and every load ratio — ν, a',
// l·a', m·λ” — unchanged, so the interarrival law keeps its shape while
// 10⁶ arrivals span ~1200 user lifetimes instead of ~120.
func compress(lambda, mu, lambdaApp, muApp, lambdaMsg, muMsg float64, l, fanout int) *core.Model {
	return core.NewSymmetric(10*lambda, 10*mu, 10*lambdaApp, 10*muApp, lambdaMsg, muMsg, l, fanout)
}

func TestRoundTripSymmetricHAPTable(t *testing.T) {
	arrivals, slack := arrivalsBudget(t)
	cases := []struct {
		name      string
		m         *core.Model
		l, fanout int
		seed      int64
	}{
		// PaperParams(20) structure: λ̄ = 8.25, l=5, m=3.
		{"paper-P0-compressed", compress(0.0055, 0.001, 0.01, 0.01, 0.1, 20, 5, 3), 5, 3, 11},
		// Figure 8's three equivalent-mean-rate arrangements: same λ̄,
		// increasing burstiness as leaves concentrate (c > b > a).
		{"figure8a-compressed", compress(0.0055, 0.001, 0.01, 0.01, 0.1, 17, 4, 1), 4, 1, 12},
		{"figure8b-compressed", compress(0.0055, 0.001, 0.01, 0.01, 0.1, 17, 2, 2), 2, 2, 13},
		{"figure8c-compressed", compress(0.0055, 0.001, 0.01, 0.01, 0.1, 17, 1, 4), 1, 4, 14},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			truthIA := tc.m.Interarrival()
			rt, err := Simulate(SimHAP(tc.m), RoundTripConfig{
				MeanRate: tc.m.MeanRate(), Arrivals: arrivals, Reps: 4, Seed: tc.seed, Warmup: 500,
			})
			if err != nil {
				t.Fatal(err)
			}
			_, _, muMsgTruth := truthMsg(t, tc.m)
			f, err := FitSymmetricHAP(rt.Stats, Options{
				AppTypes: tc.l, Fanout: tc.fanout, ServiceRate: muMsgTruth,
			})
			if err != nil {
				t.Fatal(err)
			}
			// Headline recovery: rate and interarrival c² within 5%.
			checkRel(t, "rate", f.Model.MeanRate(), tc.m.MeanRate(), 0.05*slack)
			checkRel(t, "c2", f.Model.Interarrival().SCV(), truthIA.SCV(), 0.05*slack)
			// Level rates: identified to the trace's epoch budget.
			checkRel(t, "lambda", f.Model.Lambda, tc.m.Lambda, 0.25*slack)
			checkRel(t, "mu", f.Model.Mu, tc.m.Mu, 0.25*slack)
			// The fast knee of a two-exponential mixture with a 10x rate
			// gap is the classic ill-conditioned direction; assert only
			// that it stays on the right time scale (catches the
			// order-of-magnitude failures a bad weighting produces).
			_, _, fitMuApp, _, _ := symParams(t, f.Model)
			_, _, muAppTruth, _, _ := symParams(t, tc.m)
			checkRel(t, "muApp", fitMuApp, muAppTruth, 2.0*slack)
			if !f.Diag.Converged || f.Diag.Iterations == 0 {
				t.Errorf("missing convergence diagnostics: %v", f.Diag)
			}
		})
	}
}

func symParams(t *testing.T, m *core.Model) (lambda, mu, muApp, lambdaApp, lambdaMsg float64) {
	t.Helper()
	ok, la, ma, lm, _ := m.Symmetric()
	if !ok {
		t.Fatal("model is not symmetric")
	}
	return m.Lambda, m.Mu, ma, la, lm
}

func truthMsg(t *testing.T, m *core.Model) (lambdaMsg float64, fanout int, muMsg float64) {
	t.Helper()
	ok, _, _, lm, fo := m.Symmetric()
	if !ok {
		t.Fatal("model is not symmetric")
	}
	mu, ok := m.UniformServiceRate()
	if !ok {
		t.Fatal("model has no uniform service rate")
	}
	return lm, fo, mu
}

// TestRoundTripFigure5Asymmetric fits the symmetric surrogate to the
// paper's asymmetric Figure 5 mix — the realistic case where the true
// generator is outside the fitted family. The mean rate must still be
// recovered exactly; the shape is only approximated.
func TestRoundTripFigure5Asymmetric(t *testing.T) {
	if testing.Short() {
		t.Skip("long horizon; skipped under -short")
	}
	m := core.Figure5Example()
	rt, err := Simulate(SimHAP(m), RoundTripConfig{
		MeanRate: m.MeanRate(), Arrivals: 400_000, Reps: 4, Seed: 15, Warmup: 3000,
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := FitSymmetricHAP(rt.Stats, Options{AppTypes: len(m.Apps)})
	if err != nil {
		t.Fatal(err)
	}
	// The fit reproduces the *observed* rate exactly by construction; the
	// observed rate itself carries the long-memory sampling noise of a
	// trace only ~25 user lifetimes per replication deep, so the band
	// against the analytic truth is wider here.
	checkRel(t, "rate", f.Model.MeanRate(), rt.Stats.Rate(), 1e-9)
	checkRel(t, "rate-vs-truth", f.Model.MeanRate(), m.MeanRate(), 0.20)
	if err := f.Model.Validate(); err != nil {
		t.Errorf("fitted surrogate invalid: %v", err)
	}
}

// TestModelSelectionPoisson locks the deterministic CI property: on a
// genuinely Poisson trace, BIC ranking must pick "poisson" over the
// richer candidates (this is what makes `make fit-smoke` stable).
func TestModelSelectionPoisson(t *testing.T) {
	arrivals, _ := arrivalsBudget(t)
	if arrivals > 200_000 {
		arrivals = 200_000
	}
	rt, err := Simulate(SimPoisson(8.25, 20), RoundTripConfig{
		MeanRate: 8.25, Arrivals: arrivals, Reps: 1, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Fit(context.Background(), rt.Times, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Best != "poisson" {
		t.Fatalf("Best = %q, want poisson; candidates: %+v", rep.Best, rep.Candidates)
	}
	best := rep.BestCandidate()
	if best == nil {
		t.Fatal("no best candidate")
	}
	checkRel(t, "rate", best.Rate, 8.25, 0.03)
}

// TestModelSelectionBursty locks the complementary property: on strongly
// modulated ON-OFF traffic the Poisson candidate must lose.
func TestModelSelectionBursty(t *testing.T) {
	arrivals, _ := arrivalsBudget(t)
	if arrivals > 300_000 {
		arrivals = 300_000
	}
	truth := core.NewOnOff(0.05, 0.01, 2, 100)
	rt, err := Simulate(SimOnOff(truth), RoundTripConfig{
		MeanRate: truth.MeanRate(), Arrivals: arrivals, Reps: 1, Seed: 8, Warmup: 300,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Fit(context.Background(), rt.Times, Options{ServiceRate: truth.MsgMu})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Best == "poisson" || rep.Best == "" {
		t.Fatalf("Best = %q on bursty traffic; candidates: %+v", rep.Best, rep.Candidates)
	}
	for _, c := range rep.Candidates {
		if c.Name == "poisson" && c.Error != "" {
			t.Errorf("poisson candidate should fit (and lose), got error %q", c.Error)
		}
	}
}
