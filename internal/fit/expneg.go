package fit

import "math"

// expNeg returns e^{-d} for d >= 0, specialised for the EM emission batch:
// about 3x faster than math.Exp because it skips the negative-argument and
// special-value handling the general routine needs, at < 3e-13 relative
// error (TestExpNegAccuracy pins it against math.Exp).
//
// Standard argument reduction: d = k·ln2 − z with |z| ≤ ln2/2, so
// e^{-d} = 2^{-k}·e^{z}. e^z comes from a degree-10 Taylor sum evaluated
// by Horner (the series converges fast on |z| ≤ 0.347), and the 2^{-k}
// scale is applied exactly by building the float from its exponent bits.
func expNeg(d float64) float64 {
	if d >= 708 {
		// e^{-708} < smallest normal; the emission floor below this is
		// the caller's business (the EM core floors at 1e-300 anyway).
		return 0
	}
	const (
		invLn2 = 1.44269504088896338700
		// ln2 split hi+lo so d - k·ln2 is computed without cancellation
		// error (same split math.Exp uses).
		ln2Hi = 6.93147180369123816490e-01
		ln2Lo = 1.90821492927058770002e-10
	)
	// Round-to-nearest for non-negative d; avoids math.Round's branching.
	k := float64(int(d*invLn2 + 0.5))
	z := (k*ln2Hi - d) + k*ln2Lo // z = k·ln2 − d, |z| ≤ ln2/2
	// Horner evaluation of Σ z^i/i!, i = 0..10.
	p := z/3628800 + 1.0/362880
	p = p*z + 1.0/40320
	p = p*z + 1.0/5040
	p = p*z + 1.0/720
	p = p*z + 1.0/120
	p = p*z + 1.0/24
	p = p*z + 1.0/6
	p = p*z + 0.5
	p = p*z + 1
	p = p*z + 1
	// 2^{-k} is exact: k ∈ [0, 1022] here (d < 708 ⇒ k ≤ 1022), so the
	// biased exponent 1023−k stays in the normal range.
	return p * math.Float64frombits(uint64(1023-int64(k))<<52)
}
