package fit

import (
	"errors"
	"math"
	"testing"

	"hap/internal/haperr"
)

func TestNewTraceStatsRejectsBadLadders(t *testing.T) {
	for _, windows := range [][]float64{
		{1, 1},
		{2, 1},
		{0, 1},
		{-1, 2},
		{1, math.Inf(1)},
	} {
		if _, err := NewTraceStats(TraceConfig{Windows: windows}); !errors.Is(err, haperr.ErrBadParameter) {
			t.Errorf("windows %v: want ErrBadParameter, got %v", windows, err)
		}
	}
	if _, err := NewTraceStats(TraceConfig{Windows: []float64{1, 2, 4}}); err != nil {
		t.Fatalf("valid ladder rejected: %v", err)
	}
}

func TestAddRejectsUntrustedInput(t *testing.T) {
	ts, err := NewTraceStats(TraceConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := ts.Add(math.NaN()); !errors.Is(err, haperr.ErrBadParameter) {
		t.Errorf("NaN: want ErrBadParameter, got %v", err)
	}
	if err := ts.Add(math.Inf(1)); !errors.Is(err, haperr.ErrBadParameter) {
		t.Errorf("Inf: want ErrBadParameter, got %v", err)
	}
	if err := ts.Add(10); err != nil {
		t.Fatal(err)
	}
	// Gross regression is an error, not a panic: trace files are input.
	if err := ts.Add(9); !errors.Is(err, haperr.ErrBadParameter) {
		t.Errorf("backwards time: want ErrBadParameter, got %v", err)
	}
	// Last-ulp jitter is clamped, as everywhere else in the stats layer.
	if err := ts.Add(10 - 1e-12); err != nil {
		t.Errorf("jitter should clamp, got %v", err)
	}
}

func TestTraceStatsDeterministicStream(t *testing.T) {
	ts, err := NewTraceStats(TraceConfig{Windows: []float64{10}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if err := ts.Add(float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := ts.N(); got != 1000 {
		t.Errorf("N = %d, want 1000", got)
	}
	if got := ts.Rate(); math.Abs(got-1) > 1e-12 {
		t.Errorf("Rate = %g, want 1", got)
	}
	if got := ts.C2(); got != 0 {
		t.Errorf("C2 of a deterministic stream = %g, want 0", got)
	}
	pts := ts.IDCPoints(2)
	if len(pts) != 1 {
		t.Fatalf("IDCPoints = %v, want one point", pts)
	}
	// Every 10-second bin holds exactly 10 arrivals: zero dispersion.
	if pts[0].IDC != 0 {
		t.Errorf("IDC = %g, want 0", pts[0].IDC)
	}
}

func TestMergeMatchesSequentialIngest(t *testing.T) {
	cfg := TraceConfig{Windows: []float64{2, 8}, GapThreshold: 5}
	a, _ := NewTraceStats(cfg)
	b, _ := NewTraceStats(cfg)
	whole, _ := NewTraceStats(cfg)
	times := []float64{0, 0.5, 1.1, 2.0, 9.0, 9.1, 9.4, 12, 13, 21, 21.2, 25}
	for _, tt := range times {
		if err := whole.Add(tt); err != nil {
			t.Fatal(err)
		}
	}
	for _, tt := range times[:6] {
		if err := a.Add(tt); err != nil {
			t.Fatal(err)
		}
	}
	for _, tt := range times[6:] {
		if err := b.Add(tt); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.N() != whole.N() {
		t.Errorf("merged N = %d, want %d", a.N(), whole.N())
	}
	// Horizons add as disjoint observation windows: the merge drops the
	// unobserved gap between the two traces' clocks (a spans 0–9.1, b
	// spans 9.4–25).
	wantHorizon := (9.1 - 0) + (25 - 9.4)
	if math.Abs(a.Horizon()-wantHorizon) > 1e-12 {
		t.Errorf("merged horizon = %g, want %g", a.Horizon(), wantHorizon)
	}
	// The interarrival accumulators differ by exactly the one boundary
	// interarrival the split drops.
	aIA, wholeIA := a.IA(), whole.IA()
	if aIA.N() != wholeIA.N()-1 {
		t.Errorf("merged IA count = %d, want %d", aIA.N(), wholeIA.N()-1)
	}
}

func TestMergeRejectsMismatchedConfigs(t *testing.T) {
	a, _ := NewTraceStats(TraceConfig{Windows: []float64{1}})
	b, _ := NewTraceStats(TraceConfig{Windows: []float64{2}})
	if err := a.Merge(b); !errors.Is(err, haperr.ErrBadParameter) {
		t.Errorf("want ErrBadParameter, got %v", err)
	}
}

func TestBursts(t *testing.T) {
	ts, err := NewTraceStats(TraceConfig{GapThreshold: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Two 3-arrival bursts separated by a 10-second gap, then a trailing
	// burst left open (not counted).
	for _, tt := range []float64{0, 0.1, 0.2, 10.2, 10.3, 10.4, 30, 30.1} {
		if err := ts.Add(tt); err != nil {
			t.Fatal(err)
		}
	}
	bs := ts.Bursts()
	if bs.Bursts != 2 {
		t.Fatalf("Bursts = %d, want 2", bs.Bursts)
	}
	if math.Abs(bs.MeanSize-3) > 1e-12 {
		t.Errorf("MeanSize = %g, want 3", bs.MeanSize)
	}
	if math.Abs(bs.MeanBurst-0.2) > 1e-12 {
		t.Errorf("MeanBurst = %g, want 0.2", bs.MeanBurst)
	}
	wantGap := (10.0 + 19.6) / 2
	if math.Abs(bs.MeanGap-wantGap) > 1e-9 {
		t.Errorf("MeanGap = %g, want %g", bs.MeanGap, wantGap)
	}
}

func TestDefaultWindows(t *testing.T) {
	ws := DefaultWindows(0.1, 10000)
	if len(ws) == 0 || len(ws) > 40 {
		t.Fatalf("ladder size %d", len(ws))
	}
	for i := 1; i < len(ws); i++ {
		if ws[i] <= ws[i-1] {
			t.Fatalf("ladder not ascending: %v", ws)
		}
	}
	if ws[0] < 0.4 || ws[len(ws)-1] > 10000.0/8 {
		t.Errorf("ladder out of range: first=%g last=%g", ws[0], ws[len(ws)-1])
	}
	if DefaultWindows(1, 10) != nil {
		t.Error("too-short trace should yield no ladder")
	}
	if DefaultWindows(0, 100) != nil || DefaultWindows(1, 0) != nil {
		t.Error("degenerate inputs should yield no ladder")
	}
}

func TestAnalyze(t *testing.T) {
	if _, err := Analyze([]float64{1, 2, 3}, TraceConfig{}); !errors.Is(err, haperr.ErrBadParameter) {
		t.Errorf("short trace: want ErrBadParameter, got %v", err)
	}
	// Unsorted input is sorted on a copy.
	times := []float64{5, 1, 9, 3, 7, 2, 8, 4, 6, 0}
	ts, err := Analyze(times, TraceConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if ts.N() != 10 || math.Abs(ts.Horizon()-9) > 1e-12 {
		t.Errorf("N=%d horizon=%g", ts.N(), ts.Horizon())
	}
	if times[0] != 5 {
		t.Error("Analyze mutated its input")
	}
}
