package fit

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"math/rand"
	"testing"

	"hap/internal/haperr"
)

// feedPoisson appends n exponential(rate) arrivals to ts starting at *now.
func feedPoisson(t *testing.T, ts *TraceStats, rng *rand.Rand, now *float64, rate float64, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		*now += rng.ExpFloat64() / rate
		if err := ts.Add(*now); err != nil {
			t.Fatal(err)
		}
		ts.Slide(*now)
	}
}

// TestWindowMoments pins the window-scoped moment accessor against a
// direct computation over the retained timestamps.
func TestWindowMoments(t *testing.T) {
	ts, err := NewTraceStats(TraceConfig{SlideWindow: 2.0})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	now := 0.0
	feedPoisson(t, ts, rng, &now, 50, 5000)

	rate, c2 := ts.WindowMoments()
	w := ts.WindowTimes(nil)
	if len(w) != ts.WindowN() {
		t.Fatalf("WindowTimes len %d != WindowN %d", len(w), ts.WindowN())
	}
	// Direct two-pass computation over the same timestamps.
	span := w[len(w)-1] - w[0]
	wantRate := float64(len(w)-1) / span
	var mean float64
	for i := 1; i < len(w); i++ {
		mean += w[i] - w[i-1]
	}
	mean /= float64(len(w) - 1)
	var ss float64
	for i := 1; i < len(w); i++ {
		d := (w[i] - w[i-1]) - mean
		ss += d * d
	}
	wantC2 := ss / float64(len(w)-2) / (mean * mean)
	if math.Abs(rate-wantRate) > 1e-9*wantRate {
		t.Errorf("window rate %v, want %v", rate, wantRate)
	}
	if math.Abs(c2-wantC2) > 1e-9*wantC2 {
		t.Errorf("window c² %v, want %v", c2, wantC2)
	}
	// The accessor must not allocate (it runs inside refit report cycles).
	if allocs := testing.AllocsPerRun(100, func() { ts.WindowMoments() }); allocs != 0 {
		t.Errorf("WindowMoments allocates %v/op, want 0", allocs)
	}
	// Degenerate: under 2 retained timestamps → zeros, no panic.
	empty, _ := NewTraceStats(TraceConfig{SlideWindow: 1})
	if r, c := empty.WindowMoments(); r != 0 || c != 0 {
		t.Errorf("empty WindowMoments = %v, %v, want 0, 0", r, c)
	}
}

// TestRefitReportFields is the regression test for the refit reporting
// bug: the report must carry window-scoped rate/c² (the data the fit
// saw) next to — and distinct from — the cumulative stream moments, and
// the JSON field names are pinned as the wire contract.
func TestRefitReportFields(t *testing.T) {
	ts, err := NewTraceStats(TraceConfig{SlideWindow: 3.0})
	if err != nil {
		t.Fatal(err)
	}
	rf := &Refitter{Opt: EMOptions{}}
	rng := rand.New(rand.NewSource(11))
	now := 0.0
	// Regime shift: slow stream, then a 10x faster one that fills the
	// window. The cumulative rate averages both; the window rate must
	// describe only the recent regime.
	feedPoisson(t, ts, rng, &now, 5, 4000)
	feedPoisson(t, ts, rng, &now, 50, 4000)
	if _, err := rf.Refit(context.Background(), ts); err != nil && !errors.Is(err, haperr.ErrNotConverged) {
		t.Fatal(err)
	}
	rep := rf.Report(ts)
	if rep.Arrivals != ts.N() || rep.WindowN != ts.WindowN() {
		t.Errorf("report counts %d/%d, want %d/%d", rep.Arrivals, rep.WindowN, ts.N(), ts.WindowN())
	}
	if !(rep.WindowRate > 2*rep.CumRate) {
		t.Errorf("window rate %v should be far above cumulative %v after the shift", rep.WindowRate, rep.CumRate)
	}
	if wr, wc2 := ts.WindowMoments(); rep.WindowRate != wr || rep.WindowC2 != wc2 {
		t.Errorf("report window moments %v/%v != accessor %v/%v", rep.WindowRate, rep.WindowC2, wr, wc2)
	}
	if rep.R0 <= 0 || rep.R1 <= 0 || rep.Iterations <= 0 {
		t.Errorf("report missing fit fields: %+v", rep)
	}

	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"arrivals", "window_n", "window_rate", "window_c2",
		"cum_rate", "cum_c2", "r0", "r1", "q01", "q10",
		"iterations", "converged",
	} {
		if _, ok := m[key]; !ok {
			t.Errorf("refit report JSON missing pinned field %q (got %s)", key, b)
		}
	}
	if len(m) != 12 {
		t.Errorf("refit report JSON has %d fields, want 12: %s", len(m), b)
	}
}

// TestRefitterConvergedSequence is the regression test for the warm-state
// convergence bug: a budget-exhausted window advances the warm state (its
// best iterate seeds the next fit) but must not read back as converged.
func TestRefitterConvergedSequence(t *testing.T) {
	ts, err := NewTraceStats(TraceConfig{SlideWindow: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	now := 0.0
	feedPoisson(t, ts, rng, &now, 2, 1500)
	feedPoisson(t, ts, rng, &now, 20, 1500)

	rf := &Refitter{Opt: EMOptions{MaxIter: 1}}
	if rf.Converged() {
		t.Fatal("Converged true before any fit")
	}
	f, err := rf.Refit(context.Background(), ts)
	if !errors.Is(err, haperr.ErrNotConverged) {
		t.Fatalf("1-iteration budget on a regime mixture should not converge, got err=%v", err)
	}
	if f.Diag.Converged {
		t.Error("best iterate reports Diag.Converged=true alongside ErrNotConverged")
	}
	last, ok := rf.Last()
	if !ok {
		t.Fatal("warm state did not advance on ErrNotConverged")
	}
	if last.Diag.Converged || rf.Converged() {
		t.Error("not-converged best iterate reads back as converged — degraded decisions would be marked clean")
	}

	// Restore the budget: the warm-started fit now converges and the flag
	// flips without any other state change.
	rf.Opt = EMOptions{}
	if _, err := rf.Refit(context.Background(), ts); err != nil {
		t.Fatal(err)
	}
	if !rf.Converged() {
		t.Error("Converged still false after a clean fit")
	}
	if last, _ := rf.Last(); !last.Diag.Converged {
		t.Error("Last fit not marked converged after a clean fit")
	}
}

// TestRefitTimesMatchesRefit pins the snapshot-based entry point to the
// TraceStats-based one: same window → identical fit.
func TestRefitTimesMatchesRefit(t *testing.T) {
	ts, err := NewTraceStats(TraceConfig{SlideWindow: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	now := 0.0
	feedPoisson(t, ts, rng, &now, 3, 1000)
	feedPoisson(t, ts, rng, &now, 30, 1000)

	var a, b Refitter
	fa, errA := a.Refit(context.Background(), ts)
	fb, errB := b.RefitTimes(context.Background(), ts.WindowTimes(nil))
	if (errA == nil) != (errB == nil) {
		t.Fatalf("error mismatch: %v vs %v", errA, errB)
	}
	if fa.Model != fb.Model || fa.LogLik != fb.LogLik {
		t.Errorf("RefitTimes diverged from Refit: %+v vs %+v", fa.Model, fb.Model)
	}
}
