package fit

import (
	"context"
	"fmt"
	"math"
	"time"

	"hap/internal/haperr"
	"hap/internal/mmpp"
)

// EMOptions tunes the Baum-Welch MMPP2 fitter. The zero value is usable.
type EMOptions struct {
	// MaxIter bounds the EM iterations (0 defaults to 200). Exhausting it
	// returns the best iterate alongside ErrNotConverged.
	MaxIter int
	// Tol is the convergence threshold on the per-sample log-likelihood
	// improvement between iterations (0 defaults to 1e-8).
	Tol float64
	// MaxSamples caps the interarrivals fed to EM; longer traces are
	// strided down (EM is O(iterations·samples), and 2·10⁵ samples pin
	// four parameters far beyond the 5% tolerances used here). 0 defaults
	// to 200000; negative disables the cap.
	MaxSamples int
}

func (o EMOptions) maxIter() int {
	if o.MaxIter <= 0 {
		return 200
	}
	return o.MaxIter
}

func (o EMOptions) tol() float64 {
	if o.Tol <= 0 {
		return 1e-8
	}
	return o.Tol
}

func (o EMOptions) maxSamples() int {
	if o.MaxSamples == 0 {
		return 200000
	}
	return o.MaxSamples
}

// MMPP2Fit is a fitted 2-state MMPP.
type MMPP2Fit struct {
	Model mmpp.MMPP2
	// Rates are the hidden-state arrival rates (Rates[0] <= Rates[1]);
	// P is the per-arrival state transition matrix the HMM estimated.
	Rates [2]float64
	P     [2][2]float64
	// LogLik is the final HMM log-likelihood of the interarrival sequence.
	LogLik float64
	// Samples is the number of interarrivals EM actually used (after any
	// MaxSamples striding).
	Samples int
	Diag    haperr.Diag
}

// FitMMPP2EM fits a 2-state MMPP to arrival timestamps by Baum-Welch EM
// on the hidden-Markov chain embedded at arrival epochs: state k emits an
// exponential interarrival with rate r_k, and states switch between
// arrivals with matrix P. This is the Markov-renewal approximation of the
// MMPP (exact when switching is slow relative to arrivals — the regime
// where a 2-state MMPP is worth fitting at all); the continuous-time
// generator is recovered as Q_kj = P_kj·r_k, the rate of arrival epochs
// in state k times the per-epoch switch probability.
//
// The forward-backward pass is scaled per step, so traces of any length
// stay in float range. Initialisation is deterministic (r = {½, 2}/mean,
// sticky P), making fits reproducible. The context is polled once per
// iteration; cancellation returns the context's error wrapped, an
// exhausted budget returns the best iterate alongside ErrNotConverged,
// and either way Diag carries iterations, the final log-likelihood
// improvement, and the converged flag — the generate→fit loop's answer to
// "did EM actually settle or just stop".
func FitMMPP2EM(ctx context.Context, times []float64, opt EMOptions) (MMPP2Fit, error) {
	start := time.Now()
	fit, err := fitMMPP2EM(ctx, times, opt)
	if err != nil {
		recordFitErr("mmpp2", start, err)
		obsEMIterations.Add(int64(fit.Diag.Iterations))
	} else {
		recordFit("mmpp2", start, fit.Diag)
	}
	obsLogLik.Set(fit.LogLik)
	return fit, err
}

func fitMMPP2EM(ctx context.Context, times []float64, opt EMOptions) (MMPP2Fit, error) {
	x, err := interarrivals(times, opt.maxSamples())
	if err != nil {
		return MMPP2Fit{}, err
	}
	n := len(x)
	mean := 0.0
	for _, v := range x {
		mean += v
	}
	mean /= float64(n)
	if !(mean > 0) {
		return MMPP2Fit{}, haperr.Badf("fit: interarrivals have zero mean")
	}

	// Deterministic initialisation: rates bracketing the empirical mean
	// rate, sticky transitions, stationary initial distribution.
	r := [2]float64{0.5 / mean, 2 / mean}
	p := [2][2]float64{{0.95, 0.05}, {0.05, 0.95}}
	pi := [2]float64{0.5, 0.5}

	alpha := make([][2]float64, n)
	beta := make([][2]float64, n)
	scale := make([]float64, n)

	loglik := math.Inf(-1)
	var delta float64
	diag := haperr.Diag{}
	for it := 1; it <= opt.maxIter(); it++ {
		if err := ctx.Err(); err != nil {
			diag.Iterations = it - 1
			diag.Residual = delta
			return MMPP2Fit{Diag: diag}, fmt.Errorf("fit: MMPP2 EM cancelled after %d iterations: %w", it-1, err)
		}

		// E step: scaled forward-backward with exponential emissions
		// b_k(x) = r_k·e^{−r_k·x}.
		ll := 0.0
		for t := 0; t < n; t++ {
			var a [2]float64
			if t == 0 {
				for k := 0; k < 2; k++ {
					a[k] = pi[k] * emit(r[k], x[0])
				}
			} else {
				prev := alpha[t-1]
				for k := 0; k < 2; k++ {
					a[k] = (prev[0]*p[0][k] + prev[1]*p[1][k]) * emit(r[k], x[t])
				}
			}
			c := a[0] + a[1]
			if !(c > 0) || math.IsInf(c, 0) || math.IsNaN(c) {
				return MMPP2Fit{Diag: diag}, haperr.Badf("fit: MMPP2 EM forward pass degenerated at sample %d (x=%g)", t, x[t])
			}
			alpha[t] = [2]float64{a[0] / c, a[1] / c}
			scale[t] = c
			ll += math.Log(c)
		}
		beta[n-1] = [2]float64{1, 1}
		for t := n - 2; t >= 0; t-- {
			next := beta[t+1]
			var b [2]float64
			for k := 0; k < 2; k++ {
				b[k] = (p[k][0]*emit(r[0], x[t+1])*next[0] + p[k][1]*emit(r[1], x[t+1])*next[1]) / scale[t+1]
			}
			beta[t] = b
		}

		// M step: posterior state occupancies and transition counts.
		var gSum, gxSum [2]float64 // Σγ_t(k), Σγ_t(k)·x_t
		var xi [2][2]float64       // Σξ_t(j,k)
		var g0 [2]float64
		for t := 0; t < n; t++ {
			g := [2]float64{alpha[t][0] * beta[t][0], alpha[t][1] * beta[t][1]}
			norm := g[0] + g[1]
			g[0] /= norm
			g[1] /= norm
			if t == 0 {
				g0 = g
			}
			for k := 0; k < 2; k++ {
				gSum[k] += g[k]
				gxSum[k] += g[k] * x[t]
			}
			if t+1 < n {
				var tot float64
				var e [2][2]float64
				for j := 0; j < 2; j++ {
					for k := 0; k < 2; k++ {
						e[j][k] = alpha[t][j] * p[j][k] * emit(r[k], x[t+1]) * beta[t+1][k] / scale[t+1]
						tot += e[j][k]
					}
				}
				for j := 0; j < 2; j++ {
					for k := 0; k < 2; k++ {
						xi[j][k] += e[j][k] / tot
					}
				}
			}
		}
		for k := 0; k < 2; k++ {
			if gxSum[k] > 0 {
				r[k] = gSum[k] / gxSum[k]
			}
			out := xi[k][0] + xi[k][1]
			if out > 0 {
				p[k][0] = xi[k][0] / out
				p[k][1] = xi[k][1] / out
			}
			// Keep transitions proper: a row collapsing to an absorbing
			// state has left the 2-state family.
			const floor = 1e-12
			if p[k][0] < floor {
				p[k][0], p[k][1] = floor, 1-floor
			}
			if p[k][1] < floor {
				p[k][1], p[k][0] = floor, 1-floor
			}
			pi[k] = g0[k]
		}

		delta = ll - loglik
		loglik = ll
		diag.Iterations = it
		diag.Residual = math.Abs(delta) / float64(n)
		if it > 1 && diag.Residual < opt.tol() {
			diag.Converged = true
			break
		}
	}

	// Canonical order: state 0 is the slow (low-rate) state.
	if r[0] > r[1] {
		r[0], r[1] = r[1], r[0]
		p[0][0], p[1][1] = p[1][1], p[0][0]
		p[0][1], p[1][0] = p[1][0], p[0][1]
	}
	fit := MMPP2Fit{
		Rates:   r,
		P:       p,
		LogLik:  loglik,
		Samples: n,
		Diag:    diag,
		Model: mmpp.MMPP2{
			R0:  r[0],
			R1:  r[1],
			Q01: p[0][1] * r[0],
			Q10: p[1][0] * r[1],
		},
	}
	if err := fit.Model.Validate(); err != nil {
		return fit, haperr.Badf("fit: EM produced an invalid MMPP2 (%v)", err)
	}
	if !diag.Converged {
		return fit, fmt.Errorf("fit: MMPP2 EM used all %d iterations (last per-sample improvement %.3g): %w",
			opt.maxIter(), diag.Residual, haperr.ErrNotConverged)
	}
	return fit, nil
}

// emit is the exponential emission density r·e^{−rx}, floored so a single
// extreme interarrival cannot zero out the whole forward pass.
func emit(r, x float64) float64 {
	d := r * math.Exp(-r*x)
	if d < 1e-300 {
		return 1e-300
	}
	return d
}

// interarrivals converts sorted arrival timestamps to the (optionally
// strided) interarrival sequence EM consumes.
func interarrivals(times []float64, maxSamples int) ([]float64, error) {
	if len(times) < 8 {
		return nil, haperr.Badf("fit: MMPP2 EM needs at least 8 arrivals, got %d", len(times))
	}
	x := make([]float64, 0, len(times)-1)
	for i := 1; i < len(times); i++ {
		d := times[i] - times[i-1]
		if math.IsNaN(d) || math.IsInf(d, 0) || d < 0 {
			return nil, haperr.Badf("fit: bad interarrival %g at index %d", d, i)
		}
		x = append(x, d)
	}
	if maxSamples > 0 && len(x) > maxSamples {
		// Truncate to a contiguous prefix: EM models the sequence's serial
		// correlation, which any strided subsample would distort (halving
		// apparent sojourn lengths doubles the fitted switching rates).
		x = x[:maxSamples]
	}
	return x, nil
}
