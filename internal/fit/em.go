package fit

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"hap/internal/dist"
	"hap/internal/haperr"
	"hap/internal/mmpp"
	"hap/internal/par"
)

// EMOptions tunes the Baum-Welch MMPP2 fitter. The zero value is usable.
type EMOptions struct {
	// MaxIter bounds the EM iterations (0 defaults to 200). Exhausting it
	// returns the best iterate alongside ErrNotConverged.
	MaxIter int
	// Tol is the convergence threshold on the per-sample log-likelihood
	// improvement between iterations (0 defaults to 1e-8).
	Tol float64
	// MaxSamples caps the interarrivals fed to EM; longer traces are
	// truncated to a prefix (EM is O(iterations·samples), and 2·10⁵ samples
	// pin four parameters far beyond the 5% tolerances used here). 0
	// defaults to 200000; negative disables the cap.
	MaxSamples int
	// Warm, when non-nil, seeds EM from a previous fit instead of the
	// deterministic default start: rates and transition matrix are taken
	// from the fit, the initial distribution from P's stationary vector.
	// A warm start near the optimum converges in a handful of iterations —
	// the contract Refitter builds on.
	Warm *MMPP2Fit
	// Starts > 1 runs a multi-start EM: start 0 uses the deterministic (or
	// Warm) initial point, start i > 0 perturbs it with a rand stream
	// seeded dist.SubSeed(Seed, i), and the best final log-likelihood wins
	// (ties break to the lowest start index). Results depend only on
	// (Starts, Seed), never on Workers — the par determinism contract.
	Starts int
	// Seed derives the perturbed initial points for Starts > 1.
	Seed int64
	// Workers bounds the goroutines running multi-start EM (<= 0 selects
	// GOMAXPROCS, 1 runs inline).
	Workers int
	// Scratch, when non-nil, supplies the working arrays; successive fits
	// through the same Scratch are allocation-free once its buffers have
	// grown to the largest trace seen. Nil borrows from an internal pool.
	Scratch *Scratch
}

func (o EMOptions) maxIter() int {
	if o.MaxIter <= 0 {
		return 200
	}
	return o.MaxIter
}

func (o EMOptions) tol() float64 {
	if o.Tol <= 0 {
		return 1e-8
	}
	return o.Tol
}

func (o EMOptions) maxSamples() int {
	if o.MaxSamples == 0 {
		return 200000
	}
	return o.MaxSamples
}

func (o EMOptions) starts() int {
	if o.Starts <= 1 {
		return 1
	}
	return o.Starts
}

// MMPP2Fit is a fitted 2-state MMPP.
type MMPP2Fit struct {
	Model mmpp.MMPP2
	// Rates are the hidden-state arrival rates (Rates[0] <= Rates[1]);
	// P is the per-arrival state transition matrix the HMM estimated.
	Rates [2]float64
	P     [2][2]float64
	// LogLik is the final HMM log-likelihood of the interarrival sequence.
	LogLik float64
	// Samples is the number of interarrivals EM actually used (after any
	// MaxSamples truncation).
	Samples int
	Diag    haperr.Diag
}

// FitMMPP2EM fits a 2-state MMPP to arrival timestamps by Baum-Welch EM
// on the hidden-Markov chain embedded at arrival epochs: state k emits an
// exponential interarrival with rate r_k, and states switch between
// arrivals with matrix P. This is the Markov-renewal approximation of the
// MMPP (exact when switching is slow relative to arrivals — the regime
// where a 2-state MMPP is worth fitting at all); the continuous-time
// generator is recovered as Q_kj = P_kj·r_k, the rate of arrival epochs
// in state k times the per-epoch switch probability.
//
// The E step runs in the scaled-emission domain (see emCore), so traces
// of any length stay in float range with one exponential per sample.
// Initialisation is deterministic (r = {½, 2}/mean, sticky P) unless
// opt.Warm supplies a previous fit, making fits reproducible; Starts > 1
// adds seed-perturbed restarts that are bit-identical at any Workers
// count. The context is polled once per iteration; cancellation returns
// the context's error wrapped, an exhausted budget returns the best
// iterate alongside ErrNotConverged, and either way Diag carries
// iterations, the final log-likelihood improvement, and the converged
// flag — the generate→fit loop's answer to "did EM actually settle or
// just stop".
func FitMMPP2EM(ctx context.Context, times []float64, opt EMOptions) (MMPP2Fit, error) {
	start := time.Now()
	fit, err := fitMMPP2EM(ctx, times, opt)
	if err != nil {
		recordFitErr("mmpp2", start, err)
		obsEMIterations.Add(int64(fit.Diag.Iterations))
	} else {
		recordFit("mmpp2", start, fit.Diag)
	}
	obsLogLik.Set(fit.LogLik)
	recordFitRate(fit.Samples, start)
	return fit, err
}

// emInit is one EM starting point.
type emInit struct {
	r  [2]float64
	p  [2][2]float64
	pi [2]float64
}

// defaultInit brackets the empirical mean rate with sticky transitions.
func defaultInit(mean float64) emInit {
	return emInit{
		r:  [2]float64{0.5 / mean, 2 / mean},
		p:  [2][2]float64{{0.95, 0.05}, {0.05, 0.95}},
		pi: [2]float64{0.5, 0.5},
	}
}

// warmInit starts from a previous fit: its rates and transition matrix,
// with the initial distribution set to P's stationary vector (the state
// the chain has forgotten its start in — the right prior when the new
// window overlaps the old one).
func warmInit(f *MMPP2Fit) emInit {
	in := emInit{r: f.Rates, p: f.P, pi: [2]float64{0.5, 0.5}}
	if den := f.P[0][1] + f.P[1][0]; den > 0 {
		in.pi = [2]float64{f.P[1][0] / den, f.P[0][1] / den}
	}
	return in
}

// perturbInit jitters a base point for multi-start: rates move by a
// lognormal factor, switch probabilities by a bounded lognormal factor
// (rows stay proper). The rand stream is fully determined by the seed, so
// start i's initial point — and hence its EM trajectory — depends only on
// (base, seed), never on scheduling.
func perturbInit(base emInit, seed int64) emInit {
	rng := rand.New(rand.NewSource(seed))
	in := base
	for k := 0; k < 2; k++ {
		in.r[k] *= math.Exp(0.75 * rng.NormFloat64())
		q := base.p[k][1-k] * math.Exp(0.5*rng.NormFloat64())
		if q < 1e-4 {
			q = 1e-4
		}
		if q > 0.5 {
			q = 0.5
		}
		in.p[k][1-k] = q
		in.p[k][k] = 1 - q
	}
	return in
}

// emResult pairs one start's outcome for the deterministic best-pick.
type emResult struct {
	fit MMPP2Fit
	err error
	ok  bool // slot actually ran (MapNCtx may skip on cancellation)
}

func fitMMPP2EM(ctx context.Context, times []float64, opt EMOptions) (MMPP2Fit, error) {
	s := opt.Scratch
	if s == nil {
		s = getScratch()
		defer putScratch(s)
	}
	x, err := s.interarrivals(times, opt.maxSamples())
	if err != nil {
		return MMPP2Fit{}, err
	}
	n := len(x)
	sumX := 0.0
	for _, v := range x {
		sumX += v
	}
	mean := sumX / float64(n)
	if !(mean > 0) {
		return MMPP2Fit{}, haperr.Badf("fit: interarrivals have zero mean")
	}

	base := defaultInit(mean)
	if opt.Warm != nil {
		base = warmInit(opt.Warm)
	}

	starts := opt.starts()
	if starts == 1 {
		return emCore(ctx, x, sumX, base, opt.maxIter(), opt.tol(), s)
	}

	// Multi-start: start 0 is the base point, the rest are seed-perturbed.
	// Each start runs in its own pooled scratch (sharing x read-only), so
	// result i depends only on (x, base, Seed, i) — bit-identical at any
	// worker count, the same contract as par.ReplicateRuns.
	results := par.MapNCtx(ctx, starts, opt.Workers, func(i int) emResult {
		init := base
		if i > 0 {
			init = perturbInit(base, dist.SubSeed(opt.Seed, i))
		}
		ws := getScratch()
		defer putScratch(ws)
		fit, err := emCore(ctx, x, sumX, init, opt.maxIter(), opt.tol(), ws)
		return emResult{fit: fit, err: err, ok: true}
	})

	best := -1
	for i, res := range results {
		if !res.ok {
			continue
		}
		if res.err != nil && !errors.Is(res.err, haperr.ErrNotConverged) {
			continue // degenerate or cancelled start; fall back to others
		}
		if best < 0 || res.fit.LogLik > results[best].fit.LogLik {
			best = i
		}
	}
	if best < 0 {
		// No start produced a usable iterate: surface the lowest-index
		// failure (deterministic), or the context's error if nothing ran.
		for _, res := range results {
			if res.ok && res.err != nil {
				return res.fit, res.err
			}
		}
		if err := ctx.Err(); err != nil {
			return MMPP2Fit{}, fmt.Errorf("fit: MMPP2 EM cancelled before any start finished: %w", err)
		}
		return MMPP2Fit{}, haperr.Badf("fit: MMPP2 EM produced no usable start")
	}
	return results[best].fit, results[best].err
}

// emCore runs Baum-Welch from one initial point inside the given scratch.
//
// The inner loops are the module's hottest fit path and are written around
// three transforms that together remove every exp, log and divide from the
// per-sample work (DESIGN §9):
//
//   - Scaled emissions: multiplying every emission by e^{r_lo·x_t} turns
//     the slow state's density into the constant r_lo and the fast state's
//     into r_hi·e^{−Δr·x_t} — one expNeg per sample instead of several
//     math.Exp calls, with the log-likelihood recovered by subtracting
//     r_lo·Σx (Σx is computed once per fit).
//   - Power-of-two renormalisation: the forward variables are rescaled by
//     2^{−k_t} built from exponent bits, which is exact (no rounding) and
//     costs no divide; Σk_t re-enters the log-likelihood as ln2·Σk_t with
//     a single math.Log per iteration.
//   - Fused backward/M step: β is never materialised. Because α̃_t·β̃_t
//     sums to the same constant S for every t, the raw γ/ξ accumulators
//     need no per-step normalisation — S cancels in every M-step ratio
//     and the initial distribution normalises locally.
//
// Emissions are filled in 256-sample blocks interleaved with the forward
// recursion (the style of dist.ExpBatch), so each block of x and w is
// still cache-hot when the recursion consumes it.
func emCore(ctx context.Context, x []float64, sumX float64, init emInit, maxIter int, tol float64, s *Scratch) (MMPP2Fit, error) {
	const emBlock = 256 // emission batch size, mirrors dist.ExpBatch
	n := len(x)
	w, inv, a0, a1 := s.emBuffers(n)
	r, p, pi := init.r, init.p, init.pi

	loglik := math.Inf(-1)
	var delta float64
	diag := haperr.Diag{}
	for it := 1; it <= maxIter; it++ {
		if err := ctx.Err(); err != nil {
			diag.Iterations = it - 1
			diag.Residual = delta
			return MMPP2Fit{Diag: diag}, fmt.Errorf("fit: MMPP2 EM cancelled after %d iterations: %w", it-1, err)
		}

		// Scaled emissions: with r_lo = min(r), ẽ_k(t) = b_k(x_t)·e^{r_lo·x_t}
		// is r_lo for the slow state and r_hi·w_t, w_t = e^{−Δr·x_t}, for
		// the fast one. The branch-free selector form ẽ_0 = c00·w + c01,
		// ẽ_1 = c10·w + c11 handles either ordering of r without swapping
		// state labels mid-fit. w is floored at 1e-300 so a single extreme
		// interarrival cannot zero the fast state out of the posterior.
		var c00, c01, c10, c11, rLo float64
		if r[0] <= r[1] {
			c00, c01, c10, c11, rLo = 0, r[0], r[1], 0, r[0]
		} else {
			c00, c01, c10, c11, rLo = r[0], 0, 0, r[1], r[1]
		}
		dr := math.Abs(r[1] - r[0])
		p00, p01, p10, p11 := p[0][0], p[0][1], p[1][0], p[1][1]

		// E-step forward pass with power-of-two renormalisation: after
		// each step the pair (f0,f1) is scaled by d_t = 2^{−k_t} with k_t
		// read off c's exponent bits; inv[t] stores d_t for the backward
		// pass and ksum gathers Σk_t for the log-likelihood. Because d_t
		// is an exact power of two, folding it into the next step's
		// products instead of the stored pair is bit-identical — and it
		// moves the renormalisation off the recursion's latency chain
		// (the exponent extraction runs beside the transition products,
		// not before them).
		var ksum int64
		var llcorr float64
		s0, s1 := pi[0], pi[1]
		d := 1.0
		var c float64
		for t0 := 0; t0 < n; t0 += emBlock {
			t1 := t0 + emBlock
			if t1 > n {
				t1 = n
			}
			for t := t0; t < t1; t++ {
				wt := expNeg(dr * x[t])
				if wt < 1e-300 {
					wt = 1e-300
				}
				w[t] = wt
			}
			for t := t0; t < t1; t++ {
				wt := w[t]
				f0 := s0 * (c00*wt + c01) * d
				f1 := s1 * (c10*wt + c11) * d
				c = f0 + f1
				e := int64(math.Float64bits(c) >> 52 & 0x7ff)
				if e >= 1 && e <= 2044 {
					// Exact 2^{1023−e}: shifts c's magnitude into [1,2).
					d = math.Float64frombits(uint64(2046-e) << 52)
					ksum += e - 1023
				} else {
					// Subnormal or near-overflow c: divide like the old
					// scalar code did (exact-scale tricks would overflow),
					// preserving the old degeneracy diagnostics.
					if !(c > 0) || math.IsInf(c, 0) || math.IsNaN(c) {
						return MMPP2Fit{Diag: diag}, haperr.Badf("fit: MMPP2 EM forward pass degenerated at sample %d (x=%g)", t, x[t])
					}
					llcorr += math.Log(c)
					d = 1 / c
				}
				a0[t] = f0 * d
				a1[t] = f1 * d
				inv[t] = d
				s0 = f0*p00 + f1*p10
				s1 = f0*p01 + f1*p11
			}
		}
		ll := math.Log(c*inv[n-1]) + math.Ln2*float64(ksum) + llcorr - rLo*sumX

		// Fused backward pass and M step: the running pair (b0,b1) is β̃_t,
		// f_k = ẽ_k(t+1)·β̃_{t+1}(k)·d_{t+1} the shared backward factor.
		// All accumulators are raw (scale S = Σ_k α̃β̃, constant over t):
		// S cancels in r_k = Σγx̄/Σγ and in every transition-row ratio, so
		// the loop runs with zero divides.
		var sg0, sg1, sgx0, sgx1 float64
		var xi00, xi01, xi10, xi11 float64
		g0, g1 := a0[n-1], a1[n-1]
		sg0, sg1 = g0, g1
		sgx0, sgx1 = g0*x[n-1], g1*x[n-1]
		b0, b1 := 1.0, 1.0
		for t := n - 2; t >= 0; t-- {
			wt := w[t+1]
			dn := inv[t+1]
			e0d := (c00*wt + c01) * dn
			e1d := (c10*wt + c11) * dn
			fb0 := e0d * b0
			fb1 := e1d * b1
			at0, at1 := a0[t], a1[t]
			xi00 += at0 * p00 * fb0
			xi01 += at0 * p01 * fb1
			xi10 += at1 * p10 * fb0
			xi11 += at1 * p11 * fb1
			nb0 := p00*fb0 + p01*fb1
			nb1 := p10*fb0 + p11*fb1
			g0 = at0 * nb0
			g1 = at1 * nb1
			sg0 += g0
			sg1 += g1
			sgx0 += g0 * x[t]
			sgx1 += g1 * x[t]
			b0, b1 = nb0, nb1
		}
		// After the loop g0,g1 hold the raw posterior at t=0.
		if sgx0 > 0 {
			r[0] = sg0 / sgx0
		}
		if sgx1 > 0 {
			r[1] = sg1 / sgx1
		}
		if out := xi00 + xi01; out > 0 {
			p[0][0] = xi00 / out
			p[0][1] = xi01 / out
		}
		if out := xi10 + xi11; out > 0 {
			p[1][0] = xi10 / out
			p[1][1] = xi11 / out
		}
		// Keep transitions proper: a row collapsing to an absorbing state
		// has left the 2-state family.
		const floor = 1e-12
		for k := 0; k < 2; k++ {
			if p[k][0] < floor {
				p[k][0], p[k][1] = floor, 1-floor
			}
			if p[k][1] < floor {
				p[k][1], p[k][0] = floor, 1-floor
			}
		}
		if tot := g0 + g1; tot > 0 {
			pi[0] = g0 / tot
			pi[1] = g1 / tot
		}

		delta = ll - loglik
		loglik = ll
		diag.Iterations = it
		diag.Residual = math.Abs(delta) / float64(n)
		if it > 1 && diag.Residual < tol {
			diag.Converged = true
			break
		}
	}

	// Canonical order: state 0 is the slow (low-rate) state.
	if r[0] > r[1] {
		r[0], r[1] = r[1], r[0]
		p[0][0], p[1][1] = p[1][1], p[0][0]
		p[0][1], p[1][0] = p[1][0], p[0][1]
	}
	fit := MMPP2Fit{
		Rates:   r,
		P:       p,
		LogLik:  loglik,
		Samples: n,
		Diag:    diag,
		Model: mmpp.MMPP2{
			R0:  r[0],
			R1:  r[1],
			Q01: p[0][1] * r[0],
			Q10: p[1][0] * r[1],
		},
	}
	if err := fit.Model.Validate(); err != nil {
		return fit, haperr.Badf("fit: EM produced an invalid MMPP2 (%v)", err)
	}
	if !diag.Converged {
		return fit, fmt.Errorf("fit: MMPP2 EM used all %d iterations (last per-sample improvement %.3g): %w",
			maxIter, diag.Residual, haperr.ErrNotConverged)
	}
	return fit, nil
}

// interarrivals converts sorted arrival timestamps to the (optionally
// capped) interarrival sequence EM consumes, freshly allocated at the
// capped size — the model-selection path keeps this sample alive across
// candidates, so it must not alias a reusable arena. Hot paths use
// Scratch.interarrivals instead.
func interarrivals(times []float64, maxSamples int) ([]float64, error) {
	var s Scratch
	x, err := s.interarrivals(times, maxSamples)
	if err != nil {
		return nil, err
	}
	return x, nil
}
