package fit

import (
	"context"
	"errors"
	"testing"

	"hap/internal/dist"
	"hap/internal/haperr"
	"hap/internal/mmpp"
	"hap/internal/sim"
)

func simMMPP2(truth mmpp.MMPP2) Simulator {
	return func(seed int64, cfg sim.Config) []float64 {
		cfg.Seed = seed
		streams := dist.NewStreams(seed + 1)
		src := sim.NewMMPPSource(truth.General(), dist.NewExponential(40), streams.Next())
		src.StartStationary = true
		return sim.Run(src, cfg).Meas.Arrivals
	}
}

func TestEMRoundTripMMPP2(t *testing.T) {
	arrivals, slack := arrivalsBudget(t)
	if arrivals > 300_000 {
		arrivals = 300_000
	}
	truth := mmpp.MMPP2{R0: 2, R1: 20, Q01: 0.02, Q10: 0.05}
	rt, err := Simulate(simMMPP2(truth), RoundTripConfig{
		MeanRate: truth.MeanRate(), Arrivals: arrivals, Reps: 1, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := FitMMPP2EM(context.Background(), rt.Times, EMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	checkRel(t, "R0", f.Model.R0, truth.R0, 0.05*slack)
	checkRel(t, "R1", f.Model.R1, truth.R1, 0.05*slack)
	checkRel(t, "rate", f.Model.MeanRate(), truth.MeanRate(), 0.05*slack)
	// Switching rates come through the Markov-renewal approximation:
	// looser band.
	checkRel(t, "Q01", f.Model.Q01, truth.Q01, 0.25*slack)
	checkRel(t, "Q10", f.Model.Q10, truth.Q10, 0.25*slack)
	if !f.Diag.Converged || f.Diag.Iterations == 0 || f.Diag.Residual < 0 {
		t.Errorf("missing convergence diagnostics: %v", f.Diag)
	}
	if f.Rates[0] > f.Rates[1] {
		t.Errorf("states not in canonical order: %v", f.Rates)
	}
}

func TestEMBudgetExhaustion(t *testing.T) {
	truth := mmpp.MMPP2{R0: 2, R1: 20, Q01: 0.02, Q10: 0.05}
	rt, err := Simulate(simMMPP2(truth), RoundTripConfig{
		MeanRate: truth.MeanRate(), Arrivals: 20_000, Reps: 1, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := FitMMPP2EM(context.Background(), rt.Times, EMOptions{MaxIter: 2})
	if !errors.Is(err, haperr.ErrNotConverged) {
		t.Fatalf("want ErrNotConverged, got %v", err)
	}
	// The best iterate is still returned, flagged through Diag.
	if f.Diag.Converged {
		t.Error("Diag.Converged should be false")
	}
	if f.Diag.Iterations != 2 {
		t.Errorf("Diag.Iterations = %d, want 2", f.Diag.Iterations)
	}
	if f.Diag.Residual <= 0 {
		t.Errorf("Diag.Residual = %g, want the final log-likelihood delta", f.Diag.Residual)
	}
	if vErr := f.Model.Validate(); vErr != nil {
		t.Errorf("best iterate should still be a valid MMPP2: %v", vErr)
	}
	if haperr.ExitCode(err) != haperr.ExitNotConverged {
		t.Errorf("exit code = %d, want %d", haperr.ExitCode(err), haperr.ExitNotConverged)
	}
}

func TestEMCancellation(t *testing.T) {
	truth := mmpp.MMPP2{R0: 2, R1: 20, Q01: 0.02, Q10: 0.05}
	rt, err := Simulate(simMMPP2(truth), RoundTripConfig{
		MeanRate: truth.MeanRate(), Arrivals: 20_000, Reps: 1, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = FitMMPP2EM(ctx, rt.Times, EMOptions{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled wrapped, got %v", err)
	}
	if haperr.ExitCode(err) != haperr.ExitCancelled {
		t.Errorf("exit code = %d, want %d", haperr.ExitCode(err), haperr.ExitCancelled)
	}
}

func TestEMRejectsBadInput(t *testing.T) {
	if _, err := FitMMPP2EM(context.Background(), []float64{1, 2, 3}, EMOptions{}); !errors.Is(err, haperr.ErrBadParameter) {
		t.Errorf("short trace: want ErrBadParameter, got %v", err)
	}
	bad := []float64{0, 1, 2, 3, 2.5, 4, 5, 6, 7}
	if _, err := FitMMPP2EM(context.Background(), bad, EMOptions{}); !errors.Is(err, haperr.ErrBadParameter) {
		t.Errorf("unsorted trace: want ErrBadParameter, got %v", err)
	}
}

func TestEMTruncatesToPrefix(t *testing.T) {
	times := make([]float64, 1001)
	for i := range times {
		times[i] = float64(i)
	}
	f, err := FitMMPP2EM(context.Background(), times, EMOptions{MaxSamples: 100, MaxIter: 5})
	if err != nil && !errors.Is(err, haperr.ErrNotConverged) {
		t.Fatal(err)
	}
	if f.Samples != 100 {
		t.Errorf("Samples = %d, want 100", f.Samples)
	}
}
