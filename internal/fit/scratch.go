package fit

import (
	"math"
	"sync"

	"hap/internal/haperr"
)

// Scratch is the fit layer's reusable working memory: the interarrival
// buffer and the SoA forward/backward/scale/emission arrays the Baum-Welch
// EM core runs in, plus the moment fitters' warm-start state. A zero
// Scratch is ready to use; passing the same Scratch to successive fits
// (EMOptions.Scratch / Options.Scratch) makes the hot path allocation-free
// once the buffers have grown to the largest trace seen — the property
// TestFitHotPathAllocs pins and the hap_fit_scratch_* counters report.
//
// A Scratch is not safe for concurrent use: parallel multi-start and
// model-selection runs draw per-worker scratches from an internal pool
// instead of sharing one (warm-start state is cleared on pooled reuse so
// results stay a function of the start index alone).
type Scratch struct {
	// x holds the interarrival sequence under fit; w/inv/a0/a1 are the
	// per-sample emission, renormalization-scale and forward buffers of
	// the EM core (the backward pass is fused into the M step and keeps
	// no per-sample state).
	x, w, inv, a0, a1 []float64

	// warm1/warm2 remember the last accepted decay rates of the 1- and
	// 2-exponential IDC covariance fits; a subsequent fit through the
	// same Scratch searches a local bracket around them instead of the
	// full grid (fitExpCovariance).
	warm1, warm2 []float64

	// warmEM remembers the last accepted EM iterate for Refitter-style
	// warm starts (nil until a fit succeeds).
	warmEM *MMPP2Fit
}

// interarrivals fills s.x with the (capped) interarrival sequence of the
// sorted timestamps, reusing the buffer across calls. The allocation is
// sized to the capped count, not len(times)-1 — fitting a 10⁶-arrival
// trace with the default 2·10⁵ sample cap must not allocate 8 MB.
func (s *Scratch) interarrivals(times []float64, maxSamples int) ([]float64, error) {
	if len(times) < 8 {
		return nil, haperr.Badf("fit: MMPP2 EM needs at least 8 arrivals, got %d", len(times))
	}
	// Truncate to a contiguous prefix: EM models the sequence's serial
	// correlation, which any strided subsample would distort (halving
	// apparent sojourn lengths doubles the fitted switching rates).
	n := len(times) - 1
	if maxSamples > 0 && n > maxSamples {
		n = maxSamples
	}
	s.x = growBuf(s.x, n)
	for i := 0; i < n; i++ {
		d := times[i+1] - times[i]
		if math.IsNaN(d) || math.IsInf(d, 0) || d < 0 {
			return nil, haperr.Badf("fit: bad interarrival %g at index %d", d, i+1)
		}
		s.x[i] = d
	}
	return s.x, nil
}

// emBuffers sizes the EM working arrays for n samples and returns them.
func (s *Scratch) emBuffers(n int) (w, inv, a0, a1 []float64) {
	s.w = growBuf(s.w, n)
	s.inv = growBuf(s.inv, n)
	s.a0 = growBuf(s.a0, n)
	s.a1 = growBuf(s.a1, n)
	return s.w, s.inv, s.a0, s.a1
}

// growBuf resizes buf to length n, reusing capacity when it suffices.
// The reuse/grow split is published so an operator can see whether a
// long-running refit loop has reached its allocation-free steady state.
func growBuf(buf []float64, n int) []float64 {
	if cap(buf) >= n {
		obsScratchReuses.Inc()
		return buf[:n]
	}
	obsScratchGrows.Inc()
	return make([]float64, n)
}

// warmRates returns the remembered decay-rate bracket for a k-exponential
// covariance fit (nil when none or mismatched).
func (s *Scratch) warmRates(k int) []float64 {
	switch k {
	case 1:
		return s.warm1
	case 2:
		return s.warm2
	}
	return nil
}

// setWarmRates records the accepted decay rates for the next fit.
func (s *Scratch) setWarmRates(k int, rates []float64) {
	switch k {
	case 1:
		s.warm1 = append(s.warm1[:0], rates...)
	case 2:
		s.warm2 = append(s.warm2[:0], rates...)
	}
}

// resetWarm clears warm-start state while keeping the buffers. Pooled
// scratches are reset on checkout so parallel fits stay deterministic:
// buffer contents never influence a result, warm state does.
func (s *Scratch) resetWarm() {
	s.warm1 = s.warm1[:0]
	s.warm2 = s.warm2[:0]
	s.warmEM = nil
}

// scratchPool serves per-worker scratches to the parallel multi-start and
// model-selection paths. Only buffers survive reuse (resetWarm), so a
// pooled scratch can never leak one fit's warm state into another.
var scratchPool = sync.Pool{New: func() any { return new(Scratch) }}

func getScratch() *Scratch {
	s := scratchPool.Get().(*Scratch)
	s.resetWarm()
	return s
}

func putScratch(s *Scratch) { scratchPool.Put(s) }
