package fit

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

func TestFitReportIsJSONSerialisable(t *testing.T) {
	arrivals := int64(60_000)
	rt, err := Simulate(SimPoisson(8.25, 20), RoundTripConfig{
		MeanRate: 8.25, Arrivals: arrivals, Reps: 1, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Fit(context.Background(), rt.Times, Options{})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Best != rep.Best || len(back.Candidates) != len(rep.Candidates) {
		t.Errorf("round-tripped report differs: best %q vs %q", back.Best, rep.Best)
	}
}

func TestFitRestrictsModels(t *testing.T) {
	rt, err := Simulate(SimPoisson(8.25, 20), RoundTripConfig{
		MeanRate: 8.25, Arrivals: 30_000, Reps: 1, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Fit(context.Background(), rt.Times, Options{Models: []string{"poisson", "mmpp2"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Candidates) != 2 {
		t.Fatalf("got %d candidates, want 2", len(rep.Candidates))
	}
	for _, c := range rep.Candidates {
		if c.Name != "poisson" && c.Name != "mmpp2" {
			t.Errorf("unexpected candidate %q", c.Name)
		}
	}
}

func TestFitUnknownModel(t *testing.T) {
	rt, err := Simulate(SimPoisson(8.25, 20), RoundTripConfig{
		MeanRate: 8.25, Arrivals: 30_000, Reps: 1, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Fit(context.Background(), rt.Times, Options{Models: []string{"bogus", "poisson"}})
	if err != nil {
		t.Fatal(err)
	}
	var bogus *Candidate
	for i := range rep.Candidates {
		if rep.Candidates[i].Name == "bogus" {
			bogus = &rep.Candidates[i]
		}
	}
	if bogus == nil || !strings.Contains(bogus.Error, "unknown model class") {
		t.Errorf("bogus candidate = %+v", bogus)
	}
	if rep.Best != "poisson" {
		t.Errorf("Best = %q, want poisson", rep.Best)
	}
}

func TestFitCancelled(t *testing.T) {
	times := make([]float64, 64)
	for i := range times {
		times[i] = float64(i)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Fit(ctx, times, Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}
