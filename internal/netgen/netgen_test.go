package netgen

import (
	"context"
	"math"
	"testing"
	"testing/quick"
	"time"

	"hap/internal/core"
)

func TestPacketRoundTrip(t *testing.T) {
	p := Packet{Seq: 42, SendUnix: 123456789, Class: 3, PadLen: 16}
	b := p.Encode(nil)
	if len(b) != HeaderSize+16 {
		t.Fatalf("encoded length %d", len(b))
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if got != p {
		t.Errorf("roundtrip: %+v != %+v", got, p)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode([]byte{1, 2, 3}); err == nil {
		t.Error("short packet accepted")
	}
	b := Packet{Seq: 1}.Encode(nil)
	b[0] = 0xFF // corrupt magic
	if _, err := Decode(b); err == nil {
		t.Error("bad magic accepted")
	}
	b2 := Packet{Seq: 1, PadLen: 4}.Encode(nil)
	if _, err := Decode(b2[:len(b2)-1]); err == nil {
		t.Error("truncated padding accepted")
	}
}

func TestQuickPacketRoundTrip(t *testing.T) {
	f := func(seq uint64, ts int64, class uint32, pad uint8) bool {
		p := Packet{Seq: seq, SendUnix: ts, Class: class, PadLen: uint32(pad)}
		got, err := Decode(p.Encode(nil))
		return err == nil && got == p
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestGenerateHAPSchedule(t *testing.T) {
	m := core.PaperParams(20)
	s, err := GenerateHAP(m, 2000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.MeanRate()-8.25)/8.25 > 0.25 {
		t.Errorf("schedule rate = %v, want ≈ 8.25", s.MeanRate())
	}
	// Arrival times must be sorted and within the horizon.
	prev := 0.0
	for _, a := range s.Arrivals {
		if a.T < prev || a.T > s.Horizon {
			t.Fatalf("bad arrival time %v (prev %v)", a.T, prev)
		}
		prev = a.T
	}
}

func TestGeneratePoissonSchedule(t *testing.T) {
	s, err := GeneratePoisson(50, 1000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.MeanRate()-50)/50 > 0.05 {
		t.Errorf("rate = %v", s.MeanRate())
	}
	if _, err := GeneratePoisson(-1, 10, 1); err == nil {
		t.Error("negative rate accepted")
	}
}

func TestGenerateOnOffSchedule(t *testing.T) {
	tl := core.NewOnOff(0.5, 0.1, 10, 100)
	s, err := GenerateOnOff(tl, 2000, 5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.MeanRate()-50)/50 > 0.2 {
		t.Errorf("rate = %v, want ≈ 50", s.MeanRate())
	}
}

func TestSendReceiveLoopback(t *testing.T) {
	sink, err := NewSink("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()

	s, err := GeneratePoisson(200, 5, 11) // ~1000 packets of model time 5 s
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// The collector's completion deadline scales with the schedule's own
	// burst structure instead of a fixed wall-clock constant, so a loaded
	// host that stretches the replay stretches the deadline with it.
	const compression = 100 // 5 model seconds into ~50 ms of wall time
	idle := AdaptiveIdle(s, compression)
	if idle < time.Second {
		t.Fatalf("AdaptiveIdle = %v, want at least the 1 s floor", idle)
	}
	dropsBefore := obsPacketsDropped.Value()

	// The streaming hook must see every decoded packet, in order, with
	// non-negative receiver-clock times (this is what hapfit -listen uses).
	hookCalls := 0
	prevSec := -1.0
	sink.OnArrival = func(sec float64) {
		if sec < prevSec {
			t.Errorf("OnArrival time went backwards: %g after %g", sec, prevSec)
		}
		prevSec = sec
		hookCalls++
	}

	done := make(chan SinkStats, 1)
	go func() {
		st, err := sink.Collect(ctx, len(s.Arrivals), idle)
		if err != nil {
			t.Errorf("collect: %v", err)
		}
		done <- st
	}()

	sendStats, err := Send(ctx, sink.Addr(), s, SenderConfig{Compression: compression, PayloadPad: 32})
	if err != nil {
		t.Fatal(err)
	}
	st := <-done
	if sendStats.Sent != len(s.Arrivals) {
		t.Errorf("sent %d of %d", sendStats.Sent, len(s.Arrivals))
	}
	if drops := obsPacketsDropped.Value() - dropsBefore; drops > 0 {
		t.Logf("loopback dropped %d packets (sequence gaps at the sink)", drops)
	}
	if hookCalls != st.Received {
		t.Errorf("OnArrival fired %d times for %d received packets", hookCalls, st.Received)
	}
	if st.BytesTotal < int64(st.Received*(HeaderSize+32)) {
		t.Errorf("byte count %d too small", st.BytesTotal)
	}
	if testing.Short() {
		// Received fraction and interarrival statistics depend on the host
		// keeping pace with the compressed replay; don't judge them on a
		// constrained -short run.
		t.Skip("skipping wall-clock-sensitive delivery assertions in -short mode")
	}
	// Loopback UDP may drop under burst; accept minor loss.
	if st.Received < sendStats.Sent*9/10 {
		t.Errorf("received %d of %d", st.Received, sendStats.Sent)
	}
	if st.MeanIA <= 0 {
		t.Error("no interarrival measured")
	}
}

func TestAdaptiveIdle(t *testing.T) {
	s, err := GeneratePoisson(200, 5, 11)
	if err != nil {
		t.Fatal(err)
	}
	// Fast replays hit the one-second floor.
	if got := AdaptiveIdle(s, 100); got < time.Second {
		t.Errorf("AdaptiveIdle(compress=100) = %v, below the floor", got)
	}
	// Real-time replay of a sparse schedule scales past the floor: a lone
	// packet at t=60 s gives a 60 s worst gap, so the idle window must
	// comfortably exceed it.
	sparse := &Schedule{Horizon: 60, Arrivals: []Arrival{{T: 60}}}
	if got := AdaptiveIdle(sparse, 1); got <= 60*time.Second {
		t.Errorf("AdaptiveIdle(sparse, real time) = %v, want > the 60 s gap", got)
	}
	// Non-positive compression means real time.
	if got, want := AdaptiveIdle(sparse, 0), AdaptiveIdle(sparse, 1); got != want {
		t.Errorf("AdaptiveIdle(compress=0) = %v, want %v", got, want)
	}
}

func TestSendCancelled(t *testing.T) {
	sink, err := NewSink("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()
	s, _ := GeneratePoisson(10, 100, 1) // 100 model seconds
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // immediately
	_, err = Send(ctx, sink.Addr(), s, SenderConfig{Compression: 1})
	if err == nil {
		t.Error("cancelled send should report the context error")
	}
}

func TestSinkIdleTimeout(t *testing.T) {
	sink, err := NewSink("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()
	start := time.Now()
	st, err := sink.Collect(context.Background(), 10, 200*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.Received != 0 {
		t.Error("received ghost packets")
	}
	if time.Since(start) > 3*time.Second {
		t.Error("idle timeout did not fire promptly")
	}
}
