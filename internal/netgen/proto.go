// Package netgen turns a HAP model into real packets: a sender paces UDP
// datagrams according to a pre-generated HAP arrival schedule (optionally
// time-compressed), and a sink measures what arrives — sequence gaps,
// interarrival mean/SCV and index of dispersion. It is the piece a
// downstream user points at a real device under test to reproduce the
// paper's traffic in the lab rather than in the simulator.
package netgen

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Magic identifies hapgen datagrams.
const Magic uint32 = 0x48415031 // "HAP1"

// HeaderSize is the wire size of the fixed header.
const HeaderSize = 4 + 8 + 8 + 4 + 4

// Packet is the wire format: a fixed header plus opaque padding to reach
// the configured payload size.
type Packet struct {
	Seq      uint64
	SendUnix int64 // sender wall clock, ns
	Class    uint32
	PadLen   uint32
}

// ErrBadPacket reports an undecodable datagram.
var ErrBadPacket = errors.New("netgen: bad packet")

// Encode appends the packet (header + zero padding) to buf and returns the
// extended slice.
func (p Packet) Encode(buf []byte) []byte {
	var h [HeaderSize]byte
	binary.BigEndian.PutUint32(h[0:4], Magic)
	binary.BigEndian.PutUint64(h[4:12], p.Seq)
	binary.BigEndian.PutUint64(h[12:20], uint64(p.SendUnix))
	binary.BigEndian.PutUint32(h[20:24], p.Class)
	binary.BigEndian.PutUint32(h[24:28], p.PadLen)
	buf = append(buf, h[:]...)
	for i := uint32(0); i < p.PadLen; i++ {
		buf = append(buf, 0)
	}
	return buf
}

// Decode parses a datagram.
func Decode(b []byte) (Packet, error) {
	if len(b) < HeaderSize {
		return Packet{}, fmt.Errorf("%w: %d bytes", ErrBadPacket, len(b))
	}
	if binary.BigEndian.Uint32(b[0:4]) != Magic {
		return Packet{}, fmt.Errorf("%w: bad magic", ErrBadPacket)
	}
	p := Packet{
		Seq:      binary.BigEndian.Uint64(b[4:12]),
		SendUnix: int64(binary.BigEndian.Uint64(b[12:20])),
		Class:    binary.BigEndian.Uint32(b[20:24]),
		PadLen:   binary.BigEndian.Uint32(b[24:28]),
	}
	if len(b) != HeaderSize+int(p.PadLen) {
		return Packet{}, fmt.Errorf("%w: length %d != %d", ErrBadPacket, len(b), HeaderSize+int(p.PadLen))
	}
	return p, nil
}
