package netgen

import (
	"context"
	"errors"
	"fmt"
	"net"
	"time"

	"hap/internal/stats"
)

// ErrSinkClosed reports that the sink's socket was closed while Collect
// was receiving. The returned SinkStats are finalized and valid — a
// controlled shutdown (Close from another goroutine to drain a stream)
// checks errors.Is(err, ErrSinkClosed) and keeps the stats, instead of
// having to pattern-match raw net errors.
var ErrSinkClosed = errors.New("netgen: sink closed during collect")

// SinkStats summarises what a sink measured.
type SinkStats struct {
	Received  int
	Lost      int // sequence gaps
	Reordered int // sequence regressions
	// LostWhileBlocked is the subset of Lost whose gap immediately
	// followed an OnArrival callback that overran the SlowCallback
	// threshold — losses plausibly caused by the receive loop being
	// blocked in the callback rather than by the network.
	LostWhileBlocked int
	MeanIA           float64 // seconds between datagrams at the receiver
	SCV              float64 // interarrival squared coefficient of variation
	IDC              float64 // index of dispersion at the window below
	IDCWindow        float64
	FirstSeq         uint64
	LastSeq          uint64
	Elapsed          time.Duration
	BytesTotal       int64
}

// Sink receives hapgen datagrams on a UDP socket and measures the arrival
// process.
type Sink struct {
	conn *net.UDPConn

	// OnArrival, when non-nil, is invoked from Collect for every decoded
	// packet with its arrival time in seconds since Collect started. It
	// lets a caller stream arrivals into an accumulator (hapfit feeds a
	// fit.TraceStats this way) without buffering the whole trace twice.
	// It runs on Collect's goroutine; keep it fast — while it runs the
	// socket is not being read and the kernel buffer can overflow. A
	// panicking callback is recovered, counted on
	// hap_netgen_callback_panics_total and disabled for the rest of the
	// Collect; the packets themselves keep being measured.
	OnArrival func(sec float64)

	// SlowCallback is the OnArrival duration above which subsequent
	// sequence-gap losses are attributed to the callback having blocked
	// the receive loop (SinkStats.LostWhileBlocked and
	// hap_netgen_packets_dropped_blocked_total). 0 defaults to 1ms;
	// negative disables the attribution.
	SlowCallback time.Duration
}

// NewSink listens on addr ("127.0.0.1:0" picks a free port).
func NewSink(addr string) (*Sink, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("netgen: resolve %s: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, fmt.Errorf("netgen: listen %s: %w", addr, err)
	}
	return &Sink{conn: conn}, nil
}

// Addr returns the bound address (with the concrete port).
func (s *Sink) Addr() string { return s.conn.LocalAddr().String() }

// Close releases the socket.
func (s *Sink) Close() error { return s.conn.Close() }

// AdaptiveIdle sizes a Collect idle timeout for a schedule replayed at the
// given compression (<= 0 means real time): twenty times the longest
// compressed inter-arrival gap plus half a second of jitter headroom,
// floored at one second. Scaling from the schedule's own burst structure —
// rather than a fixed wall-clock constant — means a loaded host stretches
// the deadline with the traffic instead of cutting a slow replay short.
func AdaptiveIdle(s *Schedule, compression float64) time.Duration {
	if compression <= 0 {
		compression = 1
	}
	var maxGap, prev float64
	for _, a := range s.Arrivals {
		if g := a.T - prev; g > maxGap {
			maxGap = g
		}
		prev = a.T
	}
	idle := 20*time.Duration(maxGap/compression*float64(time.Second)) + 500*time.Millisecond
	if idle < time.Second {
		idle = time.Second
	}
	return idle
}

// Collect reads until expect packets arrived, the idle timeout passes with
// nothing received, or ctx is cancelled. idle <= 0 defaults to one second.
func (s *Sink) Collect(ctx context.Context, expect int, idle time.Duration) (SinkStats, error) {
	if idle <= 0 {
		idle = time.Second
	}
	var (
		st        SinkStats
		iaWelford stats.Welford
		times     []float64
		lastRecv  time.Time
		lastSeq   uint64
		haveSeq   bool
		closed    bool
		cbDead    bool // OnArrival panicked; disabled for this Collect
		cbSlow    bool // last OnArrival overran the SlowCallback threshold
	)
	slowAfter := s.SlowCallback
	if slowAfter == 0 {
		slowAfter = time.Millisecond
	}
	buf := make([]byte, 65536)
	start := time.Now()
	for expect <= 0 || st.Received < expect {
		deadline := time.Now().Add(idle)
		if dl, ok := ctx.Deadline(); ok && dl.Before(deadline) {
			deadline = dl
		}
		if err := s.conn.SetReadDeadline(deadline); err != nil {
			if errors.Is(err, net.ErrClosed) {
				closed = true
				break
			}
			return st, err
		}
		n, _, err := s.conn.ReadFromUDP(buf)
		if err != nil {
			var nerr net.Error
			if errors.As(err, &nerr) && nerr.Timeout() {
				break // idle: the sender is done
			}
			if errors.Is(err, net.ErrClosed) {
				closed = true
				break
			}
			return st, err
		}
		pkt, err := Decode(buf[:n])
		if err != nil {
			continue // ignore foreign datagrams
		}
		now := time.Now()
		st.BytesTotal += int64(n)
		obsBytesReceived.Add(int64(n))
		if st.Received == 0 {
			st.FirstSeq = pkt.Seq
		} else {
			iaWelford.Add(now.Sub(lastRecv).Seconds())
			switch {
			case pkt.Seq > lastSeq+1:
				gap := int(pkt.Seq - lastSeq - 1)
				st.Lost += gap
				obsPacketsDropped.Add(int64(gap))
				if cbSlow {
					st.LostWhileBlocked += gap
					obsPacketsDroppedBlocked.Add(int64(gap))
				}
			case pkt.Seq <= lastSeq && haveSeq:
				st.Reordered++
				obsPacketsReordered.Inc()
			}
		}
		cbSlow = false
		sec := now.Sub(start).Seconds()
		times = append(times, sec)
		if s.OnArrival != nil && !cbDead {
			if !s.callArrival(sec) {
				cbDead = true
			} else if slowAfter > 0 && time.Since(now) > slowAfter {
				cbSlow = true
			}
		}
		lastRecv = now
		lastSeq = pkt.Seq
		haveSeq = true
		st.LastSeq = pkt.Seq
		st.Received++
		obsPacketsReceived.Inc()
		if ctx.Err() != nil {
			break
		}
	}
	st.Elapsed = time.Since(start)
	st.MeanIA = iaWelford.Mean()
	obsMeanIA.Set(st.MeanIA)
	st.SCV = iaWelford.SCV()
	if len(times) > 10 {
		st.IDCWindow = (times[len(times)-1] - times[0]) / 20
		st.IDC = stats.IDC(times, st.IDCWindow)
	}
	if closed {
		return st, ErrSinkClosed
	}
	return st, nil
}

// callArrival runs the OnArrival callback behind a recover: a panicking
// consumer must not take down the receive loop, it just loses its feed
// (counted, and visible on the panic counter).
func (s *Sink) callArrival(sec float64) (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			obsCallbackPanics.Inc()
			ok = false
		}
	}()
	s.OnArrival(sec)
	return true
}
