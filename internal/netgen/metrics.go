package netgen

import "hap/internal/obs"

// Runtime metrics for the UDP generator: senders and sinks publish live
// send/receive/loss counts so a long compressed replay can be watched from
// the /metrics endpoint instead of waiting for the final report. Loss is
// detected at the sink from sequence gaps, so "dropped" means "never seen
// by any sink in this process".
var (
	obsPacketsSent = obs.NewCounter("hap_netgen_packets_sent_total",
		"UDP datagrams written by senders.")
	obsBytesSent = obs.NewCounter("hap_netgen_bytes_sent_total",
		"UDP payload bytes written by senders.")
	obsPacketsReceived = obs.NewCounter("hap_netgen_packets_received_total",
		"Datagrams received and decoded by sinks.")
	obsBytesReceived = obs.NewCounter("hap_netgen_bytes_received_total",
		"Bytes received by sinks.")
	obsPacketsDropped = obs.NewCounter("hap_netgen_packets_dropped_total",
		"Packets inferred lost from sequence gaps at sinks.")
	obsPacketsReordered = obs.NewCounter("hap_netgen_packets_reordered_total",
		"Sequence regressions observed at sinks.")
	obsPacketsDroppedBlocked = obs.NewCounter("hap_netgen_packets_dropped_blocked_total",
		"Subset of dropped packets whose gap followed an OnArrival callback slower than the sink's SlowCallback threshold — losses attributed to the receive loop being blocked, not the network.")
	obsCallbackPanics = obs.NewCounter("hap_netgen_callback_panics_total",
		"OnArrival callbacks that panicked; each disables the callback for the rest of its Collect.")
	obsMeanIA = obs.NewFloatGauge("hap_netgen_interarrival_mean_seconds",
		"Observed mean interarrival time of the most recently finished collection.")
)
