package netgen

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"
)

// rawSender writes crafted packets (chosen sequence numbers) straight to
// a sink, bypassing the scheduler — the loss-attribution tests need to
// fabricate sequence gaps deterministically.
type rawSender struct {
	t    *testing.T
	conn net.Conn
}

func newRawSender(t *testing.T, addr string) *rawSender {
	t.Helper()
	conn, err := net.Dial("udp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return &rawSender{t: t, conn: conn}
}

func (rs *rawSender) send(seq uint64) {
	rs.t.Helper()
	if _, err := rs.conn.Write(Packet{Seq: seq}.Encode(nil)); err != nil {
		rs.t.Fatal(err)
	}
	// Space the datagrams out so the receive loop observes them in order.
	time.Sleep(2 * time.Millisecond)
}

// TestSinkCallbackPanicGuard is the regression test for the callback
// guard: a panicking OnArrival must not kill Collect or stop the packet
// measurements — it is recovered, counted, and disabled.
func TestSinkCallbackPanicGuard(t *testing.T) {
	sink, err := NewSink("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()
	panicsBefore := obsCallbackPanics.Value()
	calls := 0
	sink.OnArrival = func(sec float64) {
		calls++
		panic("consumer bug")
	}
	done := make(chan SinkStats, 1)
	go func() {
		st, err := sink.Collect(context.Background(), 4, 2*time.Second)
		if err != nil {
			t.Errorf("collect after callback panic: %v", err)
		}
		done <- st
	}()
	rs := newRawSender(t, sink.Addr())
	for seq := uint64(1); seq <= 4; seq++ {
		rs.send(seq)
	}
	st := <-done
	if st.Received != 4 {
		t.Errorf("received %d of 4 — the panic stopped the loop", st.Received)
	}
	if calls != 1 {
		t.Errorf("panicking callback invoked %d times, want 1 (disabled after the panic)", calls)
	}
	if got := obsCallbackPanics.Value() - panicsBefore; got != 1 {
		t.Errorf("hap_netgen_callback_panics_total moved by %d, want 1", got)
	}
}

// TestSinkBlockedDropAttribution pins the drops-while-blocked counter: a
// sequence gap right after a slow OnArrival is attributed to the blocked
// receive loop; the same gap after a fast callback is not.
func TestSinkBlockedDropAttribution(t *testing.T) {
	run := func(slow time.Duration, cb func()) SinkStats {
		t.Helper()
		sink, err := NewSink("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer sink.Close()
		sink.SlowCallback = slow
		sink.OnArrival = func(sec float64) { cb() }
		done := make(chan SinkStats, 1)
		go func() {
			st, err := sink.Collect(context.Background(), 2, 2*time.Second)
			if err != nil {
				t.Errorf("collect: %v", err)
			}
			done <- st
		}()
		rs := newRawSender(t, sink.Addr())
		rs.send(1)
		rs.send(5) // fabricated gap: sequences 2..4 "lost"
		return <-done
	}

	blockedBefore := obsPacketsDroppedBlocked.Value()
	// A callback that overruns a 1µs threshold: the gap is attributed.
	st := run(time.Microsecond, func() { time.Sleep(3 * time.Millisecond) })
	if st.Lost != 3 {
		t.Fatalf("Lost = %d, want 3", st.Lost)
	}
	if st.LostWhileBlocked != 3 {
		t.Errorf("LostWhileBlocked = %d, want 3 (gap followed a slow callback)", st.LostWhileBlocked)
	}
	if got := obsPacketsDroppedBlocked.Value() - blockedBefore; got != 3 {
		t.Errorf("hap_netgen_packets_dropped_blocked_total moved by %d, want 3", got)
	}

	// A fast callback under the default 1ms threshold: same gap, no
	// blocked attribution.
	st = run(0, func() {})
	if st.Lost != 3 {
		t.Fatalf("control Lost = %d, want 3", st.Lost)
	}
	if st.LostWhileBlocked != 0 {
		t.Errorf("control LostWhileBlocked = %d, want 0 (callback was fast)", st.LostWhileBlocked)
	}
}

// TestSinkCloseDuringCollect is the regression test for the shutdown
// path: Close while Collect blocks in a read must surface as the
// ErrSinkClosed sentinel with finalized stats, not a raw net error.
func TestSinkCloseDuringCollect(t *testing.T) {
	sink, err := NewSink("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	type result struct {
		st  SinkStats
		err error
	}
	done := make(chan result, 1)
	go func() {
		st, err := sink.Collect(context.Background(), 0, time.Minute)
		done <- result{st, err}
	}()
	rs := newRawSender(t, sink.Addr())
	for seq := uint64(1); seq <= 3; seq++ {
		rs.send(seq)
	}
	time.Sleep(20 * time.Millisecond) // let the reads drain
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-done:
		if !errors.Is(r.err, ErrSinkClosed) {
			t.Fatalf("Collect after Close returned %v, want ErrSinkClosed", r.err)
		}
		if r.st.Received != 3 {
			t.Errorf("finalized stats lost packets: Received = %d, want 3", r.st.Received)
		}
		if r.st.Elapsed <= 0 {
			t.Error("stats not finalized: Elapsed = 0")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Collect did not return after Close")
	}
}
