package netgen

import (
	"context"
	"fmt"
	"net"
	"time"
)

// SenderConfig tunes packet replay.
type SenderConfig struct {
	// Compression divides model time: with Compression = 1000 one model
	// second is replayed in one millisecond. Default 1 (real time).
	Compression float64
	// PayloadPad adds this many zero bytes after the header.
	PayloadPad int
	// MaxBehind aborts pacing fidelity accounting when the sender falls
	// this far (wall time) behind schedule; packets are still sent.
	MaxBehind time.Duration
}

// SendStats reports a completed replay.
type SendStats struct {
	Sent      int
	Bytes     int64
	Elapsed   time.Duration
	MaxLateNs int64 // worst pacing lateness observed
}

// Send replays the schedule as UDP datagrams to addr, pacing according to
// the (compressed) model timeline. It stops early if ctx is cancelled.
func Send(ctx context.Context, addr string, s *Schedule, cfg SenderConfig) (SendStats, error) {
	if cfg.Compression <= 0 {
		cfg.Compression = 1
	}
	conn, err := net.Dial("udp", addr)
	if err != nil {
		return SendStats{}, fmt.Errorf("netgen: dial %s: %w", addr, err)
	}
	defer conn.Close()

	var st SendStats
	start := time.Now()
	buf := make([]byte, 0, HeaderSize+cfg.PayloadPad)
	for i, a := range s.Arrivals {
		due := start.Add(time.Duration(a.T / cfg.Compression * float64(time.Second)))
		now := time.Now()
		if wait := due.Sub(now); wait > 0 {
			timer := time.NewTimer(wait)
			select {
			case <-ctx.Done():
				timer.Stop()
				st.Elapsed = time.Since(start)
				return st, ctx.Err()
			case <-timer.C:
			}
		} else if late := -due.Sub(now); int64(late) > st.MaxLateNs {
			st.MaxLateNs = int64(late)
		}
		buf = buf[:0]
		buf = Packet{
			Seq:      uint64(i),
			SendUnix: time.Now().UnixNano(),
			Class:    uint32(a.Class),
			PadLen:   uint32(cfg.PayloadPad),
		}.Encode(buf)
		n, err := conn.Write(buf)
		if err != nil {
			return st, fmt.Errorf("netgen: send seq %d: %w", i, err)
		}
		st.Sent++
		st.Bytes += int64(n)
		obsPacketsSent.Inc()
		obsBytesSent.Add(int64(n))
	}
	st.Elapsed = time.Since(start)
	return st, nil
}
