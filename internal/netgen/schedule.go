package netgen

import (
	"fmt"

	"hap/internal/core"
	"hap/internal/dist"
	"hap/internal/sim"
)

// Arrival is one scheduled packet emission.
type Arrival struct {
	T     float64 // model time, seconds from schedule start
	Class int
}

// Schedule is a pre-generated arrival timeline.
type Schedule struct {
	Arrivals []Arrival
	Horizon  float64
}

// scheduleCollector taps the simulator's arrival stream.
type scheduleCollector struct {
	sink *[]Arrival
}

// GenerateHAP produces a HAP arrival schedule of the given model-time
// horizon using the simulator's source machinery (so correlations are the
// real thing, not the closed-form approximation).
func GenerateHAP(m *core.Model, horizon float64, seed int64) (*Schedule, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if horizon <= 0 {
		return nil, fmt.Errorf("netgen: horizon must be positive")
	}
	streams := dist.NewStreams(seed)
	src := sim.NewHAPSource(m, streams.Next())
	return generate(src, horizon, streams)
}

// GeneratePoisson produces the equal-rate Poisson baseline schedule.
func GeneratePoisson(rate, horizon float64, seed int64) (*Schedule, error) {
	if rate <= 0 || horizon <= 0 {
		return nil, fmt.Errorf("netgen: rate and horizon must be positive")
	}
	streams := dist.NewStreams(seed)
	src := sim.NewPoissonSource(rate, dist.NewExponential(1), streams.Next())
	return generate(src, horizon, streams)
}

// GenerateOnOff produces a 2-level/ON-OFF schedule.
func GenerateOnOff(tl *core.TwoLevel, horizon float64, seed int64) (*Schedule, error) {
	if err := tl.Validate(); err != nil {
		return nil, err
	}
	streams := dist.NewStreams(seed)
	src := sim.NewOnOffSource(tl, streams.Next())
	return generate(src, horizon, streams)
}

func generate(src sim.Source, horizon float64, streams *dist.Streams) (*Schedule, error) {
	// Use a near-infinite server so service completions do not throttle the
	// arrival record; we only harvest arrival instants.
	meas := sim.NewMeasurements(sim.MeasureConfig{KeepArrivalTimes: 1 << 26})
	e := sim.NewEngine(horizon, streams.Next(), meas)
	src.Install(e)
	e.Run()
	s := &Schedule{Horizon: horizon}
	for _, t := range meas.Arrivals {
		s.Arrivals = append(s.Arrivals, Arrival{T: t})
	}
	return s, nil
}

// MeanRate returns arrivals per model second.
func (s *Schedule) MeanRate() float64 {
	if s.Horizon <= 0 {
		return 0
	}
	return float64(len(s.Arrivals)) / s.Horizon
}
