package solver

import (
	"math"
	"math/rand"
	"testing"

	"hap/internal/core"
	"hap/internal/dist"
	"hap/internal/gm1"
	"hap/internal/markov"
	"hap/internal/mmpp"
	"hap/internal/sim"
)

func wantClose(t *testing.T, name string, got, want, relTol float64) {
	t.Helper()
	ref := math.Max(1e-12, math.Abs(want))
	if math.Abs(got-want)/ref > relTol {
		t.Errorf("%s = %v, want %v (rel tol %v)", name, got, want, relTol)
	}
}

// fastModel mixes orders of magnitude faster than the paper parameters so
// the brute-force solution converges inside a unit test: ν = 2, λ̄ = 12.8,
// ρ = 0.256.
func fastModel() *core.Model {
	return core.NewSymmetric(0.5, 0.25, 0.4, 0.5, 2, 50, 2, 2)
}

func TestQBDPoissonReducesToMM1(t *testing.T) {
	// One-phase modulator = Poisson: the matrix-geometric solution must be
	// the M/M/1 closed form to machine precision.
	chain := markov.NewChain(1)
	proc := mmpp.New(chain, []float64{8.25})
	res, err := SolveMMPPQueue(proc, 20, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantClose(t, "delay", res.Delay, 1/11.75, 1e-8)
	wantClose(t, "sigma", res.Sigma, 8.25/20, 1e-8)
	wantClose(t, "queue", res.QueueLen, 0.4125/0.5875, 1e-8)
}

func TestQBDRSatisfiesCTMCEquation(t *testing.T) {
	m2 := mmpp.MMPP2{R0: 2, R1: 12, Q01: 0.3, Q10: 0.7}
	proc := m2.General()
	qb, err := SolveQBD(proc, 20, RMethodLogReduction, 1e-13)
	if err != nil {
		t.Fatal(err)
	}
	// A0 + R·A1 + R²·A2 = 0 with CTMC blocks.
	r := qb.R
	a0 := [][]float64{{m2.R0, 0}, {0, m2.R1}}
	a1 := [][]float64{{-m2.Q01 - m2.R0 - 20, m2.Q01}, {m2.Q10, -m2.Q10 - m2.R1 - 20}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			v := a0[i][j]
			for k := 0; k < 2; k++ {
				v += r.At(i, k) * a1[k][j]
				var r2 float64
				for l := 0; l < 2; l++ {
					r2 += r.At(i, l) * r.At(l, k)
				}
				if k == j {
					v += r2 * 20
				}
			}
			if math.Abs(v) > 1e-7 {
				t.Errorf("CTMC residual[%d][%d] = %v", i, j, v)
			}
		}
	}
}

func TestQBDLogReductionMatchesFunctional(t *testing.T) {
	m2 := mmpp.MMPP2{R0: 1, R1: 9, Q01: 0.2, Q10: 0.5}
	proc := m2.General()
	lr, err := SolveQBD(proc, 15, RMethodLogReduction, 1e-13)
	if err != nil {
		t.Fatal(err)
	}
	fn, err := SolveQBD(m2.General(), 15, RMethodFunctional, 1e-13)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			wantClose(t, "R", lr.R.At(i, j), fn.R.At(i, j), 1e-6)
		}
	}
	wantClose(t, "mean queue", lr.MeanQueue(), fn.MeanQueue(), 1e-6)
}

func TestQBDMatchesSimulationMMPP2(t *testing.T) {
	m2 := mmpp.MMPP2{R0: 2, R1: 20, Q01: 0.02, Q10: 0.08}
	proc := m2.General()
	res, err := SolveMMPPQueue(proc, 40, nil)
	if err != nil {
		t.Fatal(err)
	}
	simRes := sim.Run(sim.MMPP2Source(m2, expDist(40), newRng(3)), sim.Config{
		Horizon: 400000, Seed: 3,
		Measure: sim.MeasureConfig{Warmup: 2000},
	})
	wantClose(t, "delay vs sim", res.Delay, simRes.Meas.MeanDelay(), 0.05)
	wantClose(t, "rate vs sim", res.MeanRate, simRes.Meas.ObservedRate(), 0.03)
}

func TestQBDQueueDistSumsToOne(t *testing.T) {
	m2 := mmpp.MMPP2{R0: 1, R1: 6, Q01: 0.1, Q10: 0.3}
	qb, err := SolveQBD(m2.General(), 10, RMethodLogReduction, 1e-13)
	if err != nil {
		t.Fatal(err)
	}
	dist := qb.QueueDist(4000)
	var sum, mean float64
	for z, p := range dist {
		if p < -1e-12 {
			t.Fatalf("negative P(z=%d) = %v", z, p)
		}
		sum += p
		mean += float64(z) * p
	}
	wantClose(t, "mass", sum, 1, 1e-6)
	wantClose(t, "mean consistency", mean, qb.MeanQueue(), 1e-4)
}

func TestQBDUnstableRejected(t *testing.T) {
	chain := markov.NewChain(1)
	proc := mmpp.New(chain, []float64{25})
	if _, err := SolveQBD(proc, 20, RMethodLogReduction, 0); err == nil {
		t.Error("unstable queue must be rejected")
	}
}

func TestSolution0MGAgainstSimulationFastModel(t *testing.T) {
	m := fastModel()
	res, err := Solution0MG(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantClose(t, "rate", res.MeanRate, 12.8, 0.01)
	simRes := sim.RunHAP(m, sim.Config{Horizon: 200000, Seed: 8, Measure: sim.MeasureConfig{Warmup: 500}})
	wantClose(t, "delay vs sim", res.Delay, simRes.Meas.MeanDelay(), 0.06)
}

func TestSolution0GaussSeidelMatchesMG(t *testing.T) {
	// The paper's brute-force sweep and the matrix-geometric solution are
	// two routes to the same stationary law (up to z truncation).
	m := fastModel()
	mg, err := Solution0MG(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	gs, err := Solution0(m, &Options{MaxQueue: 300, Tol: 1e-10, MaxIter: 4000})
	if err != nil {
		t.Fatalf("gs: %v (%v)", err, gs)
	}
	wantClose(t, "delay", gs.Delay, mg.Delay, 0.02)
	wantClose(t, "sigma", gs.Sigma, mg.Sigma, 0.02)
	wantClose(t, "rate", gs.MeanRate, mg.MeanRate, 0.01)
}

func TestSolution0GeneralMatchesMGOnAsymmetric(t *testing.T) {
	m := &core.Model{
		Name: "tiny-asym", Lambda: 0.6, Mu: 0.3,
		Apps: []core.AppType{
			{Name: "a", Lambda: 0.5, Mu: 1, Messages: []core.MessageType{{Name: "m", Lambda: 3, Mu: 60}}},
			{Name: "b", Lambda: 0.3, Mu: 0.6, Messages: []core.MessageType{{Name: "n", Lambda: 2, Mu: 60}}},
		},
	}
	mg, err := Solution0MG(m, &Options{MaxUsers: 7, MaxApps: 7})
	if err != nil {
		t.Fatal(err)
	}
	gs, err := Solution0General(m, 7, []int{7, 7}, 100, &Options{Tol: 5e-10, MaxIter: 3000})
	if err != nil {
		t.Fatalf("gs: %v", err)
	}
	wantClose(t, "rate", gs.MeanRate, m.MeanRate(), 0.03)
	wantClose(t, "delay", gs.Delay, mg.Delay, 0.05)
}

func TestSolutions1And2AgreeWithinOnePercent(t *testing.T) {
	// Paper Section 4: "Solution 1 and 2 are within 1% difference between
	// each other" when the conditions hold.
	m := core.PaperParams(20)
	s1, err := Solution1(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Solution2(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantClose(t, "delay s1 vs s2", s1.Delay, s2.Delay, 0.01)
	wantClose(t, "sigma s1 vs s2", s1.Sigma, s2.Sigma, 0.01)
	wantClose(t, "rate", s2.MeanRate, 8.25, 1e-9)
}

func TestHeadlineNumbers(t *testing.T) {
	// Section 4 headline set: ρ ≈ 0.41, σ ≈ 0.47–0.50, T(Sol 2) ≈ 0.1 ≫
	// never — and Solutions 1/2 sit close to the paper's printed 0.1
	// while the correlation-aware solutions land several × higher.
	m := core.PaperParams(20)
	s2, err := Solution2(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantClose(t, "rho", s2.Rho, 0.4125, 1e-6)
	if s2.Sigma < 0.44 || s2.Sigma > 0.52 {
		t.Errorf("sigma = %v, want ≈ 0.47–0.50", s2.Sigma)
	}
	wantClose(t, "delay ≈ 0.1", s2.Delay, 0.1, 0.10)
	pois, err := Poisson(m)
	if err != nil {
		t.Fatal(err)
	}
	wantClose(t, "poisson delay", pois.Delay, 0.0851, 1e-3)
	if s2.Delay <= pois.Delay {
		t.Error("HAP(Sol 2) must exceed Poisson even without correlation")
	}
}

func TestSolution2BoundedReducesDelay(t *testing.T) {
	m := core.PaperParams(20)
	free, err := Solution2Bounded(m, 60, 300, nil)
	if err != nil {
		t.Fatal(err)
	}
	bound, err := Solution2Bounded(m, 12, 60, nil)
	if err != nil {
		t.Fatal(err)
	}
	if bound.Delay >= free.Delay {
		t.Errorf("bounding must reduce delay: %v vs %v", bound.Delay, free.Delay)
	}
	if bound.MeanRate >= free.MeanRate {
		t.Error("bounding must trim the admitted rate")
	}
	// The unbounded case must agree with plain Solution 2.
	s2, _ := Solution2(m, nil)
	wantClose(t, "free vs closed form", free.Delay, s2.Delay, 0.02)
}

func TestFigure19LevelOrdering(t *testing.T) {
	// At equal λ̄, scaling lower levels yields strictly more burstiness:
	// T(message) >= T(application) > T(user), with application and message
	// nearly coincident (the paper's "same effect on burstiness").
	base := core.PaperParams(20)
	for _, f := range []float64{1.05, 1.15} {
		tU := mustDelay(t, base.Scale(core.LevelUser, f))
		tA := mustDelay(t, base.Scale(core.LevelApp, f))
		tM := mustDelay(t, base.Scale(core.LevelMessage, f))
		if !(tM >= tA && tA > tU) {
			t.Errorf("f=%v: ordering violated user=%v app=%v msg=%v", f, tU, tA, tM)
		}
		wantClose(t, "app vs msg near-coincide", tA, tM, 0.01)
	}
}

func TestArrivalVsDepartureScaling(t *testing.T) {
	// Section 5: scaling one level's arrival and departure together keeps
	// λ̄ but shortens bursts — "increasing both by the same factor of 10%
	// decreases the delay by about 1%". This is a correlation-TIME effect:
	// Solution 2's closed form depends only on (ν, aᵢ, Λᵢ) and cannot see
	// it at all, so the exact matrix-geometric solution is required.
	base := fastModel()
	up := base.Scale(core.LevelApp, 1.25).ScaleHolding(core.LevelApp, 1.25)
	wantClose(t, "rate preserved", up.MeanRate(), base.MeanRate(), 1e-9)

	// Solution 2 is provably invariant under this scaling.
	s2a := mustDelay(t, base)
	s2b := mustDelay(t, up)
	wantClose(t, "solution 2 invariant", s2a, s2b, 1e-9)

	// The exact solution feels the shorter bursts.
	e0, err := Solution0MG(base, nil)
	if err != nil {
		t.Fatal(err)
	}
	e1, err := Solution0MG(up, nil)
	if err != nil {
		t.Fatal(err)
	}
	change := (e1.Delay - e0.Delay) / e0.Delay
	if change == 0 {
		t.Error("exact solution should register the correlation-time change")
	}
	// The paper reports ~1% for a 10% scaling; a 25% scaling on this model
	// should stay a small-single-digit effect either way (which way wins
	// depends on the parameters: shorter bursts lower delay, but faster
	// user-tracking raises Var(y) — see EXPERIMENTS.md E15).
	if math.Abs(change) > 0.10 {
		t.Errorf("delay change %v implausibly large for a 25%% scaling", change)
	}
}

func TestSolverInputValidation(t *testing.T) {
	if _, err := Solution2(core.Figure5Example(), nil); err == nil {
		t.Error("non-uniform service must be rejected by Solution 2")
	}
	if _, err := Solution0(core.Figure5Example(), nil); err == nil {
		t.Error("asymmetric model must be rejected by Solution 0")
	}
	if _, err := Solution0General(fastModel(), 5, []int{3}, 50, nil); err == nil {
		t.Error("wrong bound arity must be rejected")
	}
	bad := core.PaperParams(5) // ρ = 1.65
	if _, err := Solution2(bad, nil); err == nil {
		t.Error("unstable queue must be rejected")
	}
}

func TestSigmaMethodsAgreeOnHAP(t *testing.T) {
	m := core.PaperParams(20)
	a, err := Solution2(m, &Options{SigmaMethod: gm1.MethodBisect})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Solution2(m, &Options{SigmaMethod: gm1.MethodPaper})
	if err != nil {
		t.Fatal(err)
	}
	wantClose(t, "sigma", a.Sigma, b.Sigma, 1e-5)
}

func mustDelay(t *testing.T, m *core.Model) float64 {
	t.Helper()
	r, err := Solution2(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	return r.Delay
}

func expDist(rate float64) dist.Distribution { return dist.NewExponential(rate) }

func newRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
