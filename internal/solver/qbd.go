package solver

import (
	"fmt"
	"math"
	"time"

	"hap/internal/core"
	"hap/internal/haperr"
	"hap/internal/linalg"
	"hap/internal/mmpp"
)

// This file implements the matrix-geometric solution of HAP/M/1. The joint
// chain (modulator, z) is a quasi-birth-death process: within a queue
// level z >= 1 the generator repeats the same three blocks
//
//	A0 = diag(rates)        (arrival, z → z+1)
//	A1 = Q − diag(rates) − μI  (modulator moves)
//	A2 = μI                 (service, z → z−1)
//
// so the stationary law is matrix-geometric, π_z = π₁·R^{z−1}, with R the
// minimal solution of A0 + R·A1 + R²·A2 = 0 (Neuts, whom the paper cites).
// R is computed by Latouche–Ramaswami logarithmic reduction on the
// uniformised blocks, with the naive functional iteration available as an
// ablation/cross-check. Unlike the truncated Gauss–Seidel Solution 0, the
// queue dimension is exact, which matters because HAP's queue tail is
// heavy (locally unstable high-population states).

// QBD is the matrix-geometric solution of a modulated M/M/1-type queue.
type QBD struct {
	P        int // number of modulator phases
	Rates    []float64
	Mu       float64
	R        *linalg.Dense // rate matrix
	Pi0      []float64     // stationary vector of level 0
	Pi1      []float64     // stationary vector of level 1
	SumPi    []float64     // π₁(I−R)⁻¹ = Σ_{z≥1} π_z
	LRIter   int
	Residual float64 // final R-iteration convergence metric
}

// RMethod selects how the rate matrix R is computed.
type RMethod int

// Available R solvers.
const (
	// RMethodLogReduction is Latouche–Ramaswami logarithmic reduction
	// (quadratic convergence, the default).
	RMethodLogReduction RMethod = iota
	// RMethodFunctional is the naive iteration R ← Ā0 + RĀ1 + R²Ā2
	// (linear convergence; ablation baseline).
	RMethodFunctional
)

// SolveQBD computes the matrix-geometric solution for an arbitrary finite
// modulator. The modulator chain and per-state rates come from proc; mu is
// the uniform service rate.
func SolveQBD(proc *mmpp.MMPP, mu float64, method RMethod, tol float64) (*QBD, error) {
	if tol <= 0 {
		tol = 1e-12
	}
	p := proc.Chain.N()
	rates := proc.Rates
	meanRate, err := proc.MeanRate()
	if err != nil {
		return nil, err
	}
	if meanRate >= mu {
		return nil, fmt.Errorf("solver: qbd λ̄=%v >= μ=%v: %w", meanRate, mu, haperr.ErrUnstable)
	}

	// Dense modulator generator.
	q := linalg.NewDense(p, p)
	for i := 0; i < p; i++ {
		var out float64
		for _, tr := range proc.Chain.Transitions(i) {
			q.Set(i, tr.To, q.At(i, tr.To)+tr.Rate)
			out += tr.Rate
		}
		q.Set(i, i, q.At(i, i)-out)
	}

	// Uniformisation constant over the repeating levels.
	c := 0.0
	for i := 0; i < p; i++ {
		tot := -q.At(i, i) + rates[i] + mu
		if tot > c {
			c = tot
		}
	}
	c *= 1.0000001

	// DTMC blocks.
	a0 := linalg.NewDense(p, p) // up
	a2 := linalg.NewDense(p, p) // down
	a1 := linalg.NewDense(p, p) // local
	for i := 0; i < p; i++ {
		a0.Set(i, i, rates[i]/c)
		a2.Set(i, i, mu/c)
		for j := 0; j < p; j++ {
			v := q.At(i, j) / c
			if i == j {
				v += 1 - (rates[i]+mu)/c
			}
			a1.Set(i, j, v)
		}
	}

	var r *linalg.Dense
	var iters int
	var residual float64
	switch method {
	case RMethodFunctional:
		r, iters, residual, err = rFunctional(a0, a1, a2, tol)
	default:
		r, iters, residual, err = rLogReduction(a0, a1, a2, tol)
	}
	if err != nil {
		return nil, err
	}

	qbd := &QBD{P: p, Rates: rates, Mu: mu, R: r, LRIter: iters, Residual: residual}
	if err := qbd.solveBoundary(q, c); err != nil {
		return nil, err
	}
	return qbd, nil
}

// rLogReduction runs Latouche–Ramaswami logarithmic reduction for G, then
// converts to R = Ā0(I − Ā1 − Ā0G)⁻¹. The third return is the final
// stochasticity defect of G (the convergence metric).
func rLogReduction(a0, a1, a2 *linalg.Dense, tol float64) (*linalg.Dense, int, float64, error) {
	p := a0.R
	eye := linalg.Eye(p)
	tmp := linalg.NewDense(p, p)

	// H = (I − A1)⁻¹; U = H·A0 (up), L = H·A2 (down).
	linalg.Sub(tmp, eye, a1)
	f, err := linalg.Factor(tmp)
	if err != nil {
		return nil, 0, math.Inf(1), fmt.Errorf("solver: qbd I−A1 singular: %w", err)
	}
	u := f.Solve(a0)
	l := f.Solve(a2)

	g := l.Clone()
	t := u.Clone()
	m1 := linalg.NewDense(p, p)
	m2 := linalg.NewDense(p, p)
	iters := 0
	maxDef := math.Inf(1)
	for it := 0; it < 64; it++ {
		iters = it + 1
		// D = U·L + L·U.
		linalg.Mul(m1, u, l)
		linalg.MulAdd(m1, l, u)
		linalg.Sub(m1, eye, m1)
		fD, err := linalg.Factor(m1)
		if err != nil {
			return nil, iters, maxDef, fmt.Errorf("solver: qbd I−D singular: %w", err)
		}
		// U' = (I−D)⁻¹U², L' = (I−D)⁻¹L².
		linalg.Mul(m2, u, u)
		u2 := fD.Solve(m2)
		linalg.Mul(m2, l, l)
		l2 := fD.Solve(m2)
		// G += T·L'.
		linalg.Mul(m2, t, l2)
		linalg.Add(g, g, m2)
		// T = T·U'.
		linalg.Mul(m2, t, u2)
		t.Copy(m2)
		u, l = u2, l2
		// Converged when G is (numerically) stochastic or T vanished.
		maxDef = 0.0
		for _, s := range g.RowSums() {
			if d := math.Abs(1 - s); d > maxDef {
				maxDef = d
			}
		}
		if maxDef < tol || t.MaxAbs() < tol {
			break
		}
	}
	// R = A0·(I − A1 − A0·G)⁻¹.
	linalg.Mul(m1, a0, g)
	linalg.Add(m1, m1, a1)
	linalg.Sub(m1, linalg.Eye(p), m1)
	fR, err := linalg.Factor(m1)
	if err != nil {
		return nil, iters, maxDef, fmt.Errorf("solver: qbd R conversion singular: %w", err)
	}
	r := fR.SolveRight(a0)
	return r, iters, maxDef, nil
}

// rFunctional runs the naive fixed-point iteration for R.
func rFunctional(a0, a1, a2 *linalg.Dense, tol float64) (*linalg.Dense, int, float64, error) {
	p := a0.R
	r := linalg.NewDense(p, p)
	next := linalg.NewDense(p, p)
	r2 := linalg.NewDense(p, p)
	diff := linalg.NewDense(p, p)
	d := math.Inf(1)
	for it := 1; it <= 200000; it++ {
		// next = A0 + R·A1 + R²·A2.
		next.Copy(a0)
		linalg.MulAdd(next, r, a1)
		linalg.Mul(r2, r, r)
		linalg.MulAdd(next, r2, a2)
		linalg.Sub(diff, next, r)
		d = diff.MaxAbs()
		r.Copy(next)
		if d < tol {
			return r, it, d, nil
		}
	}
	return nil, 200000, d, fmt.Errorf("solver: qbd functional iteration: %w", haperr.ErrNotConverged)
}

// solveBoundary solves the level-0/level-1 balance equations with the CTMC
// blocks and normalises.
func (qb *QBD) solveBoundary(q *linalg.Dense, _ float64) error {
	p := qb.P
	// CTMC blocks.
	b00 := q.Clone() // level 0 local: Q − diag(rates)
	a0 := linalg.NewDense(p, p)
	for i := 0; i < p; i++ {
		b00.Set(i, i, b00.At(i, i)-qb.Rates[i])
		a0.Set(i, i, qb.Rates[i])
	}
	a1 := q.Clone() // repeating local: Q − diag(rates) − μI
	for i := 0; i < p; i++ {
		a1.Set(i, i, a1.At(i, i)-qb.Rates[i]-qb.Mu)
	}
	// A1 + R·A2 with A2 = μI → A1 + μR.
	ra2 := qb.R.Clone()
	ra2.Scale(qb.Mu)
	linalg.Add(ra2, ra2, a1)

	// (I − R)⁻¹·1 for the normalisation.
	eye := linalg.Eye(p)
	imr := linalg.NewDense(p, p)
	linalg.Sub(imr, eye, qb.R)
	fI, err := linalg.Factor(imr)
	if err != nil {
		return fmt.Errorf("solver: qbd I−R singular: %w", err)
	}
	ones := make([]float64, p)
	for i := range ones {
		ones[i] = 1
	}
	sOnes := fI.SolveVec(ones) // (I−R)⁻¹·1 (column)

	// Assemble Mᵀ·v = e_last where M has the balance columns with the last
	// column replaced by the normalisation coefficients.
	n := 2 * p
	mt := linalg.NewDense(n, n)
	// Column block structure of M (before transpose):
	//   M[0:p, 0:p] = B00, M[0:p, p:2p] = A0 (service-free level-0 rows)
	//   M[p:2p, 0:p] = μI,  M[p:2p, p:2p] = A1 + μR
	// Transposed into mt rows.
	for i := 0; i < p; i++ {
		for j := 0; j < p; j++ {
			mt.Set(j, i, b00.At(i, j))  // (Mᵀ)[j][i] = M[i][j]
			mt.Set(p+j, i, a0.At(i, j)) // upper-right block
			mt.Set(p+j, p+i, ra2.At(i, j))
		}
		mt.Set(i, p+i, qb.Mu) // lower-left μI transposed
	}
	// Replace the last equation (row of Mᵀ = column of M) with the
	// normalisation: π₀·1 + π₁·(I−R)⁻¹·1 = 1.
	last := n - 1
	for i := 0; i < p; i++ {
		mt.Set(last, i, 1)
		mt.Set(last, p+i, sOnes[i])
	}
	rhs := make([]float64, n)
	rhs[last] = 1
	fM, err := linalg.Factor(mt)
	if err != nil {
		return fmt.Errorf("solver: qbd boundary singular: %w", err)
	}
	v := fM.SolveVec(rhs)
	qb.Pi0 = v[:p]
	qb.Pi1 = v[p:]
	// Clip tiny negatives from round-off.
	for i := range qb.Pi0 {
		if qb.Pi0[i] < 0 && qb.Pi0[i] > -1e-12 {
			qb.Pi0[i] = 0
		}
		if qb.Pi1[i] < 0 && qb.Pi1[i] > -1e-12 {
			qb.Pi1[i] = 0
		}
	}
	qb.SumPi = fI.SolveVecLeft(qb.Pi1)
	return nil
}

// MeanRate returns λ̄ = Σ_z π_z·rates.
func (qb *QBD) MeanRate() float64 {
	var s float64
	for i := range qb.Rates {
		s += (qb.Pi0[i] + qb.SumPi[i]) * qb.Rates[i]
	}
	return s
}

// Sigma returns the probability an arrival finds the server busy.
func (qb *QBD) Sigma() float64 {
	var busy float64
	for i := range qb.Rates {
		busy += qb.SumPi[i] * qb.Rates[i]
	}
	return busy / qb.MeanRate()
}

// MeanQueue returns N̄ = π₁(I−R)⁻²·1.
func (qb *QBD) MeanQueue() float64 {
	p := qb.P
	imr := linalg.NewDense(p, p)
	linalg.Sub(imr, linalg.Eye(p), qb.R)
	f, err := linalg.Factor(imr)
	if err != nil {
		return math.NaN()
	}
	w := f.SolveVecLeft(qb.Pi1) // π₁(I−R)⁻¹
	w = f.SolveVecLeft(w)       // π₁(I−R)⁻²
	var s float64
	for _, v := range w {
		s += v
	}
	return s
}

// QueueDist returns the marginal queue-length probabilities P(z) for
// z = 0..maxZ.
func (qb *QBD) QueueDist(maxZ int) []float64 {
	out := make([]float64, maxZ+1)
	for _, v := range qb.Pi0 {
		out[0] += v
	}
	cur := append([]float64(nil), qb.Pi1...)
	for z := 1; z <= maxZ; z++ {
		var s float64
		for _, v := range cur {
			s += v
		}
		out[z] = s
		if z < maxZ {
			cur = linalg.VecMat(cur, qb.R)
		}
	}
	return out
}

// Solution0MG solves HAP/M/1 by the matrix-geometric method on the
// symmetric (x, y) modulator: the modern equivalent of the paper's
// Solution 0 with the queue dimension handled exactly. Bounds truncate
// only the modulator.
func Solution0MG(m *core.Model, opts *Options) (Result, error) {
	start := time.Now()
	if opts == nil {
		opts = &Options{}
	}
	if err := m.Validate(); err != nil {
		return Result{}, err
	}
	muMsg, ok := m.UniformServiceRate()
	if !ok {
		return Result{}, fmt.Errorf("solver: matrix-geometric solver requires a uniform message service rate")
	}
	var proc *mmpp.MMPP
	var err error
	if sym, _, _, _, _ := m.Symmetric(); sym {
		mu, ma := opts.bounds(m)
		proc, _, err = mmpp.FromHAPSimplified(m, mu, ma)
	} else {
		mu, _ := opts.bounds(m)
		per := make([]int, len(m.Apps))
		for i := range per {
			per[i] = perTypeBound(m, i, opts.MaxApps)
		}
		proc, _, err = mmpp.FromHAP(m, mu, per)
	}
	if err != nil {
		return Result{}, err
	}
	return solveQBDResult(proc, muMsg, opts, start, "solution0-mg")
}

// SolveMMPPQueue solves an arbitrary MMPP/M/1 queue by the same machinery,
// used for the 2-state comparator and ON-OFF models.
func SolveMMPPQueue(proc *mmpp.MMPP, muMsg float64, opts *Options) (Result, error) {
	if opts == nil {
		opts = &Options{}
	}
	return solveQBDResult(proc, muMsg, opts, time.Now(), "mmpp-qbd")
}

func solveQBDResult(proc *mmpp.MMPP, muMsg float64, opts *Options, start time.Time, method string) (Result, error) {
	r, err := solveQBD(proc, muMsg, opts, start, method)
	recordSolve(method, start, r, err)
	return r, err
}

func solveQBD(proc *mmpp.MMPP, muMsg float64, opts *Options, start time.Time, method string) (Result, error) {
	qb, err := SolveQBD(proc, muMsg, RMethodLogReduction, opts.Tol)
	if err != nil {
		return Result{}, err
	}
	lam := qb.MeanRate()
	nbar := qb.MeanQueue()
	return Result{
		Method:     method,
		MeanRate:   lam,
		Rho:        lam / muMsg,
		Sigma:      qb.Sigma(),
		Delay:      nbar / lam,
		QueueLen:   nbar,
		Iterations: qb.LRIter,
		Residual:   qb.Residual,
		Converged:  true,
		States:     qb.P,
		Elapsed:    time.Since(start),
	}, nil
}
