package solver

import (
	"errors"
	"fmt"
	"time"

	"hap/internal/core"
	"hap/internal/markov"
	"hap/internal/mmpp"
)

// Solution0 solves the joint modulator ⊗ queue chain of Section 3.2.1 by
// Gauss–Seidel sweeps of the balance equations — the paper's brute-force
// Equation 1 iteration. For symmetric models the modulator is the
// 2-dimensional (x, y) chain of Figure 7, so the full state is (x, y, z);
// general models use Solution0General.
//
// The queue dimension needs a much larger bound than the populations (the
// paper makes the same observation); the tail is heavy because high-y
// states are locally unstable. Unless disabled, the iteration warm-starts
// from the product guess π_modulator(x,y)·Geometric(σ₁)(z) with σ₁ from
// Solution 1, which cuts the sweep count by orders of magnitude.
func Solution0(m *core.Model, opts *Options) (Result, error) {
	start := time.Now()
	r, err := solution0(m, opts)
	recordSolve("solution0", start, r, err)
	return r, err
}

func solution0(m *core.Model, opts *Options) (Result, error) {
	start := time.Now()
	if opts == nil {
		opts = &Options{}
	}
	if err := m.Validate(); err != nil {
		return Result{}, err
	}
	muMsg, ok := m.UniformServiceRate()
	if !ok {
		return Result{}, fmt.Errorf("solver: Solution 0 requires a uniform message service rate")
	}
	sym, lambdaApp, muApp, lambdaMsg, fanout := m.Symmetric()
	if !sym {
		return Result{}, fmt.Errorf("solver: Solution 0 requires a symmetric model; use Solution0General for small general models")
	}
	maxU, maxA := opts.bounds(m)
	lamBar := m.MeanRate()
	maxZ := opts.maxQueue(lamBar, muMsg)

	l := float64(len(m.Apps))
	perApp := float64(fanout) * lambdaMsg

	lat := markov.NewLattice(maxU+1, maxA+1, maxZ+1)
	chain := markov.NewChain(lat.N())
	for s := 0; s < lat.N(); s++ {
		// The build alone takes seconds on multi-million-state lattices, so
		// poll the context here too, not only inside the sweeps.
		if s&0xFFFF == 0 {
			if err := opts.ctx().Err(); err != nil {
				return Result{}, fmt.Errorf("solver: solution 0: %w", err)
			}
		}
		x, y, z := lat.At(s, 0), lat.At(s, 1), lat.At(s, 2)
		if to, ok := lat.Shift(s, 0, +1); ok {
			chain.Add(s, to, m.Lambda)
		}
		if to, ok := lat.Shift(s, 0, -1); ok {
			chain.Add(s, to, float64(x)*m.Mu)
		}
		if to, ok := lat.Shift(s, 1, +1); ok && x > 0 {
			chain.Add(s, to, float64(x)*l*lambdaApp)
		}
		if to, ok := lat.Shift(s, 1, -1); ok {
			chain.Add(s, to, float64(y)*muApp)
		}
		// Message arrivals and departures couple the modulator to z.
		if to, ok := lat.Shift(s, 2, +1); ok && y > 0 {
			chain.Add(s, to, float64(y)*perApp)
		}
		if to, ok := lat.Shift(s, 2, -1); ok {
			_ = z
			chain.Add(s, to, muMsg)
		}
	}

	sopts := &markov.SteadyOptions{Tol: opts.tol(), MaxIter: opts.maxIter(), Ctx: opts.Ctx}
	if !opts.DisableWarmStart {
		if pi0, err := warmStart(m, lat, maxU, maxA, muMsg, opts); err == nil {
			sopts.Pi0 = pi0
		}
	}
	pi, stats, solveErr := chain.GaussSeidel(sopts)
	if solveErr != nil {
		if ctxErr := opts.ctx().Err(); ctxErr != nil {
			// A cancelled solve did not "fail to converge"; report the
			// cancellation and do not fall back.
			return Result{}, fmt.Errorf("solver: solution 0: %w", solveErr)
		}
		if errors.Is(solveErr, markov.ErrNotConverged) && !opts.DisableFallback {
			// Budget exhausted: degrade to the closed-form Solution 2 and
			// flag it, so long sweeps near ρ→1 yield a usable answer
			// instead of an error (the paper's own two-week runs were
			// budget bound too). The fallback keeps its own diagnostics.
			if fb, fbErr := solution2(m, opts); fbErr == nil {
				fb.Method = "solution0-fallback-solution2"
				fb.Degraded = true
				fb.Elapsed = time.Since(start)
				return fb, nil
			}
		}
		// Fallback disabled or impossible: report the partial iterate with
		// the error so callers can see how far the sweep got.
		solveErr = fmt.Errorf("solver: solution 0: %w", solveErr)
	}

	// λ̄ = Σ π·R, N̄ = Σ π·z, T = N̄/λ̄ (Little), and σ is the probability
	// an arrival finds the server busy: arrivals occur at rate R(state), so
	// σ = Σ_{z>=1} π·R / λ̄.
	var meanRate, meanN, busyWeighted float64
	for s, p := range pi {
		if p == 0 {
			continue
		}
		y, z := lat.At(s, 1), lat.At(s, 2)
		r := float64(y) * perApp
		meanRate += p * r
		meanN += p * float64(z)
		if z >= 1 {
			busyWeighted += p * r
		}
	}
	res := Result{
		Method:     "solution0",
		MeanRate:   meanRate,
		Rho:        meanRate / muMsg,
		Sigma:      busyWeighted / meanRate,
		Delay:      meanN / meanRate,
		QueueLen:   meanN,
		Iterations: stats.Iterations,
		Residual:   stats.Residual,
		Converged:  stats.Converged,
		States:     lat.N(),
		Elapsed:    time.Since(start),
	}
	return res, solveErr
}

// warmStart builds the product initial guess π(x,y)·(1−σ)σ^z.
func warmStart(m *core.Model, lat *markov.Lattice, maxU, maxA int, muMsg float64, opts *Options) ([]float64, error) {
	proc, modLat, err := mmpp.FromHAPSimplified(m, maxU, maxA)
	if err != nil {
		return nil, err
	}
	piMod, err := proc.Stationary()
	if err != nil {
		return nil, err
	}
	s1, err := solution1(m, &Options{MaxUsers: maxU, MaxApps: maxA, Tol: 1e-8, Ctx: opts.Ctx})
	if err != nil {
		return nil, err
	}
	sig := s1.Sigma
	if sig <= 0 || sig >= 1 {
		sig = s1.Rho
	}
	maxZ := lat.Dims[2] - 1
	geo := make([]float64, maxZ+1)
	g := 1 - sig
	for z := 0; z <= maxZ; z++ {
		geo[z] = g
		g *= sig
	}
	pi0 := make([]float64, lat.N())
	for sMod, p := range piMod {
		if p == 0 {
			continue
		}
		x, y := modLat.At(sMod, 0), modLat.At(sMod, 1)
		base := lat.Index(x, y, 0)
		for z := 0; z <= maxZ; z++ {
			pi0[base+z] = p * geo[z]
		}
	}
	return pi0, nil
}

// Solution0General solves the full (l+2)-dimensional joint chain
// (x, y₁..y_l, z) for a general (possibly asymmetric) model. The state
// space explodes with l; this is intended for small validation models, as
// in the paper's own framing.
func Solution0General(m *core.Model, maxUsers int, maxAppsPerType []int, maxQueue int, opts *Options) (Result, error) {
	start := time.Now()
	r, err := solution0General(m, maxUsers, maxAppsPerType, maxQueue, opts)
	recordSolve("solution0-general", start, r, err)
	return r, err
}

func solution0General(m *core.Model, maxUsers int, maxAppsPerType []int, maxQueue int, opts *Options) (Result, error) {
	start := time.Now()
	if opts == nil {
		opts = &Options{}
	}
	if err := m.Validate(); err != nil {
		return Result{}, err
	}
	muMsg, ok := m.UniformServiceRate()
	if !ok {
		return Result{}, fmt.Errorf("solver: Solution 0 requires a uniform message service rate")
	}
	l := len(m.Apps)
	if len(maxAppsPerType) != l {
		return Result{}, fmt.Errorf("solver: need %d app bounds, got %d", l, len(maxAppsPerType))
	}
	if maxQueue < 1 {
		maxQueue = opts.maxQueue(m.MeanRate(), muMsg)
	}
	dims := make([]int, l+2)
	dims[0] = maxUsers + 1
	for i, b := range maxAppsPerType {
		dims[i+1] = b + 1
	}
	dims[l+1] = maxQueue + 1
	lat := markov.NewLattice(dims...)
	chain := markov.NewChain(lat.N())
	bigLambda := make([]float64, l)
	for i, a := range m.Apps {
		bigLambda[i] = a.TotalMessageRate()
	}
	coords := make([]int, l+2)
	for s := 0; s < lat.N(); s++ {
		if s&0xFFFF == 0 {
			if err := opts.ctx().Err(); err != nil {
				return Result{}, fmt.Errorf("solver: solution 0 general: %w", err)
			}
		}
		lat.Coords(s, coords)
		x := coords[0]
		if to, ok := lat.Shift(s, 0, +1); ok {
			chain.Add(s, to, m.Lambda)
		}
		if to, ok := lat.Shift(s, 0, -1); ok {
			chain.Add(s, to, float64(x)*m.Mu)
		}
		var rate float64
		for i := 0; i < l; i++ {
			yi := coords[i+1]
			if to, ok := lat.Shift(s, i+1, +1); ok && x > 0 {
				chain.Add(s, to, float64(x)*m.Apps[i].Lambda)
			}
			if to, ok := lat.Shift(s, i+1, -1); ok {
				chain.Add(s, to, float64(yi)*m.Apps[i].Mu)
			}
			rate += float64(yi) * bigLambda[i]
		}
		if to, ok := lat.Shift(s, l+1, +1); ok && rate > 0 {
			chain.Add(s, to, rate)
		}
		if to, ok := lat.Shift(s, l+1, -1); ok {
			chain.Add(s, to, muMsg)
		}
	}
	pi, stats, err := chain.GaussSeidel(&markov.SteadyOptions{Tol: opts.tol(), MaxIter: opts.maxIter(), Ctx: opts.Ctx})
	if err != nil {
		return Result{}, fmt.Errorf("solver: solution 0 general: %w", err)
	}
	var meanRate, meanN, busyWeighted float64
	for s, p := range pi {
		if p == 0 {
			continue
		}
		lat.Coords(s, coords)
		var r float64
		for i := 0; i < l; i++ {
			r += float64(coords[i+1]) * bigLambda[i]
		}
		z := coords[l+1]
		meanRate += p * r
		meanN += p * float64(z)
		if z >= 1 {
			busyWeighted += p * r
		}
	}
	return Result{
		Method:     "solution0-general",
		MeanRate:   meanRate,
		Rho:        meanRate / muMsg,
		Sigma:      busyWeighted / meanRate,
		Delay:      meanN / meanRate,
		QueueLen:   meanN,
		Iterations: stats.Iterations,
		Residual:   stats.Residual,
		Converged:  stats.Converged,
		States:     lat.N(),
		Elapsed:    time.Since(start),
	}, nil
}
