package solver

import (
	"fmt"
	"math"

	"hap/internal/core"
	"hap/internal/linalg"
	"hap/internal/mmpp"
)

// This file extends the matrix-geometric solution with the exact sojourn
// (delay) distribution: an arrival that finds z messages in the system
// (including the one in service, whose remaining time is memoryless)
// waits through z+1 exponential service stages, so
//
//	P(T > y) = Σ_z P_arr(z) · P(Erlang(z+1, μ) > y)
//
// with the arrival-weighted queue distribution P_arr(z) ∝ π_z·rates
// (PASTA does not hold — arrivals cluster into busy states, which is the
// whole point of the model).

// DelayDistribution is the exact sojourn-time law of a solved QBD.
type DelayDistribution struct {
	mu   float64
	parr []float64 // arrival-weighted P(z messages seen), z = 0..len-1
}

// DelayDistribution computes the arrival-weighted queue-length law up to
// the point where the residual tail mass drops below tailTol (default
// 1e-10).
func (qb *QBD) DelayDistribution(tailTol float64) *DelayDistribution {
	if tailTol <= 0 {
		tailTol = 1e-10
	}
	lam := qb.MeanRate()
	var parr []float64
	// z = 0 term.
	var w0 float64
	for i, p := range qb.Pi0 {
		w0 += p * qb.Rates[i]
	}
	parr = append(parr, w0/lam)
	// z >= 1 terms: π_z = π₁ R^{z−1}.
	cur := append([]float64(nil), qb.Pi1...)
	total := parr[0]
	for z := 1; z < 1<<20; z++ {
		var w float64
		for i, p := range cur {
			w += p * qb.Rates[i]
		}
		w /= lam
		parr = append(parr, w)
		total += w
		if 1-total < tailTol {
			break
		}
		cur = linalg.VecMat(cur, qb.R)
	}
	return &DelayDistribution{mu: qb.Mu, parr: parr}
}

// CCDF returns P(sojourn > y).
func (d *DelayDistribution) CCDF(y float64) float64 {
	if y <= 0 {
		return 1
	}
	// Erlang(k, μ) tail = P(Poisson(μy) < k); accumulate the Poisson pmf
	// once and reuse across k.
	x := d.mu * y
	pmf := math.Exp(-x)
	cdfPois := pmf // P(N <= 0)
	var ccdf float64
	for z, p := range d.parr {
		// P(Erlang(z+1) > y) = P(Poisson(x) <= z) = cdfPois at z.
		ccdf += p * cdfPois
		// Advance Poisson cdf to z+1 for the next term.
		pmf *= x / float64(z+1)
		cdfPois += pmf
		if cdfPois > 1 { // guard accumulation drift
			cdfPois = 1
		}
	}
	return ccdf
}

// Mean returns E[T] = Σ P_arr(z)·(z+1)/μ; it equals N̄/λ̄ by Little up to
// the tail truncation.
func (d *DelayDistribution) Mean() float64 {
	var m float64
	for z, p := range d.parr {
		m += p * float64(z+1)
	}
	return m / d.mu
}

// Quantile returns the p-quantile of the sojourn time by bisection on the
// CCDF.
func (d *DelayDistribution) Quantile(p float64) float64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return math.Inf(1)
	}
	target := 1 - p
	lo, hi := 0.0, 10*d.Mean()+10/d.mu
	for d.CCDF(hi) > target {
		hi *= 2
	}
	for i := 0; i < 200 && hi-lo > 1e-12*hi; i++ {
		mid := (lo + hi) / 2
		if d.CCDF(mid) > target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// SeenQueue returns the arrival-weighted probability of finding exactly z
// messages in system (0 beyond the computed tail).
func (d *DelayDistribution) SeenQueue(z int) float64 {
	if z < 0 || z >= len(d.parr) {
		return 0
	}
	return d.parr[z]
}

// Len returns the number of retained queue-length terms.
func (d *DelayDistribution) Len() int { return len(d.parr) }

// DelayQuantiles computes exact sojourn-time quantiles of HAP/M/1 via the
// matrix-geometric solution (see Solution0MG for the bounds semantics).
func DelayQuantiles(m *core.Model, opts *Options, ps ...float64) ([]float64, error) {
	if opts == nil {
		opts = &Options{}
	}
	muMsg, ok := m.UniformServiceRate()
	if !ok {
		return nil, fmt.Errorf("solver: delay quantiles require a uniform message service rate")
	}
	var proc *mmpp.MMPP
	var err error
	if sym, _, _, _, _ := m.Symmetric(); sym {
		mu, ma := opts.bounds(m)
		proc, _, err = mmpp.FromHAPSimplified(m, mu, ma)
	} else {
		mu, _ := opts.bounds(m)
		per := make([]int, len(m.Apps))
		for i := range per {
			per[i] = perTypeBound(m, i, opts.MaxApps)
		}
		proc, _, err = mmpp.FromHAP(m, mu, per)
	}
	if err != nil {
		return nil, err
	}
	qb, err := SolveQBD(proc, muMsg, RMethodLogReduction, opts.Tol)
	if err != nil {
		return nil, err
	}
	d := qb.DelayDistribution(1e-10)
	out := make([]float64, len(ps))
	for i, p := range ps {
		out[i] = d.Quantile(p)
	}
	return out, nil
}
