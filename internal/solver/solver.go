// Package solver implements the paper's three algorithmic solutions for
// the HAP/M/1 queue (Section 3.2):
//
//   - Solution 0 — brute-force iterative steady state of the joint
//     modulator ⊗ queue-length chain. Exact up to truncation, slow; the
//     paper ran it for two weeks on a SUN-4/280. It is the only solution
//     that preserves interarrival correlation.
//   - Solution 1 — steady state of the modulator only; the interarrival
//     time becomes an arrival-rate-weighted mixture of exponentials whose
//     Laplace transform is exact, and the queue is solved as G/M/1 via the
//     σ fixed point.
//   - Solution 2 — the same G/M/1 reduction with closed-form M/M/∞
//     conditioning (package core's Interarrival), no chain solve at all.
//
// All three return the shared Result type so experiments can compare them
// directly.
package solver

import (
	"context"
	"fmt"
	"math"
	"time"

	"hap/internal/core"
	"hap/internal/gm1"
	"hap/internal/haperr"
	"hap/internal/mmpp"
)

// Result reports a solved HAP/M/1 queue.
type Result struct {
	Method     string        // "solution0", "solution1", "solution2", ...
	MeanRate   float64       // λ̄
	Rho        float64       // λ̄/μ''
	Sigma      float64       // P(arrival finds server busy)
	Delay      float64       // mean message sojourn time T
	QueueLen   float64       // mean number in system N̄
	Iterations int           // solver iterations
	Residual   float64       // final convergence metric of the inner iteration
	Converged  bool          // inner iteration met its tolerance
	Degraded   bool          // requested method exhausted its budget; a fallback produced this result
	States     int           // chain states solved (0 for Solution 2)
	Elapsed    time.Duration // wall-clock cost
}

func (r Result) String() string {
	flag := ""
	if r.Degraded {
		flag = " DEGRADED"
	}
	return fmt.Sprintf("%s{λ̄=%.4g ρ=%.3g σ=%.4g T=%.4g N̄=%.4g states=%d iters=%d residual=%.2g %v%s}",
		r.Method, r.MeanRate, r.Rho, r.Sigma, r.Delay, r.QueueLen, r.States, r.Iterations, r.Residual,
		r.Elapsed.Round(time.Millisecond), flag)
}

// Diag returns the solve diagnostics in the shared form.
func (r Result) Diag() haperr.Diag {
	d := haperr.Diag{Iterations: r.Iterations, Residual: r.Residual, Converged: r.Converged}
	if r.Degraded {
		d.Fallback = r.Method
	}
	return d
}

// Options tunes the solvers. The zero value picks sensible defaults.
type Options struct {
	// MaxUsers / MaxApps truncate the modulator lattice (defaults from
	// mmpp.DefaultBounds).
	MaxUsers, MaxApps int
	// MaxQueue truncates the queue-length dimension of Solution 0
	// (default 10·μ''/(μ''−λ̄), floored at 200).
	MaxQueue int
	// Tol is the steady-state convergence tolerance (default 1e-9).
	Tol float64
	// MaxIter is the sweep budget (default 20000).
	MaxIter int
	// SigmaMethod selects the G/M/1 σ solver for Solutions 1 and 2.
	SigmaMethod gm1.Method
	// WarmSigma, when inside (0, 1), seeds the G/M/1 σ bisection of
	// Solutions 1 and 2 with a previous solve's σ — the continuous
	// re-solve loop (ctrl's refit cycle, admission's bisections) moves σ
	// a little per call, so the warm bracket cuts the transform
	// evaluations without affecting the root. See gm1.Options.WarmSigma.
	WarmSigma float64
	// WarmStart seeds Solution 0 with the modulator law × geometric queue
	// product guess (default true via warmStart()).
	DisableWarmStart bool
	// DisableFallback stops Solution 0 from degrading to Solution 2 when
	// its sweep budget runs out; the not-converged error is returned with
	// the partial iterate's statistics instead.
	DisableFallback bool
	// Ctx, when non-nil, bounds the solve: it is polled inside the chain
	// sweeps and σ iterations, and a cancelled context aborts with the
	// context error. Nil means context.Background().
	Ctx context.Context
}

// ctx returns the configured context or Background.
func (o *Options) ctx() context.Context {
	if o.Ctx != nil {
		return o.Ctx
	}
	return context.Background()
}

func (o *Options) bounds(m *core.Model) (int, int) {
	u, a := o.MaxUsers, o.MaxApps
	if u <= 0 || a <= 0 {
		du, da := mmpp.DefaultBounds(m, 8)
		if u <= 0 {
			u = du
		}
		if a <= 0 {
			a = da
		}
	}
	return u, a
}

func (o *Options) tol() float64 {
	if o.Tol > 0 {
		return o.Tol
	}
	return 1e-9
}

func (o *Options) maxIter() int {
	if o.MaxIter > 0 {
		return o.MaxIter
	}
	return 20000
}

func (o *Options) maxQueue(meanRate, muMsg float64) int {
	if o.MaxQueue > 0 {
		return o.MaxQueue
	}
	rho := meanRate / muMsg
	z := int(10 / (1 - rho))
	if z < 200 {
		z = 200
	}
	return z
}

// Solution2 solves HAP/M/1 with the closed-form interarrival law: the
// fastest solution ("5 to 7 minutes" in the paper, microseconds here).
func Solution2(m *core.Model, opts *Options) (Result, error) {
	start := time.Now()
	r, err := solution2(m, opts)
	recordSolve("solution2", start, r, err)
	return r, err
}

// solution2 is the uninstrumented core, also used as the Solution 0
// fallback so internal reuse does not inflate the solve counters.
func solution2(m *core.Model, opts *Options) (Result, error) {
	start := time.Now()
	if opts == nil {
		opts = &Options{}
	}
	if err := m.Validate(); err != nil {
		return Result{}, err
	}
	muMsg, ok := m.UniformServiceRate()
	if !ok {
		return Result{}, fmt.Errorf("solver: Solution 2 requires a uniform message service rate")
	}
	ia := m.Interarrival()
	lam := ia.MeanRate()
	res, err := gm1.Solve(ia.Laplace, lam, muMsg, &gm1.Options{Method: opts.SigmaMethod, Tol: opts.tol(), WarmSigma: opts.WarmSigma, Ctx: opts.Ctx})
	if err != nil {
		return Result{}, fmt.Errorf("solver: solution 2: %w", err)
	}
	return Result{
		Method:     "solution2",
		MeanRate:   lam,
		Rho:        res.Rho,
		Sigma:      res.Sigma,
		Delay:      res.Delay,
		QueueLen:   res.QueueLen,
		Iterations: res.Iterations,
		Residual:   res.Residual,
		Converged:  res.Converged,
		Elapsed:    time.Since(start),
	}, nil
}

// Solution2Bounded is Solution 2 with the user and application populations
// capped (Figure 20's admission-control variant): the mixture over
// truncated-Poisson populations has an exact Laplace transform.
func Solution2Bounded(m *core.Model, maxUsers, maxApps int, opts *Options) (Result, error) {
	start := time.Now()
	r, err := solution2Bounded(m, maxUsers, maxApps, opts)
	recordSolve("solution2-bounded", start, r, err)
	return r, err
}

func solution2Bounded(m *core.Model, maxUsers, maxApps int, opts *Options) (Result, error) {
	start := time.Now()
	if opts == nil {
		opts = &Options{}
	}
	if err := m.Validate(); err != nil {
		return Result{}, err
	}
	muMsg, ok := m.UniformServiceRate()
	if !ok {
		return Result{}, fmt.Errorf("solver: bounded Solution 2 requires a uniform message service rate")
	}
	mix, err := m.BoundedMixture(maxUsers, maxApps)
	if err != nil {
		return Result{}, err
	}
	res, err := gm1.Solve(mix.Laplace, mix.MeanRate, muMsg, &gm1.Options{Method: opts.SigmaMethod, Tol: opts.tol(), WarmSigma: opts.WarmSigma, Ctx: opts.Ctx})
	if err != nil {
		return Result{}, fmt.Errorf("solver: bounded solution 2: %w", err)
	}
	return Result{
		Method:     "solution2-bounded",
		MeanRate:   mix.MeanRate,
		Rho:        res.Rho,
		Sigma:      res.Sigma,
		Delay:      res.Delay,
		QueueLen:   res.QueueLen,
		Iterations: res.Iterations,
		Residual:   res.Residual,
		Converged:  res.Converged,
		States:     len(mix.Weights),
		Elapsed:    time.Since(start),
	}, nil
}

// Solution1 solves HAP/M/1 by computing the modulator's stationary law on
// a truncated lattice and feeding the exact mixture Laplace transform to
// the σ fixed point. Symmetric models use the 2-dimensional chain; general
// models the full per-type lattice (keep the bounds small there).
func Solution1(m *core.Model, opts *Options) (Result, error) {
	start := time.Now()
	r, err := solution1(m, opts)
	recordSolve("solution1", start, r, err)
	return r, err
}

// solution1 is the uninstrumented core, also used by the Solution 0 warm
// start so internal reuse does not inflate the solve counters.
func solution1(m *core.Model, opts *Options) (Result, error) {
	start := time.Now()
	if opts == nil {
		opts = &Options{}
	}
	if err := m.Validate(); err != nil {
		return Result{}, err
	}
	muMsg, ok := m.UniformServiceRate()
	if !ok {
		return Result{}, fmt.Errorf("solver: Solution 1 requires a uniform message service rate")
	}
	var proc *mmpp.MMPP
	var err error
	if sym, _, _, _, _ := m.Symmetric(); sym {
		mu, ma := opts.bounds(m)
		proc, _, err = mmpp.FromHAPSimplified(m, mu, ma)
	} else {
		mu, _ := opts.bounds(m)
		per := make([]int, len(m.Apps))
		for i := range per {
			per[i] = perTypeBound(m, i, opts.MaxApps)
		}
		proc, _, err = mmpp.FromHAP(m, mu, per)
	}
	if err != nil {
		return Result{}, err
	}
	weights, rates, lam, err := proc.InterarrivalMixtureCtx(opts.ctx())
	if err != nil {
		return Result{}, fmt.Errorf("solver: solution 1 modulator: %w", err)
	}
	laplace := func(s float64) float64 {
		var v float64
		for i, w := range weights {
			v += w * rates[i] / (rates[i] + s)
		}
		return v
	}
	res, err := gm1.Solve(laplace, lam, muMsg, &gm1.Options{Method: opts.SigmaMethod, Tol: opts.tol(), WarmSigma: opts.WarmSigma, Ctx: opts.Ctx})
	if err != nil {
		return Result{}, fmt.Errorf("solver: solution 1: %w", err)
	}
	return Result{
		Method:     "solution1",
		MeanRate:   lam,
		Rho:        res.Rho,
		Sigma:      res.Sigma,
		Delay:      res.Delay,
		QueueLen:   res.QueueLen,
		Iterations: res.Iterations,
		Residual:   res.Residual,
		Converged:  res.Converged,
		States:     proc.Chain.N(),
		Elapsed:    time.Since(start),
	}, nil
}

// perTypeBound sizes the truncation of application type i around its
// stationary marginal (mean ν·aᵢ, variance ≤ mean·(1+aᵢ·ν)), not the
// worst-case user count — the latter cubes the phase count for nothing.
// A positive cap (from Options.MaxApps) overrides the heuristic.
func perTypeBound(m *core.Model, i, capBound int) int {
	if capBound > 0 {
		return capBound
	}
	mean := m.Nu() * m.AppLoad(i)
	std := math.Sqrt(mean * (1 + m.Nu()*m.AppLoad(i)))
	b := int(mean + 8*math.Max(std, 1))
	if b < 6 {
		b = 6
	}
	return b
}

// Poisson returns the M/M/1 baseline at the model's mean rate — the
// comparison the paper draws in every delay figure.
func Poisson(m *core.Model) (Result, error) {
	start := time.Now()
	r, err := poisson(m)
	recordSolve("poisson", start, r, err)
	return r, err
}

func poisson(m *core.Model) (Result, error) {
	if err := m.Validate(); err != nil {
		return Result{}, err
	}
	muMsg, ok := m.UniformServiceRate()
	if !ok {
		return Result{}, fmt.Errorf("solver: Poisson baseline requires a uniform service rate")
	}
	res, err := gm1.MM1(m.MeanRate(), muMsg)
	if err != nil {
		return Result{}, err
	}
	return Result{
		Method:    "poisson",
		MeanRate:  res.Lambda,
		Rho:       res.Rho,
		Sigma:     res.Sigma,
		Delay:     res.Delay,
		QueueLen:  res.QueueLen,
		Converged: true,
	}, nil
}
