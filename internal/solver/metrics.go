package solver

import (
	"context"
	"errors"
	"time"

	"hap/internal/haperr"
	"hap/internal/obs"
)

// Runtime metrics for the analytic layer. Solves are coarse-grained
// (milliseconds to minutes), so per-solve recording — one labelled counter
// bump, an iteration-count add and a timer observation — is free relative
// to the work it measures.
var (
	obsIterations = obs.NewCounter("hap_solver_iterations_total",
		"Inner iterations accumulated across solves: Gauss-Seidel sweeps for Solution 0, sigma fixed-point or bisection steps for Solutions 1 and 2.")
	obsStates = obs.NewGauge("hap_solver_last_states",
		"Chain states of the most recent solve (0 for closed-form Solution 2).")
	obsResidual = obs.NewFloatGauge("hap_solver_last_residual",
		"Final convergence residual of the most recent solve.")
	obsSolves = obs.NewCounterVec("hap_solver_solves_total",
		"Solves by method and outcome (converged, fallback, not_converged, unstable, bad_parameter, cancelled, error).",
		"method", "outcome")
	obsSolveTime = obs.NewTimer("hap_solver_solve",
		"Solve wall time.")
)

// solveOutcome classifies a finished solve for the labelled counter.
func solveOutcome(r Result, err error) string {
	switch {
	case err == nil && r.Degraded:
		return "fallback"
	case err == nil:
		return "converged"
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		return "cancelled"
	case errors.Is(err, haperr.ErrUnstable):
		return "unstable"
	case errors.Is(err, haperr.ErrNotConverged):
		return "not_converged"
	case errors.Is(err, haperr.ErrBadParameter):
		return "bad_parameter"
	default:
		return "error"
	}
}

// recordSolve publishes one finished solve. method names the entry point;
// the result's own Method (which may differ after a fallback) wins when
// set.
func recordSolve(method string, start time.Time, r Result, err error) {
	if r.Method != "" {
		method = r.Method
	}
	obsSolves.With(method, solveOutcome(r, err)).Inc()
	obsIterations.Add(int64(r.Iterations))
	obsStates.Set(int64(r.States))
	obsResidual.Set(r.Residual)
	obsSolveTime.Observe(time.Since(start))
}
