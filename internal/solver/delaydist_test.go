package solver

import (
	"math"
	"testing"

	"hap/internal/markov"
	"hap/internal/mmpp"
	"hap/internal/sim"
)

func TestDelayDistributionMM1Exact(t *testing.T) {
	// For M/M/1 the sojourn is Exp(μ−λ); the QBD machinery must recover it.
	lambda, mu := 8.25, 20.0
	chain := markov.NewChain(1)
	proc := mmpp.New(chain, []float64{lambda})
	qb, err := SolveQBD(proc, mu, RMethodLogReduction, 1e-13)
	if err != nil {
		t.Fatal(err)
	}
	d := qb.DelayDistribution(1e-12)
	rate := mu - lambda
	for _, y := range []float64{0.01, 0.05, 0.1, 0.3, 0.8} {
		want := math.Exp(-rate * y)
		got := d.CCDF(y)
		if math.Abs(got-want)/want > 1e-6 {
			t.Errorf("CCDF(%v) = %v, want %v", y, got, want)
		}
	}
	wantClose(t, "mean", d.Mean(), 1/rate, 1e-6)
	wantClose(t, "median", d.Quantile(0.5), math.Ln2/rate, 1e-6)
}

func TestDelayDistributionConsistentWithMeanQueue(t *testing.T) {
	m2 := mmpp.MMPP2{R0: 2, R1: 18, Q01: 0.05, Q10: 0.15}
	qb, err := SolveQBD(m2.General(), 30, RMethodLogReduction, 1e-13)
	if err != nil {
		t.Fatal(err)
	}
	d := qb.DelayDistribution(1e-12)
	// Little: E[T] from the distribution equals N̄/λ̄.
	wantClose(t, "mean vs little", d.Mean(), qb.MeanQueue()/qb.MeanRate(), 1e-6)
	// P_arr sums to ~1 and CCDF is monotone.
	var sum float64
	for z := 0; z < d.Len(); z++ {
		sum += d.SeenQueue(z)
	}
	wantClose(t, "arrival mass", sum, 1, 1e-8)
	prev := 1.0
	for _, y := range []float64{0, 0.01, 0.1, 0.5, 2} {
		v := d.CCDF(y)
		if v > prev+1e-12 {
			t.Errorf("CCDF not monotone at %v", y)
		}
		prev = v
	}
}

func TestDelayDistributionMatchesSimulatedQuantiles(t *testing.T) {
	m := fastModel()
	bu, ba := mmpp.DefaultBounds(m, 8)
	proc, _, err := mmpp.FromHAPSimplified(m, bu, ba)
	if err != nil {
		t.Fatal(err)
	}
	qb, err := SolveQBD(proc, 50, RMethodLogReduction, 1e-13)
	if err != nil {
		t.Fatal(err)
	}
	d := qb.DelayDistribution(1e-11)

	simRes := sim.RunHAP(m, sim.Config{Horizon: 150000, Seed: 5,
		Measure: sim.MeasureConfig{Warmup: 500, DelayHistBins: 4000, DelayHistMax: 2}})
	for _, p := range []float64{0.5, 0.9, 0.99} {
		qa := d.Quantile(p)
		qs := simRes.Meas.DelayH.Quantile(p)
		if math.Abs(qa-qs)/qa > 0.12 {
			t.Errorf("q%.2f: analytic %v vs simulated %v", p, qa, qs)
		}
	}
}
