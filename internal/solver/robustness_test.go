package solver

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"hap/internal/core"
	"hap/internal/haperr"
	"hap/internal/markov"
)

// Near-critical sweep through the analytic solutions: every clearly stable
// load must converge with plausible diagnostics, and every load at or past
// the reduction's critical point must fail with ErrUnstable rather than a
// bogus result. ρ is steered through the message service rate: λ̄ is 8.25
// for the paper's parameters, so μ” = 8.25/ρ.
//
// The critical band starts slightly BELOW nominal ρ = 1: the rate-weighted
// exponential mixture of Solutions 1/2 overrepresents high-rate modulator
// states at arrival instants, so its renewal rate 1/E[T] (≈ 8.286 here)
// exceeds λ̄ = 8.25, and the G/M/1 reduction goes critical around nominal
// ρ ≈ 0.996. Loads in [0.996, 1] must therefore surface ErrUnstable (σ
// indistinguishable from 1) — never a silently clamped σ or a negative
// delay.
func TestSolverNearCriticalSweep(t *testing.T) {
	meanRate := core.PaperParams(20).MeanRate() // 8.25, independent of μ''
	for _, rho := range []float64{0.95, 0.99, 0.999, 1.0, 1.1} {
		m := core.PaperParams(meanRate / rho)
		for name, solve := range map[string]func() (Result, error){
			"solution1": func() (Result, error) { return Solution1(m, nil) },
			"solution2": func() (Result, error) { return Solution2(m, nil) },
		} {
			res, err := solve()
			if rho >= 0.999 {
				// Inside the reduction's critical band: the only acceptable
				// outcomes are a typed instability error or (for a truncated
				// modulator that sheds a sliver of rate) a converged σ ≈ 1.
				if err != nil {
					if !errors.Is(err, haperr.ErrUnstable) {
						t.Errorf("rho=%v %s: err = %v, want ErrUnstable", rho, name, err)
					}
				} else if rho > 1 {
					t.Errorf("rho=%v %s: solved an unstable queue (σ=%v)", rho, name, res.Sigma)
				} else if res.Sigma < 0.99 || res.Sigma >= 1 {
					t.Errorf("rho=%v %s: σ = %v, want σ ≈ 1 at the critical load", rho, name, res.Sigma)
				}
				continue
			}
			if err != nil {
				t.Errorf("rho=%v %s: %v", rho, name, err)
				continue
			}
			if !res.Converged || res.Iterations <= 0 {
				t.Errorf("rho=%v %s: diagnostics %+v, want converged with iterations", rho, name, res.Diag())
			}
			if res.Delay <= 0 || res.Sigma <= 0 || res.Sigma >= 1 {
				t.Errorf("rho=%v %s: implausible σ=%v delay=%v", rho, name, res.Sigma, res.Delay)
			}
		}
	}
}

// Cancelling mid-solve must abort Solution 0 promptly with the context
// error — not fall back, not return a half-converged answer as success.
func TestSolution0CancelPromptly(t *testing.T) {
	// A near-critical load plus a generous queue bound gives the sweep
	// plenty of work; without cancellation this solve takes many seconds.
	m := core.PaperParams(8.6) // ρ ≈ 0.96
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := Solution0(m, &Options{Ctx: ctx, MaxIter: 1 << 30, MaxQueue: 2000, DisableWarmStart: true})
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed > 5*time.Second {
		t.Errorf("cancellation took %v, want prompt return", elapsed)
	}
	if code := haperr.ExitCode(err); code != haperr.ExitCancelled {
		t.Errorf("exit code %d, want %d", code, haperr.ExitCancelled)
	}
}

// An exhausted sweep budget must degrade to the closed-form Solution 2
// with the Degraded flag — and must not when the fallback is disabled.
func TestSolution0FallbackOnExhaustedBudget(t *testing.T) {
	m := core.PaperParams(20)
	opts := &Options{MaxIter: 2, DisableWarmStart: true}
	res, err := Solution0(m, opts)
	if err != nil {
		t.Fatalf("expected degraded fallback result, got error %v", err)
	}
	if !res.Degraded || res.Method != "solution0-fallback-solution2" {
		t.Errorf("result %+v, want Degraded solution0-fallback-solution2", res)
	}
	if res.Delay <= 0 {
		t.Errorf("fallback delay %v, want positive", res.Delay)
	}
	if d := res.Diag(); d.Fallback == "" {
		t.Errorf("Diag().Fallback empty, want the fallback method recorded")
	}

	strict := &Options{MaxIter: 2, DisableWarmStart: true, DisableFallback: true}
	res, err = Solution0(m, strict)
	if !errors.Is(err, markov.ErrNotConverged) {
		t.Fatalf("err = %v, want ErrNotConverged with fallback disabled", err)
	}
	if res.Iterations != 2 {
		t.Errorf("partial result iterations = %d, want the spent budget (2)", res.Iterations)
	}
	if code := haperr.ExitCode(err); code != haperr.ExitNotConverged {
		t.Errorf("exit code %d, want %d", code, haperr.ExitNotConverged)
	}
}

// Adversarial parameters must surface as errors from every solution, never
// as panics: this is the cmd binaries' no-panic guarantee.
func TestNoPanicOnAdversarialModels(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)
	models := map[string]*core.Model{
		"negative-lambda": core.NewSymmetric(-1, 0.001, 0.01, 0.01, 0.1, 20, 5, 3),
		"zero-mu":         core.NewSymmetric(0.0055, 0, 0.01, 0.01, 0.1, 20, 5, 3),
		"nan-rate":        core.NewSymmetric(0.0055, 0.001, nan, 0.01, 0.1, 20, 5, 3),
		"inf-rate":        core.NewSymmetric(0.0055, 0.001, 0.01, 0.01, inf, 20, 5, 3),
		"nan-service":     core.NewSymmetric(0.0055, 0.001, 0.01, 0.01, 0.1, nan, 5, 3),
		"no-apps":         {Name: "empty", Lambda: 1, Mu: 1},
	}
	for name, m := range models {
		for method, solve := range map[string]func() (Result, error){
			"solution0": func() (Result, error) { return Solution0(m, nil) },
			"solution1": func() (Result, error) { return Solution1(m, nil) },
			"solution2": func() (Result, error) { return Solution2(m, nil) },
			"exact":     func() (Result, error) { return Solution0MG(m, nil) },
			"poisson":   func() (Result, error) { return Poisson(m) },
		} {
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Errorf("%s/%s panicked: %v", name, method, r)
					}
				}()
				if _, err := solve(); err == nil {
					t.Errorf("%s/%s: expected an error", name, method)
				}
			}()
		}
	}
}
