// Package par is the deterministic parallel execution layer behind the
// experiment harness: it fans independent units of work — simulation
// replications, sweep points, solver cells — across a bounded worker pool
// and returns results in index order, so a run's output is bit-identical
// regardless of the worker count or the schedule the OS happens to pick.
//
// Determinism contract: fn(i) must depend only on i (and on immutable
// captured state). Randomised work derives its stream from the index — see
// Replicate, which hands each replication a well-separated dist.SubSeed —
// never from a shared RNG, a global counter, or the wall clock.
package par

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"hap/internal/dist"
)

// Workers normalises a worker-count knob: values <= 0 mean "one worker per
// available CPU" (GOMAXPROCS), and the count is clamped to n so no idle
// goroutines are spawned.
func Workers(workers, n int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// Map runs fn(0..n-1) on up to GOMAXPROCS workers and returns the results
// in index order.
func Map[T any](n int, fn func(i int) T) []T {
	return MapN(n, 0, fn)
}

// MapN is Map with an explicit worker count (<= 0 selects GOMAXPROCS,
// 1 runs inline with no goroutines). Work is handed out by an atomic
// counter, so long and short items share the pool without static
// partitioning imbalance; out[i] only ever depends on i.
func MapN[T any](n, workers int, fn func(i int) T) []T {
	if n <= 0 {
		return nil
	}
	out := make([]T, n)
	workers = Workers(workers, n)
	if workers == 1 {
		for i := range out {
			out[i] = fn(i)
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	return out
}

// MapNCtx is MapN with cooperative cancellation: once ctx is done, no new
// index is handed out (in-flight items finish; fn is responsible for its
// own early exit if it also watches ctx). Unstarted slots keep their zero
// value, so callers that aggregate must skip zeros — determinism still
// holds for every slot that did run. A nil ctx is never cancelled.
func MapNCtx[T any](ctx context.Context, n, workers int, fn func(i int) T) []T {
	if ctx == nil {
		return MapN(n, workers, fn)
	}
	if n <= 0 {
		return nil
	}
	out := make([]T, n)
	workers = Workers(workers, n)
	if workers == 1 {
		for i := range out {
			if ctx.Err() != nil {
				break
			}
			out[i] = fn(i)
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	return out
}

// MapErr runs fn(0..n-1) on up to workers goroutines (<= 0 selects
// GOMAXPROCS). All n items run to completion; if any failed, the error of
// the lowest failing index is returned (deterministically, regardless of
// completion order) along with the full result slice.
func MapErr[T any](n, workers int, fn func(i int) (T, error)) ([]T, error) {
	errs := make([]error, n)
	out := MapN(n, workers, func(i int) T {
		v, err := fn(i)
		errs[i] = err
		return v
	})
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}

// Replicate runs n independent replications on up to GOMAXPROCS workers.
// Replication i receives the well-separated seed dist.SubSeed(seedBase, i),
// so its result depends only on (seedBase, i): the slice is bit-identical
// whether the replications run serially or across any number of workers.
func Replicate[T any](n int, seedBase int64, fn func(rep int, seed int64) T) []T {
	return ReplicateN(n, seedBase, 0, fn)
}

// ReplicateN is Replicate with an explicit worker count (<= 0 selects
// GOMAXPROCS, 1 runs inline).
func ReplicateN[T any](n int, seedBase int64, workers int, fn func(rep int, seed int64) T) []T {
	return MapN(n, workers, func(i int) T {
		return fn(i, dist.SubSeed(seedBase, i))
	})
}

// ReplicateNCtx is ReplicateN with cooperative cancellation (see MapNCtx):
// replications not yet started when ctx is cancelled are skipped and leave
// zero-valued slots.
func ReplicateNCtx[T any](ctx context.Context, n int, seedBase int64, workers int, fn func(rep int, seed int64) T) []T {
	return MapNCtx(ctx, n, workers, func(i int) T {
		return fn(i, dist.SubSeed(seedBase, i))
	})
}

// All runs the given functions concurrently (one worker per function, up to
// GOMAXPROCS) and returns the error of the lowest-index failure, or nil.
// Use it for a handful of heterogeneous tasks — e.g. the independent exact /
// approximate / baseline solves of one comparison — where Map's uniform
// index space does not fit.
func All(fns ...func() error) error {
	_, err := MapErr(len(fns), 0, func(i int) (struct{}, error) {
		return struct{}{}, fns[i]()
	})
	return err
}
