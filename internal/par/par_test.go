package par

import (
	"errors"
	"math/rand"
	"reflect"
	"sync/atomic"
	"testing"

	"hap/internal/dist"
)

func TestMapOrdersResultsByIndex(t *testing.T) {
	got := Map(100, func(i int) int { return i * i })
	for i, v := range got {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestMapNDeterministicAcrossWorkerCounts(t *testing.T) {
	// Each unit draws from its own index-derived RNG; any cross-worker
	// leakage or misplacement would break equality with the serial run.
	work := func(i int) float64 {
		rng := rand.New(rand.NewSource(dist.SubSeed(42, i)))
		var s float64
		for k := 0; k < 1000; k++ {
			s += rng.Float64()
		}
		return s
	}
	serial := MapN(64, 1, work)
	for _, workers := range []int{2, 3, 4, 16, 0} {
		if got := MapN(64, workers, work); !reflect.DeepEqual(got, serial) {
			t.Fatalf("workers=%d diverged from serial", workers)
		}
	}
}

func TestMapNEmptyAndClamp(t *testing.T) {
	if got := MapN(0, 4, func(i int) int { return i }); got != nil {
		t.Fatalf("n=0 should return nil, got %v", got)
	}
	// More workers than items must not panic or drop items.
	got := MapN(3, 64, func(i int) int { return i })
	if !reflect.DeepEqual(got, []int{0, 1, 2}) {
		t.Fatalf("got %v", got)
	}
}

func TestMapErrReturnsLowestIndexError(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	// Index 5 and index 2 both fail; the reported error must be index 2's
	// regardless of completion order.
	for trial := 0; trial < 20; trial++ {
		out, err := MapErr(8, 4, func(i int) (int, error) {
			switch i {
			case 2:
				return 0, errA
			case 5:
				return 0, errB
			default:
				return i, nil
			}
		})
		if !errors.Is(err, errA) {
			t.Fatalf("got err %v, want %v", err, errA)
		}
		if len(out) != 8 || out[7] != 7 {
			t.Fatalf("successful results not retained: %v", out)
		}
	}
}

func TestMapErrNilOnSuccess(t *testing.T) {
	out, err := MapErr(10, 0, func(i int) (int, error) { return i, nil })
	if err != nil || len(out) != 10 {
		t.Fatalf("out=%v err=%v", out, err)
	}
}

func TestReplicateSeedsAreWellSeparatedAndStable(t *testing.T) {
	seeds := Replicate(16, 7, func(rep int, seed int64) int64 { return seed })
	seen := map[int64]bool{}
	for i, s := range seeds {
		if s != dist.SubSeed(7, i) {
			t.Fatalf("rep %d seed %d, want %d", i, s, dist.SubSeed(7, i))
		}
		if seen[s] {
			t.Fatalf("duplicate seed %d", s)
		}
		seen[s] = true
	}
	again := ReplicateN(16, 7, 1, func(rep int, seed int64) int64 { return seed })
	if !reflect.DeepEqual(seeds, again) {
		t.Fatal("Replicate not reproducible across worker counts")
	}
}

func TestAllRunsEverythingAndReportsFirstError(t *testing.T) {
	var ran atomic.Int32
	errX := errors.New("x")
	err := All(
		func() error { ran.Add(1); return nil },
		func() error { ran.Add(1); return errX },
		func() error { ran.Add(1); return errors.New("later") },
	)
	if !errors.Is(err, errX) {
		t.Fatalf("got %v, want %v", err, errX)
	}
	if ran.Load() != 3 {
		t.Fatalf("ran %d of 3 functions", ran.Load())
	}
	if err := All(); err != nil {
		t.Fatalf("empty All: %v", err)
	}
}

func TestWorkersClamping(t *testing.T) {
	if w := Workers(0, 5); w < 1 {
		t.Fatalf("Workers(0,5)=%d", w)
	}
	if w := Workers(8, 3); w != 3 {
		t.Fatalf("Workers(8,3)=%d, want 3", w)
	}
	if w := Workers(-1, 0); w != 1 {
		t.Fatalf("Workers(-1,0)=%d, want 1", w)
	}
}
