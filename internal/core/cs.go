package core

import (
	"fmt"
	"strings"

	"hap/internal/haperr"
)

// This file implements HAP-CS, the client-server extension of Section 2.2:
// each spontaneously generated message is a *request*; a request of type
// (i,j) triggers a response with probability PResp, and a response triggers
// the next request of the exchange with probability PNext, so an exchange
// is a geometrically distributed ping-pong of requests and responses
// (e.g. an rlogin command loop).

// CSMessageType extends MessageType with the client-server parameters.
type CSMessageType struct {
	Name string
	// Lambda is the spontaneous request rate per active application (λᵢⱼ).
	Lambda float64
	// MuReq is the request service rate (μʳᵢⱼ).
	MuReq float64
	// MuResp is the response service rate (μᵖᵢⱼ).
	MuResp float64
	// PResp is the probability a request triggers a response (pˢᵢⱼ).
	PResp float64
	// PNext is the probability a response triggers the next request (pᑫᵢⱼ).
	PNext float64
}

// ContinuationProbability returns q = PResp·PNext, the probability an
// exchange continues for another round after a request.
func (c CSMessageType) ContinuationProbability() float64 { return c.PResp * c.PNext }

// RequestsPerExchange returns the expected number of requests in one
// exchange, 1/(1-q).
func (c CSMessageType) RequestsPerExchange() float64 {
	return 1 / (1 - c.ContinuationProbability())
}

// ResponsesPerExchange returns the expected number of responses in one
// exchange, PResp/(1-q).
func (c CSMessageType) ResponsesPerExchange() float64 {
	return c.PResp / (1 - c.ContinuationProbability())
}

// MessagesPerExchange returns the expected total messages per exchange,
// (1+PResp)/(1-q).
func (c CSMessageType) MessagesPerExchange() float64 {
	return (1 + c.PResp) / (1 - c.ContinuationProbability())
}

// CSAppType is an application type whose messages are request/response
// exchanges.
type CSAppType struct {
	Name     string
	Lambda   float64
	Mu       float64
	Messages []CSMessageType
}

// SpontaneousRate returns Σⱼ λᵢⱼ, the rate of exchange-opening requests of
// one active instance.
func (a CSAppType) SpontaneousRate() float64 {
	var s float64
	for _, m := range a.Messages {
		s += m.Lambda
	}
	return s
}

// EffectiveRate returns the total message rate (requests + responses) of
// one active instance once exchanges are accounted for.
func (a CSAppType) EffectiveRate() float64 {
	var s float64
	for _, m := range a.Messages {
		s += m.Lambda * m.MessagesPerExchange()
	}
	return s
}

// CSModel is a 3-level HAP with client-server interactions (Figure 4).
type CSModel struct {
	Name   string
	Lambda float64
	Mu     float64
	Apps   []CSAppType
}

// Validate checks rates and probabilities, and that exchanges terminate
// (q < 1 for every message type).
func (m *CSModel) Validate() error {
	var errs []string
	check := func(name string, v float64) {
		if !(v > 0) {
			errs = append(errs, fmt.Sprintf("%s must be positive (got %v)", name, v))
		}
	}
	prob := func(name string, v float64) {
		if v < 0 || v > 1 {
			errs = append(errs, fmt.Sprintf("%s must be in [0,1] (got %v)", name, v))
		}
	}
	check("user Lambda", m.Lambda)
	check("user Mu", m.Mu)
	if len(m.Apps) == 0 {
		errs = append(errs, "model needs at least one application type")
	}
	for i, a := range m.Apps {
		check(fmt.Sprintf("app[%d].Lambda", i), a.Lambda)
		check(fmt.Sprintf("app[%d].Mu", i), a.Mu)
		if len(a.Messages) == 0 {
			errs = append(errs, fmt.Sprintf("app[%d] needs at least one message type", i))
		}
		for j, msg := range a.Messages {
			check(fmt.Sprintf("app[%d].msg[%d].Lambda", i, j), msg.Lambda)
			check(fmt.Sprintf("app[%d].msg[%d].MuReq", i, j), msg.MuReq)
			check(fmt.Sprintf("app[%d].msg[%d].MuResp", i, j), msg.MuResp)
			prob(fmt.Sprintf("app[%d].msg[%d].PResp", i, j), msg.PResp)
			prob(fmt.Sprintf("app[%d].msg[%d].PNext", i, j), msg.PNext)
			if msg.ContinuationProbability() >= 1 {
				errs = append(errs, fmt.Sprintf("app[%d].msg[%d]: PResp·PNext must be < 1 or exchanges never end", i, j))
			}
		}
	}
	if len(errs) > 0 {
		return haperr.Badf("core: invalid CS model: %s", strings.Join(errs, "; "))
	}
	return nil
}

// Nu returns λ/μ.
func (m *CSModel) Nu() float64 { return m.Lambda / m.Mu }

// MeanRate returns the effective mean message rate at the queue including
// triggered requests and responses:
//
//	λ̄ = (λ/μ) Σᵢ (λᵢ/μᵢ) Σⱼ λᵢⱼ·(1+pˢ)/(1−pˢpᑫ)
func (m *CSModel) MeanRate() float64 {
	var s float64
	for _, a := range m.Apps {
		s += (a.Lambda / a.Mu) * a.EffectiveRate()
	}
	return m.Nu() * s
}

// MeanSpontaneousRate returns the mean rate of exchange-opening requests
// only (the λ̄ of the underlying plain HAP).
func (m *CSModel) MeanSpontaneousRate() float64 {
	var s float64
	for _, a := range m.Apps {
		s += (a.Lambda / a.Mu) * a.SpontaneousRate()
	}
	return m.Nu() * s
}

// OfferedLoad returns the mean service-time demand per unit time at the
// queue: Σ rates × mean service times of requests and responses.
func (m *CSModel) OfferedLoad() float64 {
	var load float64
	for _, a := range m.Apps {
		act := m.Nu() * a.Lambda / a.Mu // mean active instances of this type
		for _, msg := range a.Messages {
			exch := msg.Lambda * act
			load += exch * msg.RequestsPerExchange() / msg.MuReq
			load += exch * msg.ResponsesPerExchange() / msg.MuResp
		}
	}
	return load
}

// Plain projects the CS model onto a plain HAP whose message rates are the
// effective (request + response) rates and whose service rates are the
// exchange-weighted harmonic means — the natural first-order reduction for
// applying the plain-HAP solvers.
func (m *CSModel) Plain() *Model {
	out := &Model{Name: m.Name + "-plain", Lambda: m.Lambda, Mu: m.Mu}
	for _, a := range m.Apps {
		na := AppType{Name: a.Name, Lambda: a.Lambda, Mu: a.Mu}
		for _, msg := range a.Messages {
			rate := msg.Lambda * msg.MessagesPerExchange()
			// Mean service time across the request/response mix.
			req := msg.RequestsPerExchange()
			resp := msg.ResponsesPerExchange()
			meanSvc := (req/msg.MuReq + resp/msg.MuResp) / (req + resp)
			na.Messages = append(na.Messages, MessageType{
				Name:   msg.Name,
				Lambda: rate,
				Mu:     1 / meanSvc,
			})
		}
		out.Apps = append(out.Apps, na)
	}
	return out
}
