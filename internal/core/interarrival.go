package core

import (
	"math"

	"hap/internal/quad"
)

// This file implements the Solution-2 closed forms for the message
// interarrival time (Equations 7–11). With ν = λ/μ, aᵢ = λᵢ/μᵢ and
// Λᵢ = Σⱼ λᵢⱼ define
//
//	L(t) = exp(Σᵢ aᵢ (e^{-Λᵢ t} − 1))        (L' = −L·M)
//	M(t) = Σᵢ aᵢ Λᵢ e^{-Λᵢ t}                (M' = −N)
//	N(t) = Σᵢ aᵢ Λᵢ² e^{-Λᵢ t}
//
// Conditioning the upper levels as M/M/∞ populations and weighting states
// by their arrival rates yields the complementary CDF and density of the
// interarrival time seen by messages:
//
//	Ā(t) = M(t) L(t) e^{ν(L(t)−1)} / M(0)
//	a(t) = e^{ν(L(t)−1)} [L·N + L·M² + ν·L²·M²] / M(0)
//
// and the mean rate λ̄ = ν·M(0) (Equation 4). These are the curves of
// Figures 9 and 10.

// Interarrival bundles the closed-form interarrival law of a model. Create
// it with Model.Interarrival; it precomputes the per-type constants.
type Interarrival struct {
	nu  float64
	a   []float64 // aᵢ
	lam []float64 // Λᵢ
	m0  float64   // M(0) = Σ aᵢΛᵢ
}

// Interarrival returns the Solution-2 closed-form interarrival law.
func (m *Model) Interarrival() *Interarrival {
	ia := &Interarrival{nu: m.Nu()}
	for i, app := range m.Apps {
		ia.a = append(ia.a, m.AppLoad(i))
		ia.lam = append(ia.lam, app.TotalMessageRate())
	}
	for i := range ia.a {
		ia.m0 += ia.a[i] * ia.lam[i]
	}
	return ia
}

// L evaluates L(t) = exp(Σᵢ aᵢ(e^{-Λᵢt} − 1)).
func (ia *Interarrival) L(t float64) float64 {
	var e float64
	for i := range ia.a {
		e += ia.a[i] * math.Expm1(-ia.lam[i]*t)
	}
	return math.Exp(e)
}

// M evaluates M(t) = Σᵢ aᵢΛᵢ e^{-Λᵢt}.
func (ia *Interarrival) M(t float64) float64 {
	var s float64
	for i := range ia.a {
		s += ia.a[i] * ia.lam[i] * math.Exp(-ia.lam[i]*t)
	}
	return s
}

// N evaluates N(t) = Σᵢ aᵢΛᵢ² e^{-Λᵢt}.
func (ia *Interarrival) N(t float64) float64 {
	var s float64
	for i := range ia.a {
		s += ia.a[i] * ia.lam[i] * ia.lam[i] * math.Exp(-ia.lam[i]*t)
	}
	return s
}

// MeanRate returns λ̄ = ν·M(0).
func (ia *Interarrival) MeanRate() float64 { return ia.nu * ia.m0 }

// CCDF returns Ā(t), the probability the interarrival exceeds t.
func (ia *Interarrival) CCDF(t float64) float64 {
	if t < 0 {
		return 1
	}
	l := ia.L(t)
	return ia.M(t) * l * math.Exp(ia.nu*(l-1)) / ia.m0
}

// CDF returns A(t) = 1 − Ā(t). A(0) = 0 and A(∞) = 1 as the paper checks.
func (ia *Interarrival) CDF(t float64) float64 { return 1 - ia.CCDF(t) }

// PDF returns the interarrival density a(t) (Equation 10).
func (ia *Interarrival) PDF(t float64) float64 {
	if t < 0 {
		return 0
	}
	l := ia.L(t)
	mm := ia.M(t)
	nn := ia.N(t)
	return math.Exp(ia.nu*(l-1)) * (l*nn + l*mm*mm + ia.nu*l*l*mm*mm) / ia.m0
}

// PDFAtZero returns a(0) = N(0)/M(0) + (1+ν)·M(0): 9.28 for the Figure 9
// parameters, against the equal-load Poisson's 7.5.
func (ia *Interarrival) PDFAtZero() float64 {
	return ia.N(0)/ia.m0 + (1+ia.nu)*ia.m0
}

// ZeroRateMass returns the stationary, rate-weighted-excluded probability
// that the modulator generates no arrivals at all, e^{ν(L(∞)−1)}. It is
// the mass deficit that makes the closed-form mean interarrival
// (1 − ZeroRateMass)/λ̄ rather than exactly 1/λ̄.
func (ia *Interarrival) ZeroRateMass() float64 {
	var sumA float64
	for _, av := range ia.a {
		sumA += av
	}
	linf := math.Exp(-sumA)
	return math.Exp(ia.nu * (linf - 1))
}

// Mean returns E[T] = ∫Ā(t)dt = (1 − ZeroRateMass)/λ̄, available in closed
// form via d/dt e^{ν(L−1)} = −νLM e^{ν(L−1)}.
func (ia *Interarrival) Mean() float64 {
	return (1 - ia.ZeroRateMass()) / ia.MeanRate()
}

// SecondMoment returns E[T²] = 2∫t·Ā(t)dt by adaptive quadrature.
func (ia *Interarrival) SecondMoment() float64 {
	// The first quadrature window must straddle the bulk of the law, not
	// just its slowest tail: for a many-sparse-sources parameterisation
	// (large ν, tiny per-source rate — fitters produce these on
	// Poisson-like traces) 1/minLam is thousands of mean interarrivals
	// and adaptive Simpson would step clean over the mass near zero.
	scale := math.Min(1/ia.minLam(), ia.Mean())
	return 2 * quad.ToInf(func(t float64) float64 { return t * ia.CCDF(t) }, 0, scale, 1e-12)
}

// SCV returns the squared coefficient of variation of the interarrival
// time; > 1 signals burstier-than-Poisson arrivals.
func (ia *Interarrival) SCV() float64 {
	m := ia.Mean()
	return ia.SecondMoment()/(m*m) - 1
}

// Laplace returns A*(s) = E[e^{-sT}] = 1 − s·∫₀^∞ Ā(t)e^{-st}dt, the form
// the σ-algorithm needs. Integrating the CCDF avoids the oscillation-free
// but spiky density near zero.
func (ia *Interarrival) Laplace(s float64) float64 {
	if s == 0 {
		return 1
	}
	scale := math.Min(1/(ia.minLam()+s), ia.Mean())
	integral := quad.ToInf(func(t float64) float64 {
		return ia.CCDF(t) * math.Exp(-s*t)
	}, 0, scale, 1e-13)
	return 1 - s*integral
}

func (ia *Interarrival) minLam() float64 {
	min := ia.lam[0]
	for _, l := range ia.lam[1:] {
		if l < min {
			min = l
		}
	}
	return min
}

// Sample is not provided: the closed form destroys interarrival
// correlation by construction (the paper's Solutions 1 and 2 share this
// loss); to generate correlated HAP traffic use package sim.

// CCDFGivenUsers returns the interarrival complementary CDF conditioned on
// exactly x users being present for the whole interval:
//
//	Ā(t | x) = M(t) · L(t)^x / M(0)
//
// With x = 1 and a single application type this is the 2-level HAP /
// ON-OFF law (see TwoLevel), which is how the paper's "ON-OFF is a 2-level
// HAP" identity is realised in the closed forms.
func (ia *Interarrival) CCDFGivenUsers(x int, t float64) float64 {
	if x < 1 {
		panic("core: CCDFGivenUsers needs x >= 1 (zero users host no arrivals)")
	}
	if t < 0 {
		return 1
	}
	return ia.M(t) * math.Pow(ia.L(t), float64(x)) / ia.m0
}

// CrossingsWithPoisson finds where a(t) crosses the density of the
// equal-rate Poisson process (λ̄e^{-λ̄t}) on (0, tMax], scanning n points
// and bisecting each sign change. Figure 9 reports two crossings
// (≈0.077 and ≈0.53 for the P9 parameters).
func (ia *Interarrival) CrossingsWithPoisson(tMax float64, n int) []float64 {
	rate := ia.MeanRate()
	diff := func(t float64) float64 { return ia.PDF(t) - rate*math.Exp(-rate*t) }
	var out []float64
	step := tMax / float64(n)
	prevT := step / 1e6 // avoid the t=0 point itself
	prevV := diff(prevT)
	for i := 1; i <= n; i++ {
		t := float64(i) * step
		v := diff(t)
		if prevV == 0 || prevV*v < 0 {
			if root, _, err := quad.Bisect(diff, prevT, t, 1e-10); err == nil {
				out = append(out, root)
			}
		}
		prevT, prevV = t, v
	}
	return out
}
