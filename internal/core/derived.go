package core

// This file implements the closed-form first-order quantities of Section
// 3.2.3 ("Solution 2: conditional probability"): the mean message arrival
// rate (Equations 4 and 5) and the mean user/application populations, all
// derived from the M/M/∞ view of the upper levels.

// Nu returns ν = λ/μ, the mean number of users in the system (M/M/∞).
func (m *Model) Nu() float64 { return m.Lambda / m.Mu }

// MeanUsers returns the mean number of user instances x̄ = λ/μ.
func (m *Model) MeanUsers() float64 { return m.Nu() }

// AppLoad returns aᵢ = λᵢ/μᵢ, the mean number of type-i application
// instances per present user.
func (m *Model) AppLoad(i int) float64 { return m.Apps[i].Lambda / m.Apps[i].Mu }

// MeanApps returns the mean total number of application instances
// ȳ = (λ/μ) Σᵢ λᵢ/μᵢ.
func (m *Model) MeanApps() float64 {
	var s float64
	for i := range m.Apps {
		s += m.AppLoad(i)
	}
	return m.Nu() * s
}

// MeanRate returns the mean message arrival rate (Equation 4):
//
//	λ̄ = (λ/μ) Σᵢ (λᵢ/μᵢ) Σⱼ λᵢⱼ
//
// For the Section 4 parameters this is 8.25, matching Solution 0 and the
// simulations.
func (m *Model) MeanRate() float64 {
	var s float64
	for i, a := range m.Apps {
		s += m.AppLoad(i) * a.TotalMessageRate()
	}
	return m.Nu() * s
}

// MeanRateSymmetric returns Equation 5's specialisation
// λ̄ = (λ/μ)(λ'/μ') · leaves · λ” and panics if the model is not
// symmetric. Merging or splitting branches that keeps the leaf count
// keeps this rate (Figure 8).
func (m *Model) MeanRateSymmetric() float64 {
	ok, la, ma, lm, _ := m.Symmetric()
	if !ok {
		panic("core: MeanRateSymmetric on a non-symmetric model")
	}
	return m.Nu() * (la / ma) * float64(m.NumLeaves()) * lm
}

// MeanMessageRatePerApp returns the arrival-rate share of application type
// i in the total: aᵢΛᵢ / Σₖ aₖΛₖ.
func (m *Model) MeanMessageRatePerApp(i int) float64 {
	var tot float64
	for k, a := range m.Apps {
		tot += m.AppLoad(k) * a.TotalMessageRate()
	}
	if tot == 0 {
		return 0
	}
	return m.AppLoad(i) * m.Apps[i].TotalMessageRate() / tot
}

// Utilization returns ρ = λ̄/μ” for the uniform service rate μ”; it
// panics when service rates differ across message types.
func (m *Model) Utilization() float64 {
	mu, ok := m.UniformServiceRate()
	if !ok {
		panic("core: Utilization requires a uniform message service rate")
	}
	return m.MeanRate() / mu
}

// RateSeparation reports the paper's Section 4.1 accuracy conditions: the
// minimum ratio between neighbouring-level arrival and departure rates
// (condition 1a/1b requires ⪆5) computed as
// min(λ'ᵢ/λ, μ'ᵢ/μ, λ”ᵢⱼ/λ'ᵢ, μ”ᵢⱼ/μ'ᵢ) over all i, j.
func (m *Model) RateSeparation() float64 {
	min := func(a, b float64) float64 {
		if a < b {
			return a
		}
		return b
	}
	sep := 1e300
	for _, a := range m.Apps {
		sep = min(sep, a.Lambda/m.Lambda)
		sep = min(sep, a.Mu/m.Mu)
		for _, msg := range a.Messages {
			sep = min(sep, msg.Lambda/a.Lambda)
			sep = min(sep, msg.Mu/a.Mu)
		}
	}
	return sep
}

// Scale returns a copy of the model with the chosen level's arrival rate
// multiplied by factor. Level must be one of LevelUser, LevelApp,
// LevelMessage; this is the knob behind Figure 19's level sweeps.
func (m *Model) Scale(level Level, factor float64) *Model {
	out := m.Clone()
	switch level {
	case LevelUser:
		out.Lambda *= factor
	case LevelApp:
		for i := range out.Apps {
			out.Apps[i].Lambda *= factor
		}
	case LevelMessage:
		for i := range out.Apps {
			for j := range out.Apps[i].Messages {
				out.Apps[i].Messages[j].Lambda *= factor
			}
		}
	default:
		panic("core: unknown level")
	}
	return out
}

// ScaleHolding multiplies the chosen level's departure rate (shrinking the
// holding time) by factor.
func (m *Model) ScaleHolding(level Level, factor float64) *Model {
	out := m.Clone()
	switch level {
	case LevelUser:
		out.Mu *= factor
	case LevelApp:
		for i := range out.Apps {
			out.Apps[i].Mu *= factor
		}
	case LevelMessage:
		for i := range out.Apps {
			for j := range out.Apps[i].Messages {
				out.Apps[i].Messages[j].Mu *= factor
			}
		}
	default:
		panic("core: unknown level")
	}
	return out
}

// Level selects one of the three modulating levels.
type Level int

// The three HAP levels.
const (
	LevelUser Level = iota
	LevelApp
	LevelMessage
)

func (l Level) String() string {
	switch l {
	case LevelUser:
		return "user"
	case LevelApp:
		return "application"
	case LevelMessage:
		return "message"
	}
	return "unknown"
}

// Clone returns a deep copy of the model.
func (m *Model) Clone() *Model {
	out := &Model{Name: m.Name, Lambda: m.Lambda, Mu: m.Mu, Apps: make([]AppType, len(m.Apps))}
	for i, a := range m.Apps {
		na := a
		na.Messages = append([]MessageType(nil), a.Messages...)
		out.Apps[i] = na
	}
	return out
}
