package core

import (
	"math"

	"hap/internal/haperr"
	"hap/internal/quad"
)

// TwoLevel is the 2-level HAP: calls (or sources) arrive Poisson(Lambda)
// and remain exp(Mu); while present each emits messages at rate MsgLambda,
// served at rate MsgMu. The paper identifies this with the classical
// ON-OFF traffic models — "the ON-OFF model is a 2-level HAP with only one
// message type" — so this type doubles as the library's ON-OFF model.
type TwoLevel struct {
	Lambda    float64 // call arrival rate
	Mu        float64 // reciprocal mean call holding time
	MsgLambda float64 // message rate per active call (γ)
	MsgMu     float64 // message service rate
}

// NewOnOff constructs a 2-level HAP / ON-OFF superposition model.
func NewOnOff(lambda, mu, msgLambda, msgMu float64) *TwoLevel {
	t := &TwoLevel{Lambda: lambda, Mu: mu, MsgLambda: msgLambda, MsgMu: msgMu}
	if err := t.Validate(); err != nil {
		panic(err)
	}
	return t
}

// Validate checks that every rate is positive and finite.
func (t *TwoLevel) Validate() error {
	for _, p := range []struct {
		n string
		v float64
	}{{"Lambda", t.Lambda}, {"Mu", t.Mu}, {"MsgLambda", t.MsgLambda}, {"MsgMu", t.MsgMu}} {
		if !(p.v > 0) || math.IsInf(p.v, 1) {
			return haperr.Badf("core: TwoLevel.%s must be positive and finite (got %v)", p.n, p.v)
		}
	}
	return nil
}

// Nu returns the mean number of active calls λ/μ.
func (t *TwoLevel) Nu() float64 { return t.Lambda / t.Mu }

// MeanRate returns λ̄ = ν·γ.
func (t *TwoLevel) MeanRate() float64 { return t.Nu() * t.MsgLambda }

// Utilization returns λ̄/MsgMu.
func (t *TwoLevel) Utilization() float64 { return t.MeanRate() / t.MsgMu }

// CCDF returns the rate-weighted interarrival complementary CDF
// Ā(t) = s·e^{ν(s−1)} with s = e^{-γt} — the x-conditioned specialisation
// of the 3-level closed form.
func (t *TwoLevel) CCDF(tt float64) float64 {
	if tt < 0 {
		return 1
	}
	s := math.Exp(-t.MsgLambda * tt)
	return s * math.Exp(t.Nu()*(s-1))
}

// PDF returns the interarrival density γs(1+νs)e^{ν(s−1)}, s = e^{-γt}.
func (t *TwoLevel) PDF(tt float64) float64 {
	if tt < 0 {
		return 0
	}
	s := math.Exp(-t.MsgLambda * tt)
	nu := t.Nu()
	return t.MsgLambda * s * (1 + nu*s) * math.Exp(nu*(s-1))
}

// PDFAtZero returns a(0) = γ(1+ν).
func (t *TwoLevel) PDFAtZero() float64 { return t.MsgLambda * (1 + t.Nu()) }

// ZeroRateMass returns e^{-ν}, the stationary probability of zero active
// calls.
func (t *TwoLevel) ZeroRateMass() float64 { return math.Exp(-t.Nu()) }

// Mean returns E[T] = (1 − e^{-ν})/λ̄.
func (t *TwoLevel) Mean() float64 { return (1 - t.ZeroRateMass()) / t.MeanRate() }

// SecondMoment returns E[T²] = 2∫ t Ā(t) dt by quadrature. As with
// Interarrival.SecondMoment, the first window is clamped to the mean so a
// many-sparse-calls parameterisation (huge ν, tiny γ) keeps its bulk
// inside the quadrature's view.
func (t *TwoLevel) SecondMoment() float64 {
	scale := math.Min(1/t.MsgLambda, t.Mean())
	return 2 * quad.ToInf(func(x float64) float64 { return x * t.CCDF(x) }, 0, scale, 1e-12)
}

// SCV returns the squared coefficient of variation of the interarrival law.
func (t *TwoLevel) SCV() float64 {
	m := t.Mean()
	return t.SecondMoment()/(m*m) - 1
}

// Laplace returns A*(s) = 1 − s∫Ā(t)e^{-st}dt.
func (t *TwoLevel) Laplace(s float64) float64 {
	if s == 0 {
		return 1
	}
	integral := quad.ToInf(func(x float64) float64 {
		return t.CCDF(x) * math.Exp(-s*x)
	}, 0, math.Min(1/(t.MsgLambda+s), t.Mean()), 1e-13)
	return 1 - s*integral
}

// Model returns the 3-level HAP whose application level carries this
// 2-level process: the paper's "ON-OFF is a 2-level HAP" identity is that
// the 2-level law equals the 3-level closed form *conditioned on exactly
// one user* (Interarrival.CCDFGivenUsers(1, t)): with x ≡ 1 the application
// population is Poisson(λ'/μ') = Poisson(ν) and the conditional mixture
// collapses to Ā(t) = s·e^{ν(s−1)}. The user-level parameters of the
// returned model are placeholders (they do not enter the conditional law).
func (t *TwoLevel) Model() *Model {
	return &Model{
		Name:   "lifted-2level",
		Lambda: 1,
		Mu:     1,
		Apps: []AppType{{
			Name:   "call",
			Lambda: t.Lambda,
			Mu:     t.Mu,
			Messages: []MessageType{{
				Name:   "message",
				Lambda: t.MsgLambda,
				Mu:     t.MsgMu,
			}},
		}},
	}
}
