// Package core implements the paper's primary contribution: the HAP
// (Hierarchical Arrival Process) traffic model of Lin, Tsai, Huang and
// Gerla (SIGCOMM '93), together with its closed-form analysis.
//
// A HAP is a message arrival process at a network node modulated by three
// levels:
//
//   - users arrive Poisson(Lambda) and remain exp(Mu);
//   - each present user invokes applications of type i at rate Apps[i].Lambda,
//     each active exp(Apps[i].Mu);
//   - each active type-i application emits messages of type j at rate
//     Apps[i].Messages[j].Lambda, served at rate Apps[i].Messages[j].Mu.
//
// All rates are the reciprocals of the means of the corresponding
// distributions, as in the paper. The analysis assumes exponential laws;
// the simulator (package sim) also accepts alternatives.
package core

import (
	"fmt"
	"math"
	"strings"

	"hap/internal/haperr"
)

// MessageType parameterises one message class of an application type.
type MessageType struct {
	// Name is a human label ("interactive", "file-transfer", ...).
	Name string
	// Lambda is the arrival rate of this message type per active
	// application instance (λᵢⱼ).
	Lambda float64
	// Mu is the service rate of this message type at the queue (μᵢⱼ).
	Mu float64
}

// AppType parameterises one application class.
type AppType struct {
	// Name is a human label ("programming", "database", ...).
	Name string
	// Lambda is the invocation rate of this application type per present
	// user (λᵢ).
	Lambda float64
	// Mu is the reciprocal mean lifetime of an application instance (μᵢ).
	Mu float64
	// Messages lists the message types this application generates.
	Messages []MessageType
}

// TotalMessageRate returns Λᵢ = Σⱼ λᵢⱼ, the message rate of one active
// instance of this application type.
func (a AppType) TotalMessageRate() float64 {
	var s float64
	for _, m := range a.Messages {
		s += m.Lambda
	}
	return s
}

// Model is a 3-level HAP.
type Model struct {
	// Name labels the model in reports.
	Name string
	// Lambda is the user arrival rate (λ).
	Lambda float64
	// Mu is the reciprocal mean user holding time (μ).
	Mu float64
	// Apps lists the application types (l = len(Apps)).
	Apps []AppType
}

// Validate checks that every rate is positive and finite and every level
// non-empty. (!(v > 0) rather than v <= 0 so NaN is rejected too.)
func (m *Model) Validate() error {
	var errs []string
	check := func(name string, v float64) {
		if !(v > 0) || math.IsInf(v, 1) {
			errs = append(errs, fmt.Sprintf("%s must be positive and finite (got %v)", name, v))
		}
	}
	check("user Lambda", m.Lambda)
	check("user Mu", m.Mu)
	if len(m.Apps) == 0 {
		errs = append(errs, "model needs at least one application type")
	}
	for i, a := range m.Apps {
		check(fmt.Sprintf("app[%d].Lambda", i), a.Lambda)
		check(fmt.Sprintf("app[%d].Mu", i), a.Mu)
		if len(a.Messages) == 0 {
			errs = append(errs, fmt.Sprintf("app[%d] needs at least one message type", i))
		}
		for j, msg := range a.Messages {
			check(fmt.Sprintf("app[%d].msg[%d].Lambda", i, j), msg.Lambda)
			check(fmt.Sprintf("app[%d].msg[%d].Mu", i, j), msg.Mu)
		}
	}
	if len(errs) > 0 {
		return haperr.Badf("core: invalid model: %s", strings.Join(errs, "; "))
	}
	return nil
}

// NumAppTypes returns l.
func (m *Model) NumAppTypes() int { return len(m.Apps) }

// NumLeaves returns the number of message-type leaves Σᵢ mᵢ in the HAP
// object-class tree; Equation 5 shows that for symmetric parameters the
// mean rate depends on the tree only through this count.
func (m *Model) NumLeaves() int {
	n := 0
	for _, a := range m.Apps {
		n += len(a.Messages)
	}
	return n
}

// Symmetric reports whether all application types share one (λ', μ') and
// all message types one λ” with equal fan-out m — the simplification under
// which the paper reduces the modulating chain to two dimensions (Figure 7).
// When true it also returns those common parameters.
func (m *Model) Symmetric() (ok bool, lambdaApp, muApp, lambdaMsg float64, fanout int) {
	if len(m.Apps) == 0 {
		return false, 0, 0, 0, 0
	}
	a0 := m.Apps[0]
	if len(a0.Messages) == 0 {
		return false, 0, 0, 0, 0
	}
	lambdaApp, muApp = a0.Lambda, a0.Mu
	lambdaMsg = a0.Messages[0].Lambda
	fanout = len(a0.Messages)
	for _, a := range m.Apps {
		if a.Lambda != lambdaApp || a.Mu != muApp || len(a.Messages) != fanout {
			return false, 0, 0, 0, 0
		}
		for _, msg := range a.Messages {
			if msg.Lambda != lambdaMsg {
				return false, 0, 0, 0, 0
			}
		}
	}
	return true, lambdaApp, muApp, lambdaMsg, fanout
}

// UniformServiceRate returns the common message service rate μ” when every
// message type shares one, and false otherwise. The queueing analysis
// requires a uniform service rate (no product form otherwise, as the paper
// notes citing BCMP).
func (m *Model) UniformServiceRate() (float64, bool) {
	var mu float64
	first := true
	for _, a := range m.Apps {
		for _, msg := range a.Messages {
			if first {
				mu, first = msg.Mu, false
			} else if msg.Mu != mu {
				return 0, false
			}
		}
	}
	if first {
		return 0, false
	}
	return mu, true
}

// String renders a compact one-line description.
func (m *Model) String() string {
	name := m.Name
	if name == "" {
		name = "HAP"
	}
	return fmt.Sprintf("%s{λ=%g μ=%g l=%d leaves=%d λ̄=%.4g}",
		name, m.Lambda, m.Mu, len(m.Apps), m.NumLeaves(), m.MeanRate())
}

// NewSymmetric builds the paper's simplified HAP: l identical application
// types, each with fanout identical message types.
//
//	λ, μ            user level
//	λ', μ'          per application type
//	λ'', μ''        per message type
func NewSymmetric(lambda, mu, lambdaApp, muApp, lambdaMsg, muMsg float64, l, fanout int) *Model {
	apps := make([]AppType, l)
	for i := range apps {
		msgs := make([]MessageType, fanout)
		for j := range msgs {
			msgs[j] = MessageType{
				Name:   fmt.Sprintf("msg-%d-%d", i+1, j+1),
				Lambda: lambdaMsg,
				Mu:     muMsg,
			}
		}
		apps[i] = AppType{
			Name:     fmt.Sprintf("app-%d", i+1),
			Lambda:   lambdaApp,
			Mu:       muApp,
			Messages: msgs,
		}
	}
	return &Model{Name: "symmetric-HAP", Lambda: lambda, Mu: mu, Apps: apps}
}
