package core

import (
	"math"
	"testing"
)

func TestIDCBasicShape(t *testing.T) {
	idc, err := PaperParams(20).NewIDC()
	if err != nil {
		t.Fatal(err)
	}
	// IDC(0+) = 1 (locally Poisson), monotone nondecreasing, → Limit.
	if got := idc.At(0); got != 1 {
		t.Errorf("IDC(0) = %v", got)
	}
	prev := 1.0
	for _, x := range []float64{0.01, 0.1, 1, 10, 100, 1000, 1e4, 1e5} {
		v := idc.At(x)
		if v < prev-1e-9 {
			t.Errorf("IDC not monotone at %v: %v < %v", x, v, prev)
		}
		prev = v
	}
	lim := idc.Limit()
	if lim <= 10 {
		t.Errorf("paper-parameter IDC limit %v should be large (long-range modulation)", lim)
	}
	wantClose(t, "IDC(huge) → limit", idc.At(1e8), lim, 0.01)
}

func TestIDCRateVarianceMatchesCascade(t *testing.T) {
	m := PaperParams(20)
	idc, err := m.NewIDC()
	if err != nil {
		t.Fatal(err)
	}
	// Var(R) = (mλ'')²·Var(y) with Var(y) = 152.5 for the paper set.
	wantClose(t, "var R", idc.RateVariance(), 0.09*152.5, 1e-9)
	// Cov decays from Var(R) to 0.
	if idc.CovRate(0) != idc.RateVariance() {
		t.Error("Cov(0) != Var")
	}
	if idc.CovRate(1e7) > 1e-12 {
		t.Error("Cov must decay to 0")
	}
}

func TestIDCMatchesSimulation(t *testing.T) {
	// Use a faster model so one run spans many user lifetimes.
	m := NewSymmetric(0.5, 0.25, 2.5, 1.25, 5, 500, 2, 2) // ν=2, λ̄=40
	idc, err := m.NewIDC()
	if err != nil {
		t.Fatal(err)
	}
	// The empirical check lives in the sim package tests (no import cycle
	// from core); here we verify internal consistency: the limit decomposes
	// into the two time-scale terms.
	sum := 1 + 2*(idc.c1/idc.a1+idc.c2/idc.a2)/idc.lamBar
	wantClose(t, "limit decomposition", idc.Limit(), sum, 1e-12)
	ht := idc.HalfTime()
	if ht <= 0 || idc.At(ht) < (1+idc.Limit())/2*0.99 || idc.At(ht) > (1+idc.Limit())/2*1.01 {
		t.Errorf("half time %v inconsistent: IDC(ht)=%v target=%v", ht, idc.At(ht), (1+idc.Limit())/2)
	}
}

func TestIDCUserTermDominatesAtPaperParams(t *testing.T) {
	idc, err := PaperParams(20).NewIDC()
	if err != nil {
		t.Fatal(err)
	}
	userTerm := 2 * idc.c2 / idc.a2 / idc.lamBar
	appTerm := 2 * idc.c1 / idc.a1 / idc.lamBar
	if userTerm <= appTerm {
		t.Errorf("user-scale modulation should dominate: user %v vs app %v", userTerm, appTerm)
	}
	// The half time sits between the two relaxation times.
	ht := idc.HalfTime()
	if ht < 1/idc.a1 || ht > 10/idc.a2 {
		t.Errorf("half time %v outside [1/μ', 10/μ]", ht)
	}
}

func TestIDCErrors(t *testing.T) {
	if _, err := Figure5Example().NewIDC(); err == nil {
		t.Error("asymmetric model must be rejected")
	}
	degenerate := NewSymmetric(0.01, 0.01, 0.05, 0.01, 1, 100, 2, 2)
	if _, err := degenerate.NewIDC(); err == nil {
		t.Error("μ = μ' must be rejected")
	}
}

func TestIDCKernelStability(t *testing.T) {
	// The small-at series and the closed form must agree at the seam.
	for _, a := range []float64{1e-3, 1, 100} {
		seam := 1e-6 / a
		lo := IDCKernel(a, seam*0.999)
		hi := IDCKernel(a, seam*1.001)
		if math.Abs(hi-lo)/math.Max(hi, 1e-300) > 0.01 {
			t.Errorf("kernel discontinuous at seam for a=%v: %v vs %v", a, lo, hi)
		}
	}
}
