package core

import (
	"fmt"
	"math"

	"hap/internal/dist"
	"hap/internal/markov"
)

// This file builds the state-mixture view of the interarrival time used by
// the Figure 20 admission-control study: with the user population capped at
// maxUsers and the total application population capped at maxApps, the
// upper levels become truncated-Poisson (Erlang-loss) populations and the
// rate-weighted interarrival law is an exact finite mixture of
// exponentials. With large caps this converges to the Solution-2 closed
// form; with tight caps it quantifies how admission control trims the
// burst tail.

// Mixture is a finite-state interarrival mixture: in branch k the
// interarrival is Exp(Rates[k]) with rate-weighted probability Weights[k].
type Mixture struct {
	// Weights are the rate-weighted state probabilities P̃ (sum to 1).
	Weights []float64
	// Rates are the per-state message arrival rates (all positive).
	Rates []float64
	// MeanRate is λ̄ = Σ π(state)·R(state) over the *unweighted* law.
	MeanRate float64
	// ZeroMass is the unweighted stationary probability of zero-rate
	// states (they cannot host an arrival, so they carry no weight).
	ZeroMass float64
}

// Hyper converts the mixture into a sampleable/analysable distribution.
func (mx *Mixture) Hyper() *dist.HyperExponential {
	return dist.NewHyperExponential(mx.Weights, mx.Rates)
}

// Laplace returns A*(s) of the mixture in closed form.
func (mx *Mixture) Laplace(s float64) float64 {
	var v float64
	for k, w := range mx.Weights {
		v += w * mx.Rates[k] / (mx.Rates[k] + s)
	}
	return v
}

// BoundedMixture computes the interarrival mixture of the symmetric model
// with the user population capped at maxUsers and the total application
// population capped at maxApps (the paper bounds them at 12 and 60 in
// Figure 20, against 60 and 300 for the effectively unbounded case).
//
// The symmetric model is required; the joint law is
// P(x) ⊗ P(y|x) with x ~ TruncPoisson(ν, maxUsers) and
// y|x ~ TruncPoisson(x·l·a', maxApps), and the per-state rate is y·m·λ”.
func (m *Model) BoundedMixture(maxUsers, maxApps int) (*Mixture, error) {
	ok, lambdaApp, muApp, lambdaMsg, fanout := m.Symmetric()
	if !ok {
		return nil, fmt.Errorf("core: BoundedMixture requires a symmetric model")
	}
	if maxUsers < 1 || maxApps < 1 {
		return nil, fmt.Errorf("core: bounds must be >= 1 (got %d users, %d apps)", maxUsers, maxApps)
	}
	nu := m.Nu()
	aPrime := lambdaApp / muApp
	l := float64(len(m.Apps))
	perApp := float64(fanout) * lambdaMsg // message rate of one active app

	px := markov.TruncatedPoisson(nu, maxUsers)
	mx := &Mixture{}
	var meanRate, zero float64
	for x := 0; x <= maxUsers; x++ {
		var py []float64
		if x == 0 {
			py = make([]float64, maxApps+1)
			py[0] = 1
		} else {
			py = markov.TruncatedPoisson(float64(x)*l*aPrime, maxApps)
		}
		for y := 0; y <= maxApps; y++ {
			p := px[x] * py[y]
			if p == 0 {
				continue
			}
			rate := float64(y) * perApp
			if rate == 0 {
				zero += p
				continue
			}
			meanRate += p * rate
			mx.Weights = append(mx.Weights, p*rate)
			mx.Rates = append(mx.Rates, rate)
		}
	}
	if meanRate == 0 {
		return nil, fmt.Errorf("core: bounded mixture has zero arrival rate")
	}
	for k := range mx.Weights {
		mx.Weights[k] /= meanRate
	}
	mx.MeanRate = meanRate
	mx.ZeroMass = zero
	return mx, nil
}

// UnboundedMixture returns BoundedMixture with caps wide enough (mean +
// 12σ) that the truncation error is negligible; it is the discrete
// equivalent of the Solution-2 closed form and is used to cross-validate
// it.
func (m *Model) UnboundedMixture() (*Mixture, error) {
	ok, lambdaApp, muApp, _, _ := m.Symmetric()
	if !ok {
		return nil, fmt.Errorf("core: UnboundedMixture requires a symmetric model")
	}
	nu := m.Nu()
	xmax := wideBound(nu)
	yMean := nu * float64(len(m.Apps)) * lambdaApp / muApp
	// y given the largest plausible x can be much larger than its mean.
	yTop := float64(xmax) * float64(len(m.Apps)) * lambdaApp / muApp
	ymax := wideBound(yTop)
	_ = yMean
	return m.BoundedMixture(xmax, ymax)
}

func wideBound(mean float64) int {
	b := int(mean + 12*math.Sqrt(mean) + 10)
	if b < 8 {
		b = 8
	}
	return b
}
