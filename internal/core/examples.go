package core

// This file provides the concrete parameter sets and example models used
// throughout the paper's evaluation, so experiments and tests share one
// source of truth.

// PaperParams is the Section 4 starting parameter set:
//
//	λ = 0.0055, μ = 0.001, λ' = 0.01, μ' = 0.01, λ'' = 0.1, l = 5, m = 3
//
// giving λ̄ = (λ/μ)(λ'/μ')·l·m·λ” = 5.5 · 1 · 15 · 0.1 = 8.25.
// The message service rate μ” is the experiment's knob: 20 for the
// headline numbers, 17 for Figures 11–18.
func PaperParams(muMsg float64) *Model {
	m := NewSymmetric(0.0055, 0.001, 0.01, 0.01, 0.1, muMsg, 5, 3)
	m.Name = "paper-P0"
	return m
}

// Figure9Params is the parameter set of Figures 9–10: as PaperParams but
// with λ = 0.005, so λ̄ = 7.5 and a(0) = N(0)/M(0) + (1+ν)M(0) =
// 0.09·5/1.5 + 6·1.5 = 9.3 (the paper reports 9.28).
func Figure9Params(muMsg float64) *Model {
	m := NewSymmetric(0.005, 0.001, 0.01, 0.01, 0.1, muMsg, 5, 3)
	m.Name = "paper-P9"
	return m
}

// Figure5Example reproduces the structure of the paper's Figure 5(a): four
// application types sharing five message types
// (A interactive, B file transfer, C image, D voice, E video).
// The rates are illustrative — the paper gives the structure, not numbers —
// chosen to respect the Section 4.1 rate-separation guidelines.
func Figure5Example() *Model {
	msg := func(name string, lambda, mu float64) MessageType {
		return MessageType{Name: name, Lambda: lambda, Mu: mu}
	}
	return &Model{
		Name:   "figure5",
		Lambda: 0.005,
		Mu:     0.001,
		Apps: []AppType{
			{
				Name: "programming", Lambda: 0.01, Mu: 0.01,
				Messages: []MessageType{
					msg("A/interactive", 0.2, 50),
					msg("B/file-transfer", 0.05, 10),
				},
			},
			{
				Name: "database", Lambda: 0.012, Mu: 0.015,
				Messages: []MessageType{
					msg("A/interactive", 0.25, 50),
				},
			},
			{
				Name: "graphics", Lambda: 0.008, Mu: 0.01,
				Messages: []MessageType{
					msg("C/image", 0.1, 5),
				},
			},
			{
				Name: "multimedia", Lambda: 0.006, Mu: 0.008,
				Messages: []MessageType{
					msg("A/interactive", 0.1, 50),
					msg("B/file-transfer", 0.04, 10),
					msg("C/image", 0.06, 5),
					msg("D/voice", 0.15, 20),
					msg("E/video", 0.08, 4),
				},
			},
		},
	}
}

// Figure8A, Figure8B and Figure8C build the three equivalent-mean-rate
// HAPs of Figure 8: four message-type leaves arranged as 4×1, 2×2 and 1×4
// application×message branches. By Equation 5 all three share
// λ̄ = 4·(λ/μ)(λ'/μ')·λ”, but the more the leaves concentrate under one
// application type the higher the per-active-instance rate (λ”, 2λ”,
// 4λ”) and hence the burstiness: (c) > (b) > (a).
func Figure8A() *Model { m := figure8(4, 1); m.Name = "figure8a-4x1"; return m }

// Figure8B is the 2 application × 2 message arrangement.
func Figure8B() *Model { m := figure8(2, 2); m.Name = "figure8b-2x2"; return m }

// Figure8C is the 1 application × 4 message arrangement.
func Figure8C() *Model { m := figure8(1, 4); m.Name = "figure8c-1x4"; return m }

func figure8(l, fanout int) *Model {
	return NewSymmetric(0.0055, 0.001, 0.01, 0.01, 0.1, 17, l, fanout)
}

// RloginCS is an HAP-CS example modelled on the paper's rlogin narrative:
// interactive commands are requests that almost always elicit a response,
// and the response frequently prompts the next command.
func RloginCS() *CSModel {
	return &CSModel{
		Name:   "rlogin-cs",
		Lambda: 0.005,
		Mu:     0.001,
		Apps: []CSAppType{
			{
				Name: "rlogin", Lambda: 0.01, Mu: 0.01,
				Messages: []CSMessageType{
					{
						Name:   "command",
						Lambda: 0.05,
						MuReq:  40,
						MuResp: 25,
						PResp:  0.95,
						PNext:  0.6,
					},
				},
			},
			{
				Name: "file-transfer", Lambda: 0.008, Mu: 0.012,
				Messages: []CSMessageType{
					{
						Name:   "block",
						Lambda: 0.03,
						MuReq:  15,
						MuResp: 60,
						PResp:  1.0,
						PNext:  0.3,
					},
				},
			},
		},
	}
}
