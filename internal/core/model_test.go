package core

import (
	"math"
	"strings"
	"testing"
)

func wantClose(t *testing.T, name string, got, want, relTol float64) {
	t.Helper()
	if want == 0 {
		if math.Abs(got) > relTol {
			t.Errorf("%s = %v, want ~0", name, got)
		}
		return
	}
	if math.Abs(got-want)/math.Abs(want) > relTol {
		t.Errorf("%s = %v, want %v (rel tol %v)", name, got, want, relTol)
	}
}

func TestPaperMeanRateIs825(t *testing.T) {
	m := PaperParams(20)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// Equation 4: λ̄ = (0.0055/0.001)(0.01/0.01)·0.1·5·3 = 8.25.
	wantClose(t, "mean rate", m.MeanRate(), 8.25, 1e-12)
	wantClose(t, "symmetric rate", m.MeanRateSymmetric(), 8.25, 1e-12)
	wantClose(t, "mean users", m.MeanUsers(), 5.5, 1e-12)
	wantClose(t, "mean apps", m.MeanApps(), 27.5, 1e-12)
	wantClose(t, "utilization", m.Utilization(), 8.25/20, 1e-12)
}

func TestSymmetricDetection(t *testing.T) {
	m := PaperParams(20)
	ok, la, ma, lm, fan := m.Symmetric()
	if !ok || la != 0.01 || ma != 0.01 || lm != 0.1 || fan != 3 {
		t.Fatalf("symmetric detection failed: %v %v %v %v %v", ok, la, ma, lm, fan)
	}
	m.Apps[2].Messages[1].Lambda = 0.11
	if ok, _, _, _, _ := m.Symmetric(); ok {
		t.Error("perturbed model still reported symmetric")
	}
	if ok, _, _, _, _ := Figure5Example().Symmetric(); ok {
		t.Error("figure5 must not be symmetric")
	}
}

func TestMeanRateSymmetricPanicsOnAsymmetric(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Figure5Example().MeanRateSymmetric()
}

func TestUniformServiceRate(t *testing.T) {
	m := PaperParams(20)
	mu, ok := m.UniformServiceRate()
	if !ok || mu != 20 {
		t.Fatalf("uniform rate = %v, %v", mu, ok)
	}
	if _, ok := Figure5Example().UniformServiceRate(); ok {
		t.Error("figure5 has heterogeneous service rates")
	}
}

func TestValidationMessages(t *testing.T) {
	m := &Model{Lambda: -1, Mu: 0}
	err := m.Validate()
	if err == nil {
		t.Fatal("expected error")
	}
	for _, frag := range []string{"user Lambda", "user Mu", "application type"} {
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("error %q lacks %q", err, frag)
		}
	}
	if err := Figure5Example().Validate(); err != nil {
		t.Errorf("figure5 should validate: %v", err)
	}
	if err := PaperParams(17).Validate(); err != nil {
		t.Errorf("paper params should validate: %v", err)
	}
}

func TestNumLeaves(t *testing.T) {
	if got := PaperParams(20).NumLeaves(); got != 15 {
		t.Errorf("leaves = %d, want 15", got)
	}
	if got := Figure5Example().NumLeaves(); got != 9 {
		t.Errorf("figure5 leaves = %d, want 9", got)
	}
}

func TestFigure8EquivalentMeanRates(t *testing.T) {
	// Equation 5: merging/splitting branches keeps λ̄ when leaves are kept.
	a, b, c := Figure8A(), Figure8B(), Figure8C()
	want := 4 * 5.5 * 1.0 * 0.1 // 4·(λ/μ)(λ'/μ')λ'' = 2.2
	for _, m := range []*Model{a, b, c} {
		wantClose(t, m.Name+" rate", m.MeanRate(), want, 1e-12)
		if m.NumLeaves() != 4 {
			t.Errorf("%s leaves = %d, want 4", m.Name, m.NumLeaves())
		}
	}
}

func TestFigure8BurstinessOrder(t *testing.T) {
	// Concentrating leaves under fewer application types raises the
	// interarrival SCV: (c) 1×4 > (b) 2×2 > (a) 4×1.
	sa := Figure8A().Interarrival().SCV()
	sb := Figure8B().Interarrival().SCV()
	sc := Figure8C().Interarrival().SCV()
	if !(sc > sb && sb > sa) {
		t.Errorf("SCV order violated: a=%v b=%v c=%v", sa, sb, sc)
	}
	if sa <= 1 {
		t.Errorf("even the flattest HAP should exceed Poisson SCV=1, got %v", sa)
	}
}

func TestScaleLevels(t *testing.T) {
	m := PaperParams(20)
	// Scaling any single level's arrival rate scales λ̄ linearly.
	for _, lvl := range []Level{LevelUser, LevelApp, LevelMessage} {
		up := m.Scale(lvl, 1.3)
		wantClose(t, lvl.String()+" scaled rate", up.MeanRate(), 8.25*1.3, 1e-12)
	}
	// Scaling a level's departure rate divides λ̄.
	down := m.ScaleHolding(LevelApp, 2)
	wantClose(t, "holding-scaled rate", down.MeanRate(), 8.25/2, 1e-12)
	// Original untouched (Clone semantics).
	wantClose(t, "original rate", m.MeanRate(), 8.25, 1e-12)
}

func TestScaleBothKeepsRate(t *testing.T) {
	// Section 5: scaling arrival and departure of one level together keeps
	// λ̄ (burstiness changes, which the solver tests verify).
	m := PaperParams(20)
	both := m.Scale(LevelApp, 1.1).ScaleHolding(LevelApp, 1.1)
	wantClose(t, "rate", both.MeanRate(), 8.25, 1e-12)
}

func TestRateSeparation(t *testing.T) {
	m := PaperParams(20)
	// Weakest link: λ'/λ = 0.01/0.0055 ≈ 1.82.
	wantClose(t, "separation", m.RateSeparation(), 0.01/0.0055, 1e-12)
}

func TestLevelString(t *testing.T) {
	if LevelUser.String() != "user" || LevelApp.String() != "application" ||
		LevelMessage.String() != "message" || Level(42).String() != "unknown" {
		t.Error("level strings wrong")
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := PaperParams(20)
	c := m.Clone()
	c.Apps[0].Messages[0].Lambda = 99
	if m.Apps[0].Messages[0].Lambda == 99 {
		t.Error("clone shares message slice")
	}
}

func TestStringRendersRate(t *testing.T) {
	s := PaperParams(20).String()
	if !strings.Contains(s, "8.25") {
		t.Errorf("String() = %q, want the mean rate in it", s)
	}
	if !strings.Contains((&Model{Apps: []AppType{{Lambda: 1, Mu: 1, Messages: []MessageType{{Lambda: 1, Mu: 1}}}}, Lambda: 1, Mu: 1}).String(), "HAP") {
		t.Error("unnamed model should print HAP")
	}
}

func TestMeanMessageRatePerApp(t *testing.T) {
	m := PaperParams(20)
	var sum float64
	for i := range m.Apps {
		sum += m.MeanMessageRatePerApp(i)
	}
	wantClose(t, "shares sum", sum, 1, 1e-12)
	wantClose(t, "each share", m.MeanMessageRatePerApp(0), 0.2, 1e-12)
}
