package core

import (
	"fmt"
	"math"
)

// This file derives the index of dispersion for counts (IDC) of a
// symmetric HAP in closed form — the burstiness fingerprint later traffic
// work (and the Fowler–Leland study the paper builds on) reports. For a
// doubly stochastic Poisson process with rate R(t),
//
//	IDC(t) = Var N(t) / E N(t) = 1 + (2/λ̄t)·∫₀ᵗ (t−u)·Cov_R(u) du.
//
// The symmetric HAP's rate is R = mλ”·y with the application count y
// driven by the user count x through a linear birth–death cascade, so the
// rate autocovariance is a two-exponential mixture:
//
//	Cov_y(u) = (Var(y) − D)·e^{−μ'u} + D·e^{−μu},
//	D        = l·λ'·σ_xy/(μ' − μ),   σ_xy = l·λ'·ν/(μ + μ'),
//
// with Var(y) = ν·l·a' + (l·a')²·ν·μ'/(μ+μ') (see
// mmpp.StationaryAppVariance, derived independently). Both relaxation
// times — the application lifetime 1/μ' and the user lifetime 1/μ —
// appear, which is exactly the "correlation from milliseconds to months"
// structure the paper argues conventional models miss.
type IDC struct {
	lamBar float64
	c1, a1 float64 // c1·e^{−a1·u}  (application time scale μ')
	c2, a2 float64 // c2·e^{−a2·u}  (user time scale μ)
}

// NewIDC computes the closed-form IDC of a symmetric model. It returns an
// error for asymmetric models (use the simulator's stats.IDC there) and
// for the degenerate μ = μ' case (a removable singularity not needed for
// any paper parameter set).
func (m *Model) NewIDC() (*IDC, error) {
	ok, lambdaApp, muApp, lambdaMsg, fanout := m.Symmetric()
	if !ok {
		return nil, fmt.Errorf("core: closed-form IDC requires a symmetric model")
	}
	if muApp == m.Mu {
		return nil, fmt.Errorf("core: closed-form IDC needs μ' ≠ μ")
	}
	nu := m.Nu()
	la := float64(len(m.Apps)) * lambdaApp / muApp // l·a'
	perApp := float64(fanout) * lambdaMsg          // m·λ''
	lLambdaApp := float64(len(m.Apps)) * lambdaApp // l·λ'

	sigmaXY := lLambdaApp * nu / (m.Mu + muApp)
	varY := nu*la + la*la*nu*muApp/(m.Mu+muApp)
	d := lLambdaApp * sigmaXY / (muApp - m.Mu)

	r2 := perApp * perApp
	return &IDC{
		lamBar: nu * la * perApp,
		c1:     r2 * (varY - d),
		a1:     muApp,
		c2:     r2 * d,
		a2:     m.Mu,
	}, nil
}

// CovRate returns the rate-process autocovariance Cov_R(u).
func (idc *IDC) CovRate(u float64) float64 {
	return idc.c1*math.Exp(-idc.a1*u) + idc.c2*math.Exp(-idc.a2*u)
}

// Components exposes the two-exponential covariance decomposition
// Cov_R(u) = c1·e^{−a1·u} + c2·e^{−a2·u} together with λ̄. The estimation
// layer (internal/fit) inverts exactly these coefficients to recover model
// parameters from an observed IDC curve.
func (idc *IDC) Components() (lamBar, c1, a1, c2, a2 float64) {
	return idc.lamBar, idc.c1, idc.a1, idc.c2, idc.a2
}

// RateVariance returns Var(R) = Cov_R(0).
func (idc *IDC) RateVariance() float64 { return idc.c1 + idc.c2 }

// At evaluates IDC(t) using ∫₀ᵗ(t−u)e^{−au}du = t/a − (1−e^{−at})/a².
func (idc *IDC) At(t float64) float64 {
	if t <= 0 {
		return 1
	}
	integral := idc.c1*IDCKernel(idc.a1, t) + idc.c2*IDCKernel(idc.a2, t)
	return 1 + 2*integral/(idc.lamBar*t)
}

// IDCKernel evaluates ∫₀ᵗ(t−u)e^{−au}du = t/a − (1−e^{−at})/a², the
// building block of every doubly-stochastic-Poisson IDC curve, stably for
// small at. Exported so the fitting layer can build the same basis
// functions it inverts.
func IDCKernel(a, t float64) float64 {
	at := a * t
	if at < 1e-6 {
		// Series: ∫(t−u)e^{−au}du ≈ t²/2 − a t³/6.
		return t*t/2 - a*t*t*t/6
	}
	return t/a + math.Expm1(-at)/(a*a)
}

// Limit returns the t→∞ asymptote IDC(∞) = 1 + 2(c1/a1 + c2/a2)/λ̄, the
// single number that summarises total burstiness. For the paper
// parameters the user term dominates: long-range rate modulation is the
// mechanism behind the mountains.
func (idc *IDC) Limit() float64 {
	return 1 + 2*(idc.c1/idc.a1+idc.c2/idc.a2)/idc.lamBar
}

// HalfTime returns the window length at which IDC(t) reaches half way
// between 1 and its limit — the characteristic burst time scale — found
// by bisection.
func (idc *IDC) HalfTime() float64 {
	target := (1 + idc.Limit()) / 2
	lo, hi := 1e-9, 10/idc.a2
	for idc.At(hi) < target {
		hi *= 2
		if hi > 1e12 {
			return hi
		}
	}
	for i := 0; i < 100 && hi/lo > 1+1e-9; i++ {
		mid := math.Sqrt(lo * hi)
		if idc.At(mid) < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return math.Sqrt(lo * hi)
}
