package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

func bytesReader(b []byte) io.Reader { return bytes.NewReader(b) }

// This file provides JSON (de)serialisation for models so the command-line
// tools can work with arbitrary asymmetric HAPs, not just the symmetric
// flag sets.

// MarshalJSONFile writes the model as indented JSON.
func (m *Model) MarshalJSONFile(path string) error {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("core: marshal model: %w", err)
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// LoadModel reads a model from a JSON file and validates it.
func LoadModel(path string) (*Model, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("core: read model: %w", err)
	}
	return ParseModel(b)
}

// ParseModel decodes and validates a JSON model.
func ParseModel(b []byte) (*Model, error) {
	var m Model
	dec := json.NewDecoder(bytesReader(b))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("core: parse model: %w", err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// LoadCSModel reads an HAP-CS model from a JSON file and validates it.
func LoadCSModel(path string) (*CSModel, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("core: read cs model: %w", err)
	}
	var m CSModel
	dec := json.NewDecoder(bytesReader(b))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("core: parse cs model: %w", err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}
