package core

import (
	"math"
	"testing"

	"hap/internal/quad"
)

func TestTwoLevelBasics(t *testing.T) {
	on := NewOnOff(0.5, 0.1, 10, 100) // ν = 5, λ̄ = 50
	wantClose(t, "nu", on.Nu(), 5, 1e-12)
	wantClose(t, "rate", on.MeanRate(), 50, 1e-12)
	wantClose(t, "util", on.Utilization(), 0.5, 1e-12)
	wantClose(t, "a(0)", on.PDFAtZero(), 60, 1e-12)
	wantClose(t, "zero mass", on.ZeroRateMass(), math.Exp(-5), 1e-12)
}

func TestTwoLevelDensityIntegratesToOne(t *testing.T) {
	on := NewOnOff(0.5, 0.1, 10, 100)
	integral := quad.ToInf(on.PDF, 0, 0.1, 1e-11)
	wantClose(t, "∫a", integral, 1, 1e-6)
}

func TestTwoLevelPDFMatchesCCDFDerivative(t *testing.T) {
	on := NewOnOff(0.3, 0.05, 4, 50)
	for _, x := range []float64{0.01, 0.1, 0.5, 2} {
		h := 1e-6
		d := -(on.CCDF(x+h) - on.CCDF(x-h)) / (2 * h)
		wantClose(t, "pdf", d, on.PDF(x), 1e-4)
	}
}

func TestTwoLevelMeanIdentity(t *testing.T) {
	on := NewOnOff(0.5, 0.1, 10, 100)
	numeric := quad.ToInf(on.CCDF, 0, 0.1, 1e-12)
	wantClose(t, "mean", on.Mean(), numeric, 1e-7)
}

func TestTwoLevelSCVExceedsOne(t *testing.T) {
	// ON-OFF superpositions are burstier than Poisson unless ν → ∞.
	on := NewOnOff(0.2, 0.1, 10, 100) // ν = 2: strongly modulated
	if scv := on.SCV(); scv <= 1 {
		t.Errorf("SCV = %v, want > 1", scv)
	}
	// As ν grows, the superposition approaches Poisson; SCV must shrink.
	heavy := NewOnOff(20, 0.1, 10, 10000) // ν = 200
	if heavy.SCV() >= on.SCV() {
		t.Error("many-source superposition should be closer to Poisson")
	}
}

func TestTwoLevelLaplaceMonotone(t *testing.T) {
	on := NewOnOff(0.5, 0.1, 10, 100)
	wantClose(t, "A*(0)", on.Laplace(0), 1, 1e-12)
	prev := 1.0
	for _, s := range []float64{1, 5, 25, 100} {
		v := on.Laplace(s)
		if v <= 0 || v >= prev {
			t.Errorf("A*(%v) = %v not in (0, prev)", s, v)
		}
		prev = v
	}
}

func TestTwoLevelIsConditionedThreeLevel(t *testing.T) {
	// The paper's identity: the 2-level/ON-OFF law equals the 3-level
	// closed form conditioned on exactly one user, exactly.
	on := NewOnOff(0.5, 0.1, 10, 100)
	lifted := on.Model()
	if err := lifted.Validate(); err != nil {
		t.Fatal(err)
	}
	ia := lifted.Interarrival()
	for _, x := range []float64{0, 0.02, 0.1, 0.4, 2} {
		wantClose(t, "conditional CCDF", ia.CCDFGivenUsers(1, x), on.CCDF(x), 1e-12)
	}
	// Conditioning on more users shortens interarrivals stochastically.
	if ia.CCDFGivenUsers(3, 0.1) >= ia.CCDFGivenUsers(1, 0.1) {
		t.Error("more users must shorten interarrivals")
	}
	defer func() {
		if recover() == nil {
			t.Error("x=0 must panic")
		}
	}()
	ia.CCDFGivenUsers(0, 0.1)
}

func TestTwoLevelValidate(t *testing.T) {
	bad := &TwoLevel{Lambda: 1, Mu: 0, MsgLambda: 1, MsgMu: 1}
	if bad.Validate() == nil {
		t.Error("zero Mu must fail validation")
	}
	defer func() {
		if recover() == nil {
			t.Error("NewOnOff must panic on bad params")
		}
	}()
	NewOnOff(0, 1, 1, 1)
}

func TestCSModelRates(t *testing.T) {
	cs := RloginCS()
	if err := cs.Validate(); err != nil {
		t.Fatal(err)
	}
	// Effective rate exceeds spontaneous rate whenever PResp > 0.
	if cs.MeanRate() <= cs.MeanSpontaneousRate() {
		t.Error("exchange amplification missing")
	}
	// Per-message-type algebra for the rlogin command loop.
	msg := cs.Apps[0].Messages[0]
	q := 0.95 * 0.6
	wantClose(t, "q", msg.ContinuationProbability(), q, 1e-12)
	wantClose(t, "req/exchange", msg.RequestsPerExchange(), 1/(1-q), 1e-12)
	wantClose(t, "resp/exchange", msg.ResponsesPerExchange(), 0.95/(1-q), 1e-12)
	wantClose(t, "msgs/exchange", msg.MessagesPerExchange(), 1.95/(1-q), 1e-12)
	if cs.OfferedLoad() <= 0 || cs.OfferedLoad() >= 1 {
		t.Errorf("offered load = %v, want (0,1) for this example", cs.OfferedLoad())
	}
}

func TestCSPlainProjectionPreservesRateAndLoad(t *testing.T) {
	cs := RloginCS()
	plain := cs.Plain()
	if err := plain.Validate(); err != nil {
		t.Fatal(err)
	}
	wantClose(t, "rate", plain.MeanRate(), cs.MeanRate(), 1e-12)
	// Offered load: Σ rate_type / μ_type over the plain model.
	var load float64
	for i, a := range plain.Apps {
		act := plain.Nu() * plain.AppLoad(i)
		for _, m := range a.Messages {
			load += act * m.Lambda / m.Mu
		}
	}
	wantClose(t, "load", load, cs.OfferedLoad(), 1e-12)
}

func TestCSValidateCatchesDivergentExchange(t *testing.T) {
	cs := RloginCS()
	cs.Apps[0].Messages[0].PResp = 1
	cs.Apps[0].Messages[0].PNext = 1
	if err := cs.Validate(); err == nil {
		t.Error("q = 1 must be rejected")
	}
	cs2 := RloginCS()
	cs2.Apps[0].Messages[0].PResp = 1.5
	if err := cs2.Validate(); err == nil {
		t.Error("probability > 1 must be rejected")
	}
	empty := &CSModel{Lambda: 1, Mu: 1}
	if err := empty.Validate(); err == nil {
		t.Error("empty app list must be rejected")
	}
}
