package core

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestModelJSONRoundTrip(t *testing.T) {
	m := Figure5Example()
	path := filepath.Join(t.TempDir(), "model.json")
	if err := m.MarshalJSONFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != m.Name || len(got.Apps) != len(m.Apps) {
		t.Fatalf("roundtrip mismatch: %+v", got)
	}
	wantClose(t, "rate", got.MeanRate(), m.MeanRate(), 1e-12)
}

func TestParseModelRejectsInvalid(t *testing.T) {
	if _, err := ParseModel([]byte(`{"Lambda": -1, "Mu": 0.1, "Apps": []}`)); err == nil {
		t.Error("invalid rates accepted")
	}
	if _, err := ParseModel([]byte(`{"Bogus": 1}`)); err == nil {
		t.Error("unknown field accepted")
	}
	if _, err := ParseModel([]byte(`not json`)); err == nil {
		t.Error("garbage accepted")
	}
}

func TestLoadModelMissingFile(t *testing.T) {
	if _, err := LoadModel(filepath.Join(t.TempDir(), "nope.json")); err == nil ||
		!strings.Contains(err.Error(), "read model") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestLoadCSModel(t *testing.T) {
	cs := RloginCS()
	path := filepath.Join(t.TempDir(), "cs.json")
	// Write via generic marshal (CSModel has no MarshalJSONFile helper).
	m := &Model{Name: "x", Lambda: 1, Mu: 1, Apps: []AppType{{Lambda: 1, Mu: 1,
		Messages: []MessageType{{Lambda: 1, Mu: 1}}}}}
	_ = m
	b := []byte(`{
		"Name": "cs",
		"Lambda": 0.005, "Mu": 0.001,
		"Apps": [{
			"Name": "rlogin", "Lambda": 0.01, "Mu": 0.01,
			"Messages": [{"Name": "cmd", "Lambda": 0.05, "MuReq": 40, "MuResp": 25, "PResp": 0.9, "PNext": 0.5}]
		}]
	}`)
	if err := writeFile(path, b); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCSModel(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Apps[0].Messages[0].PResp != 0.9 {
		t.Error("cs fields lost")
	}
	_ = cs
}

func writeFile(path string, b []byte) error {
	return os.WriteFile(path, b, 0o644)
}
