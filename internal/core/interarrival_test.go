package core

import (
	"math"
	"testing"

	"hap/internal/quad"
)

func TestInterarrivalPaperFigure9Values(t *testing.T) {
	// Figure 9 parameters: λ = 0.005 so ν = 5, λ̄ = 7.5, a(0) = 9.3
	// (the paper prints 9.28 from its plot).
	ia := Figure9Params(20).Interarrival()
	wantClose(t, "mean rate", ia.MeanRate(), 7.5, 1e-12)
	wantClose(t, "a(0)", ia.PDFAtZero(), 9.3, 1e-9)
	if ia.PDFAtZero() <= 7.5 {
		t.Error("HAP density at 0 must exceed the Poisson rate")
	}
}

func TestInterarrivalCrossingsMatchFigure9(t *testing.T) {
	// The paper reports intersections with the equal-load Poisson density
	// at t ≈ 0.077 and t ≈ 0.53.
	ia := Figure9Params(20).Interarrival()
	crossings := ia.CrossingsWithPoisson(1.0, 400)
	if len(crossings) < 2 {
		t.Fatalf("found %d crossings, want >= 2 (%v)", len(crossings), crossings)
	}
	wantClose(t, "first crossing", crossings[0], 0.077, 0.10)
	wantClose(t, "second crossing", crossings[len(crossings)-1], 0.53, 0.10)
}

func TestInterarrivalDensityIntegratesToOne(t *testing.T) {
	ia := PaperParams(20).Interarrival()
	integral := quad.ToInf(ia.PDF, 0, 0.1, 1e-11)
	wantClose(t, "∫a(t)", integral, 1, 1e-6)
}

func TestInterarrivalPDFIsMinusCCDFDerivative(t *testing.T) {
	ia := PaperParams(20).Interarrival()
	for _, x := range []float64{0.01, 0.05, 0.13, 0.5, 2} {
		h := 1e-6
		d := -(ia.CCDF(x+h) - ia.CCDF(x-h)) / (2 * h)
		wantClose(t, "a(t) vs -Ā'", d, ia.PDF(x), 1e-4)
	}
}

func TestInterarrivalCDFLimits(t *testing.T) {
	// The paper's sanity check: A(t) → 1 as t → ∞ and A(0) = 0.
	ia := PaperParams(20).Interarrival()
	wantClose(t, "A(0)", ia.CDF(0), 0, 1e-12)
	wantClose(t, "A(inf)", ia.CDF(1e6), 1, 1e-9)
	if ia.CCDF(-1) != 1 || ia.PDF(-1) != 0 {
		t.Error("negative t handling wrong")
	}
}

func TestInterarrivalMeanIdentity(t *testing.T) {
	// E[T] = (1 - zero-rate mass)/λ̄, and the quadrature of the CCDF must
	// agree with the closed form.
	ia := PaperParams(20).Interarrival()
	numeric := quad.ToInf(ia.CCDF, 0, 0.1, 1e-12)
	wantClose(t, "mean closed vs numeric", ia.Mean(), numeric, 1e-7)
	// For the paper parameters the zero-rate mass is tiny, so the mean is
	// within a percent of 1/λ̄ = 0.1212.
	wantClose(t, "mean ≈ 1/λ̄", ia.Mean(), 1/8.25, 0.01)
}

func TestInterarrivalSCVExceedsPoisson(t *testing.T) {
	ia := PaperParams(20).Interarrival()
	if scv := ia.SCV(); scv <= 1 {
		t.Errorf("HAP SCV = %v, want > 1", scv)
	}
}

func TestInterarrivalLMNRelations(t *testing.T) {
	// L' = -L·M and M' = -N (the paper states L'(t) = -L(t)M(t)).
	ia := PaperParams(20).Interarrival()
	h := 1e-6
	for _, x := range []float64{0.02, 0.1, 0.7, 3} {
		dL := (ia.L(x+h) - ia.L(x-h)) / (2 * h)
		wantClose(t, "L'", dL, -ia.L(x)*ia.M(x), 1e-4)
		dM := (ia.M(x+h) - ia.M(x-h)) / (2 * h)
		wantClose(t, "M'", dM, -ia.N(x), 1e-4)
	}
	wantClose(t, "L(0)", ia.L(0), 1, 1e-12)
	wantClose(t, "M(0)", ia.M(0), 1.5, 1e-12) // Σ aᵢΛᵢ = 5·1·0.3
	wantClose(t, "N(0)", ia.N(0), 0.45, 1e-12)
}

func TestInterarrivalLaplaceProperties(t *testing.T) {
	ia := PaperParams(20).Interarrival()
	wantClose(t, "A*(0)", ia.Laplace(0), 1, 1e-12)
	prev := 1.0
	for _, s := range []float64{0.5, 2, 10, 50} {
		v := ia.Laplace(s)
		if v <= 0 || v >= prev {
			t.Errorf("A*(%v) = %v not strictly decreasing in (0,1)", s, v)
		}
		prev = v
	}
	// Laplace at s of a distribution with density a(t): cross-check by
	// direct quadrature of the density.
	s := 10.0
	direct := quad.ToInf(func(t float64) float64 { return ia.PDF(t) * math.Exp(-s*t) }, 0, 0.05, 1e-12)
	wantClose(t, "A*(10) vs density integral", ia.Laplace(s), direct, 1e-5)
}

func TestInterarrivalTailLongerThanPoisson(t *testing.T) {
	// Section 4.2: past the second crossing HAP has more tail mass.
	ia := Figure9Params(20).Interarrival()
	rate := ia.MeanRate()
	for _, x := range []float64{0.6, 0.7, 1.0} {
		poisson := math.Exp(-rate * x)
		if ia.CCDF(x) <= poisson {
			t.Errorf("HAP CCDF(%v) = %v <= Poisson %v", x, ia.CCDF(x), poisson)
		}
	}
}

func TestUnboundedMixtureMatchesClosedForm(t *testing.T) {
	// The discrete state mixture with wide bounds is an independent
	// derivation of the same law; the two must agree.
	m := PaperParams(20)
	ia := m.Interarrival()
	mix, err := m.UnboundedMixture()
	if err != nil {
		t.Fatal(err)
	}
	wantClose(t, "mean rate", mix.MeanRate, ia.MeanRate(), 1e-6)
	wantClose(t, "zero mass", mix.ZeroMass, ia.ZeroRateMass(), 1e-6)
	h := mix.Hyper()
	for _, x := range []float64{0.01, 0.1, 0.3, 1} {
		wantClose(t, "ccdf", 1-h.CDF(x), ia.CCDF(x), 1e-4)
	}
	for _, s := range []float64{0.5, 5, 20} {
		wantClose(t, "laplace", mix.Laplace(s), ia.Laplace(s), 1e-4)
	}
}

func TestBoundedMixtureReducesBurstiness(t *testing.T) {
	// Figure 20: bounding users at 12 and applications at 60 must reduce
	// both the mean rate (slightly) and the interarrival SCV.
	m := PaperParams(20)
	free, err := m.BoundedMixture(60, 300)
	if err != nil {
		t.Fatal(err)
	}
	bound, err := m.BoundedMixture(12, 60)
	if err != nil {
		t.Fatal(err)
	}
	if bound.MeanRate >= free.MeanRate {
		t.Errorf("bounding should trim the rate: %v vs %v", bound.MeanRate, free.MeanRate)
	}
	freeSCV := scvOf(free)
	boundSCV := scvOf(bound)
	if boundSCV >= freeSCV {
		t.Errorf("bounding should reduce SCV: bounded %v vs free %v", boundSCV, freeSCV)
	}
}

func scvOf(mx *Mixture) float64 {
	h := mx.Hyper()
	m := h.Mean()
	return h.SecondMoment()/(m*m) - 1
}

func TestBoundedMixtureErrors(t *testing.T) {
	if _, err := Figure5Example().BoundedMixture(10, 10); err == nil {
		t.Error("asymmetric model must be rejected")
	}
	if _, err := PaperParams(20).BoundedMixture(0, 10); err == nil {
		t.Error("zero bound must be rejected")
	}
}
