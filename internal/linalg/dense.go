// Package linalg provides the small dense linear-algebra kernel the
// matrix-geometric HAP/M/1 solver needs: row-major matrices, a
// cache-friendly multiply, LU factorisation with partial pivoting, and
// left/right linear solves. Go has no linear-algebra standard library;
// these routines are deliberately minimal, allocation-conscious and fully
// tested against closed-form cases rather than general-purpose.
package linalg

import (
	"fmt"
	"math"
)

// Dense is a row-major n×m matrix.
type Dense struct {
	R, C int
	A    []float64
}

// NewDense allocates an n×m zero matrix.
func NewDense(n, m int) *Dense {
	if n <= 0 || m <= 0 {
		panic(fmt.Sprintf("linalg: invalid shape %dx%d", n, m))
	}
	return &Dense{R: n, C: m, A: make([]float64, n*m)}
}

// Eye returns the n×n identity.
func Eye(n int) *Dense {
	d := NewDense(n, n)
	for i := 0; i < n; i++ {
		d.A[i*n+i] = 1
	}
	return d
}

// At returns element (i, j).
func (d *Dense) At(i, j int) float64 { return d.A[i*d.C+j] }

// Set assigns element (i, j).
func (d *Dense) Set(i, j int, v float64) { d.A[i*d.C+j] = v }

// Row returns row i as a live slice.
func (d *Dense) Row(i int) []float64 { return d.A[i*d.C : (i+1)*d.C] }

// Clone returns a deep copy.
func (d *Dense) Clone() *Dense {
	out := NewDense(d.R, d.C)
	copy(out.A, d.A)
	return out
}

// Copy overwrites d with src (shapes must match).
func (d *Dense) Copy(src *Dense) {
	if d.R != src.R || d.C != src.C {
		panic("linalg: Copy shape mismatch")
	}
	copy(d.A, src.A)
}

// Zero clears the matrix.
func (d *Dense) Zero() {
	for i := range d.A {
		d.A[i] = 0
	}
}

// Mul computes dst = a·b. dst must not alias a or b; it is resized
// implicitly by panic if shapes mismatch. The kernel uses ikj order so the
// inner loop streams both b and dst rows.
func Mul(dst, a, b *Dense) {
	if a.C != b.R || dst.R != a.R || dst.C != b.C {
		panic("linalg: Mul shape mismatch")
	}
	if dst == a || dst == b {
		panic("linalg: Mul aliasing")
	}
	dst.Zero()
	n, k, m := a.R, a.C, b.C
	for i := 0; i < n; i++ {
		arow := a.A[i*k : (i+1)*k]
		drow := dst.A[i*m : (i+1)*m]
		for kk := 0; kk < k; kk++ {
			aik := arow[kk]
			if aik == 0 {
				continue
			}
			brow := b.A[kk*m : (kk+1)*m]
			for j, bv := range brow {
				drow[j] += aik * bv
			}
		}
	}
}

// MulAdd computes dst += a·b with the same constraints as Mul.
func MulAdd(dst, a, b *Dense) {
	if a.C != b.R || dst.R != a.R || dst.C != b.C {
		panic("linalg: MulAdd shape mismatch")
	}
	if dst == a || dst == b {
		panic("linalg: MulAdd aliasing")
	}
	n, k, m := a.R, a.C, b.C
	for i := 0; i < n; i++ {
		arow := a.A[i*k : (i+1)*k]
		drow := dst.A[i*m : (i+1)*m]
		for kk := 0; kk < k; kk++ {
			aik := arow[kk]
			if aik == 0 {
				continue
			}
			brow := b.A[kk*m : (kk+1)*m]
			for j, bv := range brow {
				drow[j] += aik * bv
			}
		}
	}
}

// Add computes dst = a + b (dst may alias a or b).
func Add(dst, a, b *Dense) {
	if a.R != b.R || a.C != b.C || dst.R != a.R || dst.C != a.C {
		panic("linalg: Add shape mismatch")
	}
	for i := range dst.A {
		dst.A[i] = a.A[i] + b.A[i]
	}
}

// Sub computes dst = a − b (dst may alias a or b).
func Sub(dst, a, b *Dense) {
	if a.R != b.R || a.C != b.C || dst.R != a.R || dst.C != a.C {
		panic("linalg: Sub shape mismatch")
	}
	for i := range dst.A {
		dst.A[i] = a.A[i] - b.A[i]
	}
}

// Scale multiplies every element by s in place.
func (d *Dense) Scale(s float64) {
	for i := range d.A {
		d.A[i] *= s
	}
}

// AddToDiag adds s to every diagonal element of a square matrix — the
// resolvent-building step (sI + M) the interarrival-transform evaluators
// perform once per Laplace argument.
func (d *Dense) AddToDiag(s float64) {
	if d.R != d.C {
		panic("linalg: AddToDiag needs a square matrix")
	}
	for i := 0; i < d.R; i++ {
		d.A[i*d.C+i] += s
	}
}

// MaxAbs returns max |aᵢⱼ|.
func (d *Dense) MaxAbs() float64 {
	var m float64
	for _, v := range d.A {
		if av := math.Abs(v); av > m {
			m = av
		}
	}
	return m
}

// RowSums returns the vector of row sums.
func (d *Dense) RowSums() []float64 {
	out := make([]float64, d.R)
	for i := 0; i < d.R; i++ {
		var s float64
		for _, v := range d.Row(i) {
			s += v
		}
		out[i] = s
	}
	return out
}

// VecMat computes out = v·m for a row vector v (len = m.R).
func VecMat(v []float64, m *Dense) []float64 {
	if len(v) != m.R {
		panic("linalg: VecMat shape mismatch")
	}
	out := make([]float64, m.C)
	for i, vi := range v {
		if vi == 0 {
			continue
		}
		row := m.Row(i)
		for j, mv := range row {
			out[j] += vi * mv
		}
	}
	return out
}

// MatVec computes out = m·v for a column vector v (len = m.C).
func MatVec(m *Dense, v []float64) []float64 {
	if len(v) != m.C {
		panic("linalg: MatVec shape mismatch")
	}
	out := make([]float64, m.R)
	for i := 0; i < m.R; i++ {
		row := m.Row(i)
		var s float64
		for j, mv := range row {
			s += mv * v[j]
		}
		out[i] = s
	}
	return out
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("linalg: Dot length mismatch")
	}
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}
