package linalg

import (
	"errors"
	"math"
)

// ErrSingular reports a numerically singular factorisation.
var ErrSingular = errors.New("linalg: matrix is singular")

// LU holds an LU factorisation with partial pivoting: P·A = L·U.
type LU struct {
	lu   *Dense
	piv  []int
	sign int
}

// Factor computes the LU factorisation of the square matrix a (which is
// copied, not modified).
func Factor(a *Dense) (*LU, error) {
	if a.R != a.C {
		return nil, errors.New("linalg: LU needs a square matrix")
	}
	n := a.R
	lu := a.Clone()
	piv := make([]int, n)
	for i := range piv {
		piv[i] = i
	}
	sign := 1
	for col := 0; col < n; col++ {
		// Pivot search.
		p := col
		max := math.Abs(lu.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(lu.At(r, col)); v > max {
				max, p = v, r
			}
		}
		if max == 0 {
			return nil, ErrSingular
		}
		if p != col {
			rp, rc := lu.Row(p), lu.Row(col)
			for j := range rp {
				rp[j], rc[j] = rc[j], rp[j]
			}
			piv[p], piv[col] = piv[col], piv[p]
			sign = -sign
		}
		d := lu.At(col, col)
		for r := col + 1; r < n; r++ {
			f := lu.At(r, col) / d
			lu.Set(r, col, f)
			if f == 0 {
				continue
			}
			rr := lu.Row(r)
			rc := lu.Row(col)
			for j := col + 1; j < n; j++ {
				rr[j] -= f * rc[j]
			}
		}
	}
	return &LU{lu: lu, piv: piv, sign: sign}, nil
}

// SolveVec solves A·x = b, returning x.
func (f *LU) SolveVec(b []float64) []float64 {
	n := f.lu.R
	if len(b) != n {
		panic("linalg: SolveVec length mismatch")
	}
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = b[f.piv[i]]
	}
	// Forward substitution (L has implicit unit diagonal).
	for i := 1; i < n; i++ {
		row := f.lu.Row(i)
		var s float64
		for j := 0; j < i; j++ {
			s += row[j] * x[j]
		}
		x[i] -= s
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		row := f.lu.Row(i)
		var s float64
		for j := i + 1; j < n; j++ {
			s += row[j] * x[j]
		}
		x[i] = (x[i] - s) / row[i]
	}
	return x
}

// Solve computes X solving A·X = B (column-wise solves). B is not
// modified.
func (f *LU) Solve(b *Dense) *Dense {
	n := f.lu.R
	if b.R != n {
		panic("linalg: Solve shape mismatch")
	}
	x := NewDense(n, b.C)
	// Apply row pivots of A to B's rows.
	for i := 0; i < n; i++ {
		copy(x.Row(i), b.Row(f.piv[i]))
	}
	// Forward substitution on all columns at once (row-major friendly).
	for i := 1; i < n; i++ {
		lrow := f.lu.Row(i)
		xi := x.Row(i)
		for j := 0; j < i; j++ {
			l := lrow[j]
			if l == 0 {
				continue
			}
			xj := x.Row(j)
			for c := range xi {
				xi[c] -= l * xj[c]
			}
		}
	}
	for i := n - 1; i >= 0; i-- {
		urow := f.lu.Row(i)
		xi := x.Row(i)
		for j := i + 1; j < n; j++ {
			u := urow[j]
			if u == 0 {
				continue
			}
			xj := x.Row(j)
			for c := range xi {
				xi[c] -= u * xj[c]
			}
		}
		d := urow[i]
		for c := range xi {
			xi[c] /= d
		}
	}
	return x
}

// SolveRight computes X solving X·A = B, i.e. Xᵀ from Aᵀ·Xᵀ = Bᵀ. B is
// not modified.
func (f *LU) SolveRight(b *Dense) *Dense {
	// X A = B  ⇔  Aᵀ Xᵀ = Bᵀ. Rather than transpose twice, solve row by
	// row: each row of X satisfies row·A = brow, i.e. Aᵀ·rowᵀ = browᵀ.
	// Reuse the same LU by noting it factors A, not Aᵀ, so build a
	// transposed solve explicitly.
	n := f.lu.R
	if b.C != n {
		panic("linalg: SolveRight shape mismatch")
	}
	x := NewDense(b.R, n)
	for r := 0; r < b.R; r++ {
		copy(x.Row(r), f.solveVecT(b.Row(r)))
	}
	return x
}

// solveVecT solves Aᵀ·y = b using the LU of A: Aᵀ = Uᵀ·Lᵀ·P, so solve
// Uᵀ·w = b (forward), Lᵀ·v = w (backward), y = Pᵀ·v.
func (f *LU) solveVecT(b []float64) []float64 {
	n := f.lu.R
	w := make([]float64, n)
	copy(w, b)
	// Uᵀ is lower triangular with U's diagonal.
	for i := 0; i < n; i++ {
		var s float64
		for j := 0; j < i; j++ {
			s += f.lu.At(j, i) * w[j]
		}
		w[i] = (w[i] - s) / f.lu.At(i, i)
	}
	// Lᵀ is upper triangular with unit diagonal.
	for i := n - 1; i >= 0; i-- {
		var s float64
		for j := i + 1; j < n; j++ {
			s += f.lu.At(j, i) * w[j]
		}
		w[i] -= s
	}
	// Undo pivoting: w holds v indexed by pivoted rows of A.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		y[f.piv[i]] = w[i]
	}
	return y
}

// SolveVecLeft solves the row-vector system x·A = b, i.e. Aᵀ·xᵀ = bᵀ.
func (f *LU) SolveVecLeft(b []float64) []float64 { return f.solveVecT(b) }

// Inverse returns A⁻¹.
func (f *LU) Inverse() *Dense {
	return f.Solve(Eye(f.lu.R))
}

// Det returns the determinant.
func (f *LU) Det() float64 {
	d := float64(f.sign)
	for i := 0; i < f.lu.R; i++ {
		d *= f.lu.At(i, i)
	}
	return d
}
