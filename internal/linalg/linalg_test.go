package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func wantClose(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %v, want %v (tol %v)", name, got, want, tol)
	}
}

func randMat(r *rand.Rand, n, m int) *Dense {
	d := NewDense(n, m)
	for i := range d.A {
		d.A[i] = r.NormFloat64()
	}
	return d
}

func TestMulSmallKnown(t *testing.T) {
	a := NewDense(2, 3)
	copy(a.A, []float64{1, 2, 3, 4, 5, 6})
	b := NewDense(3, 2)
	copy(b.A, []float64{7, 8, 9, 10, 11, 12})
	c := NewDense(2, 2)
	Mul(c, a, b)
	want := []float64{58, 64, 139, 154}
	for i, w := range want {
		wantClose(t, "c", c.A[i], w, 1e-12)
	}
}

func TestMulIdentity(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	a := randMat(r, 7, 7)
	c := NewDense(7, 7)
	Mul(c, a, Eye(7))
	for i := range a.A {
		wantClose(t, "aI", c.A[i], a.A[i], 1e-14)
	}
	Mul(c, Eye(7), a)
	for i := range a.A {
		wantClose(t, "Ia", c.A[i], a.A[i], 1e-14)
	}
}

func TestMulAddAccumulates(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	a, b := randMat(r, 5, 6), randMat(r, 6, 4)
	c1 := NewDense(5, 4)
	Mul(c1, a, b)
	c2 := NewDense(5, 4)
	MulAdd(c2, a, b)
	MulAdd(c2, a, b)
	for i := range c1.A {
		wantClose(t, "2ab", c2.A[i], 2*c1.A[i], 1e-12)
	}
}

func TestMulAliasPanics(t *testing.T) {
	a := Eye(3)
	defer func() {
		if recover() == nil {
			t.Error("aliasing must panic")
		}
	}()
	Mul(a, a, Eye(3))
}

func TestAddSubScale(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	a, b := randMat(r, 4, 4), randMat(r, 4, 4)
	c := NewDense(4, 4)
	Add(c, a, b)
	Sub(c, c, b)
	for i := range a.A {
		wantClose(t, "a+b-b", c.A[i], a.A[i], 1e-12)
	}
	c.Scale(2)
	for i := range a.A {
		wantClose(t, "2a", c.A[i], 2*a.A[i], 1e-12)
	}
}

func TestLUSolveVec(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	n := 20
	a := randMat(r, n, n)
	for i := 0; i < n; i++ { // diagonally dominant → well conditioned
		a.Set(i, i, a.At(i, i)+float64(n))
	}
	xTrue := make([]float64, n)
	for i := range xTrue {
		xTrue[i] = r.NormFloat64()
	}
	b := MatVec(a, xTrue)
	f, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	x := f.SolveVec(b)
	for i := range x {
		wantClose(t, "x", x[i], xTrue[i], 1e-9)
	}
}

func TestLUSolveMatrixAndInverse(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	n := 15
	a := randMat(r, n, n)
	for i := 0; i < n; i++ {
		a.Set(i, i, a.At(i, i)+float64(n))
	}
	f, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	inv := f.Inverse()
	prod := NewDense(n, n)
	Mul(prod, a, inv)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			wantClose(t, "A·A⁻¹", prod.At(i, j), want, 1e-9)
		}
	}
}

func TestLUSolveRight(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	n := 12
	a := randMat(r, n, n)
	for i := 0; i < n; i++ {
		a.Set(i, i, a.At(i, i)+float64(n))
	}
	xTrue := randMat(r, 5, n)
	b := NewDense(5, n)
	Mul(b, xTrue, a)
	f, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	x := f.SolveRight(b)
	for i := range x.A {
		wantClose(t, "XA=B", x.A[i], xTrue.A[i], 1e-8)
	}
}

func TestLUSingular(t *testing.T) {
	a := NewDense(3, 3)
	copy(a.A, []float64{1, 2, 3, 2, 4, 6, 1, 0, 1}) // row2 = 2·row1
	if _, err := Factor(a); err == nil {
		t.Error("expected ErrSingular")
	}
}

func TestLUDet(t *testing.T) {
	a := NewDense(2, 2)
	copy(a.A, []float64{3, 1, 4, 2}) // det = 2
	f, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	wantClose(t, "det", f.Det(), 2, 1e-12)
}

func TestVecMatAndMatVec(t *testing.T) {
	a := NewDense(2, 3)
	copy(a.A, []float64{1, 2, 3, 4, 5, 6})
	v := VecMat([]float64{1, 2}, a) // [9, 12, 15]
	for i, w := range []float64{9, 12, 15} {
		wantClose(t, "vM", v[i], w, 1e-12)
	}
	u := MatVec(a, []float64{1, 1, 1}) // [6, 15]
	for i, w := range []float64{6, 15} {
		wantClose(t, "Mv", u[i], w, 1e-12)
	}
	wantClose(t, "dot", Dot([]float64{1, 2, 3}, []float64{4, 5, 6}), 32, 1e-12)
}

func TestRowSumsAndMaxAbs(t *testing.T) {
	a := NewDense(2, 2)
	copy(a.A, []float64{1, -5, 2, 3})
	rs := a.RowSums()
	wantClose(t, "rs0", rs[0], -4, 1e-12)
	wantClose(t, "rs1", rs[1], 5, 1e-12)
	wantClose(t, "maxabs", a.MaxAbs(), 5, 1e-12)
}

// Property: (AB)C == A(BC) on random small matrices.
func TestQuickMulAssociative(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := randMat(r, 4, 5), randMat(r, 5, 3), randMat(r, 3, 6)
		ab := NewDense(4, 3)
		Mul(ab, a, b)
		abc1 := NewDense(4, 6)
		Mul(abc1, ab, c)
		bc := NewDense(5, 6)
		Mul(bc, b, c)
		abc2 := NewDense(4, 6)
		Mul(abc2, a, bc)
		for i := range abc1.A {
			if math.Abs(abc1.A[i]-abc2.A[i]) > 1e-10 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: Solve then multiply returns the right-hand side.
func TestQuickLURoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + int(uint(seed)%8)
		a := randMat(r, n, n)
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(2*n))
		}
		lu, err := Factor(a)
		if err != nil {
			return false
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = r.NormFloat64()
		}
		x := lu.SolveVec(b)
		back := MatVec(a, x)
		for i := range b {
			if math.Abs(back[i]-b[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestAddToDiag(t *testing.T) {
	d := NewDense(3, 3)
	d.Set(0, 1, 2)
	d.Set(2, 2, -4)
	d.AddToDiag(1.5)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			switch {
			case i == 0 && j == 1:
				want = 2
			case i == j:
				want = 1.5
			}
			if i == 2 && j == 2 {
				want = -4 + 1.5
			}
			if got := d.At(i, j); got != want {
				t.Errorf("At(%d,%d) = %v, want %v", i, j, got, want)
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("AddToDiag on a non-square matrix did not panic")
		}
	}()
	NewDense(2, 3).AddToDiag(1)
}
