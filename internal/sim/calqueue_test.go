package sim

import (
	"math/rand"
	"testing"
)

// checkSameOrder pops one event from both structures and fails on any
// divergence in the (t, seq) total order.
func checkSameOrder(t *testing.T, ref *eventHeap, s *sched) event {
	t.Helper()
	want := ref.pop()
	got := s.pop()
	if got.t != want.t || got.seq != want.seq {
		t.Fatalf("pop order diverged: sched (t=%v seq=%d), heap (t=%v seq=%d)",
			got.t, got.seq, want.t, want.seq)
	}
	return want
}

// TestSchedMatchesHeapRandomized drives the hybrid scheduler and a
// reference binary heap through identical randomized push/pop
// interleavings and asserts they agree on every pop. The time scales per
// trial span nine orders of magnitude so the calendar's width adaptation,
// bucket rollover, and direct-search fallback all fire; the push mix
// includes exact ties (same t, ordered by seq), small discrete clusters,
// and far-future outliers that overflow the slot arithmetic into the
// calendar's sorted overflow list.
func TestSchedMatchesHeapRandomized(t *testing.T) {
	scales := []float64{1e-6, 1e-3, 1.0, 1e3}
	for trial, scale := range scales {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		var ref eventHeap
		var s sched
		s.heap = make(eventHeap, 0, 16)
		var seq uint64
		now := 0.0
		push := func(tm float64) {
			seq++
			ev := event{t: tm, seq: seq}
			ref.push(ev)
			s.push(ev)
		}
		for step := 0; step < 120000; step++ {
			if s.len() == 0 || rng.Float64() < 0.55 {
				var tm float64
				switch r := rng.Float64(); {
				case r < 0.05:
					tm = now // exact tie with the clock
				case r < 0.12:
					tm = now + float64(rng.Intn(3))*scale // clustered ties
				case r < 0.13:
					tm = 1e290 * (1 + rng.Float64()) // slot overflow → far list
				default:
					tm = now + rng.ExpFloat64()*scale
				}
				push(tm)
			} else {
				now = checkSameOrder(t, &ref, &s).t
			}
			if s.len() != len(ref) {
				t.Fatalf("trial %d: size diverged: sched %d, heap %d", trial, s.len(), len(ref))
			}
		}
		for s.len() > 0 {
			checkSameOrder(t, &ref, &s)
		}
	}
}

// TestSchedMigrationSawtooth forces repeated heap→calendar→heap
// migrations by oscillating the pending count across both hysteresis
// thresholds, checking order on every pop.
func TestSchedMigrationSawtooth(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var ref eventHeap
	var s sched
	s.heap = make(eventHeap, 0, 16)
	var seq uint64
	now := 0.0
	for cycle := 0; cycle < 6; cycle++ {
		for s.len() < calEnter+512 {
			seq++
			ev := event{t: now + rng.ExpFloat64(), seq: seq}
			ref.push(ev)
			s.push(ev)
		}
		if !s.onCal {
			t.Fatalf("cycle %d: expected calendar above calEnter (len=%d)", cycle, s.len())
		}
		for s.len() > calExit/2 {
			now = checkSameOrder(t, &ref, &s).t
		}
		if s.onCal {
			t.Fatalf("cycle %d: expected heap below calExit (len=%d)", cycle, s.len())
		}
	}
	for s.len() > 0 {
		checkSameOrder(t, &ref, &s)
	}
}

// TestSchedBurstMigration covers the install-time shape: a large burst of
// pushes before any pop (no gap EWMA yet), then a full drain.
func TestSchedBurstMigration(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var ref eventHeap
	var s sched
	s.heap = make(eventHeap, 0, 16)
	var seq uint64
	for i := 0; i < 3*calEnter; i++ {
		seq++
		ev := event{t: rng.Float64() * 1e4, seq: seq}
		ref.push(ev)
		s.push(ev)
	}
	for s.len() > 0 {
		checkSameOrder(t, &ref, &s)
	}
}

// TestSchedAllTies drains a pending set where every event shares one
// timestamp — the degenerate zero-width case — asserting pure seq order.
func TestSchedAllTies(t *testing.T) {
	var s sched
	s.heap = make(eventHeap, 0, 16)
	n := calEnter + 100
	for i := 0; i < n; i++ {
		s.push(event{t: 5, seq: uint64(i + 1)})
	}
	for i := 0; i < n; i++ {
		e := s.pop()
		if e.seq != uint64(i+1) {
			t.Fatalf("tie order broken: pop %d returned seq %d", i, e.seq)
		}
	}
}

// TestCalendarSteadyStateZeroAlloc pins the zero-allocation contract of
// the calendar-queue steady state: once the structure is warm, a
// push/pop cycle at constant occupancy allocates nothing (the event-loop
// equivalent is one schedule per processed event).
func TestCalendarSteadyStateZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var s sched
	s.heap = make(eventHeap, 0, 16)
	var seq uint64
	now := 0.0
	for i := 0; i < 2*calEnter; i++ {
		seq++
		s.push(event{t: now + rng.ExpFloat64(), seq: seq})
	}
	if !s.onCal {
		t.Fatalf("expected calendar mode at len=%d", s.len())
	}
	// Warm the bucket capacities through a few full occupancy cycles.
	for i := 0; i < 8*calEnter; i++ {
		e := s.pop()
		now = e.t
		seq++
		s.push(event{t: now + rng.ExpFloat64(), seq: seq})
	}
	allocs := testing.AllocsPerRun(1000, func() {
		e := s.pop()
		now = e.t
		seq++
		s.push(event{t: now + rng.ExpFloat64(), seq: seq})
	})
	if allocs > 0 {
		t.Fatalf("calendar steady state allocates: %v allocs per push/pop cycle", allocs)
	}
}
