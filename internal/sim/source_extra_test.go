package sim

import (
	"math"
	"testing"

	"hap/internal/core"
	"hap/internal/dist"
)

func TestCBRSourceRateAndRegularity(t *testing.T) {
	streams := dist.NewStreams(1)
	src := NewCBRSource(0.05, dist.NewExponential(100), 0, streams.Next())
	res := Run(src, Config{Horizon: 1000, Seed: 1,
		Measure: MeasureConfig{Warmup: 10, KeepArrivalTimes: 1 << 16}})
	wantClose(t, "rate", res.Meas.ObservedRate(), 20, 0.02)
	ia := res.Meas.Interarrivals()
	for _, x := range ia {
		if math.Abs(x-0.05) > 1e-9 {
			t.Fatalf("jitterless CBR interarrival %v != 0.05", x)
		}
	}
}

func TestCBRSourceJitter(t *testing.T) {
	streams := dist.NewStreams(2)
	src := NewCBRSource(0.05, dist.NewExponential(100), 0, streams.Next())
	src.Jitter = dist.NewUniform(0.0001, 0.01)
	res := Run(src, Config{Horizon: 2000, Seed: 2,
		Measure: MeasureConfig{KeepArrivalTimes: 1 << 16}})
	ia := res.Meas.Interarrivals()
	var varAcc, mean float64
	for _, x := range ia {
		mean += x
	}
	mean /= float64(len(ia))
	for _, x := range ia {
		varAcc += (x - mean) * (x - mean)
	}
	if varAcc == 0 {
		t.Error("jitter produced perfectly regular arrivals")
	}
	// Mean interval = 0.05 + E[jitter].
	wantClose(t, "mean interval", mean, 0.05+(0.0001+0.01)/2, 0.02)
}

func TestCBRValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero interval must panic")
		}
	}()
	NewCBRSource(0, dist.NewExponential(1), 0, nil)
}

func TestMultiSuperposesRates(t *testing.T) {
	streams := dist.NewStreams(3)
	svc := dist.NewExponential(100)
	a := NewPoissonSource(5, svc, streams.Next())
	b := NewPoissonSource(7, svc, streams.Next())
	cbr := NewCBRSource(0.5, svc, 0, streams.Next()) // 2/s
	res := Run(NewMulti(a, b, cbr), Config{Horizon: 50000, Seed: 3,
		Measure: MeasureConfig{Warmup: 100}})
	wantClose(t, "superposed rate", res.Meas.ObservedRate(), 14, 0.03)
}

func TestMultiHAPPlusCBRPenalisesCBR(t *testing.T) {
	// The Section 6 implication in miniature: CBR sharing a queue with a
	// HAP sees far worse delay than alone at its proportional capacity.
	m := core.PaperParams(20)
	streams := dist.NewStreams(4)
	totalMu := 40.0
	svc := dist.NewExponential(totalMu)
	hapSrc := NewHAPSource(m, streams.Next())
	hapSrc.ServiceOverride = svc
	cbr := NewCBRSource(0.05, svc, hapSrc.ClassCount(), streams.Next()) // 20/s
	shared := Run(NewMulti(hapSrc, cbr), Config{Horizon: 100000, Seed: 4,
		Measure: MeasureConfig{Warmup: 1000, ClassCount: hapSrc.ClassCount() + 1}})

	streams2 := dist.NewStreams(5)
	aloneMu := totalMu * 20 / 28.25
	alone := Run(NewCBRSource(0.05, dist.NewExponential(aloneMu), 0, streams2.Next()),
		Config{Horizon: 100000, Seed: 5, Measure: MeasureConfig{Warmup: 1000, ClassCount: 1}})

	sharedCBR := shared.Meas.ByClass[hapSrc.ClassCount()].Mean()
	if sharedCBR <= alone.Meas.MeanDelay() {
		t.Errorf("CBR delay shared %v should exceed dedicated %v", sharedCBR, alone.Meas.MeanDelay())
	}
}

func TestMultiValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("empty Multi must panic")
		}
	}()
	NewMulti()
}

func TestMultiString(t *testing.T) {
	streams := dist.NewStreams(6)
	svc := dist.NewExponential(1)
	m := NewMulti(NewPoissonSource(1, svc, streams.Next()), NewCBRSource(1, svc, 0, streams.Next()))
	if m.String() == "" {
		t.Error("empty description")
	}
}
