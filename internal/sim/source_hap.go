package sim

import (
	"fmt"
	"math/rand"

	"hap/internal/core"
	"hap/internal/dist"
)

// HAPSource simulates the full 3-level hierarchy: users arrive and depart,
// spawn applications while present, and live applications emit messages.
// Applications outlive their user ("a user has departed but the
// application this user invoked may be still active"), exactly as the
// model specifies.
//
// Users and applications live in slot tables (see table in engine.go);
// every clock — user departure, application spawn, application departure,
// message emission — is a typed event carrying (slot, generation), so the
// steady-state event stream allocates nothing.
type HAPSource struct {
	Model *core.Model
	// StartStationary samples the initial user/application populations
	// from their stationary (Poisson) laws instead of starting empty,
	// which removes the user-level transient (~1/μ) from the warmup bill.
	StartStationary bool
	// ServiceOverride, when non-nil, replaces every message service law.
	ServiceOverride dist.Distribution

	rng   *rand.Rand
	eb    *dist.ExpBatch // batched reader over rng, armed at end of Install
	e     *Engine
	id    int32
	st    int32 // station this source feeds
	users table
	apps  table
	svc   [][]dist.Distribution // [appType][msgType]
	cls   [][]int               // flattened class index per (i,j)
}

// NewHAPSource builds a source for the model with its own random stream.
func NewHAPSource(m *core.Model, rng *rand.Rand) *HAPSource {
	if err := m.Validate(); err != nil {
		panic(err)
	}
	s := &HAPSource{Model: m, StartStationary: true, rng: rng}
	idx := 0
	for _, a := range m.Apps {
		svcRow := make([]dist.Distribution, len(a.Messages))
		clsRow := make([]int, len(a.Messages))
		for j, msg := range a.Messages {
			svcRow[j] = dist.NewExponential(msg.Mu)
			clsRow[j] = idx
			idx++
		}
		s.svc = append(s.svc, svcRow)
		s.cls = append(s.cls, clsRow)
	}
	return s
}

// ClassCount returns the number of message classes (leaves).
func (s *HAPSource) ClassCount() int { return s.Model.NumLeaves() }

func (s *HAPSource) String() string { return fmt.Sprintf("hap(%s)", s.Model) }

// Install schedules the initial population and the first user arrival.
func (s *HAPSource) Install(e *Engine) {
	s.e = e
	s.id = e.registerHAP(s)
	s.st = e.installStation
	if s.StartStationary {
		nUsers := dist.PoissonSample(s.rng, s.Model.Nu())
		for k := 0; k < nUsers; k++ {
			s.addUser()
		}
		// Orphaned applications from already-departed users: the
		// stationary application population given x users is
		// Poisson(x·aᵢ) per type only in the fast-equilibrium view; the
		// exact marginal is Poisson(ν·aᵢ) in total. Sampling per live
		// user covers the lion's share; the remainder (ν−x)·aᵢ belongs
		// to departed users' still-running applications.
		for i := range s.Model.Apps {
			meanOrphans := (s.Model.Nu() - float64(nUsers)) * s.Model.AppLoad(i)
			if meanOrphans > 0 {
				for k := 0; k < dist.PoissonSample(s.rng, meanOrphans); k++ {
					s.addApp(int32(i))
				}
			}
		}
	}
	s.e.scheduleEvAfter(s.exp(s.Model.Lambda), evHAPUserArrive, s.id, 0, 0, 0)
	// From here on every draw this source takes from its stream is
	// exponential, so a block-refilled reader yields the identical
	// sequence (see dist.ExpBatch). Armed last so the install-time mix of
	// uniform (PoissonSample) and exponential draws above stays direct.
	s.eb = dist.NewExpBatch(s.rng)
}

func (s *HAPSource) exp(rate float64) float64 {
	if s.eb != nil {
		return s.eb.Exp() / rate
	}
	return s.rng.ExpFloat64() / rate
}

func (s *HAPSource) userArrive() {
	s.addUser()
	s.e.scheduleEvAfter(s.exp(s.Model.Lambda), evHAPUserArrive, s.id, 0, 0, 0)
}

// addUser creates a live user with its departure and per-type spawn clocks.
func (s *HAPSource) addUser() {
	slot, gen := s.users.add(0)
	s.e.addUsers(s.st, 1)
	s.e.scheduleEvAfter(s.exp(s.Model.Mu), evHAPUserDepart, s.id, slot, gen, 0)
	for i := range s.Model.Apps {
		s.scheduleSpawn(slot, gen, int32(i))
	}
}

func (s *HAPSource) userDepart(slot, gen int32) {
	if !s.users.ok(slot, gen) {
		return
	}
	s.users.kill(slot)
	s.e.addUsers(s.st, -1)
}

func (s *HAPSource) scheduleSpawn(slot, gen, ti int32) {
	s.e.scheduleEvAfter(s.exp(s.Model.Apps[ti].Lambda), evHAPSpawn, s.id, slot, gen, ti)
}

// spawn fires a user's application-invocation clock for type ti; it is
// lazily cancelled by the user's departure via the generation check.
func (s *HAPSource) spawn(slot, gen, ti int32) {
	if !s.users.ok(slot, gen) {
		return
	}
	s.addApp(ti)
	s.scheduleSpawn(slot, gen, ti)
}

// addApp creates a live application instance with its departure and
// per-message-type emission clocks.
func (s *HAPSource) addApp(ti int32) {
	slot, gen := s.apps.add(ti)
	s.e.addApps(s.st, 1)
	s.e.scheduleEvAfter(s.exp(s.Model.Apps[ti].Mu), evHAPAppDepart, s.id, slot, gen, 0)
	for j := range s.Model.Apps[ti].Messages {
		s.scheduleEmit(slot, gen, ti, int32(j))
	}
}

func (s *HAPSource) appDepart(slot, gen int32) {
	if !s.apps.ok(slot, gen) {
		return
	}
	s.apps.kill(slot)
	s.e.addApps(s.st, -1)
}

func (s *HAPSource) scheduleEmit(slot, gen, ti, j int32) {
	s.e.scheduleEvAfter(s.exp(s.Model.Apps[ti].Messages[j].Lambda), evHAPEmit, s.id, slot, gen, j)
}

// emit fires an application's message clock for type j.
func (s *HAPSource) emit(slot, gen, j int32) {
	if !s.apps.ok(slot, gen) {
		return
	}
	ti := s.apps.val[slot]
	svc := s.svc[ti][j]
	if s.ServiceOverride != nil {
		svc = s.ServiceOverride
	}
	s.e.arriveInto(s.st, svc, s.cls[ti][j])
	s.scheduleEmit(slot, gen, ti, j)
}

// PoissonSource generates Poisson(Rate) messages with the given service
// law — the paper's baseline.
type PoissonSource struct {
	Rate float64
	Svc  dist.Distribution
	rng  *rand.Rand
	eb   *dist.ExpBatch
	e    *Engine
	id   int32
	st   int32
}

// NewPoissonSource builds the baseline source.
func NewPoissonSource(rate float64, svc dist.Distribution, rng *rand.Rand) *PoissonSource {
	if rate <= 0 {
		panic("sim: poisson rate must be positive")
	}
	return &PoissonSource{Rate: rate, Svc: svc, rng: rng}
}

func (s *PoissonSource) String() string { return fmt.Sprintf("poisson(rate=%g)", s.Rate) }

// Install schedules the first arrival. Every draw a Poisson source takes
// is exponential, so its stream is batched from the very first draw.
func (s *PoissonSource) Install(e *Engine) {
	s.e = e
	s.id = e.registerPoisson(s)
	s.st = e.installStation
	s.eb = dist.NewExpBatch(s.rng)
	e.scheduleEvAfter(s.eb.Exp()/s.Rate, evPoissonArrive, s.id, 0, 0, 0)
}

func (s *PoissonSource) arrive() {
	s.e.arriveInto(s.st, s.Svc, 0)
	s.e.scheduleEvAfter(s.eb.Exp()/s.Rate, evPoissonArrive, s.id, 0, 0, 0)
}

// OnOffSource simulates the 2-level HAP / ON-OFF model: calls arrive
// Poisson(Lambda), stay exp(Mu) and emit messages at MsgLambda while
// present.
type OnOffSource struct {
	TL              *core.TwoLevel
	StartStationary bool
	rng             *rand.Rand
	eb              *dist.ExpBatch
	e               *Engine
	id              int32
	st              int32
	calls           table
	svc             dist.Distribution
}

// NewOnOffSource builds a 2-level source.
func NewOnOffSource(tl *core.TwoLevel, rng *rand.Rand) *OnOffSource {
	if err := tl.Validate(); err != nil {
		panic(err)
	}
	return &OnOffSource{TL: tl, StartStationary: true, rng: rng, svc: dist.NewExponential(tl.MsgMu)}
}

func (s *OnOffSource) String() string {
	return fmt.Sprintf("onoff(ν=%g γ=%g)", s.TL.Nu(), s.TL.MsgLambda)
}

// Install schedules the initial calls and the first call arrival.
func (s *OnOffSource) Install(e *Engine) {
	s.e = e
	s.id = e.registerOnOff(s)
	s.st = e.installStation
	if s.StartStationary {
		for k := 0; k < dist.PoissonSample(s.rng, s.TL.Nu()); k++ {
			s.addCall()
		}
	}
	e.scheduleEvAfter(s.exp(s.TL.Lambda), evOnOffArrive, s.id, 0, 0, 0)
	// Post-install draws are all exponential; see HAPSource.Install.
	s.eb = dist.NewExpBatch(s.rng)
}

func (s *OnOffSource) exp(rate float64) float64 {
	if s.eb != nil {
		return s.eb.Exp() / rate
	}
	return s.rng.ExpFloat64() / rate
}

func (s *OnOffSource) callArrive() {
	s.addCall()
	s.e.scheduleEvAfter(s.exp(s.TL.Lambda), evOnOffArrive, s.id, 0, 0, 0)
}

func (s *OnOffSource) addCall() {
	slot, gen := s.calls.add(0)
	s.e.addUsers(s.st, 1)
	s.e.scheduleEvAfter(s.exp(s.TL.Mu), evOnOffDepart, s.id, slot, gen, 0)
	s.scheduleEmit(slot, gen)
}

func (s *OnOffSource) callDepart(slot, gen int32) {
	if !s.calls.ok(slot, gen) {
		return
	}
	s.calls.kill(slot)
	s.e.addUsers(s.st, -1)
}

func (s *OnOffSource) scheduleEmit(slot, gen int32) {
	s.e.scheduleEvAfter(s.exp(s.TL.MsgLambda), evOnOffEmit, s.id, slot, gen, 0)
}

func (s *OnOffSource) emit(slot, gen int32) {
	if !s.calls.ok(slot, gen) {
		return
	}
	s.e.arriveInto(s.st, s.svc, 0)
	s.scheduleEmit(slot, gen)
}
