package sim

import (
	"fmt"
	"math/rand"

	"hap/internal/core"
	"hap/internal/dist"
)

// HAPSource simulates the full 3-level hierarchy: users arrive and depart,
// spawn applications while present, and live applications emit messages.
// Applications outlive their user ("a user has departed but the
// application this user invoked may be still active"), exactly as the
// model specifies.
type HAPSource struct {
	Model *core.Model
	// StartStationary samples the initial user/application populations
	// from their stationary (Poisson) laws instead of starting empty,
	// which removes the user-level transient (~1/μ) from the warmup bill.
	StartStationary bool
	// ServiceOverride, when non-nil, replaces every message service law.
	ServiceOverride dist.Distribution

	rng *rand.Rand
	e   *Engine
	svc [][]dist.Distribution // [appType][msgType]
	cls [][]int               // flattened class index per (i,j)
}

type simUser struct{ alive bool }

type simApp struct {
	alive bool
	ti    int
}

// NewHAPSource builds a source for the model with its own random stream.
func NewHAPSource(m *core.Model, rng *rand.Rand) *HAPSource {
	if err := m.Validate(); err != nil {
		panic(err)
	}
	s := &HAPSource{Model: m, StartStationary: true, rng: rng}
	idx := 0
	for _, a := range m.Apps {
		svcRow := make([]dist.Distribution, len(a.Messages))
		clsRow := make([]int, len(a.Messages))
		for j, msg := range a.Messages {
			svcRow[j] = dist.NewExponential(msg.Mu)
			clsRow[j] = idx
			idx++
		}
		s.svc = append(s.svc, svcRow)
		s.cls = append(s.cls, clsRow)
	}
	return s
}

// ClassCount returns the number of message classes (leaves).
func (s *HAPSource) ClassCount() int { return s.Model.NumLeaves() }

func (s *HAPSource) String() string { return fmt.Sprintf("hap(%s)", s.Model) }

// Install schedules the initial population and the first user arrival.
func (s *HAPSource) Install(e *Engine) {
	s.e = e
	if s.StartStationary {
		nUsers := dist.PoissonSample(s.rng, s.Model.Nu())
		for k := 0; k < nUsers; k++ {
			s.addUser()
		}
		// Orphaned applications from already-departed users: the
		// stationary application population given x users is
		// Poisson(x·aᵢ) per type only in the fast-equilibrium view; the
		// exact marginal is Poisson(ν·aᵢ) in total. Sampling per live
		// user covers the lion's share; the remainder (ν−x)·aᵢ belongs
		// to departed users' still-running applications.
		for i := range s.Model.Apps {
			meanOrphans := (s.Model.Nu() - float64(nUsers)) * s.Model.AppLoad(i)
			if meanOrphans > 0 {
				for k := 0; k < dist.PoissonSample(s.rng, meanOrphans); k++ {
					s.addApp(i)
				}
			}
		}
	}
	s.e.ScheduleAfter(s.exp(s.Model.Lambda), s.userArrival)
}

func (s *HAPSource) exp(rate float64) float64 { return s.rng.ExpFloat64() / rate }

func (s *HAPSource) userArrival() {
	s.addUser()
	s.e.ScheduleAfter(s.exp(s.Model.Lambda), s.userArrival)
}

// addUser creates a live user with its departure and per-type spawn clocks.
func (s *HAPSource) addUser() {
	u := &simUser{alive: true}
	s.e.SetUsers(s.e.Users() + 1)
	s.e.ScheduleAfter(s.exp(s.Model.Mu), func() {
		u.alive = false
		s.e.SetUsers(s.e.Users() - 1)
	})
	for i := range s.Model.Apps {
		s.scheduleSpawn(u, i)
	}
}

func (s *HAPSource) scheduleSpawn(u *simUser, ti int) {
	s.e.ScheduleAfter(s.exp(s.Model.Apps[ti].Lambda), func() {
		if !u.alive {
			return // lazily cancelled by the user's departure
		}
		s.addApp(ti)
		s.scheduleSpawn(u, ti)
	})
}

// addApp creates a live application instance with its departure and
// per-message-type emission clocks.
func (s *HAPSource) addApp(ti int) {
	a := &simApp{alive: true, ti: ti}
	s.e.SetApps(s.e.Apps() + 1)
	s.e.ScheduleAfter(s.exp(s.Model.Apps[ti].Mu), func() {
		a.alive = false
		s.e.SetApps(s.e.Apps() - 1)
	})
	for j := range s.Model.Apps[ti].Messages {
		s.scheduleEmit(a, j)
	}
}

func (s *HAPSource) scheduleEmit(a *simApp, j int) {
	s.e.ScheduleAfter(s.exp(s.Model.Apps[a.ti].Messages[j].Lambda), func() {
		if !a.alive {
			return
		}
		svc := s.svc[a.ti][j]
		if s.ServiceOverride != nil {
			svc = s.ServiceOverride
		}
		s.e.ArriveMessage(svc, s.cls[a.ti][j])
		s.scheduleEmit(a, j)
	})
}

// PoissonSource generates Poisson(Rate) messages with the given service
// law — the paper's baseline.
type PoissonSource struct {
	Rate float64
	Svc  dist.Distribution
	rng  *rand.Rand
	e    *Engine
}

// NewPoissonSource builds the baseline source.
func NewPoissonSource(rate float64, svc dist.Distribution, rng *rand.Rand) *PoissonSource {
	if rate <= 0 {
		panic("sim: poisson rate must be positive")
	}
	return &PoissonSource{Rate: rate, Svc: svc, rng: rng}
}

func (s *PoissonSource) String() string { return fmt.Sprintf("poisson(rate=%g)", s.Rate) }

// Install schedules the first arrival.
func (s *PoissonSource) Install(e *Engine) {
	s.e = e
	e.ScheduleAfter(s.rng.ExpFloat64()/s.Rate, s.arrive)
}

func (s *PoissonSource) arrive() {
	s.e.ArriveMessage(s.Svc, 0)
	s.e.ScheduleAfter(s.rng.ExpFloat64()/s.Rate, s.arrive)
}

// OnOffSource simulates the 2-level HAP / ON-OFF model: calls arrive
// Poisson(Lambda), stay exp(Mu) and emit messages at MsgLambda while
// present.
type OnOffSource struct {
	TL              *core.TwoLevel
	StartStationary bool
	rng             *rand.Rand
	e               *Engine
	svc             dist.Distribution
}

// NewOnOffSource builds a 2-level source.
func NewOnOffSource(tl *core.TwoLevel, rng *rand.Rand) *OnOffSource {
	if err := tl.Validate(); err != nil {
		panic(err)
	}
	return &OnOffSource{TL: tl, StartStationary: true, rng: rng, svc: dist.NewExponential(tl.MsgMu)}
}

func (s *OnOffSource) String() string {
	return fmt.Sprintf("onoff(ν=%g γ=%g)", s.TL.Nu(), s.TL.MsgLambda)
}

// Install schedules the initial calls and the first call arrival.
func (s *OnOffSource) Install(e *Engine) {
	s.e = e
	if s.StartStationary {
		for k := 0; k < dist.PoissonSample(s.rng, s.TL.Nu()); k++ {
			s.addCall()
		}
	}
	e.ScheduleAfter(s.rng.ExpFloat64()/s.TL.Lambda, s.callArrival)
}

func (s *OnOffSource) callArrival() {
	s.addCall()
	s.e.ScheduleAfter(s.rng.ExpFloat64()/s.TL.Lambda, s.callArrival)
}

func (s *OnOffSource) addCall() {
	c := &simUser{alive: true}
	s.e.SetUsers(s.e.Users() + 1)
	s.e.ScheduleAfter(s.rng.ExpFloat64()/s.TL.Mu, func() {
		c.alive = false
		s.e.SetUsers(s.e.Users() - 1)
	})
	s.scheduleCallEmit(c)
}

func (s *OnOffSource) scheduleCallEmit(c *simUser) {
	s.e.ScheduleAfter(s.rng.ExpFloat64()/s.TL.MsgLambda, func() {
		if !c.alive {
			return
		}
		s.e.ArriveMessage(s.svc, 0)
		s.scheduleCallEmit(c)
	})
}
