package sim

import (
	"errors"
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"hap/internal/core"
	"hap/internal/dist"
	"hap/internal/haperr"
)

// TestShardedBitIdentical pins the sharding determinism contract: the
// merged measurements (and the aggregate counters) are bit-identical for
// every shard count, because source i's sample path depends only on
// dist.SubSeed(seed, i), never on grouping.
func TestShardedBitIdentical(t *testing.T) {
	m := core.PaperParams(20)
	cfg := ShardedConfig{
		Horizon: 3000,
		Seed:    42,
		Measure: MeasureConfig{Warmup: 200, TrackBusy: true},
	}
	shardCounts := []int{1, 2, 4, runtime.NumCPU()}
	var base *ShardedResult
	for _, shards := range shardCounts {
		cfg.Shards = shards
		res := RunShardedHAP(m, 8, cfg)
		if res.Err != nil {
			t.Fatalf("shards=%d: unexpected error: %v", shards, res.Err)
		}
		if res.Truncated {
			t.Fatalf("shards=%d: unexpected truncation", shards)
		}
		if base == nil {
			base = res
			if res.Arrivals == 0 || res.Departures == 0 {
				t.Fatalf("degenerate run: arrivals=%d departures=%d", res.Arrivals, res.Departures)
			}
			continue
		}
		if res.Arrivals != base.Arrivals || res.Departures != base.Departures || res.Events != base.Events {
			t.Fatalf("shards=%d: counters diverged: (%d,%d,%d) vs (%d,%d,%d)",
				shards, res.Arrivals, res.Departures, res.Events,
				base.Arrivals, base.Departures, base.Events)
		}
		if !reflect.DeepEqual(res.Merged, base.Merged) {
			t.Fatalf("shards=%d: merged measurements diverged from shards=%d", shards, base.Shards)
		}
		for i := range res.PerSource {
			if !reflect.DeepEqual(res.PerSource[i], base.PerSource[i]) {
				t.Fatalf("shards=%d: source %d measurements diverged", shards, i)
			}
		}
	}
}

// TestShardedOnOffBitIdentical covers the 2-level source under the same
// contract.
func TestShardedOnOffBitIdentical(t *testing.T) {
	tl := &core.TwoLevel{Lambda: 0.01, Mu: 0.005, MsgLambda: 0.5, MsgMu: 20}
	cfg := ShardedConfig{Horizon: 4000, Seed: 7}
	cfg.Shards = 1
	a := RunShardedOnOff(tl, 6, cfg)
	cfg.Shards = 3
	b := RunShardedOnOff(tl, 6, cfg)
	if a.Err != nil || b.Err != nil {
		t.Fatalf("unexpected errors: %v, %v", a.Err, b.Err)
	}
	if !reflect.DeepEqual(a.Merged, b.Merged) {
		t.Fatal("ON-OFF merged measurements depend on shard count")
	}
}

// TestStationMatchesDedicatedEngine asserts the station-isolation half of
// the contract directly: a source run on a shared engine (alongside other
// stations) produces bit-identical measurements to the same source run
// alone on its own engine.
func TestStationMatchesDedicatedEngine(t *testing.T) {
	m := core.PaperParams(20)
	build := func(i int) (Source, *rand.Rand) {
		st := dist.NewStreams(dist.SubSeed(42, i))
		arrival, service := st.Next(), st.Next()
		return NewHAPSource(m, arrival), service
	}

	// Shared engine hosting three stations.
	shared := NewEngine(2000, dist.NewStreams(42).Next(), nil)
	sharedMeas := make([]*Measurements, 3)
	for i := 0; i < 3; i++ {
		src, service := build(i)
		sharedMeas[i] = NewMeasurements(MeasureConfig{ClassCount: m.NumLeaves()})
		st := shared.AddStation(service, sharedMeas[i], true)
		shared.InstallAt(src, st)
	}
	shared.Run()

	// The same three systems, each on a dedicated engine.
	for i := 0; i < 3; i++ {
		src, service := build(i)
		meas := NewMeasurements(MeasureConfig{ClassCount: m.NumLeaves()})
		solo := NewEngine(2000, dist.NewStreams(42).Next(), nil)
		st := solo.AddStation(service, meas, true)
		solo.InstallAt(src, st)
		solo.Run()
		if !reflect.DeepEqual(meas, sharedMeas[i]) {
			t.Fatalf("station %d: shared-engine measurements differ from dedicated engine", i)
		}
	}
}

// TestShardedValidation covers the error paths: bad horizon and a
// non-positive source count report instead of panicking.
func TestShardedValidation(t *testing.T) {
	if res := RunShardedHAP(core.PaperParams(20), 4, ShardedConfig{Horizon: -1}); !errors.Is(res.Err, haperr.ErrBadParameter) {
		t.Fatalf("bad horizon: got err %v", res.Err)
	}
	res := RunSharded(0, func(i int, a, s *rand.Rand) Source { return nil }, ShardedConfig{Horizon: 10})
	if !errors.Is(res.Err, haperr.ErrBadParameter) {
		t.Fatalf("zero sources: got err %v", res.Err)
	}
}

// TestShardedTruncation: a tiny per-shard event budget truncates the run
// and says so.
func TestShardedTruncation(t *testing.T) {
	res := RunShardedHAP(core.PaperParams(20), 4, ShardedConfig{Horizon: 1e6, Seed: 1, Shards: 2, MaxEvents: 500})
	if !res.Truncated {
		t.Fatal("expected truncation under a 500-event budget")
	}
}

// TestShardedUsesCalendarQueue sanity-checks the sizing rationale in
// DESIGN.md: an aggregate of many HAP sources holds enough pending events
// to cross the calendar threshold on a single shard.
func TestShardedUsesCalendarQueue(t *testing.T) {
	m := core.PaperParams(20)
	e := NewEngine(100, dist.NewStreams(5).Next(), nil)
	for i := 0; i < 64; i++ {
		st := dist.NewStreams(dist.SubSeed(5, i)).Next()
		station := e.AddStation(dist.NewStreams(dist.SubSeed(5, i)).Next(), nil, true)
		e.InstallAt(NewHAPSource(m, st), station)
	}
	e.Run()
	// The application population only fills in at runtime, so check the
	// pending set after the run: each source holds ~150 armed clocks at
	// steady state, and 64 sources sit far above calEnter.
	if e.events.len() < calEnter {
		t.Fatalf("aggregate pending set %d below calEnter=%d; sizing rationale stale", e.events.len(), calEnter)
	}
	if !e.events.onCal {
		t.Fatalf("pending set %d above calEnter=%d but scheduler still on heap", e.events.len(), calEnter)
	}
}
