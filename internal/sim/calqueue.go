package sim

// The future event list is a hybrid: a binary heap while the pending set
// is small (single-source runs sit around a few hundred events, where the
// heap's O(log n) is a handful of comparisons and its locality is
// unbeatable), and a calendar queue once it grows past calEnter (sharded
// aggregates hold one pending set for hundreds of sources — 10⁴–10⁶
// events — where the heap's log factor and cache misses dominate the
// event loop). The calendar queue gives O(1) amortized schedule/pop at
// any size; the hybrid switches back to the heap below calExit, with the
// 4:1 hysteresis preventing thrash at the boundary.
//
// Both structures pop in exactly the same total order — ascending
// (t, seq) — so which one is active is observationally irrelevant; the
// property tests in calqueue_test.go assert the equivalence under
// adversarial interleavings.

const (
	// calEnter/calExit are the hybrid's migration thresholds (events).
	calEnter = 4096
	calExit  = 1024
	// calGapFactor sizes bucket width as a multiple of the EWMA gap
	// between consecutively popped events, targeting a couple of events in
	// the bucket the scan is standing on. Wider buckets shift the cost
	// onto the head bucket's sorted inserts (measurably slower at 8×);
	// narrower ones onto the scan's empty-slot walk.
	calGapFactor = 2.0
	// calLoadHigh triggers a grow-resize when average occupancy exceeds
	// it; buckets double and the width is re-tuned to the current EWMA.
	calLoadHigh = 2
)

// evLess is the scheduler's total order: ascending time, ties broken by
// schedule order. Exactly eventHeap.less, shared so the two structures
// cannot drift.
func evLess(a, b *event) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	return a.seq < b.seq
}

// sched is the hybrid future event list.
type sched struct {
	heap  eventHeap
	cal   calQueue
	onCal bool

	// lastT / gapEWMA track the pop process: gapEWMA is an exponentially
	// weighted mean of the time between consecutive pops, the scale the
	// calendar queue tunes its bucket width to.
	lastT   float64
	gapEWMA float64
	popped  bool
}

func (s *sched) len() int {
	if s.onCal {
		return s.cal.n
	}
	return len(s.heap)
}

// buckets reports the calendar's bucket count (0 while on the heap) for
// the scheduler gauges.
func (s *sched) buckets() int {
	if s.onCal {
		return len(s.cal.buckets)
	}
	return 0
}

func (s *sched) push(e event) {
	if s.onCal {
		s.cal.push(e)
		return
	}
	s.heap.push(e)
	if len(s.heap) >= calEnter {
		s.migrateToCal()
	}
}

func (s *sched) pop() event {
	var e event
	if s.onCal {
		e = s.cal.pop()
		if s.cal.n < calExit {
			s.migrateToHeap()
		}
	} else {
		e = s.heap.pop()
	}
	if s.popped {
		if gap := e.t - s.lastT; gap >= 0 {
			s.gapEWMA += (gap - s.gapEWMA) / 64
		}
	}
	s.lastT = e.t
	s.popped = true
	return e
}

// migrateToCal drains the heap into a freshly sized calendar. Bucket
// width comes from the pop-gap EWMA when one exists; before any pop (a
// burst of scheduling at install time) it falls back to the pending
// span divided by the event count.
func (s *sched) migrateToCal() {
	n := len(s.heap)
	minT, maxT := s.heap[0].t, s.heap[0].t
	for i := 1; i < n; i++ {
		if t := s.heap[i].t; t < minT {
			minT = t
		} else if t > maxT {
			maxT = t
		}
	}
	width := s.gapEWMA * calGapFactor
	if !(width > 0) {
		width = (maxT - minT) / float64(n) * calGapFactor
	}
	start := s.lastT
	if !s.popped {
		start = minT
	}
	s.cal.ewma = &s.gapEWMA
	s.cal.init(nextPow2(n), width, start)
	for i := range s.heap {
		s.cal.push(s.heap[i])
		s.heap[i] = event{} // release closures
	}
	s.heap = s.heap[:0]
	s.onCal = true
}

// migrateToHeap drains the calendar back into the heap.
func (s *sched) migrateToHeap() {
	for bi := range s.cal.buckets {
		b := s.cal.buckets[bi]
		for i := range b {
			s.heap.push(b[i])
			b[i] = event{}
		}
		s.cal.buckets[bi] = b[:0]
	}
	for i := range s.cal.far {
		s.heap.push(s.cal.far[i])
		s.cal.far[i] = event{}
	}
	s.cal.far = s.cal.far[:0]
	s.cal.n = 0
	s.onCal = false
}

// nextPow2 returns the smallest power of two >= n (and >= 2).
func nextPow2(n int) int {
	p := 2
	for p < n {
		p <<= 1
	}
	return p
}

// calQueue is a Brown-style calendar queue: buckets of `width` seconds,
// bucket index = slot(t) mod len(buckets), where slot(t) = int64(t/width)
// is the absolute slot number. Each bucket is kept sorted descending by
// (t, seq) so its minimum is the tail: pop from the standing bucket is
// O(1), and the sortedness makes "does this bucket hold an event of the
// scan's current slot" a single tail comparison.
//
// Correctness does not depend on the width or on float precision at
// bucket boundaries: an event qualifies for popping when slot(t) equals
// the scan's absolute slot, computed with the *same* float arithmetic
// that placed it, so placement and qualification can never disagree.
// Float multiplication is weakly monotone, so an event scheduled at
// t >= now can never land on a slot behind the scan. Events whose slot
// would overflow int64 (absurdly far futures from the public Schedule
// API) are parked in the small sorted `far` overflow list, consulted
// only by the direct-search fallback.
type calQueue struct {
	buckets [][]event
	far     []event // overflow, sorted descending by (t, seq)
	mask    int
	width   float64
	inv     float64
	slot    int64   // absolute slot the pop scan is standing on
	cur     int     // slot mod len(buckets)
	anchor  float64 // time of the last pop / scan reset, resize re-anchor point
	n       int

	directs int      // consecutive popDirect fallbacks, triggers a re-tune
	ewma    *float64 // engine pop-gap EWMA, owned by sched
}

// calOverflow bounds t/width so the int64 conversion in slotOf stays
// exact and in range.
const calOverflow = float64(1 << 60)

func (c *calQueue) init(nb int, width float64, start float64) {
	if !(width > 0) {
		width = 1 // degenerate pending set (all ties); any width is correct
	}
	if cap(c.buckets) >= nb {
		c.buckets = c.buckets[:nb]
		for i := range c.buckets {
			c.buckets[i] = c.buckets[i][:0]
		}
	} else {
		c.buckets = make([][]event, nb)
	}
	c.mask = nb - 1
	c.width = width
	c.inv = 1 / width
	c.n = 0
	c.far = c.far[:0]
	c.directs = 0
	c.setScan(start)
}

// slotOf maps a time to its absolute slot, or returns ok=false when the
// slot number would overflow.
func (c *calQueue) slotOf(t float64) (int64, bool) {
	k := t * c.inv
	if k >= calOverflow {
		return 0, false
	}
	return int64(k), true
}

// setScan positions the pop scan on the slot containing time t.
func (c *calQueue) setScan(t float64) {
	k := t * c.inv
	if k >= calOverflow {
		k = calOverflow
	}
	c.slot = int64(k)
	c.cur = int(c.slot) & c.mask
	c.anchor = t
}

func (c *calQueue) push(e event) {
	slot, ok := c.slotOf(e.t)
	if !ok {
		c.pushFar(e)
		return
	}
	idx := int(slot) & c.mask
	b := c.buckets[idx]
	i := len(b)
	b = append(b, event{})
	for i > 0 && evLess(&b[i-1], &e) {
		b[i] = b[i-1]
		i--
	}
	b[i] = e
	c.buckets[idx] = b
	c.n++
	if c.n > calLoadHigh*len(c.buckets) {
		c.resize(len(c.buckets) * 2)
	}
}

func (c *calQueue) pushFar(e event) {
	i := len(c.far)
	c.far = append(c.far, event{})
	for i > 0 && evLess(&c.far[i-1], &e) {
		c.far[i] = c.far[i-1]
		i--
	}
	c.far[i] = e
	c.n++
}

// pop removes and returns the minimum (t, seq) event. The scan walks
// slots from its current position, taking the tail of the standing bucket
// when that tail's slot matches; a full fruitless revolution falls back
// to a direct minimum search (sparse queue) which also re-anchors the
// scan.
func (c *calQueue) pop() event {
	scanned := 0
	for {
		b := c.buckets[c.cur]
		if m := len(b); m > 0 {
			if s, ok := c.slotOf(b[m-1].t); ok && s == c.slot {
				e := b[m-1]
				b[m-1] = event{}
				c.buckets[c.cur] = b[:m-1]
				c.n--
				c.directs = 0
				c.anchor = e.t
				return e
			}
		}
		c.slot++
		c.cur = int(c.slot) & c.mask
		scanned++
		if scanned > c.mask {
			return c.popDirect()
		}
	}
}

// popDirect finds the global minimum by inspecting every bucket's tail
// (each tail is its bucket's minimum) plus the overflow list, removes it,
// and re-anchors the scan at its time. O(buckets), hit only when a whole
// revolution holds no event; a streak of direct pops means the width no
// longer matches the event density, so it triggers a re-tuning resize.
func (c *calQueue) popDirect() event {
	best := -1
	for i := range c.buckets {
		b := c.buckets[i]
		if m := len(b); m > 0 {
			if best < 0 || evLess(&b[m-1], &c.buckets[best][len(c.buckets[best])-1]) {
				best = i
			}
		}
	}
	if f := len(c.far); f > 0 {
		if best < 0 || evLess(&c.far[f-1], &c.buckets[best][len(c.buckets[best])-1]) {
			e := c.far[f-1]
			c.far[f-1] = event{}
			c.far = c.far[:f-1]
			c.n--
			c.setScan(e.t)
			return e
		}
	}
	b := c.buckets[best]
	m := len(b)
	e := b[m-1]
	b[m-1] = event{}
	c.buckets[best] = b[:m-1]
	c.n--
	c.setScan(e.t)
	c.directs++
	if c.directs >= 8 && c.ewma != nil {
		if w := *c.ewma * calGapFactor; w > 0 && (w > 2*c.width || w < c.width/2) {
			c.resize(len(c.buckets))
		}
		c.directs = 0
	}
	return e
}

// resize rebuilds the calendar with nb buckets, re-tuning the width to
// the engine's current pop-gap EWMA when available. O(n); amortized by
// the doubling growth policy. The re-anchor point is the last popped
// time, which lower-bounds every pending event.
func (c *calQueue) resize(nb int) {
	old := c.buckets
	oldFar := c.far
	width := c.width
	if c.ewma != nil && *c.ewma > 0 {
		width = *c.ewma * calGapFactor
	}
	start := c.anchor
	c.buckets = make([][]event, nb)
	c.far = nil
	c.mask = nb - 1
	c.width = width
	c.inv = 1 / width
	c.n = 0
	c.directs = 0
	c.setScan(start)
	for i := range old {
		for j := range old[i] {
			c.push(old[i][j])
		}
	}
	for i := range oldFar {
		c.push(oldFar[i])
	}
}
