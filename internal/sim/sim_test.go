package sim

import (
	"math"
	"testing"

	"hap/internal/core"
	"hap/internal/dist"
	"hap/internal/markov"
	"hap/internal/mmpp"
	"hap/internal/stats"
)

func wantClose(t *testing.T, name string, got, want, relTol float64) {
	t.Helper()
	ref := math.Max(1e-12, math.Abs(want))
	if math.Abs(got-want)/ref > relTol {
		t.Errorf("%s = %v, want %v (rel tol %v)", name, got, want, relTol)
	}
}

func TestPoissonSourceMatchesMM1(t *testing.T) {
	lambda, mu := 8.25, 20.0
	res := RunPoisson(lambda, mu, Config{
		Horizon: 300000, Seed: 7,
		Measure: MeasureConfig{Warmup: 1000, TrackBusy: true},
	})
	wantClose(t, "rate", res.Meas.ObservedRate(), lambda, 0.02)
	wantClose(t, "delay", res.Meas.MeanDelay(), 1/(mu-lambda), 0.03)
	wantClose(t, "queue", res.Meas.MeanQueue(), 0.4125/0.5875, 0.03)
	// PASTA: busy fraction equals utilisation.
	wantClose(t, "busy fraction", res.Meas.Busy.BusyFraction(), lambda/mu, 0.03)
}

func TestHAPSourceMatchesEquation4(t *testing.T) {
	m := core.PaperParams(20)
	res := RunHAP(m, Config{
		Horizon: 400000, Seed: 11,
		Measure: MeasureConfig{Warmup: 2000},
	})
	// λ̄ = 8.25 (Equation 4); one long run has a few % of noise because the
	// user process only turns over ~400 times.
	wantClose(t, "rate", res.Meas.ObservedRate(), 8.25, 0.08)
	// HAP delay must exceed the M/M/1 delay materially (paper: 6.47×).
	mm1 := 1 / (20.0 - 8.25)
	if res.Meas.MeanDelay() < 2*mm1 {
		t.Errorf("HAP delay %v should be well above M/M/1 %v", res.Meas.MeanDelay(), mm1)
	}
}

func TestHAPPopulationsStationary(t *testing.T) {
	m := core.PaperParams(20)
	res := RunHAP(m, Config{
		Horizon: 300000, Seed: 3,
		Measure: MeasureConfig{Warmup: 1000, PopTraceInterval: 50},
	})
	var users, apps float64
	for _, p := range res.Meas.PopTrace {
		users += float64(p.Users)
		apps += float64(p.Apps)
	}
	n := float64(len(res.Meas.PopTrace))
	if n == 0 {
		t.Fatal("no population trace collected")
	}
	wantClose(t, "mean users", users/n, 5.5, 0.10)
	wantClose(t, "mean apps", apps/n, 27.5, 0.10)
}

func TestHAPInterarrivalSCVExceedsPoisson(t *testing.T) {
	m := core.PaperParams(20)
	res := RunHAP(m, Config{
		Horizon: 60000, Seed: 5,
		Measure: MeasureConfig{Warmup: 500, KeepArrivalTimes: 1 << 20},
	})
	ia := res.Meas.Interarrivals()
	if len(ia) < 10000 {
		t.Fatalf("too few interarrivals: %d", len(ia))
	}
	var w, sum, sumsq float64
	for _, x := range ia {
		sum += x
		sumsq += x * x
	}
	n := float64(len(ia))
	mean := sum / n
	scv := (sumsq/n - mean*mean) / (mean * mean)
	w = scv
	if w <= 1.1 {
		t.Errorf("HAP interarrival SCV = %v, want > 1.1", w)
	}
	// And it should be in the ballpark of the closed form.
	closed := m.Interarrival().SCV()
	wantClose(t, "scv vs closed form", scv, closed, 0.25)
}

func TestOnOffSourceMatchesClosedForm(t *testing.T) {
	tl := core.NewOnOff(0.05, 0.01, 2, 30) // ν=5, λ̄=10, ρ=1/3
	res := RunOnOff(tl, Config{
		Horizon: 200000, Seed: 9,
		Measure: MeasureConfig{Warmup: 1000, KeepArrivalTimes: 1 << 21},
	})
	wantClose(t, "rate", res.Meas.ObservedRate(), 10, 0.05)
	ia := res.Meas.Interarrivals()
	var sum, sumsq float64
	for _, x := range ia {
		sum += x
		sumsq += x * x
	}
	n := float64(len(ia))
	mean := sum / n
	wantClose(t, "mean interarrival", mean, tl.Mean(), 0.05)
	scv := (sumsq/n - mean*mean) / (mean * mean)
	// The closed form freezes the modulator during a gap, so it undercounts
	// the rare-but-huge x=0 excursions (probability e^{-ν} ≈ 0.7% here):
	// the simulated SCV must exceed it. This is the paper's condition 2 —
	// big rate gaps between neighbouring states degrade the approximation.
	if scv <= tl.SCV() {
		t.Errorf("simulated SCV %v should exceed the frozen-modulator closed form %v", scv, tl.SCV())
	}
	if scv <= 1.5 {
		t.Errorf("ON-OFF SCV = %v, want clearly bursty", scv)
	}
}

func TestOnOffClosedFormTightWhenZeroMassNegligible(t *testing.T) {
	// With ν = 25 active calls the zero-call state is unreachable in
	// practice (e^{-25}) and interarrivals are far shorter than call
	// lifetimes, so the closed-form SCV should match simulation closely.
	tl := core.NewOnOff(0.25, 0.01, 2, 100) // ν=25, λ̄=50
	res := RunOnOff(tl, Config{
		Horizon: 100000, Seed: 19,
		Measure: MeasureConfig{Warmup: 1000, KeepArrivalTimes: 1 << 22},
	})
	ia := res.Meas.Interarrivals()
	var sum, sumsq float64
	for _, x := range ia {
		sum += x
		sumsq += x * x
	}
	n := float64(len(ia))
	mean := sum / n
	scv := (sumsq/n - mean*mean) / (mean * mean)
	wantClose(t, "mean", mean, tl.Mean(), 0.03)
	wantClose(t, "scv", scv, tl.SCV(), 0.10)
}

func TestMMPPSourceTwoState(t *testing.T) {
	m2 := mmpp.MMPP2{R0: 2, R1: 20, Q01: 0.02, Q10: 0.08}
	streams := dist.NewStreams(13)
	src := MMPP2Source(m2, dist.NewExponential(40), streams.Next())
	res := Run(src, Config{
		Horizon: 300000, Seed: 13,
		Measure: MeasureConfig{Warmup: 2000},
	})
	wantClose(t, "rate", res.Meas.ObservedRate(), m2.MeanRate(), 0.05)
	// Modulation must slow the queue beyond M/M/1 at the same load.
	mm1 := 1 / (40 - m2.MeanRate())
	if res.Meas.MeanDelay() <= mm1 {
		t.Errorf("MMPP delay %v should exceed M/M/1 %v", res.Meas.MeanDelay(), mm1)
	}
}

func TestMMPPSourceZeroRateState(t *testing.T) {
	// An interrupted Poisson process (R0 = 0) must still generate traffic.
	m2 := mmpp.MMPP2{R0: 0, R1: 10, Q01: 0.05, Q10: 0.05}
	streams := dist.NewStreams(17)
	src := MMPP2Source(m2, dist.NewExponential(20), streams.Next())
	res := Run(src, Config{Horizon: 100000, Seed: 17, Measure: MeasureConfig{Warmup: 500}})
	wantClose(t, "rate", res.Meas.ObservedRate(), 5, 0.08)
}

func TestCSSourceAmplification(t *testing.T) {
	cs := core.RloginCS()
	res := RunCS(cs, Config{
		Horizon: 300000, Seed: 21,
		Measure: MeasureConfig{Warmup: 2000},
	})
	// The effective rate including triggered messages must match the
	// closed form, which exceeds the spontaneous rate.
	wantClose(t, "effective rate", res.Meas.ObservedRate(), cs.MeanRate(), 0.08)
	if res.Meas.ObservedRate() < cs.MeanSpontaneousRate()*1.3 {
		t.Error("exchange amplification not visible in simulation")
	}
	// Responses exist: odd classes must have departures.
	var respSeen bool
	for k := 1; k < len(res.Meas.ByClass); k += 2 {
		if res.Meas.ByClass[k].N() > 0 {
			respSeen = true
		}
	}
	if !respSeen {
		t.Error("no responses were served")
	}
}

func TestBusyTrackerIntegration(t *testing.T) {
	res := RunPoisson(5, 10, Config{
		Horizon: 50000, Seed: 29,
		Measure: MeasureConfig{Warmup: 100, TrackBusy: true, KeepBusyPeriods: true, MaxBusyRetained: 1 << 20},
	})
	bt := &res.Meas.Busy
	if bt.Mountains() < 1000 {
		t.Fatalf("too few busy periods: %d", bt.Mountains())
	}
	// M/M/1 mean busy period = 1/(μ−λ) = 0.2, mean idle = 1/λ = 0.2.
	wantClose(t, "busy", bt.Busy.Mean(), 0.2, 0.05)
	wantClose(t, "idle", bt.Idle.Mean(), 0.2, 0.05)
	longest, tallest := bt.Peak()
	if longest.Length() <= 0 || tallest.Height <= 0 {
		t.Error("peak periods not recorded")
	}
}

func TestRunningMeanAndQueueTrace(t *testing.T) {
	res := RunPoisson(5, 10, Config{
		Horizon: 20000, Seed: 31,
		Measure: MeasureConfig{Warmup: 0, RunningMeanEvery: 100, QueueTraceInterval: 10},
	})
	if len(res.Meas.Running.Ys) < 100 {
		t.Fatalf("running mean checkpoints: %d", len(res.Meas.Running.Ys))
	}
	if len(res.Meas.QueueTrace) < 1500 {
		t.Fatalf("queue trace points: %d", len(res.Meas.QueueTrace))
	}
	wantClose(t, "running final", res.Meas.Running.Mean(), res.Meas.MeanDelay(), 1e-9)
}

func TestWarmupDiscards(t *testing.T) {
	cold := RunPoisson(5, 10, Config{Horizon: 1000, Seed: 41})
	warm := RunPoisson(5, 10, Config{Horizon: 1000, Seed: 41, Measure: MeasureConfig{Warmup: 500}})
	if warm.Meas.Delays.N() >= cold.Meas.Delays.N() {
		t.Error("warmup did not discard observations")
	}
	if warm.Arrivals != cold.Arrivals {
		t.Error("warmup must not change the sample path")
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	a := RunHAP(core.PaperParams(20), Config{Horizon: 5000, Seed: 99})
	b := RunHAP(core.PaperParams(20), Config{Horizon: 5000, Seed: 99})
	if a.Arrivals != b.Arrivals || a.Meas.MeanDelay() != b.Meas.MeanDelay() {
		t.Error("same seed produced different runs")
	}
	c := RunHAP(core.PaperParams(20), Config{Horizon: 5000, Seed: 100})
	if a.Arrivals == c.Arrivals {
		t.Error("different seeds produced identical arrival counts (suspicious)")
	}
}

func TestMaxEventsCap(t *testing.T) {
	res := RunPoisson(100, 200, Config{Horizon: 1e9, Seed: 1, MaxEvents: 5000})
	if res.Events > 5000 {
		t.Errorf("event cap exceeded: %d", res.Events)
	}
}

func TestDelayHistogram(t *testing.T) {
	res := RunPoisson(5, 10, Config{
		Horizon: 30000, Seed: 2,
		Measure: MeasureConfig{Warmup: 100, DelayHistBins: 50, DelayHistMax: 3},
	})
	h := res.Meas.DelayH
	if h == nil || h.N() == 0 {
		t.Fatal("histogram not collected")
	}
	// M/M/1 sojourn is Exp(μ−λ); median = ln2/5 ≈ 0.1386.
	med := h.Quantile(0.5)
	wantClose(t, "median delay", med, math.Ln2/5, 0.08)
}

func TestReplicationsCI(t *testing.T) {
	w, hw := Replications(8, 1000, func(seed int64) float64 {
		return RunPoisson(5, 10, Config{Horizon: 20000, Seed: seed, Measure: MeasureConfig{Warmup: 200}}).Meas.MeanDelay()
	})
	if w.N() != 8 || hw <= 0 {
		t.Fatalf("bad replication stats: %v, hw=%v", w.N(), hw)
	}
	if math.Abs(w.Mean()-0.2) > 3*hw+0.02 {
		t.Errorf("replication mean %v ± %v far from 0.2", w.Mean(), hw)
	}
}

func TestEngineSchedulePastPanics(t *testing.T) {
	streams := dist.NewStreams(1)
	e := NewEngine(10, streams.Next(), nil)
	e.Schedule(5, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling into the past must panic")
			}
		}()
		e.Schedule(1, func() {})
	})
	e.Run()
}

func TestQBDCrossValidatesSimulation(t *testing.T) {
	// A 2-state MMPP queue solved by the matrix-geometric method in the
	// solver package must agree with simulation; here we check the chain
	// stationary law instead (no solver import to avoid a cycle):
	// fraction of time in state 1 ≈ Q01/(Q01+Q10).
	m2 := mmpp.MMPP2{R0: 1, R1: 5, Q01: 0.03, Q10: 0.07}
	g := m2.General()
	pi, err := g.Stationary()
	if err != nil {
		t.Fatal(err)
	}
	wantClose(t, "pi1", pi[1], 0.3, 1e-6)
	_ = markov.ExpectedValue(pi, func(i int) float64 { return g.Rates[i] })
}

func TestClosedFormIDCMatchesSimulation(t *testing.T) {
	// The closed-form IDC(t) of the linear cascade must match the
	// empirical index of dispersion of simulated arrivals.
	m := core.NewSymmetric(0.5, 0.25, 2.5, 1.25, 5, 500, 2, 2) // ν=2, λ̄=40
	idc, err := m.NewIDC()
	if err != nil {
		t.Fatal(err)
	}
	res := RunHAP(m, Config{Horizon: 30000, Seed: 77,
		Measure: MeasureConfig{Warmup: 100, KeepArrivalTimes: 1 << 22}})
	for _, win := range []float64{0.5, 2, 10} {
		emp := stats.IDC(res.Meas.Arrivals, win)
		closed := idc.At(win)
		if math.Abs(emp-closed)/closed > 0.25 {
			t.Errorf("IDC(%v): sim %v vs closed form %v", win, emp, closed)
		}
	}
	// And the empirical long-window IDC approaches the analytic limit's
	// order of magnitude.
	lim := idc.Limit()
	emp := stats.IDC(res.Meas.Arrivals, 200)
	if emp < lim/4 || emp > lim*4 {
		t.Errorf("long-window IDC %v far from limit %v", emp, lim)
	}
}
