package sim

import (
	"fmt"
	"math/rand"

	"hap/internal/dist"
	"hap/internal/mmpp"
)

// MMPPSource simulates an arbitrary Markov-modulated Poisson process: the
// modulating chain moves between states, and in state s messages arrive
// Poisson(rate_s). A generation counter carried in the event payload
// lazily cancels the arrival clock on every state change.
type MMPPSource struct {
	Proc *mmpp.MMPP
	Svc  dist.Distribution
	// Start is the initial modulator state (default 0). Use
	// StartStationary to draw it from the stationary law instead.
	Start           int
	StartStationary bool

	rng   *rand.Rand
	e     *Engine
	id    int32
	st    int32
	state int
	gen   int32
}

// NewMMPPSource builds an MMPP source.
func NewMMPPSource(proc *mmpp.MMPP, svc dist.Distribution, rng *rand.Rand) *MMPPSource {
	return &MMPPSource{Proc: proc, Svc: svc, rng: rng}
}

func (s *MMPPSource) String() string {
	return fmt.Sprintf("mmpp(states=%d)", s.Proc.Chain.N())
}

// Install schedules the modulator and arrival clocks.
func (s *MMPPSource) Install(e *Engine) {
	s.e = e
	s.id = e.registerMMPP(s)
	s.st = e.installStation
	s.state = s.Start
	if s.StartStationary {
		if pi, err := s.Proc.Stationary(); err == nil {
			u := s.rng.Float64()
			var c float64
			for i, p := range pi {
				c += p
				if u <= c {
					s.state = i
					break
				}
			}
		}
	}
	s.enterState(s.state)
}

func (s *MMPPSource) enterState(state int) {
	s.state = state
	s.gen++
	out := s.Proc.Chain.OutRate(state)
	if out > 0 {
		s.e.scheduleEvAfter(s.rng.ExpFloat64()/out, evMMPPSwitch, s.id, s.gen, 0, 0)
	}
	s.scheduleArrival()
}

func (s *MMPPSource) switchState(gen int32) {
	if gen != s.gen {
		return
	}
	s.enterState(s.pickNext())
}

func (s *MMPPSource) pickNext() int {
	trs := s.Proc.Chain.Transitions(s.state)
	total := s.Proc.Chain.OutRate(s.state)
	u := s.rng.Float64() * total
	var c float64
	for _, tr := range trs {
		c += tr.Rate
		if u <= c {
			return tr.To
		}
	}
	return trs[len(trs)-1].To
}

func (s *MMPPSource) scheduleArrival() {
	rate := s.Proc.Rates[s.state]
	if rate <= 0 {
		return // no arrivals until the next state change
	}
	s.e.scheduleEvAfter(s.rng.ExpFloat64()/rate, evMMPPArrive, s.id, s.gen, 0, 0)
}

func (s *MMPPSource) arrive(gen int32) {
	if gen != s.gen {
		return
	}
	s.e.arriveInto(s.st, s.Svc, 0)
	s.scheduleArrival()
}

// MMPP2Source builds an MMPPSource from the 2-state comparator.
func MMPP2Source(m2 mmpp.MMPP2, svc dist.Distribution, rng *rand.Rand) *MMPPSource {
	src := NewMMPPSource(m2.General(), svc, rng)
	src.StartStationary = true
	return src
}
