package sim

import (
	"hap/internal/stats"
)

// MeasureConfig selects which statistics a run collects. Everything is
// off-by-default except delay and queue-length means; traces cost memory
// proportional to horizon / interval.
type MeasureConfig struct {
	// Warmup discards observations before this simulated time.
	Warmup float64
	// TrackBusy enables the busy-period ("mountain") tracker.
	TrackBusy bool
	// KeepBusyPeriods retains individual busy periods (needed to locate
	// the peak period of Figures 15–17). MaxBusyRetained caps memory.
	KeepBusyPeriods bool
	MaxBusyRetained int
	// QueueTraceInterval samples the queue length every interval (0 = off).
	QueueTraceInterval float64
	// PopTraceInterval samples user/app populations every interval (0 = off).
	PopTraceInterval float64
	// RunningMeanEvery checkpoints the running mean delay every n
	// departures (0 = off) — Figure 13's convergence trace.
	RunningMeanEvery int64
	// KeepArrivalTimes retains up to this many message arrival instants
	// (for IDC and interarrival histograms; 0 = off).
	KeepArrivalTimes int
	// DelayHistogram, when non-zero, records delays in [0, DelayHistMax)
	// with DelayHistBins bins.
	DelayHistBins int
	DelayHistMax  float64
	// ClassCount, when > 0, keeps a per-class delay Welford.
	ClassCount int
}

// TracePoint is one (time, value) sample of a trace.
type TracePoint struct {
	T float64
	V float64
}

// PopPoint is one population sample.
type PopPoint struct {
	T     float64
	Users int
	Apps  int
}

// Measurements accumulates run statistics. Construct with NewMeasurements.
type Measurements struct {
	cfg MeasureConfig

	Delays   stats.Welford
	ByClass  []stats.Welford
	Queue    stats.TimeWeighted
	Busy     stats.BusyTracker
	Running  *stats.RunningMean
	DelayH   *stats.Histogram
	Arrivals []float64

	QueueTrace []TracePoint
	PopTrace   []PopPoint

	// Truncated reports that the run filling this collector stopped before
	// its horizon (event budget or cancellation), so the measurement window
	// covers less simulated time than configured. Set by the engine when
	// the run finishes.
	Truncated bool
	// TruncatedBy, on a merge target, records the Truncated flag of every
	// collector merged in, in merge order — one entry per merged station or
	// replication. A bare OR of the flags (Truncated) cannot say *which*
	// station hit its budget when the merged collectors cover disjoint
	// measurement windows; this slice attributes the truncation.
	TruncatedBy []bool

	nextQueueSample float64
	nextPopSample   float64
	warm            bool
	lastQueueLen    int
}

// NewMeasurements builds a collector for the given configuration.
func NewMeasurements(cfg MeasureConfig) *Measurements {
	m := &Measurements{cfg: cfg}
	if cfg.RunningMeanEvery > 0 {
		m.Running = stats.NewRunningMean(cfg.RunningMeanEvery)
	}
	if cfg.DelayHistBins > 0 && cfg.DelayHistMax > 0 {
		m.DelayH = stats.NewHistogram(0, cfg.DelayHistMax, cfg.DelayHistBins)
	}
	if cfg.ClassCount > 0 {
		m.ByClass = make([]stats.Welford, cfg.ClassCount)
	}
	m.Busy.Keep = cfg.KeepBusyPeriods
	m.Busy.MaxRetained = cfg.MaxBusyRetained
	return m
}

// Warmup returns the configured warmup horizon.
func (m *Measurements) Warmup() float64 { return m.cfg.Warmup }

func (m *Measurements) start(t float64, qlen, users, apps int) {
	m.nextQueueSample = t
	m.nextPopSample = t
	m.lastQueueLen = qlen
	if t >= m.cfg.Warmup {
		m.beginMeasuring(t, qlen)
	}
}

func (m *Measurements) beginMeasuring(t float64, qlen int) {
	m.warm = true
	m.Queue.Start(t, float64(qlen))
	if m.cfg.TrackBusy {
		m.Busy.Observe(t, qlen)
	}
}

func (m *Measurements) maybeWarm(t float64, qlen int) bool {
	if m.warm {
		return true
	}
	if t >= m.cfg.Warmup {
		m.beginMeasuring(t, qlen)
		return true
	}
	return false
}

func (m *Measurements) onArrival(t float64, qlen, class int) {
	m.lastQueueLen = qlen
	if !m.maybeWarm(t, qlen) {
		return
	}
	m.Queue.Update(t, float64(qlen))
	if m.cfg.TrackBusy {
		m.Busy.Observe(t, qlen)
	}
	if m.cfg.KeepArrivalTimes > 0 && len(m.Arrivals) < m.cfg.KeepArrivalTimes {
		m.Arrivals = append(m.Arrivals, t)
	}
	m.sampleTraces(t)
}

func (m *Measurements) onDeparture(t, delay float64, qlen, class int) {
	m.lastQueueLen = qlen
	if !m.maybeWarm(t, qlen) {
		return
	}
	m.Queue.Update(t, float64(qlen))
	if m.cfg.TrackBusy {
		m.Busy.Observe(t, qlen)
	}
	m.Delays.Add(delay)
	if m.ByClass != nil && class >= 0 && class < len(m.ByClass) {
		m.ByClass[class].Add(delay)
	}
	if m.Running != nil {
		m.Running.Add(delay)
	}
	if m.DelayH != nil {
		m.DelayH.Add(delay)
	}
	m.sampleTraces(t)
}

func (m *Measurements) onPopulation(t float64, users, apps int) {
	if m.cfg.PopTraceInterval <= 0 || t < m.cfg.Warmup {
		return
	}
	if t >= m.nextPopSample {
		m.PopTrace = append(m.PopTrace, PopPoint{T: t, Users: users, Apps: apps})
		for m.nextPopSample <= t {
			m.nextPopSample += m.cfg.PopTraceInterval
		}
	}
}

func (m *Measurements) sampleTraces(t float64) {
	if m.cfg.QueueTraceInterval <= 0 {
		return
	}
	if t >= m.nextQueueSample {
		m.QueueTrace = append(m.QueueTrace, TracePoint{T: t, V: float64(m.lastQueueLen)})
		for m.nextQueueSample <= t {
			m.nextQueueSample += m.cfg.QueueTraceInterval
		}
	}
}

func (m *Measurements) finish(t float64, qlen int) {
	if m.warm {
		m.Queue.Update(t, float64(qlen))
	}
}

// Merge folds another replication's measurements into m, combining every
// aggregate statistic exactly: delays (overall and per-class), the
// time-weighted queue average (observation windows add), busy periods,
// the delay histogram (identical geometry required) and retained arrival
// instants (up to the receiver's KeepArrivalTimes cap; each replication's
// instants keep their own clock). Per-run traces — QueueTrace, PopTrace
// and the running mean — are timelines of a single sample path and do not
// aggregate; the receiver's are kept untouched. Merge completed runs only.
//
// Truncation does not blur: the merged Truncated flag is the OR, and
// TruncatedBy appends one entry per merged-in collector (or that
// collector's own TruncatedBy, when merging an aggregate into an
// aggregate), so a network or sharded run can attribute a short window to
// the specific station that hit its budget instead of summing flags from
// stations with disjoint measurement windows.
func (m *Measurements) Merge(o *Measurements) {
	if len(o.TruncatedBy) > 0 {
		m.TruncatedBy = append(m.TruncatedBy, o.TruncatedBy...)
	} else {
		m.TruncatedBy = append(m.TruncatedBy, o.Truncated)
	}
	m.Truncated = m.Truncated || o.Truncated
	m.Delays.Merge(&o.Delays)
	if len(o.ByClass) > len(m.ByClass) {
		grown := make([]stats.Welford, len(o.ByClass))
		copy(grown, m.ByClass)
		m.ByClass = grown
	}
	for i := range o.ByClass {
		m.ByClass[i].Merge(&o.ByClass[i])
	}
	m.Queue.Merge(&o.Queue)
	m.Busy.Merge(&o.Busy)
	if m.DelayH != nil && o.DelayH != nil {
		m.DelayH.Merge(o.DelayH)
	}
	if m.cfg.KeepArrivalTimes > 0 {
		room := m.cfg.KeepArrivalTimes - len(m.Arrivals)
		if room > len(o.Arrivals) {
			room = len(o.Arrivals)
		}
		if room > 0 {
			m.Arrivals = append(m.Arrivals, o.Arrivals[:room]...)
		}
	}
}

// MeanDelay returns the mean message sojourn time.
func (m *Measurements) MeanDelay() float64 { return m.Delays.Mean() }

// MeanQueue returns the time-average number in system.
func (m *Measurements) MeanQueue() float64 { return m.Queue.Mean() }

// ObservedRate returns completed messages per unit time.
func (m *Measurements) ObservedRate() float64 {
	if m.Queue.Elapsed() <= 0 {
		return 0
	}
	return float64(m.Delays.N()) / m.Queue.Elapsed()
}

// Interarrivals derives the interarrival sequence from the retained
// arrival instants.
func (m *Measurements) Interarrivals() []float64 {
	if len(m.Arrivals) < 2 {
		return nil
	}
	out := make([]float64, len(m.Arrivals)-1)
	for i := 1; i < len(m.Arrivals); i++ {
		out[i-1] = m.Arrivals[i] - m.Arrivals[i-1]
	}
	return out
}
