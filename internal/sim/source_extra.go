package sim

import (
	"fmt"
	"math/rand"

	"hap/internal/dist"
)

// CBRSource emits messages with deterministic spacing — the "real-time
// application like voice" of the paper's Section 6 multiplexing
// discussion. Jitter, when non-nil, perturbs each interval (e.g. a small
// uniform dither); Phase offsets the first emission.
type CBRSource struct {
	Interval float64
	Svc      dist.Distribution
	Class    int
	Phase    float64
	Jitter   dist.Distribution

	rng *rand.Rand
	e   *Engine
	id  int32
	st  int32
}

// NewCBRSource builds a constant-rate source with one message every
// interval seconds.
func NewCBRSource(interval float64, svc dist.Distribution, class int, rng *rand.Rand) *CBRSource {
	if interval <= 0 {
		panic("sim: CBR interval must be positive")
	}
	return &CBRSource{Interval: interval, Svc: svc, Class: class, rng: rng}
}

func (s *CBRSource) String() string { return fmt.Sprintf("cbr(interval=%g)", s.Interval) }

// Install schedules the first emission.
func (s *CBRSource) Install(e *Engine) {
	s.e = e
	s.id = e.registerCBR(s)
	s.st = e.installStation
	e.scheduleEvAfter(s.Phase+s.nextGap(), evCBREmit, s.id, 0, 0, 0)
}

func (s *CBRSource) nextGap() float64 {
	g := s.Interval
	if s.Jitter != nil {
		g += s.Jitter.Sample(s.rng)
		if g < 0 {
			g = 0
		}
	}
	return g
}

func (s *CBRSource) emit() {
	s.e.arriveInto(s.st, s.Svc, s.Class)
	s.e.scheduleEvAfter(s.nextGap(), evCBREmit, s.id, 0, 0, 0)
}

// Multi bundles several sources into one: installing it installs all of
// them on the same engine/queue — the superposition ("multiplexing") the
// paper's Section 6 warns about. Sources sharing the queue must use
// disjoint class indices if per-class statistics are wanted.
type Multi struct {
	Sources []Source
}

// NewMulti bundles sources.
func NewMulti(sources ...Source) *Multi {
	if len(sources) == 0 {
		panic("sim: Multi needs at least one source")
	}
	return &Multi{Sources: sources}
}

func (m *Multi) String() string {
	s := "multi("
	for i, src := range m.Sources {
		if i > 0 {
			s += " + "
		}
		s += src.String()
	}
	return s + ")"
}

// Install installs every bundled source.
func (m *Multi) Install(e *Engine) {
	for _, src := range m.Sources {
		src.Install(e)
	}
}
