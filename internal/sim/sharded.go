package sim

import (
	"context"
	"math"
	"math/rand"
	"runtime"
	"time"

	"hap/internal/core"
	"hap/internal/dist"
	"hap/internal/haperr"
	"hap/internal/par"
)

// Sharded aggregate runs: the multi-core path to the paper's
// many-source experiments and the ROADMAP's millions-of-users target.
//
// The workload is n independent source/queue systems ("stations"), the
// superposition view of an aggregate: each source feeds its own
// single-server queue with its own service stream. Sources are
// partitioned across per-core engines (shards); each shard runs one event
// loop over all its stations, so the scheduler, clock, and obs batching
// are shared per core rather than paid per source.
//
// Determinism contract: source i's arrival and service streams derive
// from dist.SubSeed(cfg.Seed, i) — a function of the source index only —
// and a station's sample path depends only on its own streams, never on
// which other stations share an engine. Shard count therefore changes
// wall-clock time, never a single sample; the merged measurements are
// bit-identical for any Shards value (asserted by TestShardedBitIdentical).
// The one exception is an exhausted MaxEvents budget: budgets are
// enforced per shard, so *which* events a truncated run managed to
// process depends on the grouping. Truncated sharded results are
// reported as such and carry no cross-shard-count identity guarantee.

// ShardedConfig drives a sharded aggregate run.
type ShardedConfig struct {
	// Horizon is the simulated time each source covers.
	Horizon float64
	// Seed roots the per-source streams: source i draws from
	// dist.SubSeed(Seed, i) regardless of sharding.
	Seed int64
	// Shards is the number of engines / event loops (<= 0 selects
	// GOMAXPROCS, clamped to the source count).
	Shards int
	// MaxEvents caps the events processed per shard (0 = unlimited). A
	// hit budget truncates that shard; see the determinism note above.
	MaxEvents int64
	// Measure configures every per-source collector. Trace options apply
	// per source and do not merge (see Measurements.Merge).
	Measure MeasureConfig
	// Ctx, when non-nil, cancels all shards cooperatively.
	Ctx context.Context
}

// Validate rejects configurations the shards cannot run.
func (cfg ShardedConfig) Validate() error {
	if !(cfg.Horizon > 0) || math.IsInf(cfg.Horizon, 1) {
		return haperr.Badf("sim: horizon must be positive and finite (got %v)", cfg.Horizon)
	}
	if cfg.MaxEvents < 0 {
		return haperr.Badf("sim: max events must be non-negative (got %d)", cfg.MaxEvents)
	}
	return nil
}

// ShardedResult is a completed sharded aggregate run.
type ShardedResult struct {
	// Merged combines every source's measurements in source index order,
	// so it is independent of the shard count and of scheduling.
	Merged *Measurements
	// PerSource holds each source's own measurements, indexed by source.
	PerSource []*Measurements

	Sources    int
	Shards     int
	Arrivals   int64
	Departures int64
	Events     int64
	// Truncated reports that some shard hit its event budget or was
	// cancelled; see the determinism note on ShardedConfig.MaxEvents.
	Truncated bool
	Err       error
	Elapsed   time.Duration
	Source    string
}

// EventsPerSec returns the aggregate processing rate across all shards.
func (r *ShardedResult) EventsPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Events) / r.Elapsed.Seconds()
}

// shardState is one engine plus the bookkeeping to merge its stations
// back in global source order.
type shardState struct {
	eng     *Engine
	sources []int   // global source indices hosted here, in order
	sts     []int32 // station index per hosted source
}

// RunSharded simulates n independent source/queue systems, sharded across
// per-core engines. make constructs source i from its two dedicated
// streams (arrival process and service times); it is called for every i
// in index order during setup, then the shards run in parallel.
//
// Service laws are batched per station (see Engine.AddStation): fine for
// the exponential service laws every built-in model uses; a make that
// installs mixed service laws on one station should not rely on
// batched/unbatched equivalence.
func RunSharded(n int, mk func(i int, arrival, service *rand.Rand) Source, cfg ShardedConfig) *ShardedResult {
	start := time.Now()
	res := &ShardedResult{Sources: n, Source: "sharded"}
	if err := cfg.Validate(); err != nil {
		res.Err = err
		res.Merged = NewMeasurements(cfg.Measure)
		return res
	}
	if n <= 0 {
		res.Err = haperr.Badf("sim: sharded run needs at least one source (got %d)", n)
		res.Merged = NewMeasurements(cfg.Measure)
		return res
	}
	shards := cfg.Shards
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	if shards > n {
		shards = n
	}
	res.Shards = shards

	res.PerSource = make([]*Measurements, n)
	states := make([]shardState, shards)
	for s := range states {
		// The engine's own stream feeds only station 0, which hosts no
		// source here; it exists for API compatibility and draws nothing.
		states[s].eng = NewEngine(cfg.Horizon, dist.NewStreams(cfg.Seed).Next(), nil)
		if cfg.MaxEvents > 0 {
			states[s].eng.SetMaxEvents(cfg.MaxEvents)
		}
		if cfg.Ctx != nil {
			states[s].eng.SetContext(cfg.Ctx)
		}
	}
	// Round-robin partition, installed in global source order so a
	// source's install-time draws depend only on its own streams.
	for i := 0; i < n; i++ {
		st := dist.NewStreams(dist.SubSeed(cfg.Seed, i))
		arrival, service := st.Next(), st.Next()
		src := mk(i, arrival, service)
		meas := NewMeasurements(cfg.Measure)
		res.PerSource[i] = meas
		sh := &states[i%shards]
		station := sh.eng.AddStation(service, meas, true)
		sh.eng.InstallAt(src, station)
		sh.sources = append(sh.sources, i)
		sh.sts = append(sh.sts, station)
	}

	par.MapN(shards, shards, func(s int) struct{} {
		states[s].eng.Run()
		return struct{}{}
	})

	res.Merged = NewMeasurements(cfg.Measure)
	for i := 0; i < n; i++ {
		res.Merged.Merge(res.PerSource[i])
		obsMerges.Inc()
	}
	for s := range states {
		e := states[s].eng
		res.Arrivals += e.Arrivals()
		res.Departures += e.Departures()
		res.Events += e.Processed()
		res.Truncated = res.Truncated || e.Truncated()
		if e.Err() != nil && res.Err == nil {
			res.Err = e.Err()
		}
	}
	res.Elapsed = time.Since(start)
	return res
}

// RunShardedHAP simulates n independent HAP sources of the same model,
// sharded across cores. An invalid model returns a result with Err set
// rather than panicking.
func RunShardedHAP(m *core.Model, n int, cfg ShardedConfig) *ShardedResult {
	if err := m.Validate(); err != nil {
		return &ShardedResult{Sources: n, Source: "sharded-hap", Err: err, Merged: NewMeasurements(cfg.Measure)}
	}
	if cfg.Measure.ClassCount == 0 {
		cfg.Measure.ClassCount = m.NumLeaves()
	}
	res := RunSharded(n, func(i int, arrival, _ *rand.Rand) Source {
		return NewHAPSource(m, arrival)
	}, cfg)
	res.Source = "sharded-hap"
	return res
}

// RunShardedOnOff simulates n independent 2-level ON-OFF sources of the
// same model, sharded across cores.
func RunShardedOnOff(tl *core.TwoLevel, n int, cfg ShardedConfig) *ShardedResult {
	if err := tl.Validate(); err != nil {
		return &ShardedResult{Sources: n, Source: "sharded-onoff", Err: err, Merged: NewMeasurements(cfg.Measure)}
	}
	res := RunSharded(n, func(i int, arrival, _ *rand.Rand) Source {
		return NewOnOffSource(tl, arrival)
	}, cfg)
	res.Source = "sharded-onoff"
	return res
}
