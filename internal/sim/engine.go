// Package sim is the discrete-event simulator for HAP and its baseline
// traffic models feeding a single-server FIFO queue — the experimental
// apparatus behind the paper's Figures 11–18. Sources (HAP, HAP-CS,
// Poisson, ON-OFF, MMPP) generate message arrivals; the exponential server
// drains them; measurement hooks record delays, queue-length and
// population traces, busy periods ("mountains") and running means.
//
// The engine is deterministic for a fixed seed: ties in event time are
// broken by schedule order.
package sim

import (
	"fmt"
	"math/rand"

	"hap/internal/dist"
)

// event is one scheduled occurrence. fire runs with the engine clock set.
type event struct {
	t    float64
	seq  uint64
	fire func()
}

// eventHeap is a hand-rolled binary min-heap ordered by (t, seq). Avoiding
// container/heap's interface boxing saves one allocation per event, which
// matters at 10⁷–10⁸ events per run.
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) push(e event) {
	*h = append(*h, e)
	hh := *h
	i := len(hh) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !hh.less(i, parent) {
			break
		}
		hh[i], hh[parent] = hh[parent], hh[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	hh := *h
	top := hh[0]
	n := len(hh) - 1
	hh[0] = hh[n]
	hh[n] = event{} // release the closure for GC
	*h = hh[:n]
	hh = *h
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && hh.less(l, smallest) {
			smallest = l
		}
		if r < n && hh.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		hh[i], hh[smallest] = hh[smallest], hh[i]
		i = smallest
	}
	return top
}

// message is one queued message.
type message struct {
	arrival float64
	svc     dist.Distribution
	class   int // message class index for per-class stats
}

// Engine is the simulation core: clock, future event list, and the single
// exponential (or general) server queue.
type Engine struct {
	now    float64
	seq    uint64
	events eventHeap

	// FIFO queue as a sliding window: queue[qhead] is in service when
	// busy. The head index avoids O(n) shifts during long busy periods
	// (mountains reach O(10⁴) messages).
	queue   []message
	qhead   int
	busy    bool
	rng     *rand.Rand // service-time stream
	horizon float64

	meas *Measurements

	// Populations maintained by sources for tracing.
	users int
	apps  int

	arrivals   int64
	departures int64
	maxEvents  int64
	processed  int64

	// served, when set, is invoked after each service completion with the
	// message class; the HAP-CS source uses it to trigger responses.
	served func(class int)
}

// NewEngine creates an engine running to the given simulated horizon,
// with the supplied service-time random stream.
func NewEngine(horizon float64, rng *rand.Rand, meas *Measurements) *Engine {
	if horizon <= 0 {
		panic("sim: horizon must be positive")
	}
	e := &Engine{horizon: horizon, rng: rng, meas: meas, maxEvents: 1 << 62}
	if meas == nil {
		e.meas = NewMeasurements(MeasureConfig{})
	}
	return e
}

// Now returns the simulation clock.
func (e *Engine) Now() float64 { return e.now }

// Schedule enqueues fire to run at absolute time t (>= Now). Events beyond
// the horizon are still queued; Run stops at the horizon regardless.
func (e *Engine) Schedule(t float64, fire func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling into the past (%v < %v)", t, e.now))
	}
	e.seq++
	e.events.push(event{t: t, seq: e.seq, fire: fire})
}

// ScheduleAfter enqueues fire after a delay.
func (e *Engine) ScheduleAfter(d float64, fire func()) { e.Schedule(e.now+d, fire) }

// Run processes events until the horizon or event budget is exhausted.
func (e *Engine) Run() {
	e.meas.start(e.now, e.QueueLen(), e.users, e.apps)
	for len(e.events) > 0 && e.processed < e.maxEvents {
		ev := e.events.pop()
		if ev.t > e.horizon {
			e.now = e.horizon
			break
		}
		e.now = ev.t
		ev.fire()
		e.processed++
	}
	e.meas.finish(e.now, e.QueueLen())
}

// SetMaxEvents bounds the number of processed events (safety valve for
// open-ended sources).
func (e *Engine) SetMaxEvents(n int64) { e.maxEvents = n }

// Processed returns the number of events fired.
func (e *Engine) Processed() int64 { return e.processed }

// Arrivals returns the number of messages that entered the queue.
func (e *Engine) Arrivals() int64 { return e.arrivals }

// Departures returns the number of completed services.
func (e *Engine) Departures() int64 { return e.departures }

// QueueLen returns the current number in system.
func (e *Engine) QueueLen() int { return len(e.queue) - e.qhead }

// ArriveMessage delivers a message with the given service-time law to the
// queue at the current clock.
func (e *Engine) ArriveMessage(svc dist.Distribution, class int) {
	e.arrivals++
	m := message{arrival: e.now, svc: svc, class: class}
	e.queue = append(e.queue, m)
	e.meas.onArrival(e.now, e.QueueLen(), class)
	if !e.busy {
		e.startService()
	}
}

func (e *Engine) startService() {
	e.busy = true
	svcTime := e.queue[e.qhead].svc.Sample(e.rng)
	e.Schedule(e.now+svcTime, e.completeService)
}

func (e *Engine) completeService() {
	m := e.queue[e.qhead]
	e.queue[e.qhead] = message{} // release for GC
	e.qhead++
	// Compact once the dead prefix dominates.
	if e.qhead > 64 && e.qhead*2 > len(e.queue) {
		n := copy(e.queue, e.queue[e.qhead:])
		e.queue = e.queue[:n]
		e.qhead = 0
	}
	e.departures++
	e.meas.onDeparture(e.now, e.now-m.arrival, e.QueueLen(), m.class)
	if e.served != nil {
		e.served(m.class)
	}
	if e.QueueLen() > 0 {
		e.startService()
	} else {
		e.busy = false
	}
}

// SetServedHook registers a callback fired after every service completion
// (before the next service starts). Sources that react to completions —
// request/response exchanges — use this.
func (e *Engine) SetServedHook(f func(class int)) { e.served = f }

// SetUsers records the current user population (called by sources).
func (e *Engine) SetUsers(n int) {
	e.users = n
	e.meas.onPopulation(e.now, e.users, e.apps)
}

// SetApps records the current application population (called by sources).
func (e *Engine) SetApps(n int) {
	e.apps = n
	e.meas.onPopulation(e.now, e.users, e.apps)
}

// Users returns the current user population.
func (e *Engine) Users() int { return e.users }

// Apps returns the current application population.
func (e *Engine) Apps() int { return e.apps }

// Measurements exposes the collected statistics.
func (e *Engine) Measurements() *Measurements { return e.meas }

// Source generates traffic into an engine.
type Source interface {
	// Install schedules the source's initial events.
	Install(e *Engine)
	// String describes the source for reports.
	String() string
}
