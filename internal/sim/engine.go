// Package sim is the discrete-event simulator for HAP and its baseline
// traffic models feeding single-server FIFO queues — the experimental
// apparatus behind the paper's Figures 11–18. Sources (HAP, HAP-CS,
// Poisson, ON-OFF, MMPP) generate message arrivals; exponential servers
// drain them; measurement hooks record delays, queue-length and
// population traces, busy periods ("mountains") and running means.
//
// The engine is deterministic for a fixed seed: ties in event time are
// broken by schedule order.
//
// The hot loop is allocation-free: events are typed values (kind + source
// slot + integer payload) stored inline in the scheduler and dispatched
// through a switch on concrete source types, so processing an event costs
// no closure allocation, no interface boxing and no GC pressure. Sources
// track their users/applications/calls in slot tables with generation
// counters (see table) instead of per-entity heap objects, which is what
// lets a pending event name an entity without keeping a pointer alive.
//
// An engine hosts one or more stations — (queue, server, measurements)
// triples. The default station 0 is the classic single-queue setup every
// existing entry point uses; the sharded aggregate runner (see sharded.go)
// gives each source its own station on a shared engine, so hundreds of
// independent source/queue systems cost one scheduler and one event loop
// rather than one engine each.
package sim

import (
	"context"
	"fmt"
	"math/rand"

	"hap/internal/dist"
)

// eventKind discriminates the typed events the dispatch switch understands.
// Source-specific kinds carry the source's slot in event.src and entity
// slot/generation/type indices in the a, b, c payload.
type eventKind uint8

const (
	evFunc        eventKind = iota // closure fallback for the public Schedule API
	evServiceDone                  // src = station index
	// HAPSource
	evHAPUserArrive // next spontaneous user arrival
	evHAPUserDepart // a = user slot, b = generation
	evHAPSpawn      // a = user slot, b = generation, c = application type
	evHAPAppDepart  // a = app slot,  b = generation
	evHAPEmit       // a = app slot,  b = generation, c = message type
	// PoissonSource
	evPoissonArrive
	// OnOffSource
	evOnOffArrive
	evOnOffDepart // a = call slot, b = generation
	evOnOffEmit   // a = call slot, b = generation
	// CBRSource
	evCBREmit
	// MMPPSource
	evMMPPSwitch // a = modulator generation
	evMMPPArrive // a = modulator generation
	// CSSource
	evCSUserArrive
	evCSUserDepart // a = user slot, b = generation
	evCSSpawn      // a = user slot, b = generation, c = application type
	evCSAppDepart  // a = app slot,  b = generation
	evCSOpen       // a = app slot,  b = generation, c = flattened message type
	evCSSendReq    // a = flattened message type
	evCSSendResp   // a = flattened message type
	// Network layer (internal/net)
	evNetDeliver // src = target station index, a = packet handle
)

// event is one scheduled occurrence, stored by value in the scheduler.
// fire is set only for evFunc events from the public Schedule API; every
// internal event is fully described by (kind, src, a, b, c).
type event struct {
	t    float64
	seq  uint64
	fire func()
	kind eventKind
	src  int32
	a    int32
	b    int32
	c    int32
}

// eventHeap is a hand-rolled binary min-heap ordered by (t, seq). Avoiding
// container/heap's interface boxing saves one allocation per event, which
// matters at 10⁷–10⁸ events per run. It is the scheduler's small-n mode;
// see calqueue.go for the large-n calendar queue and the hybrid that
// switches between them.
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) push(e event) {
	*h = append(*h, e)
	hh := *h
	i := len(hh) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !hh.less(i, parent) {
			break
		}
		hh[i], hh[parent] = hh[parent], hh[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	hh := *h
	top := hh[0]
	n := len(hh) - 1
	hh[0] = hh[n]
	hh[n] = event{} // release any closure for GC
	*h = hh[:n]
	hh = *h
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && hh.less(l, smallest) {
			smallest = l
		}
		if r < n && hh.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		hh[i], hh[smallest] = hh[smallest], hh[i]
		i = smallest
	}
	return top
}

// table tracks a source's live entities (users, applications, calls) by
// slot with generation counters. Pending events name an entity as
// (slot, generation); ok reports whether that incarnation is still alive,
// which implements the lazy cancellation the closure-based engine got from
// captured *simUser pointers — without allocating per entity. Slots are
// recycled through a free list, and the generation bumps on reuse so stale
// events can never resurrect a successor.
type table struct {
	gen  []int32
	live []bool
	val  []int32 // per-entity payload (application type index)
	free []int32
}

func (t *table) add(val int32) (slot, gen int32) {
	if n := len(t.free); n > 0 {
		slot = t.free[n-1]
		t.free = t.free[:n-1]
		t.gen[slot]++
		t.live[slot] = true
		t.val[slot] = val
		return slot, t.gen[slot]
	}
	slot = int32(len(t.gen))
	t.gen = append(t.gen, 0)
	t.live = append(t.live, true)
	t.val = append(t.val, val)
	return slot, 0
}

func (t *table) kill(slot int32) {
	t.live[slot] = false
	t.free = append(t.free, slot)
}

func (t *table) ok(slot, gen int32) bool {
	return t.live[slot] && t.gen[slot] == gen
}

// message is one queued message. pkt, when >= 0, is an opaque packet
// handle owned by a network driver (see SetPacketDoneHook); plain
// single-queue traffic carries -1.
type message struct {
	arrival float64
	svc     dist.Distribution
	class   int // message class index for per-class stats
	pkt     int32
}

// station is one (FIFO queue, server, measurements) triple. Station 0 is
// the engine's default; AddStation creates more for sharded aggregates.
// A station's sample path depends only on its own arrival stream and its
// own service stream, never on which other stations share the engine —
// the independence that makes sharded runs bit-identical at any shard
// count.
type station struct {
	// FIFO queue as a sliding window: queue[qhead] is in service when
	// busy. The head index avoids O(n) shifts during long busy periods
	// (mountains reach O(10⁴) messages).
	queue []message
	qhead int
	busy  bool
	rng   *rand.Rand // service-time stream
	// batch, when non-nil, serves exponential service laws from a
	// block-refilled reader over rng (see dist.ExpBatch); draw order is
	// preserved, so enabling it changes no sample path as long as every
	// service law on the station is exponential.
	batch      *dist.ExpBatch
	meas       *Measurements
	arrivals   int64
	departures int64
	// users/apps are the populations of the sources bound to this station;
	// keeping them per station (not engine-global) is what makes a
	// station's measurements independent of which other stations share the
	// engine — the sharding determinism contract.
	users int
	apps  int
	// served, when set, is invoked after each service completion with the
	// message class; the HAP-CS source uses it to trigger responses.
	served func(class int)
	// ingress, when set, intercepts every message a source delivers to
	// this station before it touches the queue: the network layer binds
	// one per external source to tag messages with packet state and
	// re-inject them at the source's ingress node (see SetIngressHook).
	// The station then acts as a pure tagging alias — its own queue and
	// server are never used.
	ingress func(svc dist.Distribution, class int)
}

func (st *station) qlen() int { return len(st.queue) - st.qhead }

// Engine is the simulation core: clock, future event list, and one or
// more single-server queues (stations).
type Engine struct {
	now    float64
	seq    uint64
	events sched

	stations []station

	horizon float64

	// Installed sources by concrete type; event.src indexes into the
	// matching slice, so dispatch is a direct switch with no interface
	// method call on the hot path.
	haps     []*HAPSource
	poissons []*PoissonSource
	onoffs   []*OnOffSource
	cbrs     []*CBRSource
	mmpps    []*MMPPSource
	css      []*CSSource

	// installStation is the station new sources bind to; Install leaves
	// it at 0 (the classic single-queue engine), InstallAt points it at a
	// dedicated station for the duration of one source's Install.
	installStation int32

	// Populations maintained by sources for tracing.
	users int
	apps  int

	arrivals   int64
	departures int64
	maxEvents  int64
	processed  int64
	truncated  bool

	// Watermarks for the batched metrics flush (see flushObs): the deltas
	// since the last flush go to the package counters, so the per-event
	// loop never touches an atomic.
	obsFlushed    int64
	obsArrFlushed int64
	obsDepFlushed int64

	// ctx, when set, is polled every ctxPollMask+1 events; a cancelled
	// context stops the run early with err recording the cause.
	ctx context.Context
	err error

	// Network-layer hooks (see internal/net): deliver handles evNetDeliver
	// events — a packet reaching a station after a link traversal — and
	// packetDone fires after a packet's service completes at a station.
	// Both are engine-wide because one network driver owns every packet
	// on the engine.
	deliver    func(station, pkt int32)
	packetDone func(station, pkt int32, class int, sojourn float64)
}

// Pre-sizing for the event scheduler and message queues: large enough
// that typical runs never grow them, small enough to be irrelevant for
// tiny ones (a few tens of KiB per engine).
const (
	initialHeapCap  = 1 << 12
	initialQueueCap = 1 << 10
)

// ctxPollMask sets the cancellation poll period: the context is checked
// every 4096 events, cheap enough to be invisible in the allocation-free
// hot loop yet prompt at the 10⁶–10⁸ events/s the engine sustains.
const ctxPollMask = 1<<12 - 1

// NewEngine creates an engine running to the given simulated horizon,
// with the supplied service-time random stream feeding station 0.
func NewEngine(horizon float64, rng *rand.Rand, meas *Measurements) *Engine {
	if horizon <= 0 {
		panic("sim: horizon must be positive")
	}
	if meas == nil {
		meas = NewMeasurements(MeasureConfig{})
	}
	e := &Engine{
		horizon:   horizon,
		maxEvents: 1 << 62,
	}
	e.events.heap = make(eventHeap, 0, initialHeapCap)
	e.stations = append(e.stations, station{
		queue: make([]message, 0, initialQueueCap),
		rng:   rng,
		meas:  meas,
	})
	return e
}

// AddStation creates an independent (queue, server, measurements) triple
// and returns its index. Sources bound to the station via InstallAt feed
// its queue instead of station 0's. With batched true, exponential
// service laws are served from a block-refilled draw buffer — the draw
// order is preserved, so results are unchanged provided every service law
// on the station is exponential (non-exponential laws fall back to direct
// sampling, which then interleaves with the pre-read buffer and changes
// the station's sample path versus an unbatched station; never enable
// batching on stations with mixed service laws if that equivalence
// matters).
func (e *Engine) AddStation(rng *rand.Rand, meas *Measurements, batched bool) int32 {
	if meas == nil {
		meas = NewMeasurements(MeasureConfig{})
	}
	st := station{rng: rng, meas: meas}
	if batched {
		st.batch = dist.NewExpBatch(rng)
	}
	e.stations = append(e.stations, st)
	return int32(len(e.stations) - 1)
}

// InstallAt installs a source bound to the given station: every message
// the source emits joins that station's queue, and that station's
// measurements observe it.
func (e *Engine) InstallAt(src Source, station int32) {
	prev := e.installStation
	e.installStation = station
	src.Install(e)
	e.installStation = prev
}

// Now returns the simulation clock.
func (e *Engine) Now() float64 { return e.now }

// Schedule enqueues fire to run at absolute time t (>= Now). Events beyond
// the horizon are still queued; Run stops at the horizon regardless.
//
// Each call allocates the closure it is handed; sources on the hot path
// use typed events (scheduleEv) instead, which allocate nothing.
func (e *Engine) Schedule(t float64, fire func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling into the past (%v < %v)", t, e.now))
	}
	e.seq++
	e.events.push(event{t: t, seq: e.seq, kind: evFunc, fire: fire})
}

// ScheduleAfter enqueues fire after a delay.
func (e *Engine) ScheduleAfter(d float64, fire func()) { e.Schedule(e.now+d, fire) }

// scheduleEv enqueues a typed event at absolute time t.
func (e *Engine) scheduleEv(t float64, kind eventKind, src, a, b, c int32) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling into the past (%v < %v)", t, e.now))
	}
	e.seq++
	e.events.push(event{t: t, seq: e.seq, kind: kind, src: src, a: a, b: b, c: c})
}

// scheduleEvAfter enqueues a typed event after a delay.
func (e *Engine) scheduleEvAfter(d float64, kind eventKind, src, a, b, c int32) {
	e.scheduleEv(e.now+d, kind, src, a, b, c)
}

// dispatch routes one event to its handler. The switch covers every typed
// kind with a direct concrete-type method call; only evFunc events (public
// Schedule API) go through a function value.
func (e *Engine) dispatch(ev *event) {
	switch ev.kind {
	case evServiceDone:
		e.completeService(ev.src)
	case evHAPEmit:
		e.haps[ev.src].emit(ev.a, ev.b, ev.c)
	case evHAPSpawn:
		e.haps[ev.src].spawn(ev.a, ev.b, ev.c)
	case evHAPAppDepart:
		e.haps[ev.src].appDepart(ev.a, ev.b)
	case evHAPUserDepart:
		e.haps[ev.src].userDepart(ev.a, ev.b)
	case evHAPUserArrive:
		e.haps[ev.src].userArrive()
	case evPoissonArrive:
		e.poissons[ev.src].arrive()
	case evOnOffArrive:
		e.onoffs[ev.src].callArrive()
	case evOnOffDepart:
		e.onoffs[ev.src].callDepart(ev.a, ev.b)
	case evOnOffEmit:
		e.onoffs[ev.src].emit(ev.a, ev.b)
	case evCBREmit:
		e.cbrs[ev.src].emit()
	case evMMPPSwitch:
		e.mmpps[ev.src].switchState(ev.a)
	case evMMPPArrive:
		e.mmpps[ev.src].arrive(ev.a)
	case evCSUserArrive:
		e.css[ev.src].userArrive()
	case evCSUserDepart:
		e.css[ev.src].userDepart(ev.a, ev.b)
	case evCSSpawn:
		e.css[ev.src].spawn(ev.a, ev.b, ev.c)
	case evCSAppDepart:
		e.css[ev.src].appDepart(ev.a, ev.b)
	case evCSOpen:
		e.css[ev.src].open(ev.a, ev.b, ev.c)
	case evCSSendReq:
		e.css[ev.src].sendRequest(ev.a)
	case evCSSendResp:
		e.css[ev.src].sendResponse(ev.a)
	case evNetDeliver:
		e.deliver(ev.src, ev.a)
	case evFunc:
		ev.fire()
	default:
		panic(fmt.Sprintf("sim: unknown event kind %d", ev.kind))
	}
}

// Source registration: Install calls one of these to obtain the slot that
// the source's typed events carry in event.src.

func (e *Engine) registerHAP(s *HAPSource) int32 {
	e.haps = append(e.haps, s)
	return int32(len(e.haps) - 1)
}

func (e *Engine) registerPoisson(s *PoissonSource) int32 {
	e.poissons = append(e.poissons, s)
	return int32(len(e.poissons) - 1)
}

func (e *Engine) registerOnOff(s *OnOffSource) int32 {
	e.onoffs = append(e.onoffs, s)
	return int32(len(e.onoffs) - 1)
}

func (e *Engine) registerCBR(s *CBRSource) int32 {
	e.cbrs = append(e.cbrs, s)
	return int32(len(e.cbrs) - 1)
}

func (e *Engine) registerMMPP(s *MMPPSource) int32 {
	e.mmpps = append(e.mmpps, s)
	return int32(len(e.mmpps) - 1)
}

func (e *Engine) registerCS(s *CSSource) int32 {
	e.css = append(e.css, s)
	return int32(len(e.css) - 1)
}

// Run processes events until the horizon, event budget, or context is
// exhausted. When the budget or a cancellation cuts the run short the clock
// stays at the last processed event and Truncated reports true (Err carries
// the context error for cancellations); measurements always close at
// min(now, horizon), never at a horizon the run did not reach.
func (e *Engine) Run() {
	for i := range e.stations {
		st := &e.stations[i]
		st.meas.start(e.now, st.qlen(), st.users, st.apps)
	}
	for e.events.len() > 0 {
		if e.processed >= e.maxEvents {
			e.truncated = true
			break
		}
		if e.processed&ctxPollMask == 0 {
			e.flushObs()
			if e.ctx != nil {
				if err := e.ctx.Err(); err != nil {
					e.err = err
					e.truncated = true
					break
				}
			}
		}
		ev := e.events.pop()
		if ev.t > e.horizon {
			e.now = e.horizon
			break
		}
		e.now = ev.t
		e.dispatch(&ev)
		e.processed++
	}
	end := e.now
	if end > e.horizon {
		end = e.horizon
	}
	for i := range e.stations {
		st := &e.stations[i]
		st.meas.finish(end, st.qlen())
		st.meas.Truncated = e.truncated
	}
	e.flushObs()
	obsRuns.Inc()
	if e.truncated {
		obsTruncations.Inc()
	}
}

// SetMaxEvents bounds the number of processed events (safety valve for
// open-ended sources).
func (e *Engine) SetMaxEvents(n int64) { e.maxEvents = n }

// SetContext arms cooperative cancellation: Run polls ctx every few
// thousand events and stops early — marking the run truncated and
// recording the context error — once it is done. Nil disarms.
func (e *Engine) SetContext(ctx context.Context) { e.ctx = ctx }

// Err returns the context error that stopped the run early, or nil.
func (e *Engine) Err() error { return e.err }

// Processed returns the number of events fired.
func (e *Engine) Processed() int64 { return e.processed }

// Truncated reports whether Run stopped on the event budget before
// reaching the horizon.
func (e *Engine) Truncated() bool { return e.truncated }

// Arrivals returns the number of messages that entered a queue (all
// stations).
func (e *Engine) Arrivals() int64 { return e.arrivals }

// Departures returns the number of completed services (all stations).
func (e *Engine) Departures() int64 { return e.departures }

// QueueLen returns the current number in system at station 0.
func (e *Engine) QueueLen() int { return e.stations[0].qlen() }

// totalQueueLen sums the number in system across stations (obs gauge).
func (e *Engine) totalQueueLen() int {
	n := 0
	for i := range e.stations {
		n += e.stations[i].qlen()
	}
	return n
}

// ArriveMessage delivers a message with the given service-time law to
// station 0's queue at the current clock.
func (e *Engine) ArriveMessage(svc dist.Distribution, class int) {
	e.arriveInto(0, svc, class)
}

// arriveInto delivers a message to the given station's queue. A station
// with an ingress hook never queues: the hook owns the message and decides
// where (and whether) it enters the network.
func (e *Engine) arriveInto(sti int32, svc dist.Distribution, class int) {
	st := &e.stations[sti]
	if st.ingress != nil {
		st.ingress(svc, class)
		return
	}
	e.enqueue(sti, svc, class, -1)
}

// ArrivePacketAt delivers a network packet to the given station's queue at
// the current clock, carrying the driver's packet handle through service so
// the packet-done hook can route it onward.
func (e *Engine) ArrivePacketAt(sti int32, svc dist.Distribution, class int, pkt int32) {
	e.enqueue(sti, svc, class, pkt)
}

func (e *Engine) enqueue(sti int32, svc dist.Distribution, class int, pkt int32) {
	e.arrivals++
	st := &e.stations[sti]
	st.arrivals++
	st.queue = append(st.queue, message{arrival: e.now, svc: svc, class: class, pkt: pkt})
	st.meas.onArrival(e.now, st.qlen(), class)
	if !st.busy {
		e.startService(sti)
	}
}

func (e *Engine) startService(sti int32) {
	st := &e.stations[sti]
	st.busy = true
	m := &st.queue[st.qhead]
	var svcTime float64
	if st.batch != nil {
		if ex, ok := m.svc.(dist.Exponential); ok {
			svcTime = st.batch.Exp() / ex.Lambda
		} else {
			svcTime = m.svc.Sample(st.rng)
		}
	} else {
		svcTime = m.svc.Sample(st.rng)
	}
	e.scheduleEv(e.now+svcTime, evServiceDone, sti, 0, 0, 0)
}

func (e *Engine) completeService(sti int32) {
	st := &e.stations[sti]
	m := st.queue[st.qhead]
	st.queue[st.qhead] = message{} // release for GC
	st.qhead++
	// Compact once the dead prefix dominates.
	if st.qhead > 64 && st.qhead*2 > len(st.queue) {
		n := copy(st.queue, st.queue[st.qhead:])
		st.queue = st.queue[:n]
		st.qhead = 0
	}
	e.departures++
	st.departures++
	st.meas.onDeparture(e.now, e.now-m.arrival, st.qlen(), m.class)
	if st.served != nil {
		st.served(m.class)
	}
	if m.pkt >= 0 && e.packetDone != nil {
		e.packetDone(sti, m.pkt, m.class, e.now-m.arrival)
	}
	if st.qlen() > 0 {
		e.startService(sti)
	} else {
		st.busy = false
	}
}

// SetServedHook registers a callback fired after every service completion
// at the hook's station (before the next service starts). Sources that
// react to completions — request/response exchanges — use this; the hook
// binds to the station the source installing it is bound to.
func (e *Engine) SetServedHook(f func(class int)) {
	e.stations[e.installStation].served = f
}

// SetIngressHook turns the given station into a tagging alias: every
// message a source bound to it emits is handed to f instead of queueing.
// The network driver binds one alias station per external source, so the
// hook's closure knows which source (and hence which ingress node and
// destination) a message belongs to — information arriveInto alone cannot
// carry.
func (e *Engine) SetIngressHook(sti int32, f func(svc dist.Distribution, class int)) {
	e.stations[sti].ingress = f
}

// SetPacketDoneHook registers the engine-wide hook fired when a message
// carrying a packet handle (ArrivePacketAt) completes service: the hook
// receives the station, the handle, the message class, and the sojourn
// time spent at that station, and decides the packet's next hop.
func (e *Engine) SetPacketDoneHook(f func(station, pkt int32, class int, sojourn float64)) {
	e.packetDone = f
}

// SetDeliverHook registers the engine-wide handler for scheduled packet
// deliveries (see ScheduleDeliver).
func (e *Engine) SetDeliverHook(f func(station, pkt int32)) {
	e.deliver = f
}

// ScheduleDeliver enqueues a typed packet-delivery event: at absolute time
// t the deliver hook fires with (station, pkt). The station index is folded
// into the event key, so a hop costs one inline event — no closure, no
// allocation.
func (e *Engine) ScheduleDeliver(t float64, station, pkt int32) {
	e.scheduleEv(t, evNetDeliver, station, pkt, 0, 0)
}

// StationQueueLen returns the current number in system at the given
// station (the network layer's finite-buffer admission check).
func (e *Engine) StationQueueLen(sti int32) int { return e.stations[sti].qlen() }

// SetUsers records the current user population at station 0 (legacy
// single-station API; station-bound sources use addUsers).
func (e *Engine) SetUsers(n int) {
	st := &e.stations[0]
	e.users += n - st.users
	st.users = n
	st.meas.onPopulation(e.now, st.users, st.apps)
}

// SetApps records the current application population at station 0.
func (e *Engine) SetApps(n int) {
	st := &e.stations[0]
	e.apps += n - st.apps
	st.apps = n
	st.meas.onPopulation(e.now, st.users, st.apps)
}

// addUsers adjusts the given station's user population (called by
// station-bound sources).
func (e *Engine) addUsers(sti int32, d int) {
	st := &e.stations[sti]
	st.users += d
	e.users += d
	st.meas.onPopulation(e.now, st.users, st.apps)
}

// addApps adjusts the given station's application population.
func (e *Engine) addApps(sti int32, d int) {
	st := &e.stations[sti]
	st.apps += d
	e.apps += d
	st.meas.onPopulation(e.now, st.users, st.apps)
}

// Users returns the current user population.
func (e *Engine) Users() int { return e.users }

// Apps returns the current application population.
func (e *Engine) Apps() int { return e.apps }

// Measurements exposes station 0's collected statistics.
func (e *Engine) Measurements() *Measurements { return e.stations[0].meas }

// stationMeas returns the given station's measurements.
func (e *Engine) stationMeas(sti int32) *Measurements { return e.stations[sti].meas }

// Source generates traffic into an engine.
type Source interface {
	// Install registers the source with the engine and schedules its
	// initial events.
	Install(e *Engine)
	// String describes the source for reports.
	String() string
}
