package sim

import (
	"context"
	"math"
	"time"

	"hap/internal/core"
	"hap/internal/dist"
	"hap/internal/haperr"
	"hap/internal/stats"
)

// Config drives a single simulation run.
type Config struct {
	// Horizon is the simulated time to cover (same unit as the model's
	// rates — seconds for the paper's parameters).
	Horizon float64
	// Seed makes the run reproducible.
	Seed int64
	// MaxEvents caps the event count (0 = unlimited).
	MaxEvents int64
	// Measure selects the statistics to collect.
	Measure MeasureConfig
	// Ctx, when non-nil, is polled by the event loop; a cancelled context
	// stops the run early, marking it truncated with Err set.
	Ctx context.Context
}

// Validate rejects configurations the engine cannot run, so flag-driven
// callers get an error instead of the engine's invariant panic.
func (cfg Config) Validate() error {
	if !(cfg.Horizon > 0) || math.IsInf(cfg.Horizon, 1) {
		return haperr.Badf("sim: horizon must be positive and finite (got %v)", cfg.Horizon)
	}
	if cfg.MaxEvents < 0 {
		return haperr.Badf("sim: max events must be non-negative (got %d)", cfg.MaxEvents)
	}
	return nil
}

// RunResult is a completed run.
type RunResult struct {
	Meas       *Measurements
	Arrivals   int64
	Departures int64
	Events     int64
	// Truncated reports that the event budget (MaxEvents) or a cancelled
	// context stopped the run before the simulated horizon; measurements
	// cover only the reached span.
	Truncated bool
	// Err is non-nil when the configuration was invalid or the run was
	// cancelled (the context error); measurements cover the span reached
	// before the stop.
	Err     error
	Elapsed time.Duration
	Source  string
}

// Run executes one simulation of the given source. An invalid configuration
// returns an empty result with Err set rather than panicking.
func Run(src Source, cfg Config) *RunResult {
	start := time.Now()
	meas := NewMeasurements(cfg.Measure)
	if err := cfg.Validate(); err != nil {
		return &RunResult{Meas: meas, Err: err, Source: src.String()}
	}
	streams := dist.NewStreams(cfg.Seed)
	e := NewEngine(cfg.Horizon, streams.Next(), meas)
	if cfg.MaxEvents > 0 {
		e.SetMaxEvents(cfg.MaxEvents)
	}
	if cfg.Ctx != nil {
		e.SetContext(cfg.Ctx)
	}
	src.Install(e)
	e.Run()
	return &RunResult{
		Meas:       meas,
		Arrivals:   e.Arrivals(),
		Departures: e.Departures(),
		Events:     e.Processed(),
		Truncated:  e.Truncated(),
		Err:        e.Err(),
		Elapsed:    time.Since(start),
		Source:     src.String(),
	}
}

// errResult reports an invalid-input run without running anything, so the
// source constructors' invariant panics stay unreachable from here.
func errResult(cfg Config, source string, err error) *RunResult {
	return &RunResult{Meas: NewMeasurements(cfg.Measure), Err: err, Source: source}
}

// RunHAP simulates the model; the source stream is derived from the seed.
// An invalid model returns a result with Err set rather than panicking.
func RunHAP(m *core.Model, cfg Config) *RunResult {
	if err := m.Validate(); err != nil {
		return errResult(cfg, "hap", err)
	}
	streams := dist.NewStreams(cfg.Seed + 1)
	src := NewHAPSource(m, streams.Next())
	if cfg.Measure.ClassCount == 0 {
		cfg.Measure.ClassCount = src.ClassCount()
	}
	return Run(src, cfg)
}

// RunPoisson simulates the equal-rate Poisson baseline with exp(muMsg)
// service. Invalid rates return a result with Err set rather than
// panicking.
func RunPoisson(rate, muMsg float64, cfg Config) *RunResult {
	if !(rate > 0) || math.IsInf(rate, 1) || !(muMsg > 0) || math.IsInf(muMsg, 1) {
		return errResult(cfg, "poisson", haperr.Badf("sim: poisson rates must be positive and finite (rate=%v, μ=%v)", rate, muMsg))
	}
	streams := dist.NewStreams(cfg.Seed + 1)
	src := NewPoissonSource(rate, dist.NewExponential(muMsg), streams.Next())
	return Run(src, cfg)
}

// RunOnOff simulates the 2-level HAP / ON-OFF model. An invalid model
// returns a result with Err set rather than panicking.
func RunOnOff(tl *core.TwoLevel, cfg Config) *RunResult {
	if err := tl.Validate(); err != nil {
		return errResult(cfg, "onoff", err)
	}
	streams := dist.NewStreams(cfg.Seed + 1)
	return Run(NewOnOffSource(tl, streams.Next()), cfg)
}

// RunCS simulates the client-server model. An invalid model returns a
// result with Err set rather than panicking.
func RunCS(m *core.CSModel, cfg Config) *RunResult {
	if err := m.Validate(); err != nil {
		return errResult(cfg, "hap-cs", err)
	}
	streams := dist.NewStreams(cfg.Seed + 1)
	src := NewCSSource(m, streams.Next())
	if cfg.Measure.ClassCount == 0 {
		cfg.Measure.ClassCount = src.ClassCount()
	}
	return Run(src, cfg)
}

// Replications runs n independent replications (seeds seed+1..seed+n) of
// whatever run produces a scalar metric, returning the across-replication
// Welford and a ~95% half width.
func Replications(n int, seed int64, run func(seed int64) float64) (stats.Welford, float64) {
	var w stats.Welford
	for i := 1; i <= n; i++ {
		w.Add(run(seed + int64(i)))
	}
	hw := 0.0
	if n >= 2 {
		hw = 1.96 * w.Std() / math.Sqrt(float64(n))
	}
	return w, hw
}
