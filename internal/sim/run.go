package sim

import (
	"math"
	"time"

	"hap/internal/core"
	"hap/internal/dist"
	"hap/internal/stats"
)

// Config drives a single simulation run.
type Config struct {
	// Horizon is the simulated time to cover (same unit as the model's
	// rates — seconds for the paper's parameters).
	Horizon float64
	// Seed makes the run reproducible.
	Seed int64
	// MaxEvents caps the event count (0 = unlimited).
	MaxEvents int64
	// Measure selects the statistics to collect.
	Measure MeasureConfig
}

// RunResult is a completed run.
type RunResult struct {
	Meas       *Measurements
	Arrivals   int64
	Departures int64
	Events     int64
	// Truncated reports that the event budget (MaxEvents) stopped the run
	// before the simulated horizon; measurements cover only the reached
	// span.
	Truncated bool
	Elapsed   time.Duration
	Source    string
}

// Run executes one simulation of the given source.
func Run(src Source, cfg Config) *RunResult {
	start := time.Now()
	streams := dist.NewStreams(cfg.Seed)
	meas := NewMeasurements(cfg.Measure)
	e := NewEngine(cfg.Horizon, streams.Next(), meas)
	if cfg.MaxEvents > 0 {
		e.SetMaxEvents(cfg.MaxEvents)
	}
	src.Install(e)
	e.Run()
	return &RunResult{
		Meas:       meas,
		Arrivals:   e.Arrivals(),
		Departures: e.Departures(),
		Events:     e.Processed(),
		Truncated:  e.Truncated(),
		Elapsed:    time.Since(start),
		Source:     src.String(),
	}
}

// RunHAP simulates the model; the source stream is derived from the seed.
func RunHAP(m *core.Model, cfg Config) *RunResult {
	streams := dist.NewStreams(cfg.Seed + 1)
	src := NewHAPSource(m, streams.Next())
	if cfg.Measure.ClassCount == 0 {
		cfg.Measure.ClassCount = src.ClassCount()
	}
	return Run(src, cfg)
}

// RunPoisson simulates the equal-rate Poisson baseline with exp(muMsg)
// service.
func RunPoisson(rate, muMsg float64, cfg Config) *RunResult {
	streams := dist.NewStreams(cfg.Seed + 1)
	src := NewPoissonSource(rate, dist.NewExponential(muMsg), streams.Next())
	return Run(src, cfg)
}

// RunOnOff simulates the 2-level HAP / ON-OFF model.
func RunOnOff(tl *core.TwoLevel, cfg Config) *RunResult {
	streams := dist.NewStreams(cfg.Seed + 1)
	return Run(NewOnOffSource(tl, streams.Next()), cfg)
}

// RunCS simulates the client-server model.
func RunCS(m *core.CSModel, cfg Config) *RunResult {
	streams := dist.NewStreams(cfg.Seed + 1)
	src := NewCSSource(m, streams.Next())
	if cfg.Measure.ClassCount == 0 {
		cfg.Measure.ClassCount = src.ClassCount()
	}
	return Run(src, cfg)
}

// Replications runs n independent replications (seeds seed+1..seed+n) of
// whatever run produces a scalar metric, returning the across-replication
// Welford and a ~95% half width.
func Replications(n int, seed int64, run func(seed int64) float64) (stats.Welford, float64) {
	var w stats.Welford
	for i := 1; i <= n; i++ {
		w.Add(run(seed + int64(i)))
	}
	hw := 0.0
	if n >= 2 {
		hw = 1.96 * w.Std() / math.Sqrt(float64(n))
	}
	return w, hw
}
