package sim

import (
	"fmt"
	"math/rand"

	"hap/internal/core"
	"hap/internal/dist"
)

// CSSource simulates HAP-CS (Section 2.2): the hierarchy spawns
// exchange-opening *requests*; when a request finishes service it triggers
// a *response* with probability PResp, and a served response triggers the
// next request of the exchange with probability PNext — the rlogin
// command/result ping-pong. Requests and responses share the single
// queue; classes are numbered 2k (request) and 2k+1 (response) for
// message type k in declaration order.
//
// Like HAPSource, users and applications live in slot tables and every
// clock — including the triggered request/response continuations — is a
// typed event, so the exchange machinery allocates nothing per message.
type CSSource struct {
	Model           *core.CSModel
	StartStationary bool
	// ThinkTime, when non-nil, delays each triggered message by a sampled
	// think/turnaround time (zero by default: the remote party reacts
	// immediately).
	ThinkTime dist.Distribution

	rng       *rand.Rand
	e         *Engine
	id        int32
	st        int32
	users     table
	apps      table
	svcReq    []dist.Distribution
	svcResp   []dist.Distribution
	pResp     []float64
	pNext     []float64
	openRate  []float64 // spontaneous opening rate λ'' per flattened type
	typeStart []int     // first flattened type index per application type
}

// NewCSSource builds a client-server source.
func NewCSSource(m *core.CSModel, rng *rand.Rand) *CSSource {
	if err := m.Validate(); err != nil {
		panic(err)
	}
	s := &CSSource{Model: m, StartStationary: true, rng: rng}
	for _, a := range m.Apps {
		s.typeStart = append(s.typeStart, len(s.svcReq))
		for _, msg := range a.Messages {
			s.svcReq = append(s.svcReq, dist.NewExponential(msg.MuReq))
			s.svcResp = append(s.svcResp, dist.NewExponential(msg.MuResp))
			s.pResp = append(s.pResp, msg.PResp)
			s.pNext = append(s.pNext, msg.PNext)
			s.openRate = append(s.openRate, msg.Lambda)
		}
	}
	return s
}

// ClassCount returns the number of message classes (2 per message type).
func (s *CSSource) ClassCount() int { return 2 * len(s.svcReq) }

func (s *CSSource) String() string { return fmt.Sprintf("hap-cs(%s)", s.Model.Name) }

// Install wires the completion hook and schedules the hierarchy.
func (s *CSSource) Install(e *Engine) {
	s.e = e
	s.id = e.registerCS(s)
	s.st = e.installStation
	e.SetServedHook(s.onServed)
	if s.StartStationary {
		nu := s.Model.Nu()
		for k := 0; k < dist.PoissonSample(s.rng, nu); k++ {
			s.addUser()
		}
	}
	e.scheduleEvAfter(s.rng.ExpFloat64()/s.Model.Lambda, evCSUserArrive, s.id, 0, 0, 0)
}

func (s *CSSource) userArrive() {
	s.addUser()
	s.e.scheduleEvAfter(s.rng.ExpFloat64()/s.Model.Lambda, evCSUserArrive, s.id, 0, 0, 0)
}

func (s *CSSource) addUser() {
	slot, gen := s.users.add(0)
	s.e.addUsers(s.st, 1)
	s.e.scheduleEvAfter(s.rng.ExpFloat64()/s.Model.Mu, evCSUserDepart, s.id, slot, gen, 0)
	for i := range s.Model.Apps {
		s.scheduleSpawn(slot, gen, int32(i))
	}
}

func (s *CSSource) userDepart(slot, gen int32) {
	if !s.users.ok(slot, gen) {
		return
	}
	s.users.kill(slot)
	s.e.addUsers(s.st, -1)
}

func (s *CSSource) scheduleSpawn(slot, gen, ti int32) {
	s.e.scheduleEvAfter(s.rng.ExpFloat64()/s.Model.Apps[ti].Lambda, evCSSpawn, s.id, slot, gen, ti)
}

func (s *CSSource) spawn(slot, gen, ti int32) {
	if !s.users.ok(slot, gen) {
		return
	}
	s.addApp(ti)
	s.scheduleSpawn(slot, gen, ti)
}

func (s *CSSource) addApp(ti int32) {
	slot, gen := s.apps.add(ti)
	s.e.addApps(s.st, 1)
	s.e.scheduleEvAfter(s.rng.ExpFloat64()/s.Model.Apps[ti].Mu, evCSAppDepart, s.id, slot, gen, 0)
	base := s.typeStart[ti]
	for j := range s.Model.Apps[ti].Messages {
		s.scheduleOpen(slot, gen, int32(base+j))
	}
}

func (s *CSSource) appDepart(slot, gen int32) {
	if !s.apps.ok(slot, gen) {
		return
	}
	s.apps.kill(slot)
	s.e.addApps(s.st, -1)
}

// scheduleOpen arms the exchange-opening clock for flattened message type k
// of a live application.
func (s *CSSource) scheduleOpen(slot, gen, k int32) {
	s.e.scheduleEvAfter(s.rng.ExpFloat64()/s.openRate[k], evCSOpen, s.id, slot, gen, k)
}

func (s *CSSource) open(slot, gen, k int32) {
	if !s.apps.ok(slot, gen) {
		return
	}
	s.sendRequest(k)
	s.scheduleOpen(slot, gen, k)
}

func (s *CSSource) sendRequest(k int32) {
	s.e.arriveInto(s.st, s.svcReq[k], int(2*k))
}

func (s *CSSource) sendResponse(k int32) {
	s.e.arriveInto(s.st, s.svcResp[k], int(2*k+1))
}

// onServed continues the exchange: served request → maybe response;
// served response → maybe next request. Triggered messages outlive the
// application that opened the exchange, mirroring how a remote server
// replies regardless.
func (s *CSSource) onServed(class int) {
	k := class / 2
	if k < 0 || k >= len(s.pResp) {
		return
	}
	if class%2 == 0 {
		// Request finished: trigger the response.
		if s.rng.Float64() < s.pResp[k] {
			s.after(evCSSendResp, int32(k))
		}
		return
	}
	// Response finished: maybe the client issues the next request.
	if s.rng.Float64() < s.pNext[k] {
		s.after(evCSSendReq, int32(k))
	}
}

// after schedules a triggered message. With no think time the delay is
// zero — scheduled rather than delivered inline so the engine finishes the
// current completion (queue pop, stats) first.
func (s *CSSource) after(kind eventKind, k int32) {
	var d float64
	if s.ThinkTime != nil {
		d = s.ThinkTime.Sample(s.rng)
	}
	s.e.scheduleEvAfter(d, kind, s.id, k, 0, 0)
}
