package sim

import (
	"fmt"
	"math/rand"

	"hap/internal/core"
	"hap/internal/dist"
)

// CSSource simulates HAP-CS (Section 2.2): the hierarchy spawns
// exchange-opening *requests*; when a request finishes service it triggers
// a *response* with probability PResp, and a served response triggers the
// next request of the exchange with probability PNext — the rlogin
// command/result ping-pong. Requests and responses share the single
// queue; classes are numbered 2k (request) and 2k+1 (response) for
// message type k in declaration order.
type CSSource struct {
	Model           *core.CSModel
	StartStationary bool
	// ThinkTime, when non-nil, delays each triggered message by a sampled
	// think/turnaround time (zero by default: the remote party reacts
	// immediately).
	ThinkTime dist.Distribution

	rng     *rand.Rand
	e       *Engine
	svcReq  []dist.Distribution
	svcResp []dist.Distribution
	pResp   []float64
	pNext   []float64
}

// NewCSSource builds a client-server source.
func NewCSSource(m *core.CSModel, rng *rand.Rand) *CSSource {
	if err := m.Validate(); err != nil {
		panic(err)
	}
	s := &CSSource{Model: m, StartStationary: true, rng: rng}
	for _, a := range m.Apps {
		for _, msg := range a.Messages {
			s.svcReq = append(s.svcReq, dist.NewExponential(msg.MuReq))
			s.svcResp = append(s.svcResp, dist.NewExponential(msg.MuResp))
			s.pResp = append(s.pResp, msg.PResp)
			s.pNext = append(s.pNext, msg.PNext)
		}
	}
	return s
}

// ClassCount returns the number of message classes (2 per message type).
func (s *CSSource) ClassCount() int { return 2 * len(s.svcReq) }

func (s *CSSource) String() string { return fmt.Sprintf("hap-cs(%s)", s.Model.Name) }

// Install wires the completion hook and schedules the hierarchy.
func (s *CSSource) Install(e *Engine) {
	s.e = e
	e.SetServedHook(s.onServed)
	if s.StartStationary {
		nu := s.Model.Nu()
		for k := 0; k < dist.PoissonSample(s.rng, nu); k++ {
			s.addUser()
		}
	}
	e.ScheduleAfter(s.rng.ExpFloat64()/s.Model.Lambda, s.userArrival)
}

func (s *CSSource) userArrival() {
	s.addUser()
	s.e.ScheduleAfter(s.rng.ExpFloat64()/s.Model.Lambda, s.userArrival)
}

func (s *CSSource) addUser() {
	u := &simUser{alive: true}
	s.e.SetUsers(s.e.Users() + 1)
	s.e.ScheduleAfter(s.rng.ExpFloat64()/s.Model.Mu, func() {
		u.alive = false
		s.e.SetUsers(s.e.Users() - 1)
	})
	for i := range s.Model.Apps {
		s.scheduleSpawn(u, i)
	}
}

func (s *CSSource) scheduleSpawn(u *simUser, ti int) {
	s.e.ScheduleAfter(s.rng.ExpFloat64()/s.Model.Apps[ti].Lambda, func() {
		if !u.alive {
			return
		}
		s.addApp(ti)
		s.scheduleSpawn(u, ti)
	})
}

func (s *CSSource) addApp(ti int) {
	a := &simApp{alive: true, ti: ti}
	s.e.SetApps(s.e.Apps() + 1)
	s.e.ScheduleAfter(s.rng.ExpFloat64()/s.Model.Apps[ti].Mu, func() {
		a.alive = false
		s.e.SetApps(s.e.Apps() - 1)
	})
	base := s.typeBase(ti)
	for j := range s.Model.Apps[ti].Messages {
		s.scheduleOpen(a, j, base+j)
	}
}

// typeBase returns the flattened message-type index of (ti, 0).
func (s *CSSource) typeBase(ti int) int {
	base := 0
	for i := 0; i < ti; i++ {
		base += len(s.Model.Apps[i].Messages)
	}
	return base
}

// scheduleOpen emits exchange-opening requests for message type k of a
// live application.
func (s *CSSource) scheduleOpen(a *simApp, j, k int) {
	s.e.ScheduleAfter(s.rng.ExpFloat64()/s.Model.Apps[a.ti].Messages[j].Lambda, func() {
		if !a.alive {
			return
		}
		s.sendRequest(k)
		s.scheduleOpen(a, j, k)
	})
}

func (s *CSSource) sendRequest(k int) {
	s.e.ArriveMessage(s.svcReq[k], 2*k)
}

func (s *CSSource) sendResponse(k int) {
	s.e.ArriveMessage(s.svcResp[k], 2*k+1)
}

// onServed continues the exchange: served request → maybe response;
// served response → maybe next request. Triggered messages outlive the
// application that opened the exchange, mirroring how a remote server
// replies regardless.
func (s *CSSource) onServed(class int) {
	k := class / 2
	if k < 0 || k >= len(s.pResp) {
		return
	}
	if class%2 == 0 {
		// Request finished: trigger the response.
		if s.rng.Float64() < s.pResp[k] {
			s.after(func() { s.sendResponse(k) })
		}
		return
	}
	// Response finished: maybe the client issues the next request.
	if s.rng.Float64() < s.pNext[k] {
		s.after(func() { s.sendRequest(k) })
	}
}

func (s *CSSource) after(f func()) {
	if s.ThinkTime == nil {
		// Schedule rather than call inline so the engine finishes the
		// current completion (queue pop, stats) first.
		s.e.ScheduleAfter(0, f)
		return
	}
	s.e.ScheduleAfter(s.ThinkTime.Sample(s.rng), f)
}
