package sim

import (
	"testing"

	"hap/internal/core"
)

// TestMergeTruncatedBy pins the truncation-attribution contract: merging
// collectors with mixed truncation states yields the OR in Truncated and a
// per-collector slice in TruncatedBy, so a merged result can name the
// station that hit its budget instead of losing it in a summed flag.
func TestMergeTruncatedBy(t *testing.T) {
	a := NewMeasurements(MeasureConfig{})
	b := NewMeasurements(MeasureConfig{})
	c := NewMeasurements(MeasureConfig{})
	b.Truncated = true

	agg := NewMeasurements(MeasureConfig{})
	agg.Merge(a)
	agg.Merge(b)
	agg.Merge(c)
	if !agg.Truncated {
		t.Fatalf("merged Truncated = false, want true (one input truncated)")
	}
	want := []bool{false, true, false}
	if len(agg.TruncatedBy) != len(want) {
		t.Fatalf("TruncatedBy = %v, want %v", agg.TruncatedBy, want)
	}
	for i, w := range want {
		if agg.TruncatedBy[i] != w {
			t.Fatalf("TruncatedBy[%d] = %v, want %v (full slice %v)", i, agg.TruncatedBy[i], w, agg.TruncatedBy)
		}
	}

	// Merging an aggregate into an aggregate splices its attribution
	// instead of collapsing it to one entry.
	outer := NewMeasurements(MeasureConfig{})
	outer.Merge(agg)
	if len(outer.TruncatedBy) != 3 || !outer.TruncatedBy[1] {
		t.Fatalf("merge of aggregate: TruncatedBy = %v, want [false true false]", outer.TruncatedBy)
	}
}

// TestRunSetsMeasurementsTruncated checks the engine stamps the flag onto
// every station's collector: a budget-truncated run marks its measurements,
// a completed run leaves them clean, and a sharded merge attributes the
// per-source flags through TruncatedBy.
func TestRunSetsMeasurementsTruncated(t *testing.T) {
	m := core.PaperParams(20)

	full := RunHAP(m, Config{Horizon: 200, Seed: 1})
	if full.Truncated || full.Meas.Truncated {
		t.Fatalf("untruncated run marked truncated (result=%v meas=%v)", full.Truncated, full.Meas.Truncated)
	}

	cut := RunHAP(m, Config{Horizon: 200, Seed: 1, MaxEvents: 50})
	if !cut.Truncated {
		t.Fatalf("MaxEvents=50 run not truncated")
	}
	if !cut.Meas.Truncated {
		t.Fatalf("truncated run did not mark its Measurements")
	}

	// Sharded: a tiny per-shard budget truncates every shard; the merged
	// collector must attribute it per source.
	res := RunShardedHAP(m, 4, ShardedConfig{Horizon: 200, Seed: 1, Shards: 2, MaxEvents: 40})
	if !res.Truncated {
		t.Fatalf("budgeted sharded run not truncated")
	}
	if len(res.Merged.TruncatedBy) != 4 {
		t.Fatalf("merged TruncatedBy has %d entries, want 4 (one per source)", len(res.Merged.TruncatedBy))
	}
	for i, ps := range res.PerSource {
		if res.Merged.TruncatedBy[i] != ps.Truncated {
			t.Fatalf("TruncatedBy[%d] = %v, want per-source flag %v", i, res.Merged.TruncatedBy[i], ps.Truncated)
		}
	}
}
