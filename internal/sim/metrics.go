package sim

import "hap/internal/obs"

// Runtime metrics for the simulation layer. The event loop batches its
// updates at the existing ctxPollMask cadence (every 4096 events), so the
// per-event cost of live observability is zero allocations and a fraction
// of an atomic operation; gauges reflect the most recently sampled engine
// when several run in parallel.
var (
	obsEvents = obs.NewRate("hap_sim_events",
		"Events processed by simulation event loops.")
	obsQueueDepth = obs.NewGauge("hap_sim_queue_depth",
		"Messages in system (all stations) of the most recently sampled engine.")
	// obsSchedPending replaces the pre-calendar-queue hap_sim_event_heap_size
	// gauge: the scheduler is no longer always a heap, so the family name
	// describes what is actually measured — pending future events, whichever
	// structure holds them.
	obsSchedPending = obs.NewGauge("hap_sim_sched_pending",
		"Pending future events of the most recently sampled engine.")
	obsSchedBuckets = obs.NewGauge("hap_sim_sched_buckets",
		"Calendar-queue buckets of the most recently sampled engine (0 while on the binary heap).")
	obsStations = obs.NewGauge("hap_sim_stations",
		"Stations (queue/server pairs) hosted by the most recently sampled engine.")
	obsArrivals = obs.NewCounter("hap_sim_arrivals_total",
		"Messages that entered a simulated queue.")
	obsDepartures = obs.NewCounter("hap_sim_departures_total",
		"Completed services across all runs.")
	obsRuns = obs.NewCounter("hap_sim_runs_total",
		"Completed engine runs.")
	obsTruncations = obs.NewCounter("hap_sim_truncations_total",
		"Runs stopped before their horizon by the event budget or cancellation.")
	obsReplications = obs.NewCounter("hap_sim_replications_total",
		"Replications completed inside ReplicateRuns fan-outs.")
	obsMerges = obs.NewCounter("hap_sim_merges_total",
		"Per-replication measurement merges performed by MergeRuns.")
)

// flushObs publishes the event-count delta since the last flush and samples
// the live gauges. Called every ctxPollMask+1 events and at run exit; never
// allocates.
func (e *Engine) flushObs() {
	if d := e.processed - e.obsFlushed; d > 0 {
		obsEvents.Mark(d)
		e.obsFlushed = e.processed
	}
	if d := e.arrivals - e.obsArrFlushed; d > 0 {
		obsArrivals.Add(d)
		e.obsArrFlushed = e.arrivals
	}
	if d := e.departures - e.obsDepFlushed; d > 0 {
		obsDepartures.Add(d)
		e.obsDepFlushed = e.departures
	}
	obsQueueDepth.Set(int64(e.totalQueueLen()))
	obsSchedPending.Set(int64(e.events.len()))
	obsSchedBuckets.Set(int64(e.events.buckets()))
	obsStations.Set(int64(len(e.stations)))
}
