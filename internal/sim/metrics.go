package sim

import "hap/internal/obs"

// Runtime metrics for the simulation layer. The event loop batches its
// updates at the existing ctxPollMask cadence (every 4096 events), so the
// per-event cost of live observability is zero allocations and a fraction
// of an atomic operation; gauges reflect the most recently sampled engine
// when several run in parallel.
var (
	obsEvents = obs.NewRate("hap_sim_events",
		"Events processed by simulation event loops.")
	obsQueueDepth = obs.NewGauge("hap_sim_queue_depth",
		"Messages in system of the most recently sampled engine.")
	obsHeapSize = obs.NewGauge("hap_sim_event_heap_size",
		"Pending future events of the most recently sampled engine.")
	obsArrivals = obs.NewCounter("hap_sim_arrivals_total",
		"Messages that entered a simulated queue.")
	obsDepartures = obs.NewCounter("hap_sim_departures_total",
		"Completed services across all runs.")
	obsRuns = obs.NewCounter("hap_sim_runs_total",
		"Completed engine runs.")
	obsTruncations = obs.NewCounter("hap_sim_truncations_total",
		"Runs stopped before their horizon by the event budget or cancellation.")
	obsReplications = obs.NewCounter("hap_sim_replications_total",
		"Replications completed inside ReplicateRuns fan-outs.")
	obsMerges = obs.NewCounter("hap_sim_merges_total",
		"Per-replication measurement merges performed by MergeRuns.")
)

// flushObs publishes the event-count delta since the last flush and samples
// the live gauges. Called every ctxPollMask+1 events and at run exit; never
// allocates.
func (e *Engine) flushObs() {
	if d := e.processed - e.obsFlushed; d > 0 {
		obsEvents.Mark(d)
		e.obsFlushed = e.processed
	}
	if d := e.arrivals - e.obsArrFlushed; d > 0 {
		obsArrivals.Add(d)
		e.obsArrFlushed = e.arrivals
	}
	if d := e.departures - e.obsDepFlushed; d > 0 {
		obsDepartures.Add(d)
		e.obsDepFlushed = e.departures
	}
	obsQueueDepth.Set(int64(e.QueueLen()))
	obsHeapSize.Set(int64(len(e.events)))
}
