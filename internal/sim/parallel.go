package sim

import (
	"context"
	"math"
	"time"

	"hap/internal/par"
	"hap/internal/stats"
)

// ReplicatedResult aggregates n independent replications of one scenario.
type ReplicatedResult struct {
	// Reps holds the per-replication results in replication order,
	// independent of how many workers ran them.
	Reps []*RunResult
	// Merged combines every replication's measurements (see
	// Measurements.Merge) into a fresh collector; the per-replication
	// results in Reps are left untouched. Per-run traces (queue trace,
	// population trace, running mean) stay on the individual Reps.
	Merged *Measurements
	// Delay summarises the across-replication mean delays; HalfWidth is
	// the ~95% confidence half width of their grand mean.
	Delay     stats.Welford
	HalfWidth float64

	Arrivals   int64
	Departures int64
	Events     int64
	// Truncated reports whether any replication hit its event budget or
	// was cancelled.
	Truncated bool
	// Skipped counts replications never started (only possible when the
	// fan-out context was cancelled before they were handed out).
	Skipped int
	// Err is the first per-replication error in replication order, or the
	// fan-out's context error — see ReplicateRunsContext.
	Err     error
	Elapsed time.Duration
}

// MergeRuns folds per-replication results into one aggregate. Nil entries
// (replications a cancelled fan-out never started, or caller-filtered) are
// counted in Skipped and otherwise ignored. Merged is a fresh collector
// configured like the first replication's, so no RunResult is mutated;
// Elapsed sums the per-replication wall times until ReplicateRuns
// overwrites it with the true wall clock of the fan-out. Err is the first
// non-nil per-replication error in replication order.
func MergeRuns(runs []*RunResult) *ReplicatedResult {
	agg := &ReplicatedResult{Reps: runs}
	for _, r := range runs {
		if r == nil {
			agg.Skipped++
			continue
		}
		if r.Err != nil && agg.Err == nil {
			agg.Err = r.Err
		}
		if agg.Merged == nil {
			agg.Merged = NewMeasurements(r.Meas.cfg)
		}
		agg.Merged.Merge(r.Meas)
		obsMerges.Inc()
		agg.Delay.Add(r.Meas.MeanDelay())
		agg.Arrivals += r.Arrivals
		agg.Departures += r.Departures
		agg.Events += r.Events
		agg.Truncated = agg.Truncated || r.Truncated
		agg.Elapsed += r.Elapsed
	}
	if n := agg.Delay.N(); n >= 2 {
		agg.HalfWidth = 1.96 * agg.Delay.Std() / math.Sqrt(float64(n))
	}
	return agg
}

// ReplicateRuns executes n independent replications of run across workers
// (<= 0 selects GOMAXPROCS, 1 runs serially) and merges the results.
// Replication i receives the well-separated seed dist.SubSeed(seedBase, i),
// so the aggregate is bit-identical for every worker count — parallelism
// changes wall-clock time, never the statistics.
func ReplicateRuns(n int, seedBase int64, workers int, run func(rep int, seed int64) *RunResult) *ReplicatedResult {
	agg, _ := ReplicateRunsContext(nil, n, seedBase, workers, run)
	return agg
}

// ReplicateRunsContext is ReplicateRuns with cooperative cancellation: once
// ctx is done no further replication starts, and replications that watch
// the same context through Config.Ctx stop mid-run. The aggregate covers
// whatever completed (possibly partially); the returned error is the
// context error if the fan-out was cancelled, else the first
// per-replication error in replication order, else nil. A nil ctx never
// cancels.
func ReplicateRunsContext(ctx context.Context, n int, seedBase int64, workers int, run func(rep int, seed int64) *RunResult) (*ReplicatedResult, error) {
	start := time.Now()
	// Count each replication as it completes so a live scrape shows fan-out
	// progress, not just the final merge.
	counted := func(rep int, seed int64) *RunResult {
		r := run(rep, seed)
		obsReplications.Inc()
		return r
	}
	agg := MergeRuns(par.ReplicateNCtx(ctx, n, seedBase, workers, counted))
	agg.Elapsed = time.Since(start)
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			agg.Err = err
			agg.Truncated = true
		}
	}
	return agg, agg.Err
}
