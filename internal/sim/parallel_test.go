package sim

import (
	"testing"

	"hap/internal/core"
	"hap/internal/dist"
	"hap/internal/par"
)

// TestParallelReplicationsBitIdentical is the determinism-under-parallelism
// guarantee: the same (seedBase, n) must produce bit-identical
// per-replication and merged statistics at every worker count, because each
// replication's randomness derives only from its index.
func TestParallelReplicationsBitIdentical(t *testing.T) {
	m := core.PaperParams(20)
	run := func(rep int, seed int64) *RunResult {
		return RunHAP(m, Config{Horizon: 3000, Seed: seed,
			Measure: MeasureConfig{Warmup: 100, TrackBusy: true}})
	}
	const n, seedBase = 6, 1993
	serial := ReplicateRuns(n, seedBase, 1, run)
	for _, workers := range []int{2, 4, 8} {
		parl := ReplicateRuns(n, seedBase, workers, run)
		for i := range serial.Reps {
			s, p := serial.Reps[i], parl.Reps[i]
			if s.Arrivals != p.Arrivals || s.Departures != p.Departures || s.Events != p.Events {
				t.Fatalf("workers=%d rep %d: counts diverge (%d/%d/%d vs %d/%d/%d)",
					workers, i, s.Arrivals, s.Departures, s.Events, p.Arrivals, p.Departures, p.Events)
			}
			if s.Meas.MeanDelay() != p.Meas.MeanDelay() {
				t.Fatalf("workers=%d rep %d: mean delay %v != %v",
					workers, i, s.Meas.MeanDelay(), p.Meas.MeanDelay())
			}
		}
		if serial.Delay.Mean() != parl.Delay.Mean() || serial.Delay.Std() != parl.Delay.Std() {
			t.Fatalf("workers=%d: replication summary diverged", workers)
		}
		if serial.Merged.MeanQueue() != parl.Merged.MeanQueue() {
			t.Fatalf("workers=%d: merged queue mean diverged", workers)
		}
		if serial.Arrivals != parl.Arrivals || serial.Events != parl.Events {
			t.Fatalf("workers=%d: totals diverged", workers)
		}
	}
}

// TestReplicateRunsMatchesManualSeeding pins the seed-derivation contract:
// replication i must see dist.SubSeed(seedBase, i).
func TestReplicateRunsMatchesManualSeeding(t *testing.T) {
	run := func(rep int, seed int64) *RunResult {
		return RunPoisson(5, 10, Config{Horizon: 1000, Seed: seed})
	}
	agg := ReplicateRuns(4, 7, 2, run)
	for i := 0; i < 4; i++ {
		want := RunPoisson(5, 10, Config{Horizon: 1000, Seed: dist.SubSeed(7, i)})
		if agg.Reps[i].Arrivals != want.Arrivals ||
			agg.Reps[i].Meas.MeanDelay() != want.Meas.MeanDelay() {
			t.Fatalf("rep %d does not match SubSeed(7,%d)", i, i)
		}
	}
	if agg.Delay.N() != 4 {
		t.Fatalf("summary N = %d", agg.Delay.N())
	}
	if agg.HalfWidth <= 0 {
		t.Fatal("confidence half width not computed")
	}
}

// TestParallelSweepDeterministic covers the sweep-point use of par.MapErr:
// solver-style fan-outs must return index-ordered, worker-count-independent
// results.
func TestParallelSweepDeterministic(t *testing.T) {
	caps := []float64{13, 17, 24, 30}
	sweep := func(workers int) []float64 {
		out, err := par.MapErr(len(caps), workers, func(i int) (float64, error) {
			m := core.PaperParams(caps[i])
			r := RunHAP(m, Config{Horizon: 2000, Seed: dist.SubSeed(5, i),
				Measure: MeasureConfig{Warmup: 50}})
			return r.Meas.MeanDelay(), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	serial := sweep(1)
	parallel := sweep(4)
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("sweep point %d diverged: %v vs %v", i, serial[i], parallel[i])
		}
	}
}
