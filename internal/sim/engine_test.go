package sim

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"hap/internal/dist"
)

// TestEventHeapPopOrder is a property test: under random pushes (with
// heavy time ties), pop order must equal the (t, seq) sort order — the
// engine's determinism guarantee that ties break by schedule order.
func TestEventHeapPopOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(500)
		var h eventHeap
		ref := make([]event, 0, n)
		for i := 0; i < n; i++ {
			// Coarse times force frequent ties so seq ordering is exercised.
			ev := event{t: float64(rng.Intn(40)), seq: uint64(i + 1), a: int32(i)}
			h.push(ev)
			ref = append(ref, ev)
		}
		sort.Slice(ref, func(i, j int) bool {
			if ref[i].t != ref[j].t {
				return ref[i].t < ref[j].t
			}
			return ref[i].seq < ref[j].seq
		})
		for i, want := range ref {
			got := h.pop()
			if got.t != want.t || got.seq != want.seq || got.a != want.a {
				t.Fatalf("trial %d: pop %d = (t=%v seq=%d), want (t=%v seq=%d)",
					trial, i, got.t, got.seq, want.t, want.seq)
			}
		}
		if len(h) != 0 {
			t.Fatalf("trial %d: heap not drained, %d left", trial, len(h))
		}
	}
}

// TestEventHeapInterleavedPushPop mixes pushes and pops, mirroring the
// engine's real access pattern, and checks the popped stream never goes
// backwards in (t, seq).
func TestEventHeapInterleavedPushPop(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var h eventHeap
	var seq uint64
	lastT, lastSeq := math.Inf(-1), uint64(0)
	pops := 0
	for step := 0; step < 5000; step++ {
		if len(h) == 0 || rng.Intn(3) > 0 {
			seq++
			// Push times never before the last popped time, as the engine
			// guarantees (no scheduling into the past).
			base := lastT
			if math.IsInf(base, -1) {
				base = 0
			}
			h.push(event{t: base + float64(rng.Intn(10)), seq: seq})
		} else {
			got := h.pop()
			pops++
			if got.t < lastT || (got.t == lastT && got.seq <= lastSeq) {
				t.Fatalf("step %d: pop (t=%v seq=%d) after (t=%v seq=%d)",
					step, got.t, got.seq, lastT, lastSeq)
			}
			lastT, lastSeq = got.t, got.seq
		}
	}
	if pops == 0 {
		t.Fatal("no pops exercised")
	}
}

// constDist is a degenerate service law for exact FIFO arithmetic.
type constDist struct{ v float64 }

func (d constDist) Sample(*rand.Rand) float64 { return d.v }
func (d constDist) Mean() float64             { return d.v }
func (d constDist) Var() float64              { return 0 }
func (d constDist) String() string            { return "const" }

// TestQueueCompactionPreservesFIFODelays is a regression test for the
// sliding-window queue: a long busy period pushes qhead far past the
// compaction threshold, and every measured delay must still equal the
// exact FIFO value.
func TestQueueCompactionPreservesFIFODelays(t *testing.T) {
	const n = 500 // qhead crosses the >64, qhead*2>len(queue) threshold many times
	streams := dist.NewStreams(1)
	e := NewEngine(1e6, streams.Next(), NewMeasurements(MeasureConfig{}))
	svc := constDist{v: 1.0}
	// Burst of n arrivals 1 ms apart: the queue builds to ~n, then drains
	// one departure per second, compacting repeatedly along the way.
	for i := 0; i < n; i++ {
		at := float64(i) * 0.001
		e.Schedule(at, func() { e.ArriveMessage(svc, 0) })
	}
	e.Run()
	if e.Departures() != n {
		t.Fatalf("departures = %d, want %d", e.Departures(), n)
	}
	if got := e.QueueLen(); got != 0 {
		t.Fatalf("queue not drained: %d", got)
	}
	// Exact FIFO: message i arrives at i·0.001, departs at i+1 (unit
	// services back to back from t=0), so delay_i = (i+1) − i·0.001.
	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(i+1) - float64(i)*0.001
	}
	wantMean := sum / n
	if got := e.Measurements().MeanDelay(); math.Abs(got-wantMean) > 1e-9 {
		t.Fatalf("mean delay %v, want exact FIFO %v", got, wantMean)
	}
	if got := e.Measurements().Delays.Max(); math.Abs(got-(float64(n)-float64(n-1)*0.001)) > 1e-9 {
		t.Fatalf("max delay %v inconsistent with FIFO order", got)
	}
}

// TestTruncatedRun checks the satellite fix: exhausting the event budget
// must mark the result truncated and close measurements at the reached
// clock, not the horizon.
func TestTruncatedRun(t *testing.T) {
	res := RunPoisson(100, 200, Config{Horizon: 1e9, Seed: 1, MaxEvents: 5000})
	if !res.Truncated {
		t.Fatal("budget-limited run not marked Truncated")
	}
	if res.Events > 5000 {
		t.Fatalf("event cap exceeded: %d", res.Events)
	}
	// The observation window must end where the run actually stopped:
	// ~5000 events at rate 100/s (two events per message) is a few tens of
	// simulated seconds, nowhere near the 1e9 horizon.
	if el := res.Meas.Queue.Elapsed(); el <= 0 || el > 1e3 {
		t.Fatalf("measurement window %v inconsistent with truncation point", el)
	}

	full := RunPoisson(100, 200, Config{Horizon: 10, Seed: 1})
	if full.Truncated {
		t.Fatal("horizon-complete run marked Truncated")
	}
	if el := full.Meas.Queue.Elapsed(); math.Abs(el-10) > 1e-9 {
		t.Fatalf("full run window %v, want 10", el)
	}
}

// TestMeasurementsMerge verifies the exact-combination contract of Merge
// against the component statistics of two independent runs.
func TestMeasurementsMerge(t *testing.T) {
	mcfg := MeasureConfig{Warmup: 10, TrackBusy: true, DelayHistBins: 20, DelayHistMax: 2}
	a := RunPoisson(5, 10, Config{Horizon: 2000, Seed: 1, Measure: mcfg})
	b := RunPoisson(5, 10, Config{Horizon: 3000, Seed: 2, Measure: mcfg})

	nA, nB := a.Meas.Delays.N(), b.Meas.Delays.N()
	meanA, meanB := a.Meas.MeanDelay(), b.Meas.MeanDelay()
	qA, qB := a.Meas.MeanQueue(), b.Meas.MeanQueue()
	elA, elB := a.Meas.Queue.Elapsed(), b.Meas.Queue.Elapsed()
	mountains := a.Meas.Busy.Mountains() + b.Meas.Busy.Mountains()
	histN := a.Meas.DelayH.N() + b.Meas.DelayH.N()

	a.Meas.Merge(b.Meas)
	m := a.Meas
	if m.Delays.N() != nA+nB {
		t.Fatalf("merged N = %d, want %d", m.Delays.N(), nA+nB)
	}
	wantMean := (meanA*float64(nA) + meanB*float64(nB)) / float64(nA+nB)
	if math.Abs(m.MeanDelay()-wantMean) > 1e-12 {
		t.Fatalf("merged mean %v, want %v", m.MeanDelay(), wantMean)
	}
	if math.Abs(m.Queue.Elapsed()-(elA+elB)) > 1e-9 {
		t.Fatalf("merged window %v, want %v", m.Queue.Elapsed(), elA+elB)
	}
	wantQ := (qA*elA + qB*elB) / (elA + elB)
	if math.Abs(m.MeanQueue()-wantQ) > 1e-9 {
		t.Fatalf("merged queue mean %v, want %v", m.MeanQueue(), wantQ)
	}
	if m.Busy.Mountains() != mountains {
		t.Fatalf("merged mountains %d, want %d", m.Busy.Mountains(), mountains)
	}
	if m.DelayH.N() != histN {
		t.Fatalf("merged histogram N %d, want %d", m.DelayH.N(), histN)
	}
}

// TestMergePerClass checks class-wise delay merging, including growing the
// receiver's class list.
func TestMergePerClass(t *testing.T) {
	a := RunPoisson(5, 10, Config{Horizon: 500, Seed: 3, Measure: MeasureConfig{ClassCount: 1}})
	b := RunPoisson(5, 10, Config{Horizon: 500, Seed: 4, Measure: MeasureConfig{ClassCount: 2}})
	n0 := a.Meas.ByClass[0].N() + b.Meas.ByClass[0].N()
	a.Meas.Merge(b.Meas)
	if len(a.Meas.ByClass) != 2 {
		t.Fatalf("class list not grown: %d", len(a.Meas.ByClass))
	}
	if a.Meas.ByClass[0].N() != n0 {
		t.Fatalf("class 0 N = %d, want %d", a.Meas.ByClass[0].N(), n0)
	}
}
