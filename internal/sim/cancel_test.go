package sim

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"hap/internal/core"
	"hap/internal/haperr"
)

// The PR's cancellation acceptance test: a 64-replication fan-out whose
// replications each simulate a long horizon must return promptly once the
// shared context is cancelled, reporting context.Canceled — not hang until
// every horizon completes.
func TestReplicateRunsCancelPromptly(t *testing.T) {
	m := core.PaperParams(20)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	run := func(rep int, seed int64) *RunResult {
		// ~10⁷ events per replication without cancellation: the full
		// fan-out would take minutes.
		return RunHAP(m, Config{Horizon: 1e6, Seed: seed, Ctx: ctx})
	}
	start := time.Now()
	agg, err := ReplicateRunsContext(ctx, 64, 1993, 4, run)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed > 5*time.Second {
		t.Errorf("cancellation took %v, want prompt return", elapsed)
	}
	if !agg.Truncated {
		t.Error("aggregate must be flagged Truncated after cancellation")
	}
	if agg.Skipped == 0 {
		t.Error("expected some of the 64 replications to be skipped entirely")
	}
	if len(agg.Reps) != 64 {
		t.Errorf("Reps length %d, want 64 (nil for skipped)", len(agg.Reps))
	}
	if code := haperr.ExitCode(err); code != haperr.ExitCancelled {
		t.Errorf("exit code %d, want %d", code, haperr.ExitCancelled)
	}
}

// Satellite regression: merging replications truncated by a small event
// budget must produce sane aggregate statistics — the old accumulators
// panicked with "time went backwards" on the float jitter such merges
// introduce, and a budget-stopped run must still close its measurement
// window.
func TestMergeTruncatedReplications(t *testing.T) {
	m := core.PaperParams(20)
	run := func(rep int, seed int64) *RunResult {
		return RunHAP(m, Config{Horizon: 1e6, Seed: seed, MaxEvents: 500,
			Measure: MeasureConfig{TrackBusy: true}})
	}
	agg := ReplicateRuns(16, 7, 4, run)
	if agg.Err != nil {
		t.Fatalf("merge of truncated replications errored: %v", agg.Err)
	}
	if !agg.Truncated {
		t.Fatal("replications hit MaxEvents, aggregate must be Truncated")
	}
	for i, r := range agg.Reps {
		if r == nil || !r.Truncated {
			t.Fatalf("rep %d: not truncated (%+v)", i, r)
		}
		if r.Events > 500 {
			t.Fatalf("rep %d: %d events, budget was 500", i, r.Events)
		}
	}
	if agg.Merged == nil {
		t.Fatal("no merged measurements")
	}
	if d := agg.Merged.MeanDelay(); !(d >= 0) || math.IsInf(d, 1) {
		t.Errorf("merged mean delay = %v, want finite and non-negative", d)
	}
	if q := agg.Merged.MeanQueue(); !(q >= 0) || math.IsInf(q, 1) {
		t.Errorf("merged mean queue = %v, want finite and non-negative", q)
	}
	if agg.Events == 0 || agg.Arrivals == 0 {
		t.Error("aggregate counters empty; truncated spans must still count")
	}
}

// A run handed an already-cancelled context must not simulate at all and
// must say why.
func TestRunCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := RunHAP(core.PaperParams(20), Config{Horizon: 1e6, Seed: 1, Ctx: ctx})
	if !errors.Is(res.Err, context.Canceled) {
		t.Fatalf("Err = %v, want context.Canceled", res.Err)
	}
	if !res.Truncated {
		t.Error("cancelled run must be flagged Truncated")
	}
}

// Invalid configurations and models surface as RunResult.Err, never panics.
func TestRunRejectsInvalidInputs(t *testing.T) {
	if res := RunHAP(core.PaperParams(20), Config{Horizon: -1}); !errors.Is(res.Err, haperr.ErrBadParameter) {
		t.Errorf("negative horizon: Err = %v, want ErrBadParameter", res.Err)
	}
	if res := RunPoisson(math.NaN(), 10, Config{Horizon: 100}); !errors.Is(res.Err, haperr.ErrBadParameter) {
		t.Errorf("NaN rate: Err = %v, want ErrBadParameter", res.Err)
	}
	bad := core.NewSymmetric(0.0055, 0.001, 0.01, 0.01, 0.1, 20, 5, 3)
	bad.Lambda = math.Inf(1)
	if res := RunHAP(bad, Config{Horizon: 100}); !errors.Is(res.Err, haperr.ErrBadParameter) {
		t.Errorf("Inf model rate: Err = %v, want ErrBadParameter", res.Err)
	}
}
