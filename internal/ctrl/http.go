package ctrl

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"time"

	"hap/internal/fit"
	"hap/internal/obs"
)

// apiServer serves the decision API next to the metrics exposition:
//
//	GET /v1/streams                 stream directory
//	GET /v1/streams/{id}/fit        latest fitted window (fit.RefitReport + state)
//	GET /v1/streams/{id}/delay      latest delay forecast
//	GET /v1/streams/{id}/admit      admission decision
//	GET /v1/streams/{id}/history    decision history ring (oldest first)
//	GET /v1/aggregate/fit           superposed fitted process summary
//	GET /v1/aggregate/delay         merged-workload delay forecast
//	GET /v1/aggregate/admit         aggregate admission decision
//	GET /metrics, /debug/vars       obs exposition
//
// Decision endpoints return 503 with a JSON error while a stream warms
// up (the aggregate: while no stream has fitted); once a fit exists
// they always answer, flagging degraded/stale state instead of
// erroring.
type apiServer struct {
	d   *Daemon
	ln  net.Listener
	srv *http.Server
}

func newAPIServer(d *Daemon, addr string) (*apiServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("ctrl: listen %s: %w", addr, err)
	}
	a := &apiServer{d: d, ln: ln}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/streams", a.handleStreams)
	mux.HandleFunc("GET /v1/streams/{id}/fit", a.stream(a.handleFit))
	mux.HandleFunc("GET /v1/streams/{id}/delay", a.stream(a.handleDelay))
	mux.HandleFunc("GET /v1/streams/{id}/admit", a.stream(a.handleAdmit))
	mux.HandleFunc("GET /v1/streams/{id}/history", a.stream(a.handleHistory))
	mux.HandleFunc("GET /v1/aggregate/fit", a.handleAggFit)
	mux.HandleFunc("GET /v1/aggregate/delay", a.handleAggDelay)
	mux.HandleFunc("GET /v1/aggregate/admit", a.handleAggAdmit)
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = obs.Default.WritePrometheus(w)
	})
	mux.HandleFunc("GET /debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = obs.Default.WriteJSON(w)
	})
	a.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = a.srv.Serve(ln) }()
	return a, nil
}

func (a *apiServer) addr() string { return a.ln.Addr().String() }
func (a *apiServer) close()       { _ = a.srv.Close() }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

// stream resolves the {id} path value or 404s.
func (a *apiServer) stream(h func(http.ResponseWriter, *http.Request, *Stream)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		for _, s := range a.d.streams {
			if s.ID == id {
				h(w, r, s)
				return
			}
		}
		writeError(w, http.StatusNotFound, "unknown stream "+id)
	}
}

// streamInfo is one directory row.
type streamInfo struct {
	ID            string  `json:"id"`
	Addr          string  `json:"addr"`
	State         string  `json:"state"`
	Arrivals      int64   `json:"arrivals"`
	WindowN       int     `json:"window_n"`
	FitAgeSeconds float64 `json:"fit_age_seconds"`
	TargetSeconds float64 `json:"target_seconds"` // effective (possibly overridden) delay target
	ServiceRate   float64 `json:"service_rate"`   // effective (possibly overridden) service rate
}

func (a *apiServer) handleStreams(w http.ResponseWriter, _ *http.Request) {
	now := time.Now()
	out := make([]streamInfo, 0, len(a.d.streams))
	for _, s := range a.d.streams {
		pub := s.snapshot()
		info := streamInfo{
			ID:            s.ID,
			Addr:          s.Addr(),
			State:         s.state(now),
			Arrivals:      s.arrivals.Load(),
			WindowN:       pub.fit.WindowN, // last published window; live count is ingest-owned
			TargetSeconds: s.TargetDelay(),
			ServiceRate:   s.ServiceRate(),
		}
		if pub.hasFit {
			info.FitAgeSeconds = now.Sub(pub.fitAt).Seconds()
		}
		out = append(out, info)
	}
	writeJSON(w, http.StatusOK, map[string]any{"streams": out})
}

// fitResponse is the /fit schema.
type fitResponse struct {
	ID            string          `json:"id"`
	State         string          `json:"state"`
	Stale         bool            `json:"stale"`
	FitAgeSeconds float64         `json:"fit_age_seconds"`
	Fit           fit.RefitReport `json:"fit"`
}

func (a *apiServer) handleFit(w http.ResponseWriter, _ *http.Request, s *Stream) {
	now := time.Now()
	pub := s.snapshot()
	if !pub.hasFit {
		writeError(w, http.StatusServiceUnavailable, "warming: no fit published yet")
		return
	}
	writeJSON(w, http.StatusOK, fitResponse{
		ID:            s.ID,
		State:         s.state(now),
		Stale:         s.stale(pub, now),
		FitAgeSeconds: now.Sub(pub.fitAt).Seconds(),
		Fit:           pub.fit,
	})
}

// delayResponse is the /delay schema.
type delayResponse struct {
	ID           string  `json:"id"`
	State        string  `json:"state"`
	Stale        bool    `json:"stale"`
	Degraded     bool    `json:"degraded"`
	DelaySeconds float64 `json:"delay_seconds"`
	Sigma        float64 `json:"sigma"`
	Rho          float64 `json:"rho"`
	Converged    bool    `json:"converged"`
	SolveError   string  `json:"solve_error,omitempty"`
}

func (a *apiServer) handleDelay(w http.ResponseWriter, _ *http.Request, s *Stream) {
	now := time.Now()
	pub := s.snapshot()
	if !pub.hasFit {
		writeError(w, http.StatusServiceUnavailable, "warming: no fit published yet")
		return
	}
	degraded := !pub.converged || !pub.solveOK || s.stale(pub, now)
	if degraded {
		obsDegradedDecisions.Inc()
	}
	writeJSON(w, http.StatusOK, delayResponse{
		ID:           s.ID,
		State:        s.state(now),
		Stale:        s.stale(pub, now),
		Degraded:     degraded,
		DelaySeconds: pub.delay,
		Sigma:        pub.sigma,
		Rho:          pub.rho,
		Converged:    pub.converged,
		SolveError:   pub.solveMsg,
	})
}

// admitResponse is the /admit schema: the decision plus the provenance a
// caller needs to weigh it.
type admitResponse struct {
	ID            string  `json:"id"`
	State         string  `json:"state"`
	Stale         bool    `json:"stale"`
	Degraded      bool    `json:"degraded"`
	FitAgeSeconds float64 `json:"fit_age_seconds"`
	decision
}

func (a *apiServer) handleAdmit(w http.ResponseWriter, _ *http.Request, s *Stream) {
	now := time.Now()
	pub := s.snapshot()
	if !pub.hasFit {
		writeError(w, http.StatusServiceUnavailable, "warming: no fit published yet")
		return
	}
	if !pub.admitOK {
		// A fit exists but no admission bound could be computed (solve
		// failed non-terminally). Degrade, don't error: deny with reason.
		obsDegradedDecisions.Inc()
		writeJSON(w, http.StatusOK, admitResponse{
			ID: s.ID, State: s.state(now), Stale: s.stale(pub, now), Degraded: true,
			FitAgeSeconds: now.Sub(pub.fitAt).Seconds(),
			decision: decision{Admit: false, Target: s.target,
				Reason: "no admission bound available: " + pub.solveMsg},
		})
		return
	}
	degraded := !pub.converged || s.stale(pub, now)
	if degraded {
		obsDegradedDecisions.Inc()
	}
	writeJSON(w, http.StatusOK, admitResponse{
		ID:            s.ID,
		State:         s.state(now),
		Stale:         s.stale(pub, now),
		Degraded:      degraded,
		FitAgeSeconds: now.Sub(pub.fitAt).Seconds(),
		decision:      pub.dec,
	})
}

// historyResponse is the /history schema: the decision ring oldest
// first, plus the capacity so a caller can tell a short run from a
// wrapped ring.
type historyResponse struct {
	ID       string          `json:"id"`
	Capacity int             `json:"capacity"`
	Records  []HistoryRecord `json:"records"`
}

func (a *apiServer) handleHistory(w http.ResponseWriter, _ *http.Request, s *Stream) {
	writeJSON(w, http.StatusOK, historyResponse{
		ID:       s.ID,
		Capacity: len(s.hist),
		Records:  s.history(),
	})
}

// aggFitResponse is the /v1/aggregate/fit schema.
type aggFitResponse struct {
	Streams       []string `json:"streams"`
	States        int      `json:"states"`
	MeanRate      float64  `json:"mean_rate"`
	FitAgeSeconds float64  `json:"fit_age_seconds"`
}

// aggDelayResponse is the /v1/aggregate/delay schema.
type aggDelayResponse struct {
	Streams      []string `json:"streams"`
	Degraded     bool     `json:"degraded"`
	DelaySeconds float64  `json:"delay_seconds"`
	Sigma        float64  `json:"sigma"`
	Rho          float64  `json:"rho"`
	SolveError   string   `json:"solve_error,omitempty"`
}

// aggAdmitResponse is the /v1/aggregate/admit schema: the merged
// decision plus which contributing streams denied on their own.
type aggAdmitResponse struct {
	Streams       []string `json:"streams"`
	DeniedStreams []string `json:"denied_streams"`
	States        int      `json:"states"`
	Degraded      bool     `json:"degraded"`
	FitAgeSeconds float64  `json:"fit_age_seconds"`
	decision
}

// aggSnapshot 503s while no stream has published a fit; afterwards the
// aggregate endpoints always answer, flagging degraded state instead.
func (a *apiServer) aggSnapshot(w http.ResponseWriter) (aggPublished, bool) {
	pub := a.d.agg.snapshot()
	if !pub.ok {
		writeError(w, http.StatusServiceUnavailable, "warming: no stream has published a fit yet")
		return pub, false
	}
	if pub.denied == nil {
		pub.denied = []string{} // serialize as [], not null
	}
	return pub, true
}

func (a *apiServer) handleAggFit(w http.ResponseWriter, _ *http.Request) {
	pub, ok := a.aggSnapshot(w)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, aggFitResponse{
		Streams:       pub.streams,
		States:        pub.states,
		MeanRate:      pub.meanRate,
		FitAgeSeconds: time.Since(pub.at).Seconds(),
	})
}

func (a *apiServer) handleAggDelay(w http.ResponseWriter, _ *http.Request) {
	pub, ok := a.aggSnapshot(w)
	if !ok {
		return
	}
	if !pub.solveOK {
		obsDegradedDecisions.Inc()
	}
	writeJSON(w, http.StatusOK, aggDelayResponse{
		Streams:      pub.streams,
		Degraded:     !pub.solveOK,
		DelaySeconds: pub.delay,
		Sigma:        pub.sigma,
		Rho:          pub.rho,
		SolveError:   pub.solveMsg,
	})
}

func (a *apiServer) handleAggAdmit(w http.ResponseWriter, _ *http.Request) {
	pub, ok := a.aggSnapshot(w)
	if !ok {
		return
	}
	if !pub.admitOK {
		// A fit exists but no aggregate bound could be computed (state
		// cap, superposition or solve failure). Degrade, don't error:
		// deny with reason, mirroring the per-stream path.
		obsDegradedDecisions.Inc()
		writeJSON(w, http.StatusOK, aggAdmitResponse{
			Streams: pub.streams, DeniedStreams: pub.denied, States: pub.states,
			Degraded:      true,
			FitAgeSeconds: time.Since(pub.at).Seconds(),
			decision: decision{Admit: false, Target: a.d.cfg.TargetDelay,
				Reason: "no aggregate admission bound available: " + pub.solveMsg},
		})
		return
	}
	writeJSON(w, http.StatusOK, aggAdmitResponse{
		Streams:       pub.streams,
		DeniedStreams: pub.denied,
		States:        pub.states,
		Degraded:      !pub.solveOK,
		FitAgeSeconds: time.Since(pub.at).Seconds(),
		decision:      pub.dec,
	})
}
