// Package ctrl is the live traffic control plane: it closes the paper's
// loop as a long-running service. Each stream is a UDP sink whose
// arrivals feed a sliding-window TraceStats; every RefitEvery arrivals a
// snapshot of the window crosses a bounded hand-off to a per-stream fit
// worker, which re-runs the warm-started MMPP2 EM, re-solves the G/M/1
// expected delay from the fitted process's exact interarrival transform
// (σ warm-started from the previous cycle), and evaluates the paper's
// admission bound. Decisions, fitted parameters and delay forecasts are
// served over HTTP next to /metrics.
//
// Robustness contract: fit and solve never block ingest (a busy worker
// drops the cycle and counts it), and a stale or budget-exhausted window
// degrades the served decision — flagged, never erroring — to the last
// good fit.
package ctrl

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"hap/internal/admission"
	"hap/internal/fit"
	"hap/internal/gm1"
	"hap/internal/haperr"
	"hap/internal/mmpp"
	"hap/internal/netgen"
)

// Stream states, in lifecycle order. A stream oscillates between live
// and degraded while running; warming only happens once.
const (
	StateWarming  = "warming"  // no fit published yet
	StateLive     = "live"     // fresh, converged fit behind the decisions
	StateDegraded = "degraded" // decisions served from a stale or budget-exhausted fit
	StateClosed   = "closed"   // drained; final fit flushed
)

// refitJob is one window snapshot crossing from the ingest goroutine to
// the fit worker. Jobs are pooled (two per stream): at steady state the
// hand-off reuses the same buffers and allocates nothing.
type refitJob struct {
	times      []float64
	windowN    int
	windowRate float64
	windowC2   float64
	cumRate    float64
	cumC2      float64
	arrivals   int64
}

// decision is the admission verdict derived from one solved fit.
type decision struct {
	Admit    bool    `json:"admit"`
	Headroom float64 `json:"headroom"` // max arrival-scale multiplier still meeting the target
	Delay    float64 `json:"delay_seconds"`
	Target   float64 `json:"target_seconds"`
	Reason   string  `json:"reason,omitempty"`
}

// published is the stream state visible to the HTTP layer, replaced
// wholesale by the worker under the mutex.
type published struct {
	hasFit    bool
	fit       fit.RefitReport
	fitAt     time.Time
	converged bool // EM met its tolerance

	solveOK  bool
	sigma    float64
	rho      float64
	delay    float64
	solveMsg string

	admitOK bool
	dec     decision
}

// Stream is one ingested packet stream with its private fit/solve/admit
// pipeline. All fields below the mutex are owned by the fit worker; the
// TraceStats is owned by the ingest goroutine; the two communicate only
// through the job channels.
type Stream struct {
	ID   string
	sink *netgen.Sink
	cfg  *Config

	epoch    time.Time
	arrivals atomic.Int64
	closed   atomic.Bool

	ts   *fit.TraceStats
	rf   fit.Refitter
	jobs chan *refitJob
	free chan *refitJob

	warmSigma float64 // worker-local σ chain across solve cycles

	mu  sync.Mutex
	pub published
}

func newStream(id string, sink *netgen.Sink, cfg *Config) (*Stream, error) {
	ts, err := fit.NewTraceStats(fit.TraceConfig{SlideWindow: cfg.Window})
	if err != nil {
		return nil, err
	}
	s := &Stream{
		ID:    id,
		sink:  sink,
		cfg:   cfg,
		epoch: time.Now(),
		ts:    ts,
		rf:    fit.Refitter{Opt: cfg.EM},
		jobs:  make(chan *refitJob, 1),
		free:  make(chan *refitJob, 2),
	}
	s.free <- &refitJob{}
	s.free <- &refitJob{}
	if sink != nil {
		sink.OnArrival = func(_ float64) {
			// Collect resets its clock on every call, and the ingest loop
			// re-enters Collect after idle gaps — the stream keeps its own
			// monotone epoch instead.
			s.ingest(time.Since(s.epoch).Seconds())
		}
	}
	return s, nil
}

// Addr returns the stream's bound UDP address.
func (s *Stream) Addr() string { return s.sink.Addr() }

// ingest is the per-packet hot path, run on the sink's Collect
// goroutine. It must never block and, at steady state (job buffers
// grown, ring at peak occupancy), never allocate.
func (s *Stream) ingest(sec float64) {
	if err := s.ts.Add(sec); err != nil {
		obsIngestErrors.Inc()
		return
	}
	s.ts.Slide(sec)
	n := s.arrivals.Add(1)
	obsArrivals.Inc()
	if n%int64(s.cfg.RefitEvery) != 0 || s.ts.WindowN() < s.cfg.minWindow() {
		return
	}
	select {
	case j := <-s.free:
		s.fillJob(j)
		select {
		case s.jobs <- j:
		default:
			// Queue full: hand the buffer back (cap 2, we hold one, so
			// this send cannot block) and drop the cycle.
			s.free <- j
			obsRefitsSkipped.Inc()
		}
	default:
		obsRefitsSkipped.Inc() // both buffers in flight
	}
}

// fillJob snapshots the current window into a pooled job buffer.
func (s *Stream) fillJob(j *refitJob) {
	j.times = s.ts.WindowTimes(j.times[:0])
	j.windowN = s.ts.WindowN()
	j.windowRate, j.windowC2 = s.ts.WindowMoments()
	j.cumRate, j.cumC2 = s.ts.Rate(), s.ts.C2()
	j.arrivals = s.ts.N()
}

// flushFinal runs the drain-time fit: one last synchronous snapshot of
// whatever the window holds, queued behind any in-flight job. Call only
// after the ingest goroutine has stopped.
func (s *Stream) flushFinal() {
	if s.ts.WindowN() < s.cfg.minWindow() {
		return
	}
	j := <-s.free // worker returns buffers after each job; bounded wait
	s.fillJob(j)
	s.jobs <- j
}

// worker consumes window snapshots until the jobs channel closes. It
// deliberately ignores the daemon's run context: drain must still flush
// final fits after SIGTERM, and a single windowed EM + solve is
// milliseconds of work bounded by its own iteration budgets.
func (s *Stream) worker(wg *sync.WaitGroup) {
	defer wg.Done()
	for j := range s.jobs {
		s.processJob(j)
		select {
		case s.free <- j:
		default:
		}
	}
	s.closed.Store(true)
}

func (s *Stream) processJob(j *refitJob) {
	start := time.Now()
	f, err := s.rf.RefitTimes(noCancel, j.times)
	obsRefitTime.Observe(time.Since(start))
	switch {
	case err == nil:
		obsRefits.Inc()
	case errors.Is(err, haperr.ErrNotConverged):
		obsRefits.Inc()
		obsRefitNotConverged.Inc()
	default:
		obsRefitErrors.Inc()
		return // keep the last good fit; decisions degrade, not error
	}

	rep := fit.RefitReport{
		Arrivals:   j.arrivals,
		WindowN:    j.windowN,
		WindowRate: j.windowRate,
		WindowC2:   j.windowC2,
		CumRate:    j.cumRate,
		CumC2:      j.cumC2,
		R0:         f.Model.R0,
		R1:         f.Model.R1,
		Q01:        f.Model.Q01,
		Q10:        f.Model.Q10,
		Iterations: f.Diag.Iterations,
		Converged:  f.Diag.Converged,
	}

	pub := published{
		hasFit:    true,
		fit:       rep,
		fitAt:     time.Now(),
		converged: f.Diag.Converged,
	}
	s.solveAndAdmit(f.Model, &pub)

	s.mu.Lock()
	s.pub = pub
	s.mu.Unlock()
}

// solveAndAdmit re-solves the expected delay from the fitted process's
// exact interarrival transform (the same G/M/1 reduction as Solutions
// 1/2, σ warm-started from the previous cycle) and evaluates the
// admission bound.
func (s *Stream) solveAndAdmit(m mmpp.MMPP2, pub *published) {
	start := time.Now()
	defer func() { obsSolveTime.Observe(time.Since(start)) }()
	lap, err := m.InterarrivalLaplace()
	if err != nil {
		obsSolveErrors.Inc()
		pub.solveMsg = err.Error()
		return
	}
	lam := m.MeanRate()
	res, err := gm1.Solve(gm1.Laplace(lap), lam, s.cfg.ServiceRate,
		&gm1.Options{Method: s.cfg.Method, WarmSigma: s.warmSigma})
	obsSolves.Inc()
	if err != nil {
		obsSolveErrors.Inc()
		pub.solveMsg = err.Error()
		// Unstable fitted load is itself a decision: deny with reason.
		if errors.Is(err, haperr.ErrUnstable) {
			pub.admitOK = true
			pub.dec = decision{Admit: false, Target: s.cfg.TargetDelay,
				Reason: "fitted load unstable at the configured service rate"}
			obsAdmitDenied.Inc()
		}
		return
	}
	s.warmSigma = res.Sigma
	pub.solveOK = true
	pub.sigma, pub.rho, pub.delay = res.Sigma, res.Rho, res.Delay

	laplaceAt := func(f float64) gm1.Laplace {
		sm := mmpp.MMPP2{R0: f * m.R0, R1: f * m.R1, Q01: m.Q01, Q10: m.Q10}
		l, _ := sm.InterarrivalLaplace()
		return gm1.Laplace(l)
	}
	rateAt := func(f float64) float64 { return f * lam }
	scale, _, err := admission.MaxScale(laplaceAt, rateAt,
		s.cfg.ServiceRate, s.cfg.TargetDelay, s.cfg.FMax, 0)
	pub.admitOK = true
	switch {
	case errors.Is(err, admission.ErrInfeasible):
		pub.dec = decision{Admit: false, Target: s.cfg.TargetDelay,
			Delay: res.Delay, Reason: "target delay infeasible for the fitted process"}
	case err != nil:
		pub.admitOK = false
		pub.solveMsg = err.Error()
	default:
		pub.dec = decision{
			Admit:    scale >= 1,
			Headroom: scale,
			Delay:    res.Delay,
			Target:   s.cfg.TargetDelay,
		}
		if !pub.dec.Admit {
			pub.dec.Reason = "observed load exceeds the admissible workload for the delay target"
		}
	}
	if pub.admitOK {
		if pub.dec.Admit {
			obsAdmitAllowed.Inc()
		} else {
			obsAdmitDenied.Inc()
		}
	}
}

// snapshot copies the published state.
func (s *Stream) snapshot() published {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pub
}

// state derives the lifecycle state at the given instant.
func (s *Stream) state(now time.Time) string {
	if s.closed.Load() {
		return StateClosed
	}
	pub := s.snapshot()
	switch {
	case !pub.hasFit:
		return StateWarming
	case !pub.converged || !pub.solveOK || s.stale(pub, now):
		return StateDegraded
	default:
		return StateLive
	}
}

// stale reports whether the published fit is older than the configured
// staleness horizon.
func (s *Stream) stale(pub published, now time.Time) bool {
	return pub.hasFit && s.cfg.StaleAfter > 0 && now.Sub(pub.fitAt) > s.cfg.StaleAfter
}
