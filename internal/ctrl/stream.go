// Package ctrl is the live traffic control plane: it closes the paper's
// loop as a long-running service. Each stream is a UDP sink whose
// arrivals feed a sliding-window TraceStats; every RefitEvery arrivals a
// snapshot of the window crosses a bounded hand-off to a shared pool of
// fit workers, which re-runs the warm-started MMPP2 EM, re-solves the
// G/M/1 expected delay from the fitted process's exact interarrival
// transform (σ warm-started from the previous cycle), and evaluates the
// paper's admission bound against the stream's delay target. On top of
// the per-stream loop, the daemon superposes the fitted processes
// (Kronecker-sum merge) and solves the aggregate: admission of the
// merged workload is a property of the merged arrival process, not any
// single stream. Decisions, fitted parameters, delay forecasts, and a
// per-stream decision history ring are served over HTTP next to
// /metrics.
//
// Robustness contract: fit and solve never block ingest (a stream with
// a snapshot already in flight, or a full pool queue, drops the cycle
// and counts it), and a stale or budget-exhausted window degrades the
// served decision — flagged, never erroring — to the last good fit.
package ctrl

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"hap/internal/admission"
	"hap/internal/fit"
	"hap/internal/gm1"
	"hap/internal/haperr"
	"hap/internal/mmpp"
	"hap/internal/netgen"
)

// Stream states, in lifecycle order. A stream oscillates between live
// and degraded while running; warming only happens once.
const (
	StateWarming  = "warming"  // no fit published yet
	StateLive     = "live"     // fresh, converged fit behind the decisions
	StateDegraded = "degraded" // decisions served from a stale or budget-exhausted fit
	StateClosed   = "closed"   // sink closed; drain owns the final flush
)

// refitJob is one window snapshot crossing from the ingest goroutine to
// a pool worker. Jobs are pooled (two buffers per stream): at steady
// state the hand-off reuses the same buffers and allocates nothing. The
// stream pointer routes the job back to its owner on the shared queue.
type refitJob struct {
	s          *Stream
	times      []float64
	windowN    int
	windowRate float64
	windowC2   float64
	cumRate    float64
	cumC2      float64
	arrivals   int64
}

// decision is the admission verdict derived from one solved fit.
type decision struct {
	Admit    bool    `json:"admit"`
	Headroom float64 `json:"headroom"` // max arrival-scale multiplier still meeting the target
	Delay    float64 `json:"delay_seconds"`
	Target   float64 `json:"target_seconds"`
	Reason   string  `json:"reason,omitempty"`
}

// HistoryRecord is one completed fit→solve→admit cycle as retained by
// the per-stream decision history ring: enough provenance to see the
// regime shift that flipped a decision.
type HistoryRecord struct {
	At           time.Time       `json:"at"`
	Fit          fit.RefitReport `json:"fit"`
	SolveOK      bool            `json:"solve_ok"`
	DelaySeconds float64         `json:"delay_seconds"`
	Sigma        float64         `json:"sigma"`
	Rho          float64         `json:"rho"`
	AdmitOK      bool            `json:"admit_ok"`
	Decision     decision        `json:"decision"`
}

// published is the stream state visible to the HTTP layer, replaced
// wholesale by the fitting worker under the mutex.
type published struct {
	hasFit    bool
	fit       fit.RefitReport
	fitAt     time.Time
	converged bool // EM met its tolerance

	solveOK  bool
	sigma    float64
	rho      float64
	delay    float64
	solveMsg string

	admitOK bool
	dec     decision
}

// Stream is one ingested packet stream with its fit/solve/admit
// pipeline. The Refitter, σ chain and rate memory below are touched by
// at most one pool worker at a time (the inflight gate admits a single
// job per stream); the TraceStats is owned by the ingest goroutine; the
// two sides communicate only through the pooled job buffers.
type Stream struct {
	ID   string
	sink *netgen.Sink
	cfg  *Config

	// target and svcRate are the effective per-stream admission delay
	// target and service rate (Config values unless overridden).
	target  float64
	svcRate float64

	epoch    time.Time
	arrivals atomic.Int64
	closed   atomic.Bool // drain finished: final fit flushed
	draining atomic.Bool // sink closed: no further arrivals possible

	ts   *fit.TraceStats
	rf   fit.Refitter
	pool *pool
	free chan *refitJob
	// inflight gates the stream to one snapshot in the pool at a time:
	// it keeps per-stream jobs ordered (FIFO queue, single consumer per
	// stream) and makes the Refitter/σ state single-writer without a
	// lock on the fit path.
	inflight atomic.Bool

	warmSigma float64 // worker-local σ chain across solve cycles
	lastRate  float64 // fitted mean rate of the previous cycle (σ reset guard)

	mu       sync.Mutex
	pub      published
	hist     []HistoryRecord // fixed-size ring, capacity cfg.HistorySize
	histNext int
	histLen  int
}

func newStream(id string, sink *netgen.Sink, cfg *Config, p *pool, ov StreamOverride) (*Stream, error) {
	ts, err := fit.NewTraceStats(fit.TraceConfig{SlideWindow: cfg.Window})
	if err != nil {
		return nil, err
	}
	s := &Stream{
		ID:      id,
		sink:    sink,
		cfg:     cfg,
		target:  cfg.TargetDelay,
		svcRate: cfg.ServiceRate,
		epoch:   time.Now(),
		ts:      ts,
		rf:      fit.Refitter{Opt: cfg.EM},
		pool:    p,
		free:    make(chan *refitJob, 2),
		hist:    make([]HistoryRecord, cfg.HistorySize),
	}
	if ov.TargetDelay > 0 {
		s.target = ov.TargetDelay
	}
	if ov.ServiceRate > 0 {
		s.svcRate = ov.ServiceRate
	}
	s.free <- &refitJob{s: s}
	s.free <- &refitJob{s: s}
	if sink != nil {
		sink.OnArrival = func(_ float64) {
			// Collect resets its clock on every call, and the ingest loop
			// re-enters Collect after idle gaps — the stream keeps its own
			// monotone epoch instead.
			s.ingest(time.Since(s.epoch).Seconds())
		}
	}
	return s, nil
}

// Addr returns the stream's bound UDP address.
func (s *Stream) Addr() string { return s.sink.Addr() }

// TargetDelay returns the stream's effective admission delay target.
func (s *Stream) TargetDelay() float64 { return s.target }

// ServiceRate returns the stream's effective service rate.
func (s *Stream) ServiceRate() float64 { return s.svcRate }

// ingest is the per-packet hot path, run on the sink's Collect
// goroutine. It must never block and, at steady state (job buffers
// grown, ring at peak occupancy), never allocate.
func (s *Stream) ingest(sec float64) {
	if err := s.ts.Add(sec); err != nil {
		obsIngestErrors.Inc()
		return
	}
	s.ts.Slide(sec)
	n := s.arrivals.Add(1)
	obsArrivals.Inc()
	if n%int64(s.cfg.RefitEvery) != 0 || s.ts.WindowN() < s.cfg.minWindow() {
		return
	}
	// One snapshot per stream in the pool at a time: a stream whose
	// previous cycle is still queued or fitting drops this one.
	if !s.inflight.CompareAndSwap(false, true) {
		obsRefitsSkipped.Inc()
		return
	}
	select {
	case j := <-s.free:
		s.fillJob(j)
		if !s.pool.enqueue(j) {
			// Shared queue full: hand the buffer back (cap 2, we hold
			// one, so this send cannot block) and drop the cycle.
			s.free <- j
			s.inflight.Store(false)
			obsRefitsSkipped.Inc()
		}
	default:
		// Both buffers in flight (the drain-time flush holds one).
		s.inflight.Store(false)
		obsRefitsSkipped.Inc()
	}
}

// fillJob snapshots the current window into a pooled job buffer.
func (s *Stream) fillJob(j *refitJob) {
	j.times = s.ts.WindowTimes(j.times[:0])
	j.windowN = s.ts.WindowN()
	j.windowRate, j.windowC2 = s.ts.WindowMoments()
	j.cumRate, j.cumC2 = s.ts.Rate(), s.ts.C2()
	j.arrivals = s.ts.N()
}

// flushFinal runs the drain-time fit: one last synchronous snapshot of
// whatever the window holds, processed on the calling goroutine. Call
// only after the ingest goroutine has stopped and the pool has drained
// (both job buffers are home and nothing else touches the fit state).
func (s *Stream) flushFinal() {
	if s.ts.WindowN() < s.cfg.minWindow() {
		return
	}
	j := <-s.free
	s.fillJob(j)
	s.processJob(j)
	s.free <- j
}

func (s *Stream) processJob(j *refitJob) {
	start := time.Now()
	f, err := s.rf.RefitTimes(noCancel, j.times)
	obsRefitTime.Observe(time.Since(start))
	switch {
	case err == nil:
		obsRefits.Inc()
	case errors.Is(err, haperr.ErrNotConverged):
		obsRefits.Inc()
		obsRefitNotConverged.Inc()
	default:
		obsRefitErrors.Inc()
		return // keep the last good fit; decisions degrade, not error
	}

	rep := fit.RefitReport{
		Arrivals:   j.arrivals,
		WindowN:    j.windowN,
		WindowRate: j.windowRate,
		WindowC2:   j.windowC2,
		CumRate:    j.cumRate,
		CumC2:      j.cumC2,
		R0:         f.Model.R0,
		R1:         f.Model.R1,
		Q01:        f.Model.Q01,
		Q10:        f.Model.Q10,
		Iterations: f.Diag.Iterations,
		Converged:  f.Diag.Converged,
	}

	pub := published{
		hasFit:    true,
		fit:       rep,
		fitAt:     time.Now(),
		converged: f.Diag.Converged,
	}
	s.solveAndAdmit(f.Model, &pub)

	rec := HistoryRecord{
		At:           pub.fitAt,
		Fit:          rep,
		SolveOK:      pub.solveOK,
		DelaySeconds: pub.delay,
		Sigma:        pub.sigma,
		Rho:          pub.rho,
		AdmitOK:      pub.admitOK,
		Decision:     pub.dec,
	}

	s.mu.Lock()
	s.pub = pub
	if len(s.hist) > 0 {
		s.hist[s.histNext] = rec
		s.histNext = (s.histNext + 1) % len(s.hist)
		if s.histLen < len(s.hist) {
			s.histLen++
		}
	}
	s.mu.Unlock()
	s.pool.fitGen.Add(1)
}

// solveAndAdmit re-solves the expected delay from the fitted process's
// exact interarrival transform (the same G/M/1 reduction as Solutions
// 1/2, σ warm-started from the previous cycle) and evaluates the
// admission bound against the stream's own target and service rate.
func (s *Stream) solveAndAdmit(m mmpp.MMPP2, pub *published) {
	start := time.Now()
	defer func() { obsSolveTime.Observe(time.Since(start)) }()
	lap, err := m.InterarrivalLaplace()
	if err != nil {
		obsSolveErrors.Inc()
		pub.solveMsg = err.Error()
		return
	}
	lam := m.MeanRate()
	// A regime shift invalidates the σ chain: a stale σ from a very
	// different load would seed the next bracket expansion far from the
	// root. Clear it when the fitted mean rate jumps more than 2× in
	// either direction.
	if s.warmSigma != 0 && s.lastRate > 0 && (lam > 2*s.lastRate || lam < s.lastRate/2) {
		s.warmSigma = 0
		obsSigmaResets.Inc()
	}
	s.lastRate = lam
	res, err := gm1.Solve(gm1.Laplace(lap), lam, s.svcRate,
		&gm1.Options{Method: s.cfg.Method, WarmSigma: s.warmSigma})
	obsSolves.Inc()
	if err != nil {
		obsSolveErrors.Inc()
		// A failed solve must not seed the next cycle: the σ chain is
		// only as good as its last success.
		if s.warmSigma != 0 {
			s.warmSigma = 0
			obsSigmaResets.Inc()
		}
		pub.solveMsg = err.Error()
		// Unstable fitted load is itself a decision: deny with reason.
		if errors.Is(err, haperr.ErrUnstable) {
			pub.admitOK = true
			pub.dec = decision{Admit: false, Target: s.target,
				Reason: "fitted load unstable at the configured service rate"}
			obsAdmitDenied.Inc()
		}
		return
	}
	s.warmSigma = res.Sigma
	pub.solveOK = true
	pub.sigma, pub.rho, pub.delay = res.Sigma, res.Rho, res.Delay

	laplaceAt := func(f float64) gm1.Laplace {
		sm := mmpp.MMPP2{R0: f * m.R0, R1: f * m.R1, Q01: m.Q01, Q10: m.Q10}
		l, _ := sm.InterarrivalLaplace()
		return gm1.Laplace(l)
	}
	rateAt := func(f float64) float64 { return f * lam }
	scale, _, err := admission.MaxScale(laplaceAt, rateAt,
		s.svcRate, s.target, s.cfg.FMax, 0)
	pub.admitOK = true
	switch {
	case errors.Is(err, admission.ErrInfeasible):
		pub.dec = decision{Admit: false, Target: s.target,
			Delay: res.Delay, Reason: "target delay infeasible for the fitted process"}
	case err != nil:
		pub.admitOK = false
		pub.solveMsg = err.Error()
	default:
		pub.dec = decision{
			Admit:    scale >= 1,
			Headroom: scale,
			Delay:    res.Delay,
			Target:   s.target,
		}
		if !pub.dec.Admit {
			pub.dec.Reason = "observed load exceeds the admissible workload for the delay target"
		}
	}
	if pub.admitOK {
		if pub.dec.Admit {
			obsAdmitAllowed.Inc()
		} else {
			obsAdmitDenied.Inc()
		}
	}
}

// snapshot copies the published state.
func (s *Stream) snapshot() published {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pub
}

// history copies the decision ring in chronological order.
func (s *Stream) history() []HistoryRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]HistoryRecord, 0, s.histLen)
	start := s.histNext - s.histLen
	for i := 0; i < s.histLen; i++ {
		out = append(out, s.hist[(start+i+len(s.hist))%len(s.hist)])
	}
	return out
}

// state derives the lifecycle state at the given instant. A stream
// whose sink has closed reports closed immediately — the drain owns it
// from that moment, deterministically, rather than whenever its last
// worker cycle happens to finish.
func (s *Stream) state(now time.Time) string {
	if s.closed.Load() || s.draining.Load() {
		return StateClosed
	}
	pub := s.snapshot()
	switch {
	case !pub.hasFit:
		return StateWarming
	case !pub.converged || !pub.solveOK || s.stale(pub, now):
		return StateDegraded
	default:
		return StateLive
	}
}

// stale reports whether the published fit is older than the configured
// staleness horizon.
func (s *Stream) stale(pub published, now time.Time) bool {
	return pub.hasFit && s.cfg.StaleAfter > 0 && now.Sub(pub.fitAt) > s.cfg.StaleAfter
}
