package ctrl

import "hap/internal/obs"

// Runtime metrics for the control plane. The ingest path only touches
// atomic counters (no labelled children, no maps) so a packet's cost is
// a handful of atomic adds; everything coarser — refits, solves, admit
// decisions — records per cycle, which runs every RefitEvery arrivals.
var (
	obsStreams = obs.NewGauge("hap_ctrl_streams",
		"Streams currently ingesting.")
	obsArrivals = obs.NewCounter("hap_ctrl_arrivals_total",
		"Packets ingested into per-stream sliding windows across all streams.")
	obsIngestErrors = obs.NewCounter("hap_ctrl_ingest_errors_total",
		"Arrivals rejected by the window accumulator (non-monotone receiver timestamps).")
	obsRefits = obs.NewCounter("hap_ctrl_refits_total",
		"Sliding-window re-fits completed (including budget-exhausted best iterates).")
	obsRefitsSkipped = obs.NewCounter("hap_ctrl_refits_skipped_total",
		"Refit cycles skipped because the fit worker was still busy — the bounded hand-off dropped the cycle rather than block ingest.")
	obsRefitErrors = obs.NewCounter("hap_ctrl_refit_errors_total",
		"Re-fits that failed outright (not ErrNotConverged); the stream keeps serving its last good fit.")
	obsRefitNotConverged = obs.NewCounter("hap_ctrl_refits_not_converged_total",
		"Re-fits that exhausted the EM budget; their best iterate is published with the degraded flag.")
	obsRefitTime = obs.NewTimer("hap_ctrl_refit",
		"Wall time of one sliding-window EM re-fit.")
	obsSolves = obs.NewCounter("hap_ctrl_solves_total",
		"Warm-started delay solves over freshly fitted windows.")
	obsSolveErrors = obs.NewCounter("hap_ctrl_solve_errors_total",
		"Delay solves that failed (e.g. fitted load unstable at the configured service rate).")
	obsSolveTime = obs.NewTimer("hap_ctrl_solve",
		"Wall time of one delay solve plus admission bound evaluation.")
	obsAdmitAllowed = obs.NewCounter("hap_ctrl_admit_allowed_total",
		"Admission evaluations concluding the stream meets its delay target (headroom >= 1).")
	obsAdmitDenied = obs.NewCounter("hap_ctrl_admit_denied_total",
		"Admission evaluations concluding the stream misses its delay target.")
	obsDegradedDecisions = obs.NewCounter("hap_ctrl_degraded_decisions_total",
		"Decisions served from a degraded fit (stale window, budget-exhausted EM, or failed solve).")
	obsFitAgeMax = obs.NewFloatGauge("hap_ctrl_fit_age_seconds_max",
		"Age of the oldest published fit across streams — staleness at a glance.")
)
