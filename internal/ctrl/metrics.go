package ctrl

import "hap/internal/obs"

// Runtime metrics for the control plane. The ingest path only touches
// atomic counters (no labelled children, no maps) so a packet's cost is
// a handful of atomic adds; everything coarser — refits, solves, admit
// decisions — records per cycle, which runs every RefitEvery arrivals.
var (
	obsStreams = obs.NewGauge("hap_ctrl_streams",
		"Streams currently ingesting.")
	obsArrivals = obs.NewCounter("hap_ctrl_arrivals_total",
		"Packets ingested into per-stream sliding windows across all streams.")
	obsIngestErrors = obs.NewCounter("hap_ctrl_ingest_errors_total",
		"Arrivals rejected by the window accumulator (non-monotone receiver timestamps).")
	obsRefits = obs.NewCounter("hap_ctrl_refits_total",
		"Sliding-window re-fits completed (including budget-exhausted best iterates).")
	obsRefitsSkipped = obs.NewCounter("hap_ctrl_refits_skipped_total",
		"Refit cycles skipped because the fit worker was still busy — the bounded hand-off dropped the cycle rather than block ingest.")
	obsRefitErrors = obs.NewCounter("hap_ctrl_refit_errors_total",
		"Re-fits that failed outright (not ErrNotConverged); the stream keeps serving its last good fit.")
	obsRefitNotConverged = obs.NewCounter("hap_ctrl_refits_not_converged_total",
		"Re-fits that exhausted the EM budget; their best iterate is published with the degraded flag.")
	obsRefitTime = obs.NewTimer("hap_ctrl_refit",
		"Wall time of one sliding-window EM re-fit.")
	obsSolves = obs.NewCounter("hap_ctrl_solves_total",
		"Warm-started delay solves over freshly fitted windows.")
	obsSolveErrors = obs.NewCounter("hap_ctrl_solve_errors_total",
		"Delay solves that failed (e.g. fitted load unstable at the configured service rate).")
	obsSolveTime = obs.NewTimer("hap_ctrl_solve",
		"Wall time of one delay solve plus admission bound evaluation.")
	obsAdmitAllowed = obs.NewCounter("hap_ctrl_admit_allowed_total",
		"Admission evaluations concluding the stream meets its delay target (headroom >= 1).")
	obsAdmitDenied = obs.NewCounter("hap_ctrl_admit_denied_total",
		"Admission evaluations concluding the stream misses its delay target.")
	obsDegradedDecisions = obs.NewCounter("hap_ctrl_degraded_decisions_total",
		"Decisions served from a degraded fit (stale window, budget-exhausted EM, or failed solve).")
	obsFitAgeMax = obs.NewFloatGauge("hap_ctrl_fit_age_seconds_max",
		"Age of the oldest published fit across streams — staleness at a glance.")
	obsSigmaResets = obs.NewCounter("hap_ctrl_sigma_warm_resets_total",
		"Warm-start sigma chains cleared after a solve failure or a >2x fitted-rate jump (regime shift).")

	// Shared fit-worker pool.
	obsPoolWorkers = obs.NewGauge("hap_ctrl_pool_workers",
		"Fit workers draining the shared snapshot queue.")
	obsPoolDepth = obs.NewGauge("hap_ctrl_pool_queue_depth",
		"Window snapshots waiting in the shared pool queue.")
	obsPoolJobs = obs.NewCounter("hap_ctrl_pool_jobs_total",
		"Window snapshots accepted onto the shared pool queue.")
	obsPoolRejects = obs.NewCounter("hap_ctrl_pool_rejects_total",
		"Refit cycles dropped because the shared pool queue was full — drops-not-blocks at pool scope.")

	// Aggregate (superposed) admission cycle.
	obsAggStreams = obs.NewGauge("hap_ctrl_aggregate_streams",
		"Streams contributing a fitted MMPP2 to the current aggregate superposition.")
	obsAggStates = obs.NewGauge("hap_ctrl_aggregate_states",
		"Modulating-chain states of the superposed aggregate process (2 per fitted stream).")
	obsAggSolves = obs.NewCounter("hap_ctrl_aggregate_solves_total",
		"Delay solves over the superposed aggregate process.")
	obsAggSolveErrors = obs.NewCounter("hap_ctrl_aggregate_solve_errors_total",
		"Aggregate solves that failed or were skipped (unstable merged load, state-space cap).")
	obsAggAllowed = obs.NewCounter("hap_ctrl_aggregate_admit_allowed_total",
		"Aggregate admission evaluations where both the merged headroom and every per-stream decision admit.")
	obsAggDenied = obs.NewCounter("hap_ctrl_aggregate_admit_denied_total",
		"Aggregate admission evaluations denying: merged headroom < 1, a per-stream deny, or an unstable merged load.")
)
